package scanshare

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateSweepGolden = flag.Bool("update", false, "rewrite the sweep golden output files")

// sweepGoldenFingerprint renders every numeric result of a tiny serving
// sweep and a tiny figure sweep with full precision. The file it is
// compared against was generated BEFORE the multi-device DeviceArray
// refactor of the I/O layer, so a passing test proves that the default
// single-device configuration (Devices=1) is bit-identical to the
// historical one-global-FIFO-disk model: any change to request admission
// order, seek accounting, or the virtual-time trajectory shifts a latency
// percentile, a stream time, or an I/O counter and shows up as a diff.
//
// Fields are rendered explicitly (not %+v) so that adding NEW columns to
// ServeRow (e.g. the devices axis) does not invalidate the recorded
// pre-refactor values of the old columns.
func sweepGoldenFingerprint() string {
	var b strings.Builder

	so := ServeOptions{
		Options:           Options{SF: 0.01, Seed: 42, Streams: 8, QueriesPerStream: 2},
		Rates:             []float64{50},
		MPLs:              []int{2},
		Policies:          []Policy{LRU, PBM, CScan},
		Shards:            []int{1, 2},
		AdmissionPolicies: []string{"fifo", "wfq"},
		Tenants:           2,
		TenantWeights:     []float64{2, 1},
	}
	for _, r := range ServeSweep(so) {
		fmt.Fprintf(&b, "serve rate=%g mpl=%d pol=%s shards=%d adm=%s done=%d rej=%d thru=%.9f p50=%.9f p95=%.9f p99=%.9f qwait=%.9f slo=%.9f io=%.9f",
			r.Rate, r.MPL, r.Policy, r.Shards, r.Admission, r.Completed, r.Rejected,
			r.Throughput, r.P50ms, r.P95ms, r.P99ms, r.QWaitP95ms, r.SLOPct, r.IOMB)
		for i := range r.TenantP95ms {
			fmt.Fprintf(&b, " t%d=%.9f/%.9f", i, r.TenantP95ms[i], r.TenantSLOPct[i])
		}
		fmt.Fprintln(&b)
	}

	fo := Options{SF: 0.01, Seed: 42, QueriesPerStream: 2}
	for _, r := range Fig13(fo) {
		fmt.Fprintf(&b, "fig13 x=%g pol=%s avg=%.9f io=%.9f\n", r.X, r.Policy, r.AvgStreamSec, r.IOMB)
	}
	return b.String()
}

// TestSweepGoldenUnchanged is the single-device equivalence regression of
// the DeviceArray refactor: serve-sweep and figure-sweep results at the
// default device configuration must be bit-identical to output recorded
// before the multi-spindle disk model existed. Regenerate with
// `go test -run SweepGolden -update` ONLY for an intentional semantic
// change to the simulation.
func TestSweepGoldenUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep golden runs full tiny sweeps; skipped in -short")
	}
	path := filepath.Join("testdata", "sweep_golden.txt")
	got := sweepGoldenFingerprint()
	if *updateSweepGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sweep output diverged from pre-DeviceArray golden output\n--- want\n%s--- got\n%s", want, got)
	}
}
