// Package opt implements Belady's OPT page-replacement algorithm [Belady
// 1966] as an offline simulator over a recorded page-reference trace,
// following the paper's methodology (§4): the trace of all page references
// is gathered from the PBM run (an order-preserving policy), then replayed
// under OPT to obtain the optimal I/O volume of order-preserving policies.
package opt

import (
	"container/heap"

	"repro/internal/storage"
)

// Ref is one page reference in a trace.
type Ref struct {
	Page  storage.PageID
	Bytes int64
}

// Result reports the outcome of an OPT (or other offline) replay.
type Result struct {
	Refs        int64
	Hits        int64
	Misses      int64
	BytesLoaded int64
}

// victimHeap orders cached pages by furthest next use (max-heap).
type victimHeap []victim

type victim struct {
	nextUse int64 // position of next reference; math.MaxInt64 when never
	page    storage.PageID
}

func (h victimHeap) Len() int            { return len(h) }
func (h victimHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h victimHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *victimHeap) Push(x interface{}) { *h = append(*h, x.(victim)) }
func (h *victimHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

const never = int64(1) << 62

// Simulate replays trace under Belady's OPT with the given byte capacity:
// on a miss with a full cache, the page whose next reference is furthest
// in the future is evicted. Stale heap entries are discarded lazily.
func Simulate(trace []Ref, capacity int64) Result {
	if capacity <= 0 {
		panic("opt: capacity must be positive")
	}
	// Precompute, for each position, the position of the next reference
	// to the same page.
	next := make([]int64, len(trace))
	last := make(map[storage.PageID]int64, 1024)
	for i := len(trace) - 1; i >= 0; i-- {
		if j, ok := last[trace[i].Page]; ok {
			next[i] = j
		} else {
			next[i] = never
		}
		last[trace[i].Page] = int64(i)
	}

	type cached struct {
		nextUse int64
		bytes   int64
	}
	cache := make(map[storage.PageID]*cached, 1024)
	var used int64
	var h victimHeap
	var res Result

	for i, r := range trace {
		res.Refs++
		if c, ok := cache[r.Page]; ok {
			res.Hits++
			c.nextUse = next[i]
			heap.Push(&h, victim{nextUse: next[i], page: r.Page})
			continue
		}
		res.Misses++
		res.BytesLoaded += r.Bytes
		for used+r.Bytes > capacity {
			if len(h) == 0 {
				panic("opt: cache accounting underflow")
			}
			v := heap.Pop(&h).(victim)
			c, ok := cache[v.page]
			if !ok || c.nextUse != v.nextUse {
				continue // stale entry
			}
			delete(cache, v.page)
			used -= c.bytes
		}
		cache[r.Page] = &cached{nextUse: next[i], bytes: r.Bytes}
		used += r.Bytes
		heap.Push(&h, victim{nextUse: next[i], page: r.Page})
	}
	return res
}

// SimulateLRU replays the same trace under LRU; used by tests to check
// OPT's optimality property and by ablations.
func SimulateLRU(trace []Ref, capacity int64) Result {
	if capacity <= 0 {
		panic("opt: capacity must be positive")
	}
	type node struct {
		page       storage.PageID
		bytes      int64
		prev, next *node
	}
	var head, tail *node // head = LRU
	byPage := make(map[storage.PageID]*node)
	var used int64
	unlink := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushBack := func(n *node) {
		n.prev = tail
		if tail != nil {
			tail.next = n
		}
		tail = n
		if head == nil {
			head = n
		}
	}
	var res Result
	for _, r := range trace {
		res.Refs++
		if n, ok := byPage[r.Page]; ok {
			res.Hits++
			unlink(n)
			pushBack(n)
			continue
		}
		res.Misses++
		res.BytesLoaded += r.Bytes
		for used+r.Bytes > capacity {
			v := head
			if v == nil {
				panic("opt: lru accounting underflow")
			}
			unlink(v)
			delete(byPage, v.page)
			used -= v.bytes
		}
		n := &node{page: r.Page, bytes: r.Bytes}
		byPage[r.Page] = n
		used += r.Bytes
		pushBack(n)
	}
	return res
}
