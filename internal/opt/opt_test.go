package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func uniform(ids ...int) []Ref {
	out := make([]Ref, len(ids))
	for i, id := range ids {
		out[i] = Ref{Page: storage.PageID(id), Bytes: 1}
	}
	return out
}

func TestBeladyClassicExample(t *testing.T) {
	// The canonical OPT example: 3-frame cache.
	trace := uniform(7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1)
	res := Simulate(trace, 3)
	if res.Misses != 9 {
		t.Fatalf("OPT misses = %d, want 9 (classic Belady result)", res.Misses)
	}
	if res.Hits != int64(len(trace))-9 {
		t.Fatalf("hits = %d", res.Hits)
	}
}

func TestAllFitsNoEvictions(t *testing.T) {
	trace := uniform(1, 2, 3, 1, 2, 3)
	res := Simulate(trace, 10)
	if res.Misses != 3 || res.Hits != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSinglePage(t *testing.T) {
	trace := uniform(5, 5, 5, 5)
	res := Simulate(trace, 1)
	if res.Misses != 1 || res.Hits != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestVariableSizedPages(t *testing.T) {
	trace := []Ref{
		{Page: 1, Bytes: 6}, {Page: 2, Bytes: 6}, {Page: 1, Bytes: 6},
	}
	// Capacity 10 can hold only one 6-byte page at a time.
	res := Simulate(trace, 10)
	if res.Misses != 3 {
		t.Fatalf("misses = %d, want 3", res.Misses)
	}
	if res.BytesLoaded != 18 {
		t.Fatalf("bytes = %d", res.BytesLoaded)
	}
}

func TestLRUSequentialFloodsCache(t *testing.T) {
	// Cyclic scan over N+1 pages with capacity N: LRU misses everything.
	var trace []Ref
	for r := 0; r < 3; r++ {
		for i := 0; i < 5; i++ {
			trace = append(trace, Ref{Page: storage.PageID(i), Bytes: 1})
		}
	}
	lru := SimulateLRU(trace, 4)
	if lru.Hits != 0 {
		t.Fatalf("LRU hits = %d, want 0 on cyclic overflow", lru.Hits)
	}
	// OPT keeps 3 pages across rounds: strictly better.
	o := Simulate(trace, 4)
	if o.Misses >= lru.Misses {
		t.Fatalf("OPT misses %d not better than LRU %d", o.Misses, lru.Misses)
	}
}

// Property (optimality): OPT never has more misses than LRU on any trace
// with uniform page sizes.
func TestPropertyOPTBeatsLRU(t *testing.T) {
	f := func(seed int64, n uint8, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pages := int(spread)%20 + 2
		var trace []Ref
		for i := 0; i < int(n)+10; i++ {
			trace = append(trace, Ref{Page: storage.PageID(rng.Intn(pages)), Bytes: 1})
		}
		capBytes := int64(rng.Intn(pages-1) + 1)
		o := Simulate(trace, capBytes)
		l := SimulateLRU(trace, capBytes)
		return o.Misses <= l.Misses && o.Refs == l.Refs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: accounting balances and misses at least equal the number of
// distinct pages (cold misses are unavoidable).
func TestPropertyAccounting(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		distinct := make(map[storage.PageID]bool)
		var trace []Ref
		for i := 0; i < int(n)+1; i++ {
			id := storage.PageID(rng.Intn(12))
			distinct[id] = true
			trace = append(trace, Ref{Page: id, Bytes: 1})
		}
		res := Simulate(trace, 4)
		return res.Hits+res.Misses == int64(len(trace)) &&
			res.Misses >= int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := Simulate(nil, 100)
	if res != (Result{}) {
		t.Fatalf("res = %+v", res)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(uniform(1), 0)
}
