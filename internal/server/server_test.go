package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tpch"
	"repro/internal/workload"
	"repro/wire"
)

var (
	dbOnce sync.Once
	testDB *tpch.DB
)

// db generates one small TPC-H instance shared by every test; each test
// builds its own Server (and engine) over it.
func db() *tpch.DB {
	dbOnce.Do(func() { testDB = tpch.Generate(0.01, 1) })
	return testDB
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Serve: workload.DefaultServeConfig()}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := New(db(), cfg)
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ConnContext = srv.ConnContext
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postQuery sends one query and splits the NDJSON response into its row
// lines and trailer.
func postQuery(t *testing.T, ts *httptest.Server, body string) (rows []string, trailer wire.QueryResult) {
	t.Helper()
	resp, err := http.Post(ts.URL+wire.PathQuery, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("Content-Type"); got != wire.ContentTypeNDJSON {
		t.Errorf("Content-Type = %q, want %q", got, wire.ContentTypeNDJSON)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawTrailer := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line[0] == '[' {
			if sawTrailer {
				t.Fatal("row line after trailer")
			}
			rows = append(rows, line)
			continue
		}
		if sawTrailer {
			t.Fatal("second trailer line")
		}
		sawTrailer = true
		if err := json.Unmarshal([]byte(line), &trailer); err != nil {
			t.Fatalf("trailer %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if !sawTrailer {
		t.Fatal("no trailer line")
	}
	return rows, trailer
}

// TestQueryRoundTrip: the q1/q6 aggregations and a predicated scan over
// the wire, with exact outcome reconciliation on the server stats.
func TestQueryRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	_, tr := postQuery(t, ts, `{"Kind":"q6"}`)
	if tr.Outcome != wire.OutcomeOK || tr.Rows == 0 {
		t.Errorf("q6 trailer = %+v, want ok with rows", tr)
	}
	if tr.LatencyMS <= 0 || tr.LatencyMS < tr.QueueWaitMS {
		t.Errorf("q6 latency %.3fms / queue wait %.3fms implausible", tr.LatencyMS, tr.QueueWaitMS)
	}

	rows, tr := postQuery(t, ts, `{"Kind":"q1","Hi":10000}`)
	if tr.Outcome != wire.OutcomeOK || int64(len(rows)) != tr.Rows {
		t.Errorf("q1: %d row lines, trailer %+v", len(rows), tr)
	}

	// A scan restricted by an explicit shipdate window returns exactly
	// the rows inside it, and the trailer row count matches the stream.
	rows, tr = postQuery(t, ts, `{"Kind":"scan","Hi":5000,"Predicate":{"Col":"l_shipdate","Lo":0,"Hi":2000}}`)
	if int64(len(rows)) != tr.Rows {
		t.Errorf("scan: %d row lines != trailer %d", len(rows), tr.Rows)
	}

	// Tenant pinning: an explicit tenant is reduced into the domain count.
	_, tr = postQuery(t, ts, fmt.Sprintf(`{"Kind":"q6","Hi":1000,"Tenant":%d}`, srv.eng.TenantCount()+1))
	if tr.Tenant != 1 {
		t.Errorf("tenant = %d, want 1", tr.Tenant)
	}

	st := srv.Statz()
	resolved := st.Stats.Completed + st.Stats.Rejected + st.Stats.TimedOut + st.Stats.Cancelled
	if st.Arrived != 4 || resolved != st.Arrived {
		t.Errorf("stats: arrived %d, resolved %d (%+v)", st.Arrived, resolved, st.Stats)
	}
	if st.Stats.Completed != 4 {
		t.Errorf("completed = %d, want 4", st.Stats.Completed)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, c := range []struct {
		body string
		code int
	}{
		{`{"Kind":"q7"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"Predicate":{"Col":"no_such_col","Lo":0,"Hi":1}}`, http.StatusBadRequest},
		{`{"Predicate":{"Col":"l_shipdate","Lo":9,"Hi":3}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+wire.PathQuery, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var rep wire.ErrorReply
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if resp.StatusCode != c.code || rep.Error == "" {
			t.Errorf("%s: status %d reply %+v, want %d with error", c.body, resp.StatusCode, rep, c.code)
		}
	}
}

func TestStatzSchema(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + wire.PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	if st.Version != wire.Version {
		t.Errorf("Version = %q", st.Version)
	}
	if st.NumTuples == 0 || st.Tenants == 0 {
		t.Errorf("NumTuples/Tenants = %d/%d, want nonzero", st.NumTuples, st.Tenants)
	}
	if st.Stats.MPL != 8 || st.Stats.Admission != "fifo" || st.Stats.Policy == "" {
		t.Errorf("Stats labels = %+v", st.Stats)
	}
	if st.Draining {
		t.Error("Draining = true on a live server")
	}
}

// TestClientDisconnectCancels: dropping the connection mid-stream must
// cancel the query (client-cancel cause) and account it as Cancelled —
// run under -race this also exercises the handler/producer teardown.
func TestClientDisconnectCancels(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.SendBuf = 2 })

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+wire.PathQuery,
		strings.NewReader(`{"Kind":"scan"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	// Read one line to be sure the query is executing, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Statz()
		if st.Stats.Cancelled == 1 {
			if st.Arrived != 1 {
				t.Errorf("arrived = %d, want 1", st.Arrived)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never cancelled: %+v", st.Stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// gatedWriter is a ResponseWriter whose Write blocks until released —
// a client that never reads, without kernel socket buffers hiding the
// stall.
type gatedWriter struct {
	gate   chan struct{}
	header http.Header

	mu  sync.Mutex
	buf bytes.Buffer
}

func (g *gatedWriter) Header() http.Header { return g.header }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

// TestSlowReaderBackpressure: with the client stalled, the producer must
// park once the bounded send buffer fills — produced plateaus at most
// SendBuf+2 batches (buffer + writer-held + producer-held) into the
// table — and resume to completion when the client drains.
func TestSlowReaderBackpressure(t *testing.T) {
	const sendBuf = 2
	srv, _ := newTestServer(t, func(c *Config) { c.SendBuf = sendBuf })
	total := srv.eng.NumTuples()

	w := &gatedWriter{gate: make(chan struct{}), header: http.Header{}}
	req := httptest.NewRequest(http.MethodPost, wire.PathQuery, strings.NewReader(`{"Kind":"scan"}`))
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Handler().ServeHTTP(w, req)
	}()

	// Wait for the producer to stall: produced stops moving well short
	// of the table.
	var last, stable int64 = -1, 0
	deadline := time.Now().Add(10 * time.Second)
	for stable < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("producer never stalled (produced %d of %d)", srv.Produced(), total)
		}
		time.Sleep(10 * time.Millisecond)
		if p := srv.Produced(); p == last && p > 0 {
			stable++
		} else {
			last, stable = srv.Produced(), 0
		}
	}
	const batch = 1024 // exec.VectorSize: the largest batch a chunk holds
	if limit := int64((sendBuf + 2) * batch); last > limit {
		t.Errorf("produced %d rows while stalled, want <= %d (send buffer must bound it)", last, limit)
	}
	if last >= total {
		t.Fatalf("produced the whole table (%d rows) with a stalled client", last)
	}

	// Release the client; the stream must run to completion.
	close(w.gate)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not finish after the client resumed")
	}
	if got := srv.Delivered(); got != total {
		t.Errorf("delivered %d rows, want %d", got, total)
	}
	var trailer wire.QueryResult
	lines := bytes.Split(bytes.TrimSpace(w.buf.Bytes()), []byte{'\n'})
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if trailer.Rows != total || trailer.Outcome != wire.OutcomeOK {
		t.Errorf("trailer = %+v, want %d rows ok", trailer, total)
	}
}

// TestUpdateRoundTrip drives the write path over the socket: updates of
// every kind are admitted, applied to the PDT store and answered with a
// versioned UpdateResult; crossing the checkpoint trigger completes a
// background merge; reads pinned after the updates still stream; and
// the ledger reconciles with writes counted. A private database keeps
// the checkpoint's table mutation away from the shared fixture.
func TestUpdateRoundTrip(t *testing.T) {
	priv := tpch.Generate(0.01, 2)
	cfg := Config{Serve: workload.DefaultServeConfig()}
	cfg.Serve.CheckpointOps = 8
	srv := New(priv, cfg)
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ConnContext = srv.ConnContext
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	post := func(body string) (wire.UpdateResult, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+wire.PathUpdate, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST update: %v", err)
		}
		defer resp.Body.Close()
		var res wire.UpdateResult
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatalf("decode UpdateResult: %v", err)
			}
		}
		return res, resp.StatusCode
	}

	var lastVersion int64
	for i, body := range []string{
		`{"Kind":"insert","Batch":3}`,
		`{"Kind":"modify","Batch":4}`,
		`{"Kind":"delete","Batch":2}`,
		`{"Batch":2}`, // kind defaults to modify
	} {
		res, code := post(body)
		if code != http.StatusOK || res.Outcome != wire.OutcomeOK {
			t.Fatalf("update %d: status %d result %+v", i, code, res)
		}
		if res.Applied == 0 {
			t.Errorf("update %d applied nothing: %+v", i, res)
		}
		if res.Version <= lastVersion {
			t.Errorf("update %d version %d did not advance past %d", i, res.Version, lastVersion)
		}
		lastVersion = res.Version
	}

	if _, code := post(`{"Kind":"upsert"}`); code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", code)
	}

	// Push past the checkpoint trigger and wait out the background merge.
	for i := 0; i < 4; i++ {
		if res, code := post(`{"Kind":"modify","Batch":4}`); code != http.StatusOK || res.Outcome != wire.OutcomeOK {
			t.Fatalf("trigger update %d: status %d result %+v", i, code, res)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for srv.Statz().Stats.Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reads still work over the checkpointed table.
	if _, tr := postQuery(t, ts, `{"Kind":"q6","Hi":5000}`); tr.Outcome != wire.OutcomeOK {
		t.Fatalf("post-checkpoint read: %+v", tr)
	}

	st := srv.Statz()
	resolved := st.Stats.Completed + st.Stats.Rejected + st.Stats.TimedOut + st.Stats.Cancelled
	if resolved != st.Arrived {
		t.Errorf("ledger does not reconcile: %d resolved, %d arrived", resolved, st.Arrived)
	}
	if st.Stats.Writes != 8 {
		t.Errorf("Writes = %d, want 8", st.Stats.Writes)
	}
	if st.Stats.WrQps <= 0 {
		t.Errorf("WrQps = %v, want positive", st.Stats.WrQps)
	}
	if st.Stats.Checkpoints == 0 {
		t.Error("statz lost the checkpoint count")
	}
}

// TestDrain: after Drain, health flips to 503, new queries resolve
// "draining" without polluting the arrival stats, and the reconciliation
// invariant holds.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	if _, tr := postQuery(t, ts, `{"Kind":"q6","Hi":1000}`); tr.Outcome != wire.OutcomeOK {
		t.Fatalf("pre-drain query: %+v", tr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	resp, err := http.Post(ts.URL+wire.PathQuery, "application/json", strings.NewReader(`{"Kind":"q6"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep wire.ErrorReply
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rep.Outcome != wire.OutcomeDraining {
		t.Errorf("draining POST: status %d reply %+v", resp.StatusCode, rep)
	}

	if resp, err = http.Get(ts.URL + wire.PathHealth); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d", resp.StatusCode)
	}

	st := srv.Statz()
	if !st.Draining || st.DrainRejected != 1 {
		t.Errorf("statz: draining=%v drainRejected=%d", st.Draining, st.DrainRejected)
	}
	if st.Arrived != 1 || st.Stats.Completed != 1 {
		t.Errorf("drain polluted stats: %+v", st)
	}
}
