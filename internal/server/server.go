// Package server fronts the serving engine with HTTP: the admission
// scheduler is the front door, every request's lifecycle handle is tied
// to its HTTP context (disconnect → client-cancel, request deadline →
// query deadline), and results stream back as NDJSON through a bounded
// per-query send buffer — so a slow client backpressures through the
// plan into XChg instead of buffering the result set in server memory.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	scanshare "repro"
	"repro/internal/exec"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/workload"
	"repro/wire"
)

// Config parameterizes the HTTP front end.
type Config struct {
	// Serve configures the underlying engine (policy, MPL, admission
	// policy, devices, ...); its Real flag is forced on.
	Serve workload.ServeConfig
	// SendBuf bounds each query's send buffer in batches (default 8).
	// When a client reads slower than the plan produces, the buffer
	// fills, the producer parks, and the stall propagates down the plan:
	// XChg's bounded exchange channels fill and its workers park too.
	SendBuf int
	// DrainTimeout bounds how long Drain waits for in-flight queries
	// (0 = wait until the caller's context expires).
	DrainTimeout time.Duration
}

// Server is the HTTP front end over one ServeEngine.
type Server struct {
	cfg Config
	eng *workload.ServeEngine
	mux *http.ServeMux

	connSeq  atomic.Int64 // connections accepted, for tenant assignment
	querySeq atomic.Int64
	draining atomic.Bool
	inflight atomic.Int64 // admitted queries still streaming

	// produced counts rows encoded by plan producers, delivered rows
	// written to clients; their gap is bounded by the send buffer —
	// the observable the backpressure test pins down.
	produced  atomic.Int64
	delivered atomic.Int64
}

// New builds a server over the generated database.
func New(db *tpch.DB, cfg Config) *Server {
	if cfg.SendBuf <= 0 {
		cfg.SendBuf = 8
	}
	s := &Server{cfg: cfg, eng: workload.NewServeEngine(db, cfg.Serve)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(wire.PathQuery, s.handleQuery)
	s.mux.HandleFunc(wire.PathUpdate, s.handleUpdate)
	s.mux.HandleFunc(wire.PathStatz, s.handleStatz)
	s.mux.HandleFunc(wire.PathHealth, s.handleHealth)
	return s
}

// Handler returns the HTTP handler (PathQuery, PathStatz, PathHealth).
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying serving engine (stats, scheduler).
func (s *Server) Engine() *workload.ServeEngine { return s.eng }

// Produced and Delivered report the cumulative row counts on either
// side of the send buffers.
func (s *Server) Produced() int64  { return s.produced.Load() }
func (s *Server) Delivered() int64 { return s.delivered.Load() }

type connIDKey struct{}

// ConnContext assigns each accepted connection an id; install it as
// http.Server.ConnContext. Connections map round-robin onto the
// engine's tenants, so a fleet of naive clients lands on all fairness
// domains without carrying tenant ids themselves.
func (s *Server) ConnContext(ctx context.Context, c net.Conn) context.Context {
	return context.WithValue(ctx, connIDKey{}, int(s.connSeq.Add(1)-1))
}

// Drain stops admitting queries (new ones resolve "draining") and waits
// until nothing is running, queued, or mid-stream. It returns nil on a
// clean drain, the context/timeout error otherwise.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.eng.Drain()
	if s.cfg.DrainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.eng.Idle() && s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close releases the engine. Call after Drain.
func (s *Server) Close() { s.eng.Close() }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := s.Statz()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// Statz snapshots the server: the live serve-table row in the wire
// schema plus scheduler gauges.
func (s *Server) Statz() wire.Statz {
	res := s.eng.Stats()
	cfg := s.eng.Config()
	devices := cfg.Config.Devices
	if devices <= 0 {
		devices = 1
	}
	iosched := cfg.Config.IOScheduler
	if iosched == "" {
		iosched = "fifo"
	}
	tier := "flat"
	if cfg.Config.FastDevices > 0 {
		tier = "tiered-rr"
	}
	admission := cfg.AdmissionPolicy
	if admission == "" {
		admission = "fifo"
	}
	shards := cfg.PoolShards
	if cfg.Policy == workload.CScan {
		shards = 0 // the ABM replaces the page pool
	}
	// Rate 0: arrivals are client-driven, there is no configured rate.
	// Selectivity 1: requests carry their own predicates.
	row := scanshare.ServeRowOf(res, 0, cfg.MPL, cfg.Policy.String(),
		shards, devices, iosched, tier, admission, 1)
	sch := s.eng.Scheduler()
	return wire.Statz{
		Version:       wire.Version,
		UptimeSec:     res.ElapsedSec,
		Draining:      s.draining.Load(),
		Running:       sch.Running(),
		Queued:        sch.Queued(),
		Arrived:       res.Sched.Arrived,
		DrainRejected: res.Sched.DrainRejected,
		NumTuples:     s.eng.NumTuples(),
		Tenants:       s.eng.TenantCount(),
		Stats:         row.Wire(),
	}
}

func writeError(w http.ResponseWriter, code int, rep wire.ErrorReply) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(rep)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req wire.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: "bad request body: " + err.Error()})
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = wire.KindQ6
	}
	switch kind {
	case wire.KindQ1, wire.KindQ6, wire.KindScan:
	default:
		writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: fmt.Sprintf("unknown kind %q (want q1, q6 or scan)", kind)})
		return
	}

	tenant := s.tenantOf(r, req.Tenant)

	rng := s.eng.ClipRange(req.Lo, req.Hi)
	var pred *exec.ScanPredicate
	if req.Predicate != nil {
		var err error
		pred, err = s.eng.PredicateNamed(req.Predicate.Col, req.Predicate.Lo, req.Predicate.Hi)
		if err != nil {
			writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: "bad predicate: " + err.Error()})
			return
		}
	} else if req.Selectivity > 0 {
		pred = s.eng.PredicateFor(req.Selectivity)
	}

	// Lifecycle: one handle from admission to the device queue. The
	// request deadline arms it; the HTTP context cancels it the moment
	// the client disconnects, wherever the query is.
	qc := s.eng.NewQueryCtx()
	if req.Deadline > 0 {
		qc.SetDeadline(s.eng.Now() + rt.Time(req.Deadline))
	}
	stop := context.AfterFunc(r.Context(), func() { qc.Cancel(rt.CauseClientCancel) })
	defer stop()

	q := sched.Query{
		Stream: tenant,
		Seq:    int(s.querySeq.Add(1) - 1),
		Tenant: tenant,
		Cost:   s.eng.Price(rng, pred),
		Ctx:    qc,
	}
	tk, outcome := s.eng.Admit(q)
	switch outcome {
	case sched.AdmitGranted:
	case sched.AdmitDraining:
		writeError(w, http.StatusServiceUnavailable, wire.ErrorReply{Error: "server draining", Outcome: wire.OutcomeDraining})
		return
	case sched.AdmitRejected:
		writeError(w, http.StatusServiceUnavailable, wire.ErrorReply{Error: "admission queue full", Outcome: wire.OutcomeRejected})
		return
	default: // AdmitDropped: died while queued
		if qc.Cause() == rt.CauseAdmissionTimeout {
			writeError(w, http.StatusGatewayTimeout, wire.ErrorReply{Error: "deadline passed in admission queue", Outcome: wire.OutcomeAdmissionTimeout})
		}
		// Client-cancel: the connection is gone; nothing to write.
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	plan, err := s.eng.BuildPlan(qc, kind, rng, pred)
	if err != nil {
		tk.Done()
		writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: err.Error()})
		return
	}

	w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
	rows, bytes, writeOK := s.stream(w, qc, plan)

	// Resolve the ticket first so /statz reconciles even while the
	// trailer is in flight.
	cancelled := qc.Cancelled()
	if cancelled {
		tk.Cancel(qc.Cause())
	} else {
		tk.Done()
	}
	if !writeOK {
		return
	}
	now := s.eng.Now()
	trailer := wire.QueryResult{
		Rows:        rows,
		Bytes:       bytes,
		Tenant:      tenant,
		Outcome:     wire.OutcomeOK,
		LatencyMS:   float64(now-tk.Arrive()) / 1e6,
		QueueWaitMS: float64(tk.Admit()-tk.Arrive()) / 1e6,
	}
	if cancelled {
		trailer.Outcome = qc.Cause().String()
		trailer.Error = qc.Err().Error()
	}
	b, _ := json.Marshal(trailer)
	w.Write(append(b, '\n'))
}

// tenantOf resolves a request's fairness domain: the connection's
// round-robin assignment unless the request pins one explicitly, either
// way reduced into the configured domain count.
func (s *Server) tenantOf(r *http.Request, explicit *int) int {
	tenants := s.eng.TenantCount()
	tenant, _ := r.Context().Value(connIDKey{}).(int)
	if explicit != nil {
		tenant = *explicit
	}
	tenant %= tenants
	if tenant < 0 {
		tenant += tenants
	}
	return tenant
}

// handleUpdate admits one update query through the same scheduler as
// reads — delta-size-priced, so sesf/wfq weigh writes against scans —
// and applies it to the engine's PDT store. The lifecycle binding
// matches reads: the HTTP context cancels a queued write the moment the
// client disconnects, and a cancelled write is never applied.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req wire.UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: "bad request body: " + err.Error()})
		return
	}
	kindName := req.Kind
	if kindName == "" {
		kindName = wire.KindModify
	}
	kind, err := workload.ParseUpdateKind(kindName)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorReply{Error: err.Error()})
		return
	}
	tenant := s.tenantOf(r, req.Tenant)

	qc := s.eng.NewQueryCtx()
	if req.Deadline > 0 {
		qc.SetDeadline(s.eng.Now() + rt.Time(req.Deadline))
	}
	stop := context.AfterFunc(r.Context(), func() { qc.Cancel(rt.CauseClientCancel) })
	defer stop()

	q := sched.Query{
		Stream: tenant,
		Seq:    int(s.querySeq.Add(1) - 1),
		Tenant: tenant,
		Cost:   s.eng.PriceUpdate(req.Batch),
		Ctx:    qc,
		Write:  true,
	}
	tk, outcome := s.eng.Admit(q)
	switch outcome {
	case sched.AdmitGranted:
	case sched.AdmitDraining:
		writeError(w, http.StatusServiceUnavailable, wire.ErrorReply{Error: "server draining", Outcome: wire.OutcomeDraining})
		return
	case sched.AdmitRejected:
		writeError(w, http.StatusServiceUnavailable, wire.ErrorReply{Error: "admission queue full", Outcome: wire.OutcomeRejected})
		return
	default: // AdmitDropped: died while queued; the write never applies
		if qc.Cause() == rt.CauseAdmissionTimeout {
			writeError(w, http.StatusGatewayTimeout, wire.ErrorReply{Error: "deadline passed in admission queue", Outcome: wire.OutcomeAdmissionTimeout})
		}
		// Client-cancel: the connection is gone; nothing to write.
		return
	}
	if qc.Cancelled() {
		// Granted but already dead (disconnect or deadline raced the
		// grant): resolve the ticket, skip the write.
		tk.Cancel(qc.Cause())
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	applied, version, pending, err := s.eng.ApplyUpdate(kind, req.Batch)
	tk.Done()
	if err != nil {
		writeError(w, http.StatusInternalServerError, wire.ErrorReply{Error: err.Error()})
		return
	}
	now := s.eng.Now()
	res := wire.UpdateResult{
		Applied:     applied,
		Tenant:      tenant,
		Outcome:     wire.OutcomeOK,
		Version:     version,
		Pending:     pending,
		Checkpoints: s.eng.Checkpoints(),
		LatencyMS:   float64(now-tk.Arrive()) / 1e6,
		QueueWaitMS: float64(tk.Admit()-tk.Arrive()) / 1e6,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// batchChunk is one encoded batch in flight between producer and writer.
type batchChunk struct {
	data []byte
	n    int64
}

// stream runs the plan and writes its rows as NDJSON. The producer
// goroutine drives the plan and parks on the bounded buf channel when
// the writer (i.e. the client) falls behind — plan.Next is then not
// called, XChg's exchange channels fill, and its workers park: client
// backpressure reaches the scan. Cancellation (client disconnect,
// deadline) unblocks both sides.
func (s *Server) stream(w http.ResponseWriter, qc *exec.QueryCtx, plan exec.Op) (rows, bytes int64, writeOK bool) {
	buf := make(chan batchChunk, s.cfg.SendBuf)
	cancelCh := make(chan struct{})
	remove := qc.OnCancel(func() { close(cancelCh) })
	defer remove()

	go func() {
		defer close(buf)
		plan.Open()
		defer plan.Close()
		schema := plan.Schema()
		for {
			b := plan.Next()
			if b == nil {
				return
			}
			chunk := batchChunk{data: encodeBatch(schema, b), n: int64(b.N)}
			s.produced.Add(chunk.n)
			select {
			case buf <- chunk:
			case <-cancelCh:
				return
			}
		}
	}()

	flusher, _ := w.(http.Flusher)
	writeOK = true
	for chunk := range buf {
		if !writeOK {
			continue // drain so the producer finishes its in-flight send
		}
		if _, err := w.Write(chunk.data); err != nil {
			// The client is gone; kill the query at its next check.
			qc.Cancel(rt.CauseClientCancel)
			writeOK = false
			continue
		}
		rows += chunk.n
		bytes += int64(len(chunk.data))
		s.delivered.Add(chunk.n)
		if flusher != nil {
			flusher.Flush()
		}
	}
	return rows, bytes, writeOK
}

// encodeBatch renders a batch as NDJSON rows: one JSON array per row.
func encodeBatch(schema []storage.ColumnType, b *exec.Batch) []byte {
	out := make([]byte, 0, b.N*16)
	for i := 0; i < b.N; i++ {
		out = append(out, '[')
		for j, v := range b.Vecs {
			if j > 0 {
				out = append(out, ',')
			}
			switch schema[j] {
			case storage.Int64:
				out = strconv.AppendInt(out, v.I64[i], 10)
			case storage.Float64:
				out = strconv.AppendFloat(out, v.F64[i], 'g', -1, 64)
			default:
				out = strconv.AppendQuote(out, v.Str[i])
			}
		}
		out = append(out, ']', '\n')
	}
	return out
}
