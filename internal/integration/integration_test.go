// Package integration exercises whole-system scenarios across modules:
// all policies answering the same queries identically, updates merging
// under concurrent cooperative scans, checkpoints racing scans, and the
// full experiment pipeline end to end.
package integration

import (
	"sort"
	"testing"
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/pbm"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// sys bundles one simulated instance with a chosen policy.
type sys struct {
	eng  *sim.Engine
	disk *iosim.DeviceArray
	pool *buffer.Pool
	pbm  *pbm.PBM
	abm  *abm.ABM
	ctx  *exec.Ctx
}

func newSys(policy workload.Policy, capBytes int64) *sys {
	s := &sys{eng: sim.NewEngine()}
	s.disk = iosim.New(rt.Sim(s.eng), iosim.Config{Bandwidth: 500e6, SeekLatency: 20 * time.Microsecond})
	s.ctx = &exec.Ctx{RT: rt.Sim(s.eng), ReadAheadTuples: 8192}
	switch policy {
	case workload.CScan:
		s.abm = abm.New(rt.Sim(s.eng), s.disk, abm.Config{ChunkTuples: 2048, Capacity: capBytes})
		s.ctx.ABM = s.abm
	default:
		var pol buffer.Policy
		switch policy {
		case workload.MRU:
			pol = buffer.NewMRU()
		case workload.Clock:
			pol = buffer.NewClock()
		case workload.PBM:
			s.pbm = pbm.New(s.eng, pbm.DefaultConfig())
			pol = s.pbm
		default:
			pol = buffer.NewLRU()
		}
		s.pool = buffer.NewPool(rt.Sim(s.eng), s.disk, pol, capBytes)
		s.ctx.Pool = s.pool
		if s.pbm != nil {
			// Ctx.PBM is an interface; assigning a typed-nil *pbm.PBM
			// would defeat the scans' nil check.
			s.ctx.PBM = s.pbm
		}
	}
	return s
}

func (s *sys) run(fn func()) {
	s.eng.Go("main", func() {
		fn()
		if s.abm != nil {
			s.abm.Stop()
		}
	})
	s.eng.Run()
}

func (s *sys) scan(snap *storage.Snapshot, cols []int, ranges []exec.RIDRange, deltas *pdt.PDT) exec.Operator {
	if s.abm != nil {
		return &exec.CScan{Ctx: s.ctx, Snap: snap, Cols: cols, Ranges: ranges, PDT: deltas}
	}
	return &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: cols, Ranges: ranges, PDT: deltas}
}

func buildTable(t testing.TB, cat *storage.Catalog, n int) *storage.Snapshot {
	t.Helper()
	tb, err := cat.CreateTable("t", storage.Schema{
		{Name: "k", Type: storage.Int64, Width: 8},
		{Name: "grp", Type: storage.Int64, Width: 1},
		{Name: "v", Type: storage.Float64, Width: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	ks := make([]int64, n)
	gs := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = int64(i)
		gs[i] = int64(i % 11)
		vs[i] = float64(i%101) / 3
	}
	d.I64[0] = ks
	d.I64[1] = gs
	d.F64[2] = vs
	snap, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestAllPoliciesSameAnswers: every buffer-management strategy must
// return identical query results — policies change performance, never
// semantics.
func TestAllPoliciesSameAnswers(t *testing.T) {
	const n = 30000
	type answer struct {
		sums   map[int64]float64
		counts map[int64]int64
	}
	compute := func(policy workload.Policy) answer {
		cat := storage.NewCatalog()
		s := newSys(policy, 256<<10) // small pool: eviction paths active
		snap := buildTable(t, cat, n)
		ans := answer{sums: map[int64]float64{}, counts: map[int64]int64{}}
		s.run(func() {
			res := exec.Collect(&exec.HashAggr{
				Child:  s.scan(snap, []int{1, 2}, []exec.RIDRange{{Lo: 0, Hi: n}}, nil),
				Groups: []int{0},
				Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}, {Kind: exec.AggCount}},
			})
			for i := 0; i < res.N; i++ {
				g := res.Vecs[0].I64[i]
				ans.sums[g] = res.Vecs[1].F64[i]
				ans.counts[g] = res.Vecs[2].I64[i]
			}
		})
		return ans
	}
	ref := compute(workload.LRU)
	if len(ref.sums) != 11 {
		t.Fatalf("reference groups = %d", len(ref.sums))
	}
	for _, pol := range []workload.Policy{workload.MRU, workload.Clock, workload.PBM, workload.CScan} {
		got := compute(pol)
		for g, want := range ref.sums {
			if got.sums[g] != want || got.counts[g] != ref.counts[g] {
				t.Fatalf("%v: group %d = (%v,%d), want (%v,%d)",
					pol, g, got.sums[g], got.counts[g], want, ref.counts[g])
			}
		}
	}
}

// TestUpdatesVisibleUnderEveryScanPath: PDT updates merge identically
// through Scan, CScan and OScan.
func TestUpdatesVisibleUnderEveryScanPath(t *testing.T) {
	const n = 12000
	catalogs := map[string]*storage.Catalog{}
	makeDeltas := func(schema storage.Schema) *pdt.PDT {
		p := pdt.New(schema, n)
		p.DeleteAt(0)
		p.DeleteAt(5000)
		p.InsertAt(100, pdt.Row{pdt.IntVal(-1), pdt.IntVal(3), pdt.FloatVal(9)})
		p.ModifyAt(7000, 2, pdt.FloatVal(-5))
		return p
	}
	collectSorted := func(kind string) []int64 {
		cat := storage.NewCatalog()
		catalogs[kind] = cat
		var policy workload.Policy = workload.PBM
		if kind == "cscan" {
			policy = workload.CScan
		}
		s := newSys(policy, 1<<20)
		snap := buildTable(t, cat, n)
		deltas := makeDeltas(snap.Table().Schema)
		var vals []int64
		s.run(func() {
			var op exec.Operator
			switch kind {
			case "scan":
				op = &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: []exec.RIDRange{{Lo: 0, Hi: deltas.NumTuples()}}, PDT: deltas}
			case "cscan":
				op = &exec.CScan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: []exec.RIDRange{{Lo: 0, Hi: deltas.NumTuples()}}, PDT: deltas}
			case "oscan":
				op = &exec.OScan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: []exec.RIDRange{{Lo: 0, Hi: deltas.NumTuples()}}, PDT: deltas, SectionTuples: 3000}
			}
			res := exec.Collect(op)
			vals = append(vals, res.Vecs[0].I64[:res.N]...)
		})
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return vals
	}
	want := collectSorted("scan")
	if int64(len(want)) != n-2+1 {
		t.Fatalf("scan rows = %d", len(want))
	}
	for _, kind := range []string{"cscan", "oscan"} {
		got := collectSorted(kind)
		if len(got) != len(want) {
			t.Fatalf("%s rows = %d, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s value mismatch at %d: %d vs %d", kind, i, got[i], want[i])
			}
		}
	}
}

// TestCheckpointDuringConcurrentScans: a reader on the old snapshot keeps
// scanning consistently while a checkpoint installs a new version, and a
// reader starting afterwards sees the new version (§2.1, Figure 7).
func TestCheckpointDuringConcurrentScans(t *testing.T) {
	const n = 16000
	cat := storage.NewCatalog()
	s := newSys(workload.CScan, 1<<22)
	snap := buildTable(t, cat, n)
	store := pdt.NewStore(snap.Table())

	var oldCount, newCount int64
	s.run(func() {
		wg := s.eng.NewWaitGroup()
		wg.Add(2)
		s.eng.Go("old-reader", func() {
			defer wg.Done()
			oldCount = exec.Drain(s.scan(snap, []int{0}, []exec.RIDRange{{Lo: 0, Hi: n}}, nil))
		})
		s.eng.Go("updater", func() {
			defer wg.Done()
			s.eng.Sleep(time.Millisecond)
			tx := store.Begin()
			tx.Delete(3)
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			newSnap, err := store.Checkpoint()
			if err != nil {
				t.Error(err)
				return
			}
			newCount = exec.Drain(s.scan(newSnap, []int{0}, []exec.RIDRange{{Lo: 0, Hi: newSnap.NumTuples()}}, nil))
		})
		wg.Wait()
	})
	if oldCount != n {
		t.Fatalf("old reader saw %d rows, want %d", oldCount, n)
	}
	if newCount != n-1 {
		t.Fatalf("new reader saw %d rows, want %d", newCount, n-1)
	}
}

// TestThrottleReducesIOUnderPressure compares PBM with and without the
// §5 attach&throttle extension at extreme memory pressure with many
// overlapping full scans — the regime the paper identifies as PBM's weak
// point.
func TestThrottleReducesIOUnderPressure(t *testing.T) {
	db := tpch.Generate(0.004, 5)
	run := func(throttle bool) int64 {
		cfg := workload.DefaultMicroConfig()
		cfg.Policy = workload.PBM
		cfg.Streams = 6
		cfg.QueriesPerStream = 4
		cfg.ThreadsPerQuery = 1
		cfg.BufferFrac = 0.1
		cfg.RangePercents = []int{100}
		cfg.Throttle = throttle
		return workload.RunMicro(db, cfg).TotalIOBytes
	}
	plain := run(false)
	throttled := run(true)
	// The paper only sketches attach&throttle (§5) without evaluating
	// it; at simulation scale the pause heuristic can go either way, so
	// the honest requirements are that the mechanism engages (the I/O
	// changes), results stay correct (checked by the drivers), and the
	// regression is bounded.
	if throttled == plain {
		t.Log("throttle advice never fired at this configuration")
	}
	if throttled > plain*2 {
		t.Fatalf("throttled I/O %d more than doubles plain %d", throttled, plain)
	}
	t.Logf("10%% pool, 100%% scans: plain PBM I/O %d, throttled %d", plain, throttled)
}

// TestExperimentPipelineEndToEnd runs one full figure point per driver
// at tiny scale, checking the complete path data→plan→policy→metrics.
func TestExperimentPipelineEndToEnd(t *testing.T) {
	db := tpch.Generate(0.004, 9)
	micro := workload.DefaultMicroConfig()
	micro.Streams = 2
	micro.QueriesPerStream = 2
	micro.ThreadsPerQuery = 2
	micro.TraceForOPT = true
	res := workload.RunMicro(db, micro)
	if res.AvgStreamSec <= 0 || res.TotalIOBytes <= 0 || len(res.Trace) == 0 {
		t.Fatalf("bad micro result: %+v", res)
	}
	if res.OPTIOBytes() > res.TotalIOBytes {
		t.Fatal("OPT worse than PBM")
	}
	tp := workload.DefaultTPCHConfig()
	tp.Streams = 2
	tp.QueriesPerStream = 4
	tpres := workload.RunTPCH(db, tp)
	if tpres.AvgStreamSec <= 0 || tpres.TotalIOBytes <= 0 {
		t.Fatalf("bad tpch result: %+v", tpres)
	}
}
