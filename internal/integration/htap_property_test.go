package integration

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// htapSys is a runtime-parameterized slice of the engine — the HTAP
// property must hold both under the deterministic sim runtime (where
// checkpoints interleave with a scan's modeled I/O waits) and under the
// real-threaded runtime with -race (where they genuinely overlap).
type htapSys struct {
	r    rt.Runtime
	eng  *sim.Engine // nil in real mode
	disk *iosim.DeviceArray
	pool *buffer.Pool
	abm  *abm.ABM
	ctx  *exec.Ctx
}

func newHTAPSys(cscan, real bool, capBytes int64) *htapSys {
	s := &htapSys{}
	if real {
		s.r = rt.NewReal()
	} else {
		s.eng = sim.NewEngine()
		s.r = rt.Sim(s.eng)
	}
	s.disk = iosim.New(s.r, iosim.Config{Bandwidth: 500e6, SeekLatency: 20 * time.Microsecond})
	s.ctx = &exec.Ctx{RT: s.r, ReadAheadTuples: 8192}
	if cscan {
		s.abm = abm.New(s.r, s.disk, abm.Config{ChunkTuples: 2048, Capacity: capBytes})
		s.ctx.ABM = s.abm
	} else {
		s.pool = buffer.NewPool(s.r, s.disk, buffer.NewLRU(), capBytes)
		s.ctx.Pool = s.pool
	}
	return s
}

func (s *htapSys) run(fn func()) {
	if s.eng != nil {
		s.eng.Go("main", func() {
			fn()
			if s.abm != nil {
				s.abm.Stop()
			}
		})
		s.eng.Run()
		return
	}
	fn()
	if s.abm != nil {
		s.abm.Stop()
	}
}

// viewImage materializes the pinned view's expected key column and
// value sum — the ground truth a snapshot-consistent scan must return.
func viewImage(view pdt.View) (keys []int64, vsum float64) {
	n := view.NumTuples()
	if view.Deltas == nil {
		keys = view.Stable.ReadInt64(0, 0, n, nil)
		for _, v := range view.Stable.ReadFloat64(2, 0, n, nil) {
			vsum += v
		}
		return keys, vsum
	}
	img := view.Deltas.Image(view.Stable)
	keys = img.I64[0]
	for _, v := range img.F64[2] {
		vsum += v
	}
	return keys, vsum
}

// TestPropertyPinnedScanUnderUpdates is the HTAP snapshot-consistency
// property: a scan that pinned a (snapshot, PDT-version) view returns
// exactly that version's tuple set and aggregates, no matter how many
// inserts, deletes, modifies and checkpoint/merge cycles commit while
// it runs. Checked for both scan operators on both runtimes; run with
// -race to make the real-mode variants meaningful.
func TestPropertyPinnedScanUnderUpdates(t *testing.T) {
	const n = 8192
	for _, cscan := range []bool{false, true} {
		for _, real := range []bool{false, true} {
			name := fmt.Sprintf("scan=%v/real=%v", cscan, real)
			if cscan {
				name = fmt.Sprintf("cscan=%v/real=%v", cscan, real)
			}
			t.Run(name, func(t *testing.T) {
				cat := storage.NewCatalog()
				s := newHTAPSys(cscan, real, 1<<26)
				snap := buildTable(t, cat, n)
				store := pdt.NewStore(snap.Table())
				s.run(func() {
					wg := s.r.NewWaitGroup()
					// Writers: a stream of single-op transactions moving
					// keys around, growing and shrinking the table.
					for w := 0; w < 3; w++ {
						w := w
						wg.Add(1)
						s.r.Go("writer", func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(100 + w)))
							for i := 0; i < 150; i++ {
								err := store.Update(func(tx *pdt.Tx) error {
									nn := tx.NumTuples()
									if nn == 0 {
										return nil
									}
									rid := rng.Int63n(nn)
									switch rng.Intn(3) {
									case 0:
										tx.Insert(rid, pdt.Row{
											pdt.IntVal(rng.Int63n(n)),
											pdt.IntVal(rid % 11),
											pdt.FloatVal(float64(rng.Intn(7))),
										})
									case 1:
										tx.Delete(rid)
									default:
										tx.Modify(rid, 0, pdt.IntVal(rng.Int63n(n)))
									}
									return nil
								})
								if err != nil {
									t.Errorf("writer %d: %v", w, err)
									return
								}
								if i%16 == 0 {
									s.r.Sleep(10 * time.Microsecond)
								}
							}
						})
					}
					// Checkpointer: repeated online merges, each retiring
					// the stable snapshot scans may still be pinned to.
					wg.Add(1)
					s.r.Go("checkpointer", func() {
						defer wg.Done()
						for i := 0; i < 12; i++ {
							s.r.Sleep(40 * time.Microsecond)
							store.PropagateWriteToRead()
							if _, err := store.Checkpoint(); err != nil {
								t.Errorf("checkpoint %d: %v", i, err)
								return
							}
						}
					})
					// Scanners: pin a view, compute its ground truth, scan
					// it, and demand exact agreement — while the store
					// churns underneath.
					for g := 0; g < 2; g++ {
						g := g
						wg.Add(1)
						s.r.Go("scanner", func() {
							defer wg.Done()
							for i := 0; i < 10; i++ {
								view := store.View()
								wantKeys, wantSum := viewImage(view)
								ranges := []exec.RIDRange{{Lo: 0, Hi: view.NumTuples()}}
								var op exec.Operator
								if s.abm != nil {
									op = &exec.CScan{Ctx: s.ctx, Snap: view.Stable, Cols: []int{0, 2}, Ranges: ranges, PDT: view.Deltas}
								} else {
									op = &exec.Scan{Ctx: s.ctx, Snap: view.Stable, Cols: []int{0, 2}, Ranges: ranges, PDT: view.Deltas}
								}
								res := exec.Collect(op)
								if int64(res.N) != view.NumTuples() {
									t.Errorf("scanner %d iter %d: got %d tuples, pinned view has %d",
										g, i, res.N, view.NumTuples())
									return
								}
								got := make([]int64, res.N)
								var gotSum float64
								for j := 0; j < res.N; j++ {
									got[j] = res.Vecs[0].I64[j]
									gotSum += res.Vecs[1].F64[j]
								}
								want := append([]int64(nil), wantKeys...)
								sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
								sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
								for j := range want {
									if got[j] != want[j] {
										t.Errorf("scanner %d iter %d: tuple set diverged at %d: got key %d, want %d",
											g, i, j, got[j], want[j])
										return
									}
								}
								if gotSum != wantSum {
									t.Errorf("scanner %d iter %d: sum(v) = %v, want %v", g, i, gotSum, wantSum)
									return
								}
								s.r.Sleep(25 * time.Microsecond)
							}
						})
					}
					wg.Wait()
				})
			})
		}
	}
}
