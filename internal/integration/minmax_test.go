package integration

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/minmax"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestMinMaxPrunedScan wires the §2.3 pieces together: a MinMax index
// restricts a selective scan to a few fine-grained ranges, the Scan
// operator serves them, and the result matches the unpruned plan while
// reading far fewer pages.
func TestMinMaxPrunedScan(t *testing.T) {
	cat := storage.NewCatalog()
	s := newSys(workload.PBM, 1<<24)
	snap := buildTable(t, cat, 40000)
	// Column 0 (k) is sorted 0..n-1: ideal for MinMax pruning.
	ix := minmax.Build(snap, 0, 2048)
	s.run(func() {
		want := exec.Collect(&exec.Select{
			Child: &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: []exec.RIDRange{{Lo: 0, Hi: 40000}}},
			Pred:  exec.Between(exec.Col{Idx: 0, T: storage.Int64}, 30000, 30100),
		})
		missesFull := s.pool.Stats().Misses

		s.pool.FlushAll()
		ranges := ix.PruneRange(0, 40000, 30000, 30100)
		got := exec.Collect(&exec.Select{
			Child: &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: ranges},
			Pred:  exec.Between(exec.Col{Idx: 0, T: storage.Int64}, 30000, 30100),
		})
		missesPruned := s.pool.Stats().Misses - missesFull

		if got.N != want.N || got.N != 101 {
			t.Errorf("pruned N = %d, want %d (=101)", got.N, want.N)
			return
		}
		for i := 0; i < got.N; i++ {
			if got.Vecs[0].I64[i] != want.Vecs[0].I64[i] {
				t.Errorf("value mismatch at %d", i)
				return
			}
		}
		if missesPruned >= missesFull {
			t.Errorf("pruned scan read %d pages, full scan %d", missesPruned, missesFull)
		}
	})
}
