package integration

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestMinMaxPrunedScan wires the §2.3 pieces together: a MinMax zone map
// registered in the context lets a predicate-carrying Scan prune itself
// to a few fine-grained ranges at Open, and the result matches the
// unpruned plan while reading far fewer pages.
func TestMinMaxPrunedScan(t *testing.T) {
	cat := storage.NewCatalog()
	s := newSys(workload.PBM, 1<<24)
	snap := buildTable(t, cat, 40000)
	// Column 0 (k) is sorted 0..n-1: ideal for MinMax pruning.
	s.ctx.Zones = exec.NewZoneMaps()
	s.ctx.Zones.Build(snap, 0, 2048)
	s.ctx.Skip = &exec.SkipStats{}
	filter := exec.Between(exec.Col{Idx: 0, T: storage.Int64}, 30000, 30100)
	full := []exec.RIDRange{{Lo: 0, Hi: 40000}}
	s.run(func() {
		want := exec.Collect(&exec.Select{
			Child: &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: full},
			Pred:  filter,
		})
		missesFull := s.pool.Stats().Misses

		s.pool.FlushAll()
		got := exec.Collect(&exec.Select{
			Child: &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0}, Ranges: full,
				Pred: &exec.ScanPredicate{Col: 0, Lo: 30000, Hi: 30100}},
			Pred: filter,
		})
		missesPruned := s.pool.Stats().Misses - missesFull

		if got.N != want.N || got.N != 101 {
			t.Errorf("pruned N = %d, want %d (=101)", got.N, want.N)
			return
		}
		for i := 0; i < got.N; i++ {
			if got.Vecs[0].I64[i] != want.Vecs[0].I64[i] {
				t.Errorf("value mismatch at %d", i)
				return
			}
		}
		if missesPruned >= missesFull {
			t.Errorf("pruned scan read %d pages, full scan %d", missesPruned, missesFull)
		}
		req, skip := s.ctx.Skip.Counts()
		if req != 40000 || skip <= 0 || skip >= 40000 {
			t.Errorf("skip counters requested=%d skipped=%d", req, skip)
		}
	})
}
