package integration

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/pbm"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// newStripedSys is newSys with a multi-device striped array, so the
// skipping property is also checked where read-ahead batches split
// around pruned runs and surviving blocks stripe across spindles.
func newStripedSys(policy workload.Policy, capBytes int64, devices, stripeChunk int) *sys {
	s := &sys{eng: sim.NewEngine()}
	s.disk = iosim.NewArray(rt.Sim(s.eng), iosim.ArrayConfig{
		Config:      iosim.Config{Bandwidth: 500e6, SeekLatency: 20 * time.Microsecond},
		Devices:     devices,
		StripeChunk: stripeChunk,
	})
	s.ctx = &exec.Ctx{RT: rt.Sim(s.eng), ReadAheadTuples: 8192}
	if policy == workload.CScan {
		s.abm = abm.New(rt.Sim(s.eng), s.disk, abm.Config{ChunkTuples: 2048, Capacity: capBytes})
		s.ctx.ABM = s.abm
		return s
	}
	s.pbm = pbm.New(s.eng, pbm.DefaultConfig())
	s.pool = buffer.NewPool(rt.Sim(s.eng), s.disk, s.pbm, capBytes)
	s.ctx.Pool = s.pool
	s.ctx.PBM = s.pbm
	return s
}

// buildNoisy creates a table whose key column ascends with per-block
// noise, so adjacent zone-map blocks overlap in value space: predicates
// genuinely straddle block boundaries instead of cutting cleanly.
func buildNoisy(t testing.TB, cat *storage.Catalog, n int, rng *rand.Rand) (*storage.Snapshot, []int64, []float64) {
	t.Helper()
	tb, err := cat.CreateTable("p", storage.Schema{
		{Name: "d", Type: storage.Int64, Width: 8},
		{Name: "v", Type: storage.Float64, Width: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		ds[i] = int64(i/64)*8 + rng.Int63n(16)
		vs[i] = float64(i%97) / 7
	}
	cd := storage.NewColumnData()
	cd.I64[0] = ds
	cd.F64[1] = vs
	snap, err := tb.Master().Append(cd)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	return snap, ds, vs
}

// TestPropertySkippingScanEquivalence is the data-skipping soundness
// property: for any predicate window, a predicate-pushdown scan (zone
// maps pruning chunks before any I/O) must return exactly the tuple set
// and aggregates of filtering the full scan — across zone-block sizes
// that do and do not divide the table, both scan operators, and a
// striped multi-device array. Pruning may only ever be conservative.
func TestPropertySkippingScanEquivalence(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(23))
	configs := []struct {
		name    string
		policy  workload.Policy
		devices int
		stripe  int
		zoneBlk int64
	}{
		{"scan/blk512", workload.PBM, 1, 0, 512},
		{"scan/blk1000", workload.PBM, 1, 0, 1000}, // does not divide n: ragged last block
		{"scan/blk4096/striped", workload.PBM, 4, 8, 4096},
		{"cscan/blk512", workload.CScan, 1, 0, 512}, // zone blocks finer than ABM chunks
		{"cscan/blk2048", workload.CScan, 1, 0, 2048},
		{"cscan/blk1000/striped", workload.CScan, 4, 8, 1000},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cat := storage.NewCatalog()
			s := newStripedSys(tc.policy, 1<<24, tc.devices, tc.stripe)
			snap, ds, vs := buildNoisy(t, cat, n, rng)
			s.ctx.Zones = exec.NewZoneMaps()
			s.ctx.Zones.Build(snap, 0, tc.zoneBlk)
			s.ctx.Skip = &exec.SkipStats{}
			dmax := ds[0]
			for _, d := range ds {
				if d > dmax {
					dmax = d
				}
			}
			// Deterministic edge windows plus random draws: full domain,
			// empty (lo > hi), single value, windows cutting exactly at a
			// zone-block value boundary, and out-of-domain on both sides.
			type window struct{ lo, hi int64 }
			windows := []window{
				{0, dmax},
				{100, 50},
				{ds[n/2], ds[n/2]},
				{ds[int(tc.zoneBlk)], ds[2*int(tc.zoneBlk)] - 1},
				{-100, -1},
				{dmax + 1, dmax + 100},
			}
			for i := 0; i < 8; i++ {
				lo := rng.Int63n(dmax + 1)
				windows = append(windows, window{lo, lo + rng.Int63n(dmax-lo+1)})
			}
			full := []exec.RIDRange{{Lo: 0, Hi: n}}
			s.run(func() {
				for _, w := range windows {
					// Ground truth from the generator's arrays.
					var wantVals []int64
					var wantSum float64
					for i, d := range ds {
						if d >= w.lo && d <= w.hi {
							wantVals = append(wantVals, d)
							wantSum += vs[i]
						}
					}
					sort.Slice(wantVals, func(i, j int) bool { return wantVals[i] < wantVals[j] })

					var scan exec.Operator
					if tc.policy == workload.CScan {
						scan = &exec.CScan{Ctx: s.ctx, Snap: snap, Cols: []int{0, 1}, Ranges: full,
							Pred: &exec.ScanPredicate{Col: 0, Lo: w.lo, Hi: w.hi}}
					} else {
						scan = &exec.Scan{Ctx: s.ctx, Snap: snap, Cols: []int{0, 1}, Ranges: full,
							Pred: &exec.ScanPredicate{Col: 0, Lo: w.lo, Hi: w.hi}}
					}
					res := exec.Collect(&exec.Select{
						Child: scan,
						Pred:  exec.Between(exec.Col{Idx: 0, T: storage.Int64}, w.lo, w.hi),
					})
					gotVals := make([]int64, res.N)
					var gotSum float64
					for i := 0; i < res.N; i++ {
						gotVals[i] = res.Vecs[0].I64[i]
						gotSum += res.Vecs[1].F64[i]
					}
					sort.Slice(gotVals, func(i, j int) bool { return gotVals[i] < gotVals[j] })
					if len(gotVals) != len(wantVals) {
						t.Fatalf("window [%d,%d]: pruned scan returned %d tuples, want %d",
							w.lo, w.hi, len(gotVals), len(wantVals))
					}
					for i := range wantVals {
						if gotVals[i] != wantVals[i] {
							t.Fatalf("window [%d,%d]: tuple %d = %d, want %d",
								w.lo, w.hi, i, gotVals[i], wantVals[i])
						}
					}
					if gotSum != wantSum {
						t.Fatalf("window [%d,%d]: sum(v) = %v, want %v", w.lo, w.hi, gotSum, wantSum)
					}
				}
			})
			if req, _ := s.ctx.Skip.Counts(); req == 0 {
				t.Fatal("pruning never engaged: requested-tuple counter is zero")
			}
		})
	}
}
