// Package buffer implements the traditional buffer manager of Figure 1:
// a page cache in front of the simulated disk with a pluggable replacement
// policy. Loading decisions are made by the scan operators that call Get;
// the policy only decides what to evict — exactly the architecture PBM
// slots into without disrupting (§3), in contrast to the Active Buffer
// Manager of Cooperative Scans which takes over loading itself.
//
// The pool is sharded: the frame map, in-flight table, blocked-reservation
// queue, replacement-policy instance, and slice of the byte budget are
// partitioned by PageID hash into N shards, so concurrent scans touch
// disjoint metadata on the hot path. The byte budget itself is global —
// a shard whose reservation exceeds its slice borrows free capacity from
// the others, and eviction under global pressure pays borrowed capacity
// back first (see shard.reserve). A 1-shard pool is bit-identical to the
// historical unsharded implementation.
//
// The pool is runtime-agnostic (internal/rt): each shard's metadata is
// guarded by its own mutex and the global used/pinned/loading counters
// are atomics, so on the real-threaded runtime concurrent scans proceed
// in parallel, serializing only per shard. On the sim runtime exactly one
// process runs at a time, the mutexes are uncontended, and the virtual
// -time trajectory is identical to the historical engine-only code. The
// two runtimes differ in exactly one mechanism: blocked reservations park
// on a deterministic per-shard FIFO of events in sim mode, and on a
// per-shard sync.Cond in real mode (see waitFreed/wakeReservers).
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/storage"
)

// ErrCancelled is returned by the owner-tagged entry points when the
// owning query is cancelled while (or before) a reservation would block:
// the wait point wakes instead of parking forever and no frame is pinned.
// It is rt.ErrCancelled, so errors.Is works across layers.
var ErrCancelled = rt.ErrCancelled

// DefaultShards is the shard count used by serving configurations when
// none is given. Figure-reproduction experiments default to 1 shard (the
// paper's single buffer manager).
const DefaultShards = 8

// Frame is a buffer slot holding one cached page.
type Frame struct {
	Page *storage.Page

	pins    int
	loading bool

	// prev/next are intrusive list links owned by the replacement policy.
	prev, next *Frame
	// refbit is owned by the Clock policy.
	refbit bool
	// PolicyState is an opaque per-frame cookie owned by the policy (PBM
	// stores its page metadata pointer here). With a sharded pool the
	// cookie is owned by the shard's own policy instance.
	PolicyState any
}

// Pinned reports whether the frame is currently pinned by any user.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// Loading reports whether the frame's page is still being read from disk.
func (f *Frame) Loading() bool { return f.loading }

// Policy is a replacement policy plugged into a pool shard. The shard
// calls the lifecycle hooks; Victim must return an unpinned, non-loading
// frame to evict, or nil if none exists. Each shard owns a private
// Policy instance and only ever passes it frames of its own pages, always
// under the shard's mutex, so policies need no locking of their own
// against the pool (policies that are also called directly by scans, like
// PBM, synchronize those entry points themselves).
type Policy interface {
	Name() string
	Admitted(f *Frame)
	Accessed(f *Frame)
	Removed(f *Frame)
	Victim() *Frame
}

// Stats aggregates pool activity.
type Stats struct {
	Hits        int64
	Misses      int64
	BytesLoaded int64
	Evictions   int64
	// Stalls counts reservation waits: requests that had to wait for
	// pinned or in-flight frames to become evictable.
	Stalls int64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.BytesLoaded += o.BytesLoaded
	s.Evictions += o.Evictions
	s.Stalls += o.Stalls
}

// shard owns one partition of the pool: the frames and in-flight tables
// for the pages hashing to it, a private replacement-policy instance, a
// slice of the byte budget, and the queue of reservations blocked on it.
type shard struct {
	pool   *Pool
	idx    int
	policy Policy
	slice  int64 // this shard's slice of the byte budget

	// mu guards every field below plus the policy instance and the pins
	// and loading flags of this shard's frames.
	mu   sync.Mutex
	used int64

	frames   map[storage.PageID]*Frame
	inFlight map[storage.PageID]rt.Event

	// freedQ holds one event per blocked reservation parked on this
	// shard (sim runtime); each frame release wakes one waiter per freed
	// frame, avoiding a thundering herd when the pool is saturated with
	// pinned frames and keeping the wake order deterministic.
	freedQ []rt.Event

	// cond/waiting are the real runtime's equivalent: blocked
	// reservations wait on the shard's condition variable and every
	// release broadcasts to the shards that have waiters. The broadcast
	// is deliberately wider than the sim FIFO's single hand-off — woken
	// reservers re-check the global budget and re-park, trading a
	// bounded spurious wake-up for simplicity. Lost wake-ups are closed
	// by waitFreed itself: it re-checks the fit predicate after
	// registering (under the shard mutex a waker must also take), so a
	// free that lands between the caller's decision to stall and the
	// park is always observed one way or the other.
	cond    *sync.Cond
	waiting int

	stats Stats
}

// Pool is a byte-budgeted page cache partitioned into shards.
type Pool struct {
	r        rt.Runtime
	disk     *iosim.DeviceArray
	capacity int64        // bytes, global across shards
	used     atomic.Int64 // sum of shard used
	nPinned  atomic.Int64
	nLoading atomic.Int64

	// stalled counts reservations currently parked (or about to park) in
	// waitFreed across all shards; frame frees skip the shard-by-shard
	// broadcast sweep entirely while it is zero, which is the common
	// un-saturated case (real runtime only).
	stalled atomic.Int64
	// freeEpoch counts wake-relevant events — capacity frees, unpins,
	// load completions — on the real runtime. A reserver snapshots it
	// before its eviction attempts; an unchanged epoch at park time
	// proves no such event slipped into the window between those
	// attempts and the park (an unpin frees evictability, not bytes, so
	// the byte-budget re-check alone would miss it and the reserver
	// could sleep beside a perfectly evictable victim).
	freeEpoch atomic.Int64

	shards []*shard

	// OnAccess, if non-nil, observes every logical page access (hit or
	// miss) in request order; the OPT trace recorder hooks in here. It is
	// called with the accessed page's shard mutex held, so an observer is
	// never entered concurrently for pages of the same shard but must
	// tolerate concurrent calls from different shards on the real runtime.
	OnAccess func(p *storage.Page)
}

// NewPool creates a single-shard pool around one policy instance — the
// historical constructor, bit-identical to the pre-sharding behavior.
func NewPool(r rt.Runtime, disk *iosim.DeviceArray, policy Policy, capacity int64) *Pool {
	if policy == nil {
		panic("buffer: nil policy")
	}
	return NewShardedPool(r, disk, func(int) Policy { return policy }, capacity, 1)
}

// NewShardedPool creates a pool of the given byte capacity partitioned
// into shards. factory is called once per shard (with the shard index)
// so every shard owns a private policy instance; use FactoryOf for the
// registered built-in policies.
func NewShardedPool(r rt.Runtime, disk *iosim.DeviceArray, factory func(shard int) Policy, capacity int64, shards int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if shards <= 0 {
		shards = 1
	}
	p := &Pool{r: r, disk: disk, capacity: capacity, shards: make([]*shard, shards)}
	base := capacity / int64(shards)
	rem := capacity % int64(shards)
	for i := range p.shards {
		slice := base
		if int64(i) < rem {
			slice++
		}
		pol := factory(i)
		if pol == nil {
			panic("buffer: policy factory returned nil")
		}
		s := &shard{
			pool:     p,
			idx:      i,
			policy:   pol,
			slice:    slice,
			frames:   make(map[storage.PageID]*Frame),
			inFlight: make(map[storage.PageID]rt.Event),
		}
		s.cond = sync.NewCond(&s.mu)
		p.shards[i] = s
	}
	return p
}

// ShardFor returns the index of the shard that owns id.
func (p *Pool) ShardFor(id storage.PageID) int {
	if len(p.shards) == 1 {
		return 0
	}
	// Fibonacci hashing spreads the sequential PageIDs of a column scan
	// across shards.
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(len(p.shards)))
}

func (p *Pool) shardOf(id storage.PageID) *shard { return p.shards[p.ShardFor(id)] }

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// Policy returns shard 0's replacement policy (the pool's only policy
// instance when unsharded).
func (p *Pool) Policy() Policy { return p.shards[0].policy }

// ShardPolicy returns shard i's replacement-policy instance.
func (p *Pool) ShardPolicy(i int) Policy { return p.shards[i].policy }

// Capacity returns the pool capacity in bytes.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used returns the bytes currently cached (including in-flight loads),
// summed over all shards.
func (p *Pool) Used() int64 { return p.used.Load() }

// Stats returns a snapshot of the counters, summed over all shards.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		sh.mu.Lock()
		s.add(sh.stats)
		sh.mu.Unlock()
	}
	return s
}

// ShardStats returns a snapshot of each shard's counters.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		out[i] = sh.stats
		sh.mu.Unlock()
	}
	return out
}

// Contains reports whether pg is resident (and fully loaded). On the real
// runtime the answer is advisory: it may be stale by the time the caller
// acts on it (Get handles both outcomes either way).
func (p *Pool) Contains(pg *storage.Page) bool {
	s := p.shardOf(pg.ID)
	s.mu.Lock()
	f, ok := s.frames[pg.ID]
	resident := ok && !f.loading
	s.mu.Unlock()
	return resident
}

// wakeReservers releases blocked reservations after n frames were freed.
// Sim runtime: pop and fire up to n parked events, draining this shard's
// FIFO first and then the other shards' in ring order — the byte budget
// is global (capacity borrowing), so capacity freed here may be exactly
// what a reservation parked on another shard is waiting for; only the
// queues are partitioned. Real runtime: broadcast on the condition
// variable of every shard that has waiters (see the field comment).
// Must be called WITHOUT any shard mutex held.
func (s *shard) wakeReservers(n int) {
	if n <= 0 {
		return
	}
	p := s.pool
	if p.r.Real() {
		// Record the event before deciding whether anyone needs a
		// broadcast: waitFreed registers in p.stalled before re-checking
		// its predicate (which includes this epoch), so whichever side
		// runs second observes the other — a zero read here means every
		// current reserver will notice the epoch bump (or the freed
		// bytes) on its own park-time re-check, and the shard-by-shard
		// sweep can be skipped without stranding a waiter.
		p.freeEpoch.Add(1)
		if p.stalled.Load() == 0 {
			return
		}
		for i := 0; i < len(p.shards); i++ {
			t := p.shards[(s.idx+i)%len(p.shards)]
			t.mu.Lock()
			if t.waiting > 0 {
				t.cond.Broadcast()
			}
			t.mu.Unlock()
		}
		return
	}
	for i := 0; i < len(p.shards) && n > 0; i++ {
		t := p.shards[(s.idx+i)%len(p.shards)]
		for n > 0 && len(t.freedQ) > 0 {
			ev := t.freedQ[0]
			t.freedQ = t.freedQ[1:]
			ev.Fire()
			n--
		}
	}
}

// waitFreed blocks the caller until a frame release wakes it, or returns
// immediately if proceed already holds (capacity fits, or a wake-relevant
// event landed since the caller's eviction attempts — see freeEpoch).
// Called WITHOUT the shard mutex held.
//
// Real runtime: the caller's decision to stall was made outside any
// lock, so a concurrent free may have landed (and found nobody to wake)
// before we park — re-checking proceed after registering in p.stalled
// and taking the shard mutex closes that window: a waker either sees our
// registration (and broadcasts under this mutex, which cannot happen
// until cond.Wait has parked us) or bumped the epoch / freed the bytes
// before our re-check (which then observes it and returns).
//
// A non-nil owner makes the park cancellation-aware: cancelling q wakes
// the waiter (the caller's loop then observes the cancellation and bails
// with ErrCancelled). Real runtime: the cancel hook broadcasts under the
// shard mutex, closing the same register-then-park window as above. Sim
// runtime: the hook fires the parked event; if it was still sitting in
// freedQ the entry is removed, and if a genuine free had already consumed
// it the wake is passed on so no other blocked reservation is starved by
// a wake spent on a dead query.
func (s *shard) waitFreed(q *rt.QueryCtx, proceed func() bool) {
	if s.pool.r.Real() {
		var stop func()
		if q != nil {
			stop = q.OnCancel(func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
			defer stop()
		}
		s.pool.stalled.Add(1)
		s.mu.Lock()
		if proceed() {
			s.mu.Unlock()
			s.pool.stalled.Add(-1)
			return
		}
		s.waiting++
		s.cond.Wait()
		s.waiting--
		s.mu.Unlock()
		s.pool.stalled.Add(-1)
		return
	}
	if q == nil {
		ev := s.pool.r.NewEvent()
		s.freedQ = append(s.freedQ, ev)
		ev.Wait()
		return
	}
	// Sim events are not sticky (a Fire with no waiter is lost), so a
	// query found cancelled here must not park at all: the caller's loop
	// re-observes the cancellation and bails. Between this check and
	// ev.Wait no other sim process runs, so the hook below can only fire
	// while we are actually parked.
	if q.Cancelled() {
		return
	}
	ev := s.pool.r.NewEvent()
	s.freedQ = append(s.freedQ, ev)
	stop := q.OnCancel(ev.Fire)
	ev.Wait()
	stop()
	if q.Cancelled() {
		removed := false
		for i, e := range s.freedQ {
			if e == ev {
				s.freedQ = append(s.freedQ[:i], s.freedQ[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			// A real free woke us but we are abandoning the reservation:
			// hand the wake to the next blocked reservation.
			s.wakeReservers(1)
		}
	}
}

// Get returns a pinned frame for pg, reading it from disk on a miss (which
// blocks the calling process for the modeled device time). Concurrent
// requests for the same missing page share a single disk read.
func (p *Pool) Get(pg *storage.Page) *Frame {
	f, _ := p.get(nil, pg)
	return f
}

// GetOwner is Get with a lifecycle owner: if q is cancelled before or
// while the reservation blocks, it returns (nil, ErrCancelled) instead of
// parking forever, with no frame pinned; the disk read (if any) carries
// the owner tag so a cancelled owner's queued device reads are skipped. A
// nil owner is a plain Get.
func (p *Pool) GetOwner(q *rt.QueryCtx, pg *storage.Page) (*Frame, error) {
	return p.get(q, pg)
}

// GetRun returns a pinned frame for run[0] after ensuring every page of
// run is resident, reading all missing pages in one sequential disk
// request per contiguous block run. Scans use it for per-column read-ahead
// so a single stream achieves sequential bandwidth. Pages run[1:] are
// admitted unpinned and may be evicted again under pressure before use.
func (p *Pool) GetRun(run []*storage.Page) *Frame {
	f, _ := p.GetRunOwner(nil, run)
	return f
}

// GetRunOwner is GetRun with a lifecycle owner (see GetOwner).
func (p *Pool) GetRunOwner(q *rt.QueryCtx, run []*storage.Page) (*Frame, error) {
	if len(run) == 0 {
		panic("buffer: empty run")
	}
	if len(run) > 1 {
		if err := p.loadRun(q, run[1:]); err != nil {
			return nil, err
		}
	}
	return p.get(q, run[0])
}

// loadRun admits the missing pages of run (unpinned), batching contiguous
// missing stretches into single disk reads.
func (p *Pool) loadRun(q *rt.QueryCtx, run []*storage.Page) error {
	var batch []*storage.Page
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := p.loadBatch(q, batch)
		batch = nil
		return err
	}
	for _, pg := range run {
		s := p.shardOf(pg.ID)
		s.mu.Lock()
		_, present := s.frames[pg.ID]
		s.mu.Unlock()
		if present {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		if len(batch) > 0 && pg.Block != batch[len(batch)-1].Block+1 {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, pg)
	}
	return flush()
}

// loadBatch reads a block-contiguous batch of absent pages, one disk
// request per stretch that is still absent and contiguous when the
// reservation is granted. A remainder cut off by a concurrent admission
// is re-issued as a fresh batch instead of being dropped — GetRun's
// run[1:] pages have no later call that would pick them up.
func (p *Pool) loadBatch(q *rt.QueryCtx, batch []*storage.Page) error {
	for len(batch) > 0 {
		var err error
		batch, err = p.loadBatchPrefix(q, batch)
		if err != nil {
			return err
		}
	}
	return nil
}

// loadBatchPrefix loads the longest still-absent block-contiguous prefix
// of batch in one disk request and returns the unprocessed remainder.
// The absence re-check and the admission are a single atomic step per
// page (under the page's shard mutex): the reservation may have blocked,
// and another process may have started loading some of these pages
// meanwhile — or, on the real runtime, may do so between any two pages.
func (p *Pool) loadBatchPrefix(q *rt.QueryCtx, batch []*storage.Page) ([]*storage.Page, error) {
	var bytes int64
	for _, pg := range batch {
		bytes += pg.Bytes
	}
	// Reserve against the head page's shard: the byte budget is global,
	// the shard only anchors victim preference and the stall queue.
	if err := p.shardOf(batch[0].ID).reserve(q, bytes); err != nil {
		return nil, err
	}
	ev := p.r.NewEvent()
	var kept []*storage.Page
	var frames []*Frame
	var rest []*storage.Page
	var lastBlock iosim.BlockID
	for i, pg := range batch {
		s := p.shardOf(pg.ID)
		s.mu.Lock()
		if _, ok := s.frames[pg.ID]; ok {
			s.mu.Unlock()
			continue
		}
		if len(kept) > 0 && pg.Block != lastBlock+1 {
			s.mu.Unlock()
			rest = batch[i:] // contiguity broken; re-issue as a new batch
			break
		}
		f := &Frame{Page: pg, loading: true}
		s.inFlight[pg.ID] = ev
		s.frames[pg.ID] = f
		s.used += pg.Bytes
		s.stats.Misses++
		s.stats.BytesLoaded += pg.Bytes
		if p.OnAccess != nil {
			p.OnAccess(pg)
		}
		s.mu.Unlock()
		p.used.Add(pg.Bytes)
		p.nLoading.Add(1)
		kept = append(kept, pg)
		frames = append(frames, f)
		lastBlock = pg.Block
	}
	if len(kept) == 0 {
		return rest, nil
	}
	// Issue the batch split at stripe-chunk boundaries, one sub-read per
	// owning device with its exact page-byte volume; the devices transfer
	// concurrently and ReadSpans returns when the last one completes. On a
	// single-device array the batch stays one request, as it always was.
	var spans []iosim.Span
	for i, pg := range kept {
		if i > 0 && !p.disk.StripeBoundary(pg.Block) {
			s := &spans[len(spans)-1]
			s.Blocks++
			s.Bytes += pg.Bytes
			continue
		}
		spans = append(spans, iosim.Span{Block: pg.Block, Blocks: 1, Bytes: pg.Bytes})
	}
	p.disk.ReadSpansOwner(q, spans)
	for i, pg := range kept {
		s := p.shardOf(pg.ID)
		s.mu.Lock()
		frames[i].loading = false
		delete(s.inFlight, pg.ID)
		s.policy.Admitted(frames[i])
		s.mu.Unlock()
		p.nLoading.Add(-1)
	}
	ev.Fire()
	p.shardOf(kept[0].ID).wakeReservers(1)
	return rest, nil
}

// get is the shared hit/miss path. Cancellation is only checked outside
// the shard mutex: the lazy deadline check inside QueryCtx.Cancelled can
// run cancel hooks, and a hook registered by another process of the same
// query (an XChg sibling parked in waitFreed) may need this very mutex.
func (p *Pool) get(q *rt.QueryCtx, pg *storage.Page) (*Frame, error) {
	s := p.shardOf(pg.ID)
	if q != nil && q.Cancelled() {
		return nil, ErrCancelled
	}
	s.mu.Lock()
	for {
		if f, ok := s.frames[pg.ID]; ok {
			if f.loading {
				w := s.inFlight[pg.ID].Waiter()
				s.mu.Unlock()
				w.Wait()
				if q != nil && q.Cancelled() {
					return nil, ErrCancelled
				}
				s.mu.Lock()
				continue // re-check: the frame may have been re-evicted
			}
			s.pin(f)
			s.stats.Hits++
			if p.OnAccess != nil {
				p.OnAccess(pg)
			}
			s.policy.Accessed(f)
			s.mu.Unlock()
			return f, nil
		}
		s.mu.Unlock()
		if err := s.reserve(q, pg.Bytes); err != nil {
			return nil, err
		}
		s.mu.Lock()
		// reserve may block: another process may have admitted the page.
		if _, ok := s.frames[pg.ID]; ok {
			continue
		}
		break
	}

	// Miss: this process performs the read. The shard mutex is held from
	// the final absence check through admission (no blocking in between),
	// so no concurrent request can admit the page twice.
	ev := p.r.NewEvent()
	f := &Frame{Page: pg, loading: true}
	s.pin(f)
	s.inFlight[pg.ID] = ev
	s.frames[pg.ID] = f
	s.used += pg.Bytes
	s.stats.Misses++
	s.stats.BytesLoaded += pg.Bytes
	if p.OnAccess != nil {
		p.OnAccess(pg)
	}
	s.mu.Unlock()
	p.used.Add(pg.Bytes)
	p.nLoading.Add(1)
	p.disk.ReadOwner(q, pg.Block, 1, pg.Bytes)
	s.mu.Lock()
	f.loading = false
	delete(s.inFlight, pg.ID)
	s.policy.Admitted(f)
	s.mu.Unlock()
	p.nLoading.Add(-1)
	ev.Fire()
	s.wakeReservers(1)
	return f, nil
}

// reserve evicts victims until bytes fit within the global capacity,
// blocking until pinned or in-flight frames become evictable when no
// policy has a victim to offer. A reservation larger than the shard's
// slice of the budget simply borrows free capacity from the other shards;
// eviction only starts when the pool as a whole is full, first from this
// shard, then — paying borrowed capacity back — from shards over their
// slice, then from the rest in ring order. It panics only when blocking
// cannot help: a request larger than the pool, or nothing pinned or
// loading anywhere.
//
// The budget check is advisory on the real runtime: concurrent reservers
// can each see the last free bytes and both admit, overshooting the
// budget by at most one in-flight request per shard. The budget is
// bookkeeping (page payloads live in memory regardless), and the
// overshoot is paid back by the very next reservation's evictions.
// Called WITHOUT the shard mutex held.
//
// A non-nil owner turns a blocked reservation into a cancellable one:
// cancelling q wakes the park (waitFreed) and reserve returns
// ErrCancelled without reserving.
func (s *shard) reserve(q *rt.QueryCtx, bytes int64) error {
	p := s.pool
	if bytes > p.capacity {
		panic(fmt.Sprintf("buffer: request of %d bytes exceeds pool capacity %d", bytes, p.capacity))
	}
	idleSpins := 0
	for p.used.Load()+bytes > p.capacity {
		if q != nil && q.Cancelled() {
			return ErrCancelled
		}
		// Snapshot the wake epoch before trying to evict: any unpin,
		// free, or load completion after this point bumps it, and the
		// park-time predicate below treats a bump as "retry eviction"
		// (the event may have made a victim available without changing
		// any byte counter).
		epoch := p.freeEpoch.Load()
		if s.evictOne() {
			idleSpins = 0
			continue
		}
		if p.evictFromOthers(s) {
			idleSpins = 0
			continue
		}
		if p.nPinned.Load() == 0 && p.nLoading.Load() == 0 {
			if p.r.Real() {
				// The counters are updated outside the shard mutexes, so a
				// concurrent admission can be mid-flight; back off and
				// re-check instead of declaring overcommit. Persistent
				// emptiness means a real accounting bug: fail loudly.
				if idleSpins++; idleSpins < 10000 {
					p.r.Sleep(50 * time.Microsecond)
					continue
				}
			}
			panic(fmt.Sprintf("buffer: pool overcommitted: %d/%d bytes with nothing pinned or loading", p.used.Load(), p.capacity))
		}
		s.mu.Lock()
		s.stats.Stalls++
		s.mu.Unlock()
		s.waitFreed(q, func() bool {
			return p.used.Load()+bytes <= p.capacity || p.freeEpoch.Load() != epoch || q.Cause() != rt.CauseNone
		})
	}
	return nil
}

// evictOne removes one victim offered by this shard's policy, reporting
// whether one was available.
func (s *shard) evictOne() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictOneLocked()
}

func (s *shard) evictOneLocked() bool {
	v := s.policy.Victim()
	if v == nil {
		return false
	}
	if v.Pinned() || v.Loading() {
		panic("buffer: policy returned pinned or loading victim")
	}
	delete(s.frames, v.Page.ID)
	s.used -= v.Page.Bytes
	s.pool.used.Add(-v.Page.Bytes)
	s.stats.Evictions++
	s.policy.Removed(v)
	return true
}

// evictFromOthers tries the other shards for a victim on behalf of s:
// shards over their budget slice first (borrowed capacity is paid back
// before anyone else is disturbed), then the rest, in ring order from s.
// Shards are locked one at a time, so cross-shard eviction can never
// deadlock against another shard's own reservation.
func (p *Pool) evictFromOthers(s *shard) bool {
	n := len(p.shards)
	for pass := 0; pass < 2; pass++ {
		for i := 1; i < n; i++ {
			t := p.shards[(s.idx+i)%n]
			t.mu.Lock()
			over := t.used > t.slice
			if (pass == 0) != over {
				t.mu.Unlock()
				continue
			}
			ok := t.evictOneLocked()
			t.mu.Unlock()
			if ok {
				return true
			}
		}
	}
	return false
}

// pin marks one more user of f. Caller holds s.mu.
func (s *shard) pin(f *Frame) {
	if f.pins == 0 {
		s.pool.nPinned.Add(1)
	}
	f.pins++
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	s := p.shardOf(f.Page.ID)
	s.mu.Lock()
	if f.pins <= 0 {
		s.mu.Unlock()
		panic("buffer: Unpin without pin")
	}
	f.pins--
	freed := f.pins == 0
	s.mu.Unlock()
	if freed {
		p.nPinned.Add(-1)
		s.wakeReservers(1)
	}
}

// InvalidatePages drops the given pages' frames wherever they are
// resident and unpinned — the chunk-invalidation path a checkpoint runs
// when it retires a snapshot's pages. Pinned or in-flight frames are
// left alone: they belong to scans still pinned to the retired
// snapshot, whose pages are immutable and die by pressure once the
// scans finish. Returns the number of frames dropped; each freed frame
// wakes one blocked reservation (see FlushAll for why one each).
func (p *Pool) InvalidatePages(pages []*storage.Page) int {
	byShard := make(map[*shard][]*storage.Page)
	for _, pg := range pages {
		s := p.shardOf(pg.ID)
		byShard[s] = append(byShard[s], pg)
	}
	dropped := 0
	for s, pgs := range byShard {
		s.mu.Lock()
		freed := 0
		for _, pg := range pgs {
			f, ok := s.frames[pg.ID]
			if !ok || f.Pinned() || f.Loading() {
				continue
			}
			delete(s.frames, pg.ID)
			s.used -= f.Page.Bytes
			p.used.Add(-f.Page.Bytes)
			s.policy.Removed(f)
			freed++
		}
		s.mu.Unlock()
		s.wakeReservers(freed)
		dropped += freed
	}
	return dropped
}

// FlushAll drops every unpinned resident page (used between experiment
// phases to cold-start the cache). Every freed frame wakes one blocked
// reservation: a single wake-up would strand the rest forever when a
// flush races in-flight admissions, because a woken reserver whose page
// was admitted meanwhile takes the hit path and never passes the wake-up
// on.
func (p *Pool) FlushAll() {
	for _, s := range p.shards {
		s.mu.Lock()
		freed := 0
		for id, f := range s.frames {
			if f.Pinned() || f.Loading() {
				continue
			}
			delete(s.frames, id)
			s.used -= f.Page.Bytes
			p.used.Add(-f.Page.Bytes)
			s.policy.Removed(f)
			freed++
		}
		s.mu.Unlock()
		s.wakeReservers(freed)
	}
}
