// Package buffer implements the traditional buffer manager of Figure 1:
// a page cache in front of the simulated disk with a pluggable replacement
// policy. Loading decisions are made by the scan operators that call Get;
// the policy only decides what to evict — exactly the architecture PBM
// slots into without disrupting (§3), in contrast to the Active Buffer
// Manager of Cooperative Scans which takes over loading itself.
package buffer

import (
	"fmt"

	"repro/internal/iosim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Frame is a buffer slot holding one cached page.
type Frame struct {
	Page *storage.Page

	pins    int
	loading bool

	// prev/next are intrusive list links owned by the replacement policy.
	prev, next *Frame
	// refbit is owned by the Clock policy.
	refbit bool
	// PolicyState is an opaque per-frame cookie owned by the policy (PBM
	// stores its page metadata pointer here).
	PolicyState any
}

// Pinned reports whether the frame is currently pinned by any user.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// Loading reports whether the frame's page is still being read from disk.
func (f *Frame) Loading() bool { return f.loading }

// Policy is a replacement policy plugged into a Pool. The pool calls the
// lifecycle hooks; Victim must return an unpinned, non-loading frame to
// evict, or nil if none exists.
type Policy interface {
	Name() string
	Admitted(f *Frame)
	Accessed(f *Frame)
	Removed(f *Frame)
	Victim() *Frame
}

// Stats aggregates pool activity.
type Stats struct {
	Hits        int64
	Misses      int64
	BytesLoaded int64
	Evictions   int64
	// Stalls counts reservation waits: requests that had to wait for
	// pinned or in-flight frames to become evictable.
	Stalls int64
}

// Pool is a byte-budgeted page cache.
type Pool struct {
	eng      *sim.Engine
	disk     *iosim.Disk
	policy   Policy
	capacity int64 // bytes
	used     int64

	frames   map[storage.PageID]*Frame
	inFlight map[storage.PageID]*sim.Event
	nLoading int
	nPinned  int // frames with pins > 0

	// freedQ holds one event per blocked reservation; each frame release
	// (unpin or load completion) wakes exactly one waiter, avoiding a
	// thundering herd when the pool is saturated with pinned frames.
	freedQ []*sim.Event

	stats Stats

	// OnAccess, if non-nil, observes every logical page access (hit or
	// miss) in request order; the OPT trace recorder hooks in here.
	OnAccess func(p *storage.Page)
}

// NewPool creates a pool of the given byte capacity.
func NewPool(eng *sim.Engine, disk *iosim.Disk, policy Policy, capacity int64) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		eng:      eng,
		disk:     disk,
		policy:   policy,
		capacity: capacity,
		frames:   make(map[storage.PageID]*Frame),
		inFlight: make(map[storage.PageID]*sim.Event),
	}
}

// wakeOneReserver releases the oldest blocked reservation, if any.
func (p *Pool) wakeOneReserver() {
	if len(p.freedQ) == 0 {
		return
	}
	ev := p.freedQ[0]
	p.freedQ = p.freedQ[1:]
	ev.Fire()
}

// waitFreed blocks the caller until one frame release wakes it.
func (p *Pool) waitFreed() {
	ev := p.eng.NewEvent()
	p.freedQ = append(p.freedQ, ev)
	ev.Wait()
}

// Policy returns the pool's replacement policy.
func (p *Pool) Policy() Policy { return p.policy }

// Capacity returns the pool capacity in bytes.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used returns the bytes currently cached (including in-flight loads).
func (p *Pool) Used() int64 { return p.used }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// Contains reports whether pg is resident (and fully loaded).
func (p *Pool) Contains(pg *storage.Page) bool {
	f, ok := p.frames[pg.ID]
	return ok && !f.loading
}

// Get returns a pinned frame for pg, reading it from disk on a miss (which
// blocks the calling process in virtual time). Concurrent requests for the
// same missing page share a single disk read.
func (p *Pool) Get(pg *storage.Page) *Frame {
	return p.get(pg)
}

// GetRun returns a pinned frame for run[0] after ensuring every page of
// run is resident, reading all missing pages in one sequential disk
// request per contiguous block run. Scans use it for per-column read-ahead
// so a single stream achieves sequential bandwidth. Pages run[1:] are
// admitted unpinned and may be evicted again under pressure before use.
func (p *Pool) GetRun(run []*storage.Page) *Frame {
	if len(run) == 0 {
		panic("buffer: empty run")
	}
	if len(run) > 1 {
		p.loadRun(run[1:])
	}
	return p.get(run[0])
}

// loadRun admits the missing pages of run (unpinned), batching contiguous
// missing stretches into single disk reads.
func (p *Pool) loadRun(run []*storage.Page) {
	var batch []*storage.Page
	flush := func() {
		if len(batch) == 0 {
			return
		}
		p.loadBatch(batch)
		batch = nil
	}
	for _, pg := range run {
		if _, ok := p.frames[pg.ID]; ok {
			flush()
			continue
		}
		if len(batch) > 0 && pg.Block != batch[len(batch)-1].Block+1 {
			flush()
		}
		batch = append(batch, pg)
	}
	flush()
}

// loadBatch reads a block-contiguous batch of absent pages in one request.
func (p *Pool) loadBatch(batch []*storage.Page) {
	var bytes int64
	for _, pg := range batch {
		bytes += pg.Bytes
	}
	p.reserve(bytes)
	// Re-check absence: the reservation may have yielded and another
	// process may have started loading some of these pages meanwhile.
	kept := batch[:0]
	bytes = 0
	var lastBlock iosim.BlockID
	for _, pg := range batch {
		if _, ok := p.frames[pg.ID]; ok {
			continue
		}
		if len(kept) > 0 && pg.Block != lastBlock+1 {
			break // contiguity broken; the next call picks the rest up
		}
		kept = append(kept, pg)
		lastBlock = pg.Block
		bytes += pg.Bytes
	}
	if len(kept) == 0 {
		return
	}
	ev := p.eng.NewEvent()
	frames := make([]*Frame, len(kept))
	for i, pg := range kept {
		f := &Frame{Page: pg, loading: true}
		p.inFlight[pg.ID] = ev
		p.frames[pg.ID] = f
		p.used += pg.Bytes
		frames[i] = f
		p.nLoading++
		p.stats.Misses++
		p.stats.BytesLoaded += pg.Bytes
		if p.OnAccess != nil {
			p.OnAccess(pg)
		}
	}
	p.disk.Read(kept[0].Block, len(kept), bytes)
	for i, pg := range kept {
		frames[i].loading = false
		p.nLoading--
		delete(p.inFlight, pg.ID)
		p.policy.Admitted(frames[i])
	}
	ev.Fire()
	p.wakeOneReserver()
}

func (p *Pool) get(pg *storage.Page) *Frame {
	for {
		if f, ok := p.frames[pg.ID]; ok {
			if f.loading {
				p.inFlight[pg.ID].Wait()
				continue // re-check: the frame may have been re-evicted
			}
			p.pin(f)
			p.stats.Hits++
			if p.OnAccess != nil {
				p.OnAccess(pg)
			}
			p.policy.Accessed(f)
			return f
		}
		p.reserve(pg.Bytes)
		// reserve may yield: another process may have admitted the page.
		if _, ok := p.frames[pg.ID]; ok {
			continue
		}
		break
	}

	// Miss: this process performs the read.
	ev := p.eng.NewEvent()
	f := &Frame{Page: pg, loading: true}
	p.pin(f)
	p.inFlight[pg.ID] = ev
	p.frames[pg.ID] = f
	p.used += pg.Bytes
	p.nLoading++
	p.stats.Misses++
	p.stats.BytesLoaded += pg.Bytes
	if p.OnAccess != nil {
		p.OnAccess(pg)
	}
	p.disk.Read(pg.Block, 1, pg.Bytes)
	f.loading = false
	p.nLoading--
	delete(p.inFlight, pg.ID)
	p.policy.Admitted(f)
	ev.Fire()
	p.wakeOneReserver()
	return f
}

// reserve evicts victims until bytes fit within capacity, waiting (in
// virtual time) for pinned or in-flight frames to become evictable when
// the policy has no victim to offer. It panics only when blocking cannot
// help: a request larger than the pool, or nothing pinned or loading.
func (p *Pool) reserve(bytes int64) {
	if bytes > p.capacity {
		panic(fmt.Sprintf("buffer: request of %d bytes exceeds pool capacity %d", bytes, p.capacity))
	}
	for p.used+bytes > p.capacity {
		v := p.policy.Victim()
		if v != nil {
			if v.Pinned() || v.Loading() {
				panic("buffer: policy returned pinned or loading victim")
			}
			delete(p.frames, v.Page.ID)
			p.used -= v.Page.Bytes
			p.stats.Evictions++
			p.policy.Removed(v)
			continue
		}
		if p.nPinned == 0 && p.nLoading == 0 {
			panic(fmt.Sprintf("buffer: pool overcommitted: %d/%d bytes with nothing pinned or loading", p.used, p.capacity))
		}
		p.stats.Stalls++
		p.waitFreed()
	}
}

func (p *Pool) pin(f *Frame) {
	if f.pins == 0 {
		p.nPinned++
	}
	f.pins++
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	if f.pins <= 0 {
		panic("buffer: Unpin without pin")
	}
	f.pins--
	if f.pins == 0 {
		p.nPinned--
		p.wakeOneReserver()
	}
}

// FlushAll drops every unpinned resident page (used between experiment
// phases to cold-start the cache).
func (p *Pool) FlushAll() {
	for id, f := range p.frames {
		if f.Pinned() || f.Loading() {
			continue
		}
		delete(p.frames, id)
		p.used -= f.Page.Bytes
		p.policy.Removed(f)
	}
	p.wakeOneReserver()
}
