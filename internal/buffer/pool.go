// Package buffer implements the traditional buffer manager of Figure 1:
// a page cache in front of the simulated disk with a pluggable replacement
// policy. Loading decisions are made by the scan operators that call Get;
// the policy only decides what to evict — exactly the architecture PBM
// slots into without disrupting (§3), in contrast to the Active Buffer
// Manager of Cooperative Scans which takes over loading itself.
//
// The pool is sharded: the frame map, in-flight table, blocked-reservation
// queue, replacement-policy instance, and slice of the byte budget are
// partitioned by PageID hash into N shards, so concurrent scans touch
// disjoint metadata on the hot path. The byte budget itself is global —
// a shard whose reservation exceeds its slice borrows free capacity from
// the others, and eviction under global pressure pays borrowed capacity
// back first (see shard.reserve). A 1-shard pool is bit-identical to the
// historical unsharded implementation.
package buffer

import (
	"fmt"

	"repro/internal/iosim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// DefaultShards is the shard count used by serving configurations when
// none is given. Figure-reproduction experiments default to 1 shard (the
// paper's single buffer manager).
const DefaultShards = 8

// Frame is a buffer slot holding one cached page.
type Frame struct {
	Page *storage.Page

	pins    int
	loading bool

	// prev/next are intrusive list links owned by the replacement policy.
	prev, next *Frame
	// refbit is owned by the Clock policy.
	refbit bool
	// PolicyState is an opaque per-frame cookie owned by the policy (PBM
	// stores its page metadata pointer here). With a sharded pool the
	// cookie is owned by the shard's own policy instance.
	PolicyState any
}

// Pinned reports whether the frame is currently pinned by any user.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// Loading reports whether the frame's page is still being read from disk.
func (f *Frame) Loading() bool { return f.loading }

// Policy is a replacement policy plugged into a pool shard. The shard
// calls the lifecycle hooks; Victim must return an unpinned, non-loading
// frame to evict, or nil if none exists. Each shard owns a private
// Policy instance and only ever passes it frames of its own pages.
type Policy interface {
	Name() string
	Admitted(f *Frame)
	Accessed(f *Frame)
	Removed(f *Frame)
	Victim() *Frame
}

// Stats aggregates pool activity.
type Stats struct {
	Hits        int64
	Misses      int64
	BytesLoaded int64
	Evictions   int64
	// Stalls counts reservation waits: requests that had to wait for
	// pinned or in-flight frames to become evictable.
	Stalls int64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.BytesLoaded += o.BytesLoaded
	s.Evictions += o.Evictions
	s.Stalls += o.Stalls
}

// shard owns one partition of the pool: the frames and in-flight tables
// for the pages hashing to it, a private replacement-policy instance, a
// slice of the byte budget, and the queue of reservations blocked on it.
type shard struct {
	pool   *Pool
	idx    int
	policy Policy
	slice  int64 // this shard's slice of the byte budget
	used   int64

	frames   map[storage.PageID]*Frame
	inFlight map[storage.PageID]*sim.Event

	// freedQ holds one event per blocked reservation parked on this
	// shard; each frame release wakes one waiter per freed frame,
	// avoiding a thundering herd when the pool is saturated with pinned
	// frames.
	freedQ []*sim.Event

	stats Stats
}

// Pool is a byte-budgeted page cache partitioned into shards.
type Pool struct {
	eng      *sim.Engine
	disk     *iosim.Disk
	capacity int64 // bytes, global across shards
	used     int64 // sum of shard used
	nPinned  int
	nLoading int

	shards []*shard

	// OnAccess, if non-nil, observes every logical page access (hit or
	// miss) in request order; the OPT trace recorder hooks in here.
	OnAccess func(p *storage.Page)
}

// NewPool creates a single-shard pool around one policy instance — the
// historical constructor, bit-identical to the pre-sharding behavior.
func NewPool(eng *sim.Engine, disk *iosim.Disk, policy Policy, capacity int64) *Pool {
	if policy == nil {
		panic("buffer: nil policy")
	}
	return NewShardedPool(eng, disk, func(int) Policy { return policy }, capacity, 1)
}

// NewShardedPool creates a pool of the given byte capacity partitioned
// into shards. factory is called once per shard (with the shard index)
// so every shard owns a private policy instance; use FactoryOf for the
// registered built-in policies.
func NewShardedPool(eng *sim.Engine, disk *iosim.Disk, factory func(shard int) Policy, capacity int64, shards int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if shards <= 0 {
		shards = 1
	}
	p := &Pool{eng: eng, disk: disk, capacity: capacity, shards: make([]*shard, shards)}
	base := capacity / int64(shards)
	rem := capacity % int64(shards)
	for i := range p.shards {
		slice := base
		if int64(i) < rem {
			slice++
		}
		pol := factory(i)
		if pol == nil {
			panic("buffer: policy factory returned nil")
		}
		p.shards[i] = &shard{
			pool:     p,
			idx:      i,
			policy:   pol,
			slice:    slice,
			frames:   make(map[storage.PageID]*Frame),
			inFlight: make(map[storage.PageID]*sim.Event),
		}
	}
	return p
}

// ShardFor returns the index of the shard that owns id.
func (p *Pool) ShardFor(id storage.PageID) int {
	if len(p.shards) == 1 {
		return 0
	}
	// Fibonacci hashing spreads the sequential PageIDs of a column scan
	// across shards.
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(len(p.shards)))
}

func (p *Pool) shardOf(id storage.PageID) *shard { return p.shards[p.ShardFor(id)] }

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// Policy returns shard 0's replacement policy (the pool's only policy
// instance when unsharded).
func (p *Pool) Policy() Policy { return p.shards[0].policy }

// ShardPolicy returns shard i's replacement-policy instance.
func (p *Pool) ShardPolicy(i int) Policy { return p.shards[i].policy }

// Capacity returns the pool capacity in bytes.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used returns the bytes currently cached (including in-flight loads),
// summed over all shards.
func (p *Pool) Used() int64 { return p.used }

// Stats returns a snapshot of the counters, summed over all shards.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s.add(sh.stats)
	}
	return s
}

// ShardStats returns a snapshot of each shard's counters.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.stats
	}
	return out
}

// Contains reports whether pg is resident (and fully loaded).
func (p *Pool) Contains(pg *storage.Page) bool {
	f, ok := p.shardOf(pg.ID).frames[pg.ID]
	return ok && !f.loading
}

// wakeReservers releases up to n blocked reservations, draining this
// shard's queue first and then the other shards' queues in ring order:
// the byte budget is global (capacity borrowing), so capacity freed here
// may be exactly what a reservation parked on another shard is waiting
// for — only the queues are partitioned.
func (s *shard) wakeReservers(n int) {
	p := s.pool
	for i := 0; i < len(p.shards) && n > 0; i++ {
		t := p.shards[(s.idx+i)%len(p.shards)]
		for n > 0 && len(t.freedQ) > 0 {
			ev := t.freedQ[0]
			t.freedQ = t.freedQ[1:]
			ev.Fire()
			n--
		}
	}
}

// waitFreed blocks the caller until one frame release wakes it.
func (s *shard) waitFreed() {
	ev := s.pool.eng.NewEvent()
	s.freedQ = append(s.freedQ, ev)
	ev.Wait()
}

// Get returns a pinned frame for pg, reading it from disk on a miss (which
// blocks the calling process in virtual time). Concurrent requests for the
// same missing page share a single disk read.
func (p *Pool) Get(pg *storage.Page) *Frame {
	return p.get(pg)
}

// GetRun returns a pinned frame for run[0] after ensuring every page of
// run is resident, reading all missing pages in one sequential disk
// request per contiguous block run. Scans use it for per-column read-ahead
// so a single stream achieves sequential bandwidth. Pages run[1:] are
// admitted unpinned and may be evicted again under pressure before use.
func (p *Pool) GetRun(run []*storage.Page) *Frame {
	if len(run) == 0 {
		panic("buffer: empty run")
	}
	if len(run) > 1 {
		p.loadRun(run[1:])
	}
	return p.get(run[0])
}

// loadRun admits the missing pages of run (unpinned), batching contiguous
// missing stretches into single disk reads.
func (p *Pool) loadRun(run []*storage.Page) {
	var batch []*storage.Page
	flush := func() {
		if len(batch) == 0 {
			return
		}
		p.loadBatch(batch)
		batch = nil
	}
	for _, pg := range run {
		if _, ok := p.shardOf(pg.ID).frames[pg.ID]; ok {
			flush()
			continue
		}
		if len(batch) > 0 && pg.Block != batch[len(batch)-1].Block+1 {
			flush()
		}
		batch = append(batch, pg)
	}
	flush()
}

// loadBatch reads a block-contiguous batch of absent pages, one disk
// request per stretch that is still absent and contiguous when the
// reservation is granted. A remainder cut off by a concurrent admission
// is re-issued as a fresh batch instead of being dropped — GetRun's
// run[1:] pages have no later call that would pick them up.
func (p *Pool) loadBatch(batch []*storage.Page) {
	for len(batch) > 0 {
		batch = p.loadBatchPrefix(batch)
	}
}

// loadBatchPrefix loads the longest still-absent block-contiguous prefix
// of batch in one disk request and returns the unprocessed remainder.
func (p *Pool) loadBatchPrefix(batch []*storage.Page) []*storage.Page {
	var bytes int64
	for _, pg := range batch {
		bytes += pg.Bytes
	}
	// Reserve against the head page's shard: the byte budget is global,
	// the shard only anchors victim preference and the stall queue.
	p.shardOf(batch[0].ID).reserve(bytes)
	// Re-check absence: the reservation may have yielded and another
	// process may have started loading some of these pages meanwhile.
	var kept []*storage.Page
	var rest []*storage.Page
	bytes = 0
	var lastBlock iosim.BlockID
	for i, pg := range batch {
		if _, ok := p.shardOf(pg.ID).frames[pg.ID]; ok {
			continue
		}
		if len(kept) > 0 && pg.Block != lastBlock+1 {
			rest = batch[i:] // contiguity broken; re-issue as a new batch
			break
		}
		kept = append(kept, pg)
		lastBlock = pg.Block
		bytes += pg.Bytes
	}
	if len(kept) == 0 {
		return rest
	}
	ev := p.eng.NewEvent()
	frames := make([]*Frame, len(kept))
	for i, pg := range kept {
		s := p.shardOf(pg.ID)
		f := &Frame{Page: pg, loading: true}
		s.inFlight[pg.ID] = ev
		s.frames[pg.ID] = f
		s.used += pg.Bytes
		p.used += pg.Bytes
		frames[i] = f
		p.nLoading++
		s.stats.Misses++
		s.stats.BytesLoaded += pg.Bytes
		if p.OnAccess != nil {
			p.OnAccess(pg)
		}
	}
	p.disk.Read(kept[0].Block, len(kept), bytes)
	for i, pg := range kept {
		s := p.shardOf(pg.ID)
		frames[i].loading = false
		p.nLoading--
		delete(s.inFlight, pg.ID)
		s.policy.Admitted(frames[i])
	}
	ev.Fire()
	p.shardOf(kept[0].ID).wakeReservers(1)
	return rest
}

func (p *Pool) get(pg *storage.Page) *Frame {
	s := p.shardOf(pg.ID)
	for {
		if f, ok := s.frames[pg.ID]; ok {
			if f.loading {
				s.inFlight[pg.ID].Wait()
				continue // re-check: the frame may have been re-evicted
			}
			s.pin(f)
			s.stats.Hits++
			if p.OnAccess != nil {
				p.OnAccess(pg)
			}
			s.policy.Accessed(f)
			return f
		}
		s.reserve(pg.Bytes)
		// reserve may yield: another process may have admitted the page.
		if _, ok := s.frames[pg.ID]; ok {
			continue
		}
		break
	}

	// Miss: this process performs the read.
	ev := p.eng.NewEvent()
	f := &Frame{Page: pg, loading: true}
	s.pin(f)
	s.inFlight[pg.ID] = ev
	s.frames[pg.ID] = f
	s.used += pg.Bytes
	p.used += pg.Bytes
	p.nLoading++
	s.stats.Misses++
	s.stats.BytesLoaded += pg.Bytes
	if p.OnAccess != nil {
		p.OnAccess(pg)
	}
	p.disk.Read(pg.Block, 1, pg.Bytes)
	f.loading = false
	p.nLoading--
	delete(s.inFlight, pg.ID)
	s.policy.Admitted(f)
	ev.Fire()
	s.wakeReservers(1)
	return f
}

// reserve evicts victims until bytes fit within the global capacity,
// waiting (in virtual time) for pinned or in-flight frames to become
// evictable when no policy has a victim to offer. A reservation larger
// than the shard's slice of the budget simply borrows free capacity from
// the other shards; eviction only starts when the pool as a whole is
// full, first from this shard, then — paying borrowed capacity back —
// from shards over their slice, then from the rest in ring order. It
// panics only when blocking cannot help: a request larger than the pool,
// or nothing pinned or loading anywhere.
func (s *shard) reserve(bytes int64) {
	p := s.pool
	if bytes > p.capacity {
		panic(fmt.Sprintf("buffer: request of %d bytes exceeds pool capacity %d", bytes, p.capacity))
	}
	for p.used+bytes > p.capacity {
		if s.evictOne() {
			continue
		}
		if p.evictFromOthers(s) {
			continue
		}
		if p.nPinned == 0 && p.nLoading == 0 {
			panic(fmt.Sprintf("buffer: pool overcommitted: %d/%d bytes with nothing pinned or loading", p.used, p.capacity))
		}
		s.stats.Stalls++
		s.waitFreed()
	}
}

// evictOne removes one victim offered by this shard's policy, reporting
// whether one was available.
func (s *shard) evictOne() bool {
	v := s.policy.Victim()
	if v == nil {
		return false
	}
	if v.Pinned() || v.Loading() {
		panic("buffer: policy returned pinned or loading victim")
	}
	delete(s.frames, v.Page.ID)
	s.used -= v.Page.Bytes
	s.pool.used -= v.Page.Bytes
	s.stats.Evictions++
	s.policy.Removed(v)
	return true
}

// evictFromOthers tries the other shards for a victim on behalf of s:
// shards over their budget slice first (borrowed capacity is paid back
// before anyone else is disturbed), then the rest, in ring order from s.
func (p *Pool) evictFromOthers(s *shard) bool {
	n := len(p.shards)
	for pass := 0; pass < 2; pass++ {
		for i := 1; i < n; i++ {
			t := p.shards[(s.idx+i)%n]
			over := t.used > t.slice
			if (pass == 0) != over {
				continue
			}
			if t.evictOne() {
				return true
			}
		}
	}
	return false
}

func (s *shard) pin(f *Frame) {
	if f.pins == 0 {
		s.pool.nPinned++
	}
	f.pins++
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	if f.pins <= 0 {
		panic("buffer: Unpin without pin")
	}
	f.pins--
	if f.pins == 0 {
		p.nPinned--
		p.shardOf(f.Page.ID).wakeReservers(1)
	}
}

// FlushAll drops every unpinned resident page (used between experiment
// phases to cold-start the cache). Every freed frame wakes one blocked
// reservation: a single wake-up would strand the rest forever when a
// flush races in-flight admissions, because a woken reserver whose page
// was admitted meanwhile takes the hit path and never passes the wake-up
// on.
func (p *Pool) FlushAll() {
	for _, s := range p.shards {
		freed := 0
		for id, f := range s.frames {
			if f.Pinned() || f.Loading() {
				continue
			}
			delete(s.frames, id)
			s.used -= f.Page.Bytes
			p.used -= f.Page.Bytes
			s.policy.Removed(f)
			freed++
		}
		s.wakeReservers(freed)
	}
}
