package buffer

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// makePages builds a single-column table with n pages of 8-byte tuples and
// returns its pages.
func makePages(t testing.TB, n int) []*storage.Page {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	perPage := storage.PageSize / 8
	data := storage.NewColumnData()
	vals := make([]int64, n*perPage)
	for i := range vals {
		vals[i] = int64(i)
	}
	data.I64[0] = vals
	s, err := tb.Master().Append(data)
	if err != nil {
		t.Fatal(err)
	}
	return s.Pages(0)
}

func poolFixture(t testing.TB, policy Policy, capPages int, nPages int) (*sim.Engine, *Pool, []*storage.Page) {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	pool := NewPool(rt.Sim(eng), disk, policy, int64(capPages)*storage.PageSize)
	return eng, pool, makePages(t, nPages)
}

func TestHitAndMiss(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	eng.Go("q", func() {
		f := pool.Get(pages[0])
		pool.Unpin(f)
		f = pool.Get(pages[0])
		pool.Unpin(f)
	})
	eng.Run()
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", s)
	}
	if s.BytesLoaded != storage.PageSize {
		t.Fatalf("bytes loaded = %d", s.BytesLoaded)
	}
}

func TestCapacityEnforced(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 16)
	eng.Go("q", func() {
		for _, pg := range pages {
			f := pool.Get(pg)
			if pool.Used() > pool.Capacity() {
				t.Errorf("used %d exceeds capacity %d", pool.Used(), pool.Capacity())
			}
			pool.Unpin(f)
		}
	})
	eng.Run()
	if pool.Stats().Evictions != 12 {
		t.Fatalf("evictions = %d, want 12", pool.Stats().Evictions)
	}
}

func TestLRUEvictsColdest(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		pool.Unpin(pool.Get(pages[0])) // touch 0: now 1 is coldest
		pool.Unpin(pool.Get(pages[3])) // evicts 1
		if !pool.Contains(pages[0]) || pool.Contains(pages[1]) {
			t.Error("LRU evicted the wrong page")
		}
	})
	eng.Run()
}

func TestMRUEvictsHottest(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewMRU(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		pool.Unpin(pool.Get(pages[3])) // evicts page 2 (the hottest)
		if pool.Contains(pages[2]) || !pool.Contains(pages[0]) {
			t.Error("MRU evicted the wrong page")
		}
	})
	eng.Run()
}

func TestClockSecondChance(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewClock(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		// All refbits set; a fill sweep clears them and evicts page 0.
		pool.Unpin(pool.Get(pages[3]))
		if pool.Contains(pages[0]) {
			t.Error("clock did not evict page 0")
		}
	})
	eng.Run()
}

func TestPinnedNeverEvicted(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 3, 8)
	eng.Go("q", func() {
		f0 := pool.Get(pages[0])
		pool.Unpin(pool.Get(pages[1]))
		pool.Unpin(pool.Get(pages[2]))
		pool.Unpin(pool.Get(pages[3])) // must evict 1, not pinned 0
		if !pool.Contains(pages[0]) {
			t.Error("pinned page evicted")
		}
		pool.Unpin(f0)
	})
	eng.Run()
}

func TestOvercommitPanics(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 2, 8)
	panicked := false
	eng.Go("q", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		_ = pool.Get(pages[0])
		_ = pool.Get(pages[1])
		_ = pool.Get(pages[2]) // three pins, capacity two
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected overcommit panic")
	}
}

func TestConcurrentMissSharesOneRead(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	done := 0
	for i := 0; i < 5; i++ {
		eng.Go("q", func() {
			f := pool.Get(pages[0])
			pool.Unpin(f)
			done++
		})
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 4 {
		t.Fatalf("stats = %+v, want 1 miss 4 hits", s)
	}
}

func TestGetRunBatchesIO(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 8, 8)
	eng.Go("q", func() {
		f := pool.GetRun(pages[:4])
		pool.Unpin(f)
		for i := 1; i < 4; i++ {
			if !pool.Contains(pages[i]) {
				t.Errorf("page %d not admitted by GetRun", i)
			}
		}
	})
	eng.Run()
	// 3 pages in one batched read plus the pinned head page read: at most
	// 2 disk requests.
	if got := pool.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4", got)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	panicked := false
	eng.Go("q", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f := pool.Get(pages[0])
		pool.Unpin(f)
		pool.Unpin(f)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestFlushAll(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0]))
		f := pool.Get(pages[1])
		pool.FlushAll()
		if pool.Contains(pages[0]) {
			t.Error("unpinned page survived flush")
		}
		if !pool.Contains(pages[1]) {
			t.Error("pinned page flushed")
		}
		pool.Unpin(f)
	})
	eng.Run()
}

func TestOnAccessSeesEveryReference(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	var refs []storage.PageID
	pool.OnAccess = func(p *storage.Page) { refs = append(refs, p.ID) }
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0]))
		pool.Unpin(pool.Get(pages[0]))
		pool.Unpin(pool.Get(pages[1]))
	})
	eng.Run()
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
}

// Property: under any access pattern, LRU keeps the pool within capacity
// and never evicts the most recently touched page.
func TestPropertyLRUInvariant(t *testing.T) {
	f := func(accesses []uint8) bool {
		if len(accesses) == 0 {
			return true
		}
		eng, pool, pages := poolFixture(t, NewLRU(), 4, 16)
		ok := true
		eng.Go("q", func() {
			for _, a := range accesses {
				pg := pages[int(a)%len(pages)]
				fr := pool.Get(pg)
				pool.Unpin(fr)
				if pool.Used() > pool.Capacity() {
					ok = false
				}
				if !pool.Contains(pg) {
					ok = false // the page we just touched must be resident
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// neverEvict refuses to offer victims, modelling the saturated states
// (everything pinned or in flight) that block reservations.
type neverEvict struct{}

func (neverEvict) Name() string    { return "NeverEvict" }
func (neverEvict) Admitted(*Frame) {}
func (neverEvict) Accessed(*Frame) {}
func (neverEvict) Removed(*Frame)  {}
func (neverEvict) Victim() *Frame  { return nil }

// Regression: FlushAll must wake one blocked reserver per freed frame.
// Waking just one stranded the rest forever when a woken reserver's page
// had been admitted meanwhile: it takes the hit path and never passes
// the wake-up on, and with the old code this test deadlocks the engine.
func TestFlushWakesOneReserverPerFreedFrame(t *testing.T) {
	eng, pool, pages := poolFixture(t, neverEvict{}, 3, 8)
	done := 0
	eng.Go("pinner", func() {
		_ = pool.Get(pages[0]) // pinned for the whole test
		pool.Unpin(pool.Get(pages[1]))
		pool.Unpin(pool.Get(pages[2]))
		eng.Sleep(10 * time.Millisecond)
		// All three reservers are now parked: the pool is full and the
		// policy offers no victim.
		pool.FlushAll() // frees pages 1 and 2 -> must wake two reservers
	})
	for i := 0; i < 3; i++ {
		eng.Go("w", func() {
			eng.Sleep(time.Millisecond)
			f := pool.Get(pages[3]) // all three want the same page
			pool.Unpin(f)
			done++
		})
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	s := pool.Stats()
	if s.Stalls < 3 {
		t.Fatalf("stalls = %d, want >= 3 (all reservers must have blocked)", s.Stalls)
	}
}

// A run with a block gap must still load every page: loadRun splits the
// batches at the gap.
func TestGetRunNonContiguousRunLoadsAll(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 8, 8)
	eng.Go("q", func() {
		run := []*storage.Page{pages[0], pages[1], pages[2], pages[4], pages[5]}
		f := pool.GetRun(run)
		pool.Unpin(f)
		for _, pg := range run {
			if !pool.Contains(pg) {
				t.Errorf("page %d not admitted by non-contiguous GetRun", pg.ID)
			}
		}
		if pool.Contains(pages[3]) {
			t.Error("page outside the run was loaded")
		}
	})
	eng.Run()
	if got := pool.Stats().Misses; got != 5 {
		t.Fatalf("misses = %d, want 5", got)
	}
}

// Regression: when a reservation stall lets another process admit a page
// from the middle of a read-ahead batch, the old loadBatch dropped the
// pages after the contiguity break on the floor — GetRun(run[1:]) pages
// have no later call that would pick them up. They must be re-issued as
// a fresh batch.
func TestGetRunReissuesRemainderAfterRace(t *testing.T) {
	eng, pool, pages := poolFixture(t, neverEvict{}, 4, 10)
	eng.Go("pinner", func() {
		f0 := pool.Get(pages[0])
		f7 := pool.Get(pages[7])
		eng.Sleep(10 * time.Millisecond)
		pool.Unpin(f0)
		pool.Unpin(f7)
		pool.FlushAll()
	})
	eng.Go("runner", func() {
		eng.Sleep(time.Millisecond)
		// Read-ahead batch [2,3,4]; blocks in reserve (pool full of
		// pinned frames, no victims).
		f := pool.GetRun(pages[1:5])
		pool.Unpin(f)
		for i := 1; i < 5; i++ {
			if !pool.Contains(pages[i]) {
				t.Errorf("page %d missing after raced GetRun", i)
			}
		}
	})
	eng.Go("mid", func() {
		eng.Sleep(2 * time.Millisecond)
		// Admits the middle of the runner's batch while it is stalled,
		// breaking the batch's contiguity, and holds the pin across the
		// flush so the page survives.
		f := pool.Get(pages[3])
		eng.Sleep(20 * time.Millisecond)
		pool.Unpin(f)
	})
	eng.Run()
}

func shardedFixture(t testing.TB, shards, capPages, nPages int) (*sim.Engine, *Pool, []*storage.Page) {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	pool := NewShardedPool(rt.Sim(eng), disk, FactoryOf("LRU"), int64(capPages)*storage.PageSize, shards)
	return eng, pool, makePages(t, nPages)
}

// Property: under any access pattern on a sharded pool, every resident
// page lives in the shard its hash selects, the aggregate Used equals
// the sum over shards, aggregate Stats equal the shard sums, and the
// global capacity holds.
func TestPropertyShardInvariants(t *testing.T) {
	f := func(accesses []uint8) bool {
		if len(accesses) == 0 {
			return true
		}
		eng, pool, pages := shardedFixture(t, 5, 8, 32)
		ok := true
		eng.Go("q", func() {
			for _, a := range accesses {
				fr := pool.Get(pages[int(a)%len(pages)])
				pool.Unpin(fr)
				if pool.Used() > pool.Capacity() {
					ok = false
				}
			}
		})
		eng.Run()
		var used int64
		var sum Stats
		for i, sh := range pool.shards {
			for id := range sh.frames {
				if pool.ShardFor(id) != i {
					t.Errorf("page %d resident in shard %d, hashes to %d", id, i, pool.ShardFor(id))
					ok = false
				}
			}
			used += sh.used
			sum.add(sh.stats)
		}
		if used != pool.Used() {
			t.Errorf("sum of shard used %d != pool used %d", used, pool.Used())
			ok = false
		}
		if sum != pool.Stats() {
			t.Errorf("sum of shard stats %+v != pool stats %+v", sum, pool.Stats())
			ok = false
		}
		if s := pool.Stats(); s.Hits+s.Misses != int64(len(accesses)) {
			t.Errorf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, len(accesses))
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A shard may borrow free capacity beyond its slice of the budget; when
// the pool fills up, eviction pays the borrowed capacity back before
// disturbing shards within their slice.
func TestShardCapacityBorrowing(t *testing.T) {
	eng, pool, pages := shardedFixture(t, 4, 4, 64)
	byShard := make([][]*storage.Page, 4)
	for _, pg := range pages {
		s := pool.ShardFor(pg.ID)
		byShard[s] = append(byShard[s], pg)
	}
	target := -1
	for s, pgs := range byShard {
		if len(pgs) >= 3 {
			target = s
			break
		}
	}
	var others []*storage.Page
	for s, pgs := range byShard {
		if s != target && len(pgs) > 0 {
			others = append(others, pgs[0])
		}
	}
	if target < 0 || len(others) < 2 {
		t.Fatalf("hash did not spread 64 pages usefully: %v", byShard)
	}
	// Distinct non-target shards for the two probe pages.
	if pool.ShardFor(others[0].ID) == pool.ShardFor(others[1].ID) {
		t.Fatal("probe pages share a shard")
	}
	eng.Go("q", func() {
		own := byShard[target]
		// Three pages in one shard: two beyond its 1-page slice, borrowed
		// from the global budget.
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(own[i]))
		}
		if got := pool.shards[target].used; got != 3*storage.PageSize {
			t.Errorf("borrowing shard used = %d, want 3 pages", got)
		}
		// A fourth page elsewhere still fits without eviction.
		pool.Unpin(pool.Get(others[0]))
		if ev := pool.Stats().Evictions; ev != 0 {
			t.Errorf("evictions = %d before the pool filled", ev)
		}
		// The fifth page must evict, and the victim comes from the
		// borrowing (over-slice) shard, not the probe's own empty shard.
		pool.Unpin(pool.Get(others[1]))
		if pool.Contains(own[0]) {
			t.Error("expected payback eviction of the borrowing shard's LRU page")
		}
		if pool.Used() > pool.Capacity() {
			t.Errorf("used %d exceeds capacity %d", pool.Used(), pool.Capacity())
		}
	})
	eng.Run()
}

// A 1-shard pool must behave exactly like the historical unsharded pool;
// the sharded constructor with n=1 and NewPool must agree counter for
// counter on any trace.
func TestSingleShardMatchesNewPool(t *testing.T) {
	trace := []int{0, 1, 2, 3, 0, 4, 5, 1, 6, 2, 7, 0, 3, 3, 5}
	run := func(mk func(eng *sim.Engine, disk *iosim.DeviceArray) *Pool) (Stats, sim.Time) {
		eng := sim.NewEngine()
		disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
		pool := mk(eng, disk)
		pages := makePages(t, 8)
		eng.Go("q", func() {
			for _, i := range trace {
				pool.Unpin(pool.Get(pages[i]))
			}
		})
		eng.Run()
		return pool.Stats(), eng.Now()
	}
	sa, ta := run(func(eng *sim.Engine, disk *iosim.DeviceArray) *Pool {
		return NewPool(rt.Sim(eng), disk, NewLRU(), 4*storage.PageSize)
	})
	sb, tb := run(func(eng *sim.Engine, disk *iosim.DeviceArray) *Pool {
		return NewShardedPool(rt.Sim(eng), disk, FactoryOf("LRU"), 4*storage.PageSize, 1)
	})
	if sa != sb || ta != tb {
		t.Fatalf("single-shard divergence: %+v at %v vs %+v at %v", sa, ta, sb, tb)
	}
}

// Property: hits + misses equals total accesses for every policy.
func TestPropertyAccountingBalances(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewMRU() },
		func() Policy { return NewClock() },
	}
	for _, mk := range policies {
		mk := mk
		f := func(accesses []uint8) bool {
			if len(accesses) == 0 {
				return true
			}
			eng, pool, pages := poolFixture(t, mk(), 4, 16)
			eng.Go("q", func() {
				for _, a := range accesses {
					pool.Unpin(pool.Get(pages[int(a)%len(pages)]))
				}
			})
			eng.Run()
			s := pool.Stats()
			return s.Hits+s.Misses == int64(len(accesses))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", mk().Name(), err)
		}
	}
}

// GetRun's read-ahead batch over a striped array must split at stripe
// boundaries into one sub-read per chunk segment, each carrying its exact
// page bytes to the owning device — and the sub-reads must overlap across
// devices, so the batch completes in the slowest device's time, not the
// sum.
func TestLoadBatchSplitsAtStripeBoundaries(t *testing.T) {
	eng := sim.NewEngine()
	// 2 devices, stripe chunk of 4 blocks.
	disk := iosim.NewArray(rt.Sim(eng), iosim.ArrayConfig{
		Config:      iosim.Config{Bandwidth: 1e6, SeekLatency: 0},
		Devices:     2,
		StripeChunk: 4,
	})
	pages := makePages(t, 16)
	pool := NewPool(rt.Sim(eng), disk, NewLRU(), int64(len(pages))*storage.PageSize)
	var end sim.Time
	eng.Go("q", func() {
		f := pool.GetRun(pages) // one 16-block contiguous run
		pool.Unpin(f)
		end = eng.Now()
	})
	eng.Run()
	s := disk.Stats()
	// Pages occupy blocks 1..16 (the catalog allocates from 1). GetRun
	// batches the read-ahead tail (blocks 2..16), which the stripe split
	// cuts into 5 chunk segments — {2,3} {4..7} {8..11} {12..15} {16} —
	// and the pinned head page (block 1) is its own read: 6 requests.
	if s.Requests != 6 {
		t.Fatalf("requests = %d, want 5 chunk segments + 1 head page", s.Requests)
	}
	if s.BytesRead != 16*storage.PageSize {
		t.Fatalf("bytes = %d, want exact page bytes", s.BytesRead)
	}
	// Chunks alternate devices, so each spindle owns 8 of the 16 pages.
	if s.MaxDeviceBytes != s.MinDeviceBytes || s.MaxDeviceBytes != 8*storage.PageSize {
		t.Fatalf("skew max=%d min=%d, want balanced 8 pages each", s.MaxDeviceBytes, s.MinDeviceBytes)
	}
	// The batch's device halves overlap: device 0 carries 7 batch pages,
	// device 1 carries 8, so the batch completes at 8 pages' transfer
	// time and the head-page read lands right after it on device 0 — 9
	// page-times total instead of the 16 a single spindle needs.
	pageTime := sim.Time(float64(storage.PageSize) / 1e6 * 1e9)
	if want := 9 * pageTime; end != want {
		t.Fatalf("end = %v, want %v (devices overlapped)", end, want)
	}

	// The same run on a single device stays one unsplit request.
	eng1 := sim.NewEngine()
	disk1 := iosim.New(rt.Sim(eng1), iosim.Config{Bandwidth: 1e6, SeekLatency: 0})
	pages1 := makePages(t, 16)
	pool1 := NewPool(rt.Sim(eng1), disk1, NewLRU(), int64(len(pages1))*storage.PageSize)
	eng1.Go("q", func() {
		pool1.Unpin(pool1.GetRun(pages1))
	})
	eng1.Run()
	if s1 := disk1.Stats(); s1.Requests != 2 {
		t.Fatalf("single-device requests = %d, want 1 unsplit batch + 1 head page", s1.Requests)
	}
}

// TestInvalidatePagesDropsUnpinnedOnly: invalidation evicts resident
// unpinned frames of the given pages, leaves pinned frames (a running
// scan over the retired snapshot) and unrelated pages alone, and
// reports the drop count.
func TestInvalidatePagesDropsUnpinnedOnly(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 8, 8)
	eng.Go("q", func() {
		pinned := pool.Get(pages[0])
		for _, pg := range pages[1:4] {
			pool.Unpin(pool.Get(pg))
		}
		// Retire pages 0..3; page 0 is pinned and must survive.
		if got := pool.InvalidatePages(pages[:4]); got != 3 {
			t.Errorf("dropped %d frames, want 3", got)
		}
		if !pool.Contains(pages[0]) {
			t.Error("pinned frame was invalidated")
		}
		for _, pg := range pages[1:4] {
			if pool.Contains(pg) {
				t.Errorf("retired page %v still resident", pg.ID)
			}
		}
		// Invalidating absent pages is a no-op.
		if got := pool.InvalidatePages(pages[4:]); got != 0 {
			t.Errorf("dropped %d non-resident frames", got)
		}
		pool.Unpin(pinned)
	})
	eng.Run()
	if used := pool.Used(); used != storage.PageSize {
		t.Fatalf("used = %d, want one resident page", used)
	}
}
