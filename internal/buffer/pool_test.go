package buffer

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/iosim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// makePages builds a single-column table with n pages of 8-byte tuples and
// returns its pages.
func makePages(t testing.TB, n int) []*storage.Page {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	perPage := storage.PageSize / 8
	data := storage.NewColumnData()
	vals := make([]int64, n*perPage)
	for i := range vals {
		vals[i] = int64(i)
	}
	data.I64[0] = vals
	s, err := tb.Master().Append(data)
	if err != nil {
		t.Fatal(err)
	}
	return s.Pages(0)
}

func poolFixture(t testing.TB, policy Policy, capPages int, nPages int) (*sim.Engine, *Pool, []*storage.Page) {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(eng, iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	pool := NewPool(eng, disk, policy, int64(capPages)*storage.PageSize)
	return eng, pool, makePages(t, nPages)
}

func TestHitAndMiss(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	eng.Go("q", func() {
		f := pool.Get(pages[0])
		pool.Unpin(f)
		f = pool.Get(pages[0])
		pool.Unpin(f)
	})
	eng.Run()
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", s)
	}
	if s.BytesLoaded != storage.PageSize {
		t.Fatalf("bytes loaded = %d", s.BytesLoaded)
	}
}

func TestCapacityEnforced(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 16)
	eng.Go("q", func() {
		for _, pg := range pages {
			f := pool.Get(pg)
			if pool.Used() > pool.Capacity() {
				t.Errorf("used %d exceeds capacity %d", pool.Used(), pool.Capacity())
			}
			pool.Unpin(f)
		}
	})
	eng.Run()
	if pool.Stats().Evictions != 12 {
		t.Fatalf("evictions = %d, want 12", pool.Stats().Evictions)
	}
}

func TestLRUEvictsColdest(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		pool.Unpin(pool.Get(pages[0])) // touch 0: now 1 is coldest
		pool.Unpin(pool.Get(pages[3])) // evicts 1
		if !pool.Contains(pages[0]) || pool.Contains(pages[1]) {
			t.Error("LRU evicted the wrong page")
		}
	})
	eng.Run()
}

func TestMRUEvictsHottest(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewMRU(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		pool.Unpin(pool.Get(pages[3])) // evicts page 2 (the hottest)
		if pool.Contains(pages[2]) || !pool.Contains(pages[0]) {
			t.Error("MRU evicted the wrong page")
		}
	})
	eng.Run()
}

func TestClockSecondChance(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewClock(), 3, 8)
	eng.Go("q", func() {
		for i := 0; i < 3; i++ {
			pool.Unpin(pool.Get(pages[i]))
		}
		// All refbits set; a fill sweep clears them and evicts page 0.
		pool.Unpin(pool.Get(pages[3]))
		if pool.Contains(pages[0]) {
			t.Error("clock did not evict page 0")
		}
	})
	eng.Run()
}

func TestPinnedNeverEvicted(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 3, 8)
	eng.Go("q", func() {
		f0 := pool.Get(pages[0])
		pool.Unpin(pool.Get(pages[1]))
		pool.Unpin(pool.Get(pages[2]))
		pool.Unpin(pool.Get(pages[3])) // must evict 1, not pinned 0
		if !pool.Contains(pages[0]) {
			t.Error("pinned page evicted")
		}
		pool.Unpin(f0)
	})
	eng.Run()
}

func TestOvercommitPanics(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 2, 8)
	panicked := false
	eng.Go("q", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		_ = pool.Get(pages[0])
		_ = pool.Get(pages[1])
		_ = pool.Get(pages[2]) // three pins, capacity two
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected overcommit panic")
	}
}

func TestConcurrentMissSharesOneRead(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	done := 0
	for i := 0; i < 5; i++ {
		eng.Go("q", func() {
			f := pool.Get(pages[0])
			pool.Unpin(f)
			done++
		})
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 4 {
		t.Fatalf("stats = %+v, want 1 miss 4 hits", s)
	}
}

func TestGetRunBatchesIO(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 8, 8)
	eng.Go("q", func() {
		f := pool.GetRun(pages[:4])
		pool.Unpin(f)
		for i := 1; i < 4; i++ {
			if !pool.Contains(pages[i]) {
				t.Errorf("page %d not admitted by GetRun", i)
			}
		}
	})
	eng.Run()
	// 3 pages in one batched read plus the pinned head page read: at most
	// 2 disk requests.
	if got := pool.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4", got)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	panicked := false
	eng.Go("q", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f := pool.Get(pages[0])
		pool.Unpin(f)
		pool.Unpin(f)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestFlushAll(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0]))
		f := pool.Get(pages[1])
		pool.FlushAll()
		if pool.Contains(pages[0]) {
			t.Error("unpinned page survived flush")
		}
		if !pool.Contains(pages[1]) {
			t.Error("pinned page flushed")
		}
		pool.Unpin(f)
	})
	eng.Run()
}

func TestOnAccessSeesEveryReference(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 8)
	var refs []storage.PageID
	pool.OnAccess = func(p *storage.Page) { refs = append(refs, p.ID) }
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0]))
		pool.Unpin(pool.Get(pages[0]))
		pool.Unpin(pool.Get(pages[1]))
	})
	eng.Run()
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
}

// Property: under any access pattern, LRU keeps the pool within capacity
// and never evicts the most recently touched page.
func TestPropertyLRUInvariant(t *testing.T) {
	f := func(accesses []uint8) bool {
		if len(accesses) == 0 {
			return true
		}
		eng, pool, pages := poolFixture(t, NewLRU(), 4, 16)
		ok := true
		eng.Go("q", func() {
			for _, a := range accesses {
				pg := pages[int(a)%len(pages)]
				fr := pool.Get(pg)
				pool.Unpin(fr)
				if pool.Used() > pool.Capacity() {
					ok = false
				}
				if !pool.Contains(pg) {
					ok = false // the page we just touched must be resident
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals total accesses for every policy.
func TestPropertyAccountingBalances(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewMRU() },
		func() Policy { return NewClock() },
	}
	for _, mk := range policies {
		mk := mk
		f := func(accesses []uint8) bool {
			if len(accesses) == 0 {
				return true
			}
			eng, pool, pages := poolFixture(t, mk(), 4, 16)
			eng.Go("q", func() {
				for _, a := range accesses {
					pool.Unpin(pool.Get(pages[int(a)%len(pages)]))
				}
			})
			eng.Run()
			s := pool.Stats()
			return s.Hits+s.Misses == int64(len(accesses))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", mk().Name(), err)
		}
	}
}
