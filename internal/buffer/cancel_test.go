package buffer

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rt"
)

// TestSimReservationCancelUnblocks: a get blocked on a full pool (every
// frame pinned) must wake when its query is cancelled and return the
// ErrCancelled sentinel without a frame; the pool must stay usable for
// other queries afterwards.
func TestSimReservationCancelUnblocks(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 2, 4)
	qc := rt.NewQueryCtx(rt.Sim(eng))
	var blockedErr error
	var blockedFrame *Frame
	eng.Go("pinner", func() {
		// Pin the whole pool, then hold until well after the cancel.
		f0 := pool.Get(pages[0])
		f1 := pool.Get(pages[1])
		eng.Sleep(10 * time.Millisecond)
		pool.Unpin(f0)
		pool.Unpin(f1)
	})
	eng.Go("blocked", func() {
		eng.Sleep(time.Millisecond) // let the pinner fill the pool first
		blockedFrame, blockedErr = pool.GetOwner(qc, pages[2])
	})
	eng.Go("canceller", func() {
		eng.Sleep(2 * time.Millisecond)
		qc.Cancel(rt.CauseClientCancel)
	})
	eng.Run()
	if !errors.Is(blockedErr, ErrCancelled) {
		t.Fatalf("blocked get returned err %v, want ErrCancelled", blockedErr)
	}
	if blockedFrame != nil {
		t.Fatalf("cancelled get returned a frame for page %d", blockedFrame.Page.ID)
	}
	// The reservation must have been fully released.
	if used, cap := pool.Used(), pool.Capacity(); used > cap {
		t.Fatalf("pool left overcommitted after cancel: %d/%d", used, cap)
	}
}

// TestSimCancelledGetFailsFast: an already-cancelled query's get must
// return ErrCancelled immediately, even when the pool has room.
func TestSimCancelledGetFailsFast(t *testing.T) {
	eng, pool, pages := poolFixture(t, NewLRU(), 4, 4)
	qc := rt.NewQueryCtx(rt.Sim(eng))
	qc.Cancel(rt.CauseDeadlineExceeded)
	var err error
	eng.Go("q", func() { _, err = pool.GetOwner(qc, pages[0]) })
	eng.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if st := pool.Stats(); st.BytesLoaded != 0 {
		t.Fatalf("cancelled get still loaded %d bytes", st.BytesLoaded)
	}
}

// TestRealReservationCancelUnblocks is the real-runtime twin of the sim
// test: the blocked reservation waits on the shard condvar, and the
// cancel hook's Broadcast must wake it. Run with -race.
func TestRealReservationCancelUnblocks(t *testing.T) {
	r, pool, pages := realPoolEnv(t, 1, 4, 1)
	qc := rt.NewQueryCtx(r)
	pinned := make(chan *Frame, 1)
	release := make(chan struct{})
	var blockedErr error
	r.Go("pinner", func() {
		f := pool.Get(pages[0])
		pinned <- f
		<-release
		pool.Unpin(f)
	})
	r.Go("blocked", func() {
		<-pinned // the single frame is pinned: this get must stall
		r.Go("canceller", func() {
			time.Sleep(5 * time.Millisecond)
			qc.Cancel(rt.CauseClientCancel)
		})
		_, blockedErr = pool.GetOwner(qc, pages[1])
		close(release)
	})
	finished := make(chan struct{})
	go func() { r.Run(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("cancel did not wake the blocked reservation")
	}
	if !errors.Is(blockedErr, ErrCancelled) {
		t.Fatalf("blocked get returned err %v, want ErrCancelled", blockedErr)
	}
	if used, cap := pool.Used(), pool.Capacity(); used > cap {
		t.Fatalf("pool left overcommitted after cancel: %d/%d", used, cap)
	}
}
