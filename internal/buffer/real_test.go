package buffer

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/storage"
)

// Real-runtime pool tests: run with -race. They hammer the paths the
// Runtime refactor converted from cooperative-scheduling invariants to
// explicit synchronization — shard-parallel gets, reservation stalls and
// their condvar wake-ups, cross-shard capacity borrowing, and shared
// loads of the same missing page.

// realPoolEnv builds a small sharded pool on the real runtime over nPages
// one-tuple pages of a single column.
func realPoolEnv(t *testing.T, capPages, nPages, shards int) (rt.Runtime, *Pool, []*storage.Page) {
	t.Helper()
	r := rt.NewReal()
	disk := iosim.New(r, iosim.Config{Bandwidth: 10e9, SeekLatency: time.Microsecond})
	pool := NewShardedPool(r, disk, FactoryOf("LRU"), int64(capPages)*storage.PageSize, shards)
	return r, pool, makePages(t, nPages)
}

func TestRealPoolConcurrentGetUnpin(t *testing.T) {
	r, pool, pages := realPoolEnv(t, 8, 64, 4)
	const workers = 16
	var pins atomic.Int64
	for w := 0; w < workers; w++ {
		w := w
		r.Go("scanner", func() {
			for i := 0; i < 200; i++ {
				pg := pages[(w*31+i*7)%len(pages)]
				f := pool.Get(pg)
				if f.Page != pg {
					t.Errorf("got frame for page %d, want %d", f.Page.ID, pg.ID)
					pool.Unpin(f)
					return
				}
				pins.Add(1)
				pool.Unpin(f)
			}
		})
	}
	r.Run()
	if t.Failed() {
		return
	}
	if pins.Load() != workers*200 {
		t.Fatalf("completed %d/%d gets", pins.Load(), workers*200)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != workers*200 {
		t.Fatalf("hits %d + misses %d != %d accesses", st.Hits, st.Misses, workers*200)
	}
	if used, cap := pool.Used(), pool.Capacity(); used > cap {
		t.Fatalf("pool left overcommitted: %d/%d", used, cap)
	}
}

// TestRealPoolStallWakeup drives the pool into reservation stalls: more
// concurrently pinned frames than fit would deadlock a lost wake-up, so
// completion of this test under -race is the shard-condvar correctness
// proof the refactor needs.
func TestRealPoolStallWakeup(t *testing.T) {
	r, pool, pages := realPoolEnv(t, 4, 32, 4)
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		r.Go("pinner", func() {
			for i := 0; i < 150; i++ {
				pg := pages[(w*13+i*5)%len(pages)]
				f := pool.Get(pg)
				// Hold the pin briefly so reservations really stall on
				// pinned frames and must be woken by Unpin.
				if i%7 == 0 {
					r.Sleep(50 * time.Microsecond)
				}
				pool.Unpin(f)
			}
		})
	}
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pool deadlocked: a reservation stall was never woken")
	}
	if st := pool.Stats(); st.Stalls == 0 {
		t.Log("note: no stalls exercised (timing-dependent); wake-up path not covered this run")
	}
}

func TestRealPoolGetRunSharedLoads(t *testing.T) {
	r, pool, pages := realPoolEnv(t, 16, 48, 4)
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		r.Go("runner", func() {
			for i := 0; i+8 <= len(pages); i += 4 {
				run := pages[i : i+8]
				if (w+i)%2 == 0 {
					f := pool.GetRun(run)
					pool.Unpin(f)
				} else {
					f := pool.Get(run[0])
					pool.Unpin(f)
				}
			}
		})
	}
	r.Run()
	st := pool.Stats()
	if st.BytesLoaded == 0 {
		t.Fatal("no bytes loaded")
	}
	// Every page is eventually resident or evicted exactly via the stats
	// counters; the books must balance.
	var used int64
	for _, sh := range pool.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			used += f.Page.Bytes
			if f.loading {
				t.Error("frame left in loading state after Run")
			}
		}
		sh.mu.Unlock()
	}
	if used != pool.Used() {
		t.Fatalf("used counter %d != resident bytes %d", pool.Used(), used)
	}
}
