package buffer

import (
	"fmt"
	"sort"
)

// NewPolicyFunc constructs one replacement-policy instance. Sharded
// pools call the constructor once per shard so each shard owns private
// policy state; see NewShardedPool and FactoryOf.
type NewPolicyFunc func() Policy

var policyConstructors = map[string]NewPolicyFunc{}

// RegisterPolicy registers a replacement-policy constructor under name.
// The built-in LRU, MRU and Clock policies are pre-registered; PBM-family
// policies are wired through their own per-shard group instead (they
// need a clock and configuration at construction time).
func RegisterPolicy(name string, ctor NewPolicyFunc) {
	if ctor == nil {
		panic("buffer: RegisterPolicy with nil constructor")
	}
	if _, dup := policyConstructors[name]; dup {
		panic(fmt.Sprintf("buffer: policy %q registered twice", name))
	}
	policyConstructors[name] = ctor
}

// NewNamedPolicy returns a fresh instance of the policy registered under
// name, or ok=false when the name is unknown.
func NewNamedPolicy(name string) (Policy, bool) {
	ctor, ok := policyConstructors[name]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyConstructors))
	for name := range policyConstructors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FactoryOf returns a per-shard policy factory for a registered policy
// name, for use with NewShardedPool. It panics on unknown names.
func FactoryOf(name string) func(shard int) Policy {
	if _, ok := policyConstructors[name]; !ok {
		panic(fmt.Sprintf("buffer: unknown policy %q (registered: %v)", name, PolicyNames()))
	}
	return func(int) Policy {
		pol, _ := NewNamedPolicy(name)
		return pol
	}
}

func init() {
	RegisterPolicy("LRU", func() Policy { return NewLRU() })
	RegisterPolicy("MRU", func() Policy { return NewMRU() })
	RegisterPolicy("Clock", func() Policy { return NewClock() })
}

// frameList is an intrusive doubly-linked list of frames with a sentinel,
// ordered from least- to most-recently used for the recency policies.
type frameList struct {
	head Frame // sentinel
	size int
}

func newFrameList() *frameList {
	l := &frameList{}
	l.head.prev = &l.head
	l.head.next = &l.head
	return l
}

func (l *frameList) pushBack(f *Frame) {
	f.prev = l.head.prev
	f.next = &l.head
	f.prev.next = f
	f.next.prev = f
	l.size++
}

func (l *frameList) remove(f *Frame) {
	f.prev.next = f.next
	f.next.prev = f.prev
	f.prev, f.next = nil, nil
	l.size--
}

func (l *frameList) front() *Frame {
	if l.size == 0 {
		return nil
	}
	return l.head.next
}

func (l *frameList) back() *Frame {
	if l.size == 0 {
		return nil
	}
	return l.head.prev
}

// LRU evicts the least-recently-used page — the "traditional buffer
// manager" baseline of the paper's evaluation.
type LRU struct {
	list *frameList
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{list: newFrameList()} }

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Admitted implements Policy.
func (l *LRU) Admitted(f *Frame) { l.list.pushBack(f) }

// Accessed implements Policy.
func (l *LRU) Accessed(f *Frame) {
	l.list.remove(f)
	l.list.pushBack(f)
}

// Removed implements Policy.
func (l *LRU) Removed(f *Frame) { l.list.remove(f) }

// Victim implements Policy: the coldest unpinned frame.
func (l *LRU) Victim() *Frame {
	for f := l.list.front(); f != nil && f != &l.list.head; f = f.next {
		if !f.Pinned() && !f.Loading() {
			return f
		}
	}
	return nil
}

// MRU evicts the most-recently-used page; historically suggested for
// looping scans (related work, [4]).
type MRU struct {
	list *frameList
}

// NewMRU returns an MRU policy.
func NewMRU() *MRU { return &MRU{list: newFrameList()} }

// Name implements Policy.
func (m *MRU) Name() string { return "MRU" }

// Admitted implements Policy.
func (m *MRU) Admitted(f *Frame) { m.list.pushBack(f) }

// Accessed implements Policy.
func (m *MRU) Accessed(f *Frame) {
	m.list.remove(f)
	m.list.pushBack(f)
}

// Removed implements Policy.
func (m *MRU) Removed(f *Frame) { m.list.remove(f) }

// Victim implements Policy: the hottest unpinned frame.
func (m *MRU) Victim() *Frame {
	for f := m.list.back(); f != nil && f != &m.list.head; f = f.prev {
		if !f.Pinned() && !f.Loading() {
			return f
		}
	}
	return nil
}

// Clock is the classic second-chance approximation of LRU.
type Clock struct {
	list *frameList
	hand *Frame
}

// NewClock returns a Clock policy.
func NewClock() *Clock { return &Clock{list: newFrameList()} }

// Name implements Policy.
func (c *Clock) Name() string { return "Clock" }

// Admitted implements Policy.
func (c *Clock) Admitted(f *Frame) {
	f.refbit = true
	c.list.pushBack(f)
}

// Accessed implements Policy.
func (c *Clock) Accessed(f *Frame) { f.refbit = true }

// Removed implements Policy.
func (c *Clock) Removed(f *Frame) {
	if c.hand == f {
		c.hand = f.next
	}
	c.list.remove(f)
}

// Victim implements Policy: sweep the ring clearing reference bits.
func (c *Clock) Victim() *Frame {
	if c.list.size == 0 {
		return nil
	}
	if c.hand == nil || c.hand == &c.list.head {
		c.hand = c.list.front()
	}
	// Two full sweeps guarantee we either find a victim or conclude all
	// frames are pinned.
	for i := 0; i < 2*c.list.size; i++ {
		f := c.hand
		c.hand = f.next
		if c.hand == &c.list.head {
			c.hand = c.list.front()
		}
		if f == &c.list.head {
			continue
		}
		if f.Pinned() || f.Loading() {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		return f
	}
	return nil
}
