package rt

import "repro/internal/sim"

// Sim adapts a cooperative discrete-event engine to the Runtime seam.
// All behavior is the engine's own; the adapter adds nothing, so a run
// through the seam is bit-identical to one against the engine directly.
func Sim(eng *sim.Engine) Runtime { return simRT{eng} }

type simRT struct {
	eng *sim.Engine
}

func (r simRT) Real() bool                        { return false }
func (r simRT) Now() Time                         { return r.eng.Now() }
func (r simRT) Go(name string, fn func())         { r.eng.Go(name, fn) }
func (r simRT) Sleep(d Duration)                  { r.eng.Sleep(d) }
func (r simRT) SleepUntil(t Time)                 { r.eng.SleepUntil(t) }
func (r simRT) Yield()                            { r.eng.Yield() }
func (r simRT) NewEvent() Event                   { return simEvent{r.eng.NewEvent()} }
func (r simRT) NewResource(capacity int) Resource { return r.eng.NewResource(capacity) }
func (r simRT) NewWaitGroup() WaitGroup           { return r.eng.NewWaitGroup() }
func (r simRT) Run()                              { r.eng.Run() }

// simEvent wraps *sim.Event. Waiter registration is deliberately lazy
// (Wait registers at block time, exactly like the engine's own Event):
// between Waiter() and Wait() no other simulated process can run — the
// caller holds the single execution token — so eager registration would
// be indistinguishable, and lazy registration keeps the engine's
// ready-queue ordering byte-for-byte identical to the pre-seam code.
type simEvent struct {
	ev *sim.Event
}

func (e simEvent) Wait()          { e.ev.Wait() }
func (e simEvent) Waiter() Waiter { return e }
func (e simEvent) Fire()          { e.ev.Fire() }
