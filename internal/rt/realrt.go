package rt

import (
	"runtime"
	"sync"
	"time"
)

// NewReal returns the real-threaded runtime: processes are goroutines,
// the clock is wall time since construction, sleeps block the OS thread's
// goroutine for real durations, and events are channel broadcasts. Runs
// are NOT reproducible — this mode exists to serve traffic as fast as the
// hardware allows, not to regenerate figures.
func NewReal() Runtime {
	return &realRT{epoch: time.Now()}
}

type realRT struct {
	epoch time.Time
	wg    sync.WaitGroup
}

func (r *realRT) Real() bool { return true }

func (r *realRT) Now() Time { return Time(time.Since(r.epoch)) }

// Go spawns fn as a goroutine tracked by Run. Spawning from within a
// tracked goroutine is safe: the parent's count is still positive when
// the child's Add executes.
func (r *realRT) Go(name string, fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

func (r *realRT) Sleep(d Duration) {
	if d > 0 {
		time.Sleep(d)
		return
	}
	runtime.Gosched()
}

func (r *realRT) SleepUntil(t Time) {
	if d := Duration(t - r.Now()); d > 0 {
		time.Sleep(d)
	}
}

func (r *realRT) Yield() { runtime.Gosched() }

func (r *realRT) NewEvent() Event {
	return &realEvent{ch: make(chan struct{})}
}

func (r *realRT) NewResource(capacity int) Resource {
	if capacity <= 0 {
		panic("rt: resource capacity must be positive")
	}
	return &realResource{ch: make(chan struct{}, capacity)}
}

func (r *realRT) NewWaitGroup() WaitGroup { return &sync.WaitGroup{} }

func (r *realRT) Run() { r.wg.Wait() }

// realEvent broadcasts by closing the current generation's channel and
// installing a fresh one. A Waiter captures the channel of the generation
// it was obtained in, so a Fire between Waiter() and Wait() is never
// lost: Wait finds the captured channel already closed and returns
// immediately.
type realEvent struct {
	mu sync.Mutex
	ch chan struct{}
}

func (e *realEvent) Waiter() Waiter {
	e.mu.Lock()
	ch := e.ch
	e.mu.Unlock()
	return chanWaiter(ch)
}

func (e *realEvent) Wait() { e.Waiter().Wait() }

func (e *realEvent) Fire() {
	e.mu.Lock()
	close(e.ch)
	e.ch = make(chan struct{})
	e.mu.Unlock()
}

type chanWaiter chan struct{}

func (w chanWaiter) Wait() { <-w }

// realResource is a buffered-channel semaphore; blocked Acquirers are
// served in the runtime's wake order (approximately FIFO), not the sim
// resource's strict FIFO — callers must not rely on fairness.
type realResource struct {
	ch chan struct{}
}

func (r *realResource) Acquire() { r.ch <- struct{}{} }

func (r *realResource) Release() {
	select {
	case <-r.ch:
	default:
		panic("rt: Release without Acquire")
	}
}

func (r *realResource) InUse() int    { return len(r.ch) }
func (r *realResource) Capacity() int { return cap(r.ch) }

// WorkerPool bounds the number of concurrently executing tasks, modeling
// a fixed pool of worker threads (the executor sizes one by -cores for
// XChg subplan fan-out in real mode). Tasks beyond the bound queue on the
// semaphore in spawn order. Each task is still a tracked process, so
// Runtime.Run accounts for queued work and no teardown call is needed.
type WorkerPool struct {
	r   Runtime
	sem chan struct{}
}

// NewWorkerPool creates a pool of the given size on the runtime.
func NewWorkerPool(r Runtime, size int) *WorkerPool {
	if size <= 0 {
		size = 1
	}
	return &WorkerPool{r: r, sem: make(chan struct{}, size)}
}

// Size returns the pool's concurrency bound.
func (p *WorkerPool) Size() int { return cap(p.sem) }

// Submit schedules task; it runs as soon as a worker slot is free.
func (p *WorkerPool) Submit(name string, task func()) {
	p.r.Go(name, func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		task()
	})
}
