package rt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// CancelCause identifies why a query's lifecycle ended early. The zero
// value means the query is live.
type CancelCause int32

const (
	// CauseNone marks a live query.
	CauseNone CancelCause = iota
	// CauseClientCancel: the client explicitly abandoned the query
	// (disconnect, user cancel).
	CauseClientCancel
	// CauseDeadlineExceeded: the query's deadline passed while it was
	// executing.
	CauseDeadlineExceeded
	// CauseAdmissionTimeout: the deadline passed while the query was
	// still waiting in the admission queue — it never ran at all.
	CauseAdmissionTimeout
)

func (c CancelCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseClientCancel:
		return "client-cancel"
	case CauseDeadlineExceeded:
		return "deadline-exceeded"
	case CauseAdmissionTimeout:
		return "admission-timeout"
	}
	return fmt.Sprintf("CancelCause(%d)", int32(c))
}

// ErrCancelled is the sentinel wait points return when they are woken by
// cancellation instead of the condition they were parked on. Wrap or
// compare with errors.Is.
var ErrCancelled = errors.New("rt: query cancelled")

// QueryCtx is the per-query lifecycle handle threaded from admission down
// to the device queue: a runtime-agnostic cancel signal with an optional
// deadline on the runtime clock and a cancellation cause. All methods are
// safe on a nil receiver (a nil *QueryCtx is a query that can never be
// cancelled), so layers thread it unconditionally and the disabled path
// stays branch-free.
//
// Cancellation is level-triggered and first-cause-wins: the first
// Cancel(cause) sets the cause, every later Cancel is a no-op. The
// deadline is checked lazily — Cancelled() self-cancels with
// CauseDeadlineExceeded once the runtime clock passes it, so no timer
// process is needed (and the deterministic simulator schedules no extra
// events for queries that finish in time).
type QueryCtx struct {
	r     Runtime
	cause atomic.Int32
	prio  atomic.Uint64 // math.Float64bits of the I/O priority hint

	mu          sync.Mutex
	deadline    Time
	hasDeadline bool
	hooks       []cancelHook
	nextHook    int
}

type cancelHook struct {
	id int
	fn func()
}

// NewQueryCtx returns a live QueryCtx on the given runtime's clock.
func NewQueryCtx(r Runtime) *QueryCtx {
	return &QueryCtx{r: r}
}

// SetDeadline arms the deadline. Call before the query is shared with
// other processes.
func (q *QueryCtx) SetDeadline(t Time) {
	q.mu.Lock()
	q.deadline, q.hasDeadline = t, true
	q.mu.Unlock()
}

// Deadline reports the armed deadline, if any.
func (q *QueryCtx) Deadline() (Time, bool) {
	if q == nil {
		return 0, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.deadline, q.hasDeadline
}

// Expired reports whether the deadline has passed at the given instant,
// without self-cancelling. The admission scheduler uses this to drop
// queued queries with CauseAdmissionTimeout (they never ran) rather than
// the executing-query CauseDeadlineExceeded that lazy checks apply.
func (q *QueryCtx) Expired(now Time) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hasDeadline && now >= q.deadline
}

// Cancel terminates the query with the given cause. The first cancel
// wins: it runs every registered OnCancel hook (in registration order,
// for deterministic simulation) and returns true; later calls are no-ops
// returning false.
func (q *QueryCtx) Cancel(cause CancelCause) bool {
	if q == nil || cause == CauseNone {
		return false
	}
	if !q.cause.CompareAndSwap(int32(CauseNone), int32(cause)) {
		return false
	}
	q.mu.Lock()
	hooks := q.hooks
	q.hooks = nil
	q.mu.Unlock()
	for _, h := range hooks {
		h.fn()
	}
	return true
}

// Cancelled reports whether the query is dead, lazily self-cancelling
// with CauseDeadlineExceeded once the runtime clock passes the deadline.
func (q *QueryCtx) Cancelled() bool {
	if q == nil {
		return false
	}
	if q.cause.Load() != int32(CauseNone) {
		return true
	}
	q.mu.Lock()
	hasDL, dl := q.hasDeadline, q.deadline
	q.mu.Unlock()
	if hasDL && q.r.Now() >= dl {
		q.Cancel(CauseDeadlineExceeded)
		return true
	}
	return false
}

// Cause returns the cancellation cause (CauseNone while live). It does
// not perform the lazy deadline check; call Cancelled first when the
// deadline matters.
func (q *QueryCtx) Cause() CancelCause {
	if q == nil {
		return CauseNone
	}
	return CancelCause(q.cause.Load())
}

// Err returns nil while live, or ErrCancelled (wrapped with the cause)
// once cancelled.
func (q *QueryCtx) Err() error {
	if q == nil {
		return nil
	}
	c := CancelCause(q.cause.Load())
	if c == CauseNone {
		return nil
	}
	return fmt.Errorf("%w (%s)", ErrCancelled, c)
}

// SetPriority records the query's I/O priority hint — higher is more
// urgent. Device schedulers use it only to order ties (same sweep
// position), and buffer managers may consult it when choosing whom to
// serve, so it biases rather than overrides position-aware scheduling.
func (q *QueryCtx) SetPriority(p float64) {
	if q == nil {
		return
	}
	q.prio.Store(math.Float64bits(p))
}

// Priority returns the I/O priority hint (0 when unset or nil — every
// query is equal by default).
func (q *QueryCtx) Priority() float64 {
	if q == nil {
		return 0
	}
	return math.Float64frombits(q.prio.Load())
}

// OnCancel registers fn to run when the query is cancelled and returns a
// remove function deregistering it. If the query is already cancelled,
// fn runs synchronously before OnCancel returns. This is the universal
// cancel-wake mechanism: blocking wait points register a hook that fires
// their wake-up primitive (an Event, a Cond broadcast, a channel close),
// park, then deregister on wake.
func (q *QueryCtx) OnCancel(fn func()) (remove func()) {
	if q == nil {
		return func() {}
	}
	q.mu.Lock()
	if q.cause.Load() != int32(CauseNone) {
		q.mu.Unlock()
		fn()
		return func() {}
	}
	id := q.nextHook
	q.nextHook++
	q.hooks = append(q.hooks, cancelHook{id: id, fn: fn})
	q.mu.Unlock()
	return func() {
		q.mu.Lock()
		for i, h := range q.hooks {
			if h.id == id {
				q.hooks = append(q.hooks[:i], q.hooks[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
	}
}
