// Package rt is the runtime seam between the deterministic discrete-event
// simulator and real-threaded execution. Every engine component (disk
// model, buffer pool, ABM, scheduler, executor) programs against the
// Runtime interface — clock, spawn, sleep, and wait/wake primitives —
// instead of *sim.Engine directly, so the same code runs in two modes:
//
//   - Sim wraps the cooperative internal/sim engine: one process runs at
//     a time on a virtual clock, which makes every run bit-reproducible.
//     This is the default and the only mode the paper's figures use.
//   - NewReal runs processes as plain goroutines on the wall clock:
//     sleeps are real sleeps, waits are channel/condvar waits, and as
//     many processes run simultaneously as GOMAXPROCS allows.
//
// The components' shared-state protection is ordinary sync.Mutex. In sim
// mode those mutexes are uncontended by construction (exactly one process
// executes at any moment) and never held across a yield point from the
// engine's point of view, so they cost nanoseconds and cannot perturb the
// virtual-time trajectory; in real mode they are load-bearing.
package rt

import (
	"time"

	"repro/internal/sim"
)

// Time is a timestamp in nanoseconds since the start of the run: virtual
// in sim mode, wall-clock-since-epoch in real mode.
type Time = sim.Time

// Duration is a span of (virtual or real) time.
type Duration = time.Duration

// Waiter is registered interest in an Event firing. Wait blocks until the
// first Fire that happens after the Waiter was obtained — obtaining the
// Waiter before releasing a mutex and calling Wait after closes the
// classic lost-wake-up window of check-then-block code.
type Waiter interface {
	Wait()
}

// Event is a reusable broadcast synchronization point: a Fire wakes every
// process currently waiting; processes that arrive after a Fire block
// until the next one.
type Event interface {
	// Wait blocks until the next Fire (equivalent to Waiter().Wait()).
	Wait()
	// Waiter registers interest now and returns a handle to block on.
	Waiter() Waiter
	// Fire wakes all current waiters. It is safe to call from any
	// process/goroutine and never blocks.
	Fire()
}

// Resource is a counting semaphore: a fixed number of interchangeable
// units that processes acquire and release.
type Resource interface {
	Acquire()
	Release()
	InUse() int
	Capacity() int
}

// WaitGroup counts outstanding work with the sync.WaitGroup contract.
type WaitGroup interface {
	Add(delta int)
	Done()
	Wait()
}

// Runtime is the execution substrate: clock, process spawning, sleeping,
// and synchronization primitive factories.
type Runtime interface {
	// Real reports whether this is the real-threaded runtime. Components
	// branch on it only where the two modes need structurally different
	// synchronization (e.g. condvar wake-ups vs deterministic FIFO
	// hand-off); everything else is mode-blind.
	Real() bool
	// Now returns the current time (virtual or wall).
	Now() Time
	// Go spawns fn as a process. In sim mode it does not start until the
	// scheduler hands it the execution token; in real mode it is a
	// goroutine tracked until completion by Run.
	Go(name string, fn func())
	// Sleep suspends the caller for d. Non-positive d yields.
	Sleep(d Duration)
	// SleepUntil suspends the caller until time t (no-op if t has passed).
	SleepUntil(t Time)
	// Yield lets other runnable processes execute.
	Yield()
	NewEvent() Event
	NewResource(capacity int) Resource
	NewWaitGroup() WaitGroup
	// Run drives the runtime until every spawned process has terminated.
	// Call exactly once, after spawning the initial processes.
	Run()
}
