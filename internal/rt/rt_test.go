package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// Both runtimes must satisfy the same observable contract for the pieces
// the engine components rely on; the sim side additionally guarantees
// determinism, which internal/sim's own tests cover.

func runtimes(t *testing.T) map[string]func() Runtime {
	return map[string]func() Runtime{
		"sim":  func() Runtime { return Sim(sim.NewEngine()) },
		"real": NewReal,
	}
}

func TestRunWaitsForAllProcesses(t *testing.T) {
	for name, mk := range runtimes(t) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var n atomic.Int64
			for i := 0; i < 8; i++ {
				r.Go("p", func() {
					r.Sleep(time.Microsecond)
					// Spawning from within a process must also be tracked.
					r.Go("child", func() { n.Add(1) })
					n.Add(1)
				})
			}
			r.Run()
			if got := n.Load(); got != 16 {
				t.Fatalf("Run returned with %d/16 processes finished", got)
			}
		})
	}
}

func TestEventFireWakesAllWaiters(t *testing.T) {
	for name, mk := range runtimes(t) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			ev := r.NewEvent()
			var woken atomic.Int64
			var ready sync.WaitGroup
			ready.Add(3)
			for i := 0; i < 3; i++ {
				r.Go("waiter", func() {
					w := ev.Waiter()
					ready.Done()
					w.Wait()
					woken.Add(1)
				})
			}
			r.Go("firer", func() {
				if r.Real() {
					ready.Wait() // all waiters registered
				} else {
					r.Yield() // let the cooperative waiters park
				}
				ev.Fire()
			})
			r.Run()
			if woken.Load() != 3 {
				t.Fatalf("woken %d/3", woken.Load())
			}
		})
	}
}

// TestRealWaiterCatchesFireBeforeWait is the lost-wake-up guarantee the
// check-then-block call sites depend on: a Fire between Waiter() and
// Wait() must not be lost.
func TestRealWaiterCatchesFireBeforeWait(t *testing.T) {
	r := NewReal()
	ev := r.NewEvent()
	w := ev.Waiter()
	ev.Fire()
	done := make(chan struct{})
	go func() { w.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait missed a Fire that happened after Waiter()")
	}
	// But a waiter obtained after the Fire must block until the next one.
	w2 := ev.Waiter()
	blocked := make(chan struct{})
	go func() { w2.Wait(); close(blocked) }()
	select {
	case <-blocked:
		t.Fatal("Waiter obtained after Fire did not block")
	case <-time.After(20 * time.Millisecond):
	}
	ev.Fire()
	<-blocked
}

func TestRealResourceBoundsConcurrency(t *testing.T) {
	r := NewReal()
	res := r.NewResource(3)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		r.Go("worker", func() {
			res.Acquire()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			res.Release()
		})
	}
	r.Run()
	if p := peak.Load(); p > 3 {
		t.Fatalf("resource admitted %d concurrent holders with capacity 3", p)
	}
	if res.InUse() != 0 {
		t.Fatalf("leaked units: %d in use", res.InUse())
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	r := NewReal()
	p := NewWorkerPool(r, 2)
	var cur, peak atomic.Int64
	for i := 0; i < 16; i++ {
		p.Submit("task", func() {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	r.Run()
	if pk := peak.Load(); pk > 2 {
		t.Fatalf("pool of 2 ran %d tasks concurrently", pk)
	}
}

// TestWorkerPoolRunsTasksInParallel proves the real runtime actually uses
// more than one OS thread: two tasks rendezvous, which can only complete
// if they execute simultaneously.
func TestWorkerPoolRunsTasksInParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >=2 procs")
	}
	r := NewReal()
	p := NewWorkerPool(r, 2)
	a, b := make(chan struct{}), make(chan struct{})
	ok := make(chan struct{}, 2)
	rendezvous := func(mine, theirs chan struct{}) func() {
		return func() {
			close(mine)
			select {
			case <-theirs:
				ok <- struct{}{}
			case <-time.After(5 * time.Second):
			}
		}
	}
	p.Submit("a", rendezvous(a, b))
	p.Submit("b", rendezvous(b, a))
	r.Run()
	if len(ok) != 2 {
		t.Fatal("tasks did not overlap: the pool is not running on multiple threads")
	}
}

func TestRealSleepAdvancesClock(t *testing.T) {
	r := NewReal()
	t0 := r.Now()
	r.Go("sleeper", func() { r.Sleep(5 * time.Millisecond) })
	r.Run()
	if d := time.Duration(r.Now() - t0); d < 5*time.Millisecond {
		t.Fatalf("clock advanced only %v across a 5ms sleep", d)
	}
}

func TestRealSleepUntilPast(t *testing.T) {
	r := NewReal()
	r.SleepUntil(r.Now() - Time(time.Second)) // must not block
	wg := r.NewWaitGroup()
	wg.Add(1)
	r.Go("p", func() { defer wg.Done(); r.SleepUntil(r.Now() + Time(time.Millisecond)) })
	wg.Wait()
	r.Run()
}
