package trace

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/opt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// fixture builds a pooled single-column table with n pages and a recorder
// attached to the pool.
func fixture(t *testing.T, nPages int) (*sim.Engine, *buffer.Pool, []*storage.Page, *Recorder) {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	perPage := storage.PageSize / 8
	data := storage.NewColumnData()
	vals := make([]int64, nPages*perPage)
	for i := range vals {
		vals[i] = int64(i)
	}
	data.I64[0] = vals
	s, err := tb.Master().Append(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	pool := buffer.NewPool(rt.Sim(eng), disk, buffer.NewLRU(), int64(nPages)*storage.PageSize)
	rec := NewRecorder()
	rec.Attach(pool)
	return eng, pool, s.Pages(0), rec
}

func TestRecorderCapturesAccessOrder(t *testing.T) {
	eng, pool, pages, rec := fixture(t, 4)
	order := []int{2, 0, 2, 3, 1}
	eng.Go("q", func() {
		for _, i := range order {
			pool.Unpin(pool.Get(pages[i]))
		}
	})
	eng.Run()
	refs := rec.Refs()
	if len(refs) != len(order) {
		t.Fatalf("recorded %d refs, want %d", len(refs), len(order))
	}
	for i, want := range order {
		if refs[i].Page != pages[want].ID {
			t.Errorf("ref %d = page %v, want %v", i, refs[i].Page, pages[want].ID)
		}
		if refs[i].Bytes != pages[want].Bytes {
			t.Errorf("ref %d bytes = %d, want %d", i, refs[i].Bytes, pages[want].Bytes)
		}
	}
	if rec.Len() != len(order) {
		t.Errorf("Len = %d, want %d", rec.Len(), len(order))
	}
}

func TestRecorderCapturesHitsAndMisses(t *testing.T) {
	// The trace must record every reference — hits included — or an OPT
	// replay would see a different reference string than the live run.
	eng, pool, pages, rec := fixture(t, 2)
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0])) // miss
		pool.Unpin(pool.Get(pages[0])) // hit
	})
	eng.Run()
	if rec.Len() != 2 {
		t.Fatalf("recorded %d refs, want 2 (hit and miss)", rec.Len())
	}
}

func TestAttachChainsExistingHook(t *testing.T) {
	eng, pool, pages, rec := fixture(t, 2)
	// fixture already attached rec; attach a second recorder on top and
	// verify both see the traffic (Attach chains, not replaces).
	rec2 := NewRecorder()
	rec2.Attach(pool)
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[1]))
	})
	eng.Run()
	if rec.Len() != 1 || rec2.Len() != 1 {
		t.Fatalf("chained recorders saw %d/%d refs, want 1/1", rec.Len(), rec2.Len())
	}
}

func TestRecordDirectAndReset(t *testing.T) {
	rec := NewRecorder()
	pg := &storage.Page{Bytes: 4096}
	rec.Record(pg)
	rec.Record(pg)
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	if rec.Refs()[0] != (opt.Ref{Page: pg.ID, Bytes: pg.Bytes}) {
		t.Fatalf("bad ref %+v", rec.Refs()[0])
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatalf("Len after Reset = %d", rec.Len())
	}
}

func TestRecordedTraceReplaysUnderOPT(t *testing.T) {
	// End-to-end: a recorded trace must be consumable by the OPT
	// simulator, and OPT with the full capacity loads each page once.
	eng, pool, pages, rec := fixture(t, 4)
	eng.Go("q", func() {
		for round := 0; round < 3; round++ {
			for _, pg := range pages {
				pool.Unpin(pool.Get(pg))
			}
		}
	})
	eng.Run()
	res := opt.Simulate(rec.Refs(), int64(len(pages))*storage.PageSize)
	want := int64(len(pages)) * storage.PageSize
	if res.BytesLoaded != want {
		t.Fatalf("OPT loaded %d bytes, want %d (one cold load per page)", res.BytesLoaded, want)
	}
}
