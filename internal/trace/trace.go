// Package trace records page-reference traces from a live run so they can
// be replayed offline (the paper replays the PBM run's trace under OPT).
package trace

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/opt"
	"repro/internal/storage"
)

// Recorder accumulates page references in request order. It is safe for
// concurrent use: on the real-threaded runtime the pool's per-shard
// OnAccess callbacks fire from many goroutines (request order then means
// mutex-acquisition order; replay determinism is a sim-mode property).
type Recorder struct {
	mu   sync.Mutex
	refs []opt.Ref
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Attach hooks the recorder into a pool's OnAccess callback, chaining any
// existing hook.
func (r *Recorder) Attach(pool *buffer.Pool) {
	prev := pool.OnAccess
	pool.OnAccess = func(p *storage.Page) {
		r.Record(p)
		if prev != nil {
			prev(p)
		}
	}
}

// Record appends one reference directly (used by the chunk-granularity
// ABM path, which bypasses the page pool).
func (r *Recorder) Record(p *storage.Page) {
	r.mu.Lock()
	r.refs = append(r.refs, opt.Ref{Page: p.ID, Bytes: p.Bytes})
	r.mu.Unlock()
}

// Refs returns the recorded trace.
func (r *Recorder) Refs() []opt.Ref {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refs
}

// Len returns the number of recorded references.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.refs)
}

// Reset clears the trace.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refs = r.refs[:0]
}
