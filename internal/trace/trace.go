// Package trace records page-reference traces from a live run so they can
// be replayed offline (the paper replays the PBM run's trace under OPT).
package trace

import (
	"repro/internal/buffer"
	"repro/internal/opt"
	"repro/internal/storage"
)

// Recorder accumulates page references in request order.
type Recorder struct {
	refs []opt.Ref
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Attach hooks the recorder into a pool's OnAccess callback, chaining any
// existing hook.
func (r *Recorder) Attach(pool *buffer.Pool) {
	prev := pool.OnAccess
	pool.OnAccess = func(p *storage.Page) {
		r.refs = append(r.refs, opt.Ref{Page: p.ID, Bytes: p.Bytes})
		if prev != nil {
			prev(p)
		}
	}
}

// Record appends one reference directly (used by the chunk-granularity
// ABM path, which bypasses the page pool).
func (r *Recorder) Record(p *storage.Page) {
	r.refs = append(r.refs, opt.Ref{Page: p.ID, Bytes: p.Bytes})
}

// Refs returns the recorded trace.
func (r *Recorder) Refs() []opt.Ref { return r.refs }

// Len returns the number of recorded references.
func (r *Recorder) Len() int { return len(r.refs) }

// Reset clears the trace.
func (r *Recorder) Reset() { r.refs = r.refs[:0] }
