package pbm

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// costPages builds nPages of single-column table pages for scan
// registration without needing an engine or a pool.
func costPages(t *testing.T, nPages int) []*storage.Page {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	data := storage.NewColumnData()
	data.I64[0] = make([]int64, nPages*(storage.PageSize/8))
	s, err := tb.Master().Append(data)
	if err != nil {
		t.Fatal(err)
	}
	return s.Pages(0)
}

// The admission cost hook must fall back to DefaultSpeed with no
// observed scans, then track the mean of the observed speeds.
func TestCostHookTracksObservedSpeeds(t *testing.T) {
	clk := &fakeClock{}
	cfg := testCfg()
	p := New(clk, cfg)
	pages := costPages(t, 8)

	if got := p.AvgScanSpeed(); got != cfg.DefaultSpeed {
		t.Fatalf("idle AvgScanSpeed %v, want DefaultSpeed %v", got, cfg.DefaultSpeed)
	}
	// 1e6 tuples at the 1e6 tuples/s default => 1 second.
	if got := p.EstimateScanTime(1_000_000); got != time.Second {
		t.Fatalf("idle estimate %v, want 1s", got)
	}
	if p.EstimateScanTime(0) != 0 || p.EstimateScanTime(-5) != 0 {
		t.Fatal("non-positive tuple counts must price to zero")
	}

	// A registered but not-yet-observed scan must not drag the average.
	id1 := p.RegisterScan([][]*storage.Page{pages})
	if got := p.AvgScanSpeed(); got != cfg.DefaultSpeed {
		t.Fatalf("unobserved scan changed AvgScanSpeed to %v", got)
	}

	// First observation: 10000 tuples over 1s => 10000 tuples/s.
	clk.t = sim.Time(time.Second)
	p.ReportScanPosition(id1, 10000)
	if got := p.AvgScanSpeed(); got != 10000 {
		t.Fatalf("AvgScanSpeed %v, want 10000", got)
	}

	// Second scan: 30000 tuples over its own 1s window => 30000 tuples/s;
	// the average over both scans is 20000.
	id2 := p.RegisterScan([][]*storage.Page{pages})
	clk.t = sim.Time(2 * time.Second)
	p.ReportScanPosition(id2, 30000)
	if got := p.AvgScanSpeed(); got != 20000 {
		t.Fatalf("AvgScanSpeed %v, want 20000", got)
	}
	// 50000 tuples at 20000 tuples/s => 2.5s.
	if got := p.EstimateScanTime(50000); got != 2500*time.Millisecond {
		t.Fatalf("estimate %v, want 2.5s", got)
	}

	// Unregistering returns the hook to the remaining scan's speed.
	p.UnregisterScan(id2)
	if got := p.AvgScanSpeed(); got != 10000 {
		t.Fatalf("AvgScanSpeed after unregister %v, want 10000", got)
	}
}

// The sharded group must price scans exactly as a single instance:
// every member sees the identical registration stream.
func TestGroupCostHookMatchesSingle(t *testing.T) {
	clk := &fakeClock{}
	cfg := testCfg()
	g := NewGroup(clk, cfg, 4)
	single := New(clk, cfg)
	pages := costPages(t, 8)

	gid := g.RegisterScan([][]*storage.Page{pages})
	sid := single.RegisterScan([][]*storage.Page{pages})
	clk.t = sim.Time(time.Second)
	g.ReportScanPosition(gid, 12000)
	single.ReportScanPosition(sid, 12000)

	if gs, ss := g.AvgScanSpeed(), single.AvgScanSpeed(); gs != ss {
		t.Fatalf("group AvgScanSpeed %v != single %v", gs, ss)
	}
	if ge, se := g.EstimateScanTime(34567), single.EstimateScanTime(34567); ge != se || ge <= 0 {
		t.Fatalf("group estimate %v != single %v", ge, se)
	}
}

// A zero/unset DefaultSpeed must not poison the cost estimate with +Inf:
// the estimate clamps to a positive floor and stays finite, positive and
// monotonic in scan length, so sesf ordering still works on the fallback
// path.
func TestEstimateScanTimeClampsZeroSpeed(t *testing.T) {
	p := New(&fakeClock{}, testCfg())
	// New normalizes a zero DefaultSpeed, so force the hazard directly:
	// any path that leaves the average at zero (or negative) must hit the
	// pricing floor instead of dividing to +Inf.
	p.cfg.DefaultSpeed = 0

	short := p.EstimateScanTime(1_000)
	long := p.EstimateScanTime(2_000)
	if short <= 0 || long <= 0 {
		t.Fatalf("non-positive estimates: short=%v long=%v", short, long)
	}
	if short >= long {
		t.Fatalf("estimate not monotonic on fallback path: short=%v long=%v", short, long)
	}
	// At the 1 tuple/s floor, 1000 tuples price at 1000 seconds exactly.
	if want := sim.Duration(1000 * time.Second); short != want {
		t.Fatalf("short = %v, want %v at the floor speed", short, want)
	}
	// Enormous scans must cap instead of overflowing into negative costs.
	if huge := p.EstimateScanTime(1 << 62); huge <= 0 {
		t.Fatalf("huge scan estimate overflowed: %v", huge)
	}
	if p.EstimateScanTime(0) != 0 {
		t.Fatal("zero tuples must price at zero")
	}
}
