package pbm

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// groupPages builds n one-page metadata stubs (the group tests never
// touch page contents).
func groupPages(n int) []*storage.Page {
	out := make([]*storage.Page, n)
	for i := range out {
		out[i] = &storage.Page{ID: storage.PageID(i + 1), Tuples: 100, Bytes: 1 << 14}
	}
	return out
}

func TestGroupScanIDsAgreeAcrossMembers(t *testing.T) {
	g := NewGroup(&fakeClock{}, testCfg(), 4)
	pages := groupPages(8)
	id1 := g.RegisterScan([][]*storage.Page{pages[:4]})
	id2 := g.RegisterScan([][]*storage.Page{pages[4:]})
	if id1 == id2 {
		t.Fatalf("distinct scans share id %d", id1)
	}
	// Progress reports fan out: every member sees the same speed inputs.
	g.ReportScanPosition(id1, 50)
	for i := 0; i < g.Size(); i++ {
		if got, want := g.Member(i).ScanSpeed(id1), g.ScanSpeed(id1); got != want {
			t.Fatalf("member %d speed %v != group speed %v", i, got, want)
		}
	}
	g.UnregisterScan(id1)
	g.UnregisterScan(id2)
	for i := 0; i < g.Size(); i++ {
		if n := len(g.Member(i).scans); n != 0 {
			t.Fatalf("member %d still tracks %d scans after unregister", i, n)
		}
	}
}

// Each member's victim selection only ever sees the frames admitted to
// it — the pool wires member i as shard i's policy, so a member must
// never surface another shard's frame.
func TestGroupMembersVictimizeOwnFramesOnly(t *testing.T) {
	g := NewGroup(&fakeClock{}, testCfg(), 2)
	pages := groupPages(6)
	g.RegisterScan([][]*storage.Page{pages})
	frames := make(map[*buffer.Frame]int)
	for i, pg := range pages {
		member := i % 2
		f := &buffer.Frame{Page: pg}
		g.Member(member).Admitted(f)
		frames[f] = member
	}
	for member := 0; member < 2; member++ {
		for {
			v := g.Member(member).Victim()
			if v == nil {
				break
			}
			if owner, ok := frames[v]; !ok || owner != member {
				t.Fatalf("member %d offered frame of member %d", member, owner)
			}
			g.Member(member).Removed(v)
			delete(frames, v)
		}
	}
	if len(frames) != 0 {
		t.Fatalf("%d frames never offered as victims", len(frames))
	}
}
