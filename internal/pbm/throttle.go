package pbm

import "repro/internal/sim"

// This file implements the "PBM Attach & Throttle" improvement sketched
// in §5 of the paper: under extreme memory pressure, PBM cannot exploit
// sharing because scans are scattered across the table and data is
// delivered in order. The paper proposes throttling a leading scan when
// the pages it just consumed would be evicted before reuse, so scans
// behind it catch up and groups form that share I/O (in the spirit of
// DB2's grouping/throttling [13,14]).
//
// The mechanism follows the paper's sketch directly:
//
//   - PBM tracks next_consumption_evict: an exponentially-weighted
//     average of the estimated next-consumption time of pages at the
//     moment they are evicted.
//   - After a scan consumes a page, the page gets a new next-consumption
//     estimate (from the next scan that wants it). If that estimate is
//     at or beyond next_consumption_evict, the page is likely to be
//     evicted before its reuse; if throttling the leading scan would pull
//     the trailing scan's arrival below the eviction horizon, PBM advises
//     the scan to throttle.
//
// Scan operators consult ShouldThrottle periodically and sleep briefly
// when advised; see exec.Scan's ThrottleCheck wiring.

// ThrottleConfig tunes the attach&throttle extension.
type ThrottleConfig struct {
	// Enabled switches the advice on.
	Enabled bool
	// Pause is the sleep a scan takes when advised to throttle.
	Pause sim.Duration
	// Margin scales the eviction horizon: a trailing scan must be within
	// Margin*next_consumption_evict for throttling to help.
	Margin float64
}

// DefaultThrottleConfig returns reasonable defaults (disabled).
func DefaultThrottleConfig() ThrottleConfig {
	return ThrottleConfig{Pause: 2e6, Margin: 1.0} // 2 ms pause
}

// noteEviction updates the eviction-horizon estimate with the evicted
// page's next-consumption time (if any scan still wanted it).
func (p *PBM) noteEviction(m *pageMeta) {
	d, ok := p.nextConsumption(m)
	if !ok {
		return
	}
	v := float64(d)
	if p.evictHorizon == 0 {
		p.evictHorizon = v
		return
	}
	p.evictHorizon = 0.8*p.evictHorizon + 0.2*v
}

// EvictionHorizon reports the current next_consumption_evict estimate in
// virtual nanoseconds (0 when no requested page was evicted yet).
func (p *PBM) EvictionHorizon() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictHorizon
}

// ShouldThrottle advises whether the given scan should pause to let
// trailing scans catch up. The test is the paper's: find the soonest
// trailing scan behind this one on overlapping pages; if the pages the
// leading scan is about to consume would next be consumed (by that
// trailing scan) beyond the eviction horizon, but throttling brings the
// gap within the horizon, advise a pause.
func (p *PBM) ShouldThrottle(id ScanID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.throttle.Enabled || p.evictHorizon <= 0 {
		return false
	}
	lead, ok := p.scans[id]
	if !ok || lead.speed <= 0 {
		return false
	}
	// Find the closest trailing scan: smallest positive tuple gap to any
	// other scan (an O(#scans) scan-position comparison; positions are
	// comparable because the workload's scans cover the same tables).
	// Ties break on the lower scan id: p.scans is a map, and letting its
	// iteration order decide between equally-distant trailers made the
	// throttle advice — and with it the whole PBM+throttle run —
	// nondeterministic even on the simulator.
	bestGap := int64(-1)
	var trailer *scanState
	for _, st := range p.scans {
		if st == lead {
			continue
		}
		gap := lead.tuplesConsumed - st.tuplesConsumed
		if gap <= 0 {
			continue
		}
		if bestGap < 0 || gap < bestGap || (gap == bestGap && st.id < trailer.id) {
			bestGap = gap
			trailer = st
		}
	}
	if trailer == nil {
		return false
	}
	speed := trailer.speed
	if speed <= 0 {
		speed = p.cfg.DefaultSpeed
	}
	// Time until the trailer reaches the leader's current position.
	catchUp := float64(bestGap) / speed * 1e9
	// Pages just consumed by the leader will be wanted by the trailer in
	// ~catchUp ns. If that is beyond the eviction horizon they will be
	// evicted first — unless the leader slows down, keeping the gap (and
	// hence catchUp) bounded. Throttling only helps when the trailer is
	// close enough that a bounded pause can bridge the gap; for distant
	// trailers it just slows the system, so the advice window is capped.
	lo := p.evictHorizon * p.throttle.Margin
	return catchUp >= lo && catchUp <= lo*8
}

// SetThrottle configures the attach&throttle extension.
func (p *PBM) SetThrottle(cfg ThrottleConfig) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.throttle = cfg
}

// ThrottlePause returns the configured pause duration.
func (p *PBM) ThrottlePause() sim.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.throttle.Pause
}

// ThrottleEnabled reports whether the extension is active.
func (p *PBM) ThrottleEnabled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.throttle.Enabled
}
