package pbm

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestThrottleDisabledByDefault(t *testing.T) {
	p := New(&fakeClock{}, testCfg())
	if p.ThrottleEnabled() {
		t.Fatal("throttle enabled by default")
	}
	if p.ShouldThrottle(1) {
		t.Fatal("disabled throttle advised a pause")
	}
}

func TestEvictionHorizonTracksEvictedPages(t *testing.T) {
	cfg := testCfg()
	cfg.EvictBatch = 1
	eng, p, pool, pages := pbmFixture(t, 2, 8, cfg)
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:8]})
		eng.Sleep(100 * time.Millisecond)
		p.ReportScanPosition(id, 10) // slow scan: far pages have big estimates
		// Fill the 2-page pool with far-future pages; the third get
		// evicts one that a scan still wants -> horizon updates.
		pool.Unpin(pool.Get(pages[5]))
		pool.Unpin(pool.Get(pages[6]))
		pool.Unpin(pool.Get(pages[7]))
		if p.EvictionHorizon() <= 0 {
			t.Error("eviction horizon not updated")
		}
	})
	eng.Run()
}

func TestShouldThrottleLeadingScan(t *testing.T) {
	cfg := testCfg()
	cfg.EvictBatch = 1
	eng, p, pool, pages := pbmFixture(t, 2, 8, cfg)
	tc := DefaultThrottleConfig()
	tc.Enabled = true
	p.SetThrottle(tc)
	eng.Go("q", func() {
		lead := p.RegisterScan([][]*storage.Page{pages[:8]})
		trail := p.RegisterScan([][]*storage.Page{pages[:8]})
		// Leader races ahead, trailer crawls.
		eng.Sleep(10 * time.Millisecond)
		p.ReportScanPosition(lead, 8000)
		p.ReportScanPosition(trail, 100)
		eng.Sleep(10 * time.Millisecond)
		p.ReportScanPosition(lead, 16000)
		p.ReportScanPosition(trail, 200)
		// Force evictions of requested pages to set a short horizon.
		pool.Unpin(pool.Get(pages[5]))
		pool.Unpin(pool.Get(pages[6]))
		pool.Unpin(pool.Get(pages[7]))
		if p.EvictionHorizon() <= 0 {
			t.Fatal("no horizon")
		}
		if !p.ShouldThrottle(lead) {
			t.Error("leading scan not advised to throttle despite trailing scan beyond horizon")
		}
		if p.ShouldThrottle(trail) {
			t.Error("trailing scan advised to throttle")
		}
	})
	eng.Run()
}

func TestShouldThrottleNoTrailerNoAdvice(t *testing.T) {
	cfg := testCfg()
	eng, p, _, pages := pbmFixture(t, 4, 8, cfg)
	tc := DefaultThrottleConfig()
	tc.Enabled = true
	p.SetThrottle(tc)
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:8]})
		eng.Sleep(10 * time.Millisecond)
		p.ReportScanPosition(id, 1000)
		p.evictHorizon = 1e6 // pretend evictions happened
		if p.ShouldThrottle(id) {
			t.Error("sole scan advised to throttle")
		}
	})
	eng.Run()
}

func TestThrottlePauseConfigured(t *testing.T) {
	p := New(&fakeClock{}, testCfg())
	tc := ThrottleConfig{Enabled: true, Pause: sim.Duration(5 * time.Millisecond), Margin: 2}
	p.SetThrottle(tc)
	if p.ThrottlePause() != sim.Duration(5*time.Millisecond) {
		t.Fatalf("pause = %v", p.ThrottlePause())
	}
	if !p.ThrottleEnabled() {
		t.Fatal("not enabled")
	}
}
