package pbm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.TimeSlice = 10 * time.Millisecond
	cfg.NumGroups = 4
	cfg.BucketsPerGroup = 2
	cfg.EvictBatch = 2
	return cfg
}

func TestTimeToBucketMonotonic(t *testing.T) {
	p := New(&fakeClock{}, testCfg())
	prev := 0
	for d := sim.Duration(0); d < 5*time.Second; d += time.Millisecond {
		b := p.timeToBucket(d)
		if b < prev {
			t.Fatalf("bucket index decreased at %v: %d < %d", d, b, prev)
		}
		prev = b
	}
	if prev != len(p.buckets)-1 {
		t.Fatalf("far future maps to bucket %d, want last (%d)", prev, len(p.buckets)-1)
	}
}

func TestTimeToBucketGroupBoundaries(t *testing.T) {
	p := New(&fakeClock{}, testCfg()) // m=2, L=10ms
	cases := []struct {
		d    sim.Duration
		want int
	}{
		{0, 0},
		{9 * time.Millisecond, 0},
		{10 * time.Millisecond, 1},
		{19 * time.Millisecond, 1},
		// Group 1 starts at m*L*(2^1-1)=20ms, buckets of 20ms.
		{20 * time.Millisecond, 2},
		{39 * time.Millisecond, 2},
		{40 * time.Millisecond, 3},
		// Group 2 starts at 2*10*(4-1)=60ms, buckets of 40ms.
		{60 * time.Millisecond, 4},
		{99 * time.Millisecond, 4},
		{100 * time.Millisecond, 5},
		// Group 3 starts at 2*10*(8-1)=140ms, buckets of 80ms.
		{140 * time.Millisecond, 6},
		{-5, 0},
	}
	for _, c := range cases {
		if got := p.timeToBucket(c.d); got != c.want {
			t.Errorf("timeToBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// Property: timeToBucket is total, in range, and monotonic for arbitrary
// durations.
func TestPropertyTimeToBucket(t *testing.T) {
	p := New(&fakeClock{}, testCfg())
	f := func(a, b uint32) bool {
		da, db := sim.Duration(a)*time.Microsecond, sim.Duration(b)*time.Microsecond
		ba, bb := p.timeToBucket(da), p.timeToBucket(db)
		if ba < 0 || ba >= len(p.buckets) {
			return false
		}
		if da <= db && ba > bb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// pbmFixture wires a PBM into a real pool over a one-column table.
func pbmFixture(t testing.TB, capPages, nPages int, cfg Config) (*sim.Engine, *PBM, *buffer.Pool, []*storage.Page) {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	p := New(eng, cfg)
	pool := buffer.NewPool(rt.Sim(eng), disk, p, int64(capPages)*storage.PageSize)

	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	perPage := storage.PageSize / 8
	data := storage.NewColumnData()
	vals := make([]int64, nPages*perPage)
	data.I64[0] = vals
	s, err := tb.Master().Append(data)
	if err != nil {
		t.Fatal(err)
	}
	return eng, p, pool, s.Pages(0)
}

func TestRegisteredPagesGoToRequestedBuckets(t *testing.T) {
	eng, p, pool, pages := pbmFixture(t, 8, 8, testCfg())
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[0])) // cached, unregistered
		sizes := p.BucketSizes()
		if sizes[len(sizes)-1] != 1 {
			t.Errorf("page not in not-requested bucket: %v", sizes)
		}
		id := p.RegisterScan([][]*storage.Page{pages[:4]})
		sizes = p.BucketSizes()
		if sizes[len(sizes)-1] != 0 {
			t.Errorf("registered cached page stayed unrequested: %v", sizes)
		}
		p.UnregisterScan(id)
		sizes = p.BucketSizes()
		if sizes[len(sizes)-1] != 1 {
			t.Errorf("unregister did not return page to LRU bucket: %v", sizes)
		}
	})
	eng.Run()
}

// TestEvictionPrefersUnrequested: pages nobody wants are evicted before
// pages a scan still needs.
func TestEvictionPrefersUnrequested(t *testing.T) {
	eng, p, pool, pages := pbmFixture(t, 4, 8, testCfg())
	eng.Go("q", func() {
		pool.Unpin(pool.Get(pages[6])) // not registered: fodder
		pool.Unpin(pool.Get(pages[7])) // not registered: fodder
		p.RegisterScan([][]*storage.Page{pages[:4]})
		pool.Unpin(pool.Get(pages[0]))
		pool.Unpin(pool.Get(pages[1]))
		// Pool full (4 pages). Next get must evict 6 or 7, never 0/1.
		pool.Unpin(pool.Get(pages[2]))
		if !pool.Contains(pages[0]) || !pool.Contains(pages[1]) {
			t.Error("PBM evicted a requested page while unrequested pages existed")
		}
		if pool.Contains(pages[6]) && pool.Contains(pages[7]) {
			t.Error("no unrequested page was evicted")
		}
	})
	eng.Run()
}

// TestEvictionPrefersFurthestFuture: among requested pages, the one with
// the largest estimated next-consumption time is evicted first.
func TestEvictionPrefersFurthestFuture(t *testing.T) {
	cfg := testCfg()
	cfg.EvictBatch = 1
	eng, p, pool, pages := pbmFixture(t, 2, 8, cfg)
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:6]})
		// Scan at page 0 moving slowly: page 1 is due sooner than page 5.
		eng.Sleep(50 * time.Millisecond)
		p.ReportScanPosition(id, 100) // some progress so speed is known
		pool.Unpin(pool.Get(pages[1]))
		pool.Unpin(pool.Get(pages[5]))
		pool.Unpin(pool.Get(pages[2])) // forces one eviction
		if !pool.Contains(pages[1]) {
			t.Error("evicted the page needed soonest")
		}
		if pool.Contains(pages[5]) {
			t.Error("kept the page needed furthest in the future")
		}
	})
	eng.Run()
}

func TestSpeedEstimation(t *testing.T) {
	eng, p, _, pages := pbmFixture(t, 4, 8, testCfg())
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:4]})
		if p.ScanSpeed(id) != 0 {
			t.Error("speed known before any report")
		}
		eng.Sleep(time.Second)
		p.ReportScanPosition(id, 1000)
		got := p.ScanSpeed(id)
		if got < 900 || got > 1100 {
			t.Errorf("speed = %v, want ~1000 tuples/s", got)
		}
		// Speed quintuples over a full window; the EWMA moves toward it
		// but not all the way.
		eng.Sleep(time.Second)
		p.ReportScanPosition(id, 1000+5000)
		got2 := p.ScanSpeed(id)
		if got2 <= got || got2 >= 5000 {
			t.Errorf("EWMA speed = %v, want between %v and 5000", got2, got)
		}
	})
	eng.Run()
}

func TestPassedPagesDropClaims(t *testing.T) {
	eng, p, pool, pages := pbmFixture(t, 8, 8, testCfg())
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:4]})
		pool.Unpin(pool.Get(pages[0]))
		eng.Sleep(10 * time.Millisecond)
		// Scan consumed past page 0 entirely.
		p.ReportScanPosition(id, pages[0].LastSID()+10)
		pool.Unpin(pool.Get(pages[0])) // re-access triggers re-bucketing
		sizes := p.BucketSizes()
		if sizes[len(sizes)-1] != 1 {
			t.Errorf("passed page should be unrequested: %v", sizes)
		}
	})
	eng.Run()
}

func TestRefreshShiftsTimeline(t *testing.T) {
	eng, p, pool, pages := pbmFixture(t, 8, 8, testCfg())
	eng.Go("q", func() {
		id := p.RegisterScan([][]*storage.Page{pages[:8]})
		_ = id
		pool.Unpin(pool.Get(pages[7])) // far future page under DefaultSpeed
		before := bucketOf(p, pages[7])
		if before <= 0 {
			t.Fatalf("expected far-future bucket, got %d", before)
		}
		// Let a lot of virtual time pass without scan progress; the
		// timeline shifts left, so the page's bucket index must not grow.
		eng.Sleep(500 * time.Millisecond)
		p.refresh()
		after := bucketOf(p, pages[7])
		if after > before {
			t.Errorf("bucket moved right after refresh: %d -> %d", before, after)
		}
	})
	eng.Run()
}

func bucketOf(p *PBM, pg *storage.Page) int {
	m := p.pages[pg.ID]
	if m == nil || m.bucket == nil {
		return -1
	}
	for i, b := range p.buckets {
		if b == m.bucket {
			return i
		}
	}
	if m.bucket == p.notRequested {
		return len(p.buckets)
	}
	return -1
}

// Property: after any interleaving of scan registration, access and time
// passage, every resident page is in exactly one bucket and bucket size
// accounting is consistent.
func TestPropertyBucketAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		eng, p, pool, pages := pbmFixture(t, 6, 12, testCfg())
		ok := true
		eng.Go("q", func() {
			var ids []ScanID
			resident := 0
			for _, op := range ops {
				switch op % 4 {
				case 0:
					ids = append(ids, p.RegisterScan([][]*storage.Page{pages[int(op)%6 : 6+int(op)%6]}))
				case 1:
					pool.Unpin(pool.Get(pages[int(op)%len(pages)]))
				case 2:
					eng.Sleep(sim.Duration(op) * time.Millisecond)
					if len(ids) > 0 {
						p.ReportScanPosition(ids[len(ids)-1], int64(op)*100)
					}
				case 3:
					if len(ids) > 0 {
						p.UnregisterScan(ids[0])
						ids = ids[1:]
					}
				}
				total := 0
				for _, s := range p.BucketSizes() {
					total += s
				}
				resident = 0
				for _, pg := range pages {
					if pool.Contains(pg) {
						resident++
					}
				}
				if total != resident {
					ok = false
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPBMLRUHistoricalPlacement: in LRU mode, a page with periodic reuse
// history goes onto the counter-rotating timeline, not the tail bucket.
func TestPBMLRUHistoricalPlacement(t *testing.T) {
	cfg := testCfg()
	cfg.LRUMode = true
	eng, p, pool, pages := pbmFixture(t, 8, 8, cfg)
	eng.Go("q", func() {
		for i := 0; i < 4; i++ {
			pool.Unpin(pool.Get(pages[0]))
			eng.Sleep(20 * time.Millisecond)
		}
		m := p.pages[pages[0].ID]
		if m == nil || m.bucket == nil {
			t.Fatal("page has no bucket")
		}
		if m.bucket == p.notRequested {
			t.Error("page with reuse history fell into the tail bucket")
		}
	})
	eng.Run()
}

// TestPBMvsLRUScanSharing is the headline behaviour: two staggered scans
// over the same table with a pool half the table size. Under PBM the
// trailing scan reuses pages ahead of the leading scan far better than
// under LRU.
func TestPBMBeatsLRUOnConcurrentScans(t *testing.T) {
	run := func(mkPolicy func(eng *sim.Engine) buffer.Policy) buffer.Stats {
		eng := sim.NewEngine()
		disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 200e6, SeekLatency: 10 * time.Microsecond})
		var pol buffer.Policy = mkPolicy(eng)
		nPages := 64
		pool := buffer.NewPool(rt.Sim(eng), disk, pol, int64(nPages/2)*storage.PageSize)

		cat := storage.NewCatalog()
		tb, _ := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
		perPage := storage.PageSize / 8
		data := storage.NewColumnData()
		data.I64[0] = make([]int64, nPages*perPage)
		s, _ := tb.Master().Append(data)
		pages := s.Pages(0)

		// The trailing scan starts far enough behind that LRU's 32-page
		// window has already evicted what it needs, while PBM keeps the
		// pages soonest-needed (the window right ahead of the trailer).
		scan := func(stagger sim.Duration) {
			eng.Sleep(stagger)
			var id ScanID
			pbmPol, isPBM := pol.(*PBM)
			if isPBM {
				id = pbmPol.RegisterScan([][]*storage.Page{pages})
			}
			consumed := int64(0)
			for _, pg := range pages {
				f := pool.Get(pg)
				eng.Sleep(2 * time.Millisecond) // CPU work per page
				consumed += int64(pg.Tuples)
				if isPBM {
					pbmPol.ReportScanPosition(id, consumed)
				}
				pool.Unpin(f)
			}
			if isPBM {
				pbmPol.UnregisterScan(id)
			}
		}
		eng.Go("s1", func() { scan(0) })
		eng.Go("s2", func() { scan(100 * time.Millisecond) })
		eng.Run()
		return pool.Stats()
	}
	lru := run(func(*sim.Engine) buffer.Policy { return buffer.NewLRU() })
	pbm := run(func(eng *sim.Engine) buffer.Policy { return New(eng, testCfg()) })
	if pbm.Misses >= lru.Misses {
		t.Fatalf("PBM misses %d, LRU misses %d: PBM should win", pbm.Misses, lru.Misses)
	}
}
