// Package pbm implements Predictive Buffer Management (§3 of the paper),
// the paper's primary contribution.
//
// PBM is a replacement policy for the traditional buffer manager. Scans
// register their future page accesses (RegisterScan) and periodically
// report their position and hence speed (ReportScanPosition). From each
// scan's distance-in-tuples to a page and its observed speed, PBM
// estimates the page's time of next consumption (PageNextConsumption) —
// an approximation of the perfect-oracle OPT metric — and evicts the page
// whose next consumption lies furthest in the future.
//
// Because a fully-ordered priority queue was too expensive in the
// highly-concurrent Vectorwise setting, PBM instead partitions pages into
// buckets along an exponential timeline: n groups of m buckets, every
// bucket in group g spanning time_slice*2^g. Push and evict are O(1); the
// timeline is shifted left every time_slice (RefreshRequestedBuckets).
// Pages wanted by no active scan live in a final "not requested" bucket
// kept in LRU order.
package pbm

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ScanID identifies a registered scan.
type ScanID int64

// Clock abstracts the virtual clock so PBM is testable without an engine.
type Clock interface {
	Now() sim.Time
}

// Config parameterizes the bucket timeline.
type Config struct {
	// TimeSlice is the bucket length of the first group and the refresh
	// period of the timeline.
	TimeSlice sim.Duration
	// NumGroups is the number of bucket groups (n in the paper).
	NumGroups int
	// BucketsPerGroup is the number of buckets per group (m in the paper).
	BucketsPerGroup int
	// DefaultSpeed, in tuples/second, is assumed for a scan whose speed
	// has not been observed yet.
	DefaultSpeed float64
	// EvictBatch is the number of victims pre-selected per eviction round
	// to amortize cost (the paper evicts in groups of 16 or more).
	EvictBatch int
	// LRUMode enables the sketched PBM/LRU extension: pages without an
	// interested scan are placed on a second, counter-rotating set of
	// buckets positioned by their historical reuse distance, instead of a
	// single LRU tail bucket.
	LRUMode bool
	// CollectBlockHeat enables the per-block access-temperature map fed
	// by scan registrations (see BlockHeat). Off by default.
	CollectBlockHeat bool
}

// DefaultConfig mirrors the paper's example parameters at a scale suited
// to the simulation (100 ms time slice; plenty of timeline range).
func DefaultConfig() Config {
	return Config{
		TimeSlice:       100 * time.Millisecond,
		NumGroups:       10,
		BucketsPerGroup: 4,
		DefaultSpeed:    1e6,
		EvictBatch:      16,
	}
}

type scanState struct {
	id             ScanID
	tuplesConsumed int64
	speed          float64 // tuples per second; 0 until first report
	lastReport     sim.Time
	lastTuples     int64
	registered     []storage.PageID // pages to clean up at unregister
}

// pageMeta is PBM's per-page bookkeeping. It exists for every page of any
// active scan's range plus every cached page, whether or not resident.
type pageMeta struct {
	id     storage.PageID
	tuples int
	bytes  int64
	// consuming maps scan id -> tuples_behind: the number of tuples the
	// scan must consume before reaching this page (per the paper's
	// RegisterScan pseudocode).
	consuming map[ScanID]int64
	frame     *buffer.Frame // nil when not resident

	bucket     *bucket
	prev, next *pageMeta

	// lastUses holds up to four most recent consumption timestamps, used
	// by the PBM/LRU extension to estimate reuse distance.
	lastUses []sim.Time
}

// bucket is a doubly-linked list of pageMeta with a sentinel. For the
// not-requested bucket the list is maintained in LRU order (front =
// least recently used).
type bucket struct {
	head pageMeta
	size int
}

func newBucket() *bucket {
	b := &bucket{}
	b.head.prev = &b.head
	b.head.next = &b.head
	return b
}

func (b *bucket) pushBack(m *pageMeta) {
	m.prev = b.head.prev
	m.next = &b.head
	m.prev.next = m
	m.next.prev = m
	m.bucket = b
	b.size++
}

func (b *bucket) remove(m *pageMeta) {
	m.prev.next = m.next
	m.next.prev = m.prev
	m.prev, m.next = nil, nil
	m.bucket = nil
	b.size--
}

func (b *bucket) front() *pageMeta {
	if b.size == 0 {
		return nil
	}
	return b.head.next
}

// PBM implements buffer.Policy plus the scan-registration interface of
// Figure 3: RegisterScan, ReportScanPosition, UnregisterScan.
//
// A PBM instance is entered from two directions: by its pool shard
// through the buffer.Policy hooks (under the shard's mutex) and directly
// by scan operators through the Registry surface (under no lock at all).
// On the real-threaded runtime those calls race, so every public entry
// point takes the instance mutex; the lock order is always shard → pbm
// and PBM never calls back into the pool, so the pair cannot deadlock.
// In sim mode the mutex is uncontended and costs nothing.
type PBM struct {
	mu    sync.Mutex
	cfg   Config
	clock Clock

	scans  map[ScanID]*scanState
	nextID ScanID
	pages  map[storage.PageID]*pageMeta

	// buckets is the requested-page timeline: index 0 is "due now".
	buckets      []*bucket
	notRequested *bucket
	// lruBuckets is the PBM/LRU counter-rotating timeline (LRUMode only).
	lruBuckets []*bucket

	timePassed  sim.Time // multiples of TimeSlice applied so far
	lastRefresh sim.Time

	victims []*pageMeta // pre-selected eviction batch

	// Attach&throttle state (§5 extension; see throttle.go).
	throttle     ThrottleConfig
	evictHorizon float64 // EWMA of evicted pages' next-consumption (ns)

	blockHeat map[iosim.BlockID]float64 // non-nil iff cfg.CollectBlockHeat
}

// New creates a PBM policy.
func New(clock Clock, cfg Config) *PBM {
	if cfg.TimeSlice <= 0 || cfg.NumGroups <= 0 || cfg.BucketsPerGroup <= 0 {
		panic("pbm: invalid config")
	}
	if cfg.DefaultSpeed <= 0 {
		cfg.DefaultSpeed = DefaultConfig().DefaultSpeed
	}
	if cfg.EvictBatch <= 0 {
		cfg.EvictBatch = 1
	}
	p := &PBM{
		cfg:          cfg,
		clock:        clock,
		scans:        make(map[ScanID]*scanState),
		pages:        make(map[storage.PageID]*pageMeta),
		notRequested: newBucket(),
	}
	n := cfg.NumGroups * cfg.BucketsPerGroup
	p.buckets = make([]*bucket, n)
	for i := range p.buckets {
		p.buckets[i] = newBucket()
	}
	if cfg.LRUMode {
		p.lruBuckets = make([]*bucket, n)
		for i := range p.lruBuckets {
			p.lruBuckets[i] = newBucket()
		}
	}
	if cfg.CollectBlockHeat {
		p.blockHeat = make(map[iosim.BlockID]float64)
	}
	return p
}

// Name implements buffer.Policy.
func (p *PBM) Name() string {
	if p.cfg.LRUMode {
		return "PBM/LRU"
	}
	return "PBM"
}

// bucketLen returns the time-range length of bucket index i.
func (p *PBM) bucketLen(i int) sim.Duration {
	g := i / p.cfg.BucketsPerGroup
	return p.cfg.TimeSlice << uint(g)
}

// timeToBucket maps a time-until-consumption to a bucket index in O(1)
// (the paper's TimeToBucketNumber). Times beyond the timeline fall into
// the last bucket.
func (p *PBM) timeToBucket(d sim.Duration) int {
	if d < 0 {
		d = 0
	}
	m := sim.Duration(p.cfg.BucketsPerGroup)
	L := p.cfg.TimeSlice
	// Group g covers [m*L*(2^g - 1), m*L*(2^(g+1) - 1)), so g is the bit
	// length of d/(m*L)+1, minus one.
	g := bits.Len64(uint64(d/(m*L))+1) - 1
	if g >= p.cfg.NumGroups {
		return len(p.buckets) - 1
	}
	start := m * L * sim.Duration((1<<uint(g))-1)
	idx := g*p.cfg.BucketsPerGroup + int((d-start)/(L<<uint(g)))
	if idx >= len(p.buckets) {
		idx = len(p.buckets) - 1
	}
	return idx
}

// RegisterScan registers a scan's future page accesses. For every column
// the pages of each range are walked in access order, recording
// (scan id, tuples_behind) on each page, per the paper's pseudocode.
// pagesPerColumn lists, per column, the pages in the order the scan will
// consume them.
func (p *PBM) RegisterScan(pagesPerColumn [][]*storage.Page) ScanID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refresh()
	p.nextID++
	id := p.nextID
	st := &scanState{id: id, lastReport: p.clock.Now()}
	p.scans[id] = st
	for _, pages := range pagesPerColumn {
		var tuplesBehind int64
		for _, pg := range pages {
			m := p.meta(pg)
			if _, ok := m.consuming[id]; !ok {
				st.registered = append(st.registered, pg.ID)
			}
			m.consuming[id] = tuplesBehind
			tuplesBehind += int64(pg.Tuples)
			if m.frame != nil {
				p.pagePush(m)
			}
			if p.blockHeat != nil {
				p.blockHeat[pg.Block]++
			}
		}
	}
	return id
}

// BlockHeat returns a copy of the per-block access-temperature map — how
// many scan registrations covered each physical block — or nil when
// Config.CollectBlockHeat is off. Temperature-based chunk placement
// (iosim.TemperaturePlacement) aggregates it per stripe chunk.
func (p *PBM) BlockHeat() map[iosim.BlockID]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.blockHeat == nil {
		return nil
	}
	out := make(map[iosim.BlockID]float64, len(p.blockHeat))
	for b, h := range p.blockHeat {
		out[b] = h
	}
	return out
}

// speedWindowTuples is the minimum progress between speed re-estimates.
// Estimating per small batch makes the speed oscillate wildly between
// cached batches (fast) and I/O-stalled batches (slow), and the stalled
// samples systematically stretch every consumption estimate right when
// the buffer is under pressure — a mispredict-evict-miss feedback loop.
// A windowed estimate averages over both.
const speedWindowTuples = 4096

// ReportScanPosition updates a scan's progress. tuplesConsumed is the
// total tuples the scan has consumed per column (scans move through all
// their columns at the same tuple position). The scan's speed estimate is
// an exponentially-weighted average of windowed progress observations.
func (p *PBM) ReportScanPosition(id ScanID, tuplesConsumed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.scans[id]
	if !ok {
		panic(fmt.Sprintf("pbm: unknown scan %d", id))
	}
	now := p.clock.Now()
	dt := now - st.lastReport
	dn := tuplesConsumed - st.lastTuples
	if dt > 0 && (dn >= speedWindowTuples || (st.speed == 0 && dn > 0)) {
		inst := float64(dn) / sim.Time(dt).Seconds()
		if st.speed == 0 {
			st.speed = inst
		} else {
			st.speed = 0.5*st.speed + 0.5*inst
		}
		st.lastReport = now
		st.lastTuples = tuplesConsumed
	}
	st.tuplesConsumed = tuplesConsumed
	p.refresh()
}

// UnregisterScan removes the scan and drops its claim on all pages it
// registered, re-bucketing resident pages.
func (p *PBM) UnregisterScan(id ScanID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.scans[id]
	if !ok {
		return
	}
	delete(p.scans, id)
	for _, pid := range st.registered {
		m, ok := p.pages[pid]
		if !ok {
			continue
		}
		delete(m.consuming, id)
		if m.frame != nil {
			p.pagePush(m)
		} else if len(m.consuming) == 0 {
			delete(p.pages, pid)
		}
	}
	p.refresh()
}

func (p *PBM) meta(pg *storage.Page) *pageMeta {
	m, ok := p.pages[pg.ID]
	if !ok {
		m = &pageMeta{id: pg.ID, tuples: pg.Tuples, bytes: pg.Bytes, consuming: make(map[ScanID]int64)}
		p.pages[pg.ID] = m
	}
	return m
}

// SharingVolumes computes the sharing-potential histogram of Figures 17
// and 18: the byte volume of pages currently wanted by exactly k active
// scans, for k in 1..3, with index 4 aggregating >=4 scans. Index 0 holds
// the volume wanted by no scan. All pages known to PBM (resident or
// registered by a scan) are counted.
func (p *PBM) SharingVolumes() [5]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out [5]int64
	for _, m := range p.pages {
		n := 0
		for id, behind := range m.consuming {
			st, ok := p.scans[id]
			if !ok || st.tuplesConsumed >= behind+int64(m.tuples) {
				continue
			}
			n++
		}
		if n > 4 {
			n = 4
		}
		out[n] += m.bytes
	}
	return out
}

// nextConsumption estimates the time until the page is next consumed, the
// paper's PageNextConsumption: the minimum over consuming scans of
// distance-in-tuples divided by scan speed. It returns ok=false when no
// registered scan still needs the page. Entries for scans that have
// already passed the page are dropped.
func (p *PBM) nextConsumption(m *pageMeta) (sim.Duration, bool) {
	best := math.Inf(1)
	found := false
	for id, behind := range m.consuming {
		st, ok := p.scans[id]
		if !ok {
			delete(m.consuming, id)
			continue
		}
		if st.tuplesConsumed >= behind+int64(m.tuples) {
			// The scan moved past this page; its claim has expired.
			delete(m.consuming, id)
			continue
		}
		dist := float64(behind - st.tuplesConsumed)
		if dist < 0 {
			dist = 0
		}
		speed := st.speed
		if speed <= 0 {
			speed = p.cfg.DefaultSpeed
		}
		if t := dist / speed; t < best {
			best = t
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return sim.Duration(best * 1e9), true
}

// pagePush re-buckets a resident page according to its estimated next
// consumption (the paper's PagePush).
func (p *PBM) pagePush(m *pageMeta) {
	if m.bucket != nil {
		m.bucket.remove(m)
	}
	d, ok := p.nextConsumption(m)
	if !ok {
		p.pushUnrequested(m)
		return
	}
	p.buckets[p.timeToBucket(d)].pushBack(m)
}

// pushUnrequested places a page wanted by no scan: plain PBM appends to
// the LRU-ordered not-requested bucket; PBM/LRU positions it on the
// counter-rotating timeline by historical reuse distance.
func (p *PBM) pushUnrequested(m *pageMeta) {
	if !p.cfg.LRUMode {
		p.notRequested.pushBack(m)
		return
	}
	if est, ok := p.historicalReuse(m); ok {
		p.lruBuckets[p.timeToBucket(est)].pushBack(m)
		return
	}
	p.notRequested.pushBack(m)
}

// historicalReuse estimates time-to-next-use from the average distance
// between the page's last four uses (the paper's §3 sketch).
func (p *PBM) historicalReuse(m *pageMeta) (sim.Duration, bool) {
	if len(m.lastUses) < 2 {
		return 0, false
	}
	span := m.lastUses[len(m.lastUses)-1] - m.lastUses[0]
	avg := sim.Duration(span) / sim.Duration(len(m.lastUses)-1)
	elapsed := sim.Duration(p.clock.Now() - m.lastUses[len(m.lastUses)-1])
	est := avg - elapsed
	if est < 0 {
		est = 0
	}
	return est, true
}

// refresh advances the bucket timeline to the current time, shifting
// buckets left one position whenever the time passed is a multiple of
// their length (the paper's RefreshRequestedBuckets), and aging the
// PBM/LRU buckets right.
func (p *PBM) refresh() {
	now := p.clock.Now()
	for p.lastRefresh+sim.Time(p.cfg.TimeSlice) <= now {
		p.lastRefresh += sim.Time(p.cfg.TimeSlice)
		p.timePassed += sim.Time(p.cfg.TimeSlice)
		p.shiftOnce()
	}
}

func (p *PBM) shiftOnce() {
	n := len(p.buckets)
	var spill *bucket // the bucket shifted off position 0 ("buckets[-1]")
	for i := 0; i < n; i++ {
		if p.timePassed%sim.Time(p.bucketLen(i)) != 0 {
			continue
		}
		if i == 0 {
			spill = p.buckets[0]
			p.buckets[0] = nil
		} else {
			if p.buckets[i-1] != nil {
				// Merge: the left neighbour did not move this tick (can
				// happen at group boundaries); fold our pages into it.
				for m := p.buckets[i].front(); m != nil; m = p.buckets[i].front() {
					p.buckets[i].remove(m)
					p.buckets[i-1].pushBack(m)
				}
			} else {
				p.buckets[i-1] = p.buckets[i]
			}
			p.buckets[i] = nil
		}
	}
	for i := 0; i < n; i++ {
		if p.buckets[i] == nil {
			p.buckets[i] = newBucket()
		}
	}
	if spill != nil {
		// Pages due now: recompute their priority (they are either about
		// to be consumed — kept near the front — or their scan stalled).
		for m := spill.front(); m != nil; m = spill.front() {
			spill.remove(m)
			p.pagePush(m)
		}
	}
	if p.cfg.LRUMode {
		// Age the counter-rotating LRU buckets right by one position.
		last := len(p.lruBuckets) - 1
		for m := p.lruBuckets[last].front(); m != nil; m = p.lruBuckets[last].front() {
			p.lruBuckets[last].remove(m)
			p.notRequested.pushBack(m)
		}
		for i := last; i > 0; i-- {
			p.lruBuckets[i] = p.lruBuckets[i-1]
		}
		p.lruBuckets[0] = newBucket()
	}
}

// Admitted implements buffer.Policy.
func (p *PBM) Admitted(f *buffer.Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refresh()
	m := p.meta(f.Page)
	m.frame = f
	f.PolicyState = m
	p.recordUse(m)
	p.pagePush(m)
}

// Accessed implements buffer.Policy.
func (p *PBM) Accessed(f *buffer.Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refresh()
	m := f.PolicyState.(*pageMeta)
	p.recordUse(m)
	p.pagePush(m)
}

func (p *PBM) recordUse(m *pageMeta) {
	m.lastUses = append(m.lastUses, p.clock.Now())
	if len(m.lastUses) > 4 {
		m.lastUses = m.lastUses[len(m.lastUses)-4:]
	}
}

// Removed implements buffer.Policy.
func (p *PBM) Removed(f *buffer.Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := f.PolicyState.(*pageMeta)
	p.noteEviction(m)
	if m.bucket != nil {
		m.bucket.remove(m)
	}
	m.frame = nil
	f.PolicyState = nil
	// Drop victim-batch entries pointing at this page.
	for i, v := range p.victims {
		if v == m {
			p.victims = append(p.victims[:i], p.victims[i+1:]...)
			break
		}
	}
	if len(m.consuming) == 0 {
		delete(p.pages, m.id)
	}
}

// Victim implements buffer.Policy (the paper's EvictPage): first the
// not-requested bucket (LRU order), then requested buckets from the
// furthest future backwards. Victims are pre-selected in batches of
// EvictBatch to amortize selection cost.
func (p *PBM) Victim() *buffer.Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refresh()
	for len(p.victims) > 0 {
		m := p.victims[0]
		p.victims = p.victims[1:]
		if m.frame != nil && !m.frame.Pinned() && !m.frame.Loading() && m.bucket != nil {
			return m.frame
		}
	}
	p.selectVictims()
	for len(p.victims) > 0 {
		m := p.victims[0]
		p.victims = p.victims[1:]
		if m.frame != nil && !m.frame.Pinned() && !m.frame.Loading() {
			return m.frame
		}
	}
	return nil
}

func (p *PBM) selectVictims() {
	// takeLRU drains a bucket in list (LRU) order — used for the
	// not-requested and history buckets.
	takeLRU := func(b *bucket) bool {
		for m := b.front(); m != nil; m = m.next {
			if m == &b.head {
				break
			}
			if m.frame == nil || m.frame.Pinned() || m.frame.Loading() {
				continue
			}
			p.victims = append(p.victims, m)
			if len(p.victims) >= p.cfg.EvictBatch {
				return true
			}
		}
		return false
	}
	// takeFurthest drains a requested bucket by decreasing estimated
	// next consumption: one bucket's pages share a coarse time range (the
	// last bucket aggregates the entire far future), so ordering within
	// it keeps eviction close to OPT at batch-selection cost only.
	takeFurthest := func(b *bucket) bool {
		type cand struct {
			m *pageMeta
			d sim.Duration
		}
		var cands []cand
		for m := b.front(); m != nil; m = m.next {
			if m == &b.head {
				break
			}
			if m.frame == nil || m.frame.Pinned() || m.frame.Loading() {
				continue
			}
			d, ok := p.nextConsumption(m)
			if !ok {
				d = 1 << 62 // nobody wants it anymore: best victim
			}
			cands = append(cands, cand{m, d})
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
		for _, c := range cands {
			p.victims = append(p.victims, c.m)
			if len(p.victims) >= p.cfg.EvictBatch {
				return true
			}
		}
		return false
	}
	if takeLRU(p.notRequested) {
		return
	}
	if p.cfg.LRUMode {
		// Counter-rotating eviction: at each timeline position from the
		// far future inwards, evict the LRU bucket before the PBM bucket.
		for i := len(p.buckets) - 1; i >= 0; i-- {
			if takeLRU(p.lruBuckets[i]) {
				return
			}
			if takeFurthest(p.buckets[i]) {
				return
			}
		}
		return
	}
	for i := len(p.buckets) - 1; i >= 0; i-- {
		if takeFurthest(p.buckets[i]) {
			return
		}
	}
}

// ScanSpeed reports the current speed estimate for a scan (tuples/second),
// exposed for tests and the attach/throttle extension.
func (p *PBM) ScanSpeed(id ScanID) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.scans[id]; ok {
		return st.speed
	}
	return 0
}

// AvgScanSpeed reports the mean observed speed of the currently
// registered scans in tuples/second, falling back to the configured
// DefaultSpeed while no scan has a speed estimate yet. Scans are summed
// in id order so the float result is identical run-to-run.
func (p *PBM) AvgScanSpeed() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]ScanID, 0, len(p.scans))
	for id, st := range p.scans {
		if st.speed > 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return p.cfg.DefaultSpeed
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum float64
	for _, id := range ids {
		sum += p.scans[id].speed
	}
	return sum / float64(len(ids))
}

// minCostSpeed is the floor applied to the speed estimate when pricing
// scans for admission: a zero/unset DefaultSpeed with no observed scans
// must yield a large-but-finite cost — a +Inf estimate poisons sesf's
// ordering (every query ties at +Inf and the cost signal disappears) and
// NaNs any arithmetic downstream. One tuple/second keeps the estimate
// monotonic in scan length even on the fallback path.
const minCostSpeed = 1

// maxCostSec caps the estimate so the sim.Duration conversion cannot
// overflow int64 nanoseconds into a negative cost (which would sort
// AHEAD of every real query under sesf).
const maxCostSec = 1e9

// EstimateScanTime is the admission cost hook (exec.ScanCostModel): the
// expected execution time of a fresh scan over tuples tuples, priced at
// the average observed scan speed. It turns PBM's speed estimates — built
// to predict page next-consumption times for eviction — into the
// per-query expected-work signal a shortest-expected-scan-first admission
// policy orders by. Callers price predicate scans with the tuple count
// surviving zone-map pruning, so a 1%-selective scan is admitted as
// ~100x cheaper than a full scan of the same range (skip-aware costing).
func (p *PBM) EstimateScanTime(tuples int64) sim.Duration {
	if tuples <= 0 {
		return 0
	}
	speed := p.AvgScanSpeed()
	if speed < minCostSpeed {
		speed = minCostSpeed
	}
	secs := float64(tuples) / speed
	if secs > maxCostSec {
		secs = maxCostSec
	}
	return sim.Duration(secs * 1e9)
}

// BucketSizes returns the number of pages in each requested bucket plus
// the not-requested bucket at the end (for tests and introspection).
func (p *PBM) BucketSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.buckets)+1)
	for i, b := range p.buckets {
		out[i] = b.size
	}
	out[len(p.buckets)] = p.notRequested.size
	return out
}
