package pbm

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Registry is the scan-facing surface of predictive buffer management,
// shared by a single *PBM and a sharded *Group: scans register their
// future accesses, report progress, and consult the throttle advice
// without knowing how many policy instances sit behind the pool.
type Registry interface {
	RegisterScan(pagesPerColumn [][]*storage.Page) ScanID
	ReportScanPosition(id ScanID, tuplesConsumed int64)
	UnregisterScan(id ScanID)
	ThrottleEnabled() bool
	ShouldThrottle(id ScanID) bool
	ThrottlePause() sim.Duration
}

var (
	_ Registry = (*PBM)(nil)
	_ Registry = (*Group)(nil)
)

// Group runs one PBM instance per buffer-pool shard and fans every scan
// registration and progress report out to all of them. Every member sees
// the identical registration stream, so their scan tables, speed
// estimates, and ScanIDs agree; what differs per member is the frame
// side: a member's bucket timeline only ever holds the frames resident
// in its own shard, because frames are attached through the pool's
// per-shard Admitted callbacks.
type Group struct {
	// regMu serializes whole registrations across members: each member
	// assigns IDs from its own counter under its own lock, so two scans
	// whose fan-outs interleave would receive different IDs from
	// different members. Real-threaded serving opens scans concurrently;
	// only the registration sequence needs group-level atomicity.
	regMu   sync.Mutex
	members []*PBM
}

// NewGroup creates shards PBM instances sharing one clock and config.
func NewGroup(clock Clock, cfg Config, shards int) *Group {
	if shards <= 0 {
		shards = 1
	}
	g := &Group{members: make([]*PBM, shards)}
	for i := range g.members {
		g.members[i] = New(clock, cfg)
	}
	return g
}

// Size returns the number of member instances.
func (g *Group) Size() int { return len(g.members) }

// Member returns the i-th member instance (the shard-i policy).
func (g *Group) Member(i int) *PBM { return g.members[i] }

// PolicyFactory adapts the group to buffer.NewShardedPool: shard i is
// backed by member i.
func (g *Group) PolicyFactory() func(shard int) buffer.Policy {
	return func(i int) buffer.Policy { return g.members[i] }
}

// RegisterScan fans the registration out to every member. Members assign
// IDs from identical call sequences, so the IDs agree by construction.
func (g *Group) RegisterScan(pagesPerColumn [][]*storage.Page) ScanID {
	g.regMu.Lock()
	defer g.regMu.Unlock()
	id := g.members[0].RegisterScan(pagesPerColumn)
	for _, m := range g.members[1:] {
		if mid := m.RegisterScan(pagesPerColumn); mid != id {
			panic(fmt.Sprintf("pbm: shard scan-id divergence: %d vs %d", mid, id))
		}
	}
	return id
}

// ReportScanPosition implements Registry by fan-out.
func (g *Group) ReportScanPosition(id ScanID, tuplesConsumed int64) {
	for _, m := range g.members {
		m.ReportScanPosition(id, tuplesConsumed)
	}
}

// UnregisterScan implements Registry by fan-out.
func (g *Group) UnregisterScan(id ScanID) {
	for _, m := range g.members {
		m.UnregisterScan(id)
	}
}

// SetThrottle configures the attach&throttle extension on every member.
func (g *Group) SetThrottle(cfg ThrottleConfig) {
	for _, m := range g.members {
		m.SetThrottle(cfg)
	}
}

// ThrottleEnabled reports whether the extension is active (uniform
// across members).
func (g *Group) ThrottleEnabled() bool { return g.members[0].ThrottleEnabled() }

// ThrottlePause returns the configured pause duration.
func (g *Group) ThrottlePause() sim.Duration { return g.members[0].ThrottlePause() }

// ShouldThrottle advises a pause when any member does: the members share
// scan state but each only observes its own shard's evictions, so the
// eviction horizon that triggers the advice is per shard.
func (g *Group) ShouldThrottle(id ScanID) bool {
	for _, m := range g.members {
		if m.ShouldThrottle(id) {
			return true
		}
	}
	return false
}

// ScanSpeed reports the speed estimate for a scan (identical across
// members, which see the same progress reports).
func (g *Group) ScanSpeed(id ScanID) float64 { return g.members[0].ScanSpeed(id) }

// AvgScanSpeed reports the mean observed scan speed (identical across
// members, which see the same progress reports).
func (g *Group) AvgScanSpeed() float64 { return g.members[0].AvgScanSpeed() }

// EstimateScanTime is the admission cost hook (exec.ScanCostModel),
// delegated to member 0: all members agree on scan state, so the group
// prices a scan exactly as a single unsharded PBM would.
func (g *Group) EstimateScanTime(tuples int64) sim.Duration {
	return g.members[0].EstimateScanTime(tuples)
}

// SharingVolumes returns the Figure 17/18 sharing histogram. Scan claims
// are mirrored in every member, so member 0 has the full picture for
// k >= 1; only the k = 0 bucket (pages wanted by no scan) is shard-local
// and under-counted here, and no caller consumes it.
func (g *Group) SharingVolumes() [5]int64 { return g.members[0].SharingVolumes() }

// BlockHeat returns the per-block access-temperature map. Registrations
// are mirrored in every member, so member 0 has the full picture.
func (g *Group) BlockHeat() map[iosim.BlockID]float64 { return g.members[0].BlockHeat() }
