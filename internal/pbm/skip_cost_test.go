package pbm

import (
	"testing"
	"time"

	"repro/internal/minmax"
	"repro/internal/storage"
)

// clusteredSnap builds an n-tuple snapshot whose single column holds
// 0..n-1 in order — perfectly clustered, so a zone map prunes value
// windows to exactly their blocks.
func clusteredSnap(t *testing.T, n int) *storage.Snapshot {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "d", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	d := storage.NewColumnData()
	d.I64[0] = vals
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSkipAwarePricingHundredfoldCheaper pins the skip-aware admission
// costing end to end at the pricing layer: callers feed EstimateScanTime
// the tuple count surviving zone-map pruning, so a 1%-selective window
// over a clustered column prices at exactly 1/100th of the full scan at
// the idle default speed — the signal that lets sesf admit narrow
// predicate scans ahead of queued full scans.
func TestSkipAwarePricingHundredfoldCheaper(t *testing.T) {
	const n = 100_000
	snap := clusteredSnap(t, n)
	ix := minmax.Build(snap, 0, 1000)
	p := New(&fakeClock{}, testCfg())

	vmin, vmax, ok := ix.ValueBounds()
	if !ok || vmin != 0 || vmax != n-1 {
		t.Fatalf("value bounds = (%d,%d,%v)", vmin, vmax, ok)
	}
	fullTuples := ix.CountRange(0, n, vmin, vmax)
	selTuples := ix.CountRange(0, n, 0, n/100-1) // 1% value window => block 0 only
	if fullTuples != n || selTuples != n/100 {
		t.Fatalf("surviving tuples full=%d sel=%d, want %d and %d", fullTuples, selTuples, n, n/100)
	}

	full := p.EstimateScanTime(fullTuples)
	sel := p.EstimateScanTime(selTuples)
	// At the 1e6 tuples/s default speed the estimates are exact.
	if full != 100*time.Millisecond {
		t.Fatalf("full-scan estimate %v, want 100ms", full)
	}
	if sel != time.Millisecond {
		t.Fatalf("selective-scan estimate %v, want 1ms", sel)
	}
	if ratio := float64(full) / float64(sel); ratio != 100 {
		t.Fatalf("price ratio %v, want exactly 100x", ratio)
	}
}
