package sim

// Resource models a counting semaphore in virtual time: a fixed number of
// interchangeable units that processes acquire and release. Waiters are
// served FIFO, which keeps simulations deterministic.
type Resource struct {
	e        *Engine
	capacity int
	inUse    int
	waiters  []*proc
}

// NewResource creates a resource with the given number of units.
func (e *Engine) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{e: e, capacity: capacity}
}

// Acquire takes one unit, blocking in virtual time until one is free.
func (r *Resource) Acquire() {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	self := r.e.mustCurrent("Resource.Acquire")
	r.waiters = append(r.waiters, self)
	r.e.yield(self)
	// The releaser transferred its unit to us before waking us.
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	if len(r.waiters) > 0 {
		// Hand the unit directly to the oldest waiter; inUse is unchanged.
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.e.ready = append(r.e.ready, p)
		return
	}
	r.inUse--
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.capacity }
