package sim

// WaitGroup counts outstanding work in virtual time, with the same
// contract as sync.WaitGroup but cooperative: Wait suspends the calling
// process until the counter reaches zero.
type WaitGroup struct {
	e  *Engine
	n  int
	ev *Event
}

// NewWaitGroup creates a WaitGroup bound to the engine.
func (e *Engine) NewWaitGroup() *WaitGroup {
	return &WaitGroup{e: e, ev: e.NewEvent()}
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.ev.Fire()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait suspends the current process until the counter is zero.
func (w *WaitGroup) Wait() {
	for w.n > 0 {
		w.ev.Wait()
	}
}
