package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSingleProcessSleep(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Go("p", func() {
		e.Sleep(5 * time.Millisecond)
		at = e.Now()
	})
	e.Run()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("p", func() {
			e.Sleep(Duration(10-i) * time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	want := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameDeadlineTieBrokenByCreation(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("p", func() {
			e.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestClockNeverMovesBackwards(t *testing.T) {
	e := NewEngine()
	var last Time
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		d := Duration(rng.Intn(1000)) * time.Microsecond
		e.Go("p", func() {
			for j := 0; j < 10; j++ {
				e.Sleep(d)
				if e.Now() < last {
					t.Errorf("clock moved backwards: %v < %v", e.Now(), last)
				}
				last = e.Now()
			}
		})
	}
	e.Run()
}

func TestEventBroadcast(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("waiter", func() {
			ev.Wait()
			woke++
		})
	}
	e.Go("firer", func() {
		e.Sleep(time.Millisecond)
		if ev.WaiterCount() != 4 {
			t.Errorf("WaiterCount = %d, want 4", ev.WaiterCount())
		}
		ev.Fire()
	})
	e.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestEventReusable(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	rounds := 0
	e.Go("waiter", func() {
		for i := 0; i < 3; i++ {
			ev.Wait()
			rounds++
		}
	})
	e.Go("firer", func() {
		for i := 0; i < 3; i++ {
			e.Sleep(time.Millisecond)
			ev.Fire()
		}
	})
	e.Run()
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	total := 0
	e.Go("parent", func() {
		for i := 0; i < 5; i++ {
			e.Go("child", func() {
				e.Sleep(time.Millisecond)
				total++
			})
		}
	})
	e.Run()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	panicked := false
	// The deadlock panic fires on the stuck process's goroutine; recover
	// there and let the process exit so Run can drain.
	e.Go("stuck", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ev.Wait()
	})
	e.Run()
	if !panicked {
		t.Fatal("expected deadlock panic")
	}
}

func TestSleepUntilPast(t *testing.T) {
	e := NewEngine()
	e.Go("p", func() {
		e.Sleep(time.Millisecond)
		e.SleepUntil(0) // in the past: must not move the clock back
		if e.Now() != Time(time.Millisecond) {
			t.Errorf("Now = %v, want 1ms", e.Now())
		}
	})
	e.Run()
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("p", func() {
			e.Sleep(Duration(i) * time.Microsecond) // stagger arrival
			r.Acquire()
			order = append(order, i)
			e.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(3)
	maxInUse := 0
	for i := 0; i < 10; i++ {
		e.Go("p", func() {
			r.Acquire()
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			if r.InUse() > r.Capacity() {
				t.Errorf("InUse %d exceeds capacity %d", r.InUse(), r.Capacity())
			}
			e.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.Run()
	if maxInUse != 3 {
		t.Fatalf("maxInUse = %d, want 3", maxInUse)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	r := e.NewResource(1)
	r.Release()
}

// TestDeterminism runs a randomized mix of sleeps and events twice and
// requires identical interleavings.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []int
		ev := e.NewEvent()
		for i := 0; i < 20; i++ {
			i := i
			delays := make([]Duration, 5)
			for j := range delays {
				delays[j] = Duration(rng.Intn(100)) * time.Microsecond
			}
			e.Go("p", func() {
				for _, d := range delays {
					e.Sleep(d)
					log = append(log, i)
				}
				ev.Fire()
			})
		}
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, processes wake in sorted
// order of their durations (ties by spawn order).
func TestPropertyWakeOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		e := NewEngine()
		type wake struct {
			d   uint16
			idx int
		}
		var got []wake
		for i, d := range raw {
			i, d := i, d
			e.Go("p", func() {
				e.Sleep(Duration(d) * time.Microsecond)
				got = append(got, wake{d, i})
			})
		}
		e.Run()
		return sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].d != got[b].d {
				return got[a].d < got[b].d
			}
			return got[a].idx < got[b].idx
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNowOutsideProcess(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("fresh engine Now = %v, want 0", e.Now())
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := Time(1500 * time.Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}
