// Package sim implements a deterministic, cooperative discrete-event
// simulation engine with a virtual clock.
//
// The engine runs each simulated process on its own goroutine but enforces
// strictly cooperative scheduling: exactly one process executes at any
// moment, and control is handed over explicitly when a process sleeps,
// waits on an event, or terminates. Ties between timers that expire at the
// same virtual instant are broken by creation order. Together these rules
// make every simulation bit-reproducible, which the experiment harness
// relies on.
//
// All Engine methods except Run must be called either before Run starts or
// from within a running process; the engine's state is only ever touched by
// the single running process, so no locking is needed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is convertible to
// and from time.Duration.
type Duration = time.Duration

// Seconds renders t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

type proc struct {
	name string
	wake chan struct{}
}

type timer struct {
	at  Time
	seq uint64
	p   *proc
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a virtual-time discrete-event scheduler.
type Engine struct {
	now     Time
	seq     uint64
	ready   []*proc
	timers  timerHeap
	current *proc
	alive   int
	done    chan struct{}
	main    *proc // sentinel representing the caller of Run
	running bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{done: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Go spawns fn as a simulated process. It may be called before Run or from
// within a running process. The process does not start executing until the
// scheduler hands it the execution token.
func (e *Engine) Go(name string, fn func()) {
	p := &proc{name: name, wake: make(chan struct{})}
	e.alive++
	e.ready = append(e.ready, p)
	go func() {
		<-p.wake
		fn()
		e.exit()
	}()
}

// exit terminates the current process and hands control to the next
// runnable process, or wakes the Run caller when the simulation drains.
func (e *Engine) exit() {
	e.alive--
	next := e.next()
	if next == nil {
		if e.alive > 0 {
			panic(fmt.Sprintf("sim: deadlock: %d processes blocked with no pending timers", e.alive))
		}
		e.current = nil
		e.done <- struct{}{}
		return
	}
	e.current = next
	next.wake <- struct{}{}
}

// next picks the next runnable process, advancing the clock to the earliest
// timer if the ready queue is empty. It returns nil when nothing can run.
func (e *Engine) next() *proc {
	if len(e.ready) > 0 {
		p := e.ready[0]
		e.ready = e.ready[1:]
		return p
	}
	if len(e.timers) > 0 {
		t := heap.Pop(&e.timers).(timer)
		if t.at > e.now {
			e.now = t.at
		}
		return t.p
	}
	return nil
}

// yield blocks the current process (which must already have parked itself
// in a timer or event wait list) and transfers control. When the
// scheduler picks the yielding process itself as the next runnable (it
// was the earliest timer and nothing else is ready), control simply
// stays with it — the clock has already advanced in next().
func (e *Engine) yield(self *proc) {
	next := e.next()
	if next == nil {
		panic(fmt.Sprintf("sim: deadlock: process %q blocked with nothing runnable", self.name))
	}
	if next == self {
		e.current = self
		return
	}
	e.current = next
	next.wake <- struct{}{}
	<-self.wake
}

// Sleep suspends the current process for d of virtual time. Negative or
// zero durations still yield, waking at the current instant after other
// already-runnable processes.
func (e *Engine) Sleep(d Duration) {
	self := e.mustCurrent("Sleep")
	at := e.now
	if d > 0 {
		at += Time(d)
	}
	e.seq++
	heap.Push(&e.timers, timer{at: at, seq: e.seq, p: self})
	e.yield(self)
}

// SleepUntil suspends the current process until virtual time t (or yields
// immediately if t is in the past).
func (e *Engine) SleepUntil(t Time) {
	self := e.mustCurrent("SleepUntil")
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.timers, timer{at: t, seq: e.seq, p: self})
	e.yield(self)
}

// Yield lets other runnable processes execute at the current instant.
func (e *Engine) Yield() { e.Sleep(0) }

func (e *Engine) mustCurrent(op string) *proc {
	if e.current == nil {
		panic("sim: " + op + " called from outside a simulated process")
	}
	return e.current
}

// Run executes the simulation until every process has terminated. It must
// be called exactly once, from the (real) goroutine that created the
// engine. It panics if a deadlock is detected.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called twice")
	}
	e.running = true
	if e.alive == 0 {
		return
	}
	next := e.next()
	e.current = next
	next.wake <- struct{}{}
	<-e.done
}

// Event is a broadcast synchronization point. Processes Wait on it; a Fire
// wakes every current waiter. Events are reusable: waiters that arrive
// after a Fire block until the next Fire.
type Event struct {
	e       *Engine
	waiters []*proc
}

// NewEvent creates an event bound to the engine.
func (e *Engine) NewEvent() *Event { return &Event{e: e} }

// Wait suspends the current process until the next Fire.
func (ev *Event) Wait() {
	self := ev.e.mustCurrent("Event.Wait")
	ev.waiters = append(ev.waiters, self)
	ev.e.yield(self)
}

// Fire wakes all processes currently waiting on the event. The waiters are
// appended to the ready queue in their arrival order; the caller keeps
// running.
func (ev *Event) Fire() {
	if len(ev.waiters) == 0 {
		return
	}
	ev.e.ready = append(ev.e.ready, ev.waiters...)
	ev.waiters = nil
}

// WaiterCount reports how many processes are currently blocked on the event.
func (ev *Event) WaiterCount() int { return len(ev.waiters) }
