// Package minmax implements Vectorwise's automatic MinMax indexes, which
// §2.3 of the paper cites as one source of fine-grained scan ranges:
// per-block minimum/maximum summaries of a column that let the planner
// shrink a scan's tuple ranges before it ever reaches the buffer
// manager. The paper notes such restricted range scans are a reason the
// traditional Scan operator must coexist with CScans (many small ranges
// are finer than a chunk).
package minmax

import (
	"repro/internal/storage"
)

// BlockTuples is the default summarization granularity.
const BlockTuples = 4096

// Range is a half-open surviving tuple range. It mirrors exec.RIDRange
// structurally but lives here so the executor can depend on this package
// (for predicate pushdown) without an import cycle.
type Range struct{ Lo, Hi int64 }

// Index summarizes one int64 column of one snapshot.
type Index struct {
	col    int
	block  int64
	mins   []int64
	maxs   []int64
	tuples int64
}

// Build summarizes blocks of blockTuples via the snapshot's storage-level
// BlockMinMax (no buffer pool: in Vectorwise MinMax indexes are
// maintained during load).
func Build(snap *storage.Snapshot, col int, blockTuples int64) *Index {
	if blockTuples <= 0 {
		blockTuples = BlockTuples
	}
	idx := &Index{col: col, block: blockTuples, tuples: snap.NumTuples()}
	idx.mins, idx.maxs = snap.BlockMinMax(col, blockTuples)
	return idx
}

// Blocks returns the number of summarized blocks.
func (ix *Index) Blocks() int { return len(ix.mins) }

// Col returns the summarized column's index in the table schema.
func (ix *Index) Col() int { return ix.col }

// BlockTuples returns the summarization granularity in tuples.
func (ix *Index) BlockTuples() int64 { return ix.block }

// ValueBounds returns the overall column minimum and maximum; ok is
// false for an empty index (no summarized tuples).
func (ix *Index) ValueBounds() (vmin, vmax int64, ok bool) {
	if len(ix.mins) == 0 {
		return 0, 0, false
	}
	vmin, vmax = ix.mins[0], ix.maxs[0]
	for b := 1; b < len(ix.mins); b++ {
		if ix.mins[b] < vmin {
			vmin = ix.mins[b]
		}
		if ix.maxs[b] > vmax {
			vmax = ix.maxs[b]
		}
	}
	return vmin, vmax, true
}

// PruneRange restricts [lo,hi) to the blocks that may contain values in
// [vmin, vmax], returning the (possibly multiple) surviving tuple
// ranges. Ranges are clipped to the input range and coalesced. An
// inverted value interval (vmin > vmax) matches nothing and prunes
// everything.
func (ix *Index) PruneRange(lo, hi int64, vmin, vmax int64) []Range {
	if vmin > vmax {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	if hi > ix.tuples {
		hi = ix.tuples
	}
	if lo >= hi {
		return nil
	}
	first := lo / ix.block
	last := (hi - 1) / ix.block
	var out []Range
	for b := first; b <= last; b++ {
		if ix.mins[b] > vmax || ix.maxs[b] < vmin {
			continue // block cannot match
		}
		blo := b * ix.block
		bhi := blo + ix.block
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		if n := len(out); n > 0 && out[n-1].Hi == blo {
			out[n-1].Hi = bhi // coalesce adjacent surviving blocks
			continue
		}
		out = append(out, Range{Lo: blo, Hi: bhi})
	}
	return out
}

// CountRange returns the number of tuples PruneRange(lo,hi,vmin,vmax)
// would keep — the numerator of a skip-aware scan-cost estimate, without
// materializing the ranges.
func (ix *Index) CountRange(lo, hi int64, vmin, vmax int64) int64 {
	var n int64
	for _, r := range ix.PruneRange(lo, hi, vmin, vmax) {
		n += r.Hi - r.Lo
	}
	return n
}

// Selectivity estimates the fraction of blocks surviving a [vmin,vmax]
// restriction (planner heuristics; tests use it too).
func (ix *Index) Selectivity(vmin, vmax int64) float64 {
	if len(ix.mins) == 0 {
		return 0
	}
	hit := 0
	for b := range ix.mins {
		if ix.mins[b] <= vmax && ix.maxs[b] >= vmin {
			hit++
		}
	}
	return float64(hit) / float64(len(ix.mins))
}
