// Package minmax implements Vectorwise's automatic MinMax indexes, which
// §2.3 of the paper cites as one source of fine-grained scan ranges:
// per-block minimum/maximum summaries of a column that let the planner
// shrink a scan's tuple ranges before it ever reaches the buffer
// manager. The paper notes such restricted range scans are a reason the
// traditional Scan operator must coexist with CScans (many small ranges
// are finer than a chunk).
package minmax

import (
	"repro/internal/exec"
	"repro/internal/storage"
)

// BlockTuples is the default summarization granularity.
const BlockTuples = 4096

// Index summarizes one int64 column of one snapshot.
type Index struct {
	col    int
	block  int64
	mins   []int64
	maxs   []int64
	tuples int64
}

// Build scans the column directly (storage-level, no buffer pool: in
// Vectorwise MinMax indexes are maintained during load) and summarizes
// blocks of blockTuples.
func Build(snap *storage.Snapshot, col int, blockTuples int64) *Index {
	if blockTuples <= 0 {
		blockTuples = BlockTuples
	}
	n := snap.NumTuples()
	idx := &Index{col: col, block: blockTuples, tuples: n}
	var buf []int64
	for lo := int64(0); lo < n; lo += blockTuples {
		hi := lo + blockTuples
		if hi > n {
			hi = n
		}
		buf = snap.ReadInt64(col, lo, hi, buf)
		mn, mx := buf[0], buf[0]
		for _, v := range buf[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		idx.mins = append(idx.mins, mn)
		idx.maxs = append(idx.maxs, mx)
	}
	return idx
}

// Blocks returns the number of summarized blocks.
func (ix *Index) Blocks() int { return len(ix.mins) }

// PruneRange restricts [lo,hi) to the blocks that may contain values in
// [vmin, vmax], returning the (possibly multiple) surviving tuple
// ranges. Ranges are clipped to the input range and coalesced.
func (ix *Index) PruneRange(lo, hi int64, vmin, vmax int64) []exec.RIDRange {
	if lo < 0 {
		lo = 0
	}
	if hi > ix.tuples {
		hi = ix.tuples
	}
	if lo >= hi {
		return nil
	}
	first := lo / ix.block
	last := (hi - 1) / ix.block
	var out []exec.RIDRange
	for b := first; b <= last; b++ {
		if ix.mins[b] > vmax || ix.maxs[b] < vmin {
			continue // block cannot match
		}
		blo := b * ix.block
		bhi := blo + ix.block
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		if n := len(out); n > 0 && out[n-1].Hi == blo {
			out[n-1].Hi = bhi // coalesce adjacent surviving blocks
			continue
		}
		out = append(out, exec.RIDRange{Lo: blo, Hi: bhi})
	}
	return out
}

// Selectivity estimates the fraction of blocks surviving a [vmin,vmax]
// restriction (planner heuristics; tests use it too).
func (ix *Index) Selectivity(vmin, vmax int64) float64 {
	if len(ix.mins) == 0 {
		return 0
	}
	hit := 0
	for b := range ix.mins {
		if ix.mins[b] <= vmax && ix.maxs[b] >= vmin {
			hit++
		}
	}
	return float64(hit) / float64(len(ix.mins))
}
