package minmax

import (
	"math/rand"
	"testing"
)

// TestPruneEmptyIndex pins the degenerate shapes around an index with no
// summarized tuples: every query answers "nothing", never panics.
func TestPruneEmptyIndex(t *testing.T) {
	snap := snapWith(t, nil)
	ix := Build(snap, 0, 1000)
	if ix.Blocks() != 0 {
		t.Fatalf("blocks = %d, want 0", ix.Blocks())
	}
	if _, _, ok := ix.ValueBounds(); ok {
		t.Fatal("ValueBounds ok on empty index")
	}
	if got := ix.PruneRange(0, 100, 0, 1<<40); got != nil {
		t.Fatalf("empty index pruned to %+v, want nil", got)
	}
	if n := ix.CountRange(0, 100, 0, 1<<40); n != 0 {
		t.Fatalf("CountRange = %d, want 0", n)
	}
	if s := ix.Selectivity(0, 1<<40); s != 0 {
		t.Fatalf("Selectivity = %v, want 0", s)
	}
}

// TestPruneInvertedValueInterval is the regression for the bug this
// change fixed: an inverted value interval (vmin > vmax) matches no
// tuple, but the per-block test (mins[b] > vmax || maxs[b] < vmin) can
// be false for both arms — block [0,10] "survives" vmin=8, vmax=2 — so
// without the early return PruneRange kept every block instead of none.
func TestPruneInvertedValueInterval(t *testing.T) {
	snap := snapWith(t, sortedVals(4000))
	ix := Build(snap, 0, 1000)
	if got := ix.PruneRange(0, 4000, 800, 200); got != nil {
		t.Fatalf("inverted interval survived as %+v, want nil", got)
	}
	if n := ix.CountRange(0, 4000, 800, 200); n != 0 {
		t.Fatalf("CountRange on inverted interval = %d, want 0", n)
	}
}

// TestPruneInvertedTupleRange: a backwards or empty tuple range prunes
// everything regardless of the predicate.
func TestPruneInvertedTupleRange(t *testing.T) {
	snap := snapWith(t, sortedVals(4000))
	ix := Build(snap, 0, 1000)
	for _, r := range [][2]int64{{500, 100}, {100, 100}, {4000, 4000}, {5000, 9000}} {
		if got := ix.PruneRange(r[0], r[1], 0, 1<<40); got != nil {
			t.Fatalf("range [%d,%d) survived as %+v, want nil", r[0], r[1], got)
		}
	}
}

// TestPruneStraddlingBlockEdges: a value window that spans a block
// boundary must keep both touching blocks (coalesced), and a window
// matching only a boundary value must keep exactly the owning block.
func TestPruneStraddlingBlockEdges(t *testing.T) {
	snap := snapWith(t, sortedVals(4000))
	ix := Build(snap, 0, 1000)
	// Values 999 and 1000 sit on either side of the block-0/1 edge.
	got := ix.PruneRange(0, 4000, 999, 1000)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 2000 {
		t.Fatalf("straddling window kept %+v, want one coalesced [0,2000)", got)
	}
	// Value 1000 is block 1's minimum: block 0 must drop.
	got = ix.PruneRange(0, 4000, 1000, 1000)
	if len(got) != 1 || got[0].Lo != 1000 || got[0].Hi != 2000 {
		t.Fatalf("boundary value kept %+v, want [1000,2000)", got)
	}
	// Clipping interacts with the straddle: a tuple range starting inside
	// the surviving run clips the run, not the whole block grid.
	got = ix.PruneRange(1500, 4000, 999, 1000)
	if len(got) != 1 || got[0].Lo != 1500 || got[0].Hi != 2000 {
		t.Fatalf("clipped straddle kept %+v, want [1500,2000)", got)
	}
}

// TestPruneOutOfBoundsTupleRange: tuple ranges poking outside the table
// clip to it instead of indexing past the summary arrays.
func TestPruneOutOfBoundsTupleRange(t *testing.T) {
	snap := snapWith(t, sortedVals(2500)) // ragged last block
	ix := Build(snap, 0, 1000)
	got := ix.PruneRange(-100, 99999, 0, 1<<40)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 2500 {
		t.Fatalf("out-of-bounds range kept %+v, want [0,2500)", got)
	}
}

// FuzzPruneRange fuzzes the pruning invariants on a noisy clustered
// column: soundness (no qualifying tuple is ever pruned), well-formed
// output (sorted, disjoint, non-empty, inside the clipped input range),
// and CountRange consistency with the materialized ranges.
func FuzzPruneRange(f *testing.F) {
	rng := rand.New(rand.NewSource(41))
	vals := make([]int64, 6000)
	for i := range vals {
		vals[i] = int64(i/32)*4 + rng.Int63n(9)
	}
	snap := snapWith(f, vals)
	ix := Build(snap, 0, 700) // does not divide 6000: ragged last block
	f.Add(int64(0), int64(6000), int64(0), int64(1000))
	f.Add(int64(-50), int64(9000), int64(100), int64(200))
	f.Add(int64(500), int64(100), int64(0), int64(1000)) // inverted tuple range
	f.Add(int64(0), int64(6000), int64(300), int64(100)) // inverted value interval
	f.Add(int64(699), int64(701), int64(0), int64(0))    // block edge
	f.Fuzz(func(t *testing.T, lo, hi, vmin, vmax int64) {
		ranges := ix.PruneRange(lo, hi, vmin, vmax)
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi > int64(len(vals)) {
			chi = int64(len(vals))
		}
		prev := int64(-1)
		var kept int64
		for _, r := range ranges {
			if r.Lo >= r.Hi || r.Lo < clo || r.Hi > chi || r.Lo <= prev {
				t.Fatalf("malformed output %+v for [%d,%d) x [%d,%d]", ranges, lo, hi, vmin, vmax)
			}
			prev = r.Hi
			kept += r.Hi - r.Lo
		}
		if n := ix.CountRange(lo, hi, vmin, vmax); n != kept {
			t.Fatalf("CountRange = %d, materialized ranges hold %d", n, kept)
		}
		inRanges := func(pos int64) bool {
			for _, r := range ranges {
				if pos >= r.Lo && pos < r.Hi {
					return true
				}
			}
			return false
		}
		for pos := clo; pos < chi; pos++ {
			if v := vals[pos]; v >= vmin && v <= vmax && !inRanges(pos) {
				t.Fatalf("qualifying tuple %d (value %d) pruned by [%d,%d) x [%d,%d]",
					pos, v, lo, hi, vmin, vmax)
			}
		}
	})
}
