package minmax

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

// snapWith builds a one-column snapshot from vals.
func snapWith(t testing.TB, vals []int64) *storage.Snapshot {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "v", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	d.I64[0] = vals
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sortedVals(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	return vals
}

func TestPruneSortedColumn(t *testing.T) {
	snap := snapWith(t, sortedVals(20000))
	ix := Build(snap, 0, 1000)
	if ix.Blocks() != 20 {
		t.Fatalf("blocks = %d", ix.Blocks())
	}
	// Values 5000..5999 live exactly in block 5.
	got := ix.PruneRange(0, 20000, 5000, 5999)
	if len(got) != 1 || got[0].Lo != 5000 || got[0].Hi != 6000 {
		t.Fatalf("pruned = %+v", got)
	}
	// A range matching nothing prunes everything.
	if got := ix.PruneRange(0, 20000, 100000, 200000); got != nil {
		t.Fatalf("expected full prune, got %+v", got)
	}
	// A full-domain restriction keeps one coalesced range.
	got = ix.PruneRange(0, 20000, 0, 1<<40)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 20000 {
		t.Fatalf("coalesce failed: %+v", got)
	}
}

func TestPruneClipsToRequestedRange(t *testing.T) {
	snap := snapWith(t, sortedVals(10000))
	ix := Build(snap, 0, 1000)
	got := ix.PruneRange(2500, 7500, 0, 1<<40)
	if len(got) != 1 || got[0].Lo != 2500 || got[0].Hi != 7500 {
		t.Fatalf("clip failed: %+v", got)
	}
}

func TestSelectivity(t *testing.T) {
	snap := snapWith(t, sortedVals(10000))
	ix := Build(snap, 0, 1000)
	if s := ix.Selectivity(0, 999); s != 0.1 {
		t.Fatalf("selectivity = %v, want 0.1", s)
	}
	if s := ix.Selectivity(-10, 1<<40); s != 1.0 {
		t.Fatalf("selectivity = %v, want 1", s)
	}
}

// Property: pruning never loses a qualifying tuple — every position whose
// value falls in [vmin,vmax] is inside some returned range.
func TestPropertyPruneIsSound(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000))
		}
		snap := snapWith(t, vals)
		ix := Build(snap, 0, 512)
		vmin, vmax := int64(loRaw%1000), int64(hiRaw%1000)
		if vmin > vmax {
			vmin, vmax = vmax, vmin
		}
		ranges := ix.PruneRange(0, int64(len(vals)), vmin, vmax)
		inRanges := func(pos int64) bool {
			for _, r := range ranges {
				if pos >= r.Lo && pos < r.Hi {
					return true
				}
			}
			return false
		}
		for i, v := range vals {
			if v >= vmin && v <= vmax && !inRanges(int64(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: returned ranges are sorted, disjoint and within bounds.
func TestPropertyPruneWellFormed(t *testing.T) {
	snap := snapWith(t, sortedVals(8000))
	ix := Build(snap, 0, 600)
	f := func(a, b uint16, v1, v2 uint16) bool {
		lo, hi := int64(a)%8000, int64(b)%8000
		if lo > hi {
			lo, hi = hi, lo
		}
		vmin, vmax := int64(v1)%8000, int64(v2)%8000
		if vmin > vmax {
			vmin, vmax = vmax, vmin
		}
		prev := int64(-1)
		for _, r := range ix.PruneRange(lo, hi, vmin, vmax) {
			if r.Lo >= r.Hi || r.Lo < lo || r.Hi > hi || r.Lo <= prev {
				return false
			}
			prev = r.Hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
