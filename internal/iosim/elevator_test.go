package iosim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

func newElevatorDisk(eng *sim.Engine, bw float64) *Disk {
	return NewDisk(rt.Sim(eng), Config{Bandwidth: bw, SeekLatency: time.Millisecond, Scheduler: SchedElevator})
}

// Three readers enqueue out of block order before the dispatcher runs; the
// C-SCAN sweep must service them block-ascending with a single seek (the
// initial positioning), where FIFO would pay three.
func TestElevatorSweepOrdersByBlock(t *testing.T) {
	eng := sim.NewEngine()
	d := newElevatorDisk(eng, 1e6)
	var order []BlockID
	d.OnRead = func(b BlockID, _ int64) { order = append(order, b) }
	for _, b := range []BlockID{30, 10, 20} {
		b := b
		eng.Go("r", func() { d.Read(b, 1, 1000) })
	}
	eng.Run()
	if want := []BlockID{10, 20, 30}; !reflect.DeepEqual(order, want) {
		t.Fatalf("service order = %v, want %v", order, want)
	}
	if got := d.Stats().Seeks; got != 1 {
		t.Fatalf("seeks = %d, want 1 (initial positioning only)", got)
	}
}

// Forward jumps ride the sweep for free; only a wrap behind the head pays
// the seek penalty.
func TestElevatorSeeksOnlyOnDirectionBreak(t *testing.T) {
	eng := sim.NewEngine()
	d := newElevatorDisk(eng, 1e6)
	eng.Go("r", func() {
		d.Read(50, 1, 1000) // initial positioning: seek
		d.Read(80, 1, 1000) // forward jump: free (FIFO would charge)
		d.Read(81, 1, 1000) // contiguous: free
		d.Read(10, 1, 1000) // behind the head: wrap, seek
	})
	eng.Run()
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("seeks = %d, want 2 (initial + wrap)", got)
	}
}

// Same-block ties order by I/O priority (higher first), then by arrival
// ticket — the ticketed-admission fairness of the FIFO path.
func TestElevatorTieBreaksByPriorityThenTicket(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	d := NewDisk(r, Config{Bandwidth: 1e6, SeekLatency: 0, Scheduler: SchedElevator})

	lo, hi := rt.NewQueryCtx(r), rt.NewQueryCtx(r)
	hi.SetPriority(5)
	var loEnd, hiEnd, eqAEnd, eqBEnd sim.Time
	eng.Go("lo", func() { d.ReadOwner(lo, 20, 1, 100_000); loEnd = eng.Now() })
	eng.Go("hi", func() { d.ReadOwner(hi, 20, 1, 100_000); hiEnd = eng.Now() })
	eng.Run()
	if hiEnd >= loEnd {
		t.Fatalf("high-priority tie lost: hi end %v, lo end %v", hiEnd, loEnd)
	}

	// Equal priority: arrival ticket order.
	eng2 := sim.NewEngine()
	d2 := NewDisk(rt.Sim(eng2), Config{Bandwidth: 1e6, SeekLatency: 0, Scheduler: SchedElevator})
	eng2.Go("a", func() { d2.Read(20, 1, 100_000); eqAEnd = eng2.Now() })
	eng2.Go("b", func() { d2.Read(20, 1, 100_000); eqBEnd = eng2.Now() })
	eng2.Run()
	if eqAEnd >= eqBEnd {
		t.Fatalf("ticket tie broken: first arrival ended %v, second %v", eqAEnd, eqBEnd)
	}
}

// A request whose owner is cancelled while queued is skipped at its
// service turn: no transfer, no seek, only the Skipped counter.
func TestElevatorSkipsCancelledOwner(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	d := newElevatorDisk(eng, 1e6)
	qc := rt.NewQueryCtx(r)
	eng.Go("keep", func() { d.Read(0, 1, 500_000) })
	eng.Go("dead", func() { d.ReadOwner(qc, 10, 1, 500_000) })
	eng.Go("cancel", func() { qc.Cancel(rt.CauseClientCancel) })
	eng.Run()
	s := d.Stats()
	if s.Requests != 1 || s.Skipped != 1 {
		t.Fatalf("stats = %+v, want 1 serviced + 1 skipped", s)
	}
	if s.BytesRead != 500_000 {
		t.Fatalf("bytes = %d, want only the live request's 500000", s.BytesRead)
	}
}

// The dispatcher exits when the queue drains and respawns on the next
// enqueue; two separated request waves both complete and the engine drains
// in between (no perpetual process).
func TestElevatorDispatcherRespawns(t *testing.T) {
	eng := sim.NewEngine()
	d := newElevatorDisk(eng, 1e6)
	var ends []sim.Time
	eng.Go("r", func() {
		d.Read(0, 1, 1000)
		eng.Sleep(sim.Duration(time.Second)) // queue fully drains; dispatcher exits
		d.Read(100, 1, 1000)
		ends = append(ends, eng.Now())
	})
	eng.Run()
	if len(ends) != 1 {
		t.Fatal("second wave never completed")
	}
	if got := d.Stats().Requests; got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
}

// Same scenario, run twice: the elevator path must be deterministic on the
// sim runtime (identical stats and end times).
func TestElevatorSimDeterministic(t *testing.T) {
	run := func() (Stats, []sim.Time) {
		eng := sim.NewEngine()
		d := newElevatorDisk(eng, 1e6)
		ends := make([]sim.Time, 4)
		for i, b := range []BlockID{40, 5, 25, 12} {
			i, b := i, b
			eng.Go("r", func() {
				d.Read(b, 2, 50_000)
				ends[i] = eng.Now()
			})
		}
		eng.Run()
		return d.Stats(), ends
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || !reflect.DeepEqual(e1, e2) {
		t.Fatalf("elevator not deterministic:\n%+v %v\n%+v %v", s1, e1, s2, e2)
	}
}

// A striped batch on an elevator array must still fan out: all four
// spindles transfer their share concurrently, so the batch completes in
// one chunk's time, exactly as on the FIFO array.
func TestElevatorArrayBatchParallelism(t *testing.T) {
	elapsed := func(sched string) sim.Time {
		eng := sim.NewEngine()
		a := NewArray(rt.Sim(eng), ArrayConfig{
			Config:      Config{Bandwidth: 1e6, SeekLatency: 0, Scheduler: sched},
			Devices:     4,
			StripeChunk: 4,
		})
		var end sim.Time
		eng.Go("r", func() {
			a.ReadSpans([]Span{{Block: 0, Blocks: 16, Bytes: 400_000}}) // one full stripe row
			end = eng.Now()
		})
		eng.Run()
		s := a.Stats()
		for i, ds := range s.PerDevice {
			if ds.BytesRead != 100_000 {
				t.Fatalf("%s: device %d transferred %d, want 100000", sched, i, ds.BytesRead)
			}
		}
		return end
	}
	fifo, elev := elapsed(SchedFIFO), elapsed(SchedElevator)
	if fifo != elev {
		t.Fatalf("batch time fifo=%v elevator=%v, want identical (full overlap)", fifo, elev)
	}
	// Sanity: the batch took one spindle-share, not the serialized total.
	if want := sim.Time(100 * time.Millisecond); fifo != want {
		t.Fatalf("batch time = %v, want %v (100 KB at 1 MB/s per spindle)", fifo, want)
	}
}

// Real-runtime elevator smoke under -race: concurrent readers through the
// dispatcher goroutine, then a drained queue and consistent counters.
func TestRealElevatorConcurrentReads(t *testing.T) {
	r := rt.NewReal()
	d := NewDisk(r, Config{Bandwidth: 1e9, SeekLatency: time.Microsecond, Scheduler: SchedElevator})
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				d.Read(BlockID((i*7+j*13)%50), 1, 10_000)
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.Requests != readers*4 || s.BytesRead != readers*4*10_000 {
		t.Fatalf("stats = %+v", s)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.queued != 0 || len(d.pending) != 0 || d.dispatching {
		t.Fatalf("queue not drained: queued=%d pending=%d dispatching=%v", d.queued, len(d.pending), d.dispatching)
	}
}
