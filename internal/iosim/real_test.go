package iosim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
)

// Ticketed FIFO admission, real runtime: readers that registered (took a
// ticket) while the queue head was still on its way to the mutex must be
// serviced strictly in registration order, not in whatever order
// sync.Mutex barging would wake them. The test takes ticket 0 itself —
// the exact state a production reader occupies between its atomic
// fetch-add and its bookkeeping — so every subsequent reader parks in
// the admission queue; it then registers readers one at a time in a
// known order, releases the queue, and checks the service order. Run
// with -race: it also exercises the admit-condvar paths concurrently.
func TestRealTicketedAdmissionIsFIFO(t *testing.T) {
	r := rt.NewReal()
	d := NewDisk(r, Config{Bandwidth: 1e9, SeekLatency: 0})

	var order []BlockID
	d.OnRead = func(b BlockID, _ int64) { order = append(order, b) }

	// Hold ticket 0 (an arrived-but-not-yet-serving request): every
	// subsequent reader takes a later ticket and parks until the test
	// lets ticket 0 be served.
	d.tickets.Add(1)

	ticketsNow := func() int64 { return d.tickets.Load() }

	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		// Admit readers one at a time: spawn reader i, then wait until it
		// has registered (taken ticket i+1) before spawning reader i+1, so
		// the arrival order is pinned even though the goroutines race.
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Read(BlockID(i*100), 1, 1000)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for ticketsNow() != int64(i+2) {
			if time.Now().After(deadline) {
				t.Fatalf("reader %d never registered", i)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	// All readers parked in ticket order; serve the phantom ticket.
	d.mu.Lock()
	d.serving++
	d.admit.Broadcast()
	d.mu.Unlock()
	wg.Wait()

	if len(order) != readers {
		t.Fatalf("served %d reads, want %d", len(order), readers)
	}
	for i, b := range order {
		if b != BlockID(i*100) {
			t.Fatalf("service order %v, want strict ticket/arrival order", order)
		}
	}
	s := d.Stats()
	if s.Requests != readers || s.BytesRead != readers*1000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxQueueLen != readers {
		t.Fatalf("MaxQueueLen = %d, want %d (all readers queued at once)", s.MaxQueueLen, readers)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.queued != 0 {
		t.Fatalf("queued = %d after completion, want 0", d.queued)
	}
}

// Concurrent striped reads on the real runtime: a -race smoke over the
// DeviceArray fan-out (start/depart across devices) with consistency
// checks on the aggregated counters.
func TestRealArrayConcurrentReads(t *testing.T) {
	r := rt.NewReal()
	a := NewArray(r, ArrayConfig{
		Config:      Config{Bandwidth: 1e9, SeekLatency: time.Microsecond},
		Devices:     4,
		StripeChunk: 4,
	})
	const (
		readers = 8
		reads   = 16
	)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				// 32-block runs from rotating offsets: every read fans out
				// over all four devices.
				a.Read(BlockID((i*reads+j)%64), 32, 32*1024)
			}
		}()
	}
	wg.Wait()
	s := a.Stats()
	if s.BytesRead != readers*reads*32*1024 {
		t.Fatalf("aggregate bytes = %d, want %d", s.BytesRead, readers*reads*32*1024)
	}
	if len(s.PerDevice) != 4 {
		t.Fatalf("per-device stats = %d entries", len(s.PerDevice))
	}
	var sum int64
	for i, ds := range s.PerDevice {
		if ds.BytesRead == 0 {
			t.Fatalf("device %d transferred nothing: %+v", i, s.PerDevice)
		}
		sum += ds.BytesRead
	}
	if sum != s.BytesRead {
		t.Fatalf("device sum %d != aggregate %d", sum, s.BytesRead)
	}
	if s.MinDeviceBytes > s.MaxDeviceBytes {
		t.Fatalf("skew inverted: %+v", s)
	}
}
