// Package iosim simulates a disk subsystem in virtual time.
//
// The model is deliberately simple but captures the properties the paper's
// experiments depend on: a fixed sequential bandwidth, a per-request seek
// penalty when the access is not contiguous with the previous one, and
// FIFO queueing of concurrent requests (requests from many scans serialize
// on the device, so concurrent scans competing for the disk slow each
// other down and destroy sequential locality — the core problem statement
// of §1).
//
// Two layers make up the subsystem: Disk is one spindle with the model
// above, and DeviceArray (array.go) stripes blocks over N disks RAID-0
// style so independent requests to different spindles proceed in parallel
// — the multi-device testbed shape of the paper's SSD RAID. A 1-device
// array is bit-identical to a bare Disk.
//
// The devices are runtime-agnostic: on the sim runtime a read suspends the
// calling process in virtual time; on the real runtime the same bandwidth
// model is timed on the wall clock, so a read really blocks the calling
// goroutine for the modeled device time and concurrent readers really
// queue. The page payloads live in memory either way — the "disk" prices
// access, it does not store bytes.
package iosim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// BlockID identifies a physical disk block (a page's home location). IDs
// are allocated densely; two blocks are "sequential" when their IDs are
// consecutive. On a DeviceArray the ID is a logical address that striping
// maps to a (device, device-local block) pair.
type BlockID int64

// Stats aggregates device activity.
type Stats struct {
	BytesRead   int64 // total bytes transferred
	Requests    int64 // number of read requests
	Seeks       int64 // requests that were not sequential with the previous one
	BusyTime    rt.Duration
	MaxQueueLen int   // high-water mark of queued requests
	Skipped     int64 // queued requests dropped unserviced: owner cancelled before service
}

// Disk is one simulated spindle: a block device with fixed sequential
// bandwidth, a seek penalty, and a FIFO request queue.
type Disk struct {
	r rt.Runtime

	bandwidth   float64 // bytes per second of sequential transfer
	seekLatency rt.Duration

	// Admission is a ticket lock: a request's arrival is linearized by an
	// atomic fetch-add on tickets — deliberately OUTSIDE mu, because a
	// ticket handed out under the mutex would just inherit sync.Mutex's
	// barging order — and requests are serviced strictly in ticket order
	// (start waits on admit until serving reaches its ticket). That makes
	// the device queue genuinely FIFO by arrival on the real runtime,
	// where mutex barging would otherwise let a late-arriving goroutine
	// overtake goroutines that registered long before it and reorder the
	// queue arbitrarily (and with it the Seeks and MaxQueueLen
	// accounting). In sim mode exactly one process runs at a time and
	// bookkeeping never blocks, so a request's ticket is always the one
	// being served and admit never waits.
	tickets atomic.Int64 // next ticket to hand out (arrival order)

	// mu guards the device position, queue and counters.
	mu        sync.Mutex
	admit     *sync.Cond // signalled when serving advances
	serving   int64      // ticket currently admitted to bookkeeping
	busyUntil rt.Time
	lastBlock BlockID
	haveLast  bool
	queued    int

	stats Stats

	// Elevator state (Scheduler == SchedElevator). Arrival-time
	// bookkeeping cannot reorder anything — in sim mode start never
	// blocks, so service order would equal arrival order by construction
	// — so the elevator defers the dispatch decision to service-start
	// time: requests enqueue on pending, and a per-device dispatcher
	// process (spawned on demand, exiting when the queue drains so the
	// simulation can drain too) sleeps until the device frees, then picks
	// the C-SCAN-best pending request and publishes its completion time.
	sched       string
	pending     []*ioReq
	dispatching bool
	assigned    rt.Event // fired on every dispatcher assignment

	// OnRead, if non-nil, observes every read (used by the trace recorder).
	// It is called with the device mutex held, so observers need no
	// synchronization of their own against concurrent reads.
	OnRead func(b BlockID, bytes int64)
}

// ioReq is one request pending on an elevator-scheduled device.
type ioReq struct {
	ticket int64
	q      *rt.QueryCtx
	block  BlockID
	blocks int
	bytes  int64
	prio   float64
	done   bool    // assignment published
	until  rt.Time // completion time, valid once done
}

// Config parameterizes a simulated disk.
type Config struct {
	// Bandwidth is the sequential transfer rate in bytes per second (per
	// device on an array).
	Bandwidth float64
	// SeekLatency is added to any request that does not continue the
	// previous request's block run.
	SeekLatency rt.Duration
	// Scheduler selects the queue discipline: SchedFIFO (or "") services
	// requests in strict arrival order and is bit-identical to the
	// historical device; SchedElevator runs a C-SCAN sweep over the
	// pending blocks, charging the seek penalty only on direction
	// -breaking jumps. See the Disk comment for the dispatch model.
	Scheduler string
}

// Queue disciplines accepted by Config.Scheduler.
const (
	// SchedFIFO services requests strictly in arrival (ticket) order —
	// the historical model and the golden-pinned default.
	SchedFIFO = "fifo"
	// SchedElevator services the pending queue as a C-SCAN sweep: among
	// the requests waiting when the device frees, pick the lowest block
	// at or ahead of the head; when nothing is ahead, wrap to the lowest
	// pending block. Only the wrap (and the initial positioning) pays the
	// seek penalty — forward jumps within a sweep ride the arm's travel.
	// Ties at the same block are broken by I/O priority (higher first,
	// see rt.QueryCtx.SetPriority), then by arrival ticket, preserving
	// the ticketed-admission fairness of the FIFO path.
	SchedElevator = "elevator"
)

// DefaultSeekLatency approximates a short SSD-array reposition; the
// paper's testbed is an SSD RAID, so seeks are cheap but not free.
const DefaultSeekLatency = 100 * time.Microsecond

// NewDisk creates a single spindle attached to the runtime. Engine code
// normally wires a DeviceArray (see New/NewArray) instead.
func NewDisk(r rt.Runtime, cfg Config) *Disk {
	if cfg.Bandwidth <= 0 {
		panic("iosim: bandwidth must be positive")
	}
	if cfg.SeekLatency < 0 {
		panic("iosim: negative seek latency")
	}
	sched := cfg.Scheduler
	switch sched {
	case "", SchedFIFO:
		sched = ""
	case SchedElevator:
	default:
		panic(fmt.Sprintf("iosim: unknown scheduler %q (want %q or %q)", cfg.Scheduler, SchedFIFO, SchedElevator))
	}
	d := &Disk{r: r, bandwidth: cfg.Bandwidth, seekLatency: cfg.SeekLatency, sched: sched}
	d.admit = sync.NewCond(&d.mu)
	d.assigned = r.NewEvent()
	return d
}

// elevator reports whether the device runs the C-SCAN discipline.
func (d *Disk) elevator() bool { return d.sched == SchedElevator }

// Bandwidth reports the configured sequential bandwidth in bytes/second.
func (d *Disk) Bandwidth() float64 { return d.bandwidth }

// Read transfers a run of blocks starting at block b, totalling the given
// number of bytes, blocking the calling process for the simulated device
// time. Concurrent readers queue FIFO in ticket order. blocks is the
// number of consecutive BlockIDs covered (used for sequentiality
// tracking).
func (d *Disk) Read(b BlockID, blocks int, bytes int64) {
	d.ReadOwner(nil, b, blocks, bytes)
}

// ReadOwner is Read with a lifecycle owner tag: if the owning query is
// cancelled by the time the request reaches the head of the device queue,
// the transfer is skipped at start — no seek, no busy time, no byte
// accounting — instead of being serviced for a consumer that will never
// look at the result. A nil owner is a plain Read.
func (d *Disk) ReadOwner(q *rt.QueryCtx, b BlockID, blocks int, bytes int64) {
	if d.elevator() {
		req := d.enqueue(q, b, blocks, bytes)
		d.r.SleepUntil(d.await(req))
		d.depart()
		return
	}
	until := d.start(q, b, blocks, bytes)
	d.r.SleepUntil(until)
	d.depart()
}

// start admits one request through the ticketed FIFO queue, accounts for
// it, and returns its completion time WITHOUT blocking for the transfer
// itself. DeviceArray uses the start/depart split to admit the sub-reads
// of one striped request on several devices and then sleep once until the
// last of them completes.
//
// The owner tag is inspected exactly once, at the request's service turn:
// a request whose owner is already cancelled is retired immediately with
// only the Skipped counter touched. The queue accounting (queued,
// MaxQueueLen, the FIFO ticket) is unchanged either way — a skipped
// request occupied its queue slot until its turn came, which is what the
// depth counters measure.
func (d *Disk) start(q *rt.QueryCtx, b BlockID, blocks int, bytes int64) rt.Time {
	if bytes <= 0 || blocks <= 0 {
		panic(fmt.Sprintf("iosim: bad read: %d blocks, %d bytes", blocks, bytes))
	}
	// Arrival: the atomic increment is the linearization point that fixes
	// this request's queue position, before any mutex is contended.
	ticket := d.tickets.Add(1) - 1
	d.mu.Lock()
	d.queued++
	if d.queued > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = d.queued
	}
	// Real runtime: wait for our turn; every admission broadcasts, and
	// exactly one waiter's ticket matches the new serving value. Sim
	// runtime: never waits (see the tickets field comment).
	for ticket != d.serving {
		d.admit.Wait()
	}

	if q != nil && q.Cancelled() {
		d.stats.Skipped++
		d.serving++
		d.admit.Broadcast()
		d.mu.Unlock()
		return d.r.Now()
	}

	start := d.r.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := rt.Duration(float64(bytes) / d.bandwidth * 1e9)
	if !d.haveLast || b != d.lastBlock+1 {
		dur += d.seekLatency
		d.stats.Seeks++
	}
	until := start + rt.Time(dur)
	d.busyUntil = until
	d.lastBlock = b + BlockID(blocks) - 1
	d.haveLast = true

	d.stats.Requests++
	d.stats.BytesRead += bytes
	d.stats.BusyTime += dur
	if d.OnRead != nil {
		d.OnRead(b, bytes)
	}
	d.serving++
	d.admit.Broadcast()
	d.mu.Unlock()
	return until
}

// depart retires one completed request from the queue accounting.
func (d *Disk) depart() {
	d.mu.Lock()
	d.queued--
	d.mu.Unlock()
}

// enqueue adds one request to the elevator's pending queue without
// blocking for service, spawning the dispatcher if none is running. The
// arrival ticket is still taken — it is the fairness tie-break for
// same-block requests — and queue-depth accounting matches the FIFO
// path: the request counts as queued from arrival until depart.
func (d *Disk) enqueue(q *rt.QueryCtx, b BlockID, blocks int, bytes int64) *ioReq {
	if bytes <= 0 || blocks <= 0 {
		panic(fmt.Sprintf("iosim: bad read: %d blocks, %d bytes", blocks, bytes))
	}
	req := &ioReq{
		ticket: d.tickets.Add(1) - 1,
		q:      q,
		block:  b,
		blocks: blocks,
		bytes:  bytes,
		prio:   q.Priority(),
	}
	d.mu.Lock()
	d.queued++
	if d.queued > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = d.queued
	}
	d.pending = append(d.pending, req)
	if !d.dispatching {
		d.dispatching = true
		d.r.Go("iosim-elevator", d.dispatch)
	}
	d.mu.Unlock()
	return req
}

// await blocks until the dispatcher has assigned the request a service
// slot and returns its completion time. The caller then sleeps until
// that time and departs — the split lets DeviceArray enqueue a batch's
// sub-reads on several devices before blocking on any of them.
func (d *Disk) await(req *ioReq) rt.Time {
	d.mu.Lock()
	for !req.done {
		w := d.assigned.Waiter()
		d.mu.Unlock()
		w.Wait()
		d.mu.Lock()
	}
	until := req.until
	d.mu.Unlock()
	return until
}

// dispatch is the elevator's per-device dispatcher: it sleeps until the
// device frees, picks the C-SCAN-best pending request at that instant —
// late-arriving requests that land ahead of the head join the current
// sweep — services it (bookkeeping only; the requester sleeps out the
// transfer itself), and repeats until the pending queue drains, then
// exits. Exiting matters in sim mode: a perpetual dispatcher would keep
// the engine alive (or deadlock it) after the workload completes.
func (d *Disk) dispatch() {
	d.mu.Lock()
	for {
		if len(d.pending) == 0 {
			d.dispatching = false
			d.mu.Unlock()
			return
		}
		now := d.r.Now()
		if d.busyUntil > now {
			until := d.busyUntil
			d.mu.Unlock()
			d.r.SleepUntil(until)
			d.mu.Lock()
			continue
		}
		i := d.pickNext()
		req := d.pending[i]
		d.pending = append(d.pending[:i], d.pending[i+1:]...)
		if req.q != nil && req.q.Cancelled() {
			d.stats.Skipped++
			req.until = now
			req.done = true
			d.assigned.Fire()
			continue
		}
		dur := rt.Duration(float64(req.bytes) / d.bandwidth * 1e9)
		// C-SCAN seek accounting: only the initial positioning and a
		// direction-breaking wrap (the picked block is behind the head)
		// pay the penalty; forward jumps ride the sweep.
		if !d.haveLast || req.block < d.lastBlock+1 {
			dur += d.seekLatency
			d.stats.Seeks++
		}
		until := now + rt.Time(dur)
		d.busyUntil = until
		d.lastBlock = req.block + BlockID(req.blocks) - 1
		d.haveLast = true
		d.stats.Requests++
		d.stats.BytesRead += req.bytes
		d.stats.BusyTime += dur
		if d.OnRead != nil {
			d.OnRead(req.block, req.bytes)
		}
		req.until = until
		req.done = true
		d.assigned.Fire()
	}
}

// pickNext returns the index of the C-SCAN-best pending request: lowest
// block at or ahead of the head, else (wrap) the lowest pending block;
// equal blocks order by priority (higher first), then arrival ticket.
// Caller holds d.mu; pending is non-empty.
func (d *Disk) pickNext() int {
	head := BlockID(0)
	if d.haveLast {
		head = d.lastBlock + 1
	}
	best := 0
	for i := 1; i < len(d.pending); i++ {
		r, b := d.pending[i], d.pending[best]
		rAhead, bAhead := r.block >= head, b.block >= head
		var better bool
		switch {
		case rAhead != bAhead:
			better = rAhead
		case r.block != b.block:
			better = r.block < b.block
		case r.prio != b.prio:
			better = r.prio > b.prio
		default:
			better = r.ticket < b.ticket
		}
		if better {
			best = i
		}
	}
	return best
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the device position memory is kept).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}
