// Package iosim simulates a disk subsystem in virtual time.
//
// The model is deliberately simple but captures the properties the paper's
// experiments depend on: a fixed sequential bandwidth, a per-request seek
// penalty when the access is not contiguous with the previous one, and
// FIFO queueing of concurrent requests (requests from many scans serialize
// on the device, so concurrent scans competing for the disk slow each
// other down and destroy sequential locality — the core problem statement
// of §1).
//
// The device is runtime-agnostic: on the sim runtime a read suspends the
// calling process in virtual time; on the real runtime the same bandwidth
// model is timed on the wall clock, so a read really blocks the calling
// goroutine for the modeled device time and concurrent readers really
// queue. The page payloads live in memory either way — the "disk" prices
// access, it does not store bytes.
package iosim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rt"
)

// BlockID identifies a physical disk block (a page's home location). IDs
// are allocated densely per device; two blocks are "sequential" when their
// IDs are consecutive.
type BlockID int64

// Stats aggregates device activity.
type Stats struct {
	BytesRead   int64 // total bytes transferred
	Requests    int64 // number of read requests
	Seeks       int64 // requests that were not sequential with the previous one
	BusyTime    rt.Duration
	MaxQueueLen int // high-water mark of queued requests
}

// Disk is a simulated block device.
type Disk struct {
	r rt.Runtime

	bandwidth   float64 // bytes per second of sequential transfer
	seekLatency rt.Duration

	// mu guards the device position, queue and counters. Uncontended in
	// sim mode (single running process); serializes request admission in
	// real mode, which is exactly the FIFO device queue being modeled.
	mu        sync.Mutex
	busyUntil rt.Time
	lastBlock BlockID
	haveLast  bool
	queued    int

	stats Stats

	// OnRead, if non-nil, observes every read (used by the trace recorder).
	// It is called with the device mutex held, so observers need no
	// synchronization of their own against concurrent reads.
	OnRead func(b BlockID, bytes int64)
}

// Config parameterizes a simulated disk.
type Config struct {
	// Bandwidth is the sequential transfer rate in bytes per second.
	Bandwidth float64
	// SeekLatency is added to any request that does not continue the
	// previous request's block run.
	SeekLatency rt.Duration
}

// DefaultSeekLatency approximates a short SSD-array reposition; the
// paper's testbed is an SSD RAID, so seeks are cheap but not free.
const DefaultSeekLatency = 100 * time.Microsecond

// New creates a disk attached to the runtime.
func New(r rt.Runtime, cfg Config) *Disk {
	if cfg.Bandwidth <= 0 {
		panic("iosim: bandwidth must be positive")
	}
	if cfg.SeekLatency < 0 {
		panic("iosim: negative seek latency")
	}
	return &Disk{r: r, bandwidth: cfg.Bandwidth, seekLatency: cfg.SeekLatency}
}

// Bandwidth reports the configured sequential bandwidth in bytes/second.
func (d *Disk) Bandwidth() float64 { return d.bandwidth }

// Read transfers a run of blocks starting at block b, totalling the given
// number of bytes, blocking the calling process for the simulated device
// time. Concurrent readers queue FIFO. blocks is the number of consecutive
// BlockIDs covered (used for sequentiality tracking).
func (d *Disk) Read(b BlockID, blocks int, bytes int64) {
	if bytes <= 0 || blocks <= 0 {
		panic(fmt.Sprintf("iosim: bad read: %d blocks, %d bytes", blocks, bytes))
	}
	d.mu.Lock()
	d.queued++
	if d.queued > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = d.queued
	}

	start := d.r.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := rt.Duration(float64(bytes) / d.bandwidth * 1e9)
	if !d.haveLast || b != d.lastBlock+1 {
		dur += d.seekLatency
		d.stats.Seeks++
	}
	until := start + rt.Time(dur)
	d.busyUntil = until
	d.lastBlock = b + BlockID(blocks) - 1
	d.haveLast = true

	d.stats.Requests++
	d.stats.BytesRead += bytes
	d.stats.BusyTime += dur
	if d.OnRead != nil {
		d.OnRead(b, bytes)
	}
	d.mu.Unlock()

	d.r.SleepUntil(until)

	d.mu.Lock()
	d.queued--
	d.mu.Unlock()
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the device position memory is kept).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}
