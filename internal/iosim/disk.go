// Package iosim simulates a disk subsystem in virtual time.
//
// The model is deliberately simple but captures the properties the paper's
// experiments depend on: a fixed sequential bandwidth, a per-request seek
// penalty when the access is not contiguous with the previous one, and
// FIFO queueing of concurrent requests (requests from many scans serialize
// on the device, so concurrent scans competing for the disk slow each
// other down and destroy sequential locality — the core problem statement
// of §1).
package iosim

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// BlockID identifies a physical disk block (a page's home location). IDs
// are allocated densely per device; two blocks are "sequential" when their
// IDs are consecutive.
type BlockID int64

// Stats aggregates device activity.
type Stats struct {
	BytesRead   int64 // total bytes transferred
	Requests    int64 // number of read requests
	Seeks       int64 // requests that were not sequential with the previous one
	BusyTime    sim.Duration
	MaxQueueLen int // high-water mark of queued requests
}

// Disk is a simulated block device.
type Disk struct {
	eng *sim.Engine

	bandwidth   float64 // bytes per second of sequential transfer
	seekLatency sim.Duration

	busyUntil sim.Time
	lastBlock BlockID
	haveLast  bool
	queued    int

	stats Stats

	// OnRead, if non-nil, observes every read (used by the trace recorder).
	OnRead func(b BlockID, bytes int64)
}

// Config parameterizes a simulated disk.
type Config struct {
	// Bandwidth is the sequential transfer rate in bytes per second.
	Bandwidth float64
	// SeekLatency is added to any request that does not continue the
	// previous request's block run.
	SeekLatency sim.Duration
}

// DefaultSeekLatency approximates a short SSD-array reposition; the
// paper's testbed is an SSD RAID, so seeks are cheap but not free.
const DefaultSeekLatency = 100 * time.Microsecond

// New creates a disk attached to the engine.
func New(eng *sim.Engine, cfg Config) *Disk {
	if cfg.Bandwidth <= 0 {
		panic("iosim: bandwidth must be positive")
	}
	if cfg.SeekLatency < 0 {
		panic("iosim: negative seek latency")
	}
	return &Disk{eng: eng, bandwidth: cfg.Bandwidth, seekLatency: cfg.SeekLatency}
}

// Bandwidth reports the configured sequential bandwidth in bytes/second.
func (d *Disk) Bandwidth() float64 { return d.bandwidth }

// Read transfers a run of blocks starting at block b, totalling the given
// number of bytes, blocking the calling process for the simulated device
// time. Concurrent readers queue FIFO. blocks is the number of consecutive
// BlockIDs covered (used for sequentiality tracking).
func (d *Disk) Read(b BlockID, blocks int, bytes int64) {
	if bytes <= 0 || blocks <= 0 {
		panic(fmt.Sprintf("iosim: bad read: %d blocks, %d bytes", blocks, bytes))
	}
	d.queued++
	if d.queued > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = d.queued
	}

	start := d.eng.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := sim.Duration(float64(bytes) / d.bandwidth * 1e9)
	if !d.haveLast || b != d.lastBlock+1 {
		dur += d.seekLatency
		d.stats.Seeks++
	}
	d.busyUntil = start + sim.Time(dur)
	d.lastBlock = b + BlockID(blocks) - 1
	d.haveLast = true

	d.stats.Requests++
	d.stats.BytesRead += bytes
	d.stats.BusyTime += dur
	if d.OnRead != nil {
		d.OnRead(b, bytes)
	}

	d.eng.SleepUntil(d.busyUntil)
	d.queued--
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (the device position memory is kept).
func (d *Disk) ResetStats() { d.stats = Stats{} }
