package iosim

import (
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

// TestSkipCancelledOwnerRead: a read whose owner is cancelled by its
// service turn is retired unserviced — no seek, no transfer time, no
// byte accounting — while reads of live owners proceed untouched.
func TestSkipCancelledOwnerRead(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e6) // 1 MB/s, 1 ms seek
	dead := rt.NewQueryCtx(rt.Sim(eng))
	dead.Cancel(rt.CauseClientCancel)
	live := rt.NewQueryCtx(rt.Sim(eng))
	var deadEnd, liveEnd sim.Time
	eng.Go("r", func() {
		d.ReadOwner(dead, 0, 1, 100_000) // would take 0.1 s + seek if serviced
		deadEnd = eng.Now()
		d.ReadOwner(live, 100, 1, 100_000)
		liveEnd = eng.Now()
	})
	eng.Run()
	if deadEnd != 0 {
		t.Fatalf("skipped read consumed %v of device time", deadEnd)
	}
	if want := sim.Time(100*time.Millisecond + time.Millisecond); liveEnd != want {
		t.Fatalf("live read ended at %v, want %v (skip must not shift device state)", liveEnd, want)
	}
	s := d.Stats()
	if s.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", s.Skipped)
	}
	if s.Requests != 1 || s.BytesRead != 100_000 || s.Seeks != 1 {
		t.Fatalf("skipped read leaked into service accounting: %+v", s)
	}
}

// TestQueuedReadSkippedWhenOwnerCancelsInQueue: the cancel lands while
// the request is waiting behind a long transfer; at its service turn the
// request is dropped rather than charged to the device.
func TestQueuedReadSkippedWhenOwnerCancelsInQueue(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e6)
	q := rt.NewQueryCtx(rt.Sim(eng))
	var end sim.Time
	eng.Go("long", func() {
		d.Read(0, 1, 500_000) // 0.5 s: the victim queues behind this
	})
	eng.Go("victim", func() {
		eng.Sleep(time.Millisecond)
		d.ReadOwner(q, 100, 1, 100_000)
		end = eng.Now()
	})
	eng.Go("canceller", func() {
		q.Cancel(rt.CauseDeadlineExceeded)
	})
	eng.Run()
	s := d.Stats()
	if s.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1: %+v", s.Skipped, s)
	}
	if s.BytesRead != 500_000 {
		t.Fatalf("victim's bytes were transferred anyway: %+v", s)
	}
	// The victim returns at its service turn without waiting out a
	// transfer of its own.
	if end >= sim.Time(500*time.Millisecond) {
		t.Fatalf("victim waited out a transfer: end = %v", end)
	}
}

// TestArraySkipsCancelledOwner: the striped-read path must thread the
// owner down to every device, and ArrayStats must sum the skips.
func TestArraySkipsCancelledOwner(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(rt.Sim(eng), ArrayConfig{
		Config:  Config{Bandwidth: 1e6, SeekLatency: time.Millisecond},
		Devices: 2,
	})
	dead := rt.NewQueryCtx(rt.Sim(eng))
	dead.Cancel(rt.CauseClientCancel)
	eng.Go("r", func() {
		// Spans covering both devices: every sub-read must be skipped.
		a.ReadSpansOwner(dead, []Span{{Block: 0, Blocks: 1, Bytes: 4096}, {Block: 1, Blocks: 1, Bytes: 4096}})
		a.ReadOwner(dead, 0, 2, 8192)
	})
	eng.Run()
	s := a.Stats()
	if s.BytesRead != 0 || s.BusyTime != 0 {
		t.Fatalf("cancelled owner's reads were serviced: %+v", s.Stats)
	}
	if s.Skipped == 0 {
		t.Fatalf("no skips recorded: %+v", s.Stats)
	}
	if eng.Now() != 0 {
		t.Fatalf("skipped striped reads advanced time to %v", eng.Now())
	}
}
