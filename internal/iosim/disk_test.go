package iosim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

func newTestDisk(eng *sim.Engine, bw float64) *Disk {
	return NewDisk(rt.Sim(eng), Config{Bandwidth: bw, SeekLatency: time.Millisecond})
}

func TestSequentialReadTime(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e6) // 1 MB/s
	var end sim.Time
	eng.Go("r", func() {
		d.Read(0, 1, 500_000) // 0.5 MB => 0.5 s + 1 ms seek
		end = eng.Now()
	})
	eng.Run()
	want := sim.Time(500*time.Millisecond + time.Millisecond)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestSequentialRunSkipsSeek(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e6)
	eng.Go("r", func() {
		d.Read(0, 4, 1000)
		d.Read(4, 1, 1000)  // continues the run: no seek
		d.Read(10, 1, 1000) // jump: seek
	})
	eng.Run()
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("seeks = %d, want 2 (first touch + jump)", got)
	}
}

func TestConcurrentReadersQueueFIFO(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e6)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		eng.Go("r", func() {
			d.Read(BlockID(i*100), 1, 100_000) // 0.1 s each + seek
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	if len(ends) != 3 {
		t.Fatalf("got %d ends", len(ends))
	}
	for i := 1; i < 3; i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("ends not increasing: %v", ends)
		}
	}
	// Third request finishes after ~0.303 s (serialized), not ~0.101 s.
	if ends[2] < sim.Time(300*time.Millisecond) {
		t.Fatalf("requests did not serialize: third end = %v", ends[2])
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e9)
	eng.Go("r", func() {
		for i := 0; i < 10; i++ {
			d.Read(BlockID(i*2), 1, 4096)
		}
	})
	eng.Run()
	s := d.Stats()
	if s.Requests != 10 || s.BytesRead != 40960 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Seeks != 10 { // every read jumps by 2 blocks
		t.Fatalf("seeks = %d, want 10", s.Seeks)
	}
	d.ResetStats()
	if d.Stats().Requests != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestOnReadHook(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e9)
	var seen []BlockID
	d.OnRead = func(b BlockID, _ int64) { seen = append(seen, b) }
	eng.Go("r", func() {
		d.Read(5, 1, 100)
		d.Read(9, 1, 100)
	})
	eng.Run()
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 9 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestBadReadPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDisk(eng, 1e9)
	panicked := false
	eng.Go("r", func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.Read(0, 0, 0)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

// Property: total virtual time for N serialized reads is at least the sum
// of their transfer times (device can't transfer faster than bandwidth).
func TestPropertyBandwidthIsCeiling(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 32 {
			return true
		}
		eng := sim.NewEngine()
		d := NewDisk(rt.Sim(eng), Config{Bandwidth: 1e6, SeekLatency: 0})
		var total int64
		var end sim.Time
		eng.Go("r", func() {
			for i, s := range sizes {
				n := int64(s) + 1
				total += n
				d.Read(BlockID(i*10), 1, n)
			}
			end = eng.Now()
		})
		eng.Run()
		// Each read's duration truncates to whole nanoseconds, so allow
		// one nanosecond of slack per request.
		minTime := sim.Time(float64(total)/1e6*1e9) - sim.Time(len(sizes))
		return end >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
