package iosim

import (
	"testing"

	"repro/internal/rt"
	"repro/internal/sim"
)

func newTestArray(eng *sim.Engine, devices, chunk int, bw float64) *DeviceArray {
	return NewArray(rt.Sim(eng), ArrayConfig{
		Config:      Config{Bandwidth: bw, SeekLatency: 0},
		Devices:     devices,
		StripeChunk: chunk,
	})
}

func TestStripingMapsChunksRoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 3, 4, 1e6)
	// Blocks 0..3 -> dev 0, 4..7 -> dev 1, 8..11 -> dev 2, 12..15 -> dev 0.
	for _, tc := range []struct {
		b    BlockID
		dev  int
		loc  BlockID
		edge bool
	}{
		{0, 0, 0, true}, {3, 0, 3, false}, {4, 1, 0, true}, {7, 1, 3, false},
		{8, 2, 0, true}, {11, 2, 3, false}, {12, 0, 4, true}, {15, 0, 7, false},
		{16, 1, 4, true}, {23, 2, 7, false},
	} {
		if got := a.DeviceFor(tc.b); got != tc.dev {
			t.Errorf("DeviceFor(%d) = %d, want %d", tc.b, got, tc.dev)
		}
		if got := a.localBlock(tc.b); got != tc.loc {
			t.Errorf("localBlock(%d) = %d, want %d", tc.b, got, tc.loc)
		}
		if got := a.StripeBoundary(tc.b); got != tc.edge {
			t.Errorf("StripeBoundary(%d) = %v, want %v", tc.b, got, tc.edge)
		}
	}
}

func TestSingleDeviceArrayNeverSplits(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 1, 4, 1e6)
	if a.StripeBoundary(0) || a.StripeBoundary(4) {
		t.Fatal("single-device array reported a stripe boundary")
	}
	eng.Go("r", func() {
		a.Read(0, 64, 64_000) // crosses 16 chunk boundaries, must stay 1 request
	})
	eng.Run()
	s := a.Stats()
	if s.Requests != 1 || s.BytesRead != 64_000 || s.Seeks != 1 {
		t.Fatalf("stats = %+v, want one unsplit request", s.Stats)
	}
}

// A 1-device array must behave exactly like a bare Disk: same completion
// times, same counters, for the same request sequence.
func TestSingleDeviceArrayMatchesDisk(t *testing.T) {
	reqs := []struct {
		b      BlockID
		blocks int
		bytes  int64
	}{{0, 4, 4000}, {4, 4, 4000}, {100, 2, 900}, {6, 1, 123}}

	run := func(read func(BlockID, int, int64), eng *sim.Engine) []sim.Time {
		var ends []sim.Time
		eng.Go("r", func() {
			for _, q := range reqs {
				read(q.b, q.blocks, q.bytes)
				ends = append(ends, eng.Now())
			}
		})
		eng.Run()
		return ends
	}
	engD := sim.NewEngine()
	d := NewDisk(rt.Sim(engD), Config{Bandwidth: 1e6, SeekLatency: 5000})
	endsD := run(d.Read, engD)
	engA := sim.NewEngine()
	a := NewArray(rt.Sim(engA), ArrayConfig{Config: Config{Bandwidth: 1e6, SeekLatency: 5000}, Devices: 1})
	endsA := run(a.Read, engA)

	for i := range endsD {
		if endsD[i] != endsA[i] {
			t.Fatalf("completion %d: disk %v, array %v", i, endsD[i], endsA[i])
		}
	}
	if d.Stats() != a.Stats().PerDevice[0] {
		t.Fatalf("stats diverged: disk %+v, array %+v", d.Stats(), a.Stats().PerDevice[0])
	}
}

// A striped sequential read must complete ~N times faster than on one
// device (each spindle keeps the full per-device bandwidth), and must
// cost at most one seek per device thanks to the device-local block
// mapping.
func TestStripedReadScalesWithDevices(t *testing.T) {
	read := func(devices int) (sim.Time, ArrayStats) {
		eng := sim.NewEngine()
		a := newTestArray(eng, devices, 4, 1e6)
		var end sim.Time
		eng.Go("r", func() {
			a.Read(0, 64, 64_000)
			end = eng.Now()
		})
		eng.Run()
		return end, a.Stats()
	}
	t1, _ := read(1)
	t4, s4 := read(4)
	if t4*3 >= t1 {
		t.Fatalf("4 devices not ~4x faster: t1=%v t4=%v", t1, t4)
	}
	if s4.BytesRead != 64_000 {
		t.Fatalf("aggregate bytes = %d", s4.BytesRead)
	}
	if s4.Seeks != 4 {
		t.Fatalf("seeks = %d, want one first-touch seek per device", s4.Seeks)
	}
	// 64 blocks over 4 devices at chunk 4 => 16 blocks = 16000 bytes each.
	if s4.MaxDeviceBytes != 16_000 || s4.MinDeviceBytes != 16_000 {
		t.Fatalf("skew = max %d / min %d, want balanced 16000", s4.MaxDeviceBytes, s4.MinDeviceBytes)
	}
}

// Reads landing on different spindles must overlap in virtual time; reads
// on the same spindle must still serialize FIFO.
func TestIndependentDevicesProceedConcurrently(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 2, 4, 1e6)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("r", func() {
			a.Read(BlockID(i*4), 4, 100_000) // 0.1s each, chunk i -> device i
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	want := sim.Time(100_000_000) // 0.1 s: fully parallel
	if ends[0] != want || ends[1] != want {
		t.Fatalf("ends = %v, want both %v (parallel devices)", ends, want)
	}

	// Same two reads on a 1-device array serialize.
	eng2 := sim.NewEngine()
	a2 := newTestArray(eng2, 1, 4, 1e6)
	var last sim.Time
	for i := 0; i < 2; i++ {
		i := i
		eng2.Go("r", func() {
			a2.Read(BlockID(i*4), 4, 100_000)
			if e := eng2.Now(); e > last {
				last = e
			}
		})
	}
	eng2.Run()
	if last != sim.Time(200_000_000) {
		t.Fatalf("single device last end = %v, want 0.2s (serialized)", last)
	}
}

// ReadSpans must admit all sub-reads up front: a batch of spans owned by
// different devices completes in the time of the slowest device, not the
// sum.
func TestReadSpansOverlapsAcrossDevices(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 4, 4, 1e6)
	var end sim.Time
	eng.Go("r", func() {
		a.ReadSpans([]Span{
			{Block: 0, Blocks: 4, Bytes: 100_000},  // dev 0
			{Block: 4, Blocks: 4, Bytes: 100_000},  // dev 1
			{Block: 8, Blocks: 4, Bytes: 100_000},  // dev 2
			{Block: 12, Blocks: 4, Bytes: 100_000}, // dev 3
		})
		end = eng.Now()
	})
	eng.Run()
	if want := sim.Time(100_000_000); end != want {
		t.Fatalf("batch end = %v, want %v (all devices in parallel)", end, want)
	}
}

// A span crossing stripe boundaries is priced pro-rata by block count,
// conserving the total byte volume.
func TestReadSpansProRataConservesBytes(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 3, 4, 1e6)
	eng.Go("r", func() {
		a.ReadSpans([]Span{{Block: 2, Blocks: 17, Bytes: 9_999}}) // ragged on both ends
	})
	eng.Run()
	s := a.Stats()
	if s.BytesRead != 9_999 {
		t.Fatalf("aggregate bytes = %d, want 9999", s.BytesRead)
	}
	var blocks int64
	for _, d := range s.PerDevice {
		if d.BytesRead <= 0 && d.Requests > 0 {
			t.Fatalf("device with requests but no bytes: %+v", s.PerDevice)
		}
		blocks += d.Requests
	}
	// Blocks 2..18 at chunk 4 touch chunks 0..4 => 5 sub-reads.
	if s.Requests != 5 {
		t.Fatalf("requests = %d, want 5 chunk segments", s.Requests)
	}
}

// Ticketed admission: requests are serviced strictly in ticket order, so
// the device queue is FIFO by arrival registration even when the
// bookkeeping of a later ticket would be ready first. The sequence is
// driven through start/depart directly to pin the order without racing.
func TestTicketedAdmissionServesInTicketOrder(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(rt.Sim(eng), Config{Bandwidth: 1e6, SeekLatency: 0})
	var order []BlockID
	d.OnRead = func(b BlockID, _ int64) { order = append(order, b) }
	eng.Go("r", func() {
		for i := 0; i < 5; i++ {
			d.Read(BlockID(i*10), 1, 1000)
		}
	})
	eng.Run()
	for i, b := range order {
		if b != BlockID(i*10) {
			t.Fatalf("service order %v, want ticket order", order)
		}
	}
	if d.Stats().MaxQueueLen != 1 {
		t.Fatalf("MaxQueueLen = %d, want 1 for sequential requests", d.Stats().MaxQueueLen)
	}
}

// A degenerate span with fewer bytes than blocks (legal on a bare Disk)
// must not panic on a multi-device array: it is priced whole on the
// first block's owning device, conserving its byte count.
func TestReadSpansDegenerateTinySpan(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 3, 4, 1e6)
	eng.Go("r", func() {
		a.ReadSpans([]Span{{Block: 2, Blocks: 8, Bytes: 3}}) // crosses 2 chunk boundaries
	})
	eng.Run()
	s := a.Stats()
	if s.BytesRead != 3 || s.Requests != 1 {
		t.Fatalf("stats = %+v, want one 3-byte request", s.Stats)
	}
	// Ragged-but-sufficient bytes still split per chunk and conserve.
	eng2 := sim.NewEngine()
	a2 := newTestArray(eng2, 3, 4, 1e6)
	eng2.Go("r", func() {
		a2.ReadSpans([]Span{{Block: 14, Blocks: 3, Bytes: 3}}) // 1 byte per block
	})
	eng2.Run()
	if s2 := a2.Stats(); s2.BytesRead != 3 || s2.Requests != 2 {
		t.Fatalf("stats = %+v, want 3 bytes over 2 chunk segments", s2.Stats)
	}
}
