package iosim

import "repro/internal/rt"

// DefaultStripeChunk is the striping granularity in blocks (pages) when a
// multi-device array is configured without an explicit chunk: 16 blocks of
// 16 KiB pages is a 256 KiB stripe chunk, a typical RAID-0 setting — large
// enough that short reads stay on one spindle, small enough that a scan's
// read-ahead batch spans several.
const DefaultStripeChunk = 16

// ArrayConfig parameterizes a striped device array.
type ArrayConfig struct {
	// Config is the per-device model: each spindle keeps the full
	// bandwidth and seek-penalty model, so aggregate sequential bandwidth
	// scales with Devices.
	Config
	// Devices is the number of independent spindles (<= 0 means 1; a
	// 1-device array is bit-identical to a bare Disk).
	Devices int
	// StripeChunk is the striping granularity in blocks (<= 0 means
	// DefaultStripeChunk). Block b lives on device (b/StripeChunk) mod
	// Devices.
	StripeChunk int
}

// Span is one block-contiguous read request: a run of consecutive logical
// blocks and its exact byte volume.
type Span struct {
	Block  BlockID
	Blocks int
	Bytes  int64
}

// DeviceArray stripes the logical block space over N independent Disks,
// RAID-0 style: logical block b maps to device (b/chunk) mod N at
// device-local block (b/(chunk*N))*chunk + b mod chunk, so a sequential
// logical run is a sequential local run on every spindle it touches and
// costs at most one seek per device. Requests to different devices
// proceed concurrently in both runtimes; requests to the same device
// queue FIFO behind each other exactly as on a single Disk.
type DeviceArray struct {
	r       rt.Runtime
	devices []*Disk
	chunk   int64
}

// New creates a single-device array — the historical one-disk model, used
// by every figure experiment and bit-identical to the pre-array code.
func New(r rt.Runtime, cfg Config) *DeviceArray {
	return NewArray(r, ArrayConfig{Config: cfg, Devices: 1})
}

// NewArray creates a striped array of identical devices.
func NewArray(r rt.Runtime, cfg ArrayConfig) *DeviceArray {
	n := cfg.Devices
	if n <= 0 {
		n = 1
	}
	chunk := cfg.StripeChunk
	if chunk <= 0 {
		chunk = DefaultStripeChunk
	}
	a := &DeviceArray{r: r, devices: make([]*Disk, n), chunk: int64(chunk)}
	for i := range a.devices {
		a.devices[i] = NewDisk(r, cfg.Config)
	}
	return a
}

// Devices reports the number of spindles.
func (a *DeviceArray) Devices() int { return len(a.devices) }

// Device returns the i-th spindle (tests and trace hooks).
func (a *DeviceArray) Device(i int) *Disk { return a.devices[i] }

// StripeChunk reports the striping granularity in blocks.
func (a *DeviceArray) StripeChunk() int { return int(a.chunk) }

// Bandwidth reports the aggregate sequential bandwidth in bytes/second:
// per-device bandwidth times the device count.
func (a *DeviceArray) Bandwidth() float64 {
	return a.devices[0].Bandwidth() * float64(len(a.devices))
}

// DeviceFor returns the index of the spindle that owns logical block b.
func (a *DeviceArray) DeviceFor(b BlockID) int {
	if len(a.devices) == 1 {
		return 0
	}
	return int((int64(b) / a.chunk) % int64(len(a.devices)))
}

// localBlock maps a logical block to its device-local address, keeping
// each spindle's share of a striped run contiguous in local block space.
func (a *DeviceArray) localBlock(b BlockID) BlockID {
	if len(a.devices) == 1 {
		return b
	}
	stripe := int64(b) / a.chunk
	row := stripe / int64(len(a.devices))
	return BlockID(row*a.chunk + int64(b)%a.chunk)
}

// StripeBoundary reports whether logical block b begins a new stripe
// chunk — the points where callers batching contiguous reads (the buffer
// pool's read-ahead) must split a run so each piece carries its exact
// byte volume to its owning device. Always false on a single-device
// array, whose runs are never split.
func (a *DeviceArray) StripeBoundary(b BlockID) bool {
	return len(a.devices) > 1 && int64(b)%a.chunk == 0
}

// Read transfers a run of logical blocks, blocking the caller for the
// modeled time. On a multi-device array the run is split at stripe-chunk
// boundaries and the pieces proceed concurrently on their owning devices;
// the call returns when the last piece completes.
func (a *DeviceArray) Read(b BlockID, blocks int, bytes int64) {
	a.ReadOwner(nil, b, blocks, bytes)
}

// ReadOwner is Read with a lifecycle owner tag (see Disk.ReadOwner): a
// cancelled owner's queued sub-reads are skipped at their service turn on
// every spindle instead of transferring bytes nobody will consume.
func (a *DeviceArray) ReadOwner(q *rt.QueryCtx, b BlockID, blocks int, bytes int64) {
	if len(a.devices) == 1 {
		a.devices[0].ReadOwner(q, b, blocks, bytes)
		return
	}
	a.ReadSpansOwner(q, []Span{{Block: b, Blocks: blocks, Bytes: bytes}})
}

// ReadSpans issues a batch of block runs as one request: every span is
// split at stripe-chunk boundaries into per-device sub-reads, the
// sub-reads are admitted to their owning devices' FIFO queues in span
// order, and the caller blocks until the last one completes. Sub-reads on
// different spindles overlap — this is where striping buys I/O
// parallelism — while sub-reads on the same spindle queue behind each
// other as usual.
//
// On a single-device array the spans degrade to plain sequential Reads in
// order, bit-identical to the historical single-disk model.
//
// Queue accounting is batch-granular: every sub-read counts as queued on
// its device from admission until the WHOLE batch completes (one caller,
// one wake-up), so a spindle that finishes its share early still shows
// the request outstanding until the slowest spindle is done. Per-device
// MaxQueueLen therefore reports batch-level queue pressure, slightly
// above the pure per-transfer depth.
func (a *DeviceArray) ReadSpans(spans []Span) {
	a.ReadSpansOwner(nil, spans)
}

// ReadSpansOwner is ReadSpans with a lifecycle owner tag: each sub-read
// checks the owner at its own service turn, so a batch whose owner is
// cancelled while queued is skipped device by device (sub-reads already
// in service on other spindles complete normally).
func (a *DeviceArray) ReadSpansOwner(q *rt.QueryCtx, spans []Span) {
	if len(a.devices) == 1 {
		for _, s := range spans {
			a.devices[0].ReadOwner(q, s.Block, s.Blocks, s.Bytes)
		}
		return
	}
	type subRead struct {
		dev  int
		span Span
	}
	var subs []subRead
	for _, s := range spans {
		b := s.Block
		remBlocks := s.Blocks
		remBytes := s.Bytes
		if remBlocks <= 0 || remBytes <= 0 {
			panic("iosim: bad span")
		}
		for remBlocks > 0 {
			if remBytes < int64(remBlocks) {
				// Degenerate span with fewer bytes than blocks: pro-rata
				// pricing cannot reserve a positive byte count per chunk
				// segment, so price the whole remainder on the first
				// block's owning device (a single-device array accepts
				// such spans unsplit too).
				subs = append(subs, subRead{dev: a.DeviceFor(b), span: Span{Block: a.localBlock(b), Blocks: remBlocks, Bytes: remBytes}})
				break
			}
			n := int(a.chunk - int64(b)%a.chunk)
			if n > remBlocks {
				n = remBlocks
			}
			// Callers that split at stripe boundaries themselves pass
			// one-chunk spans with exact bytes; a span that does cross
			// boundaries (the ABM's chunk stretches) is priced pro-rata
			// by block count, conserving the total. With remBytes >=
			// remBlocks (guarded above) the quotient is always in
			// [1, remBytes-(remBlocks-n)], so every sub-read keeps a
			// positive byte count and so does every later one.
			by := remBytes
			if n < remBlocks {
				by = remBytes * int64(n) / int64(remBlocks)
			}
			subs = append(subs, subRead{dev: a.DeviceFor(b), span: Span{Block: a.localBlock(b), Blocks: n, Bytes: by}})
			b += BlockID(n)
			remBlocks -= n
			remBytes -= by
		}
	}
	// Admit every sub-read (device bookkeeping only, no blocking beyond
	// FIFO admission), then sleep once until the last completes.
	var until rt.Time
	for _, s := range subs {
		u := a.devices[s.dev].start(q, s.span.Block, s.span.Blocks, s.span.Bytes)
		if u > until {
			until = u
		}
	}
	a.r.SleepUntil(until)
	for _, s := range subs {
		a.devices[s.dev].depart()
	}
}

// ArrayStats aggregates the spindle counters of a DeviceArray.
type ArrayStats struct {
	// Stats sums BytesRead, Requests, Seeks and BusyTime over all devices;
	// MaxQueueLen is the maximum over devices (queue depths on different
	// spindles are concurrent, not additive).
	Stats
	// PerDevice holds each spindle's own counters, index = device.
	PerDevice []Stats
	// MaxDeviceBytes and MinDeviceBytes expose stripe skew: the bytes
	// transferred by the busiest and the least-busy device. A large gap
	// means the stripe chunk or the workload's block layout is keeping
	// some spindles idle.
	MaxDeviceBytes int64
	MinDeviceBytes int64
}

// Stats returns a snapshot of the aggregate and per-device counters.
func (a *DeviceArray) Stats() ArrayStats {
	out := ArrayStats{PerDevice: make([]Stats, len(a.devices))}
	for i, d := range a.devices {
		s := d.Stats()
		out.PerDevice[i] = s
		out.BytesRead += s.BytesRead
		out.Requests += s.Requests
		out.Seeks += s.Seeks
		out.Skipped += s.Skipped
		out.BusyTime += s.BusyTime
		if s.MaxQueueLen > out.MaxQueueLen {
			out.MaxQueueLen = s.MaxQueueLen
		}
		if i == 0 || s.BytesRead > out.MaxDeviceBytes {
			out.MaxDeviceBytes = s.BytesRead
		}
		if i == 0 || s.BytesRead < out.MinDeviceBytes {
			out.MinDeviceBytes = s.BytesRead
		}
	}
	return out
}

// ResetStats zeroes every spindle's counters (device positions are kept).
func (a *DeviceArray) ResetStats() {
	for _, d := range a.devices {
		d.ResetStats()
	}
}
