package iosim

import (
	"fmt"
	"sort"

	"repro/internal/rt"
)

// DefaultStripeChunk is the striping granularity in blocks (pages) when a
// multi-device array is configured without an explicit chunk: 16 blocks of
// 16 KiB pages is a 256 KiB stripe chunk, a typical RAID-0 setting — large
// enough that short reads stay on one spindle, small enough that a scan's
// read-ahead batch spans several.
const DefaultStripeChunk = 16

// ArrayConfig parameterizes a striped device array.
type ArrayConfig struct {
	// Config is the per-device model: each spindle keeps the full
	// bandwidth and seek-penalty model, so aggregate sequential bandwidth
	// scales with Devices. Config.Scheduler applies array-wide — every
	// spindle runs the same queue discipline.
	Config
	// Devices is the number of independent spindles (<= 0 means 1; a
	// 1-device array is bit-identical to a bare Disk).
	Devices int
	// StripeChunk is the striping granularity in blocks (<= 0 means
	// DefaultStripeChunk). Block b lives on device (b/StripeChunk) mod
	// Devices.
	StripeChunk int
	// DeviceConfigs optionally overrides the device model per spindle
	// (index = device), making the array heterogeneous — e.g. an SSD-like
	// fast tier with zero SeekLatency and a multiple of the base
	// bandwidth. An entry with Bandwidth > 0 replaces the base Config for
	// that device verbatim (its Scheduler field is ignored; the array
	// -wide discipline applies); other entries, and devices beyond the
	// slice, keep the base Config.
	DeviceConfigs []Config
	// ChunkPlacement optionally overrides the round-robin striping: entry
	// c is the device owning stripe chunk c (blocks [c*StripeChunk,
	// (c+1)*StripeChunk)). Chunks beyond the slice fall back to round
	// -robin. Temperature-based tiering builds this map from observed
	// access heat (see TemperaturePlacement) so hot chunks land on the
	// fast devices.
	ChunkPlacement []int
}

// Span is one block-contiguous read request: a run of consecutive logical
// blocks and its exact byte volume.
type Span struct {
	Block  BlockID
	Blocks int
	Bytes  int64
}

// DeviceArray stripes the logical block space over N independent Disks,
// RAID-0 style: logical block b maps to device (b/chunk) mod N at
// device-local block (b/(chunk*N))*chunk + b mod chunk, so a sequential
// logical run is a sequential local run on every spindle it touches and
// costs at most one seek per device. Requests to different devices
// proceed concurrently in both runtimes; requests to the same device
// queue FIFO behind each other exactly as on a single Disk.
type DeviceArray struct {
	r       rt.Runtime
	devices []*Disk
	chunk   int64
	hetero  bool // any DeviceConfigs override applied

	// Placement state (nil placement = pure round-robin striping).
	placement []int
	localSlot []int64 // per placed chunk: its slot on its owning device
	placedOn  []int64 // per device: number of placed chunks it owns
}

// New creates a single-device array — the historical one-disk model, used
// by every figure experiment and bit-identical to the pre-array code.
func New(r rt.Runtime, cfg Config) *DeviceArray {
	return NewArray(r, ArrayConfig{Config: cfg, Devices: 1})
}

// NewArray creates a striped array of devices; identical spindles unless
// DeviceConfigs overrides some of them.
func NewArray(r rt.Runtime, cfg ArrayConfig) *DeviceArray {
	if cfg.Devices < 0 {
		panic(fmt.Sprintf("iosim: negative device count %d", cfg.Devices))
	}
	n := cfg.Devices
	if n <= 0 {
		n = 1
	}
	chunk := cfg.StripeChunk
	if chunk <= 0 {
		chunk = DefaultStripeChunk
	}
	a := &DeviceArray{r: r, devices: make([]*Disk, n), chunk: int64(chunk)}
	for i := range a.devices {
		dc := cfg.Config
		if i < len(cfg.DeviceConfigs) && cfg.DeviceConfigs[i].Bandwidth > 0 {
			dc = cfg.DeviceConfigs[i]
			dc.Scheduler = cfg.Config.Scheduler
			a.hetero = true
		}
		a.devices[i] = NewDisk(r, dc)
	}
	if len(cfg.ChunkPlacement) > 0 {
		a.placement = append([]int(nil), cfg.ChunkPlacement...)
		a.localSlot = make([]int64, len(a.placement))
		a.placedOn = make([]int64, n)
		for c, dev := range a.placement {
			if dev < 0 || dev >= n {
				panic(fmt.Sprintf("iosim: chunk %d placed on device %d of %d", c, dev, n))
			}
			// A chunk's device-local slot is the number of earlier chunks
			// on the same device, so each spindle's chunks stay dense and
			// chunk-index-ordered in its local block space.
			a.localSlot[c] = a.placedOn[dev]
			a.placedOn[dev]++
		}
	}
	return a
}

// Devices reports the number of spindles.
func (a *DeviceArray) Devices() int { return len(a.devices) }

// Device returns the i-th spindle (tests and trace hooks).
func (a *DeviceArray) Device(i int) *Disk { return a.devices[i] }

// StripeChunk reports the striping granularity in blocks.
func (a *DeviceArray) StripeChunk() int { return int(a.chunk) }

// Bandwidth reports the aggregate sequential bandwidth in bytes/second.
// Homogeneous arrays multiply (the historical, bit-pinned formula);
// heterogeneous arrays sum the per-device rates.
func (a *DeviceArray) Bandwidth() float64 {
	if !a.hetero {
		return a.devices[0].Bandwidth() * float64(len(a.devices))
	}
	var sum float64
	for _, d := range a.devices {
		sum += d.Bandwidth()
	}
	return sum
}

// DeviceFor returns the index of the spindle that owns logical block b.
func (a *DeviceArray) DeviceFor(b BlockID) int {
	if len(a.devices) == 1 {
		return 0
	}
	c := int64(b) / a.chunk
	if c < int64(len(a.placement)) {
		return a.placement[c]
	}
	return int(c % int64(len(a.devices)))
}

// localBlock maps a logical block to its device-local address, keeping
// each spindle's share of a striped run contiguous in local block space.
// Placed chunks occupy dense chunk-index-ordered slots on their owning
// device (see NewArray); round-robin chunks beyond the placement map
// continue after them.
func (a *DeviceArray) localBlock(b BlockID) BlockID {
	if len(a.devices) == 1 {
		return b
	}
	c := int64(b) / a.chunk
	off := int64(b) % a.chunk
	if len(a.placement) == 0 {
		row := c / int64(len(a.devices))
		return BlockID(row*a.chunk + off)
	}
	var slot int64
	if c < int64(len(a.placement)) {
		slot = a.localSlot[c]
	} else {
		n := int64(len(a.devices))
		dev := c % n
		slot = a.placedOn[dev] + countCongruent(int64(len(a.placement)), c, dev, n)
	}
	return BlockID(slot*a.chunk + off)
}

// countCongruent counts integers j in [lo, hi) with j mod n == r
// (0 <= r < n), used to slot round-robin chunks past the placement map.
func countCongruent(lo, hi, r, n int64) int64 {
	f := func(x int64) int64 {
		if x <= r {
			return 0
		}
		return (x - r + n - 1) / n
	}
	return f(hi) - f(lo)
}

// StripeBoundary reports whether logical block b begins a new stripe
// chunk — the points where callers batching contiguous reads (the buffer
// pool's read-ahead) must split a run so each piece carries its exact
// byte volume to its owning device. Always false on a single-device
// array, whose runs are never split.
func (a *DeviceArray) StripeBoundary(b BlockID) bool {
	return len(a.devices) > 1 && int64(b)%a.chunk == 0
}

// Read transfers a run of logical blocks, blocking the caller for the
// modeled time. On a multi-device array the run is split at stripe-chunk
// boundaries and the pieces proceed concurrently on their owning devices;
// the call returns when the last piece completes.
func (a *DeviceArray) Read(b BlockID, blocks int, bytes int64) {
	a.ReadOwner(nil, b, blocks, bytes)
}

// ReadOwner is Read with a lifecycle owner tag (see Disk.ReadOwner): a
// cancelled owner's queued sub-reads are skipped at their service turn on
// every spindle instead of transferring bytes nobody will consume.
func (a *DeviceArray) ReadOwner(q *rt.QueryCtx, b BlockID, blocks int, bytes int64) {
	if len(a.devices) == 1 {
		a.devices[0].ReadOwner(q, b, blocks, bytes)
		return
	}
	a.ReadSpansOwner(q, []Span{{Block: b, Blocks: blocks, Bytes: bytes}})
}

// ReadSpans issues a batch of block runs as one request: every span is
// split at stripe-chunk boundaries into per-device sub-reads, the
// sub-reads are admitted to their owning devices' FIFO queues in span
// order, and the caller blocks until the last one completes. Sub-reads on
// different spindles overlap — this is where striping buys I/O
// parallelism — while sub-reads on the same spindle queue behind each
// other as usual.
//
// On a single-device array the spans degrade to plain sequential Reads in
// order, bit-identical to the historical single-disk model.
//
// Queue accounting is batch-granular: every sub-read counts as queued on
// its device from admission until the WHOLE batch completes (one caller,
// one wake-up), so a spindle that finishes its share early still shows
// the request outstanding until the slowest spindle is done. Per-device
// MaxQueueLen therefore reports batch-level queue pressure, slightly
// above the pure per-transfer depth.
func (a *DeviceArray) ReadSpans(spans []Span) {
	a.ReadSpansOwner(nil, spans)
}

// ReadSpansOwner is ReadSpans with a lifecycle owner tag: each sub-read
// checks the owner at its own service turn, so a batch whose owner is
// cancelled while queued is skipped device by device (sub-reads already
// in service on other spindles complete normally).
func (a *DeviceArray) ReadSpansOwner(q *rt.QueryCtx, spans []Span) {
	if len(a.devices) == 1 {
		if a.devices[0].elevator() {
			// One pending request per span lets the elevator sweep-order
			// the whole batch against competing scans' requests.
			subs := make([]subRead, 0, len(spans))
			for _, s := range spans {
				if s.Blocks <= 0 || s.Bytes <= 0 {
					panic("iosim: bad span")
				}
				subs = append(subs, subRead{dev: 0, span: s})
			}
			a.readSubsElevator(q, subs)
			return
		}
		for _, s := range spans {
			a.devices[0].ReadOwner(q, s.Block, s.Blocks, s.Bytes)
		}
		return
	}
	var subs []subRead
	for _, s := range spans {
		b := s.Block
		remBlocks := s.Blocks
		remBytes := s.Bytes
		if remBlocks <= 0 || remBytes <= 0 {
			panic("iosim: bad span")
		}
		for remBlocks > 0 {
			if remBytes < int64(remBlocks) {
				// Degenerate span with fewer bytes than blocks: pro-rata
				// pricing cannot reserve a positive byte count per chunk
				// segment, so price the whole remainder on the first
				// block's owning device (a single-device array accepts
				// such spans unsplit too).
				subs = append(subs, subRead{dev: a.DeviceFor(b), span: Span{Block: a.localBlock(b), Blocks: remBlocks, Bytes: remBytes}})
				break
			}
			n := int(a.chunk - int64(b)%a.chunk)
			if n > remBlocks {
				n = remBlocks
			}
			// Callers that split at stripe boundaries themselves pass
			// one-chunk spans with exact bytes; a span that does cross
			// boundaries (the ABM's chunk stretches) is priced pro-rata
			// by block count, conserving the total. With remBytes >=
			// remBlocks (guarded above) the quotient is always in
			// [1, remBytes-(remBlocks-n)], so every sub-read keeps a
			// positive byte count and so does every later one.
			by := remBytes
			if n < remBlocks {
				by = remBytes * int64(n) / int64(remBlocks)
			}
			subs = append(subs, subRead{dev: a.DeviceFor(b), span: Span{Block: a.localBlock(b), Blocks: n, Bytes: by}})
			b += BlockID(n)
			remBlocks -= n
			remBytes -= by
		}
	}
	if a.devices[0].elevator() {
		a.readSubsElevator(q, subs)
		return
	}
	// Admit every sub-read (device bookkeeping only, no blocking beyond
	// FIFO admission), then sleep once until the last completes.
	var until rt.Time
	for _, s := range subs {
		u := a.devices[s.dev].start(q, s.span.Block, s.span.Blocks, s.span.Bytes)
		if u > until {
			until = u
		}
	}
	a.r.SleepUntil(until)
	for _, s := range subs {
		a.devices[s.dev].depart()
	}
}

// subRead is one per-device piece of a spans batch.
type subRead struct {
	dev  int
	span Span
}

// readSubsElevator runs a sub-read batch on elevator-scheduled devices:
// every piece enqueues first — so each spindle's dispatcher sees its full
// share of the batch and other spindles are never idled by a busy one —
// then the caller awaits every assignment and sleeps once until the last
// completion. Assignment never waits on departure, so two pieces of one
// batch on the same device cannot deadlock: the dispatcher assigns the
// second the moment the first's transfer window ends.
func (a *DeviceArray) readSubsElevator(q *rt.QueryCtx, subs []subRead) {
	reqs := make([]*ioReq, len(subs))
	for i, s := range subs {
		reqs[i] = a.devices[s.dev].enqueue(q, s.span.Block, s.span.Blocks, s.span.Bytes)
	}
	var until rt.Time
	for i, s := range subs {
		if u := a.devices[s.dev].await(reqs[i]); u > until {
			until = u
		}
	}
	a.r.SleepUntil(until)
	for _, s := range subs {
		a.devices[s.dev].depart()
	}
}

// ArrayStats aggregates the spindle counters of a DeviceArray.
type ArrayStats struct {
	// Stats sums BytesRead, Requests, Seeks and BusyTime over all devices;
	// MaxQueueLen is the maximum over devices (queue depths on different
	// spindles are concurrent, not additive).
	Stats
	// PerDevice holds each spindle's own counters, index = device.
	PerDevice []Stats
	// MaxDeviceBytes and MinDeviceBytes expose stripe skew: the bytes
	// transferred by the busiest and the least-busy device. A large gap
	// means the stripe chunk or the workload's block layout is keeping
	// some spindles idle.
	MaxDeviceBytes int64
	MinDeviceBytes int64
}

// Stats returns a snapshot of the aggregate and per-device counters.
func (a *DeviceArray) Stats() ArrayStats {
	out := ArrayStats{PerDevice: make([]Stats, len(a.devices))}
	for i, d := range a.devices {
		s := d.Stats()
		out.PerDevice[i] = s
		out.BytesRead += s.BytesRead
		out.Requests += s.Requests
		out.Seeks += s.Seeks
		out.Skipped += s.Skipped
		out.BusyTime += s.BusyTime
		if s.MaxQueueLen > out.MaxQueueLen {
			out.MaxQueueLen = s.MaxQueueLen
		}
		if i == 0 || s.BytesRead > out.MaxDeviceBytes {
			out.MaxDeviceBytes = s.BytesRead
		}
		if i == 0 || s.BytesRead < out.MinDeviceBytes {
			out.MinDeviceBytes = s.BytesRead
		}
	}
	return out
}

// ResetStats zeroes every spindle's counters (device positions are kept).
func (a *DeviceArray) ResetStats() {
	for _, d := range a.devices {
		d.ResetStats()
	}
}

// TemperaturePlacement builds a ChunkPlacement map from observed per-chunk
// access heat: the hottest len(fast)/devices fraction of chunks is placed
// round-robin over the fast devices, the rest round-robin over the slow
// ones, so a tiered array serves the skewed head of the access
// distribution from its fast spindles. Ties in heat break toward the lower
// chunk index (deterministic); with no fast devices the map degenerates to
// round-robin over all devices.
func TemperaturePlacement(heat []float64, devices int, fast []int) []int {
	if devices <= 0 || len(heat) == 0 {
		return nil
	}
	isFast := make([]bool, devices)
	nFast := 0
	for _, d := range fast {
		if d >= 0 && d < devices && !isFast[d] {
			isFast[d] = true
			nFast++
		}
	}
	var fastDevs, slowDevs []int
	for d := 0; d < devices; d++ {
		if isFast[d] {
			fastDevs = append(fastDevs, d)
		} else {
			slowDevs = append(slowDevs, d)
		}
	}
	if len(slowDevs) == 0 {
		slowDevs = fastDevs // all-fast array: one tier
	}
	order := make([]int, len(heat))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return heat[order[i]] > heat[order[j]]
	})
	hot := len(heat) * nFast / devices
	place := make([]int, len(heat))
	for rank, c := range order {
		if rank < hot {
			place[c] = fastDevs[rank%len(fastDevs)]
		} else {
			place[c] = slowDevs[(rank-hot)%len(slowDevs)]
		}
	}
	return place
}
