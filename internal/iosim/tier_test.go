package iosim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

// DeviceConfigs overrides make the array heterogeneous: the fast device
// transfers its stripe share faster, and Bandwidth() switches from the
// homogeneous multiply to a per-device sum.
func TestHeterogeneousDeviceConfigs(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(rt.Sim(eng), ArrayConfig{
		Config:      Config{Bandwidth: 1e6, SeekLatency: time.Millisecond},
		Devices:     2,
		StripeChunk: 4,
		DeviceConfigs: []Config{
			{Bandwidth: 4e6, SeekLatency: 0}, // SSD-like fast tier on device 0
		},
	})
	if got, want := a.Bandwidth(), 5e6; got != want {
		t.Fatalf("Bandwidth() = %v, want %v (sum of tiers)", got, want)
	}
	var fastEnd, slowEnd sim.Time
	eng.Go("fast", func() {
		a.Read(0, 4, 400_000) // chunk 0 -> device 0: 0.1 s, no seek
		fastEnd = eng.Now()
	})
	eng.Go("slow", func() {
		a.Read(4, 4, 400_000) // chunk 1 -> device 1: 0.4 s + seek
		slowEnd = eng.Now()
	})
	eng.Run()
	if want := sim.Time(100 * time.Millisecond); fastEnd != want {
		t.Fatalf("fast-device read end = %v, want %v (zero seek, 4x bandwidth)", fastEnd, want)
	}
	if want := sim.Time(401 * time.Millisecond); slowEnd != want {
		t.Fatalf("slow-device read end = %v, want %v (base config untouched)", slowEnd, want)
	}
}

// A homogeneous array must keep the historical multiply formula for
// Bandwidth() bit-for-bit (goldens depend on the float result).
func TestHomogeneousBandwidthFormulaPinned(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestArray(eng, 3, 4, 1e6/3)
	if got, want := a.Bandwidth(), (1e6/3)*float64(3); got != want {
		t.Fatalf("Bandwidth() = %v, want the multiply formula's %v", got, want)
	}
}

// ChunkPlacement overrides striping chunk by chunk; placed chunks occupy
// dense chunk-index-ordered local slots per device and chunks beyond the
// map continue round-robin after them.
func TestChunkPlacementMapsAndSlots(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(rt.Sim(eng), ArrayConfig{
		Config:      Config{Bandwidth: 1e6},
		Devices:     2,
		StripeChunk: 4,
		// Chunks 0,2 -> device 1; chunk 1 -> device 0. Chunk 3+ round-robin
		// (3 -> dev 1, 4 -> dev 0, ...).
		ChunkPlacement: []int{1, 0, 1},
	})
	for _, tc := range []struct {
		b   BlockID
		dev int
		loc BlockID
	}{
		{0, 1, 0},  // chunk 0: device 1 slot 0
		{3, 1, 3},  // same chunk, offset 3
		{4, 0, 0},  // chunk 1: device 0 slot 0
		{8, 1, 4},  // chunk 2: device 1 slot 1
		{12, 1, 8}, // chunk 3: round-robin -> dev 1, after its 2 placed chunks
		{16, 0, 4}, // chunk 4: round-robin -> dev 0, after its 1 placed chunk
		{20, 1, 12},
		{24, 0, 8},
	} {
		if got := a.DeviceFor(tc.b); got != tc.dev {
			t.Errorf("DeviceFor(%d) = %d, want %d", tc.b, got, tc.dev)
		}
		if got := a.localBlock(tc.b); got != tc.loc {
			t.Errorf("localBlock(%d) = %d, want %d", tc.b, got, tc.loc)
		}
	}
	// Every device's local chunk space must stay collision-free over a
	// longer block range (placement + round-robin tail).
	seen := map[[2]int64]BlockID{}
	for b := BlockID(0); b < 256; b++ {
		key := [2]int64{int64(a.DeviceFor(b)), int64(a.localBlock(b))}
		if prev, dup := seen[key]; dup {
			t.Fatalf("blocks %d and %d collide at device %d local %d", prev, b, key[0], key[1])
		}
		seen[key] = b
	}
}

// TemperaturePlacement sends the hottest fraction of chunks to the fast
// devices, round-robin within each tier, deterministically.
func TestTemperaturePlacement(t *testing.T) {
	heat := []float64{0, 9, 3, 7, 0, 5, 1, 2}
	got := TemperaturePlacement(heat, 4, []int{0, 1})
	// Heat rank: 1(9) 3(7) 5(5) 2(3) 7(2) 6(1) 0(0) 4(0). Hot fraction =
	// 8*2/4 = 4 chunks -> fast {0,1} round-robin: 1->0, 3->1, 5->0, 2->1.
	// Cold rank 7,6,0,4 -> slow {2,3} round-robin: 7->2, 6->3, 0->2, 4->3.
	want := []int{2, 0, 1, 1, 3, 0, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement = %v, want %v", got, want)
	}
	// Determinism incl. heat ties (chunks 0 and 4 tie at 0 -> lower index first).
	if again := TemperaturePlacement(heat, 4, []int{0, 1}); !reflect.DeepEqual(again, got) {
		t.Fatalf("not deterministic: %v vs %v", again, got)
	}
	// No fast devices: plain round-robin over the slow tier by rank.
	rr := TemperaturePlacement([]float64{1, 1, 1, 1}, 2, nil)
	if !reflect.DeepEqual(rr, []int{0, 1, 0, 1}) {
		t.Fatalf("no-fast placement = %v", rr)
	}
}

// Satellite (d): Stats()/ResetStats() racing real-mode reads in flight must
// never tear or trip -race, on both the bare Disk and the DeviceArray.
func TestRealStatsRaceWithReadsInFlight(t *testing.T) {
	r := rt.NewReal()
	d := NewDisk(r, Config{Bandwidth: 1e9, SeekLatency: 0, Scheduler: SchedElevator})
	a := NewArray(r, ArrayConfig{
		Config:      Config{Bandwidth: 1e9, SeekLatency: 0},
		Devices:     4,
		StripeChunk: 4,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				d.Read(BlockID((i*11+j)%64), 1, 4096)
				a.Read(BlockID((i*17+j)%64), 8, 8192)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ds, as := d.Stats(), a.Stats()
			if ds.BytesRead < 0 || as.BytesRead < 0 || as.MinDeviceBytes > as.MaxDeviceBytes {
				t.Errorf("torn snapshot: disk %+v array %+v", ds, as)
				return
			}
			if i%50 == 0 {
				d.ResetStats()
				a.ResetStats()
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
