package tpch

import (
	"testing"

	"repro/internal/exec"
)

// These tests validate individual throughput queries against direct
// recomputation from storage, complementing the end-to-end smoke test.

func TestQ12MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Queries()[11](db, pe.scanBuilder(db)))
	})
	pe.eng.Run()

	snap := db.Snapshot("lineitem")
	n := snap.NumTuples()
	mode := snap.ReadString(db.Col("lineitem", "l_shipmode"), 0, n, nil)
	commit := snap.ReadInt64(db.Col("lineitem", "l_commitdate"), 0, n, nil)
	receipt := snap.ReadInt64(db.Col("lineitem", "l_receiptdate"), 0, n, nil)
	ship := snap.ReadInt64(db.Col("lineitem", "l_shipdate"), 0, n, nil)
	want := map[string]int64{}
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)-1
	for i := int64(0); i < n; i++ {
		m := mode[i]
		if (m == "MAIL" || m == "SHIP") &&
			commit[i] < receipt[i] && ship[i] < commit[i] &&
			receipt[i] >= lo && receipt[i] <= hi {
			want[m]++
		}
	}
	gotMap := map[string]int64{}
	for i := 0; i < got.N; i++ {
		gotMap[got.Vecs[0].Str[i]] = got.Vecs[1].I64[i]
	}
	for m, w := range want {
		if gotMap[m] != w {
			t.Errorf("Q12 %s = %d, want %d", m, gotMap[m], w)
		}
	}
	for m := range gotMap {
		if _, ok := want[m]; !ok && gotMap[m] > 0 {
			t.Errorf("Q12 unexpected group %s", m)
		}
	}
}

func TestQ14MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Queries()[13](db, pe.scanBuilder(db)))
	})
	pe.eng.Run()

	li := db.Snapshot("lineitem")
	n := li.NumTuples()
	pk := li.ReadInt64(db.Col("lineitem", "l_partkey"), 0, n, nil)
	price := li.ReadFloat64(db.Col("lineitem", "l_extendedprice"), 0, n, nil)
	disc := li.ReadFloat64(db.Col("lineitem", "l_discount"), 0, n, nil)
	ship := li.ReadInt64(db.Col("lineitem", "l_shipdate"), 0, n, nil)
	part := db.Snapshot("part")
	ptype := part.ReadString(db.Col("part", "p_type"), 0, part.NumTuples(), nil)
	lo, hi := Date(1995, 9, 1), Date(1995, 10, 1)-1
	want := map[bool]float64{}
	for i := int64(0); i < n; i++ {
		if ship[i] < lo || ship[i] > hi {
			continue
		}
		promo := len(ptype[pk[i]-1]) >= 5 && ptype[pk[i]-1][:5] == "PROMO"
		want[promo] += price[i] * (1 - disc[i])
	}
	gotMap := map[int64]float64{}
	for i := 0; i < got.N; i++ {
		gotMap[got.Vecs[0].I64[i]] = got.Vecs[1].F64[i]
	}
	for _, promo := range []bool{false, true} {
		key := int64(0)
		if promo {
			key = 1
		}
		diff := gotMap[key] - want[promo]
		if diff < -1e-6 || diff > 1e-6 {
			t.Errorf("Q14 promo=%v revenue = %v, want %v", promo, gotMap[key], want[promo])
		}
	}
}

func TestQ18MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Queries()[17](db, pe.scanBuilder(db)))
	})
	pe.eng.Run()

	li := db.Snapshot("lineitem")
	n := li.NumTuples()
	ok := li.ReadInt64(db.Col("lineitem", "l_orderkey"), 0, n, nil)
	qty := li.ReadFloat64(db.Col("lineitem", "l_quantity"), 0, n, nil)
	sum := map[int64]float64{}
	for i := int64(0); i < n; i++ {
		sum[ok[i]] += qty[i]
	}
	wantBig := map[int64]bool{}
	for k, s := range sum {
		if s > 300 {
			wantBig[k] = true
		}
	}
	if got.N > 100 {
		t.Fatalf("Q18 limit violated: %d rows", got.N)
	}
	okIdx := 0 // o_orderkey is the first scan column
	for i := 0; i < got.N; i++ {
		if !wantBig[got.Vecs[okIdx].I64[i]] {
			t.Errorf("Q18 returned order %d without qty > 300", got.Vecs[okIdx].I64[i])
		}
	}
	if len(wantBig) <= 100 && got.N != len(wantBig) {
		t.Errorf("Q18 rows = %d, want %d", got.N, len(wantBig))
	}
}

func TestQ22MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Queries()[21](db, pe.scanBuilder(db)))
	})
	pe.eng.Run()

	cust := db.Snapshot("customer")
	n := cust.NumTuples()
	phone := cust.ReadString(db.Col("customer", "c_phone"), 0, n, nil)
	bal := cust.ReadFloat64(db.Col("customer", "c_acctbal"), 0, n, nil)
	key := cust.ReadInt64(db.Col("customer", "c_custkey"), 0, n, nil)
	ord := db.Snapshot("orders")
	ocust := ord.ReadInt64(db.Col("orders", "o_custkey"), 0, ord.NumTuples(), nil)
	has := map[int64]bool{}
	for _, c := range ocust {
		has[c] = true
	}
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	wantCnt := map[string]int64{}
	for i := int64(0); i < n; i++ {
		cc := phone[i][:2]
		if codes[cc] && bal[i] > 0 && !has[key[i]] {
			wantCnt[cc]++
		}
	}
	gotCnt := map[string]int64{}
	for i := 0; i < got.N; i++ {
		gotCnt[got.Vecs[0].Str[i]] = got.Vecs[1].I64[i]
	}
	for cc, w := range wantCnt {
		if gotCnt[cc] != w {
			t.Errorf("Q22 %s = %d, want %d", cc, gotCnt[cc], w)
		}
	}
}
