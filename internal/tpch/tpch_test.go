package tpch

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testDB(t testing.TB) *DB {
	t.Helper()
	return Generate(0.005, 1)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.005, 7)
	b := Generate(0.005, 7)
	sa, sb := a.Snapshot("lineitem"), b.Snapshot("lineitem")
	if sa.NumTuples() != sb.NumTuples() {
		t.Fatalf("tuple counts differ: %d vs %d", sa.NumTuples(), sb.NumTuples())
	}
	va := sa.ReadFloat64(a.Col("lineitem", "l_extendedprice"), 0, 100, nil)
	vb := sb.ReadFloat64(b.Col("lineitem", "l_extendedprice"), 0, 100, nil)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestSchemaShape(t *testing.T) {
	db := testDB(t)
	wantTables := []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
	totalCols := 0
	for _, name := range wantTables {
		snap := db.Snapshot(name)
		totalCols += len(snap.Table().Schema)
		if snap.NumTuples() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	if totalCols != 61 {
		t.Fatalf("total columns = %d, want 61 (TPC-H)", totalCols)
	}
	if db.Snapshot("nation").NumTuples() != 25 || db.Snapshot("region").NumTuples() != 5 {
		t.Fatal("fixed-size tables wrong")
	}
}

func TestRowMultipliers(t *testing.T) {
	db := Generate(0.01, 3)
	ps := db.Snapshot("partsupp").NumTuples()
	p := db.Snapshot("part").NumTuples()
	if ps != 4*p {
		t.Fatalf("partsupp = %d, want 4x part (%d)", ps, p)
	}
	l := db.Snapshot("lineitem").NumTuples()
	o := db.Snapshot("orders").NumTuples()
	ratio := float64(l) / float64(o)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("lineitem/orders = %v, want ~4", ratio)
	}
}

func TestDateEncoding(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Fatalf("epoch = %d", Date(1992, 1, 1))
	}
	if Date(1992, 1, 2) != 1 || Date(1992, 2, 1) != 31 {
		t.Fatal("day arithmetic wrong")
	}
	if Date(1993, 1, 1) != 366 { // 1992 is a leap year
		t.Fatalf("1993-01-01 = %d, want 366", Date(1993, 1, 1))
	}
	if Date(1998, 12, 31) > DateMax {
		t.Fatalf("DateMax too small: %d", Date(1998, 12, 31))
	}
}

func TestDatesWithinRange(t *testing.T) {
	db := testDB(t)
	snap := db.Snapshot("lineitem")
	ship := snap.ReadInt64(db.Col("lineitem", "l_shipdate"), 0, snap.NumTuples(), nil)
	for i, d := range ship {
		if d < 0 || d > DateMax+160 {
			t.Fatalf("shipdate[%d] = %d out of range", i, d)
		}
	}
}

// planEnv wires a minimal environment to execute plans against a DB.
type planEnv struct {
	eng *sim.Engine
	ctx *exec.Ctx
}

func newPlanEnv(t testing.TB) *planEnv {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 2e9, SeekLatency: 10 * time.Microsecond})
	pool := buffer.NewPool(rt.Sim(eng), disk, buffer.NewLRU(), 1<<31)
	return &planEnv{eng: eng, ctx: &exec.Ctx{RT: rt.Sim(eng), Pool: pool, ReadAheadTuples: 16384}}
}

func (pe *planEnv) scanBuilder(db *DB) ScanBuilder {
	return func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		snap := db.Snapshot(table)
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = db.Col(table, c)
		}
		if ranges == nil {
			ranges = []exec.RIDRange{{Lo: 0, Hi: snap.NumTuples()}}
		}
		return &exec.Scan{Ctx: pe.ctx, Snap: snap, Cols: idx, Ranges: ranges}
	}
}

func TestQ1MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Q1(nil)(db, pe.scanBuilder(db)))
	})
	pe.eng.Run()
	if got.N == 0 || got.N > 6 {
		t.Fatalf("Q1 groups = %d, want <= 6 (flag x status)", got.N)
	}
	// Reference computation straight from storage.
	snap := db.Snapshot("lineitem")
	n := snap.NumTuples()
	rf := snap.ReadString(db.Col("lineitem", "l_returnflag"), 0, n, nil)
	ls := snap.ReadString(db.Col("lineitem", "l_linestatus"), 0, n, nil)
	qty := snap.ReadFloat64(db.Col("lineitem", "l_quantity"), 0, n, nil)
	ship := snap.ReadInt64(db.Col("lineitem", "l_shipdate"), 0, n, nil)
	wantQty := make(map[string]float64)
	wantCnt := make(map[string]int64)
	for i := range rf {
		if ship[i] <= DateMax-90 {
			key := rf[i] + "|" + ls[i] + "|"
			wantQty[key] += qty[i]
			wantCnt[key]++
		}
	}
	if len(wantQty) != got.N {
		t.Fatalf("groups = %d, want %d", got.N, len(wantQty))
	}
	for i := 0; i < got.N; i++ {
		key := got.Vecs[0].Str[i] + "|" + got.Vecs[1].Str[i] + "|"
		if got.Vecs[2].F64[i] != wantQty[key] {
			t.Errorf("group %s sum_qty = %v, want %v", key, got.Vecs[2].F64[i], wantQty[key])
		}
		if got.Vecs[9].I64[i] != wantCnt[key] {
			t.Errorf("group %s count = %d, want %d", key, got.Vecs[9].I64[i], wantCnt[key])
		}
	}
}

func TestQ6MatchesReference(t *testing.T) {
	db := testDB(t)
	pe := newPlanEnv(t)
	var got *exec.Batch
	pe.eng.Go("q", func() {
		got = exec.Collect(Q6(nil)(db, pe.scanBuilder(db)))
	})
	pe.eng.Run()
	snap := db.Snapshot("lineitem")
	n := snap.NumTuples()
	ship := snap.ReadInt64(db.Col("lineitem", "l_shipdate"), 0, n, nil)
	disc := snap.ReadFloat64(db.Col("lineitem", "l_discount"), 0, n, nil)
	qty := snap.ReadFloat64(db.Col("lineitem", "l_quantity"), 0, n, nil)
	price := snap.ReadFloat64(db.Col("lineitem", "l_extendedprice"), 0, n, nil)
	var want float64
	for i := range ship {
		if ship[i] >= Date(1994, 1, 1) && ship[i] < Date(1995, 1, 1) &&
			disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24 {
			want += price[i] * disc[i]
		}
	}
	if got.N != 1 {
		t.Fatalf("Q6 rows = %d", got.N)
	}
	diff := got.Vecs[0].F64[0] - want
	if diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("Q6 = %v, want %v", got.Vecs[0].F64[0], want)
	}
}

// TestAll22QueriesRun executes every throughput query end to end and
// checks it produces a sane (possibly empty) result without panicking.
func TestAll22QueriesRun(t *testing.T) {
	db := testDB(t)
	for qi, plan := range Queries() {
		qi, plan := qi, plan
		pe := newPlanEnv(t)
		var rows int64
		pe.eng.Go("q", func() {
			rows = exec.Drain(plan(db, pe.scanBuilder(db)))
		})
		pe.eng.Run()
		if rows < 0 {
			t.Errorf("Q%d returned negative rows", qi+1)
		}
	}
}

func TestQueriesTouchExpectedTables(t *testing.T) {
	db := testDB(t)
	touched := make(map[string]bool)
	rec := func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		touched[table] = true
		types := make([]storage.ColumnType, len(cols))
		for i, c := range cols {
			types[i] = db.Snapshot(table).Table().Schema[db.Col(table, c)].Type
		}
		return &nullOp{types: types}
	}
	for _, plan := range Queries() {
		op := plan(db, rec)
		op.Open()
		op.Close()
	}
	for _, want := range []string{"lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation"} {
		if !touched[want] {
			t.Errorf("no query touches %s", want)
		}
	}
}

type nullOp struct{ types []storage.ColumnType }

func (n *nullOp) Open()                        {}
func (n *nullOp) Next() *exec.Batch            { return nil }
func (n *nullOp) Close()                       {}
func (n *nullOp) Schema() []storage.ColumnType { return n.types }
