package tpch

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/storage"
)

// ScanBuilder abstracts how a query plan obtains its scans, so the same
// plan runs over a traditional Scan (LRU/PBM pools) or a CScan (ABM).
// cols are column names of the table; ranges are RID ranges (nil = full
// table); inOrder requests order-preserving delivery (needed by plans
// that exploit physical order — all plans here tolerate out-of-order, so
// it is false throughout, but the knob exists per §2.3).
type ScanBuilder func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op

// Plan is a ready-to-run query plan factory.
type Plan func(db *DB, build ScanBuilder) exec.Op

// col looks up the output position of a named column within the column
// list given to the scan builder.
func col(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("tpch: column %q not in scan list", name))
}

func icol(cols []string, name string) exec.Col {
	return exec.Col{Idx: col(cols, name), T: storage.Int64}
}

func fcol(cols []string, name string) exec.Col {
	return exec.Col{Idx: col(cols, name), T: storage.Float64}
}

// Q1 is TPC-H Q1 (pricing summary report): a pure scan of lineitem with a
// shipdate cutoff, grouped by returnflag/linestatus. Used both in the
// microbenchmark and the throughput run.
func Q1(ranges []exec.RIDRange) Plan {
	cols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate"}
	return func(db *DB, build ScanBuilder) exec.Op {
		scan := build("lineitem", cols, ranges, false)
		sel := &exec.Select{
			Child: scan,
			Pred:  exec.NewCmp("<=", icol(cols, "l_shipdate"), exec.ConstI(DateMax-90)),
		}
		disc := exec.NewArith("-", exec.ConstF(1), fcol(cols, "l_discount"))
		proj := &exec.Project{
			Child: sel,
			Exprs: []exec.Expr{
				exec.Col{Idx: 0, T: storage.String}, // returnflag
				exec.Col{Idx: 1, T: storage.String}, // linestatus
				fcol(cols, "l_quantity"),
				fcol(cols, "l_extendedprice"),
				exec.NewArith("*", fcol(cols, "l_extendedprice"), disc),
				exec.NewArith("*",
					exec.NewArith("*", fcol(cols, "l_extendedprice"), disc),
					exec.NewArith("+", exec.ConstF(1), fcol(cols, "l_tax"))),
				fcol(cols, "l_discount"),
			},
		}
		return &exec.HashAggr{
			Child:  proj,
			Groups: []int{0, 1},
			Aggs: []exec.AggSpec{
				{Kind: exec.AggSum, Col: 2}, {Kind: exec.AggSum, Col: 3},
				{Kind: exec.AggSum, Col: 4}, {Kind: exec.AggSum, Col: 5},
				{Kind: exec.AggAvg, Col: 2}, {Kind: exec.AggAvg, Col: 3},
				{Kind: exec.AggAvg, Col: 6}, {Kind: exec.AggCount},
			},
		}
	}
}

// Q6 is TPC-H Q6 (forecasting revenue change): highly selective scan of
// lineitem, global aggregate. The second microbenchmark query.
func Q6(ranges []exec.RIDRange) Plan {
	cols := []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"}
	return func(db *DB, build ScanBuilder) exec.Op {
		scan := build("lineitem", cols, ranges, false)
		sel := &exec.Select{
			Child: scan,
			Pred: exec.NewAnd(
				exec.Between(icol(cols, "l_shipdate"), Date(1994, 1, 1), Date(1995, 1, 1)-1),
				exec.NewCmp(">=", fcol(cols, "l_discount"), exec.ConstF(0.05)),
				exec.NewCmp("<=", fcol(cols, "l_discount"), exec.ConstF(0.07)),
				exec.NewCmp("<", fcol(cols, "l_quantity"), exec.ConstF(24)),
			),
		}
		proj := &exec.Project{
			Child: sel,
			Exprs: []exec.Expr{exec.NewArith("*", fcol(cols, "l_extendedprice"), fcol(cols, "l_discount"))},
		}
		return &exec.HashAggr{Child: proj, Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 0}}}
	}
}

// revenueExpr computes extendedprice*(1-discount) over a scan column list.
func revenueExpr(cols []string) exec.Expr {
	return exec.NewArith("*", fcol(cols, "l_extendedprice"),
		exec.NewArith("-", exec.ConstF(1), fcol(cols, "l_discount")))
}

// nationScan builds the tiny nation dimension scan.
func nationScan(build ScanBuilder) (exec.Op, []string) {
	cols := []string{"n_nationkey", "n_name", "n_regionkey"}
	return build("nation", cols, nil, false), cols
}

// Queries returns the full 22-query throughput mix in query-number order.
// Each entry is a self-contained plan factory; queries that TPC-H states
// with correlated subqueries or outer joins are built from the same base
// table scans with equivalent set/aggregate passes, preserving the tables
// and columns touched (the property the paper's I/O study depends on).
func Queries() []Plan {
	return []Plan{
		Q1(nil), q2(), q3(), q4(), q5(), Q6(nil), q7(), q8(), q9(), q10(),
		q11(), q12(), q13(), q14(), q15(), q16(), q17(), q18(), q19(), q20(),
		q21(), q22(),
	}
}

func q2() Plan {
	// Min-cost supplier: part (size/type) x partsupp x supplier x nation x region(EUROPE).
	pCols := []string{"p_partkey", "p_size", "p_type", "p_mfgr"}
	psCols := []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}
	sCols := []string{"s_suppkey", "s_nationkey", "s_name", "s_acctbal"}
	return func(db *DB, build ScanBuilder) exec.Op {
		part := &exec.Select{
			Child: build("part", pCols, nil, false),
			Pred: exec.NewAnd(
				exec.NewCmp("==", icol(pCols, "p_size"), exec.ConstI(15)),
				exec.StrContains{Col: col(pCols, "p_type"), Sub: "BRASS"},
			),
		}
		ps := build("partsupp", psCols, nil, false)
		j1 := &exec.HashJoin{Build: part, Probe: ps, BuildKey: 0, ProbeKey: col(psCols, "ps_partkey")}
		// j1: ps cols then part cols.
		supp := build("supplier", sCols, nil, false)
		j2 := &exec.HashJoin{Build: supp, Probe: j1, BuildKey: 0, ProbeKey: col(psCols, "ps_suppkey")}
		nation, _ := nationScan(build)
		j3 := &exec.HashJoin{Build: nation, Probe: j2, BuildKey: 0,
			ProbeKey: len(psCols) + len(pCols) + col(sCols, "s_nationkey")}
		// Group by part, min supply cost.
		return &exec.Sort{
			Child: &exec.HashAggr{
				Child:  j3,
				Groups: []int{col(psCols, "ps_partkey")},
				Aggs:   []exec.AggSpec{{Kind: exec.AggMin, Col: col(psCols, "ps_supplycost")}},
			},
			By:    []exec.SortSpec{{Col: 1, Desc: false}},
			Limit: 100,
		}
	}
}

func q3() Plan {
	cCols := []string{"c_custkey", "c_mktsegment"}
	oCols := []string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}
	lCols := []string{"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"}
	cutoff := Date(1995, 3, 15)
	return func(db *DB, build ScanBuilder) exec.Op {
		cust := &exec.Select{
			Child: build("customer", cCols, nil, false),
			Pred:  exec.StrEq{Col: col(cCols, "c_mktsegment"), Val: "BUILDING"},
		}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.NewCmp("<", icol(oCols, "o_orderdate"), exec.ConstI(cutoff)),
		}
		jco := &exec.HashJoin{Build: cust, Probe: orders, BuildKey: 0, ProbeKey: col(oCols, "o_custkey")}
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.NewCmp(">", icol(lCols, "l_shipdate"), exec.ConstI(cutoff)),
		}
		j := &exec.HashJoin{Build: jco, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		proj := &exec.Project{
			Child: j,
			Exprs: []exec.Expr{
				icol(lCols, "l_orderkey"),
				revenueExpr(lCols),
			},
		}
		return &exec.Sort{
			Child: &exec.HashAggr{
				Child:  proj,
				Groups: []int{0},
				Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
			},
			By:    []exec.SortSpec{{Col: 1, Desc: true}},
			Limit: 10,
		}
	}
}

func q4() Plan {
	oCols := []string{"o_orderkey", "o_orderdate", "o_orderpriority"}
	lCols := []string{"l_orderkey", "l_commitdate", "l_receiptdate"}
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)-1
	return func(db *DB, build ScanBuilder) exec.Op {
		// EXISTS(lineitem with commit<receipt): build the orderkey set.
		late := exec.Collect(&exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.NewCmp("<", icol(lCols, "l_commitdate"), icol(lCols, "l_receiptdate")),
		})
		set := make(map[int64]bool, late.N)
		for _, k := range late.Vecs[0].I64 {
			set[k] = true
		}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred: exec.NewAnd(
				exec.Between(icol(oCols, "o_orderdate"), lo, hi),
				&exec.InI64{Expr: icol(oCols, "o_orderkey"), Set: set},
			),
		}
		return &exec.HashAggr{
			Child:  orders,
			Groups: []int{col(oCols, "o_orderpriority")},
			Aggs:   []exec.AggSpec{{Kind: exec.AggCount}},
		}
	}
}

func q5() Plan {
	cCols := []string{"c_custkey", "c_nationkey"}
	oCols := []string{"o_orderkey", "o_custkey", "o_orderdate"}
	lCols := []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}
	sCols := []string{"s_suppkey", "s_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		// ASIA nations.
		nation, nCols := nationScan(build)
		asia := exec.Collect(&exec.Select{Child: nation,
			Pred: &exec.InI64{Expr: icol(nCols, "n_regionkey"), Set: map[int64]bool{2: true}}})
		asiaSet := make(map[int64]bool)
		nationName := make(map[int64]string)
		for i := 0; i < asia.N; i++ {
			asiaSet[asia.Vecs[0].I64[i]] = true
			nationName[asia.Vecs[0].I64[i]] = asia.Vecs[1].Str[i]
		}
		_ = nationName
		cust := &exec.Select{
			Child: build("customer", cCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(cCols, "c_nationkey"), Set: asiaSet},
		}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.Between(icol(oCols, "o_orderdate"), Date(1994, 1, 1), Date(1995, 1, 1)-1),
		}
		jco := &exec.HashJoin{Build: cust, Probe: orders, BuildKey: 0, ProbeKey: col(oCols, "o_custkey")}
		line := build("lineitem", lCols, nil, false)
		jl := &exec.HashJoin{Build: jco, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		supp := &exec.Select{
			Child: build("supplier", sCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(sCols, "s_nationkey"), Set: asiaSet},
		}
		js := &exec.HashJoin{Build: supp, Probe: jl, BuildKey: 0, ProbeKey: col(lCols, "l_suppkey")}
		// Group revenue by supplier nation.
		nkIdx := len(lCols) + len(oCols) + len(cCols) + col(sCols, "s_nationkey")
		proj := &exec.Project{
			Child: js,
			Exprs: []exec.Expr{
				exec.Col{Idx: nkIdx, T: storage.Int64},
				revenueExpr(lCols),
			},
		}
		return &exec.HashAggr{Child: proj, Groups: []int{0},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}}}
	}
}

func q7() Plan {
	lCols := []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"}
	sCols := []string{"s_suppkey", "s_nationkey"}
	oCols := []string{"o_orderkey", "o_custkey"}
	cCols := []string{"c_custkey", "c_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.Between(icol(lCols, "l_shipdate"), Date(1995, 1, 1), Date(1996, 12, 31)),
		}
		supp := &exec.Select{
			Child: build("supplier", sCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(sCols, "s_nationkey"), Set: map[int64]bool{6: true, 7: true}}, // FRANCE, GERMANY
		}
		jls := &exec.HashJoin{Build: supp, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_suppkey")}
		cust := &exec.Select{
			Child: build("customer", cCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(cCols, "c_nationkey"), Set: map[int64]bool{6: true, 7: true}},
		}
		orders := build("orders", oCols, nil, false)
		jco := &exec.HashJoin{Build: cust, Probe: orders, BuildKey: 0, ProbeKey: col(oCols, "o_custkey")}
		j := &exec.HashJoin{Build: jco, Probe: jls, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		suppNation := len(lCols) + col(sCols, "s_nationkey")
		custNation := len(lCols) + len(sCols) + len(oCols) + col(cCols, "c_nationkey")
		proj := &exec.Project{
			Child: j,
			Exprs: []exec.Expr{
				exec.Col{Idx: suppNation, T: storage.Int64},
				exec.Col{Idx: custNation, T: storage.Int64},
				revenueExpr(lCols),
			},
		}
		filt := &exec.Select{Child: proj,
			Pred: exec.NewCmp("!=", exec.Col{Idx: 0, T: storage.Int64}, exec.Col{Idx: 1, T: storage.Int64})}
		return &exec.HashAggr{Child: filt, Groups: []int{0, 1},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 2}}}
	}
}

func q8() Plan {
	pCols := []string{"p_partkey", "p_type"}
	lCols := []string{"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"}
	oCols := []string{"o_orderkey", "o_custkey", "o_orderdate"}
	cCols := []string{"c_custkey", "c_nationkey"}
	sCols := []string{"s_suppkey", "s_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		part := &exec.Select{
			Child: build("part", pCols, nil, false),
			Pred:  exec.StrEq{Col: col(pCols, "p_type"), Val: "ECONOMY ANODIZED STEEL"},
		}
		line := build("lineitem", lCols, nil, false)
		jlp := &exec.HashJoin{Build: part, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_partkey")}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.Between(icol(oCols, "o_orderdate"), Date(1995, 1, 1), Date(1996, 12, 31)),
		}
		jo := &exec.HashJoin{Build: orders, Probe: jlp, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		// AMERICA customers.
		cust := build("customer", cCols, nil, false)
		jc := &exec.HashJoin{Build: cust, Probe: jo,
			BuildKey: 0, ProbeKey: len(lCols) + len(pCols) + col(oCols, "o_custkey")}
		supp := build("supplier", sCols, nil, false)
		js := &exec.HashJoin{Build: supp, Probe: jc, BuildKey: 0, ProbeKey: col(lCols, "l_suppkey")}
		odateIdx := len(lCols) + len(pCols) + col(oCols, "o_orderdate")
		proj := &exec.Project{
			Child: js,
			Exprs: []exec.Expr{
				exec.NewArith("/", exec.Col{Idx: odateIdx, T: storage.Int64}, exec.ConstI(365)), // year bucket
				revenueExpr(lCols),
			},
		}
		return &exec.HashAggr{Child: proj, Groups: []int{0},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}, {Kind: exec.AggCount}}}
	}
}

func q9() Plan {
	pCols := []string{"p_partkey", "p_name"}
	lCols := []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"}
	sCols := []string{"s_suppkey", "s_nationkey"}
	psCols := []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}
	oCols := []string{"o_orderkey", "o_orderdate"}
	return func(db *DB, build ScanBuilder) exec.Op {
		part := &exec.Select{
			Child: build("part", pCols, nil, false),
			Pred:  exec.StrContains{Col: col(pCols, "p_name"), Sub: "green"},
		}
		line := build("lineitem", lCols, nil, false)
		jp := &exec.HashJoin{Build: part, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_partkey")}
		supp := build("supplier", sCols, nil, false)
		js := &exec.HashJoin{Build: supp, Probe: jp, BuildKey: 0, ProbeKey: col(lCols, "l_suppkey")}
		orders := build("orders", oCols, nil, false)
		jo := &exec.HashJoin{Build: orders, Probe: js, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		// partsupp read to model its I/O share (supplycost per part).
		exec.Drain(build("partsupp", psCols, nil, false))
		nkIdx := len(lCols) + len(pCols) + col(sCols, "s_nationkey")
		odateIdx := len(lCols) + len(pCols) + len(sCols) + col(oCols, "o_orderdate")
		proj := &exec.Project{
			Child: jo,
			Exprs: []exec.Expr{
				exec.Col{Idx: nkIdx, T: storage.Int64},
				exec.NewArith("/", exec.Col{Idx: odateIdx, T: storage.Int64}, exec.ConstI(365)),
				revenueExpr(lCols),
			},
		}
		return &exec.HashAggr{Child: proj, Groups: []int{0, 1},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 2}}}
	}
}

func q10() Plan {
	cCols := []string{"c_custkey", "c_nationkey", "c_acctbal"}
	oCols := []string{"o_orderkey", "o_custkey", "o_orderdate"}
	lCols := []string{"l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"}
	return func(db *DB, build ScanBuilder) exec.Op {
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.Between(icol(oCols, "o_orderdate"), Date(1993, 10, 1), Date(1994, 1, 1)-1),
		}
		cust := build("customer", cCols, nil, false)
		jco := &exec.HashJoin{Build: cust, Probe: orders, BuildKey: 0, ProbeKey: col(oCols, "o_custkey")}
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.StrEq{Col: col(lCols, "l_returnflag"), Val: "R"},
		}
		j := &exec.HashJoin{Build: jco, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		custIdx := len(lCols) + len(oCols) + col(cCols, "c_custkey")
		proj := &exec.Project{
			Child: j,
			Exprs: []exec.Expr{
				exec.Col{Idx: custIdx, T: storage.Int64},
				revenueExpr(lCols),
			},
		}
		return &exec.Sort{
			Child: &exec.HashAggr{Child: proj, Groups: []int{0},
				Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}}},
			By:    []exec.SortSpec{{Col: 1, Desc: true}},
			Limit: 20,
		}
	}
}

func q11() Plan {
	psCols := []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}
	sCols := []string{"s_suppkey", "s_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		supp := &exec.Select{
			Child: build("supplier", sCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(sCols, "s_nationkey"), Set: map[int64]bool{7: true}}, // GERMANY
		}
		ps := build("partsupp", psCols, nil, false)
		j := &exec.HashJoin{Build: supp, Probe: ps, BuildKey: 0, ProbeKey: col(psCols, "ps_suppkey")}
		proj := &exec.Project{
			Child: j,
			Exprs: []exec.Expr{
				icol(psCols, "ps_partkey"),
				exec.NewArith("*", fcol(psCols, "ps_supplycost"),
					exec.NewArith("+", exec.ConstF(0), &castF{icol(psCols, "ps_availqty")})),
			},
		}
		return &exec.Sort{
			Child: &exec.HashAggr{Child: proj, Groups: []int{0},
				Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}}},
			By:    []exec.SortSpec{{Col: 1, Desc: true}},
			Limit: 100,
		}
	}
}

// castF converts an int64 expression to float64.
type castF struct{ E exec.Expr }

// Type implements exec.Expr.
func (*castF) Type() storage.ColumnType { return storage.Float64 }

// Eval implements exec.Expr.
func (c *castF) Eval(b *exec.Batch, out *exec.Vec) {
	var tmp exec.Vec
	c.E.Eval(b, &tmp)
	out.Reset()
	out.T = storage.Float64
	for _, v := range tmp.I64 {
		out.F64 = append(out.F64, float64(v))
	}
}

func q12() Plan {
	lCols := []string{"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate"}
	oCols := []string{"o_orderkey", "o_orderpriority"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred: exec.NewAnd(
				exec.InStr{Col: col(lCols, "l_shipmode"), Set: map[string]bool{"MAIL": true, "SHIP": true}},
				exec.NewCmp("<", icol(lCols, "l_commitdate"), icol(lCols, "l_receiptdate")),
				exec.NewCmp("<", icol(lCols, "l_shipdate"), icol(lCols, "l_commitdate")),
				exec.Between(icol(lCols, "l_receiptdate"), Date(1994, 1, 1), Date(1995, 1, 1)-1),
			),
		}
		orders := build("orders", oCols, nil, false)
		j := &exec.HashJoin{Build: orders, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		return &exec.HashAggr{
			Child:  j,
			Groups: []int{col(lCols, "l_shipmode")},
			Aggs:   []exec.AggSpec{{Kind: exec.AggCount}},
		}
	}
}

func q13() Plan {
	oCols := []string{"o_orderkey", "o_custkey", "o_comment"}
	cCols := []string{"c_custkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		// Orders-per-customer distribution; the left-join's null bucket is
		// approximated by counting matched customers only.
		exec.Drain(build("customer", cCols, nil, false))
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.NewCmp("==", &containsExpr{col(oCols, "o_comment"), "special requests"}, exec.ConstI(0)),
		}
		perCust := &exec.HashAggr{
			Child:  orders,
			Groups: []int{col(oCols, "o_custkey")},
			Aggs:   []exec.AggSpec{{Kind: exec.AggCount}},
		}
		return &exec.Sort{
			Child: &exec.HashAggr{Child: perCust, Groups: []int{1},
				Aggs: []exec.AggSpec{{Kind: exec.AggCount}}},
			By: []exec.SortSpec{{Col: 1, Desc: true}},
		}
	}
}

// containsExpr is StrContains as a reusable expression value.
type containsExpr struct {
	col int
	sub string
}

// Type implements exec.Expr.
func (*containsExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (c *containsExpr) Eval(b *exec.Batch, out *exec.Vec) {
	(exec.StrContains{Col: c.col, Sub: c.sub}).Eval(b, out)
}

func q14() Plan {
	lCols := []string{"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"}
	pCols := []string{"p_partkey", "p_type"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.Between(icol(lCols, "l_shipdate"), Date(1995, 9, 1), Date(1995, 10, 1)-1),
		}
		part := build("part", pCols, nil, false)
		j := &exec.HashJoin{Build: part, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_partkey")}
		promo := &exec.Project{
			Child: j,
			Exprs: []exec.Expr{
				exec.StrPrefix{Col: len(lCols) + col(pCols, "p_type"), Prefix: "PROMO"},
				revenueExpr(lCols),
			},
		}
		return &exec.HashAggr{Child: promo, Groups: []int{0},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}}}
	}
}

func q15() Plan {
	lCols := []string{"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"}
	sCols := []string{"s_suppkey", "s_name"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.Between(icol(lCols, "l_shipdate"), Date(1996, 1, 1), Date(1996, 4, 1)-1),
		}
		proj := &exec.Project{Child: line,
			Exprs: []exec.Expr{icol(lCols, "l_suppkey"), revenueExpr(lCols)}}
		rev := &exec.HashAggr{Child: proj, Groups: []int{0},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}}}
		supp := build("supplier", sCols, nil, false)
		j := &exec.HashJoin{Build: rev, Probe: supp, BuildKey: 0, ProbeKey: 0}
		return &exec.Sort{Child: j, By: []exec.SortSpec{{Col: len(sCols) + 1, Desc: true}}, Limit: 1}
	}
}

func q16() Plan {
	psCols := []string{"ps_partkey", "ps_suppkey"}
	pCols := []string{"p_partkey", "p_brand", "p_type", "p_size"}
	return func(db *DB, build ScanBuilder) exec.Op {
		part := &exec.Select{
			Child: build("part", pCols, nil, false),
			Pred: exec.NewAnd(
				exec.NewCmp("==", &eqExpr{col(pCols, "p_brand"), "Brand#45"}, exec.ConstI(0)),
				exec.NewCmp("==", &prefixExpr{col(pCols, "p_type"), "MEDIUM POLISHED"}, exec.ConstI(0)),
				&exec.InI64{Expr: icol(pCols, "p_size"), Set: map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}},
			),
		}
		ps := build("partsupp", psCols, nil, false)
		j := &exec.HashJoin{Build: part, Probe: ps, BuildKey: 0, ProbeKey: col(psCols, "ps_partkey")}
		return &exec.Sort{
			Child: &exec.HashAggr{
				Child:  j,
				Groups: []int{len(psCols) + col(pCols, "p_brand"), len(psCols) + col(pCols, "p_type"), len(psCols) + col(pCols, "p_size")},
				Aggs:   []exec.AggSpec{{Kind: exec.AggCount}},
			},
			By:    []exec.SortSpec{{Col: 3, Desc: true}},
			Limit: 100,
		}
	}
}

type eqExpr struct {
	col int
	val string
}

// Type implements exec.Expr.
func (*eqExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *eqExpr) Eval(b *exec.Batch, out *exec.Vec) {
	(exec.StrEq{Col: e.col, Val: e.val}).Eval(b, out)
}

type prefixExpr struct {
	col    int
	prefix string
}

// Type implements exec.Expr.
func (*prefixExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *prefixExpr) Eval(b *exec.Batch, out *exec.Vec) {
	(exec.StrPrefix{Col: e.col, Prefix: e.prefix}).Eval(b, out)
}

func q17() Plan {
	lCols := []string{"l_partkey", "l_quantity", "l_extendedprice"}
	pCols := []string{"p_partkey", "p_brand", "p_container"}
	return func(db *DB, build ScanBuilder) exec.Op {
		// Pass 1: average quantity per part (the correlated subquery).
		avg := exec.Collect(&exec.HashAggr{
			Child:  build("lineitem", []string{"l_partkey", "l_quantity"}, nil, false),
			Groups: []int{0},
			Aggs:   []exec.AggSpec{{Kind: exec.AggAvg, Col: 1}},
		})
		avgByPart := make(map[int64]float64, avg.N)
		for i := 0; i < avg.N; i++ {
			avgByPart[avg.Vecs[0].I64[i]] = avg.Vecs[1].F64[i]
		}
		part := &exec.Select{
			Child: build("part", pCols, nil, false),
			Pred: exec.NewAnd(
				&eqExpr{col(pCols, "p_brand"), "Brand#23"},
				&eqExpr{col(pCols, "p_container"), "MED BOX"},
			),
		}
		line := build("lineitem", lCols, nil, false)
		j := &exec.HashJoin{Build: part, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_partkey")}
		below := &exec.Select{Child: j, Pred: &belowAvgExpr{
			part: col(lCols, "l_partkey"), qty: col(lCols, "l_quantity"), avg: avgByPart}}
		return &exec.HashAggr{Child: below,
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: col(lCols, "l_extendedprice")}, {Kind: exec.AggCount}}}
	}
}

// belowAvgExpr selects tuples with quantity < 0.2 * per-part average.
type belowAvgExpr struct {
	part, qty int
	avg       map[int64]float64
}

// Type implements exec.Expr.
func (*belowAvgExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *belowAvgExpr) Eval(b *exec.Batch, out *exec.Vec) {
	out.Reset()
	out.T = storage.Int64
	for i := 0; i < b.N; i++ {
		if b.Vecs[e.qty].F64[i] < 0.2*e.avg[b.Vecs[e.part].I64[i]] {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

func q18() Plan {
	lCols := []string{"l_orderkey", "l_quantity"}
	oCols := []string{"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"}
	return func(db *DB, build ScanBuilder) exec.Op {
		// Orders with sum(quantity) > 300.
		qty := exec.Collect(&exec.HashAggr{
			Child:  build("lineitem", lCols, nil, false),
			Groups: []int{0},
			Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		})
		big := make(map[int64]bool)
		for i := 0; i < qty.N; i++ {
			if qty.Vecs[1].F64[i] > 300 {
				big[qty.Vecs[0].I64[i]] = true
			}
		}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(oCols, "o_orderkey"), Set: big},
		}
		return &exec.Sort{Child: orders,
			By:    []exec.SortSpec{{Col: col(oCols, "o_totalprice"), Desc: true}},
			Limit: 100}
	}
}

func q19() Plan {
	lCols := []string{"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct"}
	pCols := []string{"p_partkey", "p_brand", "p_container", "p_size"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred: exec.NewAnd(
				exec.InStr{Col: col(lCols, "l_shipmode"), Set: map[string]bool{"AIR": true, "REG AIR": true}},
				exec.StrEq{Col: col(lCols, "l_shipinstruct"), Val: "DELIVER IN PERSON"},
			),
		}
		part := build("part", pCols, nil, false)
		j := &exec.HashJoin{Build: part, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_partkey")}
		brand := len(lCols) + col(pCols, "p_brand")
		qty := col(lCols, "l_quantity")
		filt := &exec.Select{
			Child: j,
			Pred: exec.NewOr(
				exec.NewAnd(&eqExpr{brand, "Brand#12"},
					exec.NewCmp(">=", fcol(lCols, "l_quantity"), exec.ConstF(1)),
					exec.NewCmp("<=", exec.Col{Idx: qty, T: storage.Float64}, exec.ConstF(11))),
				exec.NewAnd(&eqExpr{brand, "Brand#23"},
					exec.NewCmp(">=", fcol(lCols, "l_quantity"), exec.ConstF(10)),
					exec.NewCmp("<=", exec.Col{Idx: qty, T: storage.Float64}, exec.ConstF(20))),
				exec.NewAnd(&eqExpr{brand, "Brand#34"},
					exec.NewCmp(">=", fcol(lCols, "l_quantity"), exec.ConstF(20)),
					exec.NewCmp("<=", exec.Col{Idx: qty, T: storage.Float64}, exec.ConstF(30))),
			),
		}
		proj := &exec.Project{Child: filt, Exprs: []exec.Expr{revenueExpr(lCols)}}
		return &exec.HashAggr{Child: proj, Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 0}}}
	}
}

func q20() Plan {
	psCols := []string{"ps_partkey", "ps_suppkey", "ps_availqty"}
	sCols := []string{"s_suppkey", "s_name", "s_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		// Half of shipped quantity per (part,supp) in 1994.
		shipped := exec.Collect(&exec.HashAggr{
			Child: &exec.Select{
				Child: build("lineitem", []string{"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"}, nil, false),
				Pred:  exec.Between(exec.Col{Idx: 3, T: storage.Int64}, Date(1994, 1, 1), Date(1995, 1, 1)-1),
			},
			Groups: []int{0, 1},
			Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 2}},
		})
		half := make(map[[2]int64]float64, shipped.N)
		for i := 0; i < shipped.N; i++ {
			half[[2]int64{shipped.Vecs[0].I64[i], shipped.Vecs[1].I64[i]}] = shipped.Vecs[2].F64[i] / 2
		}
		// Forest parts.
		parts := exec.Collect(&exec.Select{
			Child: build("part", []string{"p_partkey", "p_name"}, nil, false),
			Pred:  exec.StrPrefix{Col: 1, Prefix: "forest"},
		})
		forest := make(map[int64]bool, parts.N)
		for _, k := range parts.Vecs[0].I64 {
			forest[k] = true
		}
		ps := &exec.Select{
			Child: build("partsupp", psCols, nil, false),
			Pred: exec.NewAnd(
				&exec.InI64{Expr: icol(psCols, "ps_partkey"), Set: forest},
				&availExpr{pk: 0, sk: 1, qty: 2, half: half},
			),
		}
		supp := &exec.Select{
			Child: build("supplier", sCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(sCols, "s_nationkey"), Set: map[int64]bool{3: true}}, // CANADA
		}
		j := &exec.HashJoin{Build: supp, Probe: ps, BuildKey: 0, ProbeKey: col(psCols, "ps_suppkey")}
		return &exec.HashAggr{Child: j, Groups: []int{len(psCols) + col(sCols, "s_name")},
			Aggs: []exec.AggSpec{{Kind: exec.AggCount}}}
	}
}

// availExpr selects partsupp rows with availqty above half the shipped
// quantity of the (part, supplier) pair.
type availExpr struct {
	pk, sk, qty int
	half        map[[2]int64]float64
}

// Type implements exec.Expr.
func (*availExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *availExpr) Eval(b *exec.Batch, out *exec.Vec) {
	out.Reset()
	out.T = storage.Int64
	for i := 0; i < b.N; i++ {
		key := [2]int64{b.Vecs[e.pk].I64[i], b.Vecs[e.sk].I64[i]}
		if float64(b.Vecs[e.qty].I64[i]) > e.half[key] {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

func q21() Plan {
	lCols := []string{"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"}
	oCols := []string{"o_orderkey", "o_orderstatus"}
	sCols := []string{"s_suppkey", "s_name", "s_nationkey"}
	return func(db *DB, build ScanBuilder) exec.Op {
		line := &exec.Select{
			Child: build("lineitem", lCols, nil, false),
			Pred:  exec.NewCmp(">", icol(lCols, "l_receiptdate"), icol(lCols, "l_commitdate")),
		}
		orders := &exec.Select{
			Child: build("orders", oCols, nil, false),
			Pred:  exec.StrEq{Col: col(oCols, "o_orderstatus"), Val: "F"},
		}
		j := &exec.HashJoin{Build: orders, Probe: line, BuildKey: 0, ProbeKey: col(lCols, "l_orderkey")}
		supp := &exec.Select{
			Child: build("supplier", sCols, nil, false),
			Pred:  &exec.InI64{Expr: icol(sCols, "s_nationkey"), Set: map[int64]bool{20: true}}, // SAUDI ARABIA
		}
		js := &exec.HashJoin{Build: supp, Probe: j, BuildKey: 0, ProbeKey: col(lCols, "l_suppkey")}
		return &exec.Sort{
			Child: &exec.HashAggr{Child: js,
				Groups: []int{len(lCols) + len(oCols) + col(sCols, "s_name")},
				Aggs:   []exec.AggSpec{{Kind: exec.AggCount}}},
			By:    []exec.SortSpec{{Col: 1, Desc: true}},
			Limit: 100,
		}
	}
}

func q22() Plan {
	cCols := []string{"c_custkey", "c_phone", "c_acctbal"}
	oCols := []string{"o_orderkey", "o_custkey"}
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	return func(db *DB, build ScanBuilder) exec.Op {
		// Customers with orders (anti-join set).
		ordered := exec.Collect(build("orders", oCols, nil, false))
		hasOrder := make(map[int64]bool, ordered.N)
		for _, k := range ordered.Vecs[1].I64 {
			hasOrder[k] = true
		}
		noOrder := make(map[int64]bool)
		_ = noOrder
		cust := &exec.Select{
			Child: build("customer", cCols, nil, false),
			Pred: exec.NewAnd(
				&phonePrefixExpr{col(cCols, "c_phone"), codes},
				exec.NewCmp(">", fcol(cCols, "c_acctbal"), exec.ConstF(0)),
				&notInExpr{icol(cCols, "c_custkey"), hasOrder},
			),
		}
		proj := &exec.Project{Child: cust, Exprs: []exec.Expr{
			&phoneCodeExpr{col(cCols, "c_phone")},
			fcol(cCols, "c_acctbal"),
		}}
		return &exec.HashAggr{Child: proj, Groups: []int{0},
			Aggs: []exec.AggSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Col: 1}}}
	}
}

type phonePrefixExpr struct {
	col   int
	codes map[string]bool
}

// Type implements exec.Expr.
func (*phonePrefixExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *phonePrefixExpr) Eval(b *exec.Batch, out *exec.Vec) {
	out.Reset()
	out.T = storage.Int64
	for _, v := range b.Vecs[e.col].Str {
		if len(v) >= 2 && e.codes[v[:2]] {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

type phoneCodeExpr struct{ col int }

// Type implements exec.Expr.
func (*phoneCodeExpr) Type() storage.ColumnType { return storage.String }

// Eval implements exec.Expr.
func (e *phoneCodeExpr) Eval(b *exec.Batch, out *exec.Vec) {
	out.Reset()
	out.T = storage.String
	for _, v := range b.Vecs[e.col].Str {
		if len(v) >= 2 {
			out.Str = append(out.Str, v[:2])
		} else {
			out.Str = append(out.Str, v)
		}
	}
}

type notInExpr struct {
	e   exec.Expr
	set map[int64]bool
}

// Type implements exec.Expr.
func (*notInExpr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements exec.Expr.
func (e *notInExpr) Eval(b *exec.Batch, out *exec.Vec) {
	var tmp exec.Vec
	e.e.Eval(b, &tmp)
	out.Reset()
	out.T = storage.Int64
	for _, v := range tmp.I64 {
		if e.set[v] {
			out.I64 = append(out.I64, 0)
		} else {
			out.I64 = append(out.I64, 1)
		}
	}
}
