// Package tpch provides a deterministic TPC-H-shaped data generator and
// the query workloads of the paper's evaluation: the Q1/Q6 microbenchmark
// queries of §4.1 and the 22-query throughput mix of §4.2.
//
// The generator reproduces the schema (8 tables, 61 columns), the row
// multipliers and the value distributions that drive the paper's I/O
// patterns: which columns are scanned, their relative compressed widths,
// and predicate selectivities. Column widths model light columnar
// compression, so a chunk of tuples maps to very different page counts
// per column (§2). Text payloads (comments, names) carry realistic widths
// without storing bulky strings.
package tpch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/storage"
)

// Scale multipliers per TPC-H: rows at scale factor 1.
const (
	baseSupplier = 10_000
	basePart     = 200_000
	baseCustomer = 150_000
	baseOrders   = 1_500_000
)

// Epoch is day zero of the date encoding (1992-01-01). Dates are int64
// day counts relative to it; TPC-H order dates span about 7 years.
const (
	DateMin = 0    // 1992-01-01
	DateMax = 2556 // 1998-12-31 (two leap years in range)
)

// Date encodes year/month/day (1992..1998) as days since the epoch using
// a proleptic Gregorian day count.
func Date(y, m, d int) int64 {
	return civilDays(y, m, d) - civilDays(1992, 1, 1)
}

// civilDays counts days since an arbitrary fixed origin (Howard Hinnant's
// days_from_civil algorithm).
func civilDays(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int64
	ye := int64(y)
	if ye >= 0 {
		era = ye / 400
	} else {
		era = (ye - 399) / 400
	}
	yoe := ye - era*400
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe
}

// DB holds the generated tables and their committed snapshots.
type DB struct {
	Catalog *storage.Catalog
	SF      float64
	snaps   map[string]*storage.Snapshot
}

// Snapshot returns the committed snapshot of the named table.
func (db *DB) Snapshot(name string) *storage.Snapshot {
	s, ok := db.snaps[name]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
	return s
}

// Col returns the column index of table.column.
func (db *DB) Col(table, col string) int {
	i := db.Snapshot(table).Table().Schema.ColIndex(col)
	if i < 0 {
		panic(fmt.Sprintf("tpch: unknown column %s.%s", table, col))
	}
	return i
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers   = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO BAG", "JUMBO BOX", "JUMBO PACK", "WRAP CASE", "WRAP BOX"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
)

// GenOptions parameterizes generation beyond scale factor and seed.
type GenOptions struct {
	// ClusteredShipdate sorts lineitem by l_shipdate before load (a
	// stable sort, so generation stays deterministic). TPC-H generates
	// shipdates nearly uniformly across the date domain, which leaves
	// every zone-map block spanning the whole domain and nothing to
	// prune; clustering is the physical structure MinMax data skipping
	// exploits (Vectorwise tables are typically date-clustered).
	ClusteredShipdate bool
}

// Generate builds all eight tables at the given scale factor. The same
// seed always yields identical data.
func Generate(sf float64, seed int64) *DB {
	return GenerateOpt(sf, seed, GenOptions{})
}

// GenerateOpt is Generate with generation options; Generate(sf, seed) is
// GenerateOpt(sf, seed, GenOptions{}) and stays byte-identical to the
// historical generator.
func GenerateOpt(sf float64, seed int64, opt GenOptions) *DB {
	if sf <= 0 {
		panic("tpch: scale factor must be positive")
	}
	db := &DB{Catalog: storage.NewCatalog(), SF: sf, snaps: make(map[string]*storage.Snapshot)}
	rng := rand.New(rand.NewSource(seed))
	db.genRegion()
	db.genNation()
	nSupp := scaled(baseSupplier, sf)
	nPart := scaled(basePart, sf)
	nCust := scaled(baseCustomer, sf)
	nOrd := scaled(baseOrders, sf)
	db.genSupplier(rng, nSupp)
	db.genPart(rng, nPart)
	db.genPartsupp(rng, nPart, nSupp)
	db.genCustomer(rng, nCust)
	db.genOrdersAndLineitem(rng, nOrd, nCust, nPart, nSupp, opt)
	return db
}

// sortColumnsBy reorders every column of d by ascending values of int64
// column col, using a stable permutation so equal keys keep generation
// order (determinism).
func sortColumnsBy(d *storage.ColumnData, col int) {
	key := d.I64[col]
	perm := make([]int, len(key))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	for c, vs := range d.I64 {
		out := make([]int64, len(vs))
		for i, p := range perm {
			out[i] = vs[p]
		}
		d.I64[c] = out
	}
	for c, vs := range d.F64 {
		out := make([]float64, len(vs))
		for i, p := range perm {
			out[i] = vs[p]
		}
		d.F64[c] = out
	}
	for c, vs := range d.Str {
		out := make([]string, len(vs))
		for i, p := range perm {
			out[i] = vs[p]
		}
		d.Str[c] = out
	}
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func (db *DB) create(name string, schema storage.Schema, data *storage.ColumnData) {
	t, err := db.Catalog.CreateTable(name, schema)
	if err != nil {
		panic(err)
	}
	s, err := t.Master().Append(data)
	if err != nil {
		panic(err)
	}
	if err := s.Commit(); err != nil {
		panic(err)
	}
	db.snaps[name] = s
}

func (db *DB) genRegion() {
	schema := storage.Schema{
		{Name: "r_regionkey", Type: storage.Int64, Width: 1},
		{Name: "r_name", Type: storage.String, Width: 1},
		{Name: "r_comment", Type: storage.String, Width: 32},
	}
	d := storage.NewColumnData()
	for i, name := range regionNames {
		d.I64[0] = append(d.I64[0], int64(i))
		d.Str[1] = append(d.Str[1], name)
		d.Str[2] = append(d.Str[2], "region comment")
	}
	db.create("region", schema, d)
}

func (db *DB) genNation() {
	schema := storage.Schema{
		{Name: "n_nationkey", Type: storage.Int64, Width: 1},
		{Name: "n_name", Type: storage.String, Width: 2},
		{Name: "n_regionkey", Type: storage.Int64, Width: 1},
		{Name: "n_comment", Type: storage.String, Width: 32},
	}
	d := storage.NewColumnData()
	for i, name := range nationNames {
		d.I64[0] = append(d.I64[0], int64(i))
		d.Str[1] = append(d.Str[1], name)
		d.I64[2] = append(d.I64[2], nationRegion[i])
		d.Str[3] = append(d.Str[3], "nation comment")
	}
	db.create("nation", schema, d)
}

func (db *DB) genSupplier(rng *rand.Rand, n int) {
	schema := storage.Schema{
		{Name: "s_suppkey", Type: storage.Int64, Width: 4},
		{Name: "s_name", Type: storage.String, Width: 8},
		{Name: "s_address", Type: storage.String, Width: 12},
		{Name: "s_nationkey", Type: storage.Int64, Width: 1},
		{Name: "s_phone", Type: storage.String, Width: 8},
		{Name: "s_acctbal", Type: storage.Float64, Width: 4},
		{Name: "s_comment", Type: storage.String, Width: 32},
	}
	d := storage.NewColumnData()
	for i := 0; i < n; i++ {
		nk := int64(rng.Intn(25))
		d.I64[0] = append(d.I64[0], int64(i+1))
		d.Str[1] = append(d.Str[1], fmt.Sprintf("Supplier#%09d", i+1))
		d.Str[2] = append(d.Str[2], "addr")
		d.I64[3] = append(d.I64[3], nk)
		d.Str[4] = append(d.Str[4], fmt.Sprintf("%d-555-%04d", nk+10, i%10000))
		d.F64[5] = append(d.F64[5], float64(rng.Intn(2000000))/100-1000)
		if rng.Intn(100) < 1 {
			d.Str[6] = append(d.Str[6], "blah Customer blah Complaints blah")
		} else {
			d.Str[6] = append(d.Str[6], "supplier comment")
		}
	}
	db.create("supplier", schema, d)
}

func (db *DB) genPart(rng *rand.Rand, n int) {
	schema := storage.Schema{
		{Name: "p_partkey", Type: storage.Int64, Width: 4},
		{Name: "p_name", Type: storage.String, Width: 16},
		{Name: "p_mfgr", Type: storage.String, Width: 1},
		{Name: "p_brand", Type: storage.String, Width: 1},
		{Name: "p_type", Type: storage.String, Width: 1},
		{Name: "p_size", Type: storage.Int64, Width: 1},
		{Name: "p_container", Type: storage.String, Width: 1},
		{Name: "p_retailprice", Type: storage.Float64, Width: 4},
		{Name: "p_comment", Type: storage.String, Width: 16},
	}
	names := []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "green", "forest"}
	d := storage.NewColumnData()
	for i := 0; i < n; i++ {
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		d.I64[0] = append(d.I64[0], int64(i+1))
		d.Str[1] = append(d.Str[1], names[rng.Intn(len(names))]+" "+names[rng.Intn(len(names))])
		d.Str[2] = append(d.Str[2], fmt.Sprintf("Manufacturer#%d", mfgr))
		d.Str[3] = append(d.Str[3], fmt.Sprintf("Brand#%d", brand))
		d.Str[4] = append(d.Str[4], typeSyl1[rng.Intn(6)]+" "+typeSyl2[rng.Intn(5)]+" "+typeSyl3[rng.Intn(5)])
		d.I64[5] = append(d.I64[5], int64(rng.Intn(50)+1))
		d.Str[6] = append(d.Str[6], containers[rng.Intn(len(containers))])
		d.F64[7] = append(d.F64[7], 900+float64((i+1)%200)+float64(rng.Intn(100))/100)
		d.Str[8] = append(d.Str[8], "part comment")
	}
	db.create("part", schema, d)
}

func (db *DB) genPartsupp(rng *rand.Rand, nPart, nSupp int) {
	schema := storage.Schema{
		{Name: "ps_partkey", Type: storage.Int64, Width: 4},
		{Name: "ps_suppkey", Type: storage.Int64, Width: 4},
		{Name: "ps_availqty", Type: storage.Int64, Width: 2},
		{Name: "ps_supplycost", Type: storage.Float64, Width: 4},
		{Name: "ps_comment", Type: storage.String, Width: 48},
	}
	d := storage.NewColumnData()
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			sk := int64((p+j*(nSupp/4+1))%nSupp) + 1
			d.I64[0] = append(d.I64[0], int64(p))
			d.I64[1] = append(d.I64[1], sk)
			d.I64[2] = append(d.I64[2], int64(rng.Intn(9999)+1))
			d.F64[3] = append(d.F64[3], float64(rng.Intn(100000))/100+1)
			d.Str[4] = append(d.Str[4], "partsupp comment")
		}
	}
	db.create("partsupp", schema, d)
}

func (db *DB) genCustomer(rng *rand.Rand, n int) {
	schema := storage.Schema{
		{Name: "c_custkey", Type: storage.Int64, Width: 4},
		{Name: "c_name", Type: storage.String, Width: 8},
		{Name: "c_address", Type: storage.String, Width: 12},
		{Name: "c_nationkey", Type: storage.Int64, Width: 1},
		{Name: "c_phone", Type: storage.String, Width: 8},
		{Name: "c_acctbal", Type: storage.Float64, Width: 4},
		{Name: "c_mktsegment", Type: storage.String, Width: 1},
		{Name: "c_comment", Type: storage.String, Width: 32},
	}
	d := storage.NewColumnData()
	for i := 0; i < n; i++ {
		nk := int64(rng.Intn(25))
		d.I64[0] = append(d.I64[0], int64(i+1))
		d.Str[1] = append(d.Str[1], fmt.Sprintf("Customer#%09d", i+1))
		d.Str[2] = append(d.Str[2], "addr")
		d.I64[3] = append(d.I64[3], nk)
		d.Str[4] = append(d.Str[4], fmt.Sprintf("%02d-555-%04d", nk+10, i%10000))
		d.F64[5] = append(d.F64[5], float64(rng.Intn(2000000))/100-1000)
		d.Str[6] = append(d.Str[6], segments[rng.Intn(5)])
		d.Str[7] = append(d.Str[7], "customer comment")
	}
	db.create("customer", schema, d)
}

func (db *DB) genOrdersAndLineitem(rng *rand.Rand, nOrd, nCust, nPart, nSupp int, opt GenOptions) {
	oSchema := storage.Schema{
		{Name: "o_orderkey", Type: storage.Int64, Width: 4},
		{Name: "o_custkey", Type: storage.Int64, Width: 4},
		{Name: "o_orderstatus", Type: storage.String, Width: 1},
		{Name: "o_totalprice", Type: storage.Float64, Width: 4},
		{Name: "o_orderdate", Type: storage.Int64, Width: 2},
		{Name: "o_orderpriority", Type: storage.String, Width: 1},
		{Name: "o_clerk", Type: storage.String, Width: 4},
		{Name: "o_shippriority", Type: storage.Int64, Width: 1},
		{Name: "o_comment", Type: storage.String, Width: 32},
	}
	lSchema := storage.Schema{
		{Name: "l_orderkey", Type: storage.Int64, Width: 4},
		{Name: "l_partkey", Type: storage.Int64, Width: 4},
		{Name: "l_suppkey", Type: storage.Int64, Width: 4},
		{Name: "l_linenumber", Type: storage.Int64, Width: 1},
		{Name: "l_quantity", Type: storage.Float64, Width: 2},
		{Name: "l_extendedprice", Type: storage.Float64, Width: 4},
		{Name: "l_discount", Type: storage.Float64, Width: 1},
		{Name: "l_tax", Type: storage.Float64, Width: 1},
		{Name: "l_returnflag", Type: storage.String, Width: 1},
		{Name: "l_linestatus", Type: storage.String, Width: 1},
		{Name: "l_shipdate", Type: storage.Int64, Width: 2},
		{Name: "l_commitdate", Type: storage.Int64, Width: 2},
		{Name: "l_receiptdate", Type: storage.Int64, Width: 2},
		{Name: "l_shipinstruct", Type: storage.String, Width: 1},
		{Name: "l_shipmode", Type: storage.String, Width: 1},
		{Name: "l_comment", Type: storage.String, Width: 16},
	}
	od := storage.NewColumnData()
	ld := storage.NewColumnData()
	currentDate := Date(1995, 6, 17)
	for o := 0; o < nOrd; o++ {
		okey := int64(o + 1)
		odate := int64(rng.Intn(DateMax - 151))
		nl := rng.Intn(7) + 1
		var total float64
		status := "O"
		allF := true
		anyF := false
		for ln := 0; ln < nl; ln++ {
			pk := int64(rng.Intn(nPart) + 1)
			sk := int64(rng.Intn(nSupp) + 1)
			qty := float64(rng.Intn(50) + 1)
			price := qty * (900 + float64(pk%200) + 1)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + int64(rng.Intn(121)+1)
			commit := odate + int64(rng.Intn(61)+30)
			receipt := ship + int64(rng.Intn(30)+1)
			rf := "N"
			if receipt <= currentDate {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= currentDate {
				ls = "F"
				anyF = true
			} else {
				allF = false
			}
			ld.I64[0] = append(ld.I64[0], okey)
			ld.I64[1] = append(ld.I64[1], pk)
			ld.I64[2] = append(ld.I64[2], sk)
			ld.I64[3] = append(ld.I64[3], int64(ln+1))
			ld.F64[4] = append(ld.F64[4], qty)
			ld.F64[5] = append(ld.F64[5], price)
			ld.F64[6] = append(ld.F64[6], disc)
			ld.F64[7] = append(ld.F64[7], tax)
			ld.Str[8] = append(ld.Str[8], rf)
			ld.Str[9] = append(ld.Str[9], ls)
			ld.I64[10] = append(ld.I64[10], ship)
			ld.I64[11] = append(ld.I64[11], commit)
			ld.I64[12] = append(ld.I64[12], receipt)
			ld.Str[13] = append(ld.Str[13], instructs[rng.Intn(4)])
			ld.Str[14] = append(ld.Str[14], shipModes[rng.Intn(7)])
			ld.Str[15] = append(ld.Str[15], "lineitem comment")
			total += price * (1 - disc) * (1 + tax)
		}
		if allF && anyF {
			status = "F"
		} else if anyF {
			status = "P"
		}
		od.I64[0] = append(od.I64[0], okey)
		od.I64[1] = append(od.I64[1], int64(rng.Intn(nCust)+1))
		od.Str[2] = append(od.Str[2], status)
		od.F64[3] = append(od.F64[3], total)
		od.I64[4] = append(od.I64[4], odate)
		od.Str[5] = append(od.Str[5], priorities[rng.Intn(5)])
		od.Str[6] = append(od.Str[6], fmt.Sprintf("Clerk#%06d", rng.Intn(1000)))
		od.I64[7] = append(od.I64[7], 0)
		od.Str[8] = append(od.Str[8], "order comment")
	}
	db.create("orders", oSchema, od)
	if opt.ClusteredShipdate {
		sortColumnsBy(ld, 10) // l_shipdate
	}
	db.create("lineitem", lSchema, ld)
}
