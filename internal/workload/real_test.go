package workload

import (
	"testing"
	"time"
)

// tinyRealServeConfig shrinks the serving run so a wall-clock run stays
// well under a second: high arrival rate, few queries, fast modeled disk.
func tinyRealServeConfig() ServeConfig {
	cfg := tinyServeConfig()
	cfg.Real = true
	cfg.Streams = 8
	cfg.QueriesPerStream = 2
	cfg.ArrivalRate = 200
	cfg.BandwidthMB = 4000
	cfg.ThreadsPerQuery = 2 // exercise the real XChg worker-pool path
	return cfg
}

// TestRunServeRealSmoke runs the full serving stack — open-loop clients,
// scheduler, sharded pool (and the ABM for CScan) — on the real-threaded
// runtime. Run under -race this is the end-to-end concurrency check of
// the Runtime refactor.
func TestRunServeRealSmoke(t *testing.T) {
	for _, pol := range []Policy{LRU, PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyRealServeConfig()
			cfg.Policy = pol
			type outcome struct{ res *ServeResult }
			ch := make(chan outcome, 1)
			go func() { ch <- outcome{RunServe(tinyDB, cfg)} }()
			var res *ServeResult
			select {
			case o := <-ch:
				res = o.res
			case <-time.After(120 * time.Second):
				t.Fatal("real-mode serve run hung")
			}
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if res.Sched.Arrived != want {
				t.Fatalf("arrived %d, want %d", res.Sched.Arrived, want)
			}
			if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", res.Sched)
			}
			if res.Sched.Completed > 0 && res.Sched.Latency.P50 <= 0 {
				t.Fatalf("no wall-clock latency recorded: %+v", res.Sched.Latency)
			}
			if res.TotalIOBytes <= 0 {
				t.Fatal("no I/O recorded")
			}
		})
	}
}

func TestRunMicroRealSmoke(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Real = true
	cfg.Streams = 2
	cfg.QueriesPerStream = 2
	cfg.BandwidthMB = 4000
	res := RunMicro(tinyDB, cfg)
	if res.AvgStreamSec <= 0 || res.TotalIOBytes <= 0 {
		t.Fatalf("bad real-mode result: %+v", res)
	}
}

// TestRunCompareShowsCoordinatedOmission: under overload, the open-loop
// latency distribution must dominate the closed-loop one — the queueing
// delay closed-loop measurement hides. Run on the simulator so the
// assertion is deterministic.
func TestRunCompareShowsCoordinatedOmission(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = PBM
	cfg.MPL = 2
	cfg.QueueDepth = -1 // rejections would cap the open-loop queue
	cfg.QueriesPerStream = 6
	cfg.ArrivalRate = 500 // far beyond capacity at MPL 2
	res := RunCompare(tinyDB, cfg)
	if res.Open.Sched.Completed == 0 || res.Closed.Sched.Completed == 0 {
		t.Fatalf("empty runs: open %+v closed %+v", res.Open.Sched, res.Closed.Sched)
	}
	if res.Open.Sched.Latency.P95 <= res.Closed.Sched.Latency.P95 {
		t.Fatalf("open-loop p95 %v not above closed-loop p95 %v under overload",
			res.Open.Sched.Latency.P95, res.Closed.Sched.Latency.P95)
	}
	// The gap is queue wait: the closed loop self-throttles, so its queue
	// wait must be (weakly) smaller at the median too.
	if res.Open.Sched.QueueWait.P50 < res.Closed.Sched.QueueWait.P50 {
		t.Fatalf("open-loop queue wait p50 %v below closed-loop %v",
			res.Open.Sched.QueueWait.P50, res.Closed.Sched.QueueWait.P50)
	}
}

// TestRunCompareClosedLoopDeterministic: the new closed-loop discipline
// must be as reproducible as the rest of the simulator.
func TestRunCompareClosedLoopDeterministic(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = LRU
	cfg.ClosedLoop = true
	a := RunServe(tinyDB, cfg)
	b := RunServe(tinyDB, cfg)
	if a.Sched != b.Sched {
		t.Fatalf("closed-loop run not bit-identical:\n%+v\n%+v", a.Sched, b.Sched)
	}
}
