package workload

import (
	"math/rand"

	"repro/internal/exec"
	"repro/internal/minmax"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// anySelective reports whether any mix entry actually restricts a scan
// (selectivity below 1): only then is the zone-map machinery worth
// wiring up.
func anySelective(mixes ...[]float64) bool {
	for _, mix := range mixes {
		for _, sel := range mix {
			if sel > 0 && sel < 1 {
				return true
			}
		}
	}
	return false
}

// setupSkipping builds the lineitem l_shipdate zone map — block size =
// the ABM chunk granularity, so pruning decisions align with chunk
// boundaries — and wires pruning and the skip counters into the
// execution context. A no-op unless some mix entry is selective, so runs
// without a selectivity axis stay bit-identical to the historical
// engine. The build reads stable storage directly (no modeled I/O), the
// way Vectorwise maintains MinMax indexes during load.
func (e *env) setupSkipping(db *tpch.DB, mixes ...[]float64) {
	if !anySelective(mixes...) {
		return
	}
	snap := db.Snapshot("lineitem")
	col := db.Col("lineitem", "l_shipdate")
	e.ctx.Zones = exec.NewZoneMaps()
	e.ctx.Skip = &exec.SkipStats{}
	e.predIx = e.ctx.Zones.Build(snap, col, e.cfg.ChunkTuples)
	e.predCol = col
	e.dateMin, e.dateMax, _ = e.predIx.ValueBounds()
}

// pickPredicate draws one query's shipdate restriction from the
// selectivity mix: a value window spanning sel of the column's domain at
// a random position, or nil for an unrestricted scan. The rng discipline
// is golden-critical: an empty mix draws nothing, a single-entry mix
// skips the mix draw, and selectivity >= 1 draws no window — so
// configurations without a selectivity axis consume exactly the
// historical rng stream.
func (e *env) pickPredicate(rng *rand.Rand, mix []float64) *exec.ScanPredicate {
	if len(mix) == 0 {
		return nil
	}
	sel := mix[0]
	if len(mix) > 1 {
		sel = mix[rng.Intn(len(mix))]
	}
	return e.drawWindow(rng, sel)
}

// drawWindow draws one shipdate window of the given selectivity at a
// random position — pickPredicate's draw step, shared with the serving
// engine's per-request predicate service. Consumes exactly one rng draw
// when the window is placeable and none otherwise (golden-critical).
func (e *env) drawWindow(rng *rand.Rand, sel float64) *exec.ScanPredicate {
	if sel >= 1 || e.predIx == nil {
		return nil
	}
	domain := e.dateMax - e.dateMin + 1
	span := int64(float64(domain)*sel + 0.5)
	if span < 1 {
		span = 1
	}
	lo := e.dateMin
	if maxStart := domain - span; maxStart > 0 {
		lo += rng.Int63n(maxStart + 1)
	}
	return &exec.ScanPredicate{Col: e.predCol, Lo: lo, Hi: lo + span - 1}
}

// RandRange draws one query's scan range exactly as the serving
// driver's stream loop does — exported for cmd/scanload, which
// reproduces the sweep's query mix client-side over the socket.
func RandRange(rng *rand.Rand, n int64, pct int, hotFrac, hotProb float64) exec.RIDRange {
	return randRangeSkewed(rng, n, pct, hotFrac, hotProb)
}

// survivingTuples prices a predicate scan for admission: the tuples the
// zone map says survive pruning. This is what makes EstimateScanTime
// skip-aware — a 1%-selective scan over clustered data is priced (and
// admitted under sesf/wfq) as ~100x cheaper than a full scan of the
// same range.
func (e *env) survivingTuples(r exec.RIDRange, pred *exec.ScanPredicate) int64 {
	if pred == nil || e.predIx == nil {
		return r.Hi - r.Lo
	}
	return e.predIx.CountRange(r.Lo, r.Hi, pred.Lo, pred.Hi)
}

// wrapPred decorates the policy builder for one query: lineitem scans
// carry the predicate (zone-map pruning at Open), and a Select applies
// the exact filter on top, since block-granular pruning is conservative.
func (e *env) wrapPred(db *tpch.DB, base tpch.ScanBuilder, pred *exec.ScanPredicate) tpch.ScanBuilder {
	if pred == nil {
		return base
	}
	return func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		op := base(table, cols, ranges, inOrder)
		if table != "lineitem" {
			return op
		}
		switch s := op.(type) {
		case *exec.Scan:
			s.Pred = pred
		case *exec.CScan:
			s.Pred = pred
		}
		pos := -1
		for i, c := range cols {
			if db.Col(table, c) == pred.Col {
				pos = i
				break
			}
		}
		if pos < 0 {
			// The scan does not produce the predicate column; pruning
			// still applies, exact filtering is the plan's own job.
			return op
		}
		return &exec.Select{
			Child: op,
			Pred:  exec.Between(exec.Col{Idx: pos, T: storage.Int64}, pred.Lo, pred.Hi),
		}
	}
}

// skipEnv is the per-env zone-map state (fields live on env; declared
// here with the machinery that uses them).
type skipEnv struct {
	predIx           *minmax.Index
	predCol          int
	dateMin, dateMax int64
}
