package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/tpch"
)

// tinyDB is shared across tests: generation is deterministic and the
// structures are read-only for the drivers.
var tinyDB = tpch.Generate(0.004, 11)

func tinyMicroConfig() Config {
	cfg := DefaultMicroConfig()
	cfg.Streams = 4
	cfg.QueriesPerStream = 4
	cfg.ThreadsPerQuery = 2
	cfg.PerTupleCPU = 20 * time.Nanosecond
	return cfg
}

func TestRunMicroAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyMicroConfig()
			cfg.Policy = pol
			res := RunMicro(tinyDB, cfg)
			if res.AvgStreamSec <= 0 {
				t.Fatalf("avg stream time = %v", res.AvgStreamSec)
			}
			if res.TotalIOBytes <= 0 {
				t.Fatalf("no I/O recorded")
			}
			if res.TotalIOBytes > 100*res.AccessedBytes {
				t.Fatalf("absurd I/O volume: %d vs accessed %d", res.TotalIOBytes, res.AccessedBytes)
			}
		})
	}
}

func TestRunMicroDeterministic(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	a := RunMicro(tinyDB, cfg)
	b := RunMicro(tinyDB, cfg)
	if a.AvgStreamSec != b.AvgStreamSec || a.TotalIOBytes != b.TotalIOBytes {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.AvgStreamSec, a.TotalIOBytes, b.AvgStreamSec, b.TotalIOBytes)
	}
}

// TestMicroShapePBMBeatsLRUSmallPool is the core claim of Figure 11: at a
// mid-size buffer pool, PBM and CScans do much less I/O than LRU. It
// needs a database large enough that the 40% pool is above the pool's
// minimum size, so the fraction is honest.
func TestMicroShapePBMBeatsLRUSmallPool(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping disk-bound shape experiment in -short mode (generates a larger database)")
	}
	// The configuration mirrors the regime the paper evaluates in: the
	// disk is the bottleneck, so scans are long-lived and overlap — the
	// precondition for scan-aware buffering to pay off (see
	// EXPERIMENTS.md for the CPU-bound inversion at simulation scale).
	db := tpch.Generate(0.02, 11)
	base := tinyMicroConfig()
	base.Streams = 8
	base.QueriesPerStream = 4
	base.ThreadsPerQuery = 1
	base.BandwidthMB = 300
	base.BufferFrac = 0.4
	base.RangePercents = []int{100}

	run := func(p Policy) *Result {
		cfg := base
		cfg.Policy = p
		return RunMicro(db, cfg)
	}
	lru := run(LRU)
	pbmRes := run(PBM)
	cscan := run(CScan)
	if pbmRes.TotalIOBytes >= lru.TotalIOBytes {
		t.Errorf("PBM I/O %d >= LRU I/O %d", pbmRes.TotalIOBytes, lru.TotalIOBytes)
	}
	if cscan.TotalIOBytes >= lru.TotalIOBytes {
		t.Errorf("CScans I/O %d >= LRU I/O %d", cscan.TotalIOBytes, lru.TotalIOBytes)
	}
}

// TestOPTNoWorseThanPBM: replaying the PBM trace under OPT must not do
// more I/O than PBM did (OPT is optimal among order-preserving policies).
func TestOPTNoWorseThanPBM(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.TraceForOPT = true
	res := RunMicro(tinyDB, cfg)
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	optBytes := res.OPTIOBytes()
	if optBytes > res.TotalIOBytes {
		t.Fatalf("OPT I/O %d > PBM I/O %d", optBytes, res.TotalIOBytes)
	}
	if optBytes <= 0 {
		t.Fatal("OPT I/O is zero")
	}
}

func TestFullBufferNoRereads(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = LRU
	cfg.BufferFrac = 1.0
	res := RunMicro(tinyDB, cfg)
	// With the pool holding all accessed data, I/O equals cold misses
	// only: at most the accessed volume.
	if res.TotalIOBytes > res.AccessedBytes {
		t.Fatalf("I/O %d exceeds accessed volume %d at 100%% buffer", res.TotalIOBytes, res.AccessedBytes)
	}
}

func TestBandwidthChangesTimeNotIO(t *testing.T) {
	slow := tinyMicroConfig()
	slow.Policy = PBM
	slow.BandwidthMB = 200
	fast := slow
	fast.BandwidthMB = 2000
	rs := RunMicro(tinyDB, slow)
	rf := RunMicro(tinyDB, fast)
	if rf.AvgStreamSec >= rs.AvgStreamSec {
		t.Errorf("faster disk did not reduce stream time: %v vs %v", rf.AvgStreamSec, rs.AvgStreamSec)
	}
	// I/O volume stays approximately constant (paper: Figure 12, right).
	lo, hi := rs.TotalIOBytes*8/10, rs.TotalIOBytes*12/10
	if rf.TotalIOBytes < lo || rf.TotalIOBytes > hi {
		t.Errorf("I/O volume shifted with bandwidth: %d vs %d", rf.TotalIOBytes, rs.TotalIOBytes)
	}
}

func TestRunTPCHAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := DefaultTPCHConfig()
			cfg.Policy = pol
			cfg.Streams = 2
			cfg.QueriesPerStream = 6 // truncate for test speed
			res := RunTPCH(tinyDB, cfg)
			if res.AvgStreamSec <= 0 || res.TotalIOBytes <= 0 {
				t.Fatalf("bad result: %+v", res)
			}
		})
	}
}

func TestTPCHAccessedBytesStable(t *testing.T) {
	a := TPCHAccessedBytes(tinyDB)
	b := TPCHAccessedBytes(tinyDB)
	if a != b || a <= 0 {
		t.Fatalf("accessed bytes = %d / %d", a, b)
	}
	// The 22 queries touch most of the database.
	var total int64
	for _, tb := range tinyDB.Catalog.Tables() {
		total += tb.Master().TotalBytes(nil)
	}
	if a > total {
		t.Fatalf("accessed %d exceeds database size %d", a, total)
	}
	if a < total/4 {
		t.Fatalf("accessed %d suspiciously small vs database %d", a, total)
	}
}

func TestSharingSamplerProducesSeries(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.SharingSampler = 2 * time.Millisecond
	cfg.RangePercents = []int{100}
	res := RunMicro(tinyDB, cfg)
	if len(res.Sharing) == 0 {
		t.Fatal("no sharing samples")
	}
	anyShared := false
	for _, s := range res.Sharing {
		if s.T <= 0 {
			t.Fatal("bad sample time")
		}
		if s.Bytes[1]+s.Bytes[2]+s.Bytes[3] > 0 {
			anyShared = true
		}
	}
	if !anyShared {
		t.Fatal("full-table concurrent scans show no sharing potential")
	}
}

func TestRandRangeWithinTable(t *testing.T) {
	n := int64(10000)
	for seed := int64(0); seed < 20; seed++ {
		r := randRange(rand.New(rand.NewSource(seed)), n, 50)
		if r.Lo < 0 || r.Hi > n || r.Hi-r.Lo != n/2 {
			t.Fatalf("bad range %+v", r)
		}
	}
	// 1% of a tiny table still yields at least one tuple.
	r := randRange(rand.New(rand.NewSource(1)), 10, 1)
	if r.Hi-r.Lo < 1 {
		t.Fatalf("empty range %+v", r)
	}
}

func TestStreamTimesIncludeAllStreams(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.Streams = 3
	res := RunMicro(tinyDB, cfg)
	if res.MaxStreamSec < res.AvgStreamSec {
		t.Fatalf("max %v < avg %v", res.MaxStreamSec, res.AvgStreamSec)
	}
}

func TestMoreStreamsMoreIO(t *testing.T) {
	small := tinyMicroConfig()
	small.Policy = LRU
	small.Streams = 1
	big := small
	big.Streams = 8
	rs := RunMicro(tinyDB, small)
	rb := RunMicro(tinyDB, big)
	if rb.TotalIOBytes <= rs.TotalIOBytes {
		t.Fatalf("8 streams I/O %d <= 1 stream I/O %d", rb.TotalIOBytes, rs.TotalIOBytes)
	}
}
