package workload

import (
	"math/rand"

	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// microColumns is the union of columns the microbenchmark queries (Q1 and
// Q6) access on lineitem; the accessed data volume of §4.1 is their total
// byte size (Q6's columns are a subset of Q1's).
var microColumns = []string{
	"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
	"l_discount", "l_tax", "l_shipdate",
}

// MicroAccessedBytes returns the §4.1 accessed data volume for a
// generated database.
func MicroAccessedBytes(db *tpch.DB) int64 {
	snap := db.Snapshot("lineitem")
	cols := make([]int, len(microColumns))
	for i, c := range microColumns {
		cols[i] = db.Col("lineitem", c)
	}
	return snap.TotalBytes(cols)
}

// RunMicro executes the §4.1 microbenchmark: Streams concurrent streams
// of QueriesPerStream queries, each a Q1 or Q6 over a random range whose
// size is drawn from RangePercents, with ThreadsPerQuery-way parallel
// plans (Equation 1 partitioning).
func RunMicro(db *tpch.DB, cfg Config) *Result {
	if cfg.QueriesPerStream <= 0 {
		cfg.QueriesPerStream = 16
	}
	accessed := MicroAccessedBytes(db)
	e := newEnv(cfg, accessed)
	e.setupSkipping(db, cfg.Selectivities)
	build := e.builder(db)
	n := db.Snapshot("lineitem").NumTuples()

	streamEnds := make([]sim.Time, cfg.Streams)
	wg := e.rt.NewWaitGroup()
	stopSampler := e.sharingSampler()
	for s := 0; s < cfg.Streams; s++ {
		s := s
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*7919))
		wg.Add(1)
		e.rt.Go("stream", func() {
			defer wg.Done()
			for q := 0; q < cfg.QueriesPerStream; q++ {
				pct := cfg.RangePercents[rng.Intn(len(cfg.RangePercents))]
				r := randRangeSkewed(rng, n, pct, cfg.HotFrac, cfg.HotProb)
				useQ1 := rng.Intn(2) == 0
				pred := e.pickPredicate(rng, cfg.Selectivities)
				exec.Drain(e.microPlan(db, e.wrapPred(db, build, pred), r, useQ1))
			}
			streamEnds[s] = e.rt.Now()
		})
	}
	e.rt.Go("driver", func() {
		wg.Wait()
		stopSampler.Fire()
		if e.abm != nil {
			e.abm.Stop()
		}
	})
	e.rt.Run()
	return e.finish(streamEnds)
}

// microPlan builds a parallel Q1 or Q6 plan over the given range: the
// range is statically partitioned per Equation 1, each partition runs the
// scan+select+partial-aggregation subtree, and a final aggregation merges
// them — the Figure 8 plan transformation.
func (e *env) microPlan(db *tpch.DB, build tpch.ScanBuilder, r exec.RIDRange, useQ1 bool) exec.Op {
	return e.microPlanCtx(e.ctx, db, build, r, useQ1)
}

// microPlanCtx is microPlan with an explicit execution context, so the
// serving path can bind the whole plan — XChg fan-out included — to one
// query's lifecycle.
func (e *env) microPlanCtx(ctx *exec.Ctx, db *tpch.DB, build tpch.ScanBuilder, r exec.RIDRange, useQ1 bool) exec.Op {
	threads := e.cfg.ThreadsPerQuery
	if threads <= 1 {
		if useQ1 {
			return tpch.Q1([]exec.RIDRange{r})(db, build)
		}
		return tpch.Q6([]exec.RIDRange{r})(db, build)
	}
	parts := make([]func() exec.Op, 0, threads)
	for _, pr := range exec.PartitionRange(r.Lo, r.Hi, threads) {
		pr := pr
		parts = append(parts, func() exec.Op {
			if useQ1 {
				return tpch.Q1([]exec.RIDRange{pr})(db, build)
			}
			return tpch.Q6([]exec.RIDRange{pr})(db, build)
		})
	}
	merged := e.parallelCtx(ctx, parts)
	if useQ1 {
		// Partial Q1 aggregates share the group-by schema: re-aggregate.
		return &exec.HashAggr{
			Child:  merged,
			Groups: []int{0, 1},
			Aggs: []exec.AggSpec{
				{Kind: exec.AggSum, Col: 2}, {Kind: exec.AggSum, Col: 3},
				{Kind: exec.AggSum, Col: 4}, {Kind: exec.AggSum, Col: 5},
				{Kind: exec.AggSum, Col: 9},
			},
		}
	}
	return &exec.HashAggr{Child: merged, Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 0}}}
}
