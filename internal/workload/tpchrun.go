package workload

import (
	"math/rand"

	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// TPCHAccessedBytes computes the total byte volume of every column the
// 22-query mix touches — the quantity the paper sizes the TPC-H buffer
// pool against (§4.2: 2250 MB = 30% of ~7500 MB accessed).
func TPCHAccessedBytes(db *tpch.DB) int64 {
	type colKey struct {
		table string
		col   string
	}
	seen := make(map[colKey]bool)
	// Dry-run every plan with a recording builder that performs no I/O.
	rec := func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		types := make([]storage.ColumnType, len(cols))
		for i, c := range cols {
			seen[colKey{table, c}] = true
			types[i] = db.Snapshot(table).Table().Schema[db.Col(table, c)].Type
		}
		return &nullScan{types: types}
	}
	for _, plan := range tpch.Queries() {
		op := plan(db, rec)
		op.Open()
		op.Close()
	}
	var total int64
	for k := range seen {
		snap := db.Snapshot(k.table)
		total += snap.TotalBytes([]int{db.Col(k.table, k.col)})
	}
	return total
}

// nullScan is an empty relation with a given schema (dry runs).
type nullScan struct{ types []storage.ColumnType }

func (n *nullScan) Open()                        {}
func (n *nullScan) Next() *exec.Batch            { return nil }
func (n *nullScan) Close()                       {}
func (n *nullScan) Schema() []storage.ColumnType { return n.types }

// RunTPCH executes the §4.2 throughput run: each stream runs all 22
// queries in a stream-specific permutation (as TPC-H qgen does). When
// QueriesPerStream is positive it truncates the permutation (for quick
// runs).
func RunTPCH(db *tpch.DB, cfg Config) *Result {
	accessed := TPCHAccessedBytes(db)
	e := newEnv(cfg, accessed)
	build := e.builder(db)
	plans := tpch.Queries()

	streamEnds := make([]sim.Time, cfg.Streams)
	wg := e.rt.NewWaitGroup()
	stopSampler := e.sharingSampler()
	for s := 0; s < cfg.Streams; s++ {
		s := s
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*104729))
		wg.Add(1)
		e.rt.Go("stream", func() {
			defer wg.Done()
			perm := rng.Perm(len(plans))
			limit := len(perm)
			if cfg.QueriesPerStream > 0 && cfg.QueriesPerStream < limit {
				limit = cfg.QueriesPerStream
			}
			for _, qi := range perm[:limit] {
				exec.Drain(plans[qi](db, build))
			}
			streamEnds[s] = e.rt.Now()
		})
	}
	e.rt.Go("driver", func() {
		wg.Wait()
		stopSampler.Fire()
		if e.abm != nil {
			e.abm.Stop()
		}
	})
	e.rt.Run()
	return e.finish(streamEnds)
}
