package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// ServeEngine is the long-lived serving surface of the workload engine:
// the same wiring RunServe builds per run — real runtime, disk array,
// buffer manager, admission scheduler, zone maps, cost model — but held
// open so a network front end can admit, plan and execute queries for
// the life of a server process instead of one synthetic batch.
//
// The engine always runs on the real-threaded runtime (a server serves
// wall-clock traffic) and always wires the zone maps, since requests
// may carry arbitrary predicates. Methods are safe for concurrent use
// by handler goroutines.
type ServeEngine struct {
	cfg     ServeConfig
	db      *tpch.DB
	e       *env
	sch     *sched.Scheduler
	cost    exec.ScanCostModel
	tenants int
	weights map[int]float64
	n       int64
	start   rt.Time

	// htap is the engine's write path, always wired (POST /v1/update must
	// work regardless of startup flags): the PDT store anchored at the
	// catalog's cached snapshot, the checkpoint trigger, and the merge
	// measurement windows. Until the first update commits, every pinned
	// view carries nil deltas and the read path is exactly the historical
	// snapshot builder.
	htap *htapState
	// ckptWG tracks in-flight background checkpoint goroutines so Close
	// does not stop the ABM under a running merge.
	ckptWG rt.WaitGroup

	// firstArrive is the first admission's clock reading plus one (so
	// zero means "no query yet"): stats measure the serving window, not
	// the idle time a server spends listening before traffic shows up.
	firstArrive atomic.Int64

	// rng draws server-side predicate windows (requests that ask for a
	// selectivity rather than an explicit column window); guarded
	// because handlers race.
	mu  sync.Mutex
	rng *rand.Rand
}

// NewServeEngine builds a serving engine over the generated database.
// The embedded Config's Real flag is forced on; zero fields default as
// in RunServe.
func NewServeEngine(db *tpch.DB, cfg ServeConfig) *ServeEngine {
	cfg.Config.Real = true
	if cfg.SLO == 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.PoolShards == 0 {
		cfg.PoolShards = buffer.DefaultShards
	}
	if cfg.MPL <= 0 {
		cfg.MPL = 8
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = DefaultTenants
	}
	weights := map[int]float64{}
	for i, w := range cfg.TenantWeights {
		if w > 0 {
			weights[i] = w
		}
	}
	e := newEnv(cfg.Config, MicroAccessedBytes(db))
	// Requests carry arbitrary selectivities, so the zone maps must
	// exist regardless of the config's own mix; the probe mix below
	// only forces the build.
	e.setupSkipping(db, []float64{0.5})
	en := &ServeEngine{
		cfg: cfg, db: db, e: e,
		sch: sched.New(e.rt, sched.Config{
			MPL:           cfg.MPL,
			QueueDepth:    cfg.QueueDepth,
			SLO:           cfg.SLO,
			Policy:        cfg.AdmissionPolicy,
			TenantWeights: weights,
		}),
		tenants: tenants,
		weights: weights,
		n:       db.Snapshot("lineitem").NumTuples(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if en.sch.UsesCost() {
		en.cost = e.costModel()
	}
	en.htap = e.newHTAP(db, cfg)
	en.ckptWG = e.rt.NewWaitGroup()
	en.start = e.rt.Now()
	return en
}

// Runtime exposes the engine's (real) runtime.
func (en *ServeEngine) Runtime() rt.Runtime { return en.e.rt }

// Now reads the engine clock (nanoseconds since engine creation).
func (en *ServeEngine) Now() rt.Time { return en.e.rt.Now() }

// NumTuples is the lineitem row count — the bound request ranges are
// clipped to, exported on /statz so clients can draw ranges.
func (en *ServeEngine) NumTuples() int64 { return en.n }

// TenantCount is the number of configured fairness domains.
func (en *ServeEngine) TenantCount() int { return en.tenants }

// Config returns the engine's effective serving configuration.
func (en *ServeEngine) Config() ServeConfig { return en.cfg }

// Scheduler exposes the admission scheduler (drain, gauges, stats).
func (en *ServeEngine) Scheduler() *sched.Scheduler { return en.sch }

// NewQueryCtx mints a lifecycle handle on the engine clock.
func (en *ServeEngine) NewQueryCtx() *exec.QueryCtx { return exec.NewQueryCtx(en.e.rt) }

// ClipRange clamps [lo, hi) to the table; hi <= 0 means the full table.
func (en *ServeEngine) ClipRange(lo, hi int64) exec.RIDRange {
	if hi <= 0 || hi > en.n {
		hi = en.n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		lo = hi - 1
	}
	if lo < 0 {
		lo = 0
	}
	return exec.RIDRange{Lo: lo, Hi: hi}
}

// PredicateFor draws an l_shipdate window spanning sel of the date
// domain at a random position — the same draw discipline the in-process
// serve sweep uses, with an engine-level rng since requests have no
// stream. Selectivities outside (0,1) mean an unrestricted scan.
func (en *ServeEngine) PredicateFor(sel float64) *exec.ScanPredicate {
	if sel <= 0 || sel >= 1 {
		return nil
	}
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.e.drawWindow(en.rng, sel)
}

// PredicateNamed builds an explicit [lo, hi] window on a lineitem int64
// column. Only the zone-mapped l_shipdate column prunes I/O; any other
// int64 column still filters exactly through the plan's Select.
func (en *ServeEngine) PredicateNamed(col string, lo, hi int64) (*exec.ScanPredicate, error) {
	schema := en.db.Snapshot("lineitem").Table().Schema
	ix := schema.ColIndex(col)
	if ix < 0 {
		return nil, fmt.Errorf("unknown lineitem column %q", col)
	}
	if schema[ix].Type != storage.Int64 {
		return nil, fmt.Errorf("column %q is not int64", col)
	}
	if lo > hi {
		return nil, fmt.Errorf("empty predicate window [%d, %d]", lo, hi)
	}
	return &exec.ScanPredicate{Col: ix, Lo: lo, Hi: hi}, nil
}

// Price estimates the query's expected work in seconds, skip-aware —
// zero when the admission policy never reads it.
func (en *ServeEngine) Price(r exec.RIDRange, pred *exec.ScanPredicate) float64 {
	if en.cost == nil {
		return 0
	}
	return en.cost.EstimateScanTime(en.e.survivingTuples(r, pred)).Seconds()
}

// PriceUpdate estimates an update's expected work from its delta size
// (batch operations), the same cost currency reads are priced in — so
// sesf/wfq admission weighs writes against scans directly.
func (en *ServeEngine) PriceUpdate(batch int) float64 {
	if en.cost == nil {
		return 0
	}
	if batch < 1 {
		batch = 1
	}
	return en.cost.EstimateScanTime(int64(batch)).Seconds()
}

// ApplyUpdate commits one update transaction of batch delta operations
// of the given kind against the engine's PDT store (positions and
// synthesized dates are drawn from the engine rng, inside the loaded
// date domain), then checks the checkpoint trigger — crossing it starts
// a background merge while reads keep serving pinned views. It returns
// the operations applied plus the store's resulting commit epoch and
// uncheckpointed-op count.
func (en *ServeEngine) ApplyUpdate(kind UpdateKind, batch int) (applied int, version, pending int64, err error) {
	en.mu.Lock()
	op := UpdateOp{
		Kind:  kind,
		Frac:  en.rng.Float64(),
		Date:  en.htap.dateMin + en.rng.Int63n(en.htap.dateMax-en.htap.dateMin+1),
		Batch: batch,
	}
	en.mu.Unlock()
	if op.Batch < 1 {
		op.Batch = 1
	}
	if op.Batch > maxUpdateBatch {
		op.Batch = maxUpdateBatch
	}
	applied, err = en.htap.apply(op)
	if err != nil {
		return 0, 0, 0, err
	}
	en.htap.maybeCheckpoint(en.e, en.ckptWG)
	return applied, en.htap.store.Version(), en.htap.store.Pending(), nil
}

// Checkpoints reports the completed background checkpoint/merge cycles.
func (en *ServeEngine) Checkpoints() int {
	c, _ := en.htap.mergeStats(nil)
	return c
}

// Admit runs the admission scheduler for q, blocking while queued. When
// the engine's IOPriority knob is on, the query's context receives the
// policy-derived device priority hint first, exactly as RunServe.
func (en *ServeEngine) Admit(q sched.Query) (*sched.Ticket, sched.AdmitOutcome) {
	en.firstArrive.CompareAndSwap(0, int64(en.e.rt.Now())+1)
	if en.cfg.IOPriority {
		q.Ctx.SetPriority(ioPriority(en.cfg.AdmissionPolicy, en.weights, q.Tenant, q.Cost))
	}
	return en.sch.AdmitQueryOutcome(q)
}

// BuildPlan builds the physical plan of one request: "q1"/"q6" run the
// microbenchmark aggregations, "scan" streams the scanned rows
// themselves (the kind whose result volume makes client backpressure
// meaningful). The plan is bound to qc's lifecycle end to end, XChg
// fan-out included, and pins a (snapshot, PDT-version) view of the
// table at build time: a checkpoint committing mid-stream never tears
// the scan, and updates committed after the pin stay invisible to it.
func (en *ServeEngine) BuildPlan(qc *exec.QueryCtx, kind string, r exec.RIDRange, pred *exec.ScanPredicate) (exec.Op, error) {
	ctx := en.e.ctx
	if qc != nil {
		ctx = ctx.WithQuery(qc)
	}
	view := en.htap.view()
	r = clipToView(r, view.NumTuples())
	build := en.e.wrapPred(en.db, en.e.builderView(ctx, en.db, view), pred)
	switch kind {
	case "q1", "q6":
		return en.e.microPlanCtx(ctx, en.db, build, r, kind == "q1"), nil
	case "scan":
		threads := en.cfg.ThreadsPerQuery
		if threads <= 1 {
			return build("lineitem", microColumns, []exec.RIDRange{r}, false), nil
		}
		parts := make([]func() exec.Op, 0, threads)
		for _, pr := range exec.PartitionRange(r.Lo, r.Hi, threads) {
			pr := pr
			parts = append(parts, func() exec.Op {
				return build("lineitem", microColumns, []exec.RIDRange{pr}, false)
			})
		}
		return en.e.parallelCtx(ctx, parts), nil
	}
	return nil, fmt.Errorf("unknown query kind %q (want q1, q6 or scan)", kind)
}

// Drain stops admitting new queries; already-admitted and queued ones
// run to completion. Poll Idle for the all-clear.
func (en *ServeEngine) Drain() { en.sch.Drain() }

// Idle reports whether the scheduler has no running or queued queries.
func (en *ServeEngine) Idle() bool { return en.sch.Idle() }

// Close releases engine background work (the ABM's scheduler loop),
// waiting out any in-flight checkpoint/merge first. Call once, after
// the last query has resolved.
func (en *ServeEngine) Close() {
	en.ckptWG.Wait()
	if en.e.abm != nil {
		en.e.abm.Stop()
	}
}

// Stats snapshots the run so far in RunServe's result shape, safe to
// call concurrently with executing queries. Throughput and ElapsedSec
// are measured over the serving window — first admission to now — so a
// server that sat idle before traffic arrived reports the same numbers
// an in-process sweep of the same workload does; before any admission
// they fall back to the engine's lifetime.
func (en *ServeEngine) Stats() *ServeResult {
	res := &ServeResult{}
	res.Result.Policy = en.cfg.Policy.String()
	res.Result.AccessedBytes = en.e.result.AccessedBytes
	res.Result.BufferBytes = en.e.result.BufferBytes
	if en.e.pool != nil {
		res.PoolStats = en.e.pool.Stats()
		res.TotalIOBytes = res.PoolStats.BytesLoaded
	}
	if en.e.abm != nil {
		res.ABMStats = en.e.abm.Stats()
		res.TotalIOBytes = res.ABMStats.BytesLoaded
	}
	if en.e.ctx.Skip != nil {
		res.RequestedTuples, res.SkippedTuples = en.e.ctx.Skip.Counts()
	}
	res.DiskStats = en.e.disk.Stats()
	now := en.e.rt.Now()
	res.Sched = en.sch.Stats(now)
	res.Tenants = en.sch.TenantStats(en.tenants)
	res.Checkpoints, res.MergeP95 = en.htap.mergeStats(en.sch.Completed())
	start := en.start
	if fa := en.firstArrive.Load(); fa > 0 {
		start = rt.Time(fa - 1)
	}
	res.ElapsedSec = (now - start).Seconds()
	return res
}
