package workload

import (
	"reflect"
	"testing"
)

// The sim engine guarantees bit-reproducible runs: same seed, same
// config, same binary => identical results, including every latency
// percentile and I/O counter. These regression tests lock the guarantee
// in for each driver by comparing entire result structs across two runs.

func TestRunMicroBitIdentical(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.TraceForOPT = true
	a := RunMicro(tinyDB, cfg)
	b := RunMicro(tinyDB, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunMicro not bit-identical across runs:\n%+v\n%+v", a, b)
	}
}

// TestRunMicroThrottleBitIdentical pins the §5 attach&throttle variant,
// which historically was the one nondeterministic configuration: the
// throttle advice picked the trailing scan out of a map iteration, so
// equally-distant trailers tie-broke on randomized map order.
func TestRunMicroThrottleBitIdentical(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.Throttle = true
	a := RunMicro(tinyDB, cfg)
	b := RunMicro(tinyDB, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunMicro with throttle not bit-identical across runs:\n%+v\n%+v", a, b)
	}
}

func TestRunTPCHBitIdentical(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.Policy = CScan
	cfg.Streams = 2
	cfg.QueriesPerStream = 4
	a := RunTPCH(tinyDB, cfg)
	b := RunTPCH(tinyDB, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunTPCH not bit-identical across runs:\n%+v\n%+v", a, b)
	}
}

func TestRunServeBitIdentical(t *testing.T) {
	for _, pol := range []Policy{LRU, PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyServeConfig()
			cfg.Policy = pol
			a := RunServe(tinyDB, cfg)
			b := RunServe(tinyDB, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("RunServe not bit-identical across runs:\n%+v\n%+v", a.Sched, b.Sched)
			}
			// The guarantee covers the full latency distribution, not just
			// aggregates: per-query stats must match exactly too.
			if a.Sched.Latency != b.Sched.Latency || a.Sched.QueueWait != b.Sched.QueueWait {
				t.Fatal("latency distributions diverge")
			}
		})
	}
}
