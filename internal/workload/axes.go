package workload

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sched"
)

// ServeAxes bundles every serving axis and knob of the scanbench-style
// command line behind one declaration: RegisterFlags binds the flags,
// Parse validates and materializes the typed axes, and the scope
// helpers (ServeOnly, ServeOrCompareOnly) answer "which of the set
// flags are illegal in this mode" — replacing the two hand-maintained
// rejection lists a new serve flag previously had to be added to (or be
// silently ignored in figure/compare modes).
type ServeAxes struct {
	// Parsed axes and knobs; zero values mean "not set" and leave the
	// sweep defaults in charge.
	Rates             []float64
	MPLs              []int
	Shards            []int
	Devices           []int
	StripeChunk       int
	IOSchedulers      []string
	Tiers             []string
	StripeRowRA       bool
	IOPriority        bool
	HotFrac           float64
	HotProb           float64
	AdmissionPolicies []string
	Tenants           int
	TenantWeights     []float64
	Selectivities     []float64
	Clustered         bool
	QueueDepth        int
	SLO               time.Duration
	Deadline          time.Duration
	CancelRate        float64
	WriteFrac         float64
	CheckpointOps     int
	JSONOut           string

	raw struct {
		rates, mpls, shards, devices string
		iosched, tiers, policies     string
		weights, sels                string
	}
}

// Axis scopes: where a flag is legal. Figure-scoped flags double as
// per-run overrides of the figure experiments and are never rejected.
type axisScope int

const (
	scopeFigure axisScope = iota
	scopeServeCompare
	scopeServe
)

// axisFlag describes one registered flag: its name, where it is legal,
// and whether the command line set it (by value, matching the
// historical checks — an explicit `-rowra=false` counts as unset).
type axisFlag struct {
	name  string
	scope axisScope
	set   func() bool
}

func (a *ServeAxes) flagTable() []axisFlag {
	return []axisFlag{
		{"rates", scopeServeCompare, func() bool { return a.raw.rates != "" }},
		{"mpls", scopeServeCompare, func() bool { return a.raw.mpls != "" }},
		{"shards", scopeFigure, func() bool { return a.raw.shards != "" }},
		{"devices", scopeFigure, func() bool { return a.raw.devices != "" }},
		{"stripe", scopeFigure, func() bool { return a.StripeChunk != 0 }},
		{"iosched", scopeServe, func() bool { return a.raw.iosched != "" }},
		{"tiers", scopeServe, func() bool { return a.raw.tiers != "" }},
		{"rowra", scopeServe, func() bool { return a.StripeRowRA }},
		{"ioprio", scopeServe, func() bool { return a.IOPriority }},
		{"hotfrac", scopeServe, func() bool { return a.HotFrac != 0 }},
		{"hotprob", scopeServe, func() bool { return a.HotProb != 0 }},
		{"json", scopeServe, func() bool { return a.JSONOut != "" }},
		{"policies", scopeServeCompare, func() bool { return a.raw.policies != "" }},
		{"tenants", scopeServeCompare, func() bool { return a.Tenants != 0 }},
		{"weights", scopeServeCompare, func() bool { return a.raw.weights != "" }},
		{"queue", scopeServeCompare, func() bool { return a.QueueDepth != 0 }},
		{"slo", scopeServeCompare, func() bool { return a.SLO != 0 }},
		{"selectivities", scopeServe, func() bool { return a.raw.sels != "" }},
		{"clustered", scopeServe, func() bool { return a.Clustered }},
		{"deadline", scopeServe, func() bool { return a.Deadline != 0 }},
		{"cancel", scopeServe, func() bool { return a.CancelRate != 0 }},
		{"writefrac", scopeServe, func() bool { return a.WriteFrac != 0 }},
		{"ckptops", scopeServe, func() bool { return a.CheckpointOps != 0 }},
	}
}

// RegisterFlags binds every serving flag onto fs with the historical
// names and usage strings. Call Parse after fs.Parse.
func (a *ServeAxes) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&a.raw.rates, "rates", "", "serve: comma-separated per-stream arrival rates in queries/s (default 1,5,20); -compare uses the first")
	fs.StringVar(&a.raw.mpls, "mpls", "", "serve: comma-separated MPL concurrency limits (default 8,32); -compare uses the first")
	fs.StringVar(&a.raw.shards, "shards", "", "buffer-pool shard counts: a comma-separated axis for -serve (default 1,8); the first value overrides the figure experiments' single pool")
	fs.StringVar(&a.raw.devices, "devices", "", "disk-array spindle counts: a comma-separated axis for -serve (default 1); the first value overrides the figure experiments' and -compare's single device")
	fs.IntVar(&a.StripeChunk, "stripe", 0, "disk-array stripe chunk in blocks (0 = default 16); meaningful with -devices > 1")
	fs.StringVar(&a.raw.iosched, "iosched", "", "serve: comma-separated device queue disciplines (fifo, elevator; default fifo); elevator services each spindle's queue as a C-SCAN sweep")
	fs.StringVar(&a.raw.tiers, "tiers", "", "serve: comma-separated array tierings (flat, tiered-rr, tiered-temp; default flat); tiered cells make the first half of the devices an SSD-like fast tier, tiered-temp places the hottest chunks there from a profiling pass")
	fs.BoolVar(&a.StripeRowRA, "rowra", false, "serve: deepen scan read-ahead to one full stripe row on multi-device arrays (device-aware batch sizing)")
	fs.BoolVar(&a.IOPriority, "ioprio", false, "serve: thread the admission policy's signal (wfq weight / sesf cost) to the device queue as per-query I/O priority")
	fs.Float64Var(&a.HotFrac, "hotfrac", 0, "serve: fraction of the table forming the hot region of a skewed query mix (0 = uniform)")
	fs.Float64Var(&a.HotProb, "hotprob", 0, "serve: probability a query's range is drawn from the hot region (0 = uniform)")
	fs.StringVar(&a.JSONOut, "json", "", "serve: also write the sweep rows as JSON to this file (machine-readable benchmark output, wire.ServeStats schema)")
	fs.StringVar(&a.raw.policies, "policies", "", "serve: comma-separated admission policies (fifo, sesf, wfq; default fifo); -compare uses the first")
	fs.IntVar(&a.Tenants, "tenants", 0, "serve/compare: number of tenants streams are mapped onto (default 4)")
	fs.StringVar(&a.raw.weights, "weights", "", "serve/compare: comma-separated per-tenant wfq weights, index = tenant id (default all 1)")
	fs.IntVar(&a.QueueDepth, "queue", 0, "serve/compare: admission queue depth (0 = default 64, negative = unbounded)")
	fs.DurationVar(&a.SLO, "slo", 0, "serve/compare: end-to-end latency SLO (default 250ms)")
	fs.StringVar(&a.raw.sels, "selectivities", "", "serve: comma-separated predicate selectivities in (0,1] (default 1 = unrestricted scans); below 1 every query carries an l_shipdate window of that fraction of the date domain, pruned by the zone maps")
	fs.BoolVar(&a.Clustered, "clustered", false, "serve: generate lineitem sorted by l_shipdate so the zone maps have physical structure to prune against")
	fs.DurationVar(&a.Deadline, "deadline", 0, "serve: per-query end-to-end deadline; queued queries past it are dropped (to%), executing ones killed at the next lifecycle check (0 = no deadlines)")
	fs.Float64Var(&a.CancelRate, "cancel", 0, "serve: fraction of queries whose client cancels them mid-flight, 0..1 (can%); each cancel lands a uniform [0,SLO) delay after issue")
	fs.Float64Var(&a.WriteFrac, "writefrac", 0, "serve: fraction of queries that are updates (insert/delete/modify through the PDT write path), 0..1; 0 keeps the read-only stream")
	fs.IntVar(&a.CheckpointOps, "ckptops", 0, "serve: committed update operations that trigger a background checkpoint/merge (0 = never); reads keep serving pinned snapshot views while the merge runs")
}

// Parse materializes and validates the typed axes from the raw flag
// values. Errors name the flag and offending element in the historical
// style (the caller prefixes the program name).
func (a *ServeAxes) Parse() error {
	var err error
	if a.Rates, err = parseAxisElems(a.raw.rates, "rates", parseFloat); err != nil {
		return err
	}
	if a.MPLs, err = parseAxisElems(a.raw.mpls, "mpls", strconv.Atoi); err != nil {
		return err
	}
	if a.Shards, err = parseAxisElems(a.raw.shards, "shards", strconv.Atoi); err != nil {
		return err
	}
	if a.Devices, err = parseAxisElems(a.raw.devices, "devices", strconv.Atoi); err != nil {
		return err
	}
	if a.TenantWeights, err = parseAxisElems(a.raw.weights, "weights", parseFloat); err != nil {
		return err
	}
	if a.Selectivities, err = parseAxisElems(a.raw.sels, "selectivities", parseFloat); err != nil {
		return err
	}
	for _, s := range a.Selectivities {
		if s > 1 {
			return fmt.Errorf("-selectivities: bad element %g: must be in (0,1]", s)
		}
	}
	if a.IOSchedulers, err = parseNameElems(a.raw.iosched, "iosched", "fifo", "elevator"); err != nil {
		return err
	}
	if a.Tiers, err = parseNameElems(a.raw.tiers, "tiers", "flat", "tiered-rr", "tiered-temp"); err != nil {
		return err
	}
	if a.AdmissionPolicies, err = parsePolicyElems(a.raw.policies); err != nil {
		return err
	}
	if a.CancelRate < 0 || a.CancelRate > 1 {
		return fmt.Errorf("-cancel: bad value %g: must be in [0,1]", a.CancelRate)
	}
	if a.WriteFrac < 0 || a.WriteFrac > 1 {
		return fmt.Errorf("-writefrac: bad value %g: must be in [0,1]", a.WriteFrac)
	}
	if a.CheckpointOps < 0 {
		return fmt.Errorf("-ckptops: bad value %d: must be positive (0 = never)", a.CheckpointOps)
	}
	if a.Deadline < 0 {
		return fmt.Errorf("-deadline: bad value %v: must be positive (0 = disabled)", a.Deadline)
	}
	if a.Tenants < 0 {
		return fmt.Errorf("-tenants: bad value %d: must be positive (0 = default)", a.Tenants)
	}
	if a.StripeChunk < 0 {
		return fmt.Errorf("-stripe: bad value %d: must be positive (0 = default)", a.StripeChunk)
	}
	if a.HotFrac < 0 || a.HotFrac > 1 {
		return fmt.Errorf("-hotfrac: bad value %g: must be in [0,1]", a.HotFrac)
	}
	if a.HotProb < 0 || a.HotProb > 1 {
		return fmt.Errorf("-hotprob: bad value %g: must be in [0,1]", a.HotProb)
	}
	return nil
}

// ServeOnly returns the names of set flags legal only with -serve, in
// registration order — -compare rejects them.
func (a *ServeAxes) ServeOnly() []string { return a.setIn(scopeServe) }

// ServeOrCompareOnly returns the names of set flags legal only with
// -serve or -compare — the figure targets reject them. (This includes
// flags like -queue/-slo that the old hand-maintained list silently
// ignored in figure mode.)
func (a *ServeAxes) ServeOrCompareOnly() []string {
	out := a.setIn(scopeServeCompare)
	return append(out, a.setIn(scopeServe)...)
}

func (a *ServeAxes) setIn(scope axisScope) []string {
	var out []string
	for _, f := range a.flagTable() {
		if f.scope == scope && f.set() {
			out = append(out, f.name)
		}
	}
	return out
}

// parseAxisElems parses the comma-separated value of axis flag -name
// into positive values; empty input yields nil. Every axis flag reports
// mistakes the same way instead of hand-rolling its own validation.
func parseAxisElems[T int | float64](s, name string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	for _, f := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-%s: bad element %q: not a number", name, f)
		}
		if v <= 0 {
			return nil, fmt.Errorf("-%s: bad element %q: must be positive", name, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseNameElems parses an enumerated axis, validating every element
// against the menu so a typo fails with the valid set listed.
func parseNameElems(s, name string, valid ...string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, v := range valid {
		known[v] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		v := strings.TrimSpace(f)
		if !known[v] {
			return nil, fmt.Errorf("-%s: bad element %q (valid: %s)", name, v, strings.Join(valid, ", "))
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePolicyElems validates the -policies axis against the registered
// admission policies.
func parsePolicyElems(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	valid := sched.PolicyNames()
	known := map[string]bool{}
	for _, name := range valid {
		known[name] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if !known[name] {
			return nil, fmt.Errorf("-policies: unknown admission policy %q (registered: %s)", name, strings.Join(valid, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
