package workload

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tpch"
)

// freshClusteredTinyDB generates a private database per call: HTAP runs
// checkpoint the table (new master, new pages), so write tests must not
// share the package-level read-only fixtures.
func freshClusteredTinyDB() *tpch.DB {
	return tpch.GenerateOpt(0.004, 11, tpch.GenOptions{ClusteredShipdate: true})
}

// htapServeConfig is tinyServeConfig with a 30% write fraction and a
// checkpoint trigger low enough that several merges complete mid-run.
func htapServeConfig(policy Policy) ServeConfig {
	cfg := tinyServeConfig()
	cfg.Policy = policy
	cfg.WriteFrac = 0.3
	cfg.CheckpointOps = 8
	cfg.Selectivities = []float64{0.1, 1}
	return cfg
}

// TestServeWithUpdates drives the full HTAP serving stack: a mixed
// read/write stream through the admission scheduler, snapshot-pinned
// scans, and online checkpoint/merge cycles. The admission ledger must
// reconcile with writes included, write throughput must be reported
// separately, at least one checkpoint must complete mid-run, and reads
// overlapping a merge window must yield a measured p95.
func TestServeWithUpdates(t *testing.T) {
	for _, policy := range []Policy{PBM, CScan} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			res := RunServe(freshClusteredTinyDB(), htapServeConfig(policy))
			st := res.Sched
			if got := st.Completed + st.Rejected + st.TimedOut + st.Cancelled; got != st.Arrived {
				t.Fatalf("ledger does not reconcile: %d resolved, %d arrived", got, st.Arrived)
			}
			if st.WriteCompleted == 0 {
				t.Fatal("no writes completed at 30% write fraction")
			}
			if st.WriteThroughput <= 0 {
				t.Fatalf("write throughput = %v", st.WriteThroughput)
			}
			if st.Completed <= st.WriteCompleted {
				t.Fatalf("no reads completed: %d completions, %d writes", st.Completed, st.WriteCompleted)
			}
			if res.Checkpoints == 0 {
				t.Fatal("no checkpoint completed mid-run")
			}
			if res.MergeP95 <= 0 {
				t.Fatalf("merge-window scan p95 = %v with %d checkpoints", res.MergeP95, res.Checkpoints)
			}
			if res.SkippedTuples == 0 {
				t.Fatal("zone-map skipping went inactive under writes")
			}
		})
	}
}

// TestServeWithUpdatesDeterministic: the sim-mode HTAP run is a pure
// function of its config — two runs agree on every ledger entry, the
// checkpoint count, and the merge-window p95.
func TestServeWithUpdatesDeterministic(t *testing.T) {
	// Fresh database per run: a checkpoint allocates pages and blocks
	// from the catalog's counters, so reruns on one mutated catalog
	// would see shifted disk geometry. A fresh load is the fixed point.
	a := RunServe(freshClusteredTinyDB(), htapServeConfig(CScan))
	b := RunServe(freshClusteredTinyDB(), htapServeConfig(CScan))
	if a.Sched != b.Sched {
		t.Fatalf("sched stats diverged:\n%+v\n%+v", a.Sched, b.Sched)
	}
	if a.Checkpoints != b.Checkpoints || a.MergeP95 != b.MergeP95 {
		t.Fatalf("merge stats diverged: %d/%v vs %d/%v",
			a.Checkpoints, a.MergeP95, b.Checkpoints, b.MergeP95)
	}
	if a.TotalIOBytes != b.TotalIOBytes {
		t.Fatalf("I/O diverged: %d vs %d", a.TotalIOBytes, b.TotalIOBytes)
	}
}

// TestServeTenantWriteFracOverride: TenantWriteFrac entries override the
// global fraction per tenant — a single write-heavy tenant among
// explicit zeros produces strictly fewer writes than everyone at the
// same fraction, and the ledger still reconciles.
func TestServeTenantWriteFracOverride(t *testing.T) {
	one := htapServeConfig(PBM)
	one.WriteFrac = 0
	one.TenantWriteFrac = []float64{0.5, 0, 0, 0}
	all := htapServeConfig(PBM)
	all.WriteFrac = 0.5
	ro := RunServe(freshClusteredTinyDB(), one)
	rw := RunServe(freshClusteredTinyDB(), all)
	if ro.Sched.WriteCompleted == 0 {
		t.Fatal("tenant 0 never wrote")
	}
	if ro.Sched.WriteCompleted >= rw.Sched.WriteCompleted {
		t.Fatalf("override did not restrict writes: %d with one tenant, %d with all",
			ro.Sched.WriteCompleted, rw.Sched.WriteCompleted)
	}
	for _, st := range []sched.Stats{ro.Sched, rw.Sched} {
		if got := st.Completed + st.Rejected + st.TimedOut + st.Cancelled; got != st.Arrived {
			t.Fatalf("ledger does not reconcile: %d resolved, %d arrived", got, st.Arrived)
		}
	}
}
