package workload

import (
	"math/rand"
	"time"

	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// ServeConfig parameterizes an open-loop serving run: Streams client
// streams each generate queries with Poisson inter-arrivals at
// ArrivalRate queries per virtual second, and the scheduler admits them
// under the MPL limit through a bounded queue. The embedded Config
// supplies the engine wiring (policy, pool sizing, bandwidth, cores) and
// the query mix (RangePercents, ThreadsPerQuery), exactly as RunMicro.
type ServeConfig struct {
	Config
	// ArrivalRate is the per-stream mean arrival rate in queries per
	// virtual second (default 8).
	ArrivalRate float64
	// MPL is the scheduler's concurrency limit (default 8).
	MPL int
	// QueueDepth bounds the admission queue (0 => sched.DefaultQueueDepth,
	// negative => unbounded).
	QueueDepth int
	// SLO is the end-to-end latency objective (default 250ms of virtual
	// time; <0 disables).
	SLO sim.Duration
	// ClosedLoop switches the client streams from open-loop to
	// closed-loop issue: each stream still draws the same think-time and
	// query-shape sequence from its rng (the workload is identical), but
	// waits for its query to complete before drawing the next, so an
	// overloaded system slows its own offered load down. Comparing the
	// two disciplines on the same mix is the classic coordinated-omission
	// illustration: closed-loop latencies hide the queueing delay that
	// open-loop clients experience. See RunCompare.
	ClosedLoop bool
	// AdmissionPolicy names the scheduler's admission-ordering policy:
	// "fifo" (arrival order, the historical behavior and the default),
	// "sesf" (shortest-expected-scan-first, fed by the exec/pbm cost
	// hook), or "wfq" (per-tenant weighted fair queueing). See
	// sched.RegisterPolicy.
	AdmissionPolicy string
	// Tenants is the number of fairness domains the client streams are
	// mapped onto (stream s belongs to tenant s % Tenants; default
	// DefaultTenants). Tenant ids drive wfq's weighted shares and label
	// the per-tenant latency report; under fifo/sesf they are labels
	// only.
	Tenants int
	// TenantWeights assigns wfq fair-share weights by tenant id (index =
	// tenant). Missing or non-positive entries weigh 1.
	TenantWeights []float64
	// TenantSelectivities overrides the embedded Config.Selectivities
	// per tenant (index = tenant id): each tenant's streams draw their
	// predicate selectivity from their own mix, so a sweep can pit
	// narrow-predicate tenants against full-scan tenants under one
	// admission policy. Missing or empty entries fall back to
	// Config.Selectivities.
	TenantSelectivities [][]float64
	// Deadline, when positive, arms every query with an end-to-end
	// deadline relative to its arrival: queries still queued past it are
	// dropped with a TimedOut outcome (they never occupy an MPL slot),
	// and executing queries are killed at their next lifecycle check.
	// Zero keeps the historical deadline-free behavior bit-identical.
	Deadline sim.Duration
	// CancelRate is the fraction of queries whose client abandons them
	// mid-flight: each such query draws a cancel delay uniform in [0,
	// SLO) from its stream's rng and is cancelled that long after it was
	// issued, whether it is still queued or already executing. Zero (the
	// default) draws nothing and changes nothing.
	CancelRate float64
	// IOPriority threads the admission policy's ordering signal down to
	// the device queue as each query's I/O priority hint: wfq queries
	// carry their tenant weight, sesf queries their negated cost estimate
	// (shorter first). The elevator scheduler uses the hint to order
	// same-position ties and ABM's chooseQuery consults it. Off by
	// default: enabling it creates a QueryCtx per query, which the
	// historical paths do not.
	IOPriority bool
	// WriteFrac is the fraction of each stream's queries that are update
	// statements (insert/delete/modify against the lineitem PDT store)
	// instead of scans. Writes are admitted through the same policies and
	// MPL as reads, priced by their delta size, and reported separately
	// (Sched.WriteCompleted / WriteThroughput). Zero — the default —
	// builds no store and keeps the read-only path bit-identical to the
	// historical engine.
	WriteFrac float64
	// TenantWriteFrac overrides WriteFrac per tenant (index = tenant id;
	// an explicit zero entry makes that tenant read-only), so a sweep can
	// pit a write-heavy tenant against read-only ones.
	TenantWriteFrac []float64
	// UpdateMix weighs the update kinds {insert, delete, modify}; all
	// zero defaults to {1, 1, 2} (half modifies, the delta-widening
	// stressor).
	UpdateMix [3]float64
	// CheckpointOps triggers the background checkpoint/merge process:
	// when the committed-but-uncheckpointed delta count reaches it, an
	// online checkpoint materializes the store to a fresh stable snapshot
	// while scans keep serving from their pinned views. Zero never
	// checkpoints (deltas accumulate for the whole run).
	CheckpointOps int
}

// DefaultTenants is the default number of fairness domains streams are
// mapped onto.
const DefaultTenants = 4

// DefaultServeConfig returns serving defaults: 64 streams of 4 queries
// each arriving at 8 qps/stream, MPL 8, a 64-deep fifo admission queue,
// a 250 ms latency SLO, DefaultTenants fairness domains, and a buffer
// pool of buffer.DefaultShards shards, over the §4.1 microbenchmark
// query mix.
func DefaultServeConfig() ServeConfig {
	cfg := DefaultMicroConfig()
	cfg.Streams = 64
	cfg.QueriesPerStream = 4
	cfg.ThreadsPerQuery = 1
	cfg.PoolShards = buffer.DefaultShards
	return ServeConfig{
		Config:      cfg,
		ArrivalRate: 8,
		MPL:         8,
		QueueDepth:  sched.DefaultQueueDepth,
		SLO:         250 * time.Millisecond,
	}
}

// ServeResult reports one serving run: the engine-level Result (I/O
// volume, pool stats) plus the scheduler's latency and throughput
// accounting, overall and per tenant.
type ServeResult struct {
	Result
	Sched sched.Stats
	// Tenants is the per-tenant completion/p95/SLO breakdown, indexed by
	// tenant id (one entry per configured tenant).
	Tenants []sched.TenantStat
	// ElapsedSec is the run's makespan in (virtual or wall) seconds, the
	// denominator of the achieved aggregate read bandwidth.
	ElapsedSec float64
	// Checkpoints counts completed online checkpoint/merge cycles.
	Checkpoints int
	// MergeP95 is the p95 end-to-end latency of read queries whose
	// lifetime overlapped a checkpoint/merge window — zero when no
	// checkpoint ran or no read overlapped one.
	MergeP95 sim.Duration
}

// RunServe executes an open-loop serving run over the microbenchmark
// query mix (Q1/Q6 over random ranges). Unlike RunMicro's closed loop —
// where each stream issues its next query only after the previous one
// finishes — clients here generate queries on a Poisson arrival process
// regardless of completion, so overload manifests as queue wait,
// admission-queue growth, and ultimately rejections, the serving regime
// the paper's fixed-stream experiments do not cover.
func RunServe(db *tpch.DB, cfg ServeConfig) *ServeResult {
	if cfg.QueriesPerStream <= 0 {
		cfg.QueriesPerStream = 4
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 8
	}
	if cfg.SLO == 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.PoolShards == 0 {
		cfg.PoolShards = buffer.DefaultShards
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = DefaultTenants
	}
	weights := map[int]float64{}
	for i, w := range cfg.TenantWeights {
		if w > 0 {
			weights[i] = w
		}
	}
	accessed := MicroAccessedBytes(db)
	e := newEnv(cfg.Config, accessed)
	e.setupSkipping(db, append([][]float64{cfg.Selectivities}, cfg.TenantSelectivities...)...)
	build := e.builder(db)
	n := db.Snapshot("lineitem").NumTuples()
	// The write path (PDT store, checkpoint process, view pinning) exists
	// only when some write fraction is positive; read-only runs keep the
	// historical engine untouched.
	htap := e.setupHTAP(db, cfg)

	sch := sched.New(e.rt, sched.Config{
		MPL:           cfg.MPL,
		QueueDepth:    cfg.QueueDepth,
		SLO:           cfg.SLO,
		Policy:        cfg.AdmissionPolicy,
		TenantWeights: weights,
	})
	// Pricing a query takes the PBM mutex and averages observed speeds;
	// skip it entirely for policies that never read the estimate.
	var cost exec.ScanCostModel
	if sch.UsesCost() {
		cost = e.costModel()
	}

	wg := e.rt.NewWaitGroup()
	stopSampler := e.sharingSampler()
	// Serving starts now: on the real runtime the engine/db setup above
	// already consumed wall time, and the makespan (the read-bandwidth
	// denominator) must not include it. Zero in sim mode.
	servingStart := e.rt.Now()
	for s := 0; s < cfg.Streams; s++ {
		s := s
		tenant := s % tenants
		mix := cfg.Selectivities
		if tenant < len(cfg.TenantSelectivities) && len(cfg.TenantSelectivities[tenant]) > 0 {
			mix = cfg.TenantSelectivities[tenant]
		}
		wf := cfg.writeFrac(tenant)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*6271))
		wg.Add(1)
		e.rt.Go("client", func() {
			defer wg.Done()
			for q := 0; q < cfg.QueriesPerStream; q++ {
				e.rt.Sleep(sched.ExpInterarrival(rng, cfg.ArrivalRate))
				// Sample the query's shape in the generator, in a fixed
				// per-stream order, so the workload is identical across
				// policies and runs regardless of execution interleaving.
				pct := cfg.RangePercents[rng.Intn(len(cfg.RangePercents))]
				r := randRangeSkewed(rng, n, pct, cfg.HotFrac, cfg.HotProb)
				useQ1 := rng.Intn(2) == 0
				pred := e.pickPredicate(rng, mix)
				q := q
				// Lifecycle draws come last and only when the feature is
				// on, so a run with Deadline == 0 and CancelRate == 0
				// consumes exactly the historical rng sequence.
				doCancel := false
				var cancelAfter sim.Duration
				if cfg.CancelRate > 0 {
					doCancel = rng.Float64() < cfg.CancelRate
					if doCancel {
						cancelAfter = sim.Duration(rng.Float64() * float64(cfg.SLO))
					}
				}
				var qc *exec.QueryCtx
				if cfg.Deadline > 0 || doCancel || cfg.IOPriority {
					qc = exec.NewQueryCtx(e.rt)
					if cfg.Deadline > 0 {
						qc.SetDeadline(e.rt.Now() + sim.Time(cfg.Deadline))
					}
					if doCancel {
						qc := qc
						wg.Add(1)
						e.rt.Go("canceller", func() {
							defer wg.Done()
							e.rt.Sleep(cancelAfter)
							qc.Cancel(rt.CauseClientCancel)
						})
					}
				}
				// Update draws come after every read-shape and lifecycle
				// draw and only on write-configured streams, so read-only
				// runs consume exactly the historical rng sequence
				// (golden-critical).
				isWrite := false
				var upd UpdateOp
				if htap != nil && wf > 0 {
					isWrite = rng.Float64() < wf
					if isWrite {
						upd = htap.drawUpdate(rng)
					}
				}
				// The expected-work estimate is priced at arrival from the
				// scan's tuple count and the cost model's current speed
				// view — the signal sesf orders the admission queue by.
				// Predicate scans are priced skip-aware: only the tuples
				// the zone map says survive pruning count as work; updates
				// are priced by their delta size.
				req := sched.Query{Stream: s, Seq: q, Tenant: tenant, Ctx: qc, Write: isWrite}
				if cost != nil {
					if isWrite {
						req.Cost = cost.EstimateScanTime(int64(upd.Batch)).Seconds()
					} else {
						req.Cost = cost.EstimateScanTime(e.survivingTuples(r, pred)).Seconds()
					}
				}
				if cfg.IOPriority {
					qc.SetPriority(ioPriority(cfg.AdmissionPolicy, weights, tenant, req.Cost))
				}
				runOne := func() {
					tk, ok := sch.AdmitQuery(req)
					if !ok {
						return // rejected, timed out, or cancelled while queued
					}
					if isWrite {
						if qc != nil && qc.Cancelled() {
							tk.Cancel(qc.Cause())
							return
						}
						htap.apply(upd)
						tk.Done()
						htap.maybeCheckpoint(e, wg)
						return
					}
					var plan exec.Op
					if htap != nil {
						// Pin the (snapshot, PDT-version) pair at plan build:
						// a checkpoint committing mid-scan retires the old
						// stable snapshot but never tears this query's view.
						view := htap.view()
						vr := clipToView(r, view.NumTuples())
						ctx := e.ctx
						if qc != nil {
							ctx = e.ctx.WithQuery(qc)
						}
						plan = e.microPlanCtx(ctx, db, e.wrapPred(db, e.builderView(ctx, db, view), pred), vr, useQ1)
					} else if qc != nil {
						ctx := e.ctx.WithQuery(qc)
						plan = e.microPlanCtx(ctx, db, e.wrapPred(db, e.builderCtx(db, ctx), pred), r, useQ1)
					} else {
						plan = e.microPlan(db, e.wrapPred(db, build, pred), r, useQ1)
					}
					exec.Drain(plan)
					if qc.Cancelled() {
						tk.Cancel(qc.Cause())
					} else {
						tk.Done()
					}
				}
				if cfg.ClosedLoop {
					// Closed loop: the stream itself runs the query and only
					// then loops to draw the next think time.
					runOne()
					continue
				}
				wg.Add(1)
				e.rt.Go("query", func() {
					defer wg.Done()
					runOne()
				})
			}
		})
	}
	res := &ServeResult{}
	e.rt.Go("driver", func() {
		wg.Wait()
		stopSampler.Fire()
		if e.abm != nil {
			e.abm.Stop()
		}
		res.Sched = sch.Stats(e.rt.Now())
		res.Tenants = sch.TenantStats(tenants)
		res.ElapsedSec = (e.rt.Now() - servingStart).Seconds()
		res.Checkpoints, res.MergeP95 = htap.mergeStats(sch.Completed())
	})
	e.rt.Run()
	res.Result = *e.finish(nil)
	return res
}

// ioPriority derives a query's device-level priority hint from the
// admission policy's own ordering signal: under wfq a query carries its
// tenant's fair-share weight (heavier tenants win ties), under sesf its
// negated cost estimate (shorter queries win). Under fifo every query is
// equal, so the elevator falls through to its arrival-ticket tie-break.
func ioPriority(policy string, weights map[int]float64, tenant int, cost float64) float64 {
	switch policy {
	case "wfq":
		if w, ok := weights[tenant]; ok {
			return w
		}
		return 1
	case "sesf":
		return -cost
	}
	return 0
}

// CompareResult pairs an open-loop and a closed-loop run of the same
// query mix on the same engine configuration.
type CompareResult struct {
	Open   *ServeResult
	Closed *ServeResult
}

// RunCompare executes the same serving mix twice — open loop (Poisson
// arrivals regardless of completions) and closed loop (each stream waits
// for its query before issuing the next) — and returns both reports. The
// two runs draw identical think-time and query-shape sequences; only the
// arrival discipline differs, so the latency gap between the reports is
// exactly the queueing delay that closed-loop measurement omits
// (coordinated omission).
func RunCompare(db *tpch.DB, cfg ServeConfig) *CompareResult {
	open := cfg
	open.ClosedLoop = false
	closed := cfg
	closed.ClosedLoop = true
	return &CompareResult{Open: RunServe(db, open), Closed: RunServe(db, closed)}
}
