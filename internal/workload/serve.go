package workload

import (
	"math/rand"
	"time"

	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// ServeConfig parameterizes an open-loop serving run: Streams client
// streams each generate queries with Poisson inter-arrivals at
// ArrivalRate queries per virtual second, and the scheduler admits them
// under the MPL limit through a bounded queue. The embedded Config
// supplies the engine wiring (policy, pool sizing, bandwidth, cores) and
// the query mix (RangePercents, ThreadsPerQuery), exactly as RunMicro.
type ServeConfig struct {
	Config
	// ArrivalRate is the per-stream mean arrival rate in queries per
	// virtual second (default 8).
	ArrivalRate float64
	// MPL is the scheduler's concurrency limit (default 8).
	MPL int
	// QueueDepth bounds the admission queue (0 => sched.DefaultQueueDepth,
	// negative => unbounded).
	QueueDepth int
	// SLO is the end-to-end latency objective (default 250ms of virtual
	// time; <0 disables).
	SLO sim.Duration
}

// DefaultServeConfig returns serving defaults: 64 streams of 4 queries
// each arriving at 8 qps/stream, MPL 8, a 64-deep admission queue, a
// 250 ms latency SLO, and a buffer pool of buffer.DefaultShards shards,
// over the §4.1 microbenchmark query mix.
func DefaultServeConfig() ServeConfig {
	cfg := DefaultMicroConfig()
	cfg.Streams = 64
	cfg.QueriesPerStream = 4
	cfg.ThreadsPerQuery = 1
	cfg.PoolShards = buffer.DefaultShards
	return ServeConfig{
		Config:      cfg,
		ArrivalRate: 8,
		MPL:         8,
		QueueDepth:  sched.DefaultQueueDepth,
		SLO:         250 * time.Millisecond,
	}
}

// ServeResult reports one serving run: the engine-level Result (I/O
// volume, pool stats) plus the scheduler's latency and throughput
// accounting.
type ServeResult struct {
	Result
	Sched sched.Stats
}

// RunServe executes an open-loop serving run over the microbenchmark
// query mix (Q1/Q6 over random ranges). Unlike RunMicro's closed loop —
// where each stream issues its next query only after the previous one
// finishes — clients here generate queries on a Poisson arrival process
// regardless of completion, so overload manifests as queue wait,
// admission-queue growth, and ultimately rejections, the serving regime
// the paper's fixed-stream experiments do not cover.
func RunServe(db *tpch.DB, cfg ServeConfig) *ServeResult {
	if cfg.QueriesPerStream <= 0 {
		cfg.QueriesPerStream = 4
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 8
	}
	if cfg.SLO == 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.PoolShards == 0 {
		cfg.PoolShards = buffer.DefaultShards
	}
	accessed := MicroAccessedBytes(db)
	e := newEnv(cfg.Config, accessed)
	build := e.builder(db)
	n := db.Snapshot("lineitem").NumTuples()

	sch := sched.New(e.eng, sched.Config{
		MPL:        cfg.MPL,
		QueueDepth: cfg.QueueDepth,
		SLO:        cfg.SLO,
	})

	wg := e.eng.NewWaitGroup()
	stopSampler := e.sharingSampler()
	for s := 0; s < cfg.Streams; s++ {
		s := s
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*6271))
		wg.Add(1)
		e.eng.Go("client", func() {
			defer wg.Done()
			for q := 0; q < cfg.QueriesPerStream; q++ {
				e.eng.Sleep(sched.ExpInterarrival(rng, cfg.ArrivalRate))
				// Sample the query's shape in the generator, in a fixed
				// per-stream order, so the workload is identical across
				// policies and runs regardless of execution interleaving.
				pct := cfg.RangePercents[rng.Intn(len(cfg.RangePercents))]
				r := randRange(rng, n, pct)
				useQ1 := rng.Intn(2) == 0
				q := q
				wg.Add(1)
				e.eng.Go("query", func() {
					defer wg.Done()
					tk, ok := sch.Admit(s, q)
					if !ok {
						return // rejected: bounded queue full
					}
					exec.Drain(e.microPlan(db, build, r, useQ1))
					tk.Done()
				})
			}
		})
	}
	res := &ServeResult{}
	e.eng.Go("driver", func() {
		wg.Wait()
		stopSampler.Fire()
		if e.abm != nil {
			e.abm.Stop()
		}
		res.Sched = sch.Stats(e.eng.Now())
	})
	e.eng.Run()
	res.Result = *e.finish(nil)
	return res
}
