package workload

import (
	"testing"
	"time"
)

// tinyServeConfig shrinks the serving run for tests: 16 streams of 3
// queries over the shared tiny database.
func tinyServeConfig() ServeConfig {
	cfg := DefaultServeConfig()
	cfg.Streams = 16
	cfg.QueriesPerStream = 3
	cfg.ArrivalRate = 20
	cfg.MPL = 4
	return cfg
}

func TestRunServeAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyServeConfig()
			cfg.Policy = pol
			res := RunServe(tinyDB, cfg)
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if res.Sched.Arrived != want {
				t.Fatalf("arrived %d, want %d", res.Sched.Arrived, want)
			}
			if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", res.Sched)
			}
			if res.Sched.Completed == 0 {
				t.Fatal("no queries completed")
			}
			if res.TotalIOBytes <= 0 {
				t.Fatal("no I/O recorded")
			}
			if res.Sched.Latency.P50 <= 0 || res.Sched.Exec.P50 <= 0 {
				t.Fatalf("missing latency accounting: %+v", res.Sched.Latency)
			}
			if res.Sched.Latency.P99 < res.Sched.Latency.P50 {
				t.Fatalf("p99 %v < p50 %v", res.Sched.Latency.P99, res.Sched.Latency.P50)
			}
			if res.Sched.Throughput <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

// The sharded pool must stay deterministic, and the shard axis must be
// honored end to end: both shard counts serve the full workload with
// aggregated (summed-over-shards) pool counters.
func TestServeShardedPoolDeterministicAndAccounted(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		run := func() *ServeResult {
			cfg := tinyServeConfig()
			cfg.Policy = PBM
			cfg.PoolShards = shards
			return RunServe(tinyDB, cfg)
		}
		a, b := run(), run()
		if a.Sched != b.Sched || a.TotalIOBytes != b.TotalIOBytes {
			t.Fatalf("shards=%d nondeterministic: %+v/%d vs %+v/%d",
				shards, a.Sched, a.TotalIOBytes, b.Sched, b.TotalIOBytes)
		}
		if a.PoolStats.Hits+a.PoolStats.Misses == 0 {
			t.Fatalf("shards=%d: empty aggregated pool stats", shards)
		}
		if a.PoolStats.BytesLoaded != a.TotalIOBytes {
			t.Fatalf("shards=%d: pool bytes %d != total I/O %d",
				shards, a.PoolStats.BytesLoaded, a.TotalIOBytes)
		}
	}
}

func TestServeOverloadShowsQueueing(t *testing.T) {
	light := tinyServeConfig()
	light.Policy = LRU
	light.ArrivalRate = 2 // well under capacity
	heavy := light
	heavy.ArrivalRate = 2000 // all queries arrive nearly at once
	rl := RunServe(tinyDB, light)
	rh := RunServe(tinyDB, heavy)
	if rh.Sched.QueueWait.P95 <= rl.Sched.QueueWait.P95 {
		t.Errorf("overload queue wait p95 %v <= light %v",
			rh.Sched.QueueWait.P95, rl.Sched.QueueWait.P95)
	}
	if rh.Sched.MaxQueueDepth <= rl.Sched.MaxQueueDepth {
		t.Errorf("overload queue depth %d <= light %d",
			rh.Sched.MaxQueueDepth, rl.Sched.MaxQueueDepth)
	}
}

func TestServeBoundedQueueRejectsUnderOverload(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = LRU
	cfg.ArrivalRate = 5000
	cfg.MPL = 1
	cfg.QueueDepth = 2
	res := RunServe(tinyDB, cfg)
	if res.Sched.Rejected == 0 {
		t.Fatal("tight queue under overload rejected nothing")
	}
	if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
		t.Fatalf("accounting leak: %+v", res.Sched)
	}
}

func TestServeSLOAttainmentResponds(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = LRU
	cfg.ArrivalRate = 2000
	cfg.MPL = 2
	loose := cfg
	loose.SLO = time.Hour
	tight := cfg
	tight.SLO = time.Nanosecond
	rl := RunServe(tinyDB, loose)
	rt := RunServe(tinyDB, tight)
	if rl.Sched.SLOAttainment != 1 {
		t.Errorf("1-hour SLO attainment %v, want 1", rl.Sched.SLOAttainment)
	}
	if rt.Sched.SLOAttainment != 0 {
		t.Errorf("1-ns SLO attainment %v, want 0", rt.Sched.SLOAttainment)
	}
}

func TestServeHigherMPLAdmitsMoreConcurrently(t *testing.T) {
	// With everything arriving at once and a generous queue, a larger MPL
	// must strictly reduce time spent waiting for admission.
	cfg := tinyServeConfig()
	cfg.Policy = CScan
	cfg.ArrivalRate = 5000
	cfg.QueueDepth = -1
	cfg.MPL = 1
	r1 := RunServe(tinyDB, cfg)
	cfg.MPL = 16
	r16 := RunServe(tinyDB, cfg)
	if r16.Sched.QueueWait.Mean >= r1.Sched.QueueWait.Mean {
		t.Errorf("MPL 16 mean queue wait %v >= MPL 1 %v",
			r16.Sched.QueueWait.Mean, r1.Sched.QueueWait.Mean)
	}
	if r1.Sched.Completed != r16.Sched.Completed {
		t.Errorf("unbounded queue lost queries: %d vs %d",
			r1.Sched.Completed, r16.Sched.Completed)
	}
}
