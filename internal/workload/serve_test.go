package workload

import (
	"reflect"
	"testing"
	"time"
)

// tinyServeConfig shrinks the serving run for tests: 16 streams of 3
// queries over the shared tiny database.
func tinyServeConfig() ServeConfig {
	cfg := DefaultServeConfig()
	cfg.Streams = 16
	cfg.QueriesPerStream = 3
	cfg.ArrivalRate = 20
	cfg.MPL = 4
	return cfg
}

func TestRunServeAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyServeConfig()
			cfg.Policy = pol
			res := RunServe(tinyDB, cfg)
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if res.Sched.Arrived != want {
				t.Fatalf("arrived %d, want %d", res.Sched.Arrived, want)
			}
			if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", res.Sched)
			}
			if res.Sched.Completed == 0 {
				t.Fatal("no queries completed")
			}
			if res.TotalIOBytes <= 0 {
				t.Fatal("no I/O recorded")
			}
			if res.Sched.Latency.P50 <= 0 || res.Sched.Exec.P50 <= 0 {
				t.Fatalf("missing latency accounting: %+v", res.Sched.Latency)
			}
			if res.Sched.Latency.P99 < res.Sched.Latency.P50 {
				t.Fatalf("p99 %v < p50 %v", res.Sched.Latency.P99, res.Sched.Latency.P50)
			}
			if res.Sched.Throughput <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

// The sharded pool must stay deterministic, and the shard axis must be
// honored end to end: both shard counts serve the full workload with
// aggregated (summed-over-shards) pool counters.
func TestServeShardedPoolDeterministicAndAccounted(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		run := func() *ServeResult {
			cfg := tinyServeConfig()
			cfg.Policy = PBM
			cfg.PoolShards = shards
			return RunServe(tinyDB, cfg)
		}
		a, b := run(), run()
		if a.Sched != b.Sched || a.TotalIOBytes != b.TotalIOBytes {
			t.Fatalf("shards=%d nondeterministic: %+v/%d vs %+v/%d",
				shards, a.Sched, a.TotalIOBytes, b.Sched, b.TotalIOBytes)
		}
		if a.PoolStats.Hits+a.PoolStats.Misses == 0 {
			t.Fatalf("shards=%d: empty aggregated pool stats", shards)
		}
		if a.PoolStats.BytesLoaded != a.TotalIOBytes {
			t.Fatalf("shards=%d: pool bytes %d != total I/O %d",
				shards, a.PoolStats.BytesLoaded, a.TotalIOBytes)
		}
	}
}

func TestServeOverloadShowsQueueing(t *testing.T) {
	light := tinyServeConfig()
	light.Policy = LRU
	light.ArrivalRate = 2 // well under capacity
	heavy := light
	heavy.ArrivalRate = 2000 // all queries arrive nearly at once
	rl := RunServe(tinyDB, light)
	rh := RunServe(tinyDB, heavy)
	if rh.Sched.QueueWait.P95 <= rl.Sched.QueueWait.P95 {
		t.Errorf("overload queue wait p95 %v <= light %v",
			rh.Sched.QueueWait.P95, rl.Sched.QueueWait.P95)
	}
	if rh.Sched.MaxQueueDepth <= rl.Sched.MaxQueueDepth {
		t.Errorf("overload queue depth %d <= light %d",
			rh.Sched.MaxQueueDepth, rl.Sched.MaxQueueDepth)
	}
}

func TestServeBoundedQueueRejectsUnderOverload(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = LRU
	cfg.ArrivalRate = 5000
	cfg.MPL = 1
	cfg.QueueDepth = 2
	res := RunServe(tinyDB, cfg)
	if res.Sched.Rejected == 0 {
		t.Fatal("tight queue under overload rejected nothing")
	}
	if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
		t.Fatalf("accounting leak: %+v", res.Sched)
	}
}

func TestServeSLOAttainmentResponds(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = LRU
	cfg.ArrivalRate = 2000
	cfg.MPL = 2
	loose := cfg
	loose.SLO = time.Hour
	tight := cfg
	tight.SLO = time.Nanosecond
	rl := RunServe(tinyDB, loose)
	rt := RunServe(tinyDB, tight)
	if rl.Sched.SLOAttainment != 1 {
		t.Errorf("1-hour SLO attainment %v, want 1", rl.Sched.SLOAttainment)
	}
	if rt.Sched.SLOAttainment != 0 {
		t.Errorf("1-ns SLO attainment %v, want 0", rt.Sched.SLOAttainment)
	}
}

// Every admission policy must serve the full workload deterministically
// and report a per-tenant breakdown that reconciles with the aggregate.
func TestServeAdmissionPoliciesDeterministicAndAccounted(t *testing.T) {
	for _, adm := range []string{"fifo", "sesf", "wfq"} {
		adm := adm
		t.Run(adm, func(t *testing.T) {
			run := func() *ServeResult {
				cfg := tinyServeConfig()
				cfg.Policy = PBM
				cfg.AdmissionPolicy = adm
				cfg.ArrivalRate = 500 // saturates MPL 4: the policy really orders the queue
				cfg.Tenants = 4
				cfg.TenantWeights = []float64{4, 2, 1, 1}
				return RunServe(tinyDB, cfg)
			}
			a, b := run(), run()
			if a.Sched != b.Sched {
				t.Fatalf("nondeterministic under %s:\n%+v\n%+v", adm, a.Sched, b.Sched)
			}
			if !reflect.DeepEqual(a.Tenants, b.Tenants) {
				t.Fatalf("nondeterministic tenant stats under %s:\n%+v\n%+v", adm, a.Tenants, b.Tenants)
			}
			if len(a.Tenants) != 4 {
				t.Fatalf("tenant stats %+v, want 4 tenants", a.Tenants)
			}
			var sum int64
			for i, ts := range a.Tenants {
				if ts.Tenant != i {
					t.Fatalf("tenant stats out of order: %+v", a.Tenants)
				}
				sum += ts.Completed
			}
			if sum != a.Sched.Completed {
				t.Fatalf("per-tenant completions %d != aggregate %d", sum, a.Sched.Completed)
			}
			if a.Sched.Completed+a.Sched.Rejected != a.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", a.Sched)
			}
		})
	}
}

// An explicitly named fifo policy must match the default (empty) policy
// bit for bit — the plumbing introduces no behavioral fork.
func TestServeExplicitFIFOMatchesDefault(t *testing.T) {
	cfg := tinyServeConfig()
	cfg.Policy = PBM
	def := RunServe(tinyDB, cfg)
	cfg.AdmissionPolicy = "fifo"
	named := RunServe(tinyDB, cfg)
	if def.Sched != named.Sched || def.TotalIOBytes != named.TotalIOBytes {
		t.Fatalf("explicit fifo diverged from default:\n%+v\n%+v", def.Sched, named.Sched)
	}
}

// Under saturation, wfq must tilt completed work toward the heavy
// tenant relative to its share under fifo.
func TestServeWFQFavorsWeightedTenant(t *testing.T) {
	base := tinyServeConfig()
	base.Policy = LRU
	base.ArrivalRate = 2000 // all queries arrive nearly at once
	base.MPL = 1
	base.QueueDepth = -1
	base.QueriesPerStream = 4
	base.Tenants = 2
	base.TenantWeights = []float64{8, 1}
	run := func(adm string) *ServeResult {
		cfg := base
		cfg.AdmissionPolicy = adm
		return RunServe(tinyDB, cfg)
	}
	fifo, wfq := run("fifo"), run("wfq")
	// Same workload completes either way; wfq just reorders admissions.
	if fifo.Sched.Completed != wfq.Sched.Completed {
		t.Fatalf("completions diverged: fifo %d, wfq %d", fifo.Sched.Completed, wfq.Sched.Completed)
	}
	// With everything queued at once behind MPL 1, the 8x tenant's tail
	// latency must improve over fifo's interleaved order, and must beat
	// the light tenant's tail within the wfq run.
	if wfq.Tenants[0].P95 >= fifo.Tenants[0].P95 {
		t.Fatalf("heavy tenant p95 under wfq %v >= fifo %v", wfq.Tenants[0].P95, fifo.Tenants[0].P95)
	}
	if wfq.Tenants[0].P95 >= wfq.Tenants[1].P95 {
		t.Fatalf("heavy tenant p95 %v >= light tenant %v under wfq", wfq.Tenants[0].P95, wfq.Tenants[1].P95)
	}
}

func TestServeHigherMPLAdmitsMoreConcurrently(t *testing.T) {
	// With everything arriving at once and a generous queue, a larger MPL
	// must strictly reduce time spent waiting for admission.
	cfg := tinyServeConfig()
	cfg.Policy = CScan
	cfg.ArrivalRate = 5000
	cfg.QueueDepth = -1
	cfg.MPL = 1
	r1 := RunServe(tinyDB, cfg)
	cfg.MPL = 16
	r16 := RunServe(tinyDB, cfg)
	if r16.Sched.QueueWait.Mean >= r1.Sched.QueueWait.Mean {
		t.Errorf("MPL 16 mean queue wait %v >= MPL 1 %v",
			r16.Sched.QueueWait.Mean, r1.Sched.QueueWait.Mean)
	}
	if r1.Sched.Completed != r16.Sched.Completed {
		t.Errorf("unbounded queue lost queries: %d vs %d",
			r1.Sched.Completed, r16.Sched.Completed)
	}
}
