package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// distStr renders a LatencyDist exactly as %+v did when the goldens were
// recorded. The golden files pin these bytes; keeping the formatter
// explicit (instead of %+v over the whole struct) lets sched.Stats grow
// lifecycle counters without invalidating goldens whose behavior is
// unchanged.
func distStr(d sched.LatencyDist) string {
	return fmt.Sprintf("{P50:%v P95:%v P99:%v Max:%v Mean:%v}", d.P50, d.P95, d.P99, d.Max, d.Mean)
}

// schedStr renders the pre-lifecycle sched.Stats fields byte-identically
// to the %+v output the golden files were recorded with.
func schedStr(s sched.Stats) string {
	return fmt.Sprintf("{Arrived:%d Completed:%d Rejected:%d MaxQueueDepth:%d Latency:%s QueueWait:%s Exec:%s SLOAttainment:%v Makespan:%v Throughput:%v}",
		s.Arrived, s.Completed, s.Rejected, s.MaxQueueDepth,
		distStr(s.Latency), distStr(s.QueueWait), distStr(s.Exec),
		s.SLOAttainment, s.Makespan, s.Throughput)
}

// lifecycleFingerprint renders a spread of sim-mode runs with NO deadline
// and NO cancellation configured, covering every path the query-lifecycle
// refactor touches: both scan operators (Scan through the pool, CScan
// through the ABM), a striped multi-device pool (owner-tagged device
// reads), a clustered selectivity sweep (the serve rng discipline must
// not consume extra draws when CancelRate is zero), and sesf serving
// (admission wait points become cancellation-aware). The file it is
// compared against was generated BEFORE QueryCtx was threaded through the
// engine, so a passing test proves the lifecycle-disabled path is
// bit-identical to the pre-refactor engine.
func lifecycleFingerprint() string {
	var b strings.Builder
	micro := func(name string, cfg Config) {
		res := RunMicro(tinyDB, cfg)
		fmt.Fprintf(&b, "micro/%s avg=%.9f max=%.9f io=%d\n",
			name, res.AvgStreamSec, res.MaxStreamSec, res.TotalIOBytes)
	}
	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyMicroConfig()
		cfg.Policy = pol
		micro("policy="+pol.String(), cfg)
	}
	striped := tinyMicroConfig()
	striped.Policy = PBM
	striped.Devices = 4
	striped.StripeChunk = 8
	micro("devices=4", striped)
	for _, pol := range []Policy{PBM, CScan} {
		cfg := tinyMicroConfig()
		cfg.Policy = pol
		cfg.Selectivities = []float64{0.05, 1}
		res := RunMicro(clusteredTinyDB, cfg)
		fmt.Fprintf(&b, "sweep/%s avg=%.9f max=%.9f io=%d skip=%d/%d\n",
			pol.String(), res.AvgStreamSec, res.MaxStreamSec, res.TotalIOBytes,
			res.SkippedTuples, res.RequestedTuples)
	}
	for _, pol := range []Policy{PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		cfg.AdmissionPolicy = "sesf"
		res := RunServe(tinyDB, cfg)
		fmt.Fprintf(&b, "serve/%s sched=%s io=%d\n", pol.String(), schedStr(res.Sched), res.TotalIOBytes)
	}
	return b.String()
}

// TestLifecycleDisabledBitIdentical is the no-behavior-change regression
// of the query-lifecycle refactor: with no Deadline and zero CancelRate,
// every run must be bit-identical to the recorded pre-refactor output —
// no extra rng draws, no extra events, no reordered wake-ups. Regenerate
// with `go test -run LifecycleDisabled -update` ONLY for an intentional
// semantic change to the simulation.
func TestLifecycleDisabledBitIdentical(t *testing.T) {
	path := filepath.Join("testdata", "lifecycle_golden.txt")
	got := lifecycleFingerprint()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("lifecycle-disabled output diverged from pre-refactor golden\n--- want\n%s--- got\n%s", want, got)
	}
}
