package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// skipFingerprint renders the counters of a spread of sim-mode runs with
// NO scan predicates, covering the paths the data-skipping refactor
// touches: both scan operators (Scan through the pool, CScan through the
// ABM), a non-default chunk granularity (zone-map blocks align to
// chunks), a striped multi-device pool (read-ahead batch splitting), and
// the serving driver whose admission costing became skip-aware. The file
// it is compared against was generated BEFORE zone-map pruning was wired
// into the scans, so a passing test proves the skip-disabled path is
// bit-identical to the pre-refactor engine.
func skipFingerprint() string {
	var b strings.Builder
	micro := func(name string, cfg Config) {
		res := RunMicro(tinyDB, cfg)
		fmt.Fprintf(&b, "micro/%s avg=%.9f max=%.9f io=%d\n",
			name, res.AvgStreamSec, res.MaxStreamSec, res.TotalIOBytes)
	}
	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyMicroConfig()
		cfg.Policy = pol
		micro("policy="+pol.String(), cfg)
	}
	coarse := tinyMicroConfig()
	coarse.Policy = CScan
	coarse.ChunkTuples = 4096
	micro("chunk=4096", coarse)
	striped := tinyMicroConfig()
	striped.Policy = PBM
	striped.Devices = 4
	striped.StripeChunk = 8
	micro("devices=4", striped)
	for _, pol := range []Policy{PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		cfg.AdmissionPolicy = "sesf" // admission pricing is the skip-aware site
		res := RunServe(tinyDB, cfg)
		fmt.Fprintf(&b, "serve/%s sched=%s io=%d\n", pol.String(), schedStr(res.Sched), res.TotalIOBytes)
	}
	return b.String()
}

// TestSkipDisabledBitIdentical is the no-behavior-change regression of
// the data-skipping refactor: with no predicate registered (selectivity
// 1.0), every run must be bit-identical to the recorded pre-refactor
// output. Together with the sim/serve-fifo/sweep goldens this pins all
// four golden surfaces. Regenerate with `go test -run SkipDisabled
// -update` ONLY for an intentional semantic change to the simulation.
func TestSkipDisabledBitIdentical(t *testing.T) {
	path := filepath.Join("testdata", "skip_golden.txt")
	got := skipFingerprint()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("skip-disabled output diverged from pre-refactor golden\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestSelectivityOneBitIdentical pins the other disabled spelling: a
// single-entry selectivity mix of 1.0 consumes no rng draws, registers
// no predicate and builds no zone map, so runs are bit-identical to runs
// with no selectivity axis at all.
func TestSelectivityOneBitIdentical(t *testing.T) {
	for _, pol := range []Policy{PBM, CScan} {
		base := tinyMicroConfig()
		base.Policy = pol
		a := RunMicro(tinyDB, base)
		one := base
		one.Selectivities = []float64{1}
		b := RunMicro(tinyDB, one)
		if a.AvgStreamSec != b.AvgStreamSec || a.TotalIOBytes != b.TotalIOBytes {
			t.Errorf("%v: selectivity {1} diverged: %v/%d vs %v/%d",
				pol, a.AvgStreamSec, a.TotalIOBytes, b.AvgStreamSec, b.TotalIOBytes)
		}
		if b.RequestedTuples != 0 || b.SkippedTuples != 0 {
			t.Errorf("%v: skip counters active on disabled run: %+v", pol, b)
		}
	}
	base := tinyServeConfig()
	base.Policy = PBM
	base.AdmissionPolicy = "sesf"
	a := RunServe(tinyDB, base)
	one := base
	one.Selectivities = []float64{1}
	b := RunServe(tinyDB, one)
	if a.Sched != b.Sched || a.TotalIOBytes != b.TotalIOBytes {
		t.Errorf("serve: selectivity {1} diverged: %+v vs %+v", a.Sched, b.Sched)
	}
}
