package workload

import (
	"testing"
	"time"
)

// lifecycleServeConfig overloads a tiny serving run so the lifecycle
// machinery actually fires: MPL 1 with fast arrivals builds a deep
// queue, a short deadline drops the queued tail, and a tight SLO makes
// the drawn cancel delays land while queries are still in flight.
func lifecycleServeConfig() ServeConfig {
	cfg := tinyServeConfig()
	cfg.MPL = 1
	cfg.ArrivalRate = 200
	cfg.QueueDepth = -1 // unbounded: every outcome is a lifecycle one
	cfg.SLO = 2 * time.Millisecond
	cfg.Deadline = 3 * time.Millisecond
	cfg.CancelRate = 0.3
	return cfg
}

// TestServeLifecycleInvariant: with deadlines and client cancels armed,
// every arrival must resolve to exactly one of the four outcomes under
// each admission policy, deadline kills and cancels must both actually
// occur, and dropped entries must be accounted in the separate
// queue-drop distribution rather than the completed-latency one.
func TestServeLifecycleInvariant(t *testing.T) {
	for _, pol := range []string{"fifo", "sesf", "wfq"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			cfg := lifecycleServeConfig()
			cfg.AdmissionPolicy = pol
			res := RunServe(tinyDB, cfg)
			st := res.Sched
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if st.Arrived != want {
				t.Fatalf("arrived %d, want %d", st.Arrived, want)
			}
			if got := st.Completed + st.Rejected + st.TimedOut + st.Cancelled; got != st.Arrived {
				t.Fatalf("outcome accounting leak: %d resolved of %d arrived: %+v",
					got, st.Arrived, st)
			}
			if st.TimedOut == 0 {
				t.Fatalf("no deadline kills under overload: %+v", st)
			}
			if st.Cancelled == 0 {
				t.Fatalf("no client cancels landed: %+v", st)
			}
			if st.Completed == 0 {
				t.Fatalf("no queries survived: %+v", st)
			}
			if st.QueueDrop.Max == 0 {
				t.Fatalf("queue drops not accounted in QueueDrop dist: %+v", st)
			}
		})
	}
}

// TestServeLifecycleDeterministic: the lifecycle path (deadline reaping,
// cancel hooks, queue drops) must preserve sim-mode reproducibility.
func TestServeLifecycleDeterministic(t *testing.T) {
	cfg := lifecycleServeConfig()
	a := RunServe(tinyDB, cfg)
	b := RunServe(tinyDB, cfg)
	if a.Sched != b.Sched {
		t.Fatalf("lifecycle run not bit-identical:\n%+v\n%+v", a.Sched, b.Sched)
	}
}

// TestServeLifecycleQueueDropKeepsLatencyClean: under overload with a
// deadline, the completed-query p95 must not exceed the same run's p95
// without deadlines — dead queued entries are dropped before occupying
// a slot and reported separately, so they cannot inflate the completed
// percentiles.
func TestServeLifecycleQueueDropKeepsLatencyClean(t *testing.T) {
	base := lifecycleServeConfig()
	base.Deadline = 0
	base.CancelRate = 0
	noDeadline := RunServe(tinyDB, base)

	withDeadline := lifecycleServeConfig()
	withDeadline.CancelRate = 0
	dl := RunServe(tinyDB, withDeadline)

	if dl.Sched.TimedOut == 0 {
		t.Fatalf("deadline run dropped nothing: %+v", dl.Sched)
	}
	if dl.Sched.Latency.P95 > noDeadline.Sched.Latency.P95 {
		t.Fatalf("completed p95 with queue drops %v exceeds no-deadline p95 %v",
			dl.Sched.Latency.P95, noDeadline.Sched.Latency.P95)
	}
}

// TestRunServeRealLifecycleSmoke is the satellite real-mode check: the
// full serving stack on the real-threaded runtime with deadlines and
// client cancels armed, under every admission policy. Run under -race
// this exercises the concurrent cancel paths (sched grant/drop race,
// buffer wake-on-cancel, XChg shutdown, iosim skip). Wall-clock timing
// decides which outcomes occur, so only the accounting invariant and
// termination are asserted.
func TestRunServeRealLifecycleSmoke(t *testing.T) {
	for _, pol := range []string{"fifo", "sesf", "wfq"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			cfg := tinyRealServeConfig()
			cfg.AdmissionPolicy = pol
			cfg.MPL = 1
			cfg.SLO = 10 * time.Millisecond
			cfg.Deadline = 5 * time.Millisecond
			cfg.CancelRate = 0.4
			ch := make(chan *ServeResult, 1)
			go func() { ch <- RunServe(tinyDB, cfg) }()
			var res *ServeResult
			select {
			case res = <-ch:
			case <-time.After(120 * time.Second):
				t.Fatal("real-mode lifecycle serve run hung")
			}
			st := res.Sched
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if st.Arrived != want {
				t.Fatalf("arrived %d, want %d", st.Arrived, want)
			}
			if got := st.Completed + st.Rejected + st.TimedOut + st.Cancelled; got != st.Arrived {
				t.Fatalf("outcome accounting leak: %d resolved of %d arrived: %+v",
					got, st.Arrived, st)
			}
		})
	}
}
