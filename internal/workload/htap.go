package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/minmax"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// UpdateKind names the delta operation an update query applies.
type UpdateKind int

const (
	// UpdateInsert adds synthesized lineitem rows.
	UpdateInsert UpdateKind = iota
	// UpdateDelete removes rows.
	UpdateDelete
	// UpdateModify rewrites l_shipdate in place — the operation that
	// exercises delta-widened zone-map pruning hardest, since it can
	// move tuples into a predicate window their stable block excludes.
	UpdateModify
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateModify:
		return "modify"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// ParseUpdateKind resolves a wire-level kind name.
func ParseUpdateKind(s string) (UpdateKind, error) {
	switch strings.ToLower(s) {
	case "insert":
		return UpdateInsert, nil
	case "delete":
		return UpdateDelete, nil
	case "modify":
		return UpdateModify, nil
	}
	return 0, fmt.Errorf("unknown update kind %q (want insert, delete or modify)", s)
}

// UpdateOp is one drawn update query: the kind, a position fraction
// (resolved against the table's tuple count at apply time, since
// concurrent writes move RIDs), a synthesized l_shipdate value inside
// the loaded date domain, and the number of delta operations the query
// applies in one transaction (its delta size, which also prices it).
type UpdateOp struct {
	Kind  UpdateKind
	Frac  float64
	Date  int64
	Batch int
}

// maxUpdateBatch bounds the per-query delta size drawn by drawUpdate.
const maxUpdateBatch = 4

// ckptWindow is one completed checkpoint/merge interval on the run's
// clock — the window merge-overlap scan latency is measured against.
type ckptWindow struct {
	start, end sim.Time
}

// htapState is the serving run's write path: the PDT store over
// lineitem, the drawn-update machinery, and the background
// checkpoint/merge process with its measurement windows. Created only
// when some write fraction is positive (or unconditionally by the
// long-lived serving engine), so read-only runs keep the historical
// engine untouched.
type htapState struct {
	store   *pdt.Store
	schema  storage.Schema
	shipCol int
	// dateMin/dateMax bound synthesized shipdates to the loaded domain,
	// so updates land inside the predicate windows queries draw.
	dateMin, dateMax int64
	// baseTuples floors deletion: the table never shrinks below half its
	// loaded size, keeping drawn scan ranges meaningful.
	baseTuples int64
	ckptOps    int64
	// mergeCost models the checkpoint's materialization time: the stable
	// image rewritten at the fallback scan speed. During that window
	// reads keep serving from their pinned views — that coexistence is
	// exactly what MergeP95 measures.
	mergeCost sim.Duration
	// mixIns/mixDel are cumulative kind thresholds from UpdateMix.
	mixIns, mixDel float64

	mu          sync.Mutex
	ckptRunning bool
	checkpoints int
	windows     []ckptWindow
}

// hasWrites reports whether any configured write fraction is positive.
func (cfg *ServeConfig) hasWrites() bool {
	if cfg.WriteFrac > 0 {
		return true
	}
	for _, f := range cfg.TenantWriteFrac {
		if f > 0 {
			return true
		}
	}
	return false
}

// writeFrac resolves the effective write fraction for one tenant: an
// explicit TenantWriteFrac entry (index = tenant id, zero allowed, so a
// sweep can pit a write-heavy tenant against read-only ones) overrides
// the global WriteFrac.
func (cfg *ServeConfig) writeFrac(tenant int) float64 {
	if tenant < len(cfg.TenantWriteFrac) {
		f := cfg.TenantWriteFrac[tenant]
		if f < 0 {
			return 0
		}
		return f
	}
	return cfg.WriteFrac
}

// setupHTAP wires the write path when the config asks for one, nil
// otherwise — the nil path is what keeps write-rate-0 runs bit-identical
// to the historical read-only engine.
func (e *env) setupHTAP(db *tpch.DB, cfg ServeConfig) *htapState {
	if !cfg.hasWrites() {
		return nil
	}
	return e.newHTAP(db, cfg)
}

// newHTAP builds the write path unconditionally: the long-lived serving
// engine calls it directly so POST /v1/update works whether or not the
// server was started with a write axis.
func (e *env) newHTAP(db *tpch.DB, cfg ServeConfig) *htapState {
	snap := db.Snapshot("lineitem")
	schema := snap.Table().Schema
	h := &htapState{
		store:      pdt.NewStoreAt(snap),
		schema:     schema,
		shipCol:    db.Col("lineitem", "l_shipdate"),
		baseTuples: snap.NumTuples(),
		ckptOps:    int64(cfg.CheckpointOps),
	}
	if e.predIx != nil {
		h.dateMin, h.dateMax = e.dateMin, e.dateMax
	} else {
		// No zone maps configured: read the date bounds directly (one
		// throwaway block summary, storage-level reads, no modeled I/O).
		h.dateMin, h.dateMax, _ = minmax.Build(snap, h.shipCol, snap.NumTuples()).ValueBounds()
	}
	cols := make([]int, len(schema))
	for i := range cols {
		cols[i] = i
	}
	h.mergeCost = sim.Duration(float64(snap.TotalBytes(cols)) / fallbackScanSpeed * float64(time.Second))
	ins, del, mod := cfg.UpdateMix[0], cfg.UpdateMix[1], cfg.UpdateMix[2]
	if ins <= 0 && del <= 0 && mod <= 0 {
		// Default mix: half modifies (the delta-widening stressor),
		// inserts and deletes balancing each other.
		ins, del, mod = 1, 1, 2
	}
	sum := ins + del + mod
	h.mixIns = ins / sum
	h.mixDel = (ins + del) / sum
	h.store.SetCheckpointHook(func(old, next *storage.Snapshot) {
		e.retireSnapshot(old, next)
	})
	return h
}

// retireSnapshot is the checkpoint hook: the old stable snapshot's
// derived state is invalidated layer by layer — zone maps drop and
// rebuild over the replacement, the buffer pool evicts the retired
// pages (pinned frames, i.e. scans still draining a pinned view,
// survive until they unpin), and the ABM drops its per-version chunk
// interest for versions no scan holds. Runs inside the store's critical
// section, so a view pinned before or after sees a coherent pair.
func (e *env) retireSnapshot(old, next *storage.Snapshot) {
	if e.ctx.Zones != nil {
		for _, col := range e.ctx.Zones.Drop(old) {
			e.ctx.Zones.Build(next, col, e.cfg.ChunkTuples)
		}
	}
	if e.pool != nil {
		for col := range old.Table().Schema {
			e.pool.InvalidatePages(old.Pages(col))
		}
	}
	if e.abm != nil {
		e.abm.InvalidateVersions(next.Table(), next.Version())
	}
}

// drawUpdate samples one update query's shape from the stream rng.
// Draw discipline is golden-critical: exactly four draws (kind, position,
// date, batch) per write query, consumed only after every read-shape and
// lifecycle draw, and only on streams whose write fraction is positive —
// so read-only runs consume exactly the historical rng sequence.
func (h *htapState) drawUpdate(rng *rand.Rand) UpdateOp {
	c := rng.Float64()
	kind := UpdateModify
	switch {
	case c < h.mixIns:
		kind = UpdateInsert
	case c < h.mixDel:
		kind = UpdateDelete
	}
	return UpdateOp{
		Kind:  kind,
		Frac:  rng.Float64(),
		Date:  h.dateMin + rng.Int63n(h.dateMax-h.dateMin+1),
		Batch: 1 + rng.Intn(maxUpdateBatch),
	}
}

// newRow synthesizes one lineitem row: the shipdate carries the drawn
// date (so inserts interact with zone-map windows), everything else is
// a type-correct placeholder.
func (h *htapState) newRow(date int64) pdt.Row {
	row := make(pdt.Row, len(h.schema))
	for i, def := range h.schema {
		switch def.Type {
		case storage.Int64:
			if i == h.shipCol {
				row[i] = pdt.IntVal(date)
			} else {
				row[i] = pdt.IntVal(1)
			}
		case storage.Float64:
			row[i] = pdt.FloatVal(1)
		default:
			row[i] = pdt.StrVal("U")
		}
	}
	return row
}

// apply executes one update query against the store: a single
// transaction of Batch delta operations at positions derived from the
// drawn fraction. Update's critical-section transactions cannot
// conflict, so the error is always nil in practice; it is returned for
// the serving handler's benefit.
func (h *htapState) apply(op UpdateOp) (applied int, err error) {
	err = h.store.Update(func(tx *pdt.Tx) error {
		for i := 0; i < op.Batch; i++ {
			n := tx.NumTuples()
			if n <= 0 {
				return nil
			}
			rid := (int64(op.Frac*float64(n)) + int64(i)*7919) % n
			switch op.Kind {
			case UpdateInsert:
				tx.Insert(rid, h.newRow(op.Date))
			case UpdateDelete:
				if n <= h.baseTuples/2 {
					continue // deletion floor: keep drawn ranges meaningful
				}
				tx.Delete(rid)
			default:
				tx.Modify(rid, h.shipCol, pdt.IntVal(op.Date))
			}
			applied++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return applied, nil
}

// maybeCheckpoint starts the background checkpoint/merge process when
// the committed-but-uncheckpointed delta count crosses the configured
// trigger. The merge runs as its own runtime goroutine: write deltas
// propagate to the read PDT, the materialization cost elapses (reads
// keep serving from pinned views the whole time), and the checkpoint
// swaps in the fresh stable snapshot — retiring the old one through the
// invalidation hook. At most one merge runs at a time.
func (h *htapState) maybeCheckpoint(e *env, wg rt.WaitGroup) {
	if h == nil || h.ckptOps <= 0 || h.store.Pending() < h.ckptOps {
		return
	}
	h.mu.Lock()
	if h.ckptRunning {
		h.mu.Unlock()
		return
	}
	h.ckptRunning = true
	h.mu.Unlock()
	if wg != nil {
		wg.Add(1)
	}
	e.rt.Go("checkpoint", func() {
		if wg != nil {
			defer wg.Done()
		}
		start := e.rt.Now()
		h.store.PropagateWriteToRead()
		e.rt.Sleep(h.mergeCost)
		_, err := h.store.Checkpoint()
		h.mu.Lock()
		if err == nil {
			h.checkpoints++
			h.windows = append(h.windows, ckptWindow{start: start, end: e.rt.Now()})
		}
		h.ckptRunning = false
		h.mu.Unlock()
	})
}

// mergeStats reports the completed checkpoint count and the p95
// end-to-end latency of read queries whose lifetime overlapped a
// checkpoint/merge window — the "does a merge stall scans" number.
func (h *htapState) mergeStats(completed []sched.QueryStat) (checkpoints int, mergeP95 sim.Duration) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	windows := h.windows
	checkpoints = h.checkpoints
	h.mu.Unlock()
	var lats []sim.Duration
	for _, q := range completed {
		if q.Write {
			continue
		}
		for _, w := range windows {
			if q.Arrive < w.end && q.Finish > w.start {
				lats = append(lats, q.Latency())
				break
			}
		}
	}
	return checkpoints, sched.Percentile(lats, 95)
}

// view pins the query's snapshot/delta pair; nil-safe for read-only
// runs (zero View means "use the historical builder path").
func (h *htapState) view() pdt.View {
	if h == nil {
		return pdt.View{}
	}
	return h.store.View()
}

// clipToView clamps a drawn scan range (positioned against the loaded
// tuple count) to the pinned view's current tuple count.
func clipToView(r exec.RIDRange, n int64) exec.RIDRange {
	if r.Hi > n {
		r.Hi = n
	}
	if r.Lo >= r.Hi {
		r.Lo, r.Hi = 0, n
	}
	return r
}

// builderView is builderCtx with the lineitem scan bound to a pinned
// store view: the scan reads the view's stable snapshot merged with its
// flattened deltas, so a checkpoint committing mid-scan never tears it.
// Other tables fall through to the plain snapshot builder.
func (e *env) builderView(ctx *exec.Ctx, db *tpch.DB, view pdt.View) tpch.ScanBuilder {
	base := e.builderCtx(db, ctx)
	return func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		if table != "lineitem" || view.Stable == nil {
			return base(table, cols, ranges, inOrder)
		}
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = db.Col(table, c)
		}
		if ranges == nil {
			ranges = []exec.RIDRange{{Lo: 0, Hi: view.NumTuples()}}
		}
		if e.abm != nil {
			return &exec.CScan{Ctx: ctx, Snap: view.Stable, Cols: idx, Ranges: ranges, InOrder: inOrder, PDT: view.Deltas}
		}
		return &exec.Scan{Ctx: ctx, Snap: view.Stable, Cols: idx, Ranges: ranges, PDT: view.Deltas}
	}
}
