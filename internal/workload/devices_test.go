package workload

import (
	"reflect"
	"testing"
	"time"
)

// ioBoundServeConfig is a serving point where the disk is the bottleneck
// (slow per-device bandwidth, everything arriving at once), so adding
// spindles has something to speed up.
func ioBoundServeConfig() ServeConfig {
	cfg := tinyServeConfig()
	cfg.Policy = PBM
	cfg.BandwidthMB = 40
	cfg.ArrivalRate = 2000
	cfg.MPL = 8
	cfg.QueueDepth = -1
	// The tiny table spans too few blocks for the default 16-block chunk
	// to reach every spindle of a 4-device array (the skew counters catch
	// exactly this); stripe finer so all spindles participate.
	cfg.StripeChunk = 4
	return cfg
}

// Multi-device runs must stay bit-reproducible on the simulator: same
// seed, same table, across runs — including scheduler latencies, pool
// counters, per-tenant stats, and the per-device disk counters.
func TestServeMultiDeviceDeterministic(t *testing.T) {
	for _, devices := range []int{1, 4} {
		devices := devices
		run := func() *ServeResult {
			cfg := ioBoundServeConfig()
			cfg.Devices = devices
			return RunServe(tinyDB, cfg)
		}
		a, b := run(), run()
		if a.Sched != b.Sched || a.TotalIOBytes != b.TotalIOBytes || a.ElapsedSec != b.ElapsedSec {
			t.Fatalf("devices=%d nondeterministic:\n%+v io=%d t=%v\n%+v io=%d t=%v",
				devices, a.Sched, a.TotalIOBytes, a.ElapsedSec, b.Sched, b.TotalIOBytes, b.ElapsedSec)
		}
		if !reflect.DeepEqual(a.DiskStats, b.DiskStats) {
			t.Fatalf("devices=%d nondeterministic disk stats:\n%+v\n%+v", devices, a.DiskStats, b.DiskStats)
		}
		if len(a.DiskStats.PerDevice) != devices {
			t.Fatalf("got %d device stat entries, want %d", len(a.DiskStats.PerDevice), devices)
		}
	}
}

// Striping must actually buy I/O parallelism on an I/O-bound serving
// point: with 4 spindles the same workload finishes sooner and the
// achieved aggregate read bandwidth (bytes / makespan) goes up.
func TestServeMoreDevicesRaiseReadBandwidth(t *testing.T) {
	run := func(devices int) *ServeResult {
		cfg := ioBoundServeConfig()
		cfg.Devices = devices
		return RunServe(tinyDB, cfg)
	}
	r1, r4 := run(1), run(4)
	mbps := func(r *ServeResult) float64 {
		return float64(r.DiskStats.BytesRead) / 1e6 / r.ElapsedSec
	}
	if r1.ElapsedSec <= 0 || r4.ElapsedSec <= 0 {
		t.Fatalf("missing makespans: %v %v", r1.ElapsedSec, r4.ElapsedSec)
	}
	if mbps(r4) <= mbps(r1) {
		t.Fatalf("4-device read bandwidth %.1f MB/s not above 1-device %.1f MB/s",
			mbps(r4), mbps(r1))
	}
	if r4.ElapsedSec >= r1.ElapsedSec {
		t.Fatalf("4-device makespan %.4fs not below 1-device %.4fs", r4.ElapsedSec, r1.ElapsedSec)
	}
	// Striping must spread the bytes: every spindle transfers something.
	if r4.DiskStats.MinDeviceBytes == 0 {
		t.Fatalf("idle spindle: %+v", r4.DiskStats)
	}
}

// Multi-device serving on the real-threaded runtime: the end-to-end
// -race check of the array fan-out under concurrent scans, for both the
// pool path and the ABM (CScan) path.
func TestServeMultiDeviceRealSmoke(t *testing.T) {
	for _, pol := range []Policy{PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyRealServeConfig()
			cfg.Policy = pol
			cfg.Devices = 4
			cfg.StripeChunk = 4
			type outcome struct{ res *ServeResult }
			ch := make(chan outcome, 1)
			go func() { ch <- outcome{RunServe(tinyDB, cfg)} }()
			var res *ServeResult
			select {
			case o := <-ch:
				res = o.res
			case <-time.After(120 * time.Second):
				t.Fatal("real-mode multi-device serve run hung")
			}
			if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", res.Sched)
			}
			if res.TotalIOBytes <= 0 {
				t.Fatal("no I/O recorded")
			}
			if len(res.DiskStats.PerDevice) != 4 {
				t.Fatalf("device stats entries = %d, want 4", len(res.DiskStats.PerDevice))
			}
			var sum int64
			for _, d := range res.DiskStats.PerDevice {
				sum += d.BytesRead
			}
			if sum != res.DiskStats.BytesRead || sum <= 0 {
				t.Fatalf("device bytes %d != aggregate %d", sum, res.DiskStats.BytesRead)
			}
		})
	}
}

// The bandwidth win must materialize on the real runtime too. Concurrent
// serving runs read racy byte volumes (cache hits depend on wall-clock
// interleaving), so this pins the cleanest striping effect instead: a
// single closed-loop stream whose read-ahead batches fan out over the
// spindles. The I/O volume is then identical across device counts and
// the modeled device sleeps dominate the wall clock, so 4 spindles must
// finish the same byte volume measurably faster than 1. Skipped in
// -short (it really sleeps for the modeled I/O).
func TestRealMoreDevicesRaiseReadBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	run := func(devices int) *Result {
		cfg := tinyMicroConfig()
		cfg.Real = true
		cfg.Policy = LRU
		cfg.Streams = 1
		cfg.ThreadsPerQuery = 1
		cfg.QueriesPerStream = 2
		cfg.RangePercents = []int{100}
		cfg.BufferFrac = 1.0 // cold pass only: every load is a read-ahead batch
		// Slow enough that modeled device time dwarfs per-sleep wall
		// overhead (the sim-mode gap at this point is ~40ms, far above
		// time.Sleep jitter).
		cfg.BandwidthMB = 2
		cfg.Devices = devices
		// Block-interleaved striping and a deep read-ahead window: the
		// scan's load batches are the whole parallelism window of a single
		// stream, so every batch must span all spindles.
		cfg.StripeChunk = 1
		cfg.ReadAheadTuples = 65536
		return RunMicro(tinyDB, cfg)
	}
	r1, r4 := run(1), run(4)
	if r1.TotalIOBytes != r4.TotalIOBytes {
		t.Fatalf("single-stream I/O volume diverged: %d vs %d", r1.TotalIOBytes, r4.TotalIOBytes)
	}
	mbps := func(r *Result) float64 {
		return float64(r.DiskStats.BytesRead) / 1e6 / r.MaxStreamSec
	}
	if mbps(r4) <= mbps(r1) {
		t.Fatalf("4-device real read bandwidth %.1f MB/s not above 1-device %.1f MB/s (times %.3fs vs %.3fs)",
			mbps(r4), mbps(r1), r4.MaxStreamSec, r1.MaxStreamSec)
	}
}
