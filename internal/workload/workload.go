// Package workload drives the paper's experiments: concurrent query
// streams over the simulated engine under each buffer-management policy,
// measuring average stream time and total I/O volume (§4), plus the
// sharing-potential analysis of Figures 17 and 18.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/opt"
	"repro/internal/pbm"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/tpch"
	"repro/internal/trace"
)

// Policy selects the buffer-management strategy under test.
type Policy int

// Policies compared in the paper's evaluation (plus the classic MRU/Clock
// baselines and the PBM/LRU future-work variant).
const (
	LRU Policy = iota
	MRU
	Clock
	PBM
	PBMLRU
	CScan
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case MRU:
		return "MRU"
	case Clock:
		return "Clock"
	case PBM:
		return "PBM"
	case PBMLRU:
		return "PBM/LRU"
	case CScan:
		return "CScans"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies enumerates every buffer-management policy, in declaration
// order.
func Policies() []Policy { return []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} }

// ParsePolicy maps a buffer-policy name (as Policy.String prints it,
// case-insensitively) back to its constant — the inverse command-line
// binaries need.
func ParsePolicy(name string) (Policy, bool) {
	for _, p := range Policies() {
		if strings.EqualFold(name, p.String()) {
			return p, true
		}
	}
	return 0, false
}

// Config parameterizes one experiment run.
type Config struct {
	Policy Policy
	// BufferFrac sizes the pool as a fraction of the accessed data
	// volume (the x-axis of Figures 11 and 14).
	BufferFrac float64
	// BandwidthMB is the simulated disk bandwidth in MB/s (Figures 12/15).
	BandwidthMB float64
	// Streams is the number of concurrent query streams (Figures 13/16).
	Streams int
	// QueriesPerStream is the batch length per stream (16 in §4.1).
	QueriesPerStream int
	// ThreadsPerQuery is the XChg fan-out for parallelizable plans (§2.2).
	ThreadsPerQuery int
	// Cores is the CPU core count of the simulated machine.
	Cores int
	// PerTupleCPU is the virtual CPU cost per scanned tuple.
	PerTupleCPU sim.Duration
	// Seed drives all randomized workload choices.
	Seed int64
	// ChunkTuples is the ABM chunk granularity.
	ChunkTuples int64
	// RangePercents is the menu of scan-range sizes (percent of table)
	// the microbenchmark draws from.
	RangePercents []int
	// Selectivities is the menu of predicate selectivities the query
	// generator draws from: each query gets an l_shipdate window spanning
	// that fraction of the date domain, pushed down to the scan for
	// zone-map data skipping. Empty (the default) and entries >= 1 mean
	// unrestricted scans and change nothing — runs stay bit-identical to
	// the pre-skipping engine.
	Selectivities []float64
	// TraceForOPT records the page reference trace (order-preserving
	// policies only) so the caller can replay it under Belady's OPT.
	TraceForOPT bool
	// SharingSampler, when positive, samples the sharing-potential
	// histogram every interval (PBM-family policies only).
	SharingSampler sim.Duration
	// Throttle enables the §5 PBM attach&throttle extension.
	Throttle bool
	// PoolShards is the buffer-pool shard count; 0 (and 1) mean the
	// single-pool baseline the paper's figures are reproduced with. The
	// serving driver defaults to buffer.DefaultShards instead.
	PoolShards int
	// Devices is the number of independent spindles in the striped disk
	// array; 0 (and 1) mean the single-device model the paper's figures
	// are reproduced with. Each device keeps the full BandwidthMB, so
	// aggregate sequential bandwidth scales with the device count.
	Devices int
	// StripeChunk is the array's striping granularity in blocks (pages);
	// 0 means iosim.DefaultStripeChunk. Ignored when Devices <= 1.
	StripeChunk int
	// ReadAheadTuples overrides the scans' per-column read-ahead window
	// when positive (default 8192 tuples). Deeper read-ahead turns into
	// longer load batches, which is what a striped array fans out across
	// its spindles.
	ReadAheadTuples int64
	// IOScheduler selects the device queue discipline
	// (iosim.Config.Scheduler): "" or "fifo" keeps the historical FIFO
	// service bit-identical; "elevator" runs a C-SCAN sweep per spindle.
	IOScheduler string
	// StripeRowRA deepens the scans' read-ahead window to at least one
	// full stripe row (Devices × StripeChunk blocks) when the array has
	// more than one device, so a single scan's read batch lands a piece on
	// every spindle. Off by default: it changes load batching on existing
	// multi-device configurations.
	StripeRowRA bool
	// FastDevices makes the first N spindles an SSD-like fast tier: zero
	// seek latency and FastBandwidthX times the base bandwidth. Zero keeps
	// the array homogeneous (bit-identical).
	FastDevices int
	// FastBandwidthX is the fast tier's bandwidth multiple (default 4;
	// used only when FastDevices > 0).
	FastBandwidthX float64
	// ChunkPlacement optionally overrides the array's round-robin chunk
	// striping (iosim.ArrayConfig.ChunkPlacement) — temperature-based
	// tiering feeds iosim.TemperaturePlacement output here.
	ChunkPlacement []int
	// CollectBlockHeat enables the buffer managers' per-block
	// access-temperature map, reported as Result.BlockHeat. Off by
	// default (the counting walks every registered page range).
	CollectBlockHeat bool
	// HotFrac and HotProb skew the microbenchmark's range starts: with
	// probability HotProb a query's scan range is drawn inside the first
	// HotFrac of the table, concentrating access heat there. HotFrac <= 0
	// (the default) draws nothing extra and keeps the historical uniform
	// rng sequence bit-identical.
	HotFrac float64
	HotProb float64
	// Real selects the real-threaded wall-clock runtime instead of the
	// deterministic simulator: streams run as goroutines, the disk model
	// prices reads in real sleeps, and XChg fans out on a worker pool of
	// Cores workers. Results are NOT reproducible run-to-run; figures and
	// regression tests stay on the simulator.
	Real bool
}

// DefaultMicroConfig returns §4.1's defaults: 8 streams, 16-query
// batches, buffer 40% of accessed volume, 700 MB/s, 8 threads/query.
func DefaultMicroConfig() Config {
	return Config{
		Policy:           PBM,
		BufferFrac:       0.4,
		BandwidthMB:      700,
		Streams:          8,
		QueriesPerStream: 16,
		ThreadsPerQuery:  8,
		Cores:            8,
		PerTupleCPU:      60 * time.Nanosecond,
		Seed:             42,
		// Chunks are sized relative to the scaled-down tables: ~0.7% of
		// lineitem at the default SF, matching the paper's chunk/table
		// ratio on its 30 GB dataset.
		ChunkTuples:   2048,
		RangePercents: []int{1, 10, 50, 100},
	}
}

// DefaultTPCHConfig returns §4.2's defaults: buffer 30% of accessed
// volume, 600 MB/s, 8 streams.
func DefaultTPCHConfig() Config {
	cfg := DefaultMicroConfig()
	cfg.BufferFrac = 0.3
	cfg.BandwidthMB = 600
	cfg.QueriesPerStream = 0 // one pass over all 22 queries
	return cfg
}

// SharingSample is one point of the Figure 17/18 series: the byte volume
// currently wanted by exactly 1, 2, 3, and >=4 active scans.
type SharingSample struct {
	T     sim.Time
	Bytes [4]int64 // index 0 => 1 scan, 3 => >=4 scans
}

// Result reports one experiment run.
type Result struct {
	Policy        string
	AvgStreamSec  float64
	MaxStreamSec  float64
	TotalIOBytes  int64
	AccessedBytes int64
	BufferBytes   int64
	Trace         []opt.Ref
	Sharing       []SharingSample
	PoolStats     buffer.Stats
	ABMStats      abm.Stats
	// DiskStats is the device array's aggregate and per-device report,
	// including the stripe-skew (max/min device bytes) counters.
	DiskStats iosim.ArrayStats
	// RequestedTuples and SkippedTuples are the zone-map pruning
	// counters: tuples requested by predicate-carrying scans, and the
	// subset proven irrelevant and skipped before any I/O was scheduled.
	// Both zero when no selectivity axis is configured.
	RequestedTuples int64
	SkippedTuples   int64
	// BlockHeat is the per-block access-temperature map collected by the
	// run's buffer manager; nil unless Config.CollectBlockHeat is set.
	// Feed it through ChunkHeat/iosim.TemperaturePlacement to build a
	// tiered ChunkPlacement for a follow-up run.
	BlockHeat map[iosim.BlockID]float64
}

// OPTIOBytes replays the run's trace under Belady's OPT (§4's
// methodology) and returns the optimal I/O volume for the same buffer.
func (r *Result) OPTIOBytes() int64 {
	if len(r.Trace) == 0 {
		return 0
	}
	return opt.Simulate(r.Trace, r.BufferBytes).BytesLoaded
}

// env wires one engine instance for a config, on the simulated or the
// real-threaded runtime.
type env struct {
	cfg    Config
	rt     rt.Runtime
	disk   *iosim.DeviceArray
	pool   *buffer.Pool
	pbm    *pbm.Group
	abm    *abm.ABM
	ctx    *exec.Ctx
	rec    *trace.Recorder
	result *Result
	skipEnv
}

func newEnv(cfg Config, accessedBytes int64) *env {
	e := &env{cfg: cfg, result: &Result{Policy: cfg.Policy.String()}}
	if cfg.Real {
		e.rt = rt.NewReal()
	} else {
		e.rt = rt.Sim(sim.NewEngine())
	}
	base := iosim.Config{
		Bandwidth:   cfg.BandwidthMB * 1e6,
		SeekLatency: 50 * time.Microsecond,
		Scheduler:   cfg.IOScheduler,
	}
	var tiers []iosim.Config
	if cfg.FastDevices > 0 {
		x := cfg.FastBandwidthX
		if x <= 0 {
			x = 4
		}
		tiers = make([]iosim.Config, cfg.FastDevices)
		for i := range tiers {
			// SSD-like fast tier: no seek penalty, a multiple of the base
			// bandwidth.
			tiers[i] = iosim.Config{Bandwidth: base.Bandwidth * x, SeekLatency: 0}
		}
	}
	e.disk = iosim.NewArray(e.rt, iosim.ArrayConfig{
		Config:         base,
		Devices:        cfg.Devices,
		StripeChunk:    cfg.StripeChunk,
		DeviceConfigs:  tiers,
		ChunkPlacement: cfg.ChunkPlacement,
	})
	capBytes := int64(cfg.BufferFrac * float64(accessedBytes))
	if capBytes < 256<<10 {
		capBytes = 256 << 10
	}
	e.result.BufferBytes = capBytes
	e.result.AccessedBytes = accessedBytes

	ra := cfg.ReadAheadTuples
	if ra <= 0 {
		ra = 8192
	}
	e.ctx = &exec.Ctx{
		RT:              e.rt,
		CPU:             exec.NewCPU(e.rt, cfg.Cores),
		PerTupleCPU:     cfg.PerTupleCPU,
		ReadAheadTuples: ra,
	}
	if cfg.StripeRowRA && e.disk.Devices() > 1 {
		e.ctx.StripeRowBlocks = e.disk.Devices() * e.disk.StripeChunk()
	}
	if cfg.Real {
		e.ctx.Workers = rt.NewWorkerPool(e.rt, cfg.Cores)
	}
	switch cfg.Policy {
	case CScan:
		e.abm = abm.New(e.rt, e.disk, abm.Config{
			ChunkTuples:      cfg.ChunkTuples,
			Capacity:         capBytes,
			CollectBlockHeat: cfg.CollectBlockHeat,
		})
		e.ctx.ABM = e.abm
	default:
		shards := cfg.PoolShards
		if shards <= 0 {
			shards = 1
		}
		var factory func(int) buffer.Policy
		switch cfg.Policy {
		case LRU, MRU, Clock:
			factory = buffer.FactoryOf(cfg.Policy.String())
		case PBM, PBMLRU:
			pc := pbm.DefaultConfig()
			// The bucket timeline must resolve the simulation's
			// timescale: queries at the scaled-down data volume finish in
			// milliseconds, so a paper-scale 100 ms slice would fold all
			// estimates into bucket zero.
			pc.TimeSlice = 500 * time.Microsecond
			pc.NumGroups = 12
			pc.DefaultSpeed = 1e8
			pc.LRUMode = cfg.Policy == PBMLRU
			pc.CollectBlockHeat = cfg.CollectBlockHeat
			g := pbm.NewGroup(e.rt, pc, shards)
			if cfg.Throttle {
				tc := pbm.DefaultThrottleConfig()
				tc.Enabled = true
				g.SetThrottle(tc)
			}
			e.pbm = g
			factory = g.PolicyFactory()
		}
		e.pool = buffer.NewShardedPool(e.rt, e.disk, factory, capBytes, shards)
		e.ctx.Pool = e.pool
		if e.pbm != nil {
			// Assign only when non-nil: Ctx.PBM is an interface, and a
			// typed-nil *Group would defeat the scans' nil check.
			e.ctx.PBM = e.pbm
		}
	}
	if cfg.TraceForOPT && e.pool != nil {
		e.rec = trace.NewRecorder()
		e.rec.Attach(e.pool)
	}
	return e
}

// fallbackScanSpeed prices scans for admission when no PBM instance is
// live to observe real speeds. It matches the serving PBM configuration's
// DefaultSpeed (newEnv sets 1e8 tuples/s for the scaled-down data), so
// fifo/sesf/wfq comparisons across buffer policies see commensurate cost
// estimates.
const fallbackScanSpeed = 1e8

// costModel returns the admission cost hook for the run: the PBM group's
// live estimate when predictive buffer management is active, a constant
// tuples-per-second model otherwise. Either way, a query's expected work
// scales with its scan length, which is what cost-aware admission orders
// by.
func (e *env) costModel() exec.ScanCostModel {
	if e.pbm != nil {
		return e.pbm
	}
	return exec.FixedSpeedCost(fallbackScanSpeed)
}

// builder returns the ScanBuilder matching the policy: Scan through the
// pool, or CScan through the ABM.
func (e *env) builder(db *tpch.DB) tpch.ScanBuilder {
	return e.builderCtx(db, e.ctx)
}

// builderCtx is builder with an explicit execution context — the serving
// path passes a per-query WithQuery copy so every operator of the plan
// shares that query's lifecycle.
func (e *env) builderCtx(db *tpch.DB, ctx *exec.Ctx) tpch.ScanBuilder {
	return func(table string, cols []string, ranges []exec.RIDRange, inOrder bool) exec.Op {
		snap := db.Snapshot(table)
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = db.Col(table, c)
		}
		if ranges == nil {
			ranges = []exec.RIDRange{{Lo: 0, Hi: snap.NumTuples()}}
		}
		if e.abm != nil {
			return &exec.CScan{Ctx: ctx, Snap: snap, Cols: idx, Ranges: ranges, InOrder: inOrder}
		}
		return &exec.Scan{Ctx: ctx, Snap: snap, Cols: idx, Ranges: ranges}
	}
}

// parallelScanPlan wraps a per-partition plan factory in an XChg per §2.2.
func (e *env) parallel(parts []func() exec.Op) exec.Op {
	return e.parallelCtx(e.ctx, parts)
}

func (e *env) parallelCtx(ctx *exec.Ctx, parts []func() exec.Op) exec.Op {
	if len(parts) == 1 {
		return parts[0]()
	}
	return &exec.XChg{Ctx: ctx, Parts: parts}
}

// finish collects run metrics. streamEnds holds each stream's completion
// time.
func (e *env) finish(streamEnds []sim.Time) *Result {
	var sum, max sim.Time
	for _, t := range streamEnds {
		sum += t
		if t > max {
			max = t
		}
	}
	if n := len(streamEnds); n > 0 {
		e.result.AvgStreamSec = (sum / sim.Time(len(streamEnds))).Seconds()
	}
	e.result.MaxStreamSec = max.Seconds()
	if e.pool != nil {
		e.result.PoolStats = e.pool.Stats()
		e.result.TotalIOBytes = e.pool.Stats().BytesLoaded
	}
	if e.abm != nil {
		e.result.ABMStats = e.abm.Stats()
		e.result.TotalIOBytes = e.abm.Stats().BytesLoaded
	}
	if e.rec != nil {
		e.result.Trace = e.rec.Refs()
	}
	if e.ctx.Skip != nil {
		e.result.RequestedTuples, e.result.SkippedTuples = e.ctx.Skip.Counts()
	}
	if e.cfg.CollectBlockHeat {
		if e.abm != nil {
			e.result.BlockHeat = e.abm.BlockHeat()
		} else if e.pbm != nil {
			e.result.BlockHeat = e.pbm.BlockHeat()
		}
	}
	e.result.DiskStats = e.disk.Stats()
	return e.result
}

// ChunkHeat folds a per-block temperature map into per-stripe-chunk heat,
// sized to cover the hottest observed block — the input shape
// iosim.TemperaturePlacement consumes.
func ChunkHeat(blockHeat map[iosim.BlockID]float64, stripeChunk int) []float64 {
	if len(blockHeat) == 0 {
		return nil
	}
	if stripeChunk <= 0 {
		stripeChunk = iosim.DefaultStripeChunk
	}
	maxChunk := 0
	for b := range blockHeat {
		if c := int(int64(b) / int64(stripeChunk)); c > maxChunk {
			maxChunk = c
		}
	}
	heat := make([]float64, maxChunk+1)
	for b, h := range blockHeat {
		heat[int64(b)/int64(stripeChunk)] += h
	}
	return heat
}

// sharingSampler starts the Figure 17/18 sampler process; stop it by
// firing the returned event after the streams complete.
func (e *env) sharingSampler() rt.Event {
	stop := e.rt.NewEvent()
	if e.cfg.SharingSampler <= 0 || e.pbm == nil {
		return stop
	}
	var done atomic.Bool
	sample := func() {
		counts := e.pbm.SharingVolumes()
		var s SharingSample
		s.T = e.rt.Now()
		s.Bytes[0] = counts[1]
		s.Bytes[1] = counts[2]
		s.Bytes[2] = counts[3]
		s.Bytes[3] = counts[4]
		e.result.Sharing = append(e.result.Sharing, s)
	}
	e.rt.Go("sharing-sampler", func() {
		e.rt.Go("sharing-stop", func() {
			stop.Wait()
			done.Store(true)
		})
		// An early sample catches short runs that finish within the
		// first full interval.
		e.rt.Sleep(e.cfg.SharingSampler / 10)
		if !done.Load() {
			sample()
		}
		for !done.Load() {
			e.rt.Sleep(e.cfg.SharingSampler)
			if done.Load() {
				break
			}
			sample()
		}
		if len(e.result.Sharing) == 0 {
			sample()
		}
	})
	return stop
}

// randRange picks a random scan range of pct% of n tuples, starting at a
// random position (clipped at the end of the table), per §4.1.
func randRange(rng *rand.Rand, n int64, pct int) exec.RIDRange {
	span := n * int64(pct) / 100
	if span < 1 {
		span = 1
	}
	maxStart := n - span
	var start int64
	if maxStart > 0 {
		start = rng.Int63n(maxStart)
	}
	return exec.RIDRange{Lo: start, Hi: start + span}
}

// randRangeSkewed is randRange with an access-skew overlay: with
// probability hotProb the range start is drawn inside the first hotFrac
// of the table, concentrating heat there (the workload shape temperature
// -based tiering exploits). hotFrac <= 0 or hotProb <= 0 takes the plain
// randRange path and consumes exactly its rng draws, keeping disabled
// runs bit-identical.
func randRangeSkewed(rng *rand.Rand, n int64, pct int, hotFrac, hotProb float64) exec.RIDRange {
	if hotFrac <= 0 || hotProb <= 0 {
		return randRange(rng, n, pct)
	}
	span := n * int64(pct) / 100
	if span < 1 {
		span = 1
	}
	maxStart := n - span
	var start int64
	if maxStart > 0 {
		if rng.Float64() < hotProb {
			hotMax := int64(float64(n)*hotFrac) - span
			if hotMax > maxStart {
				hotMax = maxStart
			}
			if hotMax > 0 {
				start = rng.Int63n(hotMax)
			}
		} else {
			start = rng.Int63n(maxStart)
		}
	}
	return exec.RIDRange{Lo: start, Hi: start + span}
}
