package workload

import (
	"reflect"
	"testing"

	"repro/internal/iosim"
	"repro/internal/tpch"
)

// smallDB is a step up from tinyDB for the device-intelligence tests:
// tinyDB's columns span too few 16 KB pages for a stripe row to fan out
// or for block heat to have a visible shape.
var smallDB = tpch.Generate(0.02, 11)

// TestStripeRowRAAggregateBandwidth pins the device-aware read-ahead
// win: a single cold stream with a shallow base window reads one block
// at a time, so a 4-spindle array serves it at roughly one spindle's
// bandwidth. Deepening to a stripe row (StripeRowRA) makes every load
// batch span all spindles, so the achieved aggregate bandwidth must
// clear at least twice a single spindle's.
func TestStripeRowRAAggregateBandwidth(t *testing.T) {
	run := func(rowRA bool) *Result {
		cfg := tinyMicroConfig()
		cfg.Policy = LRU
		cfg.Streams = 1
		cfg.ThreadsPerQuery = 1
		cfg.QueriesPerStream = 1
		cfg.RangePercents = []int{100}
		cfg.BufferFrac = 1.0 // cold pass only: every load is a read batch
		cfg.BandwidthMB = 2  // slow spindles so I/O dominates the makespan
		cfg.Devices = 4
		cfg.StripeChunk = 4
		cfg.ReadAheadTuples = 1 // shallow base window: one block per batch
		cfg.StripeRowRA = rowRA
		return RunMicro(smallDB, cfg)
	}
	off, on := run(false), run(true)
	if off.TotalIOBytes != on.TotalIOBytes {
		t.Fatalf("cold-pass I/O volume diverged: %d vs %d", off.TotalIOBytes, on.TotalIOBytes)
	}
	mbps := func(r *Result) float64 {
		return float64(r.DiskStats.BytesRead) / 1e6 / r.MaxStreamSec
	}
	if mbps(on) <= mbps(off) {
		t.Fatalf("stripe-row RA bandwidth %.2f MB/s not above base %.2f MB/s", mbps(on), mbps(off))
	}
	if want := 2 * 2.0; mbps(on) < want {
		t.Fatalf("stripe-row RA bandwidth %.2f MB/s below 2x one spindle (%.1f MB/s)", mbps(on), want)
	}
}

// The elevator discipline must stay bit-reproducible on the simulator
// and must actually reduce seeks against FIFO service at an I/O-bound
// serving point with many interleaved scans.
func TestServeElevatorDeterministicAndFewerSeeks(t *testing.T) {
	run := func(sched string) *ServeResult {
		cfg := ioBoundServeConfig()
		cfg.Devices = 4
		cfg.IOScheduler = sched
		return RunServe(tinyDB, cfg)
	}
	a, b := run("elevator"), run("elevator")
	if a.Sched != b.Sched || a.TotalIOBytes != b.TotalIOBytes || a.ElapsedSec != b.ElapsedSec {
		t.Fatalf("elevator nondeterministic:\n%+v io=%d t=%v\n%+v io=%d t=%v",
			a.Sched, a.TotalIOBytes, a.ElapsedSec, b.Sched, b.TotalIOBytes, b.ElapsedSec)
	}
	if !reflect.DeepEqual(a.DiskStats, b.DiskStats) {
		t.Fatalf("elevator nondeterministic disk stats:\n%+v\n%+v", a.DiskStats, b.DiskStats)
	}
	fifo := run("fifo")
	if a.Sched.Completed != fifo.Sched.Completed {
		t.Fatalf("completions diverged: elevator %d, fifo %d", a.Sched.Completed, fifo.Sched.Completed)
	}
	if a.DiskStats.Seeks >= fifo.DiskStats.Seeks {
		t.Fatalf("elevator seeks %d not below fifo seeks %d", a.DiskStats.Seeks, fifo.DiskStats.Seeks)
	}
}

// I/O priority threading is a smoke-plus-determinism check: wfq weights
// reach the device queue as per-query hints without disturbing the
// scheduler's accounting, on both the pool path and the ABM path.
func TestServeIOPriorityDeterministic(t *testing.T) {
	for _, pol := range []Policy{PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func() *ServeResult {
				cfg := ioBoundServeConfig()
				cfg.Policy = pol
				cfg.Devices = 4
				cfg.IOScheduler = "elevator"
				cfg.AdmissionPolicy = "wfq"
				cfg.TenantWeights = []float64{4, 1, 1, 1}
				cfg.IOPriority = true
				return RunServe(tinyDB, cfg)
			}
			a, b := run(), run()
			if a.Sched.Completed+a.Sched.Rejected+a.Sched.TimedOut != a.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", a.Sched)
			}
			if a.Sched != b.Sched || !reflect.DeepEqual(a.DiskStats, b.DiskStats) {
				t.Fatalf("ioprio nondeterministic:\n%+v %+v\n%+v %+v", a.Sched, a.DiskStats, b.Sched, b.DiskStats)
			}
		})
	}
}

// Block-heat collection must see the configured access skew. Block ids
// interleave all columns, so "the first tenth of the table" is not a
// prefix of block space; instead the skewed mix must concentrate heat:
// its chunk-heat Herfindahl index (sum of squared heat shares) has to be
// well above the uniform mix's.
func TestBlockHeatSeesAccessSkew(t *testing.T) {
	run := func(hotFrac, hotProb float64) []float64 {
		cfg := tinyMicroConfig()
		cfg.Policy = PBM
		cfg.RangePercents = []int{1, 10}
		cfg.CollectBlockHeat = true
		cfg.HotFrac = hotFrac
		cfg.HotProb = hotProb
		res := RunMicro(smallDB, cfg)
		if len(res.BlockHeat) == 0 {
			t.Fatal("no block heat collected")
		}
		return ChunkHeat(res.BlockHeat, 4)
	}
	hhi := func(heat []float64) float64 {
		var total, sq float64
		for _, h := range heat {
			total += h
		}
		if total == 0 {
			t.Fatal("zero total heat")
		}
		for _, h := range heat {
			s := h / total
			sq += s * s
		}
		return sq
	}
	uniform, skewed := run(0, 0), run(0.1, 0.9)
	if uh, sh := hhi(uniform), hhi(skewed); sh <= 1.5*uh {
		t.Fatalf("skewed mix heat concentration %.4f not well above uniform %.4f", sh, uh)
	}
}

// TestTieredTempBeatsRoundRobin is the tiering acceptance point: on a
// skew-heavy serving mix over a 2-fast/2-slow array, placing the hottest
// chunks on the fast tier (from a profiling pass's heat map) must finish
// the same workload sooner than round-robin striping.
func TestTieredTempBeatsRoundRobin(t *testing.T) {
	base := func() ServeConfig {
		cfg := ioBoundServeConfig()
		cfg.Devices = 4
		cfg.FastDevices = 2
		cfg.HotFrac = 0.1
		cfg.HotProb = 0.9
		return cfg
	}
	// Profiling pass: identical mix, round-robin placement, heat on.
	prof := base()
	prof.CollectBlockHeat = true
	pres := RunServe(tinyDB, prof)
	heat := ChunkHeat(pres.BlockHeat, prof.StripeChunk)
	if len(heat) == 0 {
		t.Fatal("profiling pass collected no heat")
	}
	place := iosim.TemperaturePlacement(heat, 4, []int{0, 1})

	rr := RunServe(tinyDB, base())
	tempCfg := base()
	tempCfg.ChunkPlacement = place
	temp := RunServe(tinyDB, tempCfg)
	if temp.Sched.Completed != rr.Sched.Completed {
		t.Fatalf("completions diverged: temp %d, rr %d", temp.Sched.Completed, rr.Sched.Completed)
	}
	if temp.ElapsedSec >= rr.ElapsedSec {
		t.Fatalf("temperature placement makespan %.4fs not below round-robin %.4fs",
			temp.ElapsedSec, rr.ElapsedSec)
	}
}
