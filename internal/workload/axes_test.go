package workload

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// parseAxes runs one simulated command line through the full
// RegisterFlags + flag parse + Parse path.
func parseAxes(t *testing.T, args ...string) (*ServeAxes, error) {
	t.Helper()
	var a ServeAxes
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return &a, a.Parse()
}

func TestServeAxesParse(t *testing.T) {
	a, err := parseAxes(t,
		"-rates", "1,5.5", "-mpls", "8, 32", "-shards", "1,8",
		"-iosched", "fifo,elevator", "-tiers", "tiered-temp",
		"-policies", "fifo,wfq", "-weights", "2,1",
		"-selectivities", "0.1,1", "-slo", "100ms", "-deadline", "1s",
		"-cancel", "0.25", "-tenants", "2", "-queue", "16",
	)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(a.Rates) != 2 || a.Rates[1] != 5.5 {
		t.Errorf("Rates = %v", a.Rates)
	}
	if len(a.MPLs) != 2 || a.MPLs[0] != 8 || a.MPLs[1] != 32 {
		t.Errorf("MPLs = %v (whitespace should be trimmed)", a.MPLs)
	}
	if len(a.IOSchedulers) != 2 || a.IOSchedulers[1] != "elevator" {
		t.Errorf("IOSchedulers = %v", a.IOSchedulers)
	}
	if len(a.AdmissionPolicies) != 2 || a.AdmissionPolicies[1] != "wfq" {
		t.Errorf("AdmissionPolicies = %v", a.AdmissionPolicies)
	}
	if a.SLO != 100*time.Millisecond || a.Deadline != time.Second || a.CancelRate != 0.25 {
		t.Errorf("SLO/Deadline/CancelRate = %v/%v/%v", a.SLO, a.Deadline, a.CancelRate)
	}
}

func TestServeAxesParseErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the error
	}{
		{[]string{"-rates", "1,x"}, `-rates: bad element "x": not a number`},
		{[]string{"-mpls", "0"}, `-mpls: bad element "0": must be positive`},
		{[]string{"-selectivities", "1.5"}, "-selectivities: bad element 1.5: must be in (0,1]"},
		{[]string{"-iosched", "lifo"}, `-iosched: bad element "lifo" (valid: fifo, elevator)`},
		{[]string{"-tiers", "warm"}, `-tiers: bad element "warm"`},
		{[]string{"-policies", "bogus"}, `unknown admission policy "bogus"`},
		{[]string{"-cancel", "1.5"}, "-cancel: bad value 1.5: must be in [0,1]"},
		{[]string{"-deadline", "-1s"}, "-deadline: bad value -1s"},
		{[]string{"-tenants", "-1"}, "-tenants: bad value -1"},
		{[]string{"-stripe", "-4"}, "-stripe: bad value -4"},
		{[]string{"-hotfrac", "2"}, "-hotfrac: bad value 2"},
		{[]string{"-hotprob", "-0.5"}, "-hotprob: bad value -0.5"},
	}
	for _, c := range cases {
		_, err := parseAxes(t, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: err = %v, want substring %q", c.args, err, c.want)
		}
	}
}

// TestServeAxesScopes: the scope helpers name exactly the set flags a
// mode must reject, so a flag declared with the wrong scope (or not
// classified at all) shows up as a test diff, not a silent ignore.
func TestServeAxesScopes(t *testing.T) {
	a, err := parseAxes(t,
		"-rates", "1", "-queue", "8", "-slo", "50ms", // serve/compare scope
		"-iosched", "elevator", "-json", "/tmp/x", "-clustered", // serve-only scope
		"-shards", "4", "-devices", "2", "-stripe", "8", // figure scope: never rejected
	)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := a.ServeOnly(), []string{"iosched", "json", "clustered"}; !equalStrings(got, want) {
		t.Errorf("ServeOnly() = %v, want %v", got, want)
	}
	if got, want := a.ServeOrCompareOnly(), []string{"rates", "queue", "slo", "iosched", "json", "clustered"}; !equalStrings(got, want) {
		t.Errorf("ServeOrCompareOnly() = %v, want %v", got, want)
	}

	// Every flag in the table must be classified and every scope helper
	// must cover its scope: an unset axes value reports nothing.
	b, err := parseAxes(t)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := b.ServeOrCompareOnly(); len(got) != 0 {
		t.Errorf("ServeOrCompareOnly() on defaults = %v, want empty", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
