package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// serveFingerprint renders every scheduler counter of a spread of
// sim-mode serving runs with full precision: the three main buffer
// policies at the default serving point, an overloaded bounded-queue
// configuration that exercises rejections, and a wide-MPL unbounded
// queue. The file it is compared against was generated BEFORE the
// admission-policy refactor (pluggable fifo/sesf/wfq), so a passing test
// proves the fifo policy is bit-identical to the historical hard-coded
// FIFO admission queue: any change to the admission order or virtual-time
// trajectory shifts a latency percentile or counter and shows up as a
// diff.
func serveFingerprint() string {
	var b strings.Builder
	run := func(name string, cfg ServeConfig) {
		res := RunServe(tinyDB, cfg)
		fmt.Fprintf(&b, "serve/%s sched=%s io=%d\n", name, schedStr(res.Sched), res.TotalIOBytes)
	}
	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		run("policy="+pol.String(), cfg)
	}
	busy := tinyServeConfig()
	busy.Policy = PBM
	busy.ArrivalRate = 500
	busy.MPL = 2
	run("queued", busy)
	hot := tinyServeConfig()
	hot.Policy = PBM
	hot.ArrivalRate = 2000
	hot.MPL = 2
	hot.QueueDepth = 4
	run("overload", hot)
	wide := tinyServeConfig()
	wide.Policy = LRU
	wide.MPL = 16
	wide.QueueDepth = -1
	run("wide", wide)
	return b.String()
}

// TestServeFIFOGoldenUnchanged is the FIFO-equivalence regression of the
// pluggable-admission-policy refactor: serving output under the default
// (fifo) policy must be bit-identical to the recorded pre-refactor
// output. Regenerate with `go test -run ServeFIFOGolden -update` ONLY for
// an intentional semantic change to admission or the simulation.
func TestServeFIFOGoldenUnchanged(t *testing.T) {
	path := filepath.Join("testdata", "serve_fifo_golden.txt")
	got := serveFingerprint()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("serve output diverged from pre-refactor fifo output\n--- want\n%s--- got\n%s", want, got)
	}
}
