package workload

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the sim-mode golden output files")

// goldenFingerprint renders every counter of a set of sim-mode runs with
// full precision. The file it is compared against was generated BEFORE
// the Runtime seam was introduced, so a passing test proves the sim
// runtime is bit-identical to the historical engine-everywhere code: any
// change to the virtual-time trajectory — an extra yield, a reordered
// wake-up, a float rounding change — shifts at least one latency
// percentile or I/O counter and shows up as a diff.
func goldenFingerprint() string {
	var b strings.Builder
	micro := func(name string, cfg Config) {
		res := RunMicro(tinyDB, cfg)
		fmt.Fprintf(&b, "micro/%s avg=%.9f max=%.9f io=%d accessed=%d buffer=%d\n",
			name, res.AvgStreamSec, res.MaxStreamSec, res.TotalIOBytes, res.AccessedBytes, res.BufferBytes)
		fmt.Fprintf(&b, "micro/%s pool=%+v abm=%+v\n", name, res.PoolStats, res.ABMStats)
	}
	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyMicroConfig()
		cfg.Policy = pol
		micro(pol.String(), cfg)
	}
	shardCfg := tinyMicroConfig()
	shardCfg.Policy = PBM
	shardCfg.PoolShards = 4
	micro("PBM-4shards", shardCfg)

	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		res := RunServe(tinyDB, cfg)
		// schedStr renders the historical Stats fields byte-identically to
		// the %+v this file was recorded with, so the golden stays valid
		// as Stats grows lifecycle fields.
		fmt.Fprintf(&b, "serve/%s sched=%s\n", pol.String(), schedStr(res.Sched))
		fmt.Fprintf(&b, "serve/%s io=%d pool=%+v abm=%+v\n",
			pol.String(), res.TotalIOBytes, res.PoolStats, res.ABMStats)
	}
	return b.String()
}

// TestSimGoldenUnchanged is the determinism regression of the Runtime
// refactor: sim-mode output must be bit-identical to the recorded
// pre-refactor output. Regenerate with `go test -run Golden -update`
// ONLY for an intentional semantic change to the simulation.
func TestSimGoldenUnchanged(t *testing.T) {
	path := filepath.Join("testdata", "sim_golden.txt")
	got := goldenFingerprint()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sim output diverged from pre-refactor golden output\n--- want\n%s--- got\n%s", want, got)
	}
}
