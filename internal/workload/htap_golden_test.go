package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tpch"
)

// htapFingerprint renders a spread of sim-mode runs with NO update
// stream configured, covering every path the HTAP refactor touches:
// the three main buffer policies through the serving stack (admission,
// plan building, the scan operators' range pruning), a clustered
// selectivity-mix serve run where the zone maps really skip (range
// pruning moves from a bool gate to delta-aware segment walking), a
// weighted wfq run (write admission shares these policies), and a
// deadline+cancel run (the update stream's rng draws must come after
// the lifecycle draws without perturbing them). The file it is
// compared against was generated BEFORE pdt.Store views were threaded
// through the engine, so a passing test proves the write-rate-0 path
// is bit-identical to the read-only engine.
func htapFingerprint() string {
	var b strings.Builder
	run := func(name string, db *tpch.DB, cfg ServeConfig) {
		res := RunServe(db, cfg)
		fmt.Fprintf(&b, "htap/%s sched=%s io=%d skip=%d/%d\n",
			name, schedStr(res.Sched), res.TotalIOBytes,
			res.SkippedTuples, res.RequestedTuples)
	}
	for _, pol := range []Policy{LRU, PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		run("policy="+pol.String(), tinyDB, cfg)
	}
	for _, pol := range []Policy{PBM, CScan} {
		cfg := tinyServeConfig()
		cfg.Policy = pol
		cfg.Selectivities = []float64{0.05, 0.5, 1}
		run("skip/"+pol.String(), clusteredTinyDB, cfg)
	}
	wfq := tinyServeConfig()
	wfq.Policy = PBM
	wfq.AdmissionPolicy = "wfq"
	wfq.ArrivalRate = 500
	wfq.Tenants = 4
	wfq.TenantWeights = []float64{4, 2, 1, 1}
	run("wfq", tinyDB, wfq)
	life := tinyServeConfig()
	life.Policy = CScan
	life.Deadline = tinyServeConfig().SLO
	life.CancelRate = 0.2
	run("lifecycle", tinyDB, life)
	return b.String()
}

// TestHTAPGoldenWriteRateZeroUnchanged is the no-behavior-change
// regression of the HTAP/versioned-snapshot refactor: with no update
// stream configured, every serving run must be bit-identical to the
// recorded pre-refactor output — no extra rng draws, no extra events,
// no changed pruning decisions. Regenerate with
// `go test -run HTAPGolden -update` ONLY for an intentional semantic
// change to the simulation.
func TestHTAPGoldenWriteRateZeroUnchanged(t *testing.T) {
	path := filepath.Join("testdata", "htap_golden.txt")
	got := htapFingerprint()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("write-rate-0 output diverged from pre-refactor golden\n--- want\n%s--- got\n%s", want, got)
	}
}
