package workload

import (
	"testing"
	"time"

	"repro/internal/tpch"
)

// clusteredTinyDB is tinyDB's scale and seed with lineitem physically
// sorted by l_shipdate — the layout that gives zone maps something to
// prune. Same tuples, different order: query answers are unchanged.
var clusteredTinyDB = tpch.GenerateOpt(0.004, 11, tpch.GenOptions{ClusteredShipdate: true})

// TestSelectivityReducesIOOnClusteredData is the sim-mode acceptance
// check of data skipping: on clustered data, a 1%-selective workload
// over full-range scans must touch dramatically fewer device bytes than
// the unrestricted run, because the zone maps exclude most chunks before
// any I/O is scheduled.
func TestSelectivityReducesIOOnClusteredData(t *testing.T) {
	for _, pol := range []Policy{PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			base := tinyMicroConfig()
			base.Policy = pol
			base.RangePercents = []int{100} // I/O-bound: every query scans the full table
			base.ChunkTuples = 512          // fine chunks: pruning granularity matters at tiny scale
			// Few queries: at tiny scale the UNION of many random 1% windows
			// covers most chunks, flooring the I/O regardless of per-query
			// skipping; the reduction claim is about the workload's windows,
			// not window count.
			base.Streams = 2
			base.QueriesPerStream = 2
			full := RunMicro(clusteredTinyDB, base)
			selCfg := base
			selCfg.Selectivities = []float64{0.01}
			sel := RunMicro(clusteredTinyDB, selCfg)

			if sel.RequestedTuples == 0 || sel.SkippedTuples == 0 {
				t.Fatalf("skipping never engaged: requested=%d skipped=%d",
					sel.RequestedTuples, sel.SkippedTuples)
			}
			skipPct := 100 * float64(sel.SkippedTuples) / float64(sel.RequestedTuples)
			if skipPct < 50 {
				t.Errorf("skip rate %.1f%%, want >= 50%% on clustered data", skipPct)
			}
			if sel.TotalIOBytes*2 > full.TotalIOBytes {
				t.Errorf("selective run read %d bytes, full run %d: want >= 50%% reduction",
					sel.TotalIOBytes, full.TotalIOBytes)
			}
			t.Logf("%v: full I/O %d, 1%%-selective I/O %d (skip %.1f%%)",
				pol, full.TotalIOBytes, sel.TotalIOBytes, skipPct)
		})
	}
}

// TestSelectivityDoesNotChangeAnswers: skipping is a physical
// optimization — with the exact filter applied on top of pruning, a
// selective run must produce positive, plausible results and identical
// results across repeated runs (the simulator stays deterministic with
// the predicate draws in the stream).
func TestSelectivityDeterministicWithPredicates(t *testing.T) {
	cfg := tinyMicroConfig()
	cfg.Policy = PBM
	cfg.Selectivities = []float64{1, 0.1, 0.01}
	a := RunMicro(clusteredTinyDB, cfg)
	b := RunMicro(clusteredTinyDB, cfg)
	if a.AvgStreamSec != b.AvgStreamSec || a.TotalIOBytes != b.TotalIOBytes ||
		a.RequestedTuples != b.RequestedTuples || a.SkippedTuples != b.SkippedTuples {
		t.Fatalf("selective runs not bit-identical:\n%+v\n%+v", a, b)
	}
	if a.AvgStreamSec <= 0 || a.TotalIOBytes <= 0 {
		t.Fatalf("bad selective result: %+v", a)
	}
}

// TestRunServeRealMixedSelectivitiesSmoke runs the full serving stack on
// the real-threaded runtime with a mixed selectivity axis and a
// per-tenant override, under sesf so the skip-aware admission pricing
// path runs concurrently too. Under -race this is the concurrency check
// of the zone-map registry and the atomic skip counters.
func TestRunServeRealMixedSelectivitiesSmoke(t *testing.T) {
	for _, pol := range []Policy{PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := tinyRealServeConfig()
			cfg.Policy = pol
			cfg.AdmissionPolicy = "sesf"
			cfg.Selectivities = []float64{1, 0.01}
			cfg.TenantSelectivities = [][]float64{{0.01}} // tenant 0 always selective
			type outcome struct{ res *ServeResult }
			ch := make(chan outcome, 1)
			go func() { ch <- outcome{RunServe(clusteredTinyDB, cfg)} }()
			var res *ServeResult
			select {
			case o := <-ch:
				res = o.res
			case <-time.After(120 * time.Second):
				t.Fatal("real-mode selective serve run hung")
			}
			want := int64(cfg.Streams * cfg.QueriesPerStream)
			if res.Sched.Arrived != want {
				t.Fatalf("arrived %d, want %d", res.Sched.Arrived, want)
			}
			if res.Sched.Completed+res.Sched.Rejected != res.Sched.Arrived {
				t.Fatalf("accounting leak: %+v", res.Sched)
			}
			if res.TotalIOBytes <= 0 {
				t.Fatal("no I/O recorded")
			}
			if res.RequestedTuples == 0 || res.SkippedTuples == 0 {
				t.Fatalf("skipping never engaged under real runtime: requested=%d skipped=%d",
					res.RequestedTuples, res.SkippedTuples)
			}
		})
	}
}
