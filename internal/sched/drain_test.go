package sched

import (
	"testing"

	"repro/internal/rt"
	"repro/internal/sim"
)

// TestDrainRejectsWithoutPollutingStats: after Drain, new admissions
// resolve AdmitDraining and land in DrainRejected — not Arrived, not
// Rejected — so the reconciliation invariant holds through shutdown.
func TestDrainRejectsWithoutPollutingStats(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	s := New(r, Config{MPL: 1, QueueDepth: 1})

	eng.Go("main", func() {
		tk, out := s.AdmitQueryOutcome(Query{Stream: 0, Seq: 0})
		if out != AdmitGranted {
			t.Errorf("first admit: got %v, want granted", out)
			return
		}

		s.Drain()
		if !s.Draining() {
			t.Error("Draining() = false after Drain")
		}
		if s.Idle() {
			t.Error("Idle() = true with a query running")
		}
		if _, out := s.AdmitQueryOutcome(Query{Stream: 1, Seq: 0}); out != AdmitDraining {
			t.Errorf("admit while draining: got %v, want draining", out)
		}
		if _, ok := s.AdmitQuery(Query{Stream: 2, Seq: 0}); ok {
			t.Error("AdmitQuery while draining: got ok")
		}

		tk.Done()
		if !s.Idle() {
			t.Error("Idle() = false after the last query finished")
		}

		st := s.Stats(r.Now())
		if st.Arrived != 1 || st.Completed != 1 {
			t.Errorf("arrived=%d completed=%d, want 1/1", st.Arrived, st.Completed)
		}
		if st.Rejected != 0 {
			t.Errorf("Rejected = %d, want 0 (drain refusals must not count)", st.Rejected)
		}
		if st.DrainRejected != 2 {
			t.Errorf("DrainRejected = %d, want 2", st.DrainRejected)
		}
		if got := st.Completed + st.Rejected + st.TimedOut + st.Cancelled; got != st.Arrived {
			t.Errorf("reconciliation: %d resolved != %d arrived", got, st.Arrived)
		}
	})
	eng.Run()
}

// TestDrainLetsQueuedQueriesRun: entries already queued when Drain is
// called keep their place and are still granted slots.
func TestDrainLetsQueuedQueriesRun(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	s := New(r, Config{MPL: 1, QueueDepth: 4})

	queuedOutcome := AdmitOutcome(-1)
	wg := r.NewWaitGroup()
	wg.Add(1)
	eng.Go("main", func() {
		tk, out := s.AdmitQueryOutcome(Query{Stream: 0, Seq: 0})
		if out != AdmitGranted {
			t.Errorf("first admit: got %v, want granted", out)
		}
		r.Go("queued", func() {
			defer wg.Done()
			tk2, out := s.AdmitQueryOutcome(Query{Stream: 1, Seq: 0})
			queuedOutcome = out
			if tk2 != nil {
				tk2.Done()
			}
		})
		// Let the queued admission park before draining.
		r.Sleep(1)
		s.Drain()
		if tk != nil {
			tk.Done()
		}
		wg.Wait()
		if queuedOutcome != AdmitGranted {
			t.Errorf("queued query after drain: got %v, want granted", queuedOutcome)
		}
		if !s.Idle() {
			t.Error("Idle() = false after both queries resolved")
		}
	})
	eng.Run()
}
