package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

// runQueries drives n queries through a scheduler, each executing for
// execTime of virtual time, arriving gap apart, and returns the stats.
func runQueries(t *testing.T, cfg Config, n int, gap, execTime sim.Duration) (Stats, *Scheduler) {
	t.Helper()
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), cfg)
	var stats Stats
	wg := eng.NewWaitGroup()
	wg.Add(1)
	eng.Go("gen", func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			i := i
			eng.Sleep(gap)
			wg.Add(1)
			eng.Go("query", func() {
				defer wg.Done()
				tk, ok := sch.Admit(0, i)
				if !ok {
					return
				}
				eng.Sleep(execTime)
				tk.Done()
			})
		}
	})
	eng.Go("driver", func() {
		wg.Wait()
		stats = sch.Stats(eng.Now())
	})
	eng.Run()
	return stats, sch
}

func TestMPLEnforced(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 3, QueueDepth: -1})
	maxRunning := 0
	wg := eng.NewWaitGroup()
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		eng.Go("q", func() {
			defer wg.Done()
			tk, ok := sch.Admit(0, i)
			if !ok {
				t.Errorf("query %d rejected with unbounded queue", i)
				return
			}
			if sch.Running() > maxRunning {
				maxRunning = sch.Running()
			}
			eng.Sleep(time.Millisecond)
			tk.Done()
		})
	}
	eng.Go("driver", func() { wg.Wait() })
	eng.Run()
	if maxRunning != 3 {
		t.Fatalf("max concurrent = %d, want MPL = 3", maxRunning)
	}
	if got := len(sch.Completed()); got != 10 {
		t.Fatalf("completed %d of 10", got)
	}
}

func TestAdmissionIsFIFO(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 1, QueueDepth: -1})
	var order []int
	wg := eng.NewWaitGroup()
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		eng.Go("q", func() {
			defer wg.Done()
			tk, _ := sch.Admit(0, i)
			order = append(order, i)
			eng.Sleep(time.Millisecond)
			tk.Done()
		})
	}
	eng.Go("driver", func() { wg.Wait() })
	eng.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("admission order %v, want FIFO", order)
	}
}

func TestBoundedQueueRejects(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 1, QueueDepth: 2})
	admitted, rejected := 0, 0
	wg := eng.NewWaitGroup()
	// All five arrive at the same instant: one runs, two queue, two are
	// rejected.
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		eng.Go("q", func() {
			defer wg.Done()
			tk, ok := sch.Admit(0, i)
			if !ok {
				rejected++
				return
			}
			admitted++
			eng.Sleep(time.Millisecond)
			tk.Done()
		})
	}
	eng.Go("driver", func() { wg.Wait() })
	eng.Run()
	if admitted != 3 || rejected != 2 {
		t.Fatalf("admitted=%d rejected=%d, want 3/2", admitted, rejected)
	}
	st := sch.Stats(eng.Now())
	if st.Rejected != 2 || st.Completed != 3 || st.Arrived != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxQueueDepth != 2 {
		t.Fatalf("max queue depth %d, want 2", st.MaxQueueDepth)
	}
}

func TestLatencySplitAccounting(t *testing.T) {
	// MPL 1, two simultaneous arrivals, 10ms exec: the second query waits
	// exactly 10ms in the queue and runs for 10ms.
	st, sch := runQueries(t, Config{MPL: 1, QueueDepth: -1}, 2, 0, 10*time.Millisecond)
	if st.Completed != 2 {
		t.Fatalf("completed %d", st.Completed)
	}
	qs := sch.Completed()
	if qs[0].QueueWait() != 0 || qs[0].ExecTime() != 10*time.Millisecond {
		t.Fatalf("first query split %v/%v", qs[0].QueueWait(), qs[0].ExecTime())
	}
	if qs[1].QueueWait() != 10*time.Millisecond || qs[1].ExecTime() != 10*time.Millisecond {
		t.Fatalf("second query split %v/%v", qs[1].QueueWait(), qs[1].ExecTime())
	}
	if qs[1].Latency() != 20*time.Millisecond {
		t.Fatalf("second query latency %v", qs[1].Latency())
	}
	if st.Latency.Max != 20*time.Millisecond || st.Exec.Max != 10*time.Millisecond {
		t.Fatalf("dist %+v", st)
	}
}

func TestSLOAttainment(t *testing.T) {
	// MPL 1, four simultaneous arrivals, 10ms exec: latencies are 10, 20,
	// 30, 40ms. A 25ms SLO is met by exactly half.
	st, _ := runQueries(t, Config{MPL: 1, QueueDepth: -1, SLO: 25 * time.Millisecond}, 4, 0, 10*time.Millisecond)
	if st.SLOAttainment != 0.5 {
		t.Fatalf("SLO attainment %v, want 0.5", st.SLOAttainment)
	}
	// Throughput: 4 queries over 40ms of virtual time.
	if st.Throughput != 100 {
		t.Fatalf("throughput %v, want 100 q/s", st.Throughput)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := []sim.Duration{40, 10, 30, 20} // sorts to 10,20,30,40
	cases := []struct {
		p    float64
		want sim.Duration
	}{{50, 20}, {75, 30}, {95, 40}, {99, 40}, {100, 40}, {1, 10}}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("p%g = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentileValidatesP(t *testing.T) {
	for _, p := range []float64{0, -1, 100.5, 200} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(_, %g) did not panic", p)
				}
			}()
			Percentile([]sim.Duration{1, 2, 3}, p)
		}()
	}
}

// distOf must agree with the exported Percentile contract while sorting
// only once.
func TestDistOfMatchesPercentile(t *testing.T) {
	ds := []sim.Duration{90, 10, 50, 70, 30, 20, 80, 40, 60, 100}
	ref := append([]sim.Duration(nil), ds...)
	d := distOf(ds)
	if d.P50 != Percentile(ref, 50) || d.P95 != Percentile(ref, 95) || d.P99 != Percentile(ref, 99) {
		t.Fatalf("distOf %+v disagrees with Percentile", d)
	}
	if d.Max != 100 || d.Mean != 55 {
		t.Fatalf("max/mean = %v/%v", d.Max, d.Mean)
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	run := func() Stats {
		eng := sim.NewEngine()
		sch := New(rt.Sim(eng), Config{MPL: 4, QueueDepth: 8, SLO: 50 * time.Millisecond})
		rng := rand.New(rand.NewSource(7))
		wg := eng.NewWaitGroup()
		wg.Add(1)
		eng.Go("gen", func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				i := i
				eng.Sleep(ExpInterarrival(rng, 200))
				d := time.Duration(rng.Intn(20)+1) * time.Millisecond
				wg.Add(1)
				eng.Go("query", func() {
					defer wg.Done()
					tk, ok := sch.Admit(0, i)
					if !ok {
						return
					}
					eng.Sleep(d)
					tk.Done()
				})
			}
		})
		var st Stats
		eng.Go("driver", func() {
			wg.Wait()
			st = sch.Stats(eng.Now())
		})
		eng.Run()
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic scheduler stats:\n%+v\n%+v", a, b)
	}
	if a.Completed+a.Rejected != a.Arrived {
		t.Fatalf("accounting leak: %+v", a)
	}
}

func TestTicketTerminalTransitionOnce(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 1})
	eng.Go("q", func() {
		tk, _ := sch.Admit(0, 0)
		tk.Done()
		tk.Done() // second resolution is a no-op, not a panic
		tk.Cancel(rt.CauseClientCancel)
	})
	eng.Run()
	if got := len(sch.Completed()); got != 1 {
		t.Fatalf("completed %d queries, want 1", got)
	}
	if got := len(sch.Killed()); got != 0 {
		t.Fatalf("recorded %d kills after Done won the transition, want 0", got)
	}
	if sch.Running() != 0 {
		t.Fatalf("running %d after resolution, want 0 (slot released twice?)", sch.Running())
	}
}

func TestTicketCancelBeatsDone(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 1})
	eng.Go("q", func() {
		tk, _ := sch.Admit(0, 0)
		tk.Cancel(rt.CauseNone) // maps to client-cancel
		tk.Done()               // loses the transition: no-op
	})
	eng.Run()
	if got := len(sch.Killed()); got != 1 {
		t.Fatalf("recorded %d kills, want 1", got)
	}
	if got := sch.Killed()[0].Cause; got != rt.CauseClientCancel {
		t.Fatalf("kill cause = %v, want client-cancel", got)
	}
	if got := len(sch.Completed()); got != 0 {
		t.Fatalf("completed %d queries after Cancel won, want 0", got)
	}
	if sch.Running() != 0 {
		t.Fatalf("running %d after resolution, want 0", sch.Running())
	}
}

func TestExpInterarrival(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum sim.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := ExpInterarrival(rng, 100)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / n
	// Rate 100/s => mean gap 10ms; allow 5%.
	if mean < 9500*time.Microsecond || mean > 10500*time.Microsecond {
		t.Fatalf("mean gap %v, want ~10ms", mean)
	}
	if ExpInterarrival(rng, 0) != 0 {
		t.Fatal("zero rate should yield zero gap")
	}
}

// TestWriteAdmissionAccounting: update queries share the queue and MPL
// with reads but complete into the write counters — read latency
// percentiles, read throughput and per-tenant stats never see them,
// while Arrived/Completed (and so the reconciliation invariant) count
// both kinds.
func TestWriteAdmissionAccounting(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 2, QueueDepth: -1})
	eng.Go("w", func() {
		for i := 0; i < 6; i++ {
			tk, ok := sch.AdmitQuery(Query{Stream: 0, Seq: i, Write: i%2 == 1})
			if !ok {
				t.Errorf("admission %d refused", i)
				return
			}
			eng.Sleep(sim.Duration(1e6))
			tk.Done()
		}
	})
	eng.Run()
	st := sch.Stats(eng.Now())
	if st.Arrived != 6 || st.Completed != 6 {
		t.Fatalf("arrived %d completed %d, want 6/6", st.Arrived, st.Completed)
	}
	if st.WriteCompleted != 3 {
		t.Fatalf("write completed %d, want 3", st.WriteCompleted)
	}
	if st.WriteThroughput <= 0 || st.Throughput <= 0 {
		t.Fatalf("throughputs %v/%v", st.Throughput, st.WriteThroughput)
	}
	// 3 reads of ~1ms each: the read percentiles must not count writes.
	if st.Latency.P50 <= 0 {
		t.Fatal("read latency dist empty")
	}
	ts := sch.TenantStats(1)
	if ts[0].Completed != 3 {
		t.Fatalf("tenant completed %d, want 3 reads", ts[0].Completed)
	}
}
