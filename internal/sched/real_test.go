package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rt"
)

// Real-runtime scheduler tests (run with -race): admission, queueing and
// slot hand-off from concurrent goroutines.

func TestRealAdmitBoundsConcurrency(t *testing.T) {
	r := rt.NewReal()
	sch := New(r, Config{MPL: 3, QueueDepth: -1})
	var cur, peak atomic.Int64
	const queries = 64
	for i := 0; i < queries; i++ {
		i := i
		r.Go("query", func() {
			tk, ok := sch.Admit(0, i)
			if !ok {
				t.Error("unbounded queue rejected an admission")
				return
			}
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			r.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			tk.Done()
		})
	}
	r.Run()
	if t.Failed() {
		return
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("MPL 3 ran %d queries concurrently", p)
	}
	st := sch.Stats(r.Now())
	if st.Completed != queries || st.Rejected != 0 {
		t.Fatalf("accounting: %+v", st)
	}
	for _, q := range sch.Completed() {
		if q.Finish < q.Admit || q.Admit < q.Arrive {
			t.Fatalf("non-monotonic timestamps: %+v", q)
		}
	}
}

// Every admission policy must stay mutex-correct on the real runtime:
// concurrent AdmitQuery/Done with tenants and costs, full accounting,
// no lost slots. Run with -race.
func TestRealPoliciesConcurrentAdmission(t *testing.T) {
	for _, pol := range []string{"fifo", "sesf", "wfq"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			r := rt.NewReal()
			sch := New(r, Config{
				MPL:           2,
				QueueDepth:    -1,
				Policy:        pol,
				TenantWeights: map[int]float64{0: 3, 1: 1},
			})
			const queries = 48
			for i := 0; i < queries; i++ {
				i := i
				r.Go("query", func() {
					tk, ok := sch.AdmitQuery(Query{
						Stream: i, Seq: 0, Tenant: i % 2,
						Cost: float64(i%7) * 0.001,
					})
					if !ok {
						t.Error("unbounded queue rejected an admission")
						return
					}
					r.Sleep(100 * time.Microsecond)
					tk.Done()
				})
			}
			r.Run()
			if t.Failed() {
				return
			}
			st := sch.Stats(r.Now())
			if st.Completed != queries || st.Rejected != 0 {
				t.Fatalf("accounting: %+v", st)
			}
			var sum int64
			for _, ts := range sch.TenantStats(2) {
				sum += ts.Completed
			}
			if sum != queries {
				t.Fatalf("per-tenant completions %d, want %d", sum, queries)
			}
		})
	}
}

func TestRealAdmitRejectsWhenQueueFull(t *testing.T) {
	r := rt.NewReal()
	sch := New(r, Config{MPL: 1, QueueDepth: 2})
	const queries = 32
	var rejected atomic.Int64
	for i := 0; i < queries; i++ {
		i := i
		r.Go("query", func() {
			tk, ok := sch.Admit(0, i)
			if !ok {
				rejected.Add(1)
				return
			}
			r.Sleep(500 * time.Microsecond)
			tk.Done()
		})
	}
	r.Run()
	st := sch.Stats(r.Now())
	if st.Completed+st.Rejected != queries {
		t.Fatalf("accounting leak: %+v", st)
	}
	if st.Rejected != rejected.Load() {
		t.Fatalf("rejected mismatch: stats %d, observed %d", st.Rejected, rejected.Load())
	}
	// 32 near-simultaneous arrivals into MPL 1 + queue 2 must reject some.
	if st.Rejected == 0 {
		t.Log("note: no rejections exercised this run (timing-dependent)")
	}
	if st.MaxQueueDepth > 2 {
		t.Fatalf("queue overflowed its bound: depth %d", st.MaxQueueDepth)
	}
}
