package sched

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

// TestQueuedCancelDropsEntry cancels a query while it waits in the
// admission queue: the entry must leave the queue immediately (not
// absorb an MPL slot), be recorded as a client-cancel queue drop, and
// the query behind it must still be admitted.
func TestQueuedCancelDropsEntry(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	sch := New(r, Config{MPL: 1})

	q0 := rt.NewQueryCtx(r)
	qc := rt.NewQueryCtx(r) // the queued victim
	q2 := rt.NewQueryCtx(r)

	var admitted []int
	var mu sync.Mutex
	note := func(id int) {
		mu.Lock()
		admitted = append(admitted, id)
		mu.Unlock()
	}

	eng.Go("q0", func() {
		tk, ok := sch.AdmitQuery(Query{Stream: 0, Ctx: q0})
		if !ok {
			t.Error("q0 rejected")
			return
		}
		note(0)
		r.Sleep(10 * time.Millisecond)
		tk.Done()
	})
	eng.Go("q1", func() {
		r.Sleep(time.Millisecond)
		if _, ok := sch.AdmitQuery(Query{Stream: 1, Ctx: qc}); ok {
			t.Error("cancelled q1 admitted")
			return
		}
	})
	eng.Go("q2", func() {
		r.Sleep(2 * time.Millisecond)
		tk, ok := sch.AdmitQuery(Query{Stream: 2, Ctx: q2})
		if !ok {
			t.Error("q2 rejected")
			return
		}
		note(2)
		tk.Done()
	})
	eng.Go("canceller", func() {
		r.Sleep(5 * time.Millisecond)
		if sch.Queued() != 2 {
			t.Errorf("queued = %d before cancel, want 2", sch.Queued())
		}
		qc.Cancel(rt.CauseClientCancel)
	})
	eng.Run()

	if want := []int{0, 2}; len(admitted) != 2 || admitted[0] != 0 || admitted[1] != 2 {
		t.Fatalf("admitted %v, want %v", admitted, want)
	}
	drops := sch.Dropped()
	if len(drops) != 1 {
		t.Fatalf("recorded %d queue drops, want 1", len(drops))
	}
	d := drops[0]
	if d.Stream != 1 || d.Cause != rt.CauseClientCancel {
		t.Fatalf("drop = %+v, want stream 1 / client-cancel", d)
	}
	// The victim queued at t=1ms and was cancelled at t=5ms: its record
	// charges exactly the queue residence, not an execution.
	if got := d.Latency(); got != 4*time.Millisecond {
		t.Fatalf("drop latency = %v, want 4ms", got)
	}
	st := sch.Stats(eng.Now())
	if st.Cancelled != 1 || st.TimedOut != 0 {
		t.Fatalf("cancelled/timedout = %d/%d, want 1/0", st.Cancelled, st.TimedOut)
	}
	if st.Completed+st.Rejected+st.TimedOut+st.Cancelled != st.Arrived {
		t.Fatalf("accounting leak: %+v", st)
	}
}

// TestAdmissionTimeoutDrop arms deadlines on queued queries and checks
// that the slot-transfer loop drops expired entries with TimedOut
// accounting instead of admitting them, and that their queue-drop
// latency stays out of the completed-query distribution.
func TestAdmissionTimeoutDrop(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	sch := New(r, Config{MPL: 1})

	// q0 runs 50ms; q1 and q2 queue behind it with 10ms deadlines and
	// must both time out; q3 (no deadline) queues too and must run.
	eng.Go("q0", func() {
		tk, _ := sch.AdmitQuery(Query{Stream: 0})
		r.Sleep(50 * time.Millisecond)
		tk.Done()
	})
	for i := 1; i <= 2; i++ {
		i := i
		eng.Go("victim", func() {
			r.Sleep(sim.Duration(i) * time.Millisecond)
			qc := rt.NewQueryCtx(r)
			qc.SetDeadline(r.Now() + rt.Time(10*time.Millisecond))
			if _, ok := sch.AdmitQuery(Query{Stream: i, Ctx: qc}); ok {
				t.Errorf("expired q%d admitted", i)
			}
			if qc.Cause() != rt.CauseAdmissionTimeout {
				t.Errorf("q%d cause = %v, want admission-timeout", i, qc.Cause())
			}
		})
	}
	eng.Go("q3", func() {
		r.Sleep(3 * time.Millisecond)
		tk, ok := sch.AdmitQuery(Query{Stream: 3, Ctx: rt.NewQueryCtx(r)})
		if !ok {
			t.Error("live q3 rejected")
			return
		}
		tk.Done()
	})
	eng.Run()

	st := sch.Stats(eng.Now())
	if st.TimedOut != 2 || st.Cancelled != 0 {
		t.Fatalf("timedout/cancelled = %d/%d, want 2/0", st.TimedOut, st.Cancelled)
	}
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (q0 and q3)", st.Completed)
	}
	if st.Completed+st.Rejected+st.TimedOut+st.Cancelled != st.Arrived {
		t.Fatalf("accounting leak: %+v", st)
	}
	// The victims waited ~49ms in queue; the completed queries' latency
	// percentiles must not include those drops (QueueDrop reports them).
	if st.QueueDrop.Max < 45*time.Millisecond {
		t.Fatalf("queue-drop max = %v, want the victims' ~49ms waits", st.QueueDrop.Max)
	}
	for _, d := range sch.Dropped() {
		if d.Cause != rt.CauseAdmissionTimeout {
			t.Fatalf("drop cause = %v, want admission-timeout", d.Cause)
		}
	}
}

// TestQueueFullReapsDeadEntries fills the bounded queue with queries
// whose deadlines have already passed and checks that a live arrival
// reaps them instead of being rejected.
func TestQueueFullReapsDeadEntries(t *testing.T) {
	eng := sim.NewEngine()
	r := rt.Sim(eng)
	sch := New(r, Config{MPL: 1, QueueDepth: 2})

	eng.Go("q0", func() {
		tk, _ := sch.AdmitQuery(Query{Stream: 0})
		r.Sleep(100 * time.Millisecond)
		tk.Done()
	})
	for i := 1; i <= 2; i++ {
		i := i
		eng.Go("dead", func() {
			r.Sleep(sim.Duration(i) * time.Millisecond)
			qc := rt.NewQueryCtx(r)
			qc.SetDeadline(r.Now() + rt.Time(5*time.Millisecond))
			sch.AdmitQuery(Query{Stream: i, Ctx: qc})
		})
	}
	eng.Go("live", func() {
		r.Sleep(20 * time.Millisecond) // queue is full of expired entries now
		tk, ok := sch.AdmitQuery(Query{Stream: 3, Ctx: rt.NewQueryCtx(r)})
		if !ok {
			t.Error("live arrival rejected although every queued entry was dead")
			return
		}
		tk.Done()
	})
	eng.Run()

	st := sch.Stats(eng.Now())
	if st.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0 (dead entries must be reaped)", st.Rejected)
	}
	if st.TimedOut != 2 {
		t.Fatalf("timedout = %d, want 2", st.TimedOut)
	}
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
}

// TestDoneCancelRace resolves many tickets from two racing goroutines on
// the real runtime: exactly one of Done/Cancel must win each ticket,
// with no double slot release and no double record. Run with -race.
func TestDoneCancelRace(t *testing.T) {
	r := rt.NewReal()
	sch := New(r, Config{MPL: 4, QueueDepth: -1})

	const n = 200
	for i := 0; i < n; i++ {
		i := i
		r.Go("q", func() {
			qc := rt.NewQueryCtx(r)
			tk, ok := sch.AdmitQuery(Query{Stream: 0, Seq: i, Ctx: qc})
			if !ok {
				t.Errorf("query %d rejected", i)
				return
			}
			var inner sync.WaitGroup
			inner.Add(2)
			go func() { defer inner.Done(); tk.Done() }()
			go func() { defer inner.Done(); tk.Cancel(rt.CauseClientCancel) }()
			inner.Wait()
		})
	}
	r.Run()

	comp, killed := int64(len(sch.Completed())), int64(len(sch.Killed()))
	if comp+killed != n {
		t.Fatalf("completed %d + killed %d != %d arrivals", comp, killed, n)
	}
	if got := sch.Running(); got != 0 {
		t.Fatalf("running = %d after all tickets resolved, want 0", got)
	}
}
