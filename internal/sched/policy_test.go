package sched

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := map[string]bool{"fifo": true, "sesf": true, "wfq": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("built-in policies missing from %v", names)
	}
	for _, n := range []string{"fifo", "sesf", "wfq"} {
		pol, ok := NewPolicy(n, PolicyConfig{})
		if !ok {
			t.Fatalf("NewPolicy(%q) unknown", n)
		}
		if pol.Name() != n {
			t.Fatalf("policy %q reports name %q", n, pol.Name())
		}
	}
	if _, ok := NewPolicy("nope", PolicyConfig{}); ok {
		t.Fatal("unknown policy constructed")
	}
}

func TestRegisterPolicyValidates(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil constructor", func() { RegisterPolicy("broken", nil) })
	mustPanic("duplicate name", func() {
		RegisterPolicy("fifo", func(PolicyConfig) AdmissionPolicy { return &fifoPolicy{} })
	})
}

func TestNewPanicsOnUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown policy did not panic")
		}
	}()
	New(rt.Sim(sim.NewEngine()), Config{Policy: "nope"})
}

// admissionOrder drives queries through an MPL-1 scheduler: the first
// query occupies the slot while all the others enqueue simultaneously,
// so the recorded order beyond the first element is exactly the policy's
// pick sequence. Each query is described by (tenant, cost).
func admissionOrder(t *testing.T, cfg Config, queries []Query) []int {
	t.Helper()
	eng := sim.NewEngine()
	cfg.MPL = 1
	cfg.QueueDepth = -1
	sch := New(rt.Sim(eng), cfg)
	var order []int
	wg := eng.NewWaitGroup()
	for i, q := range queries {
		i, q := i, q
		wg.Add(1)
		eng.Go("q", func() {
			defer wg.Done()
			tk, ok := sch.AdmitQuery(q)
			if !ok {
				t.Errorf("query %d rejected with unbounded queue", i)
				return
			}
			order = append(order, i)
			eng.Sleep(time.Millisecond)
			tk.Done()
		})
	}
	eng.Go("driver", func() { wg.Wait() })
	eng.Run()
	return order
}

// SESF must admit queued queries in ascending stubbed-cost order,
// breaking ties by arrival, regardless of arrival order.
func TestSESFOrdersByExpectedCost(t *testing.T) {
	queries := []Query{
		{Seq: 0, Cost: 100}, // admitted immediately (MPL slot free)
		{Seq: 1, Cost: 9},
		{Seq: 2, Cost: 1},
		{Seq: 3, Cost: 5},
		{Seq: 4, Cost: 1}, // ties with #2; #2 arrived first
		{Seq: 5, Cost: 3},
	}
	got := admissionOrder(t, Config{Policy: "sesf"}, queries)
	want := []int{0, 2, 4, 5, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sesf admission order %v, want %v", got, want)
	}
}

// FIFO through the policy seam must stay pure arrival order even when
// costs would say otherwise.
func TestFIFOIgnoresCost(t *testing.T) {
	queries := []Query{
		{Seq: 0, Cost: 9},
		{Seq: 1, Cost: 8},
		{Seq: 2, Cost: 7},
		{Seq: 3, Cost: 1},
	}
	got := admissionOrder(t, Config{Policy: "fifo"}, queries)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("fifo admission order %v, want arrival order", got)
	}
}

// WFQ under saturation must hand out admissions in proportion to tenant
// weights: with weights 3:1 and both tenants permanently backlogged,
// every consecutive window of 4 admissions serves tenant 0 three times.
func TestWFQWeightedSharesUnderSaturation(t *testing.T) {
	const perTenant = 40
	var queries []Query
	// Interleave arrivals so neither tenant's backlog orders the other's.
	for i := 0; i < perTenant; i++ {
		queries = append(queries,
			Query{Stream: 0, Seq: i, Tenant: 0},
			Query{Stream: 1, Seq: i, Tenant: 1},
		)
	}
	order := admissionOrder(t, Config{
		Policy:        "wfq",
		TenantWeights: map[int]float64{0: 3, 1: 1},
	}, queries)
	// Count tenant-0 admissions in each window of 4 picks while both
	// tenants are still backlogged (the first 4/8 of the queue drains
	// tenant 0's 40 queries in 3:1 ratio windows).
	tenantOf := func(idx int) int { return queries[idx].Tenant }
	picks := order[1:] // order[0] is the immediately admitted slot holder
	for w := 0; w+4 <= len(picks) && w < 40; w += 4 {
		t0 := 0
		for _, idx := range picks[w : w+4] {
			if tenantOf(idx) == 0 {
				t0++
			}
		}
		if t0 != 3 {
			t.Fatalf("window %d: tenant 0 got %d of 4 admissions, want 3 (order %v)", w/4, t0, picks[:w+4])
		}
	}
	// Within one tenant, admission stays FIFO.
	lastSeq := -1
	for _, idx := range picks {
		if tenantOf(idx) != 0 {
			continue
		}
		if queries[idx].Seq <= lastSeq {
			t.Fatalf("tenant 0 admitted out of order: seq %d after %d", queries[idx].Seq, lastSeq)
		}
		lastSeq = queries[idx].Seq
	}
}

// Unweighted WFQ must alternate between equally backlogged tenants.
func TestWFQEqualWeightsRoundRobin(t *testing.T) {
	var queries []Query
	// Tenant 0 floods first; tenant 1 trickles in after.
	for i := 0; i < 8; i++ {
		queries = append(queries, Query{Stream: 0, Seq: i, Tenant: 0})
	}
	for i := 0; i < 4; i++ {
		queries = append(queries, Query{Stream: 1, Seq: i, Tenant: 1})
	}
	order := admissionOrder(t, Config{Policy: "wfq"}, queries)
	picks := order[1:]
	// While both tenants are backlogged, no tenant may be served twice in
	// a row more than its weight allows: equal weights alternate.
	t1Remaining := 4
	streak := 0
	for _, idx := range picks {
		if t1Remaining == 0 {
			break // only tenant 0 left; streaks are expected
		}
		if queries[idx].Tenant == 0 {
			streak++
			if streak > 2 {
				t.Fatalf("tenant 0 served %d in a row against a backlogged equal-weight tenant (order %v)", streak, picks)
			}
		} else {
			streak = 0
			t1Remaining--
		}
	}
}

// A drained tenant must not bank credit for its idle period: after its
// queue empties, its next query is tagged from the current virtual time,
// not from its stale last tag.
func TestWFQNoCreditForIdleTenant(t *testing.T) {
	w := newWFQ(nil)
	mk := func(tenant int, order int64) *Pending {
		return &Pending{Tenant: tenant, Order: order}
	}
	// Tenant 0 enqueues once and is served; vtime advances to 1.
	w.Enqueue(mk(0, 1))
	if got := w.Next(); got.Tenant != 0 {
		t.Fatalf("first pick tenant %d", got.Tenant)
	}
	// Tenant 1 builds a backlog; its tags chain 1+1=2, 2+1=3.
	w.Enqueue(mk(1, 2))
	w.Enqueue(mk(1, 3))
	// Tenant 0 returns after idling: its tag must start from vtime (1),
	// giving tag 2 — tied with tenant 1's head, broken by tenant id — not
	// from its own stale tag 1 (which would unfairly jump the queue) nor
	// accumulate arrears.
	w.Enqueue(mk(0, 4))
	if got := w.Next(); got.Tenant != 0 {
		t.Fatalf("returning tenant pick = tenant %d, want 0 via tie-break at equal tags", got.Tenant)
	}
	if got := w.Next(); got.Tenant != 1 {
		t.Fatalf("next pick tenant %d, want 1", got.Tenant)
	}
}

func TestSchedulerPolicyName(t *testing.T) {
	eng := sim.NewEngine()
	if got := New(rt.Sim(eng), Config{}).Policy(); got != "fifo" {
		t.Fatalf("default policy %q, want fifo", got)
	}
	if got := New(rt.Sim(eng), Config{Policy: "wfq"}).Policy(); got != "wfq" {
		t.Fatalf("policy %q, want wfq", got)
	}
}

// TenantStats must partition the completed queries by tenant, pad
// configured-but-idle tenants with zeros, and respect the SLO.
func TestTenantStats(t *testing.T) {
	eng := sim.NewEngine()
	sch := New(rt.Sim(eng), Config{MPL: 2, QueueDepth: -1, SLO: 15 * time.Millisecond})
	wg := eng.NewWaitGroup()
	// Tenant 0: two fast queries (10ms, meet SLO). Tenant 1: one slow
	// query (20ms, misses).
	for _, q := range []struct {
		tenant int
		d      sim.Duration
	}{{0, 10 * time.Millisecond}, {0, 10 * time.Millisecond}, {1, 20 * time.Millisecond}} {
		q := q
		wg.Add(1)
		eng.Go("q", func() {
			defer wg.Done()
			tk, _ := sch.AdmitQuery(Query{Tenant: q.tenant})
			eng.Sleep(q.d)
			tk.Done()
		})
	}
	eng.Go("driver", func() { wg.Wait() })
	eng.Run()
	got := sch.TenantStats(3)
	if len(got) != 3 {
		t.Fatalf("tenant stats %+v, want 3 entries", got)
	}
	if got[0].Completed != 2 || got[0].SLOAttainment != 1 || got[0].P95 != 10*time.Millisecond {
		t.Fatalf("tenant 0 stats %+v", got[0])
	}
	if got[1].Completed != 1 || got[1].SLOAttainment != 0 {
		t.Fatalf("tenant 1 stats %+v", got[1])
	}
	if got[2].Completed != 0 || got[2].P95 != 0 {
		t.Fatalf("idle tenant stats %+v", got[2])
	}
}

// Long serving runs with churning tenant ids must not leak per-tenant
// wfq state: once a tenant's queue drains and its tag falls behind the
// virtual clock, its bookkeeping is dropped (an absent entry restarts
// from vtime, which is semantically identical).
func TestWFQPrunesDepartedTenants(t *testing.T) {
	w := newWFQ(nil)
	order := int64(0)
	for tenant := 0; tenant < 10_000; tenant++ {
		w.Enqueue(&Pending{Tenant: tenant, Order: order})
		order++
		if w.Next() == nil {
			t.Fatal("queued query not admitted")
		}
	}
	if w.Len() != 0 {
		t.Fatalf("queue len %d after draining", w.Len())
	}
	// Admitting a tenant's last query advances vtime to its tag, so every
	// departed tenant is immediately prunable.
	if len(w.lastTag) > 1 || len(w.queues) != 0 {
		t.Fatalf("state leaked across tenant churn: %d lastTag, %d queues",
			len(w.lastTag), len(w.queues))
	}
}

// Pruning must not change admission semantics: a drained tenant whose
// tag is still AHEAD of vtime keeps its entry, so it cannot bank credit
// by draining and re-enqueueing, while a fallen-behind tenant restarts
// from vtime exactly as if it had never been seen.
func TestWFQPruneKeepsAheadTenants(t *testing.T) {
	w := newWFQ(map[int]float64{0: 1, 1: 4})
	// Tenant 0 (weight 1) enqueues twice: tags 1 and 2. Tenant 1 (weight
	// 4) enqueues once: tag 0.25.
	w.Enqueue(&Pending{Tenant: 0, Order: 0})
	w.Enqueue(&Pending{Tenant: 0, Order: 1})
	w.Enqueue(&Pending{Tenant: 1, Order: 2})
	// Admit tenant 1's query (tag 0.25 < 1): it drains, and vtime=0.25 is
	// behind tenant 0's lastTag=2, so tenant 0's entry must survive.
	if p := w.Next(); p.Tenant != 1 {
		t.Fatalf("admitted tenant %d, want 1", p.Tenant)
	}
	if _, ok := w.lastTag[0]; !ok {
		t.Fatal("backlogged tenant pruned")
	}
	if _, ok := w.lastTag[1]; ok {
		t.Fatal("drained, fallen-behind tenant not pruned")
	}
	// Tenant 0's two queries still admit in FIFO order with their original
	// tags (1 then 2), proving pruning left its state untouched.
	if p := w.Next(); p.Tenant != 0 || p.Order != 0 {
		t.Fatalf("got %+v, want tenant 0 order 0", p)
	}
	// vtime is now 1, still behind tenant 0's lastTag 2: entry survives
	// while its queue is non-empty either way.
	if p := w.Next(); p.Tenant != 0 || p.Order != 1 {
		t.Fatalf("got %+v, want tenant 0 order 1", p)
	}
	// Everything drained and vtime caught up: all state gone.
	if len(w.lastTag) != 0 || len(w.queues) != 0 || w.Len() != 0 {
		t.Fatalf("state not fully pruned: %d lastTag, %d queues, len %d",
			len(w.lastTag), len(w.queues), w.Len())
	}
}
