package sched

import (
	"fmt"
	"sort"

	"repro/internal/rt"
	"repro/internal/sim"
)

// Pending is one query waiting in the admission queue, as an
// AdmissionPolicy sees it: identity, fairness domain, the cost estimate
// supplied at arrival, and a monotonically increasing arrival number for
// deterministic tie-breaks.
type Pending struct {
	// Stream and Seq identify the query within its client stream.
	Stream, Seq int
	// Tenant is the fairness domain the query belongs to (wfq's unit of
	// weighting; a label elsewhere).
	Tenant int
	// Cost is the query's expected work in seconds of expected execution
	// time (or any unit consistent across one scheduler's queries); zero
	// when the caller supplied no estimate.
	Cost float64
	// Order is the query's arrival sequence number. Policies break
	// priority ties in Order so equal-priority admission is deterministic
	// and starvation-free within a priority class.
	Order int64

	ev     rt.Event // fired by the scheduler to hand the freed MPL slot over
	arrive sim.Time // arrival timestamp, for queue-drop latency accounting

	// qctx is the query's lifecycle handle (nil when the caller runs
	// without one). The scheduler consults it when the entry reaches the
	// head of the queue: a dead entry is dropped instead of admitted.
	qctx *rt.QueryCtx
	// granted and dropCause record, under the scheduler mutex, how the
	// entry left the queue: exactly one of them is set before ev fires.
	// The parked AdmitQuery reads them on wake-up to learn whether it was
	// handed the MPL slot or dropped.
	granted   bool
	dropCause rt.CancelCause
}

// AdmissionPolicy orders the admission queue: it owns the waiting set and
// picks which query receives the MPL slot a completing query frees. The
// scheduler calls every method under its own mutex, so implementations
// need no locking, but they must be deterministic: given the same
// Enqueue/Next call sequence they must return the same queries in the
// same order, or simulator runs stop being reproducible.
type AdmissionPolicy interface {
	// Name reports the registered policy name.
	Name() string
	// Enqueue adds a query to the waiting set.
	Enqueue(p *Pending)
	// Next removes and returns the query to admit next, or nil when no
	// query is waiting.
	Next() *Pending
	// Remove deletes a specific waiting entry (a cancelled or expired
	// query that must not occupy a queue slot), reporting whether it was
	// present. Removal must not disturb the relative order of the
	// remaining entries.
	Remove(p *Pending) bool
	// Len reports the number of waiting queries.
	Len() int
	// UsesCost reports whether the policy consults Pending.Cost, so
	// drivers can skip pricing queries for policies that ignore it.
	UsesCost() bool
}

// PolicyConfig parameterizes admission-policy construction.
type PolicyConfig struct {
	// TenantWeights maps tenant id to its fair-share weight; tenants
	// absent from the map (or with non-positive entries) weigh 1. Only
	// weighted policies (wfq) consult it.
	TenantWeights map[int]float64
}

// NewPolicyFunc constructs one admission-policy instance.
type NewPolicyFunc func(cfg PolicyConfig) AdmissionPolicy

var policyConstructors = map[string]NewPolicyFunc{}

// RegisterPolicy registers an admission-policy constructor under name.
// The built-in fifo, sesf and wfq policies are pre-registered.
func RegisterPolicy(name string, ctor NewPolicyFunc) {
	if ctor == nil {
		panic("sched: RegisterPolicy with nil constructor")
	}
	if _, dup := policyConstructors[name]; dup {
		panic(fmt.Sprintf("sched: admission policy %q registered twice", name))
	}
	policyConstructors[name] = ctor
}

// NewPolicy returns a fresh instance of the admission policy registered
// under name, or ok=false when the name is unknown.
func NewPolicy(name string, cfg PolicyConfig) (AdmissionPolicy, bool) {
	ctor, ok := policyConstructors[name]
	if !ok {
		return nil, false
	}
	return ctor(cfg), true
}

// PolicyNames returns the registered admission-policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyConstructors))
	for name := range policyConstructors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterPolicy("fifo", func(PolicyConfig) AdmissionPolicy { return &fifoPolicy{} })
	RegisterPolicy("sesf", func(PolicyConfig) AdmissionPolicy { return &sesfPolicy{} })
	RegisterPolicy("wfq", func(cfg PolicyConfig) AdmissionPolicy { return newWFQ(cfg.TenantWeights) })
}

// fifoPolicy admits in arrival order — the scheduler's historical
// behavior, bit-identical to the pre-policy hard-coded queue.
type fifoPolicy struct {
	q []*Pending
}

func (f *fifoPolicy) Name() string       { return "fifo" }
func (f *fifoPolicy) UsesCost() bool     { return false }
func (f *fifoPolicy) Enqueue(p *Pending) { f.q = append(f.q, p) }
func (f *fifoPolicy) Len() int           { return len(f.q) }

func (f *fifoPolicy) Next() *Pending {
	if len(f.q) == 0 {
		return nil
	}
	p := f.q[0]
	f.q = f.q[1:]
	return p
}

func (f *fifoPolicy) Remove(p *Pending) bool {
	for i, q := range f.q {
		if q == p {
			f.q = append(f.q[:i], f.q[i+1:]...)
			return true
		}
	}
	return false
}

// sesfPolicy admits the waiting query with the smallest expected work
// (shortest-expected-scan-first): with execution times known up front —
// which the predictive buffer manager's speed estimates approximate —
// admitting short scans ahead of long ones minimizes mean wait, at the
// cost of delaying long scans under sustained load. Cost ties fall back
// to arrival order.
type sesfPolicy struct {
	q []*Pending
}

func (s *sesfPolicy) Name() string       { return "sesf" }
func (s *sesfPolicy) UsesCost() bool     { return true }
func (s *sesfPolicy) Enqueue(p *Pending) { s.q = append(s.q, p) }
func (s *sesfPolicy) Len() int           { return len(s.q) }

func (s *sesfPolicy) Next() *Pending {
	if len(s.q) == 0 {
		return nil
	}
	best := 0
	for i, p := range s.q[1:] {
		if p.Cost < s.q[best].Cost || (p.Cost == s.q[best].Cost && p.Order < s.q[best].Order) {
			best = i + 1
		}
	}
	p := s.q[best]
	s.q = append(s.q[:best], s.q[best+1:]...)
	return p
}

func (s *sesfPolicy) Remove(p *Pending) bool {
	for i, q := range s.q {
		if q == p {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return true
		}
	}
	return false
}

// wfqPolicy implements per-tenant weighted fair queueing over admissions
// (start-time fair queueing with unit service per query): every queued
// query gets a virtual finish tag — a tenant's tags advance by 1/weight
// per query from max(global virtual time, the tenant's previous tag) —
// and the smallest tag is admitted next. Under saturation, with every
// tenant backlogged, tenants therefore receive MPL slots in proportion
// to their weights regardless of per-tenant arrival volume, so one
// tenant's burst of long scans cannot starve the others' admissions.
// Queries of one tenant stay FIFO among themselves; tag ties break by
// tenant id, then arrival order.
type wfqPolicy struct {
	weights map[int]float64
	queues  map[int][]wfqItem // per-tenant FIFO of tagged waiters
	lastTag map[int]float64   // the tenant's most recently assigned tag
	vtime   float64           // finish tag of the last admitted query
	n       int
}

type wfqItem struct {
	p   *Pending
	tag float64
}

func newWFQ(weights map[int]float64) *wfqPolicy {
	return &wfqPolicy{
		weights: weights,
		queues:  map[int][]wfqItem{},
		lastTag: map[int]float64{},
	}
}

func (w *wfqPolicy) Name() string { return "wfq" }

// UsesCost reports false: wfq charges unit service per query, so the
// cost estimate is never read.
func (w *wfqPolicy) UsesCost() bool { return false }
func (w *wfqPolicy) Len() int       { return w.n }

func (w *wfqPolicy) weight(tenant int) float64 {
	if v, ok := w.weights[tenant]; ok && v > 0 {
		return v
	}
	return 1
}

func (w *wfqPolicy) Enqueue(p *Pending) {
	start := w.vtime
	if last, ok := w.lastTag[p.Tenant]; ok && last > start {
		start = last
	}
	tag := start + 1/w.weight(p.Tenant)
	w.lastTag[p.Tenant] = tag
	w.queues[p.Tenant] = append(w.queues[p.Tenant], wfqItem{p: p, tag: tag})
	w.n++
}

func (w *wfqPolicy) Next() *Pending {
	if w.n == 0 {
		return nil
	}
	// Map iteration order is irrelevant: (tag, tenant) is a strict total
	// order, so the minimum is unique and the choice deterministic.
	best, bestTag, found := 0, 0.0, false
	for tenant, q := range w.queues {
		tag := q[0].tag
		if !found || tag < bestTag || (tag == bestTag && tenant < best) {
			best, bestTag, found = tenant, tag, true
		}
	}
	q := w.queues[best]
	item := q[0]
	if len(q) == 1 {
		// The tenant's lastTag survives (until pruned below), so a tenant
		// that drains and returns resumes from max(vtime, its own tag)
		// rather than claiming back-service for its idle period.
		delete(w.queues, best)
	} else {
		w.queues[best] = q[1:]
	}
	w.n--
	w.vtime = item.tag
	w.prune()
	return item.p
}

// Remove splices a dead entry out of its tenant's FIFO. The tenant's
// lastTag is left in place: later arrivals of the same tenant keep their
// already-assigned start tags consistent, and prune() reclaims the entry
// once the virtual clock passes it, exactly as for a drained tenant.
func (w *wfqPolicy) Remove(p *Pending) bool {
	q := w.queues[p.Tenant]
	for i, item := range q {
		if item.p != p {
			continue
		}
		if len(q) == 1 {
			delete(w.queues, p.Tenant)
		} else {
			w.queues[p.Tenant] = append(q[:i:i], q[i+1:]...)
		}
		w.n--
		return true
	}
	return false
}

// prune drops per-tenant state that can no longer influence any future
// tag: a drained tenant whose last tag has fallen behind the virtual
// clock would restart from vtime anyway (Enqueue takes max(vtime,
// lastTag)), so its entry is semantically identical to an absent one.
// Without this, a long serving run with churning tenant ids — every
// connection mapped to a fresh fairness domain — grows lastTag without
// bound. Deletion order does not matter: no output depends on which
// stale entries go first, so map iteration keeps runs deterministic.
func (w *wfqPolicy) prune() {
	if len(w.lastTag) <= len(w.queues) {
		// Every lastTag entry has a backlogged queue: nothing is
		// prunable, and skipping the sweep keeps fully-loaded admission
		// at the min-scan cost it already pays.
		return
	}
	for tenant, tag := range w.lastTag {
		if tag > w.vtime {
			continue // still ahead: the tenant banked no credit but owes service time
		}
		if _, queued := w.queues[tenant]; queued {
			continue
		}
		delete(w.lastTag, tenant)
	}
}

// TenantStat is one tenant's slice of the serving report: completion
// count, end-to-end latency p95, and SLO attainment over that tenant's
// completed queries.
type TenantStat struct {
	Tenant        int
	Completed     int64
	P95           sim.Duration
	SLOAttainment float64
}

// TenantStats summarizes completed queries per tenant, sorted by tenant
// id. The result always covers tenants 0..minTenants-1 (tenants with no
// completions report zeros), plus any higher tenant id that completed a
// query.
func (s *Scheduler) TenantStats(minTenants int) []TenantStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	lats := map[int][]sim.Duration{}
	met := map[int]int64{}
	for _, q := range s.completed {
		if q.Write {
			// Per-tenant fairness columns compare scan latencies; write
			// completions live in Stats.WriteCompleted.
			continue
		}
		lats[q.Tenant] = append(lats[q.Tenant], q.Latency())
		if s.cfg.SLO <= 0 || q.Latency() <= s.cfg.SLO {
			met[q.Tenant]++
		}
	}
	ids := make([]int, 0, len(lats)+minTenants)
	seen := map[int]bool{}
	for t := 0; t < minTenants; t++ {
		ids = append(ids, t)
		seen[t] = true
	}
	for t := range lats {
		if !seen[t] {
			ids = append(ids, t)
		}
	}
	sort.Ints(ids)
	out := make([]TenantStat, 0, len(ids))
	for _, t := range ids {
		ts := TenantStat{Tenant: t, Completed: int64(len(lats[t]))}
		if ts.Completed > 0 {
			ts.P95 = Percentile(lats[t], 95)
			ts.SLOAttainment = float64(met[t]) / float64(ts.Completed)
		}
		out = append(out, ts)
	}
	return out
}
