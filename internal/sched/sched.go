// Package sched implements a multi-tenant query scheduler for the
// simulated engine: queries arriving from many concurrent client streams
// are admitted under a concurrency limit (the multi-programming level,
// MPL) through a bounded FIFO admission queue, and every query's life
// cycle — arrival, admission, completion — is timestamped on the virtual
// clock so the serving harness can report queue-wait and execution
// latency percentiles and SLO attainment.
//
// The scheduler is deliberately policy-agnostic: it gates *when* a query
// may start, while the buffer-management layer (LRU/Clock/PBM or the
// Cooperative Scans ABM) decides *how* its scans share the pool once
// running. This mirrors the paper's §4 setup, where the number of
// concurrent streams is the controlled variable and the buffer manager
// is the subject under test.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/rt"
	"repro/internal/sim"
)

// Config parameterizes a Scheduler.
type Config struct {
	// MPL is the maximum number of concurrently executing queries
	// (default 8).
	MPL int
	// QueueDepth bounds the admission queue; a query arriving when the
	// queue is full is rejected. Zero means DefaultQueueDepth; negative
	// means unbounded.
	QueueDepth int
	// SLO is the end-to-end latency objective used for attainment
	// accounting; zero disables SLO tracking.
	SLO sim.Duration
	// Policy names the admission-ordering policy (see RegisterPolicy):
	// "fifo" (arrival order, the historical behavior), "sesf"
	// (shortest-expected-scan-first by Query.Cost), or "wfq" (per-tenant
	// weighted fair queueing). Empty means fifo.
	Policy string
	// TenantWeights assigns per-tenant fair-share weights to weighted
	// policies; missing tenants weigh 1.
	TenantWeights map[int]float64
}

// DefaultQueueDepth is the admission queue bound when Config.QueueDepth
// is zero.
const DefaultQueueDepth = 64

func (c Config) withDefaults() Config {
	if c.MPL <= 0 {
		c.MPL = 8
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.Policy == "" {
		c.Policy = "fifo"
	}
	return c
}

// QueryStat is the recorded life cycle of one completed query.
type QueryStat struct {
	// Stream and Seq identify the query within its client stream; Tenant
	// is its fairness domain.
	Stream, Seq, Tenant int
	// Arrive, Admit and Finish are virtual timestamps: arrival at the
	// scheduler, admission to execution, and completion.
	Arrive, Admit, Finish sim.Time
}

// QueueWait is the time the query spent in the admission queue.
func (q QueryStat) QueueWait() sim.Duration { return sim.Duration(q.Admit - q.Arrive) }

// ExecTime is the time the query spent executing after admission.
func (q QueryStat) ExecTime() sim.Duration { return sim.Duration(q.Finish - q.Admit) }

// Latency is the end-to-end latency (queue wait plus execution).
func (q QueryStat) Latency() sim.Duration { return sim.Duration(q.Finish - q.Arrive) }

// Scheduler admits queries under an MPL limit through a bounded queue
// whose ordering is delegated to a pluggable AdmissionPolicy. All
// methods must be called from processes of the runtime the scheduler is
// bound to. The instance mutex makes admission and completion atomic on
// the real-threaded runtime; in sim mode it is uncontended. The policy
// is only ever driven under that mutex.
type Scheduler struct {
	r   rt.Runtime
	cfg Config

	mu      sync.Mutex
	running int
	policy  AdmissionPolicy
	order   int64 // arrival sequence for deterministic tie-breaks

	arrived   int64
	rejected  int64
	completed []QueryStat
	maxQueue  int
}

// New creates a scheduler bound to the runtime. It panics on an
// unregistered Config.Policy name; validate user input against
// PolicyNames first.
func New(r rt.Runtime, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	pol, ok := NewPolicy(cfg.Policy, PolicyConfig{TenantWeights: cfg.TenantWeights})
	if !ok {
		panic(fmt.Sprintf("sched: unknown admission policy %q (registered: %v)", cfg.Policy, PolicyNames()))
	}
	return &Scheduler{r: r, cfg: cfg, policy: pol}
}

// Policy reports the name of the scheduler's admission policy.
func (s *Scheduler) Policy() string { return s.policy.Name() }

// UsesCost reports whether the admission policy consults Query.Cost;
// drivers can skip pricing queries when it does not.
func (s *Scheduler) UsesCost() bool { return s.policy.UsesCost() }

// Query identifies and prices one admission request.
type Query struct {
	// Stream and Seq identify the query within its client stream.
	Stream, Seq int
	// Tenant is the query's fairness domain (wfq weights admissions per
	// tenant; other policies treat it as a label for per-tenant stats).
	Tenant int
	// Cost is the query's expected work in seconds of expected execution
	// time — the exec/pbm cost hook supplies it from table size and scan
	// speed estimates. Only cost-aware policies (sesf) consult it.
	Cost float64
}

// Ticket is the admission handle of a running query; call Done exactly
// once when the query finishes.
type Ticket struct {
	s                   *Scheduler
	stream, seq, tenant int
	arrive              sim.Time
	admit               sim.Time
	done                bool
}

// Arrive reports when the ticket's query arrived at the scheduler.
func (t *Ticket) Arrive() sim.Time { return t.arrive }

// Admit reports when the ticket's query was admitted to execution.
func (t *Ticket) Admit() sim.Time { return t.admit }

// Admit requests admission for a query identified as (stream, seq), with
// no tenant and no cost estimate. See AdmitQuery.
func (s *Scheduler) Admit(stream, seq int) (*Ticket, bool) {
	return s.AdmitQuery(Query{Stream: stream, Seq: seq})
}

// AdmitQuery requests admission for q. It blocks (in virtual time) while
// the MPL is saturated and the query sits in the admission queue, to be
// picked by the admission policy. It returns ok=false — without blocking
// — when the queue is full and the query is rejected.
func (s *Scheduler) AdmitQuery(q Query) (*Ticket, bool) {
	s.mu.Lock()
	s.arrived++
	t := &Ticket{s: s, stream: q.Stream, seq: q.Seq, tenant: q.Tenant, arrive: s.r.Now()}
	if s.running < s.cfg.MPL {
		s.running++
		t.admit = t.arrive
		s.mu.Unlock()
		return t, true
	}
	if s.cfg.QueueDepth >= 0 && s.policy.Len() >= s.cfg.QueueDepth {
		s.rejected++
		s.mu.Unlock()
		return nil, false
	}
	s.order++
	p := &Pending{
		Stream: q.Stream, Seq: q.Seq, Tenant: q.Tenant,
		Cost: q.Cost, Order: s.order, ev: s.r.NewEvent(),
	}
	s.policy.Enqueue(p)
	if n := s.policy.Len(); n > s.maxQueue {
		s.maxQueue = n
	}
	// The releasing query transfers its MPL slot directly to the policy's
	// pick before firing the event, so on wake-up the slot is ours.
	// Interest is registered before the mutex is dropped, so a transfer
	// racing the block cannot be lost.
	waitSlot := p.ev.Waiter()
	s.mu.Unlock()
	waitSlot.Wait()
	t.admit = s.r.Now()
	return t, true
}

// Done releases the query's MPL slot, recording its completion. The slot
// is handed to the admission policy's next pick, if any query waits.
func (t *Ticket) Done() {
	if t.done {
		panic("sched: Ticket.Done called twice")
	}
	t.done = true
	s := t.s
	s.mu.Lock()
	s.completed = append(s.completed, QueryStat{
		Stream: t.stream, Seq: t.seq, Tenant: t.tenant,
		Arrive: t.arrive, Admit: t.admit, Finish: s.r.Now(),
	})
	if next := s.policy.Next(); next != nil {
		s.mu.Unlock()
		next.ev.Fire()
		return // slot transferred, running count unchanged
	}
	s.running--
	s.mu.Unlock()
}

// Running reports the number of currently executing queries.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Queued reports the number of queries waiting in the admission queue.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.Len()
}

// Completed returns the recorded per-query statistics, in completion
// order. The returned slice is shared; do not call while queries are
// still completing on the real runtime.
func (s *Scheduler) Completed() []QueryStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// LatencyDist summarizes a latency distribution with nearest-rank
// percentiles.
type LatencyDist struct {
	P50, P95, P99, Max sim.Duration
	Mean               sim.Duration
}

// Percentile returns the nearest-rank p-th percentile (0 < p <= 100) of
// ds, which it sorts in place. Zero-length input yields zero; a p
// outside (0, 100] panics.
func Percentile(ds []sim.Duration, p float64) sim.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("sched: percentile %v outside (0, 100]", p))
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return nearestRank(ds, p)
}

// nearestRank indexes the p-th nearest-rank percentile of an
// already-sorted slice.
func nearestRank(sorted []sim.Duration, p float64) sim.Duration {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// distOf summarizes ds, sorting it in place once and indexing each
// percentile off the sorted slice.
func distOf(ds []sim.Duration) LatencyDist {
	var d LatencyDist
	if len(ds) == 0 {
		return d
	}
	var sum sim.Duration
	for _, v := range ds {
		sum += v
	}
	d.Mean = sum / sim.Duration(len(ds))
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	d.P50 = nearestRank(ds, 50)
	d.P95 = nearestRank(ds, 95)
	d.P99 = nearestRank(ds, 99)
	d.Max = ds[len(ds)-1]
	return d
}

// Stats is the aggregate serving report of a scheduler run.
type Stats struct {
	// Arrived counts every admission request; Completed and Rejected
	// partition the ones that have finished or been turned away.
	Arrived, Completed, Rejected int64
	// MaxQueueDepth is the high-water mark of the admission queue.
	MaxQueueDepth int
	// Latency, QueueWait and Exec summarize the completed queries'
	// end-to-end latency and its queue/execution split.
	Latency, QueueWait, Exec LatencyDist
	// SLOAttainment is the fraction of completed queries whose
	// end-to-end latency met the configured SLO (zero SLO => 1).
	SLOAttainment float64
	// Makespan is the virtual time at which Stats was taken; Throughput
	// is completed queries per virtual second over the makespan.
	Makespan   sim.Time
	Throughput float64
}

// Stats summarizes the run as of time now.
func (s *Scheduler) Stats(now sim.Time) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Arrived:       s.arrived,
		Completed:     int64(len(s.completed)),
		Rejected:      s.rejected,
		MaxQueueDepth: s.maxQueue,
		Makespan:      now,
	}
	n := len(s.completed)
	lat := make([]sim.Duration, n)
	qw := make([]sim.Duration, n)
	ex := make([]sim.Duration, n)
	met := 0
	for i, q := range s.completed {
		lat[i] = q.Latency()
		qw[i] = q.QueueWait()
		ex[i] = q.ExecTime()
		if s.cfg.SLO <= 0 || q.Latency() <= s.cfg.SLO {
			met++
		}
	}
	st.Latency = distOf(lat)
	st.QueueWait = distOf(qw)
	st.Exec = distOf(ex)
	if n > 0 {
		st.SLOAttainment = float64(met) / float64(n)
	}
	if sec := now.Seconds(); sec > 0 {
		st.Throughput = float64(n) / sec
	}
	return st
}

// ExpInterarrival draws one exponentially distributed inter-arrival gap
// for a Poisson process with the given rate (arrivals per virtual
// second). A non-positive rate yields zero (back-to-back arrivals).
func ExpInterarrival(rng *rand.Rand, ratePerSec float64) sim.Duration {
	if ratePerSec <= 0 {
		return 0
	}
	gap := rng.ExpFloat64() / ratePerSec // seconds
	return sim.Duration(gap * 1e9)
}
