// Package sched implements a multi-tenant query scheduler for the
// simulated engine: queries arriving from many concurrent client streams
// are admitted under a concurrency limit (the multi-programming level,
// MPL) through a bounded FIFO admission queue, and every query's life
// cycle — arrival, admission, completion — is timestamped on the virtual
// clock so the serving harness can report queue-wait and execution
// latency percentiles and SLO attainment.
//
// The scheduler is deliberately policy-agnostic: it gates *when* a query
// may start, while the buffer-management layer (LRU/Clock/PBM or the
// Cooperative Scans ABM) decides *how* its scans share the pool once
// running. This mirrors the paper's §4 setup, where the number of
// concurrent streams is the controlled variable and the buffer manager
// is the subject under test.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rt"
	"repro/internal/sim"
)

// Config parameterizes a Scheduler.
type Config struct {
	// MPL is the maximum number of concurrently executing queries
	// (default 8).
	MPL int
	// QueueDepth bounds the admission queue; a query arriving when the
	// queue is full is rejected. Zero means DefaultQueueDepth; negative
	// means unbounded.
	QueueDepth int
	// SLO is the end-to-end latency objective used for attainment
	// accounting; zero disables SLO tracking.
	SLO sim.Duration
	// Policy names the admission-ordering policy (see RegisterPolicy):
	// "fifo" (arrival order, the historical behavior), "sesf"
	// (shortest-expected-scan-first by Query.Cost), or "wfq" (per-tenant
	// weighted fair queueing). Empty means fifo.
	Policy string
	// TenantWeights assigns per-tenant fair-share weights to weighted
	// policies; missing tenants weigh 1.
	TenantWeights map[int]float64
}

// DefaultQueueDepth is the admission queue bound when Config.QueueDepth
// is zero.
const DefaultQueueDepth = 64

func (c Config) withDefaults() Config {
	if c.MPL <= 0 {
		c.MPL = 8
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.Policy == "" {
		c.Policy = "fifo"
	}
	return c
}

// QueryStat is the recorded life cycle of one resolved query. Completed
// queries carry Cause == rt.CauseNone; queue drops and mid-execution
// kills record why the query died.
type QueryStat struct {
	// Stream and Seq identify the query within its client stream; Tenant
	// is its fairness domain.
	Stream, Seq, Tenant int
	// Arrive, Admit and Finish are virtual timestamps: arrival at the
	// scheduler, admission to execution, and completion. For a queue drop
	// Admit and Finish are both the drop time, so Latency() is the time
	// the entry wasted in the queue.
	Arrive, Admit, Finish sim.Time
	// Cause is why the query died (rt.CauseNone for completed queries).
	Cause rt.CancelCause
	// Write marks an update query (admitted through the same policies as
	// reads, reported separately).
	Write bool
}

// QueueWait is the time the query spent in the admission queue.
func (q QueryStat) QueueWait() sim.Duration { return sim.Duration(q.Admit - q.Arrive) }

// ExecTime is the time the query spent executing after admission.
func (q QueryStat) ExecTime() sim.Duration { return sim.Duration(q.Finish - q.Admit) }

// Latency is the end-to-end latency (queue wait plus execution).
func (q QueryStat) Latency() sim.Duration { return sim.Duration(q.Finish - q.Arrive) }

// Scheduler admits queries under an MPL limit through a bounded queue
// whose ordering is delegated to a pluggable AdmissionPolicy. All
// methods must be called from processes of the runtime the scheduler is
// bound to. The instance mutex makes admission and completion atomic on
// the real-threaded runtime; in sim mode it is uncontended. The policy
// is only ever driven under that mutex.
type Scheduler struct {
	r   rt.Runtime
	cfg Config

	mu       sync.Mutex
	running  int
	policy   AdmissionPolicy
	order    int64 // arrival sequence for deterministic tie-breaks
	draining bool

	arrived       int64
	rejected      int64
	drainRejected int64
	completed     []QueryStat
	dropped       []QueryStat // queue drops: entries that died before admission
	killed        []QueryStat // mid-execution kills: admitted, then cancelled/expired
	maxQueue      int

	// pending mirrors the policy's waiting set in arrival order, so the
	// scheduler can reap expired entries without asking the policy to
	// enumerate its queue. Every entry in pending is also in the policy
	// until it is granted or dropped.
	pending []*Pending
}

// New creates a scheduler bound to the runtime. It panics on an
// unregistered Config.Policy name; validate user input against
// PolicyNames first.
func New(r rt.Runtime, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	pol, ok := NewPolicy(cfg.Policy, PolicyConfig{TenantWeights: cfg.TenantWeights})
	if !ok {
		panic(fmt.Sprintf("sched: unknown admission policy %q (registered: %v)", cfg.Policy, PolicyNames()))
	}
	return &Scheduler{r: r, cfg: cfg, policy: pol}
}

// Policy reports the name of the scheduler's admission policy.
func (s *Scheduler) Policy() string { return s.policy.Name() }

// UsesCost reports whether the admission policy consults Query.Cost;
// drivers can skip pricing queries when it does not.
func (s *Scheduler) UsesCost() bool { return s.policy.UsesCost() }

// Query identifies and prices one admission request.
type Query struct {
	// Stream and Seq identify the query within its client stream.
	Stream, Seq int
	// Tenant is the query's fairness domain (wfq weights admissions per
	// tenant; other policies treat it as a label for per-tenant stats).
	Tenant int
	// Cost is the query's expected work in seconds of expected execution
	// time — the exec/pbm cost hook supplies it from table size and scan
	// speed estimates; update queries are priced by delta size. Only
	// cost-aware policies (sesf) consult it.
	Cost float64
	// Write marks an update query. Writes share the admission policies,
	// queue and MPL with reads; the flag only routes their completions
	// into the write-throughput accounting.
	Write bool
	// Ctx is the query's lifecycle handle: a query cancelled while queued
	// is dropped instead of admitted, and a queued query whose deadline
	// passes is dropped with rt.CauseAdmissionTimeout. Nil disables
	// lifecycle handling for this query (the historical behavior).
	Ctx *rt.QueryCtx
}

// Ticket is the admission handle of a running query. Resolve it exactly
// once: Done when the query finishes, Cancel when it dies mid-execution.
// The terminal transition is atomic — the first of Done/Cancel wins and
// the other is a no-op — so a client cancel racing a natural completion
// needs no external coordination.
type Ticket struct {
	s                   *Scheduler
	stream, seq, tenant int
	write               bool
	arrive              sim.Time
	admit               sim.Time
	qctx                *rt.QueryCtx
	state               atomic.Int32
}

// Ticket terminal states: the first CompareAndSwap out of ticketActive
// wins; the loser's call is a no-op.
const (
	ticketActive int32 = iota
	ticketDone
	ticketCancelled
)

// Arrive reports when the ticket's query arrived at the scheduler.
func (t *Ticket) Arrive() sim.Time { return t.arrive }

// Admit reports when the ticket's query was admitted to execution.
func (t *Ticket) Admit() sim.Time { return t.admit }

// Admit requests admission for a query identified as (stream, seq), with
// no tenant and no cost estimate. See AdmitQuery.
func (s *Scheduler) Admit(stream, seq int) (*Ticket, bool) {
	return s.AdmitQuery(Query{Stream: stream, Seq: seq})
}

// AdmitOutcome classifies how an admission request resolved.
type AdmitOutcome int

const (
	// AdmitGranted: the query holds an MPL slot; resolve its Ticket.
	AdmitGranted AdmitOutcome = iota
	// AdmitRejected: the bounded admission queue was full.
	AdmitRejected
	// AdmitDraining: the scheduler is draining and refuses new work.
	// Counted separately from Rejected (see Stats.DrainRejected) so
	// shutdown does not pollute the rejection stats.
	AdmitDraining
	// AdmitDropped: the query died before admission — cancelled on
	// arrival or while queued, or past its deadline. The cause is on
	// its Query.Ctx.
	AdmitDropped
)

func (o AdmitOutcome) String() string {
	switch o {
	case AdmitGranted:
		return "granted"
	case AdmitRejected:
		return "rejected"
	case AdmitDraining:
		return "draining"
	case AdmitDropped:
		return "dropped"
	}
	return fmt.Sprintf("AdmitOutcome(%d)", int(o))
}

// AdmitQuery requests admission for q. It blocks (in virtual time) while
// the MPL is saturated and the query sits in the admission queue, to be
// picked by the admission policy. It returns ok=false — without blocking
// — when the queue is full and the query is rejected.
func (s *Scheduler) AdmitQuery(q Query) (*Ticket, bool) {
	t, out := s.AdmitQueryOutcome(q)
	return t, out == AdmitGranted
}

// Drain puts the scheduler into draining: every subsequent admission
// resolves AdmitDraining without blocking. Already-queued queries keep
// their place and still run; pair Drain with polling Idle to wait for
// the in-flight work to finish.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Idle reports whether no query is running or queued — after Drain,
// this is the "safe to exit" signal.
func (s *Scheduler) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running == 0 && s.policy.Len() == 0
}

// AdmitQueryOutcome is AdmitQuery with the resolution classified: the
// serving front end branches on queue-full versus draining versus a
// query that died while queued, which the boolean form conflates.
func (s *Scheduler) AdmitQueryOutcome(q Query) (*Ticket, AdmitOutcome) {
	s.mu.Lock()
	if s.draining {
		// Refused work is not an arrival: the reconciliation invariant
		// (Completed+Rejected+TimedOut+Cancelled == Arrived once idle)
		// must survive a drain race.
		s.drainRejected++
		s.mu.Unlock()
		return nil, AdmitDraining
	}
	s.arrived++
	t := &Ticket{s: s, stream: q.Stream, seq: q.Seq, tenant: q.Tenant, write: q.Write, arrive: s.r.Now(), qctx: q.Ctx}
	if s.running < s.cfg.MPL {
		s.running++
		t.admit = t.arrive
		s.mu.Unlock()
		return t, AdmitGranted
	}
	if s.cfg.QueueDepth >= 0 && s.policy.Len() >= s.cfg.QueueDepth {
		// Before rejecting a live arrival, reap queued entries that are
		// already dead: a cancelled or expired entry must not hold a
		// queue slot against queries that could still run.
		s.reapDeadLocked()
		if s.policy.Len() >= s.cfg.QueueDepth {
			s.rejected++
			s.mu.Unlock()
			return nil, AdmitRejected
		}
	}
	if q.Ctx.Cancelled() {
		// Dead on arrival: never enqueue. (An already-cancelled query's
		// OnCancel hook would fire the slot event before anyone waits on
		// it — on the simulator that wake-up is lost and the entry would
		// park forever.)
		cause := q.Ctx.Cause()
		s.recordDropLocked(q.Stream, q.Seq, q.Tenant, t.arrive, cause)
		s.mu.Unlock()
		return nil, AdmitDropped
	}
	s.order++
	p := &Pending{
		Stream: q.Stream, Seq: q.Seq, Tenant: q.Tenant,
		Cost: q.Cost, Order: s.order, ev: s.r.NewEvent(),
		arrive: t.arrive, qctx: q.Ctx,
	}
	s.policy.Enqueue(p)
	s.pending = append(s.pending, p)
	if n := s.policy.Len(); n > s.maxQueue {
		s.maxQueue = n
	}
	// The releasing query transfers its MPL slot directly to the policy's
	// pick before firing the event, so on wake-up the slot is ours.
	// Interest is registered before the mutex is dropped, so a transfer
	// racing the block cannot be lost. A cancel while queued fires the
	// same event (the Waiter is taken first, so a cancel landing between
	// hook registration and the park still wakes the captured
	// generation); the entry then removes itself below.
	waitSlot := p.ev.Waiter()
	stop := q.Ctx.OnCancel(p.ev.Fire)
	s.mu.Unlock()
	waitSlot.Wait()
	stop()
	if q.Ctx == nil {
		// Historical path: the only possible wake-up is a slot grant.
		t.admit = s.r.Now()
		return t, AdmitGranted
	}
	s.mu.Lock()
	switch {
	case p.granted:
		// The slot is ours — even if the query was cancelled while the
		// grant was in flight. It counts as admitted; the executor sees
		// the cancel at its first check and resolves the ticket with
		// Cancel, so the accounting stays single-bucket.
		t.admit = s.r.Now()
		s.mu.Unlock()
		return t, AdmitGranted
	case p.dropCause != rt.CauseNone:
		// A slot-releasing query or the queue-full reaper already removed
		// and recorded this entry.
		s.mu.Unlock()
		return nil, AdmitDropped
	default:
		// Woken by our own cancel hook while still queued: take the entry
		// out of the queue and record the drop.
		cause := q.Ctx.Cause()
		if cause == rt.CauseNone {
			cause = rt.CauseAdmissionTimeout
		}
		p.dropCause = cause
		s.policy.Remove(p)
		s.unpendLocked(p)
		s.recordDropLocked(p.Stream, p.Seq, p.Tenant, p.arrive, cause)
		s.mu.Unlock()
		return nil, AdmitDropped
	}
}

// pendingDeadCause classifies a queued entry at time now: the cause it
// should be dropped with, or rt.CauseNone while it is still admittable.
func pendingDeadCause(p *Pending, now sim.Time) rt.CancelCause {
	if c := p.qctx.Cause(); c != rt.CauseNone {
		return c
	}
	if p.qctx.Expired(now) {
		return rt.CauseAdmissionTimeout
	}
	return rt.CauseNone
}

// reapDeadLocked drops every queued entry that is already cancelled or
// past its deadline, freeing their queue slots. Caller holds s.mu.
func (s *Scheduler) reapDeadLocked() {
	now := s.r.Now()
	for i := 0; i < len(s.pending); {
		p := s.pending[i]
		if p.granted || p.dropCause != rt.CauseNone {
			i++
			continue
		}
		cause := pendingDeadCause(p, now)
		if cause == rt.CauseNone {
			i++
			continue
		}
		p.dropCause = cause
		s.policy.Remove(p)
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		s.recordDropLocked(p.Stream, p.Seq, p.Tenant, p.arrive, cause)
		// An expiry must also cancel the query's context so every layer
		// agrees it is dead; the entry's own parked AdmitQuery wakes via
		// the cancel hook (or the explicit Fire below, if the hook ran
		// before the entry parked) and observes dropCause.
		p.qctx.Cancel(cause)
		p.ev.Fire()
	}
}

// unpendLocked removes p from the arrival-order mirror. Caller holds s.mu.
func (s *Scheduler) unpendLocked(p *Pending) {
	for i, q := range s.pending {
		if q == p {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// recordDropLocked records a queue drop: the entry left the queue dead at
// time now, so Admit == Finish == now and Latency() is its queue
// residence time. Caller holds s.mu.
func (s *Scheduler) recordDropLocked(stream, seq, tenant int, arrive sim.Time, cause rt.CancelCause) {
	now := s.r.Now()
	s.dropped = append(s.dropped, QueryStat{
		Stream: stream, Seq: seq, Tenant: tenant,
		Arrive: arrive, Admit: now, Finish: now, Cause: cause,
	})
}

// Done releases the query's MPL slot, recording its completion. The slot
// is handed to the admission policy's next live pick, if any query
// waits. A second Done — or a Done racing Cancel — is a no-op: the first
// terminal transition wins.
func (t *Ticket) Done() {
	if !t.state.CompareAndSwap(ticketActive, ticketDone) {
		return
	}
	s := t.s
	s.mu.Lock()
	s.completed = append(s.completed, QueryStat{
		Stream: t.stream, Seq: t.seq, Tenant: t.tenant,
		Arrive: t.arrive, Admit: t.admit, Finish: s.r.Now(),
		Write: t.write,
	})
	s.releaseSlotLocked()
}

// Cancel resolves the ticket as killed mid-execution with the given
// cause (rt.CauseNone maps to rt.CauseClientCancel) and releases its MPL
// slot. It also cancels the query's lifecycle context, so a caller may
// use Cancel itself as the kill switch rather than cancelling the
// context first. No-op if Done or Cancel already resolved the ticket.
func (t *Ticket) Cancel(cause rt.CancelCause) {
	if cause == rt.CauseNone {
		cause = rt.CauseClientCancel
	}
	if !t.state.CompareAndSwap(ticketActive, ticketCancelled) {
		return
	}
	t.qctx.Cancel(cause) // no-op if the context is already dead
	s := t.s
	s.mu.Lock()
	s.killed = append(s.killed, QueryStat{
		Stream: t.stream, Seq: t.seq, Tenant: t.tenant,
		Arrive: t.arrive, Admit: t.admit, Finish: s.r.Now(),
		Cause: cause, Write: t.write,
	})
	s.releaseSlotLocked()
}

// releaseSlotLocked hands the caller's freed MPL slot to the next live
// queued entry. Dead picks (cancelled while queued, or past their
// deadline) are dropped on the spot — recorded, woken to observe the
// drop — and the loop moves on, so a burst of expired entries cannot
// absorb slots meant for live queries. Caller holds s.mu; the method
// unlocks it.
func (s *Scheduler) releaseSlotLocked() {
	now := s.r.Now()
	for {
		next := s.policy.Next()
		if next == nil {
			s.running--
			s.mu.Unlock()
			return
		}
		s.unpendLocked(next)
		if cause := pendingDeadCause(next, now); cause != rt.CauseNone {
			next.dropCause = cause
			s.recordDropLocked(next.Stream, next.Seq, next.Tenant, next.arrive, cause)
			next.qctx.Cancel(cause)
			next.ev.Fire()
			continue
		}
		next.granted = true
		s.mu.Unlock()
		next.ev.Fire()
		return // slot transferred, running count unchanged
	}
}

// Running reports the number of currently executing queries.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Queued reports the number of queries waiting in the admission queue.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.Len()
}

// Completed returns the recorded per-query statistics, in completion
// order. The returned slice is shared; do not call while queries are
// still completing on the real runtime.
func (s *Scheduler) Completed() []QueryStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Dropped returns the queue-drop records (queries that died waiting, in
// drop order): Cause says why, Latency() how long they held a queue
// slot. Same sharing caveat as Completed.
func (s *Scheduler) Dropped() []QueryStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Killed returns the mid-execution kill records (admitted queries
// resolved by Ticket.Cancel), in kill order. Same sharing caveat as
// Completed.
func (s *Scheduler) Killed() []QueryStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// LatencyDist summarizes a latency distribution with nearest-rank
// percentiles.
type LatencyDist struct {
	P50, P95, P99, Max sim.Duration
	Mean               sim.Duration
}

// Percentile returns the nearest-rank p-th percentile (0 < p <= 100) of
// ds, which it sorts in place. Zero-length input yields zero; a p
// outside (0, 100] panics.
func Percentile(ds []sim.Duration, p float64) sim.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("sched: percentile %v outside (0, 100]", p))
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return nearestRank(ds, p)
}

// nearestRank indexes the p-th nearest-rank percentile of an
// already-sorted slice.
func nearestRank(sorted []sim.Duration, p float64) sim.Duration {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// distOf summarizes ds, sorting it in place once and indexing each
// percentile off the sorted slice.
func distOf(ds []sim.Duration) LatencyDist {
	var d LatencyDist
	if len(ds) == 0 {
		return d
	}
	var sum sim.Duration
	for _, v := range ds {
		sum += v
	}
	d.Mean = sum / sim.Duration(len(ds))
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	d.P50 = nearestRank(ds, 50)
	d.P95 = nearestRank(ds, 95)
	d.P99 = nearestRank(ds, 99)
	d.Max = ds[len(ds)-1]
	return d
}

// Stats is the aggregate serving report of a scheduler run.
type Stats struct {
	// Arrived counts every admission request, reads and writes; Completed
	// and Rejected partition the ones that have finished or been turned
	// away (Completed includes completed writes, so the reconciliation
	// invariant is write-agnostic).
	Arrived, Completed, Rejected int64
	// MaxQueueDepth is the high-water mark of the admission queue.
	MaxQueueDepth int
	// Latency, QueueWait and Exec summarize the completed READ queries'
	// end-to-end latency and its queue/execution split: update queries
	// are tiny delta appends whose latencies would drown the scan
	// percentiles the serve table compares across write fractions.
	Latency, QueueWait, Exec LatencyDist
	// SLOAttainment is the fraction of completed read queries whose
	// end-to-end latency met the configured SLO (zero SLO => 1).
	SLOAttainment float64
	// Makespan is the virtual time at which Stats was taken; Throughput
	// is completed read queries per virtual second over the makespan and
	// WriteThroughput the same for update queries (WriteCompleted of
	// them). All write fields are zero in a read-only run.
	Makespan        sim.Time
	Throughput      float64
	WriteCompleted  int64
	WriteThroughput float64
	// TimedOut counts queries killed by their deadline: queue drops with
	// rt.CauseAdmissionTimeout plus mid-execution expiries with
	// rt.CauseDeadlineExceeded. Cancelled counts client cancels, queued
	// or running. Completed + Rejected + TimedOut + Cancelled covers
	// every resolved arrival.
	TimedOut, Cancelled int64
	// QueueDrop summarizes the queue residence time (arrival to drop) of
	// entries dropped while waiting. It is reported separately so dead
	// entries do not pollute the completed-query latency percentiles.
	QueueDrop LatencyDist
	// DrainRejected counts admissions refused because the scheduler was
	// draining. These are not arrivals: the Completed + Rejected +
	// TimedOut + Cancelled == Arrived reconciliation holds with or
	// without a drain, and shutdown does not inflate Rejected.
	DrainRejected int64
}

// Stats summarizes the run as of time now.
func (s *Scheduler) Stats(now sim.Time) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Arrived:       s.arrived,
		Completed:     int64(len(s.completed)),
		Rejected:      s.rejected,
		DrainRejected: s.drainRejected,
		MaxQueueDepth: s.maxQueue,
		Makespan:      now,
	}
	lat := make([]sim.Duration, 0, len(s.completed))
	qw := make([]sim.Duration, 0, len(s.completed))
	ex := make([]sim.Duration, 0, len(s.completed))
	met := 0
	for _, q := range s.completed {
		if q.Write {
			st.WriteCompleted++
			continue
		}
		lat = append(lat, q.Latency())
		qw = append(qw, q.QueueWait())
		ex = append(ex, q.ExecTime())
		if s.cfg.SLO <= 0 || q.Latency() <= s.cfg.SLO {
			met++
		}
	}
	st.Latency = distOf(lat)
	st.QueueWait = distOf(qw)
	st.Exec = distOf(ex)
	if n := len(lat); n > 0 {
		st.SLOAttainment = float64(met) / float64(n)
	}
	if sec := now.Seconds(); sec > 0 {
		st.Throughput = float64(len(lat)) / sec
		st.WriteThroughput = float64(st.WriteCompleted) / sec
	}
	qd := make([]sim.Duration, len(s.dropped))
	for i, q := range s.dropped {
		qd[i] = q.Latency()
		countCause(&st, q.Cause)
	}
	for _, q := range s.killed {
		countCause(&st, q.Cause)
	}
	st.QueueDrop = distOf(qd)
	return st
}

// countCause buckets one dead query into the TimedOut/Cancelled totals.
func countCause(st *Stats, c rt.CancelCause) {
	switch c {
	case rt.CauseClientCancel:
		st.Cancelled++
	case rt.CauseDeadlineExceeded, rt.CauseAdmissionTimeout:
		st.TimedOut++
	}
}

// ExpInterarrival draws one exponentially distributed inter-arrival gap
// for a Poisson process with the given rate (arrivals per virtual
// second). A non-positive rate yields zero (back-to-back arrivals).
func ExpInterarrival(rng *rand.Rand, ratePerSec float64) sim.Duration {
	if ratePerSec <= 0 {
		return 0
	}
	gap := rng.ExpFloat64() / ratePerSec // seconds
	return sim.Duration(gap * 1e9)
}
