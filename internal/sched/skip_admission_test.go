package sched

import (
	"reflect"
	"testing"

	"repro/internal/minmax"
	"repro/internal/pbm"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestSESFAdmitsSelectiveScanAheadOfFullScans runs the skip-aware
// costing pipeline the serving driver uses — zone-map CountRange feeding
// pbm.EstimateScanTime — and checks the resulting Cost values make sesf
// jump a late-arriving 1%-selective scan ahead of a backlog of full
// scans, while the equally-priced full scans keep their arrival order.
// Costs are deterministic: the PBM is idle, so pricing uses the exact
// default speed.
func TestSESFAdmitsSelectiveScanAheadOfFullScans(t *testing.T) {
	const n = 100_000
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{{Name: "d", Type: storage.Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	d := storage.NewColumnData()
	d.I64[0] = vals
	snap, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}

	ix := minmax.Build(snap, 0, 1000)
	p := pbm.New(sim.NewEngine(), pbm.DefaultConfig())
	vmin, vmax, _ := ix.ValueBounds()
	fullCost := p.EstimateScanTime(ix.CountRange(0, n, vmin, vmax)).Seconds()
	selCost := p.EstimateScanTime(ix.CountRange(0, n, 0, n/100-1)).Seconds()
	if fullCost < 50*selCost {
		t.Fatalf("skip-aware pricing too flat: full %v vs selective %v", fullCost, selCost)
	}

	queries := []Query{
		{Seq: 0, Cost: fullCost}, // admitted immediately (MPL slot free)
		{Seq: 1, Cost: fullCost}, // queued full scans...
		{Seq: 2, Cost: fullCost},
		{Seq: 3, Cost: selCost}, // ...then the cheap selective scan arrives
	}
	got := admissionOrder(t, Config{Policy: "sesf"}, queries)
	want := []int{0, 3, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sesf admission order %v, want %v (selective scan first, full scans in arrival order)", got, want)
	}
}
