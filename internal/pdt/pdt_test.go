package pdt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func oneColSchema() storage.Schema {
	return storage.Schema{{Name: "v", Type: storage.Int64, Width: 8}}
}

// stableSnap builds a snapshot with values 0..n-1 in column 0.
func stableSnap(t testing.TB, n int) *storage.Snapshot {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", oneColSchema())
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	d.I64[0] = vals
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func row(v int64) Row { return Row{IntVal(v)} }

// image flattens the merged image's single column.
func image(p *PDT, snap *storage.Snapshot) []int64 {
	return p.Image(snap).I64[0]
}

func TestEmptyPDTIsIdentity(t *testing.T) {
	snap := stableSnap(t, 5)
	p := New(oneColSchema(), 5)
	if !p.Empty() || p.NumTuples() != 5 {
		t.Fatal("empty PDT wrong")
	}
	got := image(p, snap)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("image[%d] = %d", i, v)
		}
	}
	for i := int64(0); i < 5; i++ {
		if p.RIDtoSID(i) != i || p.SIDtoRIDlow(i) != i || p.SIDtoRIDhigh(i) != i {
			t.Fatalf("identity conversion broken at %d", i)
		}
	}
}

func TestInsertShiftsRIDs(t *testing.T) {
	snap := stableSnap(t, 4) // 0 1 2 3
	p := New(oneColSchema(), 4)
	p.InsertAt(2, row(100)) // 0 1 100 2 3
	got := image(p, snap)
	want := []int64{0, 1, 100, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
	if p.RIDtoSID(2) != 2 { // insert maps to SID of following stable tuple
		t.Fatalf("RIDtoSID(2) = %d, want 2", p.RIDtoSID(2))
	}
	if p.SIDtoRIDlow(2) != 2 || p.SIDtoRIDhigh(2) != 3 {
		t.Fatalf("low/high = %d/%d, want 2/3", p.SIDtoRIDlow(2), p.SIDtoRIDhigh(2))
	}
}

func TestDeleteShiftsRIDs(t *testing.T) {
	snap := stableSnap(t, 5) // 0 1 2 3 4
	p := New(oneColSchema(), 5)
	p.DeleteAt(1) // 0 2 3 4
	got := image(p, snap)
	want := []int64{0, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
	// Deleted tuple's SID still converts: the would-be position.
	if p.SIDtoRIDlow(1) != 1 || p.SIDtoRIDhigh(1) != 1 {
		t.Fatalf("deleted SID 1 -> %d/%d, want 1/1", p.SIDtoRIDlow(1), p.SIDtoRIDhigh(1))
	}
	if p.RIDtoSID(1) != 2 {
		t.Fatalf("RIDtoSID(1) = %d, want 2", p.RIDtoSID(1))
	}
}

func TestDeleteInsertedTupleCancels(t *testing.T) {
	snap := stableSnap(t, 3)
	p := New(oneColSchema(), 3)
	p.InsertAt(1, row(50))
	p.DeleteAt(1) // cancels the insert entirely
	if !p.Empty() {
		t.Fatal("delete of insert left residue")
	}
	got := image(p, snap)
	if len(got) != 3 {
		t.Fatalf("image = %v", got)
	}
}

func TestModify(t *testing.T) {
	snap := stableSnap(t, 3)
	p := New(oneColSchema(), 3)
	p.ModifyAt(1, 0, IntVal(99))
	got := image(p, snap)
	want := []int64{0, 99, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
	// Modify an inserted tuple.
	p.InsertAt(0, row(7))
	p.ModifyAt(0, 0, IntVal(8))
	got = image(p, snap)
	if got[0] != 8 {
		t.Fatalf("modified insert = %v", got)
	}
}

func TestAppendAtEnd(t *testing.T) {
	snap := stableSnap(t, 2)
	p := New(oneColSchema(), 2)
	p.InsertAt(2, row(10))
	p.InsertAt(3, row(11))
	got := image(p, snap)
	want := []int64{0, 1, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
	// Appended tuples map to SID == stableCount.
	if p.RIDtoSID(2) != 2 || p.RIDtoSID(3) != 2 {
		t.Fatalf("append SIDs: %d %d", p.RIDtoSID(2), p.RIDtoSID(3))
	}
}

// TestFigure4Semantics exercises the conversion rules the paper's Figure 4
// illustrates: a mix of deletes and multi-insert runs where several RIDs
// share one SID (making RID→SID non-injective), deleted tuples having a
// SID→RID direction only, and the low/high SID→RID variants bracketing an
// insert run.
func TestFigure4Semantics(t *testing.T) {
	snap := stableSnap(t, 6) // stable: 0 1 2 3 4 5
	p := New(oneColSchema(), 6)
	p.DeleteAt(1)           // image: 0 2 3 4 5
	p.InsertAt(2, row(100)) // image: 0 2 100 3 4 5
	p.InsertAt(3, row(101)) // image: 0 2 100 101 3 4 5
	p.DeleteAt(5)           // image: 0 2 100 101 3 5
	got := image(p, snap)
	want := []int64{0, 2, 100, 101, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}

	// Both inserts anchor before stable tuple 3: RIDs 2,3,4 all map to SID 3.
	for rid := int64(2); rid <= 4; rid++ {
		if p.RIDtoSID(rid) != 3 {
			t.Fatalf("RIDtoSID(%d) = %d, want 3", rid, p.RIDtoSID(rid))
		}
	}
	// Low/high bracket the run; the middle insert's RID is not recoverable
	// from SID alone (the one-way arrows of Figure 4).
	if p.SIDtoRIDlow(3) != 2 {
		t.Fatalf("SIDtoRIDlow(3) = %d, want 2", p.SIDtoRIDlow(3))
	}
	if p.SIDtoRIDhigh(3) != 4 {
		t.Fatalf("SIDtoRIDhigh(3) = %d, want 4", p.SIDtoRIDhigh(3))
	}
	// Deleted SID 1: translates to the lowest RID with a higher SID (1,
	// where stable tuple 2 now sits); no RID translates back to it.
	if p.SIDtoRIDlow(1) != 1 || p.SIDtoRIDhigh(1) != 1 {
		t.Fatalf("deleted SID 1 -> %d/%d", p.SIDtoRIDlow(1), p.SIDtoRIDhigh(1))
	}
	if p.RIDtoSID(1) != 2 {
		t.Fatalf("RIDtoSID(1) = %d, want 2", p.RIDtoSID(1))
	}
	// Deleted SID 5 at the tail.
	if p.SIDtoRIDhigh(5) != 5 {
		t.Fatalf("SIDtoRIDhigh(5) = %d, want 5", p.SIDtoRIDhigh(5))
	}
}

// refModel is the naive reference implementation: a slice of (sid, value)
// with sid == -1 for inserts.
type refModel struct {
	vals []int64
	sids []int64 // -1 for inserted tuples
}

func newRefModel(n int) *refModel {
	m := &refModel{}
	for i := 0; i < n; i++ {
		m.vals = append(m.vals, int64(i))
		m.sids = append(m.sids, int64(i))
	}
	return m
}

func (m *refModel) insert(rid int64, v int64) {
	m.vals = append(m.vals, 0)
	copy(m.vals[rid+1:], m.vals[rid:])
	m.vals[rid] = v
	m.sids = append(m.sids, 0)
	copy(m.sids[rid+1:], m.sids[rid:])
	m.sids[rid] = -1
}

func (m *refModel) delete(rid int64) {
	m.vals = append(m.vals[:rid], m.vals[rid+1:]...)
	m.sids = append(m.sids[:rid], m.sids[rid+1:]...)
}

func (m *refModel) modify(rid int64, v int64) { m.vals[rid] = v }

// TestPropertyAgainstReferenceModel drives random op sequences through
// both the PDT and the naive model and compares the merged image.
func TestPropertyAgainstReferenceModel(t *testing.T) {
	const stableN = 40
	snap := stableSnap(t, stableN)
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(oneColSchema(), stableN)
		m := newRefModel(stableN)
		for op := 0; op < int(nOps)%60+5; op++ {
			total := p.NumTuples()
			if int64(len(m.vals)) != total {
				return false
			}
			switch k := rng.Intn(3); {
			case k == 0 || total == 0:
				rid := int64(rng.Intn(int(total) + 1))
				v := int64(1000 + op)
				p.InsertAt(rid, row(v))
				m.insert(rid, v)
			case k == 1:
				rid := int64(rng.Intn(int(total)))
				p.DeleteAt(rid)
				m.delete(rid)
			default:
				rid := int64(rng.Intn(int(total)))
				v := int64(2000 + op)
				p.ModifyAt(rid, 0, IntVal(v))
				m.modify(rid, v)
			}
		}
		got := image(p, snap)
		if len(got) != len(m.vals) {
			return false
		}
		for i := range got {
			if got[i] != m.vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: RIDtoSID is monotonically non-decreasing, and SIDtoRIDlow <=
// SIDtoRIDhigh with RIDtoSID(SIDtoRIDlow(s)) >= s for visible positions.
func TestPropertyConversionConsistency(t *testing.T) {
	const stableN = 30
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(oneColSchema(), stableN)
		for op := 0; op < 25; op++ {
			total := p.NumTuples()
			if total == 0 {
				p.InsertAt(0, row(int64(op)))
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.InsertAt(int64(rng.Intn(int(total)+1)), row(int64(op)))
			case 1:
				p.DeleteAt(int64(rng.Intn(int(total))))
			default:
				p.ModifyAt(int64(rng.Intn(int(total))), 0, IntVal(int64(op)))
			}
		}
		total := p.NumTuples()
		prev := int64(-1)
		for r := int64(0); r < total; r++ {
			s := p.RIDtoSID(r)
			if s < prev {
				return false
			}
			prev = s
		}
		for s := int64(0); s <= stableN; s++ {
			lo, hi := p.SIDtoRIDlow(s), p.SIDtoRIDhigh(s)
			if lo > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentsRIDMatchesImage: merging an arbitrary sub-range through
// SegmentsRID equals the corresponding slice of the full image.
func TestSegmentsRIDMatchesImage(t *testing.T) {
	const stableN = 30
	snap := stableSnap(t, stableN)
	f := func(seed int64, aRaw, bRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(oneColSchema(), stableN)
		for op := 0; op < 20; op++ {
			total := p.NumTuples()
			if total == 0 {
				p.InsertAt(0, row(int64(op)))
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.InsertAt(int64(rng.Intn(int(total)+1)), row(int64(100+op)))
			case 1:
				p.DeleteAt(int64(rng.Intn(int(total))))
			default:
				p.ModifyAt(int64(rng.Intn(int(total))), 0, IntVal(int64(200+op)))
			}
		}
		full := image(p, snap)
		total := p.NumTuples()
		a := int64(aRaw) % (total + 1)
		b := int64(bRaw) % (total + 1)
		if a > b {
			a, b = b, a
		}
		var got []int64
		for _, seg := range p.SegmentsRID(a, b) {
			switch seg.Kind {
			case SegInsert:
				for _, r := range seg.Rows {
					got = append(got, r[0].I64)
				}
			case SegStable:
				vals := snap.ReadInt64(0, seg.Lo, seg.Hi, nil)
				for i, v := range vals {
					sid := seg.Lo + int64(i)
					if mods, ok := seg.Mods[sid]; ok {
						if mv, ok := mods[0]; ok {
							v = mv.I64
						}
					}
					got = append(got, v)
				}
			}
		}
		want := full[a:b]
		if int64(len(got)) != b-a {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateComposition(t *testing.T) {
	const stableN = 20
	snap := stableSnap(t, stableN)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lower := New(oneColSchema(), stableN)
		for op := 0; op < 10; op++ {
			total := lower.NumTuples()
			switch {
			case total == 0 || rng.Intn(3) == 0:
				lower.InsertAt(int64(rng.Intn(int(total)+1)), row(int64(100+op)))
			case rng.Intn(2) == 0:
				lower.DeleteAt(int64(rng.Intn(int(total))))
			default:
				lower.ModifyAt(int64(rng.Intn(int(total))), 0, IntVal(int64(300+op)))
			}
		}
		upper := New(oneColSchema(), lower.NumTuples())
		for op := 0; op < 10; op++ {
			total := upper.NumTuples()
			switch {
			case total == 0 || rng.Intn(3) == 0:
				upper.InsertAt(int64(rng.Intn(int(total)+1)), row(int64(500+op)))
			case rng.Intn(2) == 0:
				upper.DeleteAt(int64(rng.Intn(int(total))))
			default:
				upper.ModifyAt(int64(rng.Intn(int(total))), 0, IntVal(int64(700+op)))
			}
		}
		// Reference: apply upper to the materialized lower image.
		lowerImg := image(lower, snap)
		want := applyPDTToSlice(upper, lowerImg)
		// Composition: propagate upper into lower, materialize once.
		lower.Propagate(upper)
		got := image(lower, snap)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// applyPDTToSlice materializes p over an in-memory base image.
func applyPDTToSlice(p *PDT, base []int64) []int64 {
	var out []int64
	for _, seg := range p.SegmentsRID(0, p.NumTuples()) {
		switch seg.Kind {
		case SegInsert:
			for _, r := range seg.Rows {
				out = append(out, r[0].I64)
			}
		case SegStable:
			for sid := seg.Lo; sid < seg.Hi; sid++ {
				v := base[sid]
				if mods, ok := seg.Mods[sid]; ok {
					if mv, ok := mods[0]; ok {
						v = mv.I64
					}
				}
				out = append(out, v)
			}
		}
	}
	return out
}

func TestCloneIsDeep(t *testing.T) {
	p := New(oneColSchema(), 5)
	p.InsertAt(0, row(1))
	q := p.Clone()
	q.ModifyAt(0, 0, IntVal(9))
	snap := stableSnap(t, 5)
	if image(p, snap)[0] != 1 {
		t.Fatal("clone aliased storage")
	}
	if image(q, snap)[0] != 9 {
		t.Fatal("clone modification lost")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New(oneColSchema(), 3)
	for name, fn := range map[string]func(){
		"rid":      func() { p.RIDtoSID(3) },
		"sid":      func() { p.SIDtoRIDlow(4) },
		"insert":   func() { p.InsertAt(5, row(1)) },
		"badRow":   func() { p.InsertAt(0, Row{FloatVal(1)}) },
		"badCol":   func() { p.ModifyAt(0, 3, IntVal(1)) },
		"badType":  func() { p.ModifyAt(0, 0, FloatVal(1)) },
		"negative": func() { New(oneColSchema(), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNumOpsCounting(t *testing.T) {
	p := New(oneColSchema(), 10)
	p.InsertAt(0, row(1))
	p.DeleteAt(5)
	p.ModifyAt(7, 0, IntVal(2))
	if got := p.NumOps(); got != 3 {
		t.Fatalf("NumOps = %d, want 3", got)
	}
}
