package pdt

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// TestStoreCommitRacingCheckpoint drives committing transactions against
// a concurrent checkpoint/propagate loop and concurrent view readers —
// the exact interleaving a serving process produces (handler goroutines
// commit trickle updates while a background goroutine merges them to a
// new stable version). Run under -race this is the store's thread-safety
// regression; in any mode it checks that no committed insert is lost or
// duplicated across checkpoints and that pinned views never tear.
func TestStoreCommitRacingCheckpoint(t *testing.T) {
	s, _ := storeFixture(t, 8)
	const (
		writers    = 4
		perWriter  = 50
		checkpoint = 25
	)
	var committed atomic.Int64
	var writerWG, ckptWG sync.WaitGroup
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(1000 + w*perWriter + i)
				// The auto-commit path can never lose first-committer-wins.
				if err := s.Update(func(tx *Tx) error {
					tx.Insert(0, row(v))
					return nil
				}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				committed.Add(1)
				// The explicit path may conflict; retry until it lands.
				for {
					tx := s.Begin()
					tx.Insert(0, row(-v))
					err := tx.Commit()
					if err == nil {
						committed.Add(1)
						break
					}
					if err != ErrTxConflict {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}
		}()
	}

	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				s.PropagateWriteToRead()
			} else if _, err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			if i%checkpoint == 0 {
				// A pinned view must be internally consistent however the
				// loop races it: the snapshot and deltas were taken in one
				// critical section, so their composed image length matches
				// the view's own tuple count.
				v := s.View()
				n := v.Stable.NumTuples()
				if v.Deltas != nil {
					n = int64(len(v.Deltas.Image(v.Stable).I64[0]))
				}
				if n != v.NumTuples() {
					t.Errorf("torn view: image %d tuples, view says %d", n, v.NumTuples())
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(done)
	ckptWG.Wait()

	// Every committed insert must survive a final checkpoint exactly once.
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8) + committed.Load()
	if snap.NumTuples() != want {
		t.Fatalf("final stable has %d tuples, want %d (8 initial + %d committed inserts)",
			snap.NumTuples(), want, committed.Load())
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d after checkpoint", s.Pending())
	}
}

// TestStoreUpdatePendingAndVersion pins the bookkeeping the serving
// checkpoint trigger reads: Pending counts committed ops since the last
// checkpoint, Version advances on every commit and checkpoint.
func TestStoreUpdatePendingAndVersion(t *testing.T) {
	s, _ := storeFixture(t, 4)
	v0 := s.Version()
	if err := s.Update(func(tx *Tx) error {
		tx.Insert(0, row(9))
		tx.Modify(1, 0, IntVal(8))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	if s.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", s.Version(), v0+1)
	}
	s.PropagateWriteToRead()
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending after propagate = %d, want 2 (still uncheckpointed)", got)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending after checkpoint = %d, want 0", got)
	}
}

// TestStoreViewPinsAcrossCheckpoint: a view taken before a checkpoint
// keeps resolving the old image, while fresh views see the new version
// with no deltas.
func TestStoreViewPinsAcrossCheckpoint(t *testing.T) {
	s, _ := storeFixture(t, 4)
	if err := s.Update(func(tx *Tx) error { tx.Insert(0, row(77)); return nil }); err != nil {
		t.Fatal(err)
	}
	old := s.View()
	if old.Deltas == nil || old.NumTuples() != 5 {
		t.Fatalf("pre-checkpoint view: %+v", old)
	}
	hookRan := false
	s.SetCheckpointHook(func(o, n *storage.Snapshot) {
		hookRan = true
		if o != old.Stable {
			t.Error("hook old snapshot is not the retired one")
		}
	})
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("checkpoint hook did not run")
	}
	// The pinned view still materializes the old image.
	img := old.Deltas.Image(old.Stable).I64[0]
	if len(img) != 5 || img[0] != 77 {
		t.Fatalf("pinned view image = %v", img)
	}
	fresh := s.View()
	if fresh.Deltas != nil || fresh.Stable != snap || fresh.NumTuples() != 5 {
		t.Fatalf("post-checkpoint view: %+v", fresh)
	}
	if fresh.Version <= old.Version {
		t.Fatalf("version did not advance: %d -> %d", old.Version, fresh.Version)
	}
}
