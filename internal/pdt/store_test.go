package pdt

import (
	"testing"

	"repro/internal/storage"
)

func storeFixture(t testing.TB, n int) (*Store, *storage.Table) {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", oneColSchema())
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	d.I64[0] = vals
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return NewStore(tb), tb
}

func TestTxCommitVisible(t *testing.T) {
	s, _ := storeFixture(t, 5)
	tx := s.Begin()
	tx.Insert(0, row(100))
	tx.Modify(3, 0, IntVal(99)) // position 3 of tx image = stable tuple 2
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := s.ImageCommitted().I64[0]
	want := []int64{100, 0, 1, 99, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestTxIsolation(t *testing.T) {
	s, _ := storeFixture(t, 3)
	tx := s.Begin()
	tx.Delete(0)
	// Uncommitted: committed image unchanged.
	if got := s.ImageCommitted().I64[0]; len(got) != 3 {
		t.Fatalf("committed image leaked: %v", got)
	}
	// The transaction sees its own change.
	if got := tx.Image().I64[0]; len(got) != 2 || got[0] != 1 {
		t.Fatalf("tx image = %v", got)
	}
	tx.Abort()
	if got := s.ImageCommitted().I64[0]; len(got) != 3 {
		t.Fatalf("abort changed state: %v", got)
	}
}

func TestTxFirstCommitterWins(t *testing.T) {
	s, _ := storeFixture(t, 4)
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Delete(1)
	t2.Modify(1, 0, IntVal(77))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != ErrTxConflict {
		t.Fatalf("second commit err = %v, want conflict", err)
	}
}

func TestReadOnlyTxNeverConflicts(t *testing.T) {
	s, _ := storeFixture(t, 4)
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Delete(0)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("empty commit err = %v", err)
	}
}

func TestDoubleCommitRejected(t *testing.T) {
	s, _ := storeFixture(t, 4)
	tx := s.Begin()
	tx.Delete(0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestPropagateWriteToRead(t *testing.T) {
	s, _ := storeFixture(t, 4)
	tx := s.Begin()
	tx.Insert(4, row(40))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	before := s.ImageCommitted().I64[0]
	s.PropagateWriteToRead()
	after := s.ImageCommitted().I64[0]
	if len(before) != len(after) {
		t.Fatalf("propagate changed image: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("propagate changed image at %d", i)
		}
	}
	if !s.write.Empty() {
		t.Fatal("write layer not reset")
	}
}

func TestCheckpointCreatesNewVersion(t *testing.T) {
	s, tb := storeFixture(t, 4)
	tx := s.Begin()
	tx.Modify(2, 0, IntVal(222))
	tx.Insert(0, row(-1))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oldVersion := tb.Master().Version()
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != oldVersion+1 {
		t.Fatalf("version = %d", snap.Version())
	}
	// After checkpoint the PDTs are empty and the stable data includes
	// the updates.
	if !s.read.Empty() || !s.write.Empty() {
		t.Fatal("layers not reset")
	}
	got := snap.ReadInt64(0, 0, snap.NumTuples(), nil)
	want := []int64{-1, 0, 1, 222, 3}
	if len(got) != len(want) {
		t.Fatalf("stable = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stable = %v, want %v", got, want)
		}
	}
}

func TestTxAfterCheckpointSeesNewVersion(t *testing.T) {
	s, _ := storeFixture(t, 3)
	tx := s.Begin()
	tx.Delete(0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	if tx2.NumTuples() != 2 {
		t.Fatalf("tuples = %d, want 2", tx2.NumTuples())
	}
	tx2.Insert(0, row(5))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	got := s.ImageCommitted().I64[0]
	want := []int64{5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestFlattenedMatchesImage(t *testing.T) {
	s, _ := storeFixture(t, 6)
	tx := s.Begin()
	tx.Delete(1)
	tx.Insert(2, row(50))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	tx2.Modify(0, 0, IntVal(42))
	flat := s.Flattened(tx2.trans)
	got := flat.Image(s.Stable()).I64[0]
	want := tx2.Image().I64[0]
	if len(got) != len(want) {
		t.Fatalf("flattened %v vs image %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flattened %v vs image %v", got, want)
		}
	}
}
