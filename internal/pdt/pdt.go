// Package pdt implements Positional Delta Trees (Héman et al., SIGMOD
// 2010), the in-memory differential update structures Vectorwise uses for
// trickle updates, as recapped in §2.1 of the paper.
//
// A PDT records Insert, Delete and Modify actions against a stable tuple
// stream. Stable tuples are addressed by SID (Stable ID, dense, 0-based);
// the merged output stream is addressed by RID (Row ID). The package
// provides the three positional conversions the paper's Figure 4
// illustrates — RIDtoSID, SIDtoRIDlow and SIDtoRIDhigh — plus a run-based
// merge planner (Segments) that scan operators use to produce the updated
// image, PDT stacking with Propagate (differences-on-differences, used for
// snapshot isolation), and checkpoint materialization.
//
// The reference implementation stores update nodes in a SID-sorted slice
// with linear-time positional prefix sums. The original uses a counted
// tree with logarithmic updates; at simulation scale (thousands of
// updates) the slice is simpler and the public interface is identical, so
// a tree can be swapped in without touching callers.
package pdt

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Value is a dynamically-typed column value.
type Value struct {
	T   storage.ColumnType
	I64 int64
	F64 float64
	Str string
}

// IntVal constructs an Int64 value.
func IntVal(v int64) Value { return Value{T: storage.Int64, I64: v} }

// FloatVal constructs a Float64 value.
func FloatVal(v float64) Value { return Value{T: storage.Float64, F64: v} }

// StrVal constructs a String value.
func StrVal(v string) Value { return Value{T: storage.String, Str: v} }

// Equal reports deep equality.
func (v Value) Equal(o Value) bool { return v == o }

func (v Value) String() string {
	switch v.T {
	case storage.Int64:
		return fmt.Sprintf("%d", v.I64)
	case storage.Float64:
		return fmt.Sprintf("%g", v.F64)
	default:
		return v.Str
	}
}

// Row is one tuple's values in schema order.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// node holds all differential state anchored at one SID: tuples inserted
// before stable tuple sid, whether that stable tuple is deleted, and its
// column modifications.
type node struct {
	sid     int64
	inserts []Row
	deleted bool
	mods    map[int]Value
}

func (n *node) empty() bool {
	return len(n.inserts) == 0 && !n.deleted && len(n.mods) == 0
}

// delta is the RID-SID shift contributed by this node for positions after
// it: inserts add, a delete subtracts.
func (n *node) delta() int64 {
	d := int64(len(n.inserts))
	if n.deleted {
		d--
	}
	return d
}

// PDT is a positional delta tree over a stable stream of stableCount
// tuples with the given schema.
type PDT struct {
	schema      storage.Schema
	stableCount int64
	nodes       []node // sorted by sid, unique sids
}

// New creates an empty PDT over a stable stream of n tuples.
func New(schema storage.Schema, n int64) *PDT {
	if n < 0 {
		panic("pdt: negative stable count")
	}
	return &PDT{schema: schema, stableCount: n}
}

// Schema returns the tuple schema.
func (p *PDT) Schema() storage.Schema { return p.schema }

// StableCount returns the number of tuples in the underlying stream.
func (p *PDT) StableCount() int64 { return p.stableCount }

// NumOps returns the number of non-empty update nodes (for tests and
// memory accounting).
func (p *PDT) NumOps() int {
	c := 0
	for i := range p.nodes {
		c += len(p.nodes[i].inserts)
		if p.nodes[i].deleted {
			c++
		}
		c += len(p.nodes[i].mods)
	}
	return c
}

// Empty reports whether the PDT holds no updates (merging is identity).
func (p *PDT) Empty() bool { return len(p.nodes) == 0 }

// NumTuples returns the tuple count of the merged image.
func (p *PDT) NumTuples() int64 {
	n := p.stableCount
	for i := range p.nodes {
		n += p.nodes[i].delta()
	}
	return n
}

// findNode returns the index of the node with the given sid, or the
// insertion point and false.
func (p *PDT) findNode(sid int64) (int, bool) {
	i := sort.Search(len(p.nodes), func(i int) bool { return p.nodes[i].sid >= sid })
	if i < len(p.nodes) && p.nodes[i].sid == sid {
		return i, true
	}
	return i, false
}

func (p *PDT) getNode(sid int64) *node {
	i, ok := p.findNode(sid)
	if !ok {
		p.nodes = append(p.nodes, node{})
		copy(p.nodes[i+1:], p.nodes[i:])
		p.nodes[i] = node{sid: sid, mods: make(map[int]Value)}
	}
	return &p.nodes[i]
}

func (p *PDT) dropIfEmpty(sid int64) {
	i, ok := p.findNode(sid)
	if ok && p.nodes[i].empty() {
		p.nodes = append(p.nodes[:i], p.nodes[i+1:]...)
	}
}

// locate resolves a RID in the merged image. It returns the node index
// the RID falls under (or -1 if it addresses a plain stable tuple), the
// SID of the position, and for inserted tuples the index within the
// node's insert list (insIdx >= 0). For a plain or modified stable tuple,
// insIdx is -1.
func (p *PDT) locate(rid int64) (nodeIdx int, sid int64, insIdx int) {
	if rid < 0 || rid >= p.NumTuples() {
		panic(fmt.Sprintf("pdt: RID %d out of range [0,%d)", rid, p.NumTuples()))
	}
	var delta int64 // cumulative shift from nodes fully before the answer
	for i := range p.nodes {
		n := &p.nodes[i]
		// RID of the first insert of this node.
		firstInsRID := n.sid + delta
		if rid < firstInsRID {
			// Plain stable tuple before this node.
			return -1, rid - delta, -1
		}
		if rid < firstInsRID+int64(len(n.inserts)) {
			return i, n.sid, int(rid - firstInsRID)
		}
		if !n.deleted && rid == firstInsRID+int64(len(n.inserts)) && n.sid < p.stableCount {
			// The stable tuple anchored at this node (possibly modified).
			return i, n.sid, -1
		}
		delta += n.delta()
	}
	return -1, rid - delta, -1
}

// RIDtoSID translates a merged-image position to a stable position. For
// inserted tuples it returns the SID of the first stable tuple that
// follows them (per §2.1).
func (p *PDT) RIDtoSID(rid int64) int64 {
	_, sid, _ := p.locate(rid)
	return sid
}

// SIDtoRIDlow returns the lowest RID that maps to sid: the position of the
// first tuple inserted before stable tuple sid, or of the stable tuple
// itself. For a deleted stable tuple it returns the RID where the tuple
// would be (the lowest RID translating to a higher SID), matching the
// paper's one-way arrows in Figure 4.
func (p *PDT) SIDtoRIDlow(sid int64) int64 {
	if sid < 0 || sid > p.stableCount {
		panic(fmt.Sprintf("pdt: SID %d out of range [0,%d]", sid, p.stableCount))
	}
	var delta int64
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.sid >= sid {
			break
		}
		delta += n.delta()
	}
	return sid + delta
}

// SIDtoRIDhigh returns the highest RID that maps to sid: the stable
// tuple's own position if visible, else the last insert anchored at sid,
// else the would-be position.
func (p *PDT) SIDtoRIDhigh(sid int64) int64 {
	if sid < 0 || sid > p.stableCount {
		panic(fmt.Sprintf("pdt: SID %d out of range [0,%d]", sid, p.stableCount))
	}
	var delta int64
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.sid > sid {
			break
		}
		if n.sid == sid {
			if n.sid < p.stableCount && !n.deleted {
				// The stable tuple itself is last among RIDs mapping here.
				return sid + delta + int64(len(n.inserts))
			}
			if len(n.inserts) > 0 {
				return sid + delta + int64(len(n.inserts)) - 1
			}
			// Deleted with no inserts: would-be position.
			return sid + delta
		}
		delta += n.delta()
	}
	return sid + delta
}

// InsertAt inserts row so that it occupies position rid in the merged
// image; tuples at rid and beyond shift right. rid may equal NumTuples()
// to append.
func (p *PDT) InsertAt(rid int64, row Row) {
	if err := p.checkRow(row); err != nil {
		panic(err)
	}
	total := p.NumTuples()
	if rid < 0 || rid > total {
		panic(fmt.Sprintf("pdt: insert RID %d out of range [0,%d]", rid, total))
	}
	if rid == total {
		n := p.getNode(p.stableCount)
		n.inserts = append(n.inserts, row.Clone())
		return
	}
	nodeIdx, sid, insIdx := p.locate(rid)
	n := p.getNode(sid)
	_ = nodeIdx
	if insIdx < 0 {
		// Inserting directly before the stable tuple (after any existing
		// inserts at this anchor).
		n.inserts = append(n.inserts, row.Clone())
		return
	}
	n.inserts = append(n.inserts, nil)
	copy(n.inserts[insIdx+1:], n.inserts[insIdx:])
	n.inserts[insIdx] = row.Clone()
}

// DeleteAt removes the tuple at position rid in the merged image. Deleting
// an inserted tuple cancels the insert; deleting a stable tuple records a
// delete node.
func (p *PDT) DeleteAt(rid int64) {
	_, sid, insIdx := p.locate(rid)
	n := p.getNode(sid)
	if insIdx >= 0 {
		n.inserts = append(n.inserts[:insIdx], n.inserts[insIdx+1:]...)
		p.dropIfEmpty(sid)
		return
	}
	if sid >= p.stableCount {
		panic("pdt: delete past end of stable stream")
	}
	n.deleted = true
	// A deleted tuple's pending modifications are moot.
	n.mods = make(map[int]Value)
	p.dropIfEmpty(sid)
}

// ModifyAt changes column col of the tuple at position rid.
func (p *PDT) ModifyAt(rid int64, col int, v Value) {
	if col < 0 || col >= len(p.schema) {
		panic(fmt.Sprintf("pdt: column %d out of range", col))
	}
	if v.T != p.schema[col].Type {
		panic(fmt.Sprintf("pdt: type mismatch for column %d: %v vs %v", col, v.T, p.schema[col].Type))
	}
	_, sid, insIdx := p.locate(rid)
	n := p.getNode(sid)
	if insIdx >= 0 {
		n.inserts[insIdx][col] = v
		return
	}
	n.mods[col] = v
}

func (p *PDT) checkRow(row Row) error {
	if len(row) != len(p.schema) {
		return fmt.Errorf("pdt: row has %d values, schema has %d", len(row), len(p.schema))
	}
	for i, v := range row {
		if v.T != p.schema[i].Type {
			return fmt.Errorf("pdt: column %d type %v, want %v", i, v.T, p.schema[i].Type)
		}
	}
	return nil
}

// SegKind discriminates merge segments.
type SegKind int

const (
	// SegStable is a run of visible stable tuples [Lo,Hi), possibly with
	// per-SID column modifications.
	SegStable SegKind = iota
	// SegInsert is a run of PDT-resident inserted tuples.
	SegInsert
)

// Segment is one run of the merged output stream. Segments returned by
// Segments/SegmentsRID are in image order and abut exactly.
type Segment struct {
	Kind SegKind
	Lo   int64 // stable SID range (SegStable)
	Hi   int64
	Rows []Row                   // inserted tuples (SegInsert)
	Mods map[int64]map[int]Value // per-SID overrides within [Lo,Hi)
}

// tuples returns the image-tuple count of the segment.
func (s Segment) tuples() int64 {
	if s.Kind == SegInsert {
		return int64(len(s.Rows))
	}
	return s.Hi - s.Lo
}

// SegmentsRID plans the merge for image positions [ridLo, ridHi): the
// sequence of stable runs (with deletes carved out and mods attached) and
// insert runs a scan must produce. This is the per-chunk merge
// re-initialization the CScan operator performs after every out-of-order
// chunk delivery (§2.1).
func (p *PDT) SegmentsRID(ridLo, ridHi int64) []Segment {
	total := p.NumTuples()
	if ridLo < 0 || ridHi > total || ridLo > ridHi {
		panic(fmt.Sprintf("pdt: RID range [%d,%d) out of [0,%d]", ridLo, ridHi, total))
	}
	if ridLo == ridHi {
		return nil
	}
	var out []Segment
	remaining := ridHi - ridLo

	emitStable := func(lo, hi int64, mods map[int64]map[int]Value) {
		if lo >= hi {
			return
		}
		if n := len(out); n > 0 && out[n-1].Kind == SegStable && out[n-1].Hi == lo {
			out[n-1].Hi = hi
			for k, v := range mods {
				if out[n-1].Mods == nil {
					out[n-1].Mods = make(map[int64]map[int]Value)
				}
				out[n-1].Mods[k] = v
			}
			return
		}
		out = append(out, Segment{Kind: SegStable, Lo: lo, Hi: hi, Mods: mods})
	}
	emitInserts := func(rows []Row) {
		if len(rows) == 0 {
			return
		}
		if n := len(out); n > 0 && out[n-1].Kind == SegInsert {
			out[n-1].Rows = append(out[n-1].Rows, rows...)
			return
		}
		out = append(out, Segment{Kind: SegInsert, Rows: rows})
	}
	take := func(n int64) int64 { // clamp a run to what we still need
		if n > remaining {
			n = remaining
		}
		remaining -= n
		return n
	}

	// Walk nodes, tracking the image position (rid cursor) and the stable
	// position (sid cursor); skip everything before ridLo, emit until
	// ridHi.
	rid := int64(0)
	sid := int64(0)
	skip := ridLo
	ni := 0
	for remaining > 0 {
		var nextNodeSID int64 = p.stableCount
		if ni < len(p.nodes) {
			nextNodeSID = p.nodes[ni].sid
		}
		// Plain stable run [sid, nextNodeSID).
		runLen := nextNodeSID - sid
		if runLen > 0 {
			if skip >= runLen {
				skip -= runLen
				rid += runLen
				sid += runLen
			} else {
				lo := sid + skip
				rid += skip
				sid += skip
				skip = 0
				n := take(nextNodeSID - lo)
				emitStable(lo, lo+n, nil)
				rid += n
				sid += n
				if remaining == 0 {
					break
				}
			}
			continue
		}
		if ni >= len(p.nodes) {
			break
		}
		n := &p.nodes[ni]
		// Inserts anchored here.
		if len(n.inserts) > 0 {
			cnt := int64(len(n.inserts))
			if skip >= cnt {
				skip -= cnt
				rid += cnt
			} else {
				start := skip
				skip = 0
				m := take(cnt - start)
				emitInserts(n.inserts[start : start+m])
				rid += m
				if remaining == 0 {
					break
				}
			}
		}
		// The anchored stable tuple itself.
		if n.sid < p.stableCount {
			if n.deleted {
				sid++ // invisible: consumes stable but not image position
			} else {
				if skip > 0 {
					skip--
					rid++
					sid++
				} else {
					var mods map[int64]map[int]Value
					if len(n.mods) > 0 {
						mods = map[int64]map[int]Value{n.sid: n.mods}
					}
					take(1)
					emitStable(n.sid, n.sid+1, mods)
					rid++
					sid++
					if remaining == 0 {
						break
					}
				}
			}
		}
		ni++
	}
	return out
}

// Image materializes the full merged table as ColumnData, reading stable
// values directly from the snapshot (bypassing the buffer pool); used by
// checkpointing and by tests as the reference semantics.
func (p *PDT) Image(snap *storage.Snapshot) *storage.ColumnData {
	out := storage.NewColumnData()
	n := p.NumTuples()
	for c, def := range p.schema {
		switch def.Type {
		case storage.Int64:
			out.I64[c] = make([]int64, 0, n)
		case storage.Float64:
			out.F64[c] = make([]float64, 0, n)
		case storage.String:
			out.Str[c] = make([]string, 0, n)
		}
	}
	var i64buf []int64
	var f64buf []float64
	var strbuf []string
	for _, seg := range p.SegmentsRID(0, n) {
		switch seg.Kind {
		case SegInsert:
			for _, row := range seg.Rows {
				for c, def := range p.schema {
					switch def.Type {
					case storage.Int64:
						out.I64[c] = append(out.I64[c], row[c].I64)
					case storage.Float64:
						out.F64[c] = append(out.F64[c], row[c].F64)
					case storage.String:
						out.Str[c] = append(out.Str[c], row[c].Str)
					}
				}
			}
		case SegStable:
			for c, def := range p.schema {
				switch def.Type {
				case storage.Int64:
					i64buf = snap.ReadInt64(c, seg.Lo, seg.Hi, i64buf)
					base := len(out.I64[c])
					out.I64[c] = append(out.I64[c], i64buf...)
					for sid, mods := range seg.Mods {
						if v, ok := mods[c]; ok {
							out.I64[c][base+int(sid-seg.Lo)] = v.I64
						}
					}
				case storage.Float64:
					f64buf = snap.ReadFloat64(c, seg.Lo, seg.Hi, f64buf)
					base := len(out.F64[c])
					out.F64[c] = append(out.F64[c], f64buf...)
					for sid, mods := range seg.Mods {
						if v, ok := mods[c]; ok {
							out.F64[c][base+int(sid-seg.Lo)] = v.F64
						}
					}
				case storage.String:
					strbuf = snap.ReadString(c, seg.Lo, seg.Hi, strbuf)
					base := len(out.Str[c])
					out.Str[c] = append(out.Str[c], strbuf...)
					for sid, mods := range seg.Mods {
						if v, ok := mods[c]; ok {
							out.Str[c][base+int(sid-seg.Lo)] = v.Str
						}
					}
				}
			}
		}
	}
	return out
}

// Clone returns a deep copy (used to give each transaction a private
// trans-PDT snapshot).
func (p *PDT) Clone() *PDT {
	out := &PDT{schema: p.schema, stableCount: p.stableCount}
	out.nodes = make([]node, len(p.nodes))
	for i := range p.nodes {
		src := &p.nodes[i]
		dst := &out.nodes[i]
		dst.sid = src.sid
		dst.deleted = src.deleted
		dst.inserts = make([]Row, len(src.inserts))
		for j, r := range src.inserts {
			dst.inserts[j] = r.Clone()
		}
		dst.mods = make(map[int]Value, len(src.mods))
		for k, v := range src.mods {
			dst.mods[k] = v
		}
	}
	return out
}

// Propagate merges upper (whose positions refer to p's merged image) down
// into p, after which p alone produces the composed image. This is the
// layer-collapse used when a transaction commits its trans-PDT into the
// shared write-PDT (§2.1: differential structures can be stacked).
func (p *PDT) Propagate(upper *PDT) {
	if upper.stableCount != p.NumTuples() {
		panic(fmt.Sprintf("pdt: propagate mismatch: upper stable %d, lower image %d",
			upper.stableCount, p.NumTuples()))
	}
	var shift int64 // image-position shift caused by ops already propagated
	for i := range upper.nodes {
		n := &upper.nodes[i]
		for j := range n.inserts {
			p.InsertAt(n.sid+shift+int64(j), n.inserts[j])
		}
		shift += int64(len(n.inserts))
		if n.sid < upper.stableCount {
			pos := n.sid + shift
			if n.deleted {
				p.DeleteAt(pos)
				shift--
			} else {
				for c, v := range n.mods {
					p.ModifyAt(pos, c, v)
				}
			}
		}
	}
}
