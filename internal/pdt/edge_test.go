package pdt

import (
	"testing"

	"repro/internal/storage"
)

// Additional edge-case coverage for the delta-tree semantics: operation
// interactions the main suite's random walks hit only probabilistically.

func TestModifyThenDeleteDropsModification(t *testing.T) {
	snap := stableSnap(t, 4)
	p := New(oneColSchema(), 4)
	p.ModifyAt(2, 0, IntVal(77))
	p.DeleteAt(2) // the modified stable tuple disappears entirely
	got := image(p, snap)
	want := []int64{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("image = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestDeleteAllTuples(t *testing.T) {
	snap := stableSnap(t, 3)
	p := New(oneColSchema(), 3)
	for p.NumTuples() > 0 {
		p.DeleteAt(0)
	}
	if got := image(p, snap); len(got) != 0 {
		t.Fatalf("image = %v, want empty", got)
	}
	// Inserting into the empty image works.
	p.InsertAt(0, row(42))
	if got := image(p, snap); len(got) != 1 || got[0] != 42 {
		t.Fatalf("image = %v", got)
	}
}

func TestInsertRunSpanningDelete(t *testing.T) {
	snap := stableSnap(t, 5)
	p := New(oneColSchema(), 5)
	p.DeleteAt(2)           // [0 1 3 4]
	p.InsertAt(2, row(100)) // before stable 3
	p.InsertAt(2, row(101)) // before the first insert
	got := image(p, snap)
	want := []int64{0, 1, 101, 100, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestSegmentsEmptyRange(t *testing.T) {
	p := New(oneColSchema(), 10)
	p.DeleteAt(5)
	if segs := p.SegmentsRID(3, 3); segs != nil {
		t.Fatalf("empty range segments = %v", segs)
	}
}

func TestSegmentsExactlyOneInsert(t *testing.T) {
	p := New(oneColSchema(), 4)
	p.InsertAt(2, row(9))
	segs := p.SegmentsRID(2, 3)
	if len(segs) != 1 || segs[0].Kind != SegInsert || len(segs[0].Rows) != 1 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Rows[0][0].I64 != 9 {
		t.Fatalf("wrong row: %v", segs[0].Rows[0])
	}
}

func TestPropagateOntoEmptyLower(t *testing.T) {
	snap := stableSnap(t, 4)
	lower := New(oneColSchema(), 4)
	upper := New(oneColSchema(), 4)
	upper.InsertAt(0, row(50))
	upper.DeleteAt(4) // stable tuple 3 (shifted by the insert)
	lower.Propagate(upper)
	got := image(lower, snap)
	want := []int64{50, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestPropagateAppendsOnly(t *testing.T) {
	snap := stableSnap(t, 2)
	lower := New(oneColSchema(), 2)
	lower.InsertAt(2, row(10))
	upper := New(oneColSchema(), lower.NumTuples())
	upper.InsertAt(3, row(11))
	lower.Propagate(upper)
	got := image(lower, snap)
	want := []int64{0, 1, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image = %v, want %v", got, want)
		}
	}
}

func TestValueStringForms(t *testing.T) {
	if IntVal(3).String() != "3" || FloatVal(2.5).String() != "2.5" || StrVal("x").String() != "x" {
		t.Fatal("Value.String forms wrong")
	}
	if !IntVal(3).Equal(IntVal(3)) || IntVal(3).Equal(IntVal(4)) {
		t.Fatal("Value.Equal wrong")
	}
}

func TestMultiColumnRows(t *testing.T) {
	schema := storage.Schema{
		{Name: "a", Type: storage.Int64, Width: 8},
		{Name: "b", Type: storage.String, Width: 4},
	}
	cat := storage.NewCatalog()
	tb, _ := cat.CreateTable("t", schema)
	d := storage.NewColumnData()
	d.I64[0] = []int64{1, 2}
	d.Str[1] = []string{"x", "y"}
	snap, _ := tb.Master().Append(d)

	p := New(schema, 2)
	p.InsertAt(1, Row{IntVal(9), StrVal("z")})
	p.ModifyAt(0, 1, StrVal("w"))
	img := p.Image(snap)
	if img.I64[0][1] != 9 || img.Str[1][1] != "z" {
		t.Fatalf("insert columns wrong: %v %v", img.I64[0], img.Str[1])
	}
	if img.Str[1][0] != "w" {
		t.Fatalf("modify wrong: %v", img.Str[1])
	}
}
