package pdt

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Store binds a table's stable snapshot to its shared PDT layers,
// providing snapshot-isolated transactions over trickle updates. It
// mirrors §2.1's three-layer design: a large shared read-PDT, a smaller
// shared write-PDT stacked on it, and one private trans-PDT per
// transaction on top. Only the topmost layer is copied per transaction,
// so the memory cost of snapshot isolation stays low.
//
// All methods are safe for concurrent use: shared-layer state is behind
// an ordinary mutex (uncontended under the cooperatively-scheduled sim
// runtime, real protection under the threaded runtime), so Commit can
// race Checkpoint from server handler goroutines. A Tx itself remains
// single-goroutine private, as in Vectorwise.
type Store struct {
	mu      sync.Mutex
	table   *storage.Table
	stable  *storage.Snapshot
	read    *PDT // bottom shared layer (vs stable)
	write   *PDT // middle shared layer (vs read's image)
	epoch   int64
	pending int64 // committed update ops not yet checkpointed
	onCkpt  func(old, new *storage.Snapshot)
}

// NewStore creates a store over the table's current master snapshot with
// empty PDT layers.
func NewStore(t *storage.Table) *Store {
	return NewStoreAt(t.Master())
}

// NewStoreAt creates a store anchored at an explicit committed snapshot
// of the table. A serving engine whose catalog caches the loaded
// snapshot anchors here, so its zone maps, pricing and store all agree
// on the same base even if an earlier run already checkpointed the
// table past it.
func NewStoreAt(stable *storage.Snapshot) *Store {
	t := stable.Table()
	read := New(t.Schema, stable.NumTuples())
	return &Store{
		table:  t,
		stable: stable,
		read:   read,
		write:  New(t.Schema, read.NumTuples()),
	}
}

// Stable returns the current stable snapshot.
func (s *Store) Stable() *storage.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stable
}

// NumTuples returns the tuple count of the committed image.
func (s *Store) NumTuples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.write.NumTuples()
}

// Version returns the commit epoch: it advances on every committed
// transaction, write-to-read propagation and checkpoint, so two equal
// versions bracket an unchanged committed image.
func (s *Store) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Pending returns the number of committed update operations not yet
// migrated to a stable version — the quantity checkpoint trigger
// policies watch.
func (s *Store) Pending() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// View is one query's pinned view of the table: the stable snapshot and
// a private flattened delta the query scans through, plus the commit
// epoch they were taken at. The snapshot is immutable and the delta is
// a clone, so a checkpoint or commit racing the query can never tear
// it; Deltas is nil when the view carries no uncheckpointed changes
// (scans then take the exact read-only fast path).
type View struct {
	Stable  *storage.Snapshot
	Deltas  *PDT
	Version int64
}

// NumTuples returns the tuple count of the viewed image.
func (v View) NumTuples() int64 {
	if v.Deltas != nil {
		return v.Deltas.NumTuples()
	}
	return v.Stable.NumTuples()
}

// View atomically pins the committed image: (snapshot, PDT-version)
// taken under one critical section, so a concurrent checkpoint can
// never pair the new snapshot with the old deltas or vice versa.
func (s *Store) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := View{Stable: s.stable, Version: s.epoch}
	if !s.read.Empty() || !s.write.Empty() {
		v.Deltas = s.flattenedLocked(nil)
	}
	return v
}

// Tx is a snapshot-isolated transaction: it sees the committed image as of
// Begin plus its own private changes.
type Tx struct {
	store *Store
	trans *PDT // private top layer (vs the write layer's image at Begin)
	epoch int64
	ops   int64
	done  bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked()
}

func (s *Store) beginLocked() *Tx {
	return &Tx{
		store: s,
		trans: New(s.table.Schema, s.write.NumTuples()),
		epoch: s.epoch,
	}
}

// NumTuples returns the tuple count visible to the transaction.
func (tx *Tx) NumTuples() int64 { return tx.trans.NumTuples() }

// Insert inserts a row at RID rid of the transaction's image.
func (tx *Tx) Insert(rid int64, row Row) { tx.trans.InsertAt(rid, row); tx.ops++ }

// Delete removes the tuple at RID rid of the transaction's image.
func (tx *Tx) Delete(rid int64) { tx.trans.DeleteAt(rid); tx.ops++ }

// Modify updates one column of the tuple at RID rid.
func (tx *Tx) Modify(rid int64, col int, v Value) { tx.trans.ModifyAt(rid, col, v); tx.ops++ }

// ErrTxConflict reports a write-write conflict under first-committer-wins.
var ErrTxConflict = errors.New("pdt: transaction conflict: table was updated concurrently")

// Commit merges the trans-PDT into the shared write layer. Conflict
// detection is first-committer-wins at table granularity: if any other
// transaction committed to this store since Begin, the positions in the
// trans-PDT may be stale and the transaction aborts.
func (tx *Tx) Commit() error {
	tx.store.mu.Lock()
	defer tx.store.mu.Unlock()
	return tx.commitLocked()
}

func (tx *Tx) commitLocked() error {
	if tx.done {
		return errors.New("pdt: transaction already finished")
	}
	tx.done = true
	if tx.trans.Empty() {
		return nil
	}
	if tx.epoch != tx.store.epoch {
		return ErrTxConflict
	}
	tx.store.write.Propagate(tx.trans)
	tx.store.epoch++
	tx.store.pending += tx.ops
	return nil
}

// Abort discards the transaction.
func (tx *Tx) Abort() { tx.done = true }

// Update runs f inside a single-statement transaction and commits it —
// begin, apply and commit form one critical section, so the commit can
// never lose first-committer-wins to a concurrent transaction. This is
// the serving write path's auto-commit; longer-lived transactions use
// Begin/Commit and handle ErrTxConflict themselves.
func (s *Store) Update(f func(*Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := s.beginLocked()
	if err := f(tx); err != nil {
		tx.done = true
		return err
	}
	return tx.commitLocked()
}

// Image materializes the transaction's visible table image (committed
// state at Begin plus private changes).
func (tx *Tx) Image() *storage.ColumnData {
	tx.store.mu.Lock()
	defer tx.store.mu.Unlock()
	return tx.store.imageWithLocked(tx.trans)
}

// ImageCommitted materializes the currently committed image.
func (s *Store) ImageCommitted() *storage.ColumnData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.imageWithLocked(nil)
}

// imageWithLocked flattens stable + read + write (+ optional trans) into
// column data. Layers are composed by cloning and propagating, which
// keeps the shared layers untouched.
func (s *Store) imageWithLocked(trans *PDT) *storage.ColumnData {
	return s.flattenedLocked(trans).Image(s.stable)
}

// Flattened returns a single PDT equivalent to the composed shared layers
// plus the optional trans layer; scan operators use it as the merge plan
// source for one query's snapshot.
func (s *Store) Flattened(trans *PDT) *PDT {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flattenedLocked(trans)
}

func (s *Store) flattenedLocked(trans *PDT) *PDT {
	flat := s.read.Clone()
	flat.Propagate(s.write)
	if trans != nil && !trans.Empty() {
		flat.Propagate(trans)
	}
	return flat
}

// PropagateWriteToRead folds the shared write layer into the read layer
// (the background maintenance Vectorwise performs as the write-PDT
// grows).
func (s *Store) PropagateWriteToRead() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.write.Empty() {
		return
	}
	s.read.Propagate(s.write)
	s.write = New(s.table.Schema, s.read.NumTuples())
	s.epoch++
}

// SetCheckpointHook registers fn to run inside every successful
// Checkpoint with the retired and replacement snapshots, before any new
// view of the replacement can be minted. The serving layers hang chunk
// invalidation here: buffer frames, zone maps and relevance state keyed
// by the retired snapshot are dropped or rebuilt. fn runs with the
// store's mutex held and must not call back into the store.
func (s *Store) SetCheckpointHook(fn func(old, new *storage.Snapshot)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCkpt = fn
}

// Checkpoint migrates all PDT contents to disk, creating a new stable
// table version with fresh pages (§2.1, Figure 7), and resets the layers.
// Readers holding a view of the old snapshot keep working — their delta
// clones and the retired snapshot are immutable; new views see the new
// version with empty deltas.
func (s *Store) Checkpoint() (*storage.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.stable
	data := s.imageWithLocked(nil)
	snap, err := s.table.Checkpoint(data)
	if err != nil {
		return nil, fmt.Errorf("pdt: checkpoint: %w", err)
	}
	s.stable = snap
	s.read = New(s.table.Schema, snap.NumTuples())
	s.write = New(s.table.Schema, s.read.NumTuples())
	s.epoch++
	s.pending = 0
	if s.onCkpt != nil {
		s.onCkpt(old, snap)
	}
	return snap, nil
}
