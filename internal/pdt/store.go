package pdt

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Store binds a table's stable snapshot to its shared PDT layers,
// providing snapshot-isolated transactions over trickle updates. It
// mirrors §2.1's three-layer design: a large shared read-PDT, a smaller
// shared write-PDT stacked on it, and one private trans-PDT per
// transaction on top. Only the topmost layer is copied per transaction,
// so the memory cost of snapshot isolation stays low.
type Store struct {
	table  *storage.Table
	stable *storage.Snapshot
	read   *PDT // bottom shared layer (vs stable)
	write  *PDT // middle shared layer (vs read's image)
	epoch  int64
}

// NewStore creates a store over the table's current master snapshot with
// empty PDT layers.
func NewStore(t *storage.Table) *Store {
	stable := t.Master()
	read := New(t.Schema, stable.NumTuples())
	return &Store{
		table:  t,
		stable: stable,
		read:   read,
		write:  New(t.Schema, read.NumTuples()),
	}
}

// Stable returns the underlying stable snapshot.
func (s *Store) Stable() *storage.Snapshot { return s.stable }

// NumTuples returns the tuple count of the committed image.
func (s *Store) NumTuples() int64 { return s.write.NumTuples() }

// Tx is a snapshot-isolated transaction: it sees the committed image as of
// Begin plus its own private changes.
type Tx struct {
	store *Store
	trans *PDT // private top layer (vs the write layer's image at Begin)
	epoch int64
	done  bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	return &Tx{
		store: s,
		trans: New(s.table.Schema, s.write.NumTuples()),
		epoch: s.epoch,
	}
}

// NumTuples returns the tuple count visible to the transaction.
func (tx *Tx) NumTuples() int64 { return tx.trans.NumTuples() }

// Insert inserts a row at RID rid of the transaction's image.
func (tx *Tx) Insert(rid int64, row Row) { tx.trans.InsertAt(rid, row) }

// Delete removes the tuple at RID rid of the transaction's image.
func (tx *Tx) Delete(rid int64) { tx.trans.DeleteAt(rid) }

// Modify updates one column of the tuple at RID rid.
func (tx *Tx) Modify(rid int64, col int, v Value) { tx.trans.ModifyAt(rid, col, v) }

// ErrTxConflict reports a write-write conflict under first-committer-wins.
var ErrTxConflict = errors.New("pdt: transaction conflict: table was updated concurrently")

// Commit merges the trans-PDT into the shared write layer. Conflict
// detection is first-committer-wins at table granularity: if any other
// transaction committed to this store since Begin, the positions in the
// trans-PDT may be stale and the transaction aborts.
func (tx *Tx) Commit() error {
	if tx.done {
		return errors.New("pdt: transaction already finished")
	}
	tx.done = true
	if tx.trans.Empty() {
		return nil
	}
	if tx.epoch != tx.store.epoch {
		return ErrTxConflict
	}
	tx.store.write.Propagate(tx.trans)
	tx.store.epoch++
	return nil
}

// Abort discards the transaction.
func (tx *Tx) Abort() { tx.done = true }

// Image materializes the transaction's visible table image (committed
// state at Begin plus private changes).
func (tx *Tx) Image() *storage.ColumnData {
	return tx.store.imageWith(tx.trans)
}

// ImageCommitted materializes the currently committed image.
func (s *Store) ImageCommitted() *storage.ColumnData {
	return s.imageWith(nil)
}

// imageWith flattens stable + read + write (+ optional trans) into column
// data. Layers are composed by cloning and propagating, which keeps the
// shared layers untouched.
func (s *Store) imageWith(trans *PDT) *storage.ColumnData {
	flat := s.read.Clone()
	flat.Propagate(s.write)
	if trans != nil && !trans.Empty() {
		flat.Propagate(trans)
	}
	return flat.Image(s.stable)
}

// Flattened returns a single PDT equivalent to the composed shared layers
// plus the optional trans layer; scan operators use it as the merge plan
// source for one query's snapshot.
func (s *Store) Flattened(trans *PDT) *PDT {
	flat := s.read.Clone()
	flat.Propagate(s.write)
	if trans != nil && !trans.Empty() {
		flat.Propagate(trans)
	}
	return flat
}

// PropagateWriteToRead folds the shared write layer into the read layer
// (the background maintenance Vectorwise performs as the write-PDT
// grows).
func (s *Store) PropagateWriteToRead() {
	if s.write.Empty() {
		return
	}
	s.read.Propagate(s.write)
	s.write = New(s.table.Schema, s.read.NumTuples())
	s.epoch++
}

// Checkpoint migrates all PDT contents to disk, creating a new stable
// table version with fresh pages (§2.1, Figure 7), and resets the layers.
// Readers holding the old snapshot keep working; new transactions see the
// new version.
func (s *Store) Checkpoint() (*storage.Snapshot, error) {
	data := s.ImageCommitted()
	snap, err := s.table.Checkpoint(data)
	if err != nil {
		return nil, fmt.Errorf("pdt: checkpoint: %w", err)
	}
	s.stable = snap
	s.read = New(s.table.Schema, snap.NumTuples())
	s.write = New(s.table.Schema, s.read.NumTuples())
	s.epoch++
	return snap, nil
}
