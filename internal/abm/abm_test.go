package abm

import (
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// fixture builds a two-column table with nTuples rows.
func fixture(t testing.TB, nTuples int) (*storage.Catalog, *storage.Snapshot) {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{
		{Name: "wide", Type: storage.Int64, Width: 8},
		{Name: "narrow", Type: storage.Int64, Width: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	a := make([]int64, nTuples)
	b := make([]int64, nTuples)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i % 100)
	}
	d.I64[0] = a
	d.I64[1] = b
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return cat, s
}

func newABM(eng *sim.Engine, capBytes int64) *ABM {
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	return New(rt.Sim(eng), disk, Config{ChunkTuples: 4096, Capacity: capBytes})
}

func TestSingleCScanDeliversAllChunks(t *testing.T) {
	_, snap := fixture(t, 20000) // 5 chunks of 4096
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	var got []int
	eng.Go("scan", func() {
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			got = append(got, d.Chunk)
			d.Release()
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d chunks, want 5: %v", len(got), got)
	}
	seen := make(map[int]bool)
	for _, c := range got {
		if seen[c] {
			t.Fatalf("chunk %d delivered twice", c)
		}
		seen[c] = true
	}
	if a.Stats().BytesLoaded != snap.TotalBytes(nil) {
		t.Fatalf("loaded %d bytes, want %d", a.Stats().BytesLoaded, snap.TotalBytes(nil))
	}
}

func TestInOrderDelivery(t *testing.T) {
	_, snap := fixture(t, 20000)
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	var got []int
	eng.Go("scan", func() {
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, snap.NumTuples()}}, true)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			got = append(got, d.Chunk)
			d.Release()
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Run()
	for i, c := range got {
		if c != i {
			t.Fatalf("in-order delivery violated: %v", got)
		}
	}
}

func TestRangeScanOnlyTouchesItsChunks(t *testing.T) {
	_, snap := fixture(t, 40960) // 10 chunks
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	var got []int
	eng.Go("scan", func() {
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{8192, 16384}}, false) // chunks 2,3
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			got = append(got, d.Chunk)
			d.Release()
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("chunks = %v, want exactly {2,3}", got)
	}
	for _, c := range got {
		if c != 2 && c != 3 {
			t.Fatalf("chunk %d out of range", c)
		}
	}
}

// TestSharingLoadsOnce: two concurrent full scans over the same snapshot
// with ample buffer load each page exactly once.
func TestSharingLoadsOnce(t *testing.T) {
	_, snap := fixture(t, 40960)
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	wg := eng.NewWaitGroup()
	scan := func() {
		defer wg.Done()
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(time.Millisecond) // simulate processing
			d.Release()
		}
		cs.Unregister()
	}
	wg.Add(2)
	eng.Go("s1", scan)
	eng.Go("s2", scan)
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if got, want := a.Stats().BytesLoaded, snap.TotalBytes(nil); got != want {
		t.Fatalf("loaded %d bytes, want %d (each page once)", got, want)
	}
}

// TestOutOfOrderAttach: a second scan arriving mid-way receives cached
// chunks first (out-of-order), so total I/O stays at one table read even
// with a pool that only holds half the table.
func TestOutOfOrderSecondScanReusesCache(t *testing.T) {
	_, snap := fixture(t, 81920) // 20 chunks
	eng := sim.NewEngine()
	total := snap.TotalBytes(nil)
	a := newABM(eng, total*6/10)
	wg := eng.NewWaitGroup()
	order2 := []int{}
	scan := func(collect *[]int, delay sim.Duration) {
		defer wg.Done()
		eng.Sleep(delay)
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			if collect != nil {
				*collect = append(*collect, d.Chunk)
			}
			eng.Sleep(2 * time.Millisecond)
			d.Release()
		}
		cs.Unregister()
	}
	wg.Add(2)
	eng.Go("s1", func() { scan(nil, 0) })
	eng.Go("s2", func() { scan(&order2, 8*time.Millisecond) })
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if len(order2) != 20 {
		t.Fatalf("scan2 got %d chunks", len(order2))
	}
	// The second scan must not have consumed strictly in order: it
	// attaches to cached chunks out of order.
	inOrder := true
	for i, c := range order2 {
		if c != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Log("warning: second scan happened to be in order (acceptable but unexpected)")
	}
	// I/O must be far below two full table reads.
	if got := a.Stats().BytesLoaded; got > total*15/10 {
		t.Fatalf("loaded %d bytes, want <= 1.5x table (%d)", got, total*15/10)
	}
}

// TestSharedLocalChunks reproduces §2.1's append scenario: two snapshots
// with a common prefix mark prefix chunks shared; tail chunks are local.
func TestSharedLocalChunks(t *testing.T) {
	cat, snap := fixture(t, 16384) // 4 chunks exactly
	_ = cat
	// Two transactions append different data on top of the master.
	d1 := storage.NewColumnData()
	d1.I64[0] = []int64{1, 2, 3}
	d1.I64[1] = []int64{1, 2, 3}
	snapA, err := snap.Append(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := storage.NewColumnData()
	d2.I64[0] = []int64{9}
	d2.I64[1] = []int64{9}
	snapB, err := snap.Append(d2)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	wg := eng.NewWaitGroup()
	wg.Add(2)
	run := func(s *storage.Snapshot) {
		defer wg.Done()
		cs := a.RegisterCScan(s, []int{0}, []SIDRange{{0, s.NumTuples()}}, false)
		if got := a.SharedChunkCount(s); cs.remaining > 0 && got == 0 {
			// Before the second scan arrives there is nothing shared;
			// after both registered the prefix must be marked. Checked
			// again below after both registrations.
			_ = got
		}
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(time.Millisecond)
			d.Release()
		}
		// Both scans active here in the tail of execution: the first 4
		// chunks (common prefix, 16384 tuples) are shared; the appended
		// tail chunk is local.
		cs.Unregister()
	}
	eng.Go("sA", func() { run(snapA) })
	eng.Go("sB", func() { run(snapB) })
	var sharedSeen int
	eng.Go("check", func() {
		eng.Sleep(500 * time.Microsecond) // after both registrations
		sharedSeen = a.SharedChunkCount(snapA)
	})
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if sharedSeen != 4 {
		t.Fatalf("shared chunks = %d, want 4 (the common prefix)", sharedSeen)
	}
}

// TestVersionChangeDropsStaleMetadata models the checkpoint case (iv): a
// scan on a new table version registers fresh metadata, and the old
// version's metadata and pages are destroyed once unused.
func TestVersionChangeDropsStaleMetadata(t *testing.T) {
	cat, snap := fixture(t, 16384)
	_ = cat
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	eng.Go("flow", func() {
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, snap.NumTuples()}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			d.Release()
		}
		cs.Unregister()
		usedBefore := a.Used()
		if usedBefore == 0 {
			t.Error("nothing cached after scan")
		}
		// Checkpoint the table: new version, new pages.
		data := storage.NewColumnData()
		data.I64[0] = []int64{1, 2}
		data.I64[1] = []int64{1, 2}
		snap2, err := snap.Table().Checkpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		cs2 := a.RegisterCScan(snap2, []int{0}, []SIDRange{{0, 2}}, false)
		if len(a.tables) != 1 {
			t.Errorf("stale table metadata kept: %d entries", len(a.tables))
		}
		for {
			d, ok := cs2.GetChunk()
			if !ok {
				break
			}
			d.Release()
		}
		cs2.Unregister()
		a.Stop()
	})
	eng.Run()
}

// TestEvictionRespectsKeepRelevance: with a tiny buffer, chunks that other
// scans still want are kept in preference to consumed ones.
func TestEvictionUnderPressure(t *testing.T) {
	_, snap := fixture(t, 81920)
	eng := sim.NewEngine()
	total := snap.TotalBytes([]int{0})
	a := newABM(eng, total/4)
	eng.Go("scan", func() {
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, snap.NumTuples()}}, false)
		n := 0
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			n++
			d.Release()
		}
		if n != 20 {
			t.Errorf("delivered %d chunks, want 20", n)
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Run()
	if a.Used() > total/4 {
		t.Fatalf("used %d exceeds capacity %d", a.Used(), total/4)
	}
	if a.Stats().BytesEvicted == 0 {
		t.Fatal("no evictions under pressure")
	}
}

func TestStarvedQueryPreferred(t *testing.T) {
	// A short query (1 chunk) and a long query (20 chunks) compete; the
	// short one must finish long before the long one finishes, because
	// QueryRelevance prioritizes starved/short queries.
	_, snap := fixture(t, 81920)
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 50e6, SeekLatency: 100 * time.Microsecond})
	a := New(rt.Sim(eng), disk, Config{ChunkTuples: 4096, Capacity: 1 << 30})
	var shortDone, longDone sim.Time
	wg := eng.NewWaitGroup()
	wg.Add(2)
	eng.Go("long", func() {
		defer wg.Done()
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(time.Millisecond)
			d.Release()
		}
		cs.Unregister()
		longDone = eng.Now()
	})
	eng.Go("short", func() {
		defer wg.Done()
		eng.Sleep(5 * time.Millisecond)
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{70000, 74096}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(time.Millisecond)
			d.Release()
		}
		cs.Unregister()
		shortDone = eng.Now()
	})
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if shortDone >= longDone {
		t.Fatalf("short query finished at %v, after long query (%v)", shortDone, longDone)
	}
}

func TestBadRangePanics(t *testing.T) {
	_, snap := fixture(t, 8192)
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	panicked := false
	eng.Go("scan", func() {
		defer a.Stop()
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.RegisterCScan(snap, []int{0}, []SIDRange{{0, snap.NumTuples() + 1}}, false)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}
