package abm

import (
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestLoadRelevancePrefersSharedInterest: with two scans interested in an
// overlapping region, ABM loads the doubly-wanted chunks before the
// singly-wanted ones.
func TestLoadRelevancePrefersSharedInterest(t *testing.T) {
	_, snap := fixture(t, 40960) // 10 chunks of 4096
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 100e6, SeekLatency: 50 * time.Microsecond})
	a := New(rt.Sim(eng), disk, Config{ChunkTuples: 4096, Capacity: 1 << 30})

	// Scan A wants chunks 0-9; scan B wants chunks 5-9. Register B first
	// so the overlap exists before A's first loads are chosen. The
	// assertion is about LOAD order (LoadRelevance): delivery order is
	// shaped by UseRelevance and legitimately differs.
	var loadOrder []int
	a.OnLoad = func(pg *storage.Page) {
		c := int(pg.FirstSID / 4096)
		if len(loadOrder) == 0 || loadOrder[len(loadOrder)-1] != c {
			loadOrder = append(loadOrder, c)
		}
	}
	wg := eng.NewWaitGroup()
	wg.Add(2)
	eng.Go("b", func() {
		defer wg.Done()
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{5 * 4096, 10 * 4096}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(5 * time.Millisecond)
			d.Release()
		}
		cs.Unregister()
	})
	eng.Go("a", func() {
		defer wg.Done()
		eng.Yield() // let B register first
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, 10 * 4096}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(5 * time.Millisecond)
			d.Release()
		}
		cs.Unregister()
	})
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if len(loadOrder) < 10 {
		t.Fatalf("loads = %v", loadOrder)
	}
	// The doubly-wanted chunks (5-9) must dominate the first loads.
	shared := 0
	for _, c := range loadOrder[:5] {
		if c >= 5 {
			shared++
		}
	}
	if shared < 3 {
		t.Fatalf("first loads %v contain only %d shared chunks", loadOrder[:5], shared)
	}
}

// TestUseRelevanceDrainsUncontestedChunksFirst: a scan holding several
// cached chunks consumes the ones fewest other scans want first, making
// them evictable sooner.
func TestUseRelevanceDrainsUncontestedChunksFirst(t *testing.T) {
	_, snap := fixture(t, 16384) // 4 chunks
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	var order []int
	wg := eng.NewWaitGroup()
	wg.Add(2)
	eng.Go("a", func() {
		defer wg.Done()
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, snap.NumTuples()}}, false)
		// Wait until everything is cached, then observe delivery order.
		eng.Sleep(50 * time.Millisecond)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			order = append(order, d.Chunk)
			d.Release()
		}
		cs.Unregister()
	})
	eng.Go("b", func() {
		defer wg.Done()
		// B is interested in chunks 2,3 only and consumes very slowly.
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{2 * 4096, 4 * 4096}}, false)
		eng.Sleep(200 * time.Millisecond)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			d.Release()
		}
		cs.Unregister()
	})
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// A's first two deliveries should be the chunks B does NOT want
	// (0 and 1): UseRelevance picks minimum other-interest first.
	for _, c := range order[:2] {
		if c >= 2 {
			t.Fatalf("delivery order %v consumed contested chunk %d early", order, c)
		}
	}
}

// TestBlockedLoadsAccounting: with a pool smaller than the combined pin
// demand, the scheduler records blocked load attempts but the workload
// still completes.
func TestBlockedLoadsAccounting(t *testing.T) {
	_, snap := fixture(t, 81920)
	eng := sim.NewEngine()
	total := snap.TotalBytes(nil)
	a := newABM(eng, total/8)
	wg := eng.NewWaitGroup()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		eng.Go("s", func() {
			defer wg.Done()
			cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
			for {
				d, ok := cs.GetChunk()
				if !ok {
					break
				}
				eng.Sleep(time.Millisecond)
				d.Release()
			}
			cs.Unregister()
		})
	}
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	if a.Used() > total/8 {
		t.Fatalf("capacity violated: %d > %d", a.Used(), total/8)
	}
}

// TestDeliveryPinProtocol guards the pin protocol: releasing a delivery
// whose pages are no longer pinned panics.
func TestDeliveryPinProtocol(t *testing.T) {
	_, snap := fixture(t, 8192)
	eng := sim.NewEngine()
	a := newABM(eng, 1<<30)
	panicked := false
	eng.Go("s", func() {
		defer a.Stop()
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, 8192}}, false)
		d, ok := cs.GetChunk()
		if !ok {
			t.Error("no chunk")
			return
		}
		d.Release()
		// Second release must panic: pages are no longer pinned.
		d.pages = []*residentPage{{page: snap.Pages(0)[0]}}
		d.Release()
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic on double release")
	}
}
