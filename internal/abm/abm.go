// Package abm implements Cooperative Scans (Zukowski et al., VLDB 2007)
// matured per §2 of the paper: an Active Buffer Manager that owns the
// buffer pool and makes all loading, delivery and eviction decisions at
// chunk granularity, delivering data to CScan operators out of order to
// maximize sharing.
//
// Chunks are logical ranges of tuples (SIDs), not sets of pages: in a
// column store each column maps a chunk to a very different number of
// pages (§2). The ABM scheduler runs as its own simulated process and
// uses the four relevance functions of the framework:
//
//   - QueryRelevance: which CScan to serve next — starved queries first,
//     then queries with the least data remaining (favor short queries).
//   - LoadRelevance: which chunk to load for it — chunks more concurrent
//     scans are interested in score higher, with a bonus for chunks in
//     the snapshot-shared prefix (§2.1).
//   - UseRelevance: which cached chunk to hand a CScan — the one fewest
//     other scans are interested in, making chunks evictable sooner.
//   - KeepRelevance: which chunk to evict — the lowest-scoring cached
//     chunk, evicted only if it scores below the pending load.
//
// The package also implements the production-hardening described in §2.1
// and §2.3: shared/local chunk marking from longest common snapshot
// prefixes, the four registration cases for snapshot/version changes, and
// an in-order delivery mode that makes a CScan a drop-in Scan replacement.
package abm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/storage"
)

// Config parameterizes the ABM.
type Config struct {
	// ChunkTuples is the chunk granularity in tuples.
	ChunkTuples int64
	// Capacity is the buffer budget in bytes (ABM owns the full pool,
	// §2.3).
	Capacity int64
	// SharedBonus is added to load/keep relevance of snapshot-shared
	// chunks.
	SharedBonus float64
	// CollectBlockHeat enables the per-block access-temperature map fed
	// by scan registrations (see BlockHeat). Off by default: the counting
	// walks every registered page range, a cost the historical paths do
	// not pay.
	CollectBlockHeat bool
}

// DefaultChunkTuples is the default chunk granularity.
const DefaultChunkTuples = 8192

// Stats aggregates ABM activity.
type Stats struct {
	BytesLoaded  int64
	ChunksLoaded int64
	BytesEvicted int64
	Deliveries   int64
	BlockedLoads int64 // scheduler rounds where eviction could not make room
}

type tableKey struct {
	table   *storage.Table
	version int
}

// residentPage tracks one ABM-cached page.
type residentPage struct {
	page  *storage.Page
	owner *chunk // the chunk whose load brought the page in
	pins  int
}

// chunk is the ABM metadata for one logical tuple range of a table
// version.
type chunk struct {
	tm     *tableMeta
	idx    int
	shared bool // in the longest snapshot prefix shared by >=2 scans

	interest int // scans that still need this chunk delivered
	loading  bool
	owned    []*residentPage // pages whose load this chunk triggered
	bytes    int64           // resident bytes owned
}

func (c *chunk) lo() int64 { return int64(c.idx) * c.tm.abm.cfg.ChunkTuples }
func (c *chunk) hi() int64 {
	h := c.lo() + c.tm.abm.cfg.ChunkTuples
	if h > c.tm.maxTuples {
		h = c.tm.maxTuples
	}
	return h
}

// tableMeta is the ABM metadata for one (table, version) pair.
type tableMeta struct {
	abm       *ABM
	key       tableKey
	maxTuples int64
	chunks    []*chunk
	scans     []*CScan
}

// ABM is the Active Buffer Manager. All methods must be called from
// processes of the runtime it was created on. The scheduler loop runs as
// its own process: a cooperative simulated process on the sim runtime, a
// real background goroutine on the real runtime — in the latter case the
// instance mutex serializes it against the CScan consumers, and is
// released across disk transfers so consumers keep draining cached
// chunks while a load is in flight.
type ABM struct {
	r    rt.Runtime
	disk *iosim.DeviceArray
	cfg  Config

	// mu guards all chunk/table/residency state below. Uncontended in sim
	// mode (single running process).
	mu       sync.Mutex
	tables   map[tableKey]*tableMeta
	tabOrder []*tableMeta
	resident map[storage.PageID]*residentPage
	used     int64

	work      rt.Event
	stopped   bool
	stats     Stats
	blockHeat map[iosim.BlockID]float64 // non-nil iff cfg.CollectBlockHeat
	// pinnedDeliveries counts outstanding (un-Released) deliveries; used
	// by the scheduler's liveness safeguard.
	pinnedDeliveries int

	// OnLoad, if non-nil, observes every page load (trace hook).
	OnLoad func(p *storage.Page)
}

// New creates an ABM and starts its scheduler process on the runtime.
func New(r rt.Runtime, disk *iosim.DeviceArray, cfg Config) *ABM {
	if cfg.ChunkTuples <= 0 {
		cfg.ChunkTuples = DefaultChunkTuples
	}
	if cfg.Capacity <= 0 {
		panic("abm: capacity must be positive")
	}
	if cfg.SharedBonus == 0 {
		cfg.SharedBonus = 0.5
	}
	a := &ABM{
		r:        r,
		disk:     disk,
		cfg:      cfg,
		tables:   make(map[tableKey]*tableMeta),
		resident: make(map[storage.PageID]*residentPage),
	}
	if cfg.CollectBlockHeat {
		a.blockHeat = make(map[iosim.BlockID]float64)
	}
	a.work = r.NewEvent()
	r.Go("abm-scheduler", a.run)
	return a
}

// Stats returns a snapshot of the counters.
func (a *ABM) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// BlockHeat returns a copy of the per-block access-temperature map —
// how many (scan, column) registrations covered each physical block —
// or nil when Config.CollectBlockHeat is off. Temperature-based chunk
// placement (iosim.TemperaturePlacement) aggregates it per stripe chunk.
func (a *ABM) BlockHeat() map[iosim.BlockID]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.blockHeat == nil {
		return nil
	}
	out := make(map[iosim.BlockID]float64, len(a.blockHeat))
	for b, h := range a.blockHeat {
		out[b] = h
	}
	return out
}

// Used returns the resident byte volume.
func (a *ABM) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Stop shuts the scheduler down once all CScans are unregistered.
func (a *ABM) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	a.work.Fire()
}

// CScan is a registered cooperative scan.
type CScan struct {
	abm    *ABM
	tm     *tableMeta
	snap   *storage.Snapshot
	cols   []int
	sorted []int // cols deduplicated+sorted for page walks

	need      []bool // per chunk: interested and not yet delivered
	remaining int
	inOrder   bool
	nextIdx   int // next chunk index (in-order mode)

	avail rt.Event // fired when a chunk of interest becomes cached

	// qctx is the owning query's lifecycle handle (nil when the scan has
	// no lifecycle, the historical behavior): a cancelled owner makes
	// GetChunk return ok=false instead of blocking, and the scheduler
	// stops choosing this scan so no further chunks are loaded on its
	// behalf.
	qctx *rt.QueryCtx
}

// Bind attaches the owning query's lifecycle handle. Call once, right
// after RegisterCScan, before the first GetChunk.
func (cs *CScan) Bind(q *rt.QueryCtx) { cs.qctx = q }

// SIDRange is a half-open range of stable tuple positions.
type SIDRange struct{ Lo, Hi int64 }

// RegisterCScan registers a scan over the given snapshot, columns and SID
// ranges; the paper's RegisterCScan. inOrder requests strictly ascending
// chunk delivery (§2.3), making the CScan a drop-in Scan replacement at
// chunk granularity.
func (a *ABM) RegisterCScan(snap *storage.Snapshot, cols []int, ranges []SIDRange, inOrder bool) *CScan {
	a.mu.Lock()
	defer a.mu.Unlock()
	tm := a.tableMetaFor(snap)
	cs := &CScan{
		abm:     a,
		tm:      tm,
		snap:    snap,
		cols:    cols,
		inOrder: inOrder,
		avail:   a.r.NewEvent(),
		need:    make([]bool, len(tm.chunks)),
	}
	cs.sorted = append(cs.sorted, cols...)
	sort.Ints(cs.sorted)
	cs.nextIdx = len(tm.chunks)
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi > snap.NumTuples() || r.Lo > r.Hi {
			panic(fmt.Sprintf("abm: bad SID range [%d,%d)", r.Lo, r.Hi))
		}
		if r.Lo == r.Hi {
			continue
		}
		first := int(r.Lo / a.cfg.ChunkTuples)
		last := int((r.Hi - 1) / a.cfg.ChunkTuples)
		for i := first; i <= last; i++ {
			if !cs.need[i] {
				cs.need[i] = true
				cs.remaining++
				tm.chunks[i].interest++
			}
			if i < cs.nextIdx {
				cs.nextIdx = i
			}
		}
		if a.blockHeat != nil {
			for _, col := range cs.sorted {
				for _, pg := range snap.PagesInRange(col, r.Lo, r.Hi) {
					a.blockHeat[pg.Block]++
				}
			}
		}
	}
	tm.scans = append(tm.scans, cs)
	tm.remarkShared()
	a.work.Fire()
	return cs
}

// tableMetaFor implements the four registration cases (i)–(iv) of §2.1:
// fresh table, identical snapshot, common-prefix snapshot (all the same
// (table,version) key, possibly extended), or a new table version.
func (a *ABM) tableMetaFor(snap *storage.Snapshot) *tableMeta {
	key := tableKey{table: snap.Table(), version: snap.Version()}
	tm, ok := a.tables[key]
	if !ok {
		tm = &tableMeta{abm: a, key: key}
		a.tables[key] = tm
		a.tabOrder = append(a.tabOrder, tm)
		a.dropStaleVersions(key.table, key.version)
	}
	if snap.NumTuples() > tm.maxTuples {
		tm.maxTuples = snap.NumTuples()
		want := int((tm.maxTuples + a.cfg.ChunkTuples - 1) / a.cfg.ChunkTuples)
		for len(tm.chunks) < want {
			tm.chunks = append(tm.chunks, &chunk{tm: tm, idx: len(tm.chunks)})
		}
		for _, cs := range tm.scans {
			for len(cs.need) < len(tm.chunks) {
				cs.need = append(cs.need, false)
			}
		}
	}
	return tm
}

// InvalidateVersions proactively runs the stale-version housekeeping
// for t: relevance metadata and cached chunks of versions superseded by
// current are destroyed as soon as no scan uses them. Checkpoints call
// it when they retire a snapshot, instead of waiting for the next
// registration to notice; versions still held by running scans survive
// until those scans unregister.
func (a *ABM) InvalidateVersions(t *storage.Table, current int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dropStaleVersions(t, current)
}

// dropStaleVersions destroys metadata (and evicts pages) of older
// versions of the table that no scan uses anymore — the checkpoint
// housekeeping of §2.1.
func (a *ABM) dropStaleVersions(t *storage.Table, current int) {
	keep := a.tabOrder[:0]
	for _, tm := range a.tabOrder {
		if tm.key.table == t && tm.key.version != current && len(tm.scans) == 0 {
			for _, c := range tm.chunks {
				a.evictChunk(c)
			}
			delete(a.tables, tm.key)
			continue
		}
		keep = append(keep, tm)
	}
	a.tabOrder = keep
}

// remarkShared recomputes shared/local chunk marking: the longest prefix
// of tuples covered by pages common to at least two registered scans'
// snapshots (§2.1). Chunks fully inside the prefix are shared.
func (tm *tableMeta) remarkShared() {
	var best int64
	for i := 0; i < len(tm.scans); i++ {
		for j := i + 1; j < len(tm.scans); j++ {
			if p := tm.scans[i].snap.SharedPrefixTuples(tm.scans[j].snap); p > best {
				best = p
			}
		}
	}
	limit := int(best / tm.abm.cfg.ChunkTuples) // chunks fully below the prefix bound
	for i, c := range tm.chunks {
		c.shared = i < limit
	}
}

// Delivery is one chunk handed to a CScan. The receiver processes the
// tuple range and must call Release when done.
type Delivery struct {
	cs    *CScan
	Chunk int
	Lo    int64 // SID range of the chunk
	Hi    int64
	pages []*residentPage
}

// GetChunk blocks until a chunk of interest is cached and returns it; the
// paper's GetChunk. It returns ok=false when every registered range has
// been delivered — or when the owning query is cancelled, so a dead
// consumer never parks on the avail event forever (the caller then closes
// the scan, whose Unregister releases the interest accounting).
func (cs *CScan) GetChunk() (*Delivery, bool) {
	a := cs.abm
	a.mu.Lock()
	for {
		if cs.qctx.Cancelled() {
			a.mu.Unlock()
			return nil, false
		}
		if cs.remaining == 0 {
			a.mu.Unlock()
			return nil, false
		}
		var pick *chunk
		if cs.inOrder {
			c := cs.tm.chunks[cs.nextIdx]
			if cs.abm.chunkCachedFor(cs, c) {
				pick = c
			}
		} else {
			// UseRelevance: among cached chunks of interest, take the one
			// fewest other scans want.
			bestRel := 0.0
			for i, needed := range cs.need {
				if !needed {
					continue
				}
				c := cs.tm.chunks[i]
				if !cs.abm.chunkCachedFor(cs, c) {
					continue
				}
				rel := -float64(c.interest - 1)
				if c.shared {
					rel -= cs.abm.cfg.SharedBonus
				}
				if pick == nil || rel > bestRel {
					pick, bestRel = c, rel
				}
			}
		}
		if pick != nil {
			d := cs.deliver(pick)
			a.mu.Unlock()
			return d, true
		}
		cs.abm.work.Fire() // we are starved: let the scheduler know
		// Register interest before dropping the mutex: a load completing
		// between the unlock and the block would otherwise be lost. The
		// cancel hook fires the same event (after the Waiter registration,
		// so a cancel landing in the gap still hits the captured
		// generation), and the loop-top check turns the wake into
		// ok=false.
		w := cs.avail.Waiter()
		stop := cs.qctx.OnCancel(cs.avail.Fire)
		a.mu.Unlock()
		w.Wait()
		stop()
		a.mu.Lock()
	}
}

// deliver pins the scan's pages of the chunk and updates interest.
func (cs *CScan) deliver(c *chunk) *Delivery {
	d := &Delivery{cs: cs, Chunk: c.idx, Lo: c.lo(), Hi: c.hi()}
	for _, col := range cs.sorted {
		for _, pg := range cs.snap.PagesInRange(col, d.Lo, d.Hi) {
			rp := cs.abm.resident[pg.ID]
			if rp == nil {
				panic("abm: delivering chunk with absent page")
			}
			rp.pins++
			d.pages = append(d.pages, rp)
		}
	}
	cs.need[c.idx] = false
	cs.remaining--
	c.interest--
	if cs.inOrder {
		cs.advanceNext()
	}
	cs.abm.stats.Deliveries++
	cs.abm.pinnedDeliveries++
	return d
}

func (cs *CScan) advanceNext() {
	for cs.nextIdx < len(cs.need) && !cs.need[cs.nextIdx] {
		cs.nextIdx++
	}
}

// Release unpins the delivery's pages and wakes the scheduler (consumed
// chunks may now be evictable).
func (d *Delivery) Release() {
	a := d.cs.abm
	a.mu.Lock()
	for _, rp := range d.pages {
		if rp.pins <= 0 {
			a.mu.Unlock()
			panic("abm: release without pin")
		}
		rp.pins--
	}
	d.pages = nil
	a.pinnedDeliveries--
	a.mu.Unlock()
	a.work.Fire()
}

// UnregisterCScan removes the scan; the paper's UnregisterCScan. Shared
// marking is recomputed and table metadata of abandoned versions is
// destroyed.
func (cs *CScan) Unregister() {
	cs.abm.mu.Lock()
	defer cs.abm.mu.Unlock()
	tm := cs.tm
	for i, needed := range cs.need {
		if needed {
			tm.chunks[i].interest--
			cs.need[i] = false
		}
	}
	cs.remaining = 0
	for i, s := range tm.scans {
		if s == cs {
			tm.scans = append(tm.scans[:i], tm.scans[i+1:]...)
			break
		}
	}
	tm.remarkShared()
	cs.abm.dropStaleVersions(tm.key.table, tm.key.table.Master().Version())
	cs.abm.work.Fire()
}

// chunkCachedFor reports whether every page of the scan's columns in the
// chunk's range is resident.
func (a *ABM) chunkCachedFor(cs *CScan, c *chunk) bool {
	lo, hi := c.lo(), c.hi()
	// Clip to the scan's snapshot (it may be shorter than maxTuples).
	if hi > cs.snap.NumTuples() {
		hi = cs.snap.NumTuples()
	}
	if lo >= hi {
		return false
	}
	for _, col := range cs.sorted {
		for _, pg := range cs.snap.PagesInRange(col, lo, hi) {
			if _, ok := a.resident[pg.ID]; !ok {
				return false
			}
		}
	}
	return true
}

// run is the ABM scheduler loop (the separate thread of §2). It holds
// the instance mutex while deciding, and releases it while blocked on
// work (see waitWork) or transferring from disk (see loadChunk).
func (a *ABM) run() {
	a.mu.Lock()
	for {
		if a.stopped {
			a.mu.Unlock()
			return
		}
		cs := a.chooseQuery()
		if cs == nil {
			a.waitWork()
			continue
		}
		c := a.chooseChunk(cs)
		if c == nil {
			a.waitWork()
			continue
		}
		if !a.loadChunk(cs, c) {
			a.stats.BlockedLoads++
			a.waitWork()
			continue
		}
		// Hand the freshly loaded chunk to its consumers before the next
		// load decision can evict it: the scans woken by the load run at
		// this instant and pin their deliveries, which the eviction guard
		// (and its force-evict liveness fallback) respects. Without this
		// yield an overloaded ABM can evict every chunk it loads before
		// any consumer sees it, starving all scans while I/O churns.
		a.mu.Unlock()
		a.r.Yield()
		a.mu.Lock()
	}
}

// waitWork blocks the scheduler until the next work signal. Interest is
// registered before the mutex is dropped so a Fire in the gap is never
// lost. Caller holds a.mu; it is held again on return.
func (a *ABM) waitWork() {
	w := a.work.Waiter()
	a.mu.Unlock()
	w.Wait()
	a.mu.Lock()
}

// chooseQuery implements QueryRelevance: prefer starved queries, then
// higher I/O priority (the admission policy's hint on the owning
// QueryCtx — zero for every scan unless the serving layer sets it, in
// which case this clause never discriminates), then shorter ones (fewest
// chunks remaining). Scans whose owning query is cancelled are never
// chosen: between the cancel and the consumer's Unregister the ABM must
// not burn I/O loading chunks for a dead query.
func (a *ABM) chooseQuery() *CScan {
	var best *CScan
	bestStarved := false
	bestPrio := 0.0
	bestRemaining := 0
	for _, tm := range a.tabOrder {
		for _, cs := range tm.scans {
			if cs.qctx.Cancelled() {
				continue
			}
			if !a.hasLoadableChunk(cs) {
				continue
			}
			starved := a.isStarved(cs)
			prio := cs.qctx.Priority()
			if best == nil ||
				(starved && !bestStarved) ||
				(starved == bestStarved && prio > bestPrio) ||
				(starved == bestStarved && prio == bestPrio && cs.remaining < bestRemaining) {
				best, bestStarved, bestPrio, bestRemaining = cs, starved, prio, cs.remaining
			}
		}
	}
	return best
}

// isStarved reports whether the scan has no cached chunk ready to consume.
func (a *ABM) isStarved(cs *CScan) bool {
	if cs.remaining == 0 {
		return false
	}
	if cs.inOrder {
		return !a.chunkCachedFor(cs, cs.tm.chunks[cs.nextIdx])
	}
	for i, needed := range cs.need {
		if needed && a.chunkCachedFor(cs, cs.tm.chunks[i]) {
			return false
		}
	}
	return true
}

// hasLoadableChunk reports whether any chunk of interest is neither
// cached nor loading.
func (a *ABM) hasLoadableChunk(cs *CScan) bool {
	for i, needed := range cs.need {
		if !needed {
			continue
		}
		c := cs.tm.chunks[i]
		if !c.loading && !a.chunkCachedFor(cs, c) {
			return true
		}
	}
	return false
}

// chooseChunk implements LoadRelevance for the chosen query: the chunk
// most concurrent scans are interested in, shared chunks boosted; for
// in-order scans, their next pending chunk.
func (a *ABM) chooseChunk(cs *CScan) *chunk {
	if cs.inOrder {
		for i := cs.nextIdx; i < len(cs.need); i++ {
			if !cs.need[i] {
				continue
			}
			c := cs.tm.chunks[i]
			if !c.loading && !a.chunkCachedFor(cs, c) {
				return c
			}
			if !a.chunkCachedFor(cs, c) {
				return nil // next chunk is loading: nothing else helps
			}
		}
		return nil
	}
	var best *chunk
	bestRel := 0.0
	for i, needed := range cs.need {
		if !needed {
			continue
		}
		c := cs.tm.chunks[i]
		if c.loading || a.chunkCachedFor(cs, c) {
			continue
		}
		rel := a.loadRelevance(c)
		if best == nil || rel > bestRel {
			best, bestRel = c, rel
		}
	}
	return best
}

func (a *ABM) loadRelevance(c *chunk) float64 {
	rel := float64(c.interest)
	if c.shared {
		rel += a.cfg.SharedBonus
	}
	return rel
}

// keepRelevance scores a cached chunk for retention: how many scans still
// want it (shared chunks boosted). Chunks nobody wants score lowest.
func (a *ABM) keepRelevance(c *chunk) float64 {
	rel := float64(c.interest)
	if c.shared {
		rel += a.cfg.SharedBonus
	}
	return rel
}

// loadChunk loads every missing page of the chunk for the union of the
// interested scans' columns, evicting lower-relevance chunks to make
// room. It returns false when eviction cannot free enough space.
func (a *ABM) loadChunk(cs *CScan, c *chunk) bool {
	pages := a.missingPages(c)
	if len(pages) == 0 {
		a.wakeInterested(c.tm, c.idx, c.idx)
		return true
	}
	var bytes int64
	for _, pg := range pages {
		bytes += pg.Bytes
	}
	if !a.makeRoom(bytes, a.loadRelevance(c), c, false) {
		// Liveness safeguard: when no delivery is outstanding, every scan
		// is blocked waiting for a load, so the keep-relevance guard must
		// yield — evict the lowest scorer regardless and proceed.
		if a.pinnedDeliveries > 0 || !a.makeRoom(bytes, a.loadRelevance(c), c, true) {
			return false
		}
	}
	c.loading = true
	// Read block-contiguous stretches as one batch of spans: each stretch
	// is priced on the device(s) owning its stripe chunks, and stretches
	// on different devices transfer concurrently (a single-device array
	// degrades to the historical sequential per-stretch reads). The mutex
	// is released for the transfer: consumers keep draining cached chunks
	// (and the eviction guard skips the loading chunk) meanwhile.
	a.mu.Unlock()
	var spans []iosim.Span
	start := 0
	for i := 1; i <= len(pages); i++ {
		if i == len(pages) || pages[i].Block != pages[i-1].Block+1 {
			var n int64
			for _, pg := range pages[start:i] {
				n += pg.Bytes
			}
			spans = append(spans, iosim.Span{Block: pages[start].Block, Blocks: i - start, Bytes: n})
			start = i
		}
	}
	a.disk.ReadSpans(spans)
	a.mu.Lock()
	// The loaded pages may complete residency for neighbouring chunks too
	// (narrow-column pages span chunks), so the wake set covers every
	// chunk the pages overlap.
	loChunk, hiChunk := c.idx, c.idx
	for _, pg := range pages {
		rp := &residentPage{page: pg, owner: c}
		a.resident[pg.ID] = rp
		c.owned = append(c.owned, rp)
		c.bytes += pg.Bytes
		a.used += pg.Bytes
		a.stats.BytesLoaded += pg.Bytes
		if a.OnLoad != nil {
			a.OnLoad(pg)
		}
		if first := int(pg.FirstSID / a.cfg.ChunkTuples); first < loChunk {
			loChunk = first
		}
		if last := int((pg.LastSID() - 1) / a.cfg.ChunkTuples); last > hiChunk {
			hiChunk = last
		}
	}
	c.loading = false
	a.stats.ChunksLoaded++
	a.wakeInterested(c.tm, loChunk, hiChunk)
	return true
}

// missingPages returns the absent pages of the chunk for the union of the
// interested scans' columns and snapshots (beyond the shared prefix,
// different snapshots map the same chunk to different pages), deduplicated
// by page and sorted by block for sequential reads.
func (a *ABM) missingPages(c *chunk) []*storage.Page {
	seen := make(map[storage.PageID]bool)
	var out []*storage.Page
	lo, hi := c.lo(), c.hi()
	for _, cs := range c.tm.scans {
		if !cs.need[c.idx] {
			continue
		}
		h := hi
		if h > cs.snap.NumTuples() {
			h = cs.snap.NumTuples()
		}
		for _, col := range cs.sorted {
			for _, pg := range cs.snap.PagesInRange(col, lo, h) {
				if seen[pg.ID] {
					continue
				}
				seen[pg.ID] = true
				if _, ok := a.resident[pg.ID]; !ok {
					out = append(out, pg)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// wakeInterested wakes the scans interested in any chunk of tm within
// [loChunk, hiChunk] — every chunk whose residency the completed load
// may have changed. Pages of narrow columns span chunks, so one load can
// make a *neighbouring* chunk fully resident for a scan that was never
// interested in the loaded chunk itself; waking the precise overlap set
// keeps those scans live without the thundering herd of waking everyone.
func (a *ABM) wakeInterested(tm *tableMeta, loChunk, hiChunk int) {
	if hiChunk >= len(tm.chunks) {
		hiChunk = len(tm.chunks) - 1
	}
	if loChunk < 0 {
		loChunk = 0
	}
	for _, cs := range tm.scans {
		for i := loChunk; i <= hiChunk; i++ {
			if cs.need[i] {
				cs.avail.Fire()
				break
			}
		}
	}
}

// makeRoom evicts chunks with keepRelevance strictly below loadRel (the
// paper's rule: evict the lowest scorer if it scores lower than the
// pending load) until bytes fit. With force set the relevance guard is
// waived (liveness safeguard), though pinned chunks are never evicted.
func (a *ABM) makeRoom(bytes int64, loadRel float64, loading *chunk, force bool) bool {
	for a.used+bytes > a.cfg.Capacity {
		var victim *chunk
		victimRel := 0.0
		for _, tm := range a.tabOrder {
			for _, c := range tm.chunks {
				if c == loading || c.bytes == 0 || c.loading || a.chunkPinned(c) {
					continue
				}
				rel := a.keepRelevance(c)
				if victim == nil || rel < victimRel {
					victim, victimRel = c, rel
				}
			}
		}
		if victim == nil || (!force && victimRel >= loadRel) {
			return false
		}
		a.evictChunk(victim)
	}
	return true
}

func (a *ABM) chunkPinned(c *chunk) bool {
	for _, rp := range c.owned {
		if rp.pins > 0 {
			return true
		}
	}
	return false
}

// evictChunk drops the pages the chunk's loads brought in. Pages of
// narrow columns span many chunks (§2's columnar complication); a page
// still covered by another chunk with live interest is transferred to
// that chunk's ownership instead of dropped, so evicting one chunk never
// forces re-reads for neighbours that are still being consumed.
func (a *ABM) evictChunk(c *chunk) {
	for _, rp := range c.owned {
		if rp.pins > 0 {
			panic("abm: evicting pinned page")
		}
		if heir := a.interestedHeir(rp.page, c); heir != nil {
			rp.owner = heir
			heir.owned = append(heir.owned, rp)
			heir.bytes += rp.page.Bytes
			continue
		}
		delete(a.resident, rp.page.ID)
		a.used -= rp.page.Bytes
		a.stats.BytesEvicted += rp.page.Bytes
	}
	c.owned = nil
	c.bytes = 0
}

// interestedHeir finds another chunk overlapping the page's tuple range
// with strictly more interest than the evicted chunk. The strict
// inequality guarantees pages only move up the retention order, so
// repeated evictions terminate (no transfer cycles).
func (a *ABM) interestedHeir(pg *storage.Page, c *chunk) *chunk {
	tm := c.tm
	first := int(pg.FirstSID / a.cfg.ChunkTuples)
	last := int((pg.LastSID() - 1) / a.cfg.ChunkTuples)
	if last >= len(tm.chunks) {
		last = len(tm.chunks) - 1
	}
	for i := first; i <= last; i++ {
		if i == c.idx || i < 0 {
			continue
		}
		if tm.chunks[i].interest > c.interest {
			return tm.chunks[i]
		}
	}
	return nil
}

// SharedChunkCount reports how many chunks of the snapshot's table
// version are currently marked shared (for tests).
func (a *ABM) SharedChunkCount(snap *storage.Snapshot) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	tm, ok := a.tables[tableKey{table: snap.Table(), version: snap.Version()}]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range tm.chunks {
		if c.shared {
			n++
		}
	}
	return n
}
