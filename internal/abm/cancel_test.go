package abm

import (
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
)

// TestCancelOneOfTwoConcurrentScans is the lifecycle acceptance check at
// the ABM layer: with two concurrent scans over disjoint halves of a
// table and a pool too small for both working sets, cancelling one scan
// mid-flight must (a) make its next GetChunk return ok=false, (b) stop
// the scheduler from loading the dead scan's remaining chunks, and (c)
// let the survivor finish inside the small pool — i.e. the dead scan's
// cached chunks become evictable once it unregisters.
func TestCancelOneOfTwoConcurrentScans(t *testing.T) {
	_, snap := fixture(t, 81920) // 20 chunks of 4096
	eng := sim.NewEngine()
	total := snap.TotalBytes(nil)
	a := newABM(eng, total*35/100) // ~7 chunks: forces eviction
	qc := rt.NewQueryCtx(rt.Sim(eng))

	wg := eng.NewWaitGroup()
	half := snap.NumTuples() / 2
	scan := func(lo, hi int64, q *rt.QueryCtx, got *[]int) func() {
		return func() {
			defer wg.Done()
			cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{lo, hi}}, false)
			cs.Bind(q)
			for {
				d, ok := cs.GetChunk()
				if !ok {
					break
				}
				*got = append(*got, d.Chunk)
				eng.Sleep(2 * time.Millisecond) // simulate processing
				d.Release()
			}
			cs.Unregister()
		}
	}
	var victim, survivor []int
	wg.Add(2)
	eng.Go("victim", scan(0, half, qc, &victim))
	eng.Go("survivor", scan(half, snap.NumTuples(), nil, &survivor))
	eng.Go("canceller", func() {
		eng.Sleep(8 * time.Millisecond)
		qc.Cancel(rt.CauseClientCancel)
	})
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()

	if len(survivor) != 10 {
		t.Fatalf("survivor delivered %d chunks, want all 10: %v", len(survivor), survivor)
	}
	if len(victim) >= 10 {
		t.Fatalf("victim delivered %d chunks despite cancellation", len(victim))
	}
	// The scheduler must stop loading for the dead scan: the victim's
	// undelivered chunks never hit the disk, so total I/O stays strictly
	// below one full table read.
	if got := a.Stats().BytesLoaded; got >= total {
		t.Fatalf("loaded %d bytes, want < %d (dead scan's tail must not be loaded)", got, total)
	}
	if a.Stats().BytesEvicted == 0 {
		t.Fatal("no evictions under a pool smaller than the survivor's range")
	}
}

// TestCancelledScanWakesFromStarvation: a scan parked inside GetChunk
// (starved, waiting for a load) must wake and return ok=false when its
// query is cancelled, rather than waiting for the load it no longer
// wants.
func TestCancelledScanWakesFromStarvation(t *testing.T) {
	_, snap := fixture(t, 20000)
	eng := sim.NewEngine()
	// A disk so slow the first load is still in flight when the cancel
	// lands: the scan is parked on its avail event at that point.
	slow := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e5, SeekLatency: 10 * time.Millisecond})
	a := New(rt.Sim(eng), slow, Config{ChunkTuples: 4096, Capacity: 1 << 30})
	qc := rt.NewQueryCtx(rt.Sim(eng))
	delivered := 0
	eng.Go("scan", func() {
		cs := a.RegisterCScan(snap, []int{0, 1}, []SIDRange{{0, snap.NumTuples()}}, false)
		cs.Bind(qc)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			delivered++
			d.Release()
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Go("canceller", func() {
		eng.Sleep(time.Microsecond)
		qc.Cancel(rt.CauseClientCancel)
	})
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d chunks after near-immediate cancel", delivered)
	}
	if qc.Cause() != rt.CauseClientCancel {
		t.Fatalf("cause = %v", qc.Cause())
	}
}
