package abm

import (
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// narrowFixture builds a table whose narrow column packs many chunks per
// page (width 1 => 16384 tuples/page vs 4096-tuple chunks).
func narrowFixture(t testing.TB, nTuples int) *storage.Snapshot {
	t.Helper()
	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{
		{Name: "narrow", Type: storage.Int64, Width: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	d.I64[0] = make([]int64, nTuples)
	s, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEvictionTransfersSpanningPages: evicting one chunk must not drop a
// narrow-column page that higher-interest neighbouring chunks still need.
func TestEvictionTransfersSpanningPages(t *testing.T) {
	snap := narrowFixture(t, 65536) // 4 pages, 16 chunks of 4096
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	// Capacity of two pages: loading a third page forces eviction.
	a := New(rt.Sim(eng), disk, Config{ChunkTuples: 4096, Capacity: 2 * storage.PageSize})
	wg := eng.NewWaitGroup()
	wg.Add(2)
	// Scan A consumes the whole table slowly; scan B only the first page
	// region, keeping interest on chunks 1-3 high while chunk 0's
	// interest drains first.
	run := func(lo, hi int64, pace sim.Duration) {
		defer wg.Done()
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{lo, hi}}, false)
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			eng.Sleep(pace)
			d.Release()
		}
		cs.Unregister()
	}
	eng.Go("a", func() { run(0, 65536, time.Millisecond) })
	eng.Go("b", func() { run(0, 16384, 3*time.Millisecond) })
	eng.Go("driver", func() {
		wg.Wait()
		a.Stop()
	})
	eng.Run()
	// Every page read at most twice even under eviction pressure: the
	// heir rule prevents a chunk eviction from discarding the shared
	// 16-chunk page while neighbours still want it. Without the rule this
	// workload re-reads the first page many times.
	total := snap.TotalBytes(nil)
	if got := a.Stats().BytesLoaded; got > 2*total {
		t.Fatalf("loaded %d bytes; > 2x table (%d) indicates spanning-page thrash", got, total)
	}
}

// TestHeirStrictlyIncreasesInterest guards the termination argument.
func TestHeirStrictlyIncreasesInterest(t *testing.T) {
	snap := narrowFixture(t, 32768)
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	a := New(rt.Sim(eng), disk, Config{ChunkTuples: 4096, Capacity: 1 << 30})
	eng.Go("setup", func() {
		cs := a.RegisterCScan(snap, []int{0}, []SIDRange{{0, 32768}}, false)
		// Load everything by consuming it.
		for {
			d, ok := cs.GetChunk()
			if !ok {
				break
			}
			d.Release()
		}
		// All interest drained: no heir exists for any page.
		tm := a.tables[tableKey{table: snap.Table(), version: snap.Version()}]
		for _, c := range tm.chunks {
			for _, rp := range c.owned {
				if h := a.interestedHeir(rp.page, c); h != nil {
					t.Errorf("heir %d found with zero interest", h.idx)
				}
			}
		}
		cs.Unregister()
		a.Stop()
	})
	eng.Run()
}
