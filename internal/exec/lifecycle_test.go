package exec

import (
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/storage"
)

// TestOperatorsCloseTwice: every operator's Close must be idempotent —
// the cancel path closes a plan whose consumer may also close it, and a
// double Close must neither panic (double frame unpin, double ABM
// unregister) nor reach the child twice.
func TestOperatorsCloseTwice(t *testing.T) {
	cases := []struct {
		name    string
		withABM bool
		build   func(e *env) Operator
	}{
		{"Scan", false, func(e *env) Operator {
			return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}}
		}},
		{"CScan", true, func(e *env) Operator {
			return &CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}}
		}},
		{"OScan", false, func(e *env) Operator {
			return &OScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}, SectionTuples: 512}
		}},
		{"Select", false, func(e *env) Operator {
			return &Select{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 2}, Ranges: []RIDRange{{0, 2000}}},
				Pred:  StrEq{Col: 1, Val: "A"},
			}
		}},
		{"Project", false, func(e *env) Operator {
			return &Project{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{1}, Ranges: []RIDRange{{0, 2000}}},
				Exprs: []Expr{NewArith("*", Col{0, storage.Float64}, ConstF(2))},
			}
		}},
		{"HashAggr", false, func(e *env) Operator {
			return &HashAggr{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}},
				Aggs:  []AggSpec{{Kind: AggCount}},
			}
		}},
		{"HashJoin", false, func(e *env) Operator {
			return &HashJoin{
				Build:    &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 500}}},
				Probe:    &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}},
				BuildKey: 0,
				ProbeKey: 0,
			}
		}},
		{"Sort", false, func(e *env) Operator {
			return &Sort{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 2000}}},
				By:    []SortSpec{{Col: 0, Desc: true}},
			}
		}},
		{"OrderedAggr", false, func(e *env) Operator {
			return &OrderedAggr{
				Child:  &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{2}, Ranges: []RIDRange{{0, 2000}}},
				Groups: []int{0},
				Aggs:   []AggSpec{{Kind: AggCount}},
			}
		}},
		{"XChg", false, func(e *env) Operator {
			parts := make([]func() Op, 0, 2)
			for _, r := range PartitionRange(0, 2000, 2) {
				r := r
				parts = append(parts, func() Op {
					return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}}
				})
			}
			return &XChg{Ctx: e.ctx, Parts: parts}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e := newEnv(t, 2000, c.withABM)
			e.run(func() {
				op := c.build(e)
				op.Open()
				if b := op.Next(); b == nil {
					t.Error("no batch before close")
				}
				op.Close()
				op.Close() // must be a no-op, not a double release
			})
		})
	}
}

// TestScanCancelStopsMidStream: a Scan bound to a cancelled query stops
// emitting at the next vector boundary and its Close stays clean.
func TestScanCancelStopsMidStream(t *testing.T) {
	e := newEnv(t, 20000, false)
	qc := rt.NewQueryCtx(rt.Sim(e.eng))
	e.run(func() {
		ctx := e.ctx.WithQuery(qc)
		s := &Scan{Ctx: ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 20000}}}
		s.Open()
		var n int64
		b := s.Next()
		for ; b != nil; b = s.Next() {
			n += int64(b.N)
			if n >= int64(VectorSize) {
				qc.Cancel(rt.CauseClientCancel)
			}
		}
		s.Close()
		s.Close()
		if n >= 20000 {
			t.Fatalf("scan delivered all %d tuples despite cancel", n)
		}
	})
}

// TestCScanCancelStopsMidStream: the cooperative scan path must observe
// the cancel at chunk granularity and release its ABM registration.
func TestCScanCancelStopsMidStream(t *testing.T) {
	e := newEnv(t, 20000, true)
	qc := rt.NewQueryCtx(rt.Sim(e.eng))
	e.run(func() {
		ctx := e.ctx.WithQuery(qc)
		s := &CScan{Ctx: ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 20000}}}
		s.Open()
		var n int64
		for b := s.Next(); b != nil; b = s.Next() {
			n += int64(b.N)
			qc.Cancel(rt.CauseDeadlineExceeded)
		}
		s.Close()
		if n == 0 || n >= 20000 {
			t.Fatalf("delivered %d tuples, want a strict mid-stream stop", n)
		}
	})
}

// TestXChgCancelSim: cancelling the query mid-merge must stop the
// consumer at the next batch and let every producer terminate (the sim
// engine panics on deadlock if one stays parked).
func TestXChgCancelSim(t *testing.T) {
	e := newEnv(t, 16000, false)
	qc := rt.NewQueryCtx(rt.Sim(e.eng))
	e.run(func() {
		ctx := e.ctx.WithQuery(qc)
		parts := make([]func() Op, 0, 4)
		for _, r := range PartitionRange(0, 16000, 4) {
			r := r
			parts = append(parts, func() Op {
				return &Scan{Ctx: ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}}
			})
		}
		x := &XChg{Ctx: ctx, Parts: parts, QueueCap: 1}
		x.Open()
		var n int64
		if b := x.Next(); b != nil {
			n += int64(b.N)
		}
		qc.Cancel(rt.CauseClientCancel)
		for b := x.Next(); b != nil; b = x.Next() {
			n += int64(b.N)
		}
		x.Close()
		x.Close()
		if n >= 16000 {
			t.Fatalf("merged all %d tuples despite cancel", n)
		}
	})
}

// TestRealXChgCancelReleasesWorkers is the real-runtime twin: producers
// blocked on the bounded merge channel must unblock on query cancel and
// return their pool slots. Run with -race.
func TestRealXChgCancelReleasesWorkers(t *testing.T) {
	e, r := newRealEnv(t, 16000, 2)
	qc := rt.NewQueryCtx(r)
	var n int64
	r.Go("query", func() {
		ctx := e.ctx.WithQuery(qc)
		parts := make([]func() Op, 0, 4)
		for _, pr := range PartitionRange(0, 16000, 4) {
			pr := pr
			parts = append(parts, func() Op {
				return &Scan{Ctx: ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{pr}}
			})
		}
		x := &XChg{Ctx: ctx, Parts: parts, QueueCap: 1}
		x.Open()
		if b := x.Next(); b != nil {
			n += int64(b.N)
		}
		qc.Cancel(rt.CauseClientCancel)
		for b := x.Next(); b != nil; b = x.Next() {
			n += int64(b.N)
		}
		x.Close()
	})
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled XChg leaked blocked producers")
	}
	if n >= 16000 {
		t.Fatalf("merged all %d tuples despite cancel", n)
	}
}
