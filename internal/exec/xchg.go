package exec

import (
	"sync"

	"repro/internal/rt"
	"repro/internal/storage"
)

// XChg is the Exchange operator of §2.2 (Volcano-style): it runs N copies
// of a subplan as separate processes (one per "thread") and merges their
// output streams. Plans are parallelized by statically partitioning the
// scanned RID range per Equation 1 and building one subplan per
// partition.
//
// The operator has two fan-out mechanisms behind one interface:
//
//   - Sim runtime (Ctx.Workers == nil): one cooperative process per
//     subplan, a shared slice queue, and engine events for back
//     pressure — byte-for-byte the historical deterministic behavior.
//   - Real runtime (Ctx.Workers != nil): producers are submitted to the
//     shared worker pool (bounded by the core count, so intra-query
//     parallelism cannot oversubscribe the machine), and the merge queue
//     is a bounded channel whose send/receive provides the back pressure.
type XChg struct {
	Ctx *Ctx
	// Parts builds the i-th parallel subplan.
	Parts []func() Op
	// QueueCap bounds the per-producer output queue in batches (back
	// pressure); default 4.
	QueueCap int

	schema  []storage.ColumnType
	queue   []*Batch
	space   rt.Event
	ready   rt.Event
	running int
	out     *Batch
	opened  bool
	closed  bool

	// stopCancel deregisters the query-cancel hook installed at Open. The
	// hook is the bridge between the query lifecycle and the operator's
	// own wake-up machinery: on the sim runtime it fires both queue
	// events, on the real runtime it closes the cancel channel — the same
	// channel Close uses — so a client cancel and an early consumer close
	// travel the identical shutdown path.
	stopCancel func()

	// Real-runtime state.
	ch        chan *Batch
	cancel    chan struct{}
	closeOnce sync.Once
}

// Schema implements Operator.
func (x *XChg) Schema() []storage.ColumnType {
	if x.schema == nil {
		op := x.Parts[0]()
		x.schema = op.Schema()
	}
	return x.schema
}

// Open implements Operator: spawns one producer process per subplan.
func (x *XChg) Open() {
	if x.opened {
		panic("exec: XChg reopened")
	}
	x.opened = true
	if x.QueueCap <= 0 {
		x.QueueCap = 4
	}
	x.out = NewBatch(x.Schema())
	if x.Ctx.Workers != nil {
		x.openReal()
		return
	}
	x.space = x.Ctx.RT.NewEvent()
	x.ready = x.Ctx.RT.NewEvent()
	// One persistent hook covers every park in this operator: a cancel
	// fires both events, waking parked producers (space) and the consumer
	// (ready), which re-check the lifecycle before parking again. Sim
	// events are not sticky, but the sim runs one process at a time, so a
	// check-then-park pair cannot be split by a cancel.
	x.stopCancel = x.Ctx.Query.OnCancel(func() {
		x.space.Fire()
		x.ready.Fire()
	})
	x.running = len(x.Parts)
	cap := x.QueueCap * len(x.Parts)
	for _, mk := range x.Parts {
		mk := mk
		x.Ctx.RT.Go("xchg-worker", func() {
			op := mk()
			op.Open()
			defer op.Close()
			for !x.Ctx.Query.Cancelled() {
				b := op.Next()
				if b == nil {
					break
				}
				cp := copyBatch(x.schema, b)
				parked := false
				for len(x.queue) >= cap {
					if x.Ctx.Query.Cancelled() {
						parked = true
						break
					}
					x.space.Wait()
				}
				if parked {
					break
				}
				x.queue = append(x.queue, cp)
				x.ready.Fire()
			}
			x.running--
			x.ready.Fire()
		})
	}
}

// copyBatch snapshots b: the producer's batch is reused on its next call,
// while the consumer drains asynchronously.
func copyBatch(schema []storage.ColumnType, b *Batch) *Batch {
	cp := NewBatch(schema)
	for i := 0; i < b.N; i++ {
		for c := range cp.Vecs {
			cp.Vecs[c].AppendFrom(b.Vecs[c], i)
		}
	}
	cp.N = b.N
	return cp
}

// openReal starts the real-runtime fan-out: producers on the worker
// pool, a bounded channel as the merge queue, and a closer goroutine
// that seals the channel when the last producer finishes.
func (x *XChg) openReal() {
	x.ch = make(chan *Batch, x.QueueCap*len(x.Parts))
	x.cancel = make(chan struct{})
	// A query cancel closes the same cancel channel an early consumer
	// close does: producers parked on a full channel unblock, new sends
	// stop, the closer seals the channel, and a consumer parked on
	// receive drains out. closeOnce makes the two paths race-safe.
	x.stopCancel = x.Ctx.Query.OnCancel(func() {
		x.closeOnce.Do(func() { close(x.cancel) })
	})
	var wg sync.WaitGroup
	wg.Add(len(x.Parts))
	for _, mk := range x.Parts {
		mk := mk
		x.Ctx.Workers.Submit("xchg-worker", func() {
			defer wg.Done()
			op := mk()
			op.Open()
			defer op.Close()
			for !x.Ctx.Query.Cancelled() {
				b := op.Next()
				if b == nil {
					return
				}
				select {
				case x.ch <- copyBatch(x.schema, b):
				case <-x.cancel:
					return // consumer closed early or query cancelled
				}
			}
		})
	}
	x.Ctx.RT.Go("xchg-closer", func() {
		wg.Wait()
		close(x.ch)
	})
}

// Next implements Operator: pops merged batches in arrival order. A
// cancelled query yields end-of-stream; the producers observe the same
// cancel and wind down on their own.
func (x *XChg) Next() *Batch {
	if x.Ctx.Query.Cancelled() {
		return nil
	}
	if x.ch != nil {
		return <-x.ch // nil when closed and drained
	}
	for {
		if len(x.queue) > 0 {
			b := x.queue[0]
			x.queue = x.queue[1:]
			x.space.Fire()
			return b
		}
		if x.running == 0 {
			return nil
		}
		x.ready.Wait()
		if x.Ctx.Query.Cancelled() {
			return nil
		}
	}
}

// Close implements Operator: drains any remaining producer output so the
// worker processes terminate. Idempotent — the cancel path and the plan
// driver may both close the operator.
func (x *XChg) Close() {
	if x.closed {
		return
	}
	x.closed = true
	if x.stopCancel != nil {
		x.stopCancel()
	}
	if x.ch != nil {
		x.closeOnce.Do(func() { close(x.cancel) })
		for range x.ch {
		}
		return
	}
	for x.running > 0 || len(x.queue) > 0 {
		x.queue = nil
		x.space.Fire()
		if x.running > 0 {
			x.ready.Wait()
		}
	}
}
