package exec

import (
	"repro/internal/sim"
	"repro/internal/storage"
)

// XChg is the Exchange operator of §2.2 (Volcano-style): it runs N copies
// of a subplan as separate simulated processes (one per "thread") and
// merges their output streams. Plans are parallelized by statically
// partitioning the scanned RID range per Equation 1 and building one
// subplan per partition.
type XChg struct {
	Ctx *Ctx
	// Parts builds the i-th parallel subplan.
	Parts []func() Op
	// QueueCap bounds the per-producer output queue in batches (back
	// pressure); default 4.
	QueueCap int

	schema  []storage.ColumnType
	queue   []*Batch
	space   *sim.Event
	ready   *sim.Event
	running int
	out     *Batch
	opened  bool
}

// Schema implements Operator.
func (x *XChg) Schema() []storage.ColumnType {
	if x.schema == nil {
		op := x.Parts[0]()
		x.schema = op.Schema()
	}
	return x.schema
}

// Open implements Operator: spawns one producer process per subplan.
func (x *XChg) Open() {
	if x.opened {
		panic("exec: XChg reopened")
	}
	x.opened = true
	if x.QueueCap <= 0 {
		x.QueueCap = 4
	}
	x.space = x.Ctx.Eng.NewEvent()
	x.ready = x.Ctx.Eng.NewEvent()
	x.out = NewBatch(x.Schema())
	x.running = len(x.Parts)
	cap := x.QueueCap * len(x.Parts)
	for _, mk := range x.Parts {
		mk := mk
		x.Ctx.Eng.Go("xchg-worker", func() {
			op := mk()
			op.Open()
			defer op.Close()
			for {
				b := op.Next()
				if b == nil {
					break
				}
				// Copy: the producer's batch is reused on its next call,
				// while the consumer drains asynchronously.
				cp := NewBatch(x.schema)
				for i := 0; i < b.N; i++ {
					for c := range cp.Vecs {
						cp.Vecs[c].AppendFrom(b.Vecs[c], i)
					}
				}
				cp.N = b.N
				for len(x.queue) >= cap {
					x.space.Wait()
				}
				x.queue = append(x.queue, cp)
				x.ready.Fire()
			}
			x.running--
			x.ready.Fire()
		})
	}
}

// Next implements Operator: pops merged batches in arrival order.
func (x *XChg) Next() *Batch {
	for {
		if len(x.queue) > 0 {
			b := x.queue[0]
			x.queue = x.queue[1:]
			x.space.Fire()
			return b
		}
		if x.running == 0 {
			return nil
		}
		x.ready.Wait()
	}
}

// Close implements Operator: drains any remaining producer output so the
// worker processes terminate.
func (x *XChg) Close() {
	for x.running > 0 || len(x.queue) > 0 {
		x.queue = nil
		x.space.Fire()
		if x.running > 0 {
			x.ready.Wait()
		}
	}
}
