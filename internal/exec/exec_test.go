package exec

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// env bundles a full execution environment over one test table.
type env struct {
	eng  *sim.Engine
	ctx  *Ctx
	snap *storage.Snapshot
	abm  *abm.ABM
}

// newEnv builds a 3-column table: id (int64), val (float64), tag (string).
func newEnv(t testing.TB, n int, withABM bool) *env {
	t.Helper()
	eng := sim.NewEngine()
	disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 1e9, SeekLatency: 10 * time.Microsecond})
	pool := buffer.NewPool(rt.Sim(eng), disk, buffer.NewLRU(), 1<<30)

	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{
		{Name: "id", Type: storage.Int64, Width: 8},
		{Name: "val", Type: storage.Float64, Width: 8},
		{Name: "tag", Type: storage.String, Width: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	ids := make([]int64, n)
	vals := make([]float64, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i) / 2
		if i%2 == 0 {
			tags[i] = "A"
		} else {
			tags[i] = "B"
		}
	}
	d.I64[0] = ids
	d.F64[1] = vals
	d.Str[2] = tags
	snap, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	e := &env{
		eng:  eng,
		snap: snap,
		ctx:  &Ctx{RT: rt.Sim(eng), Pool: pool, ReadAheadTuples: 8192},
	}
	if withABM {
		e.abm = abm.New(rt.Sim(eng), disk, abm.Config{ChunkTuples: 2048, Capacity: 1 << 30})
		e.ctx.ABM = e.abm
	}
	return e
}

// run executes fn as a simulated process and completes the simulation.
func (e *env) run(fn func()) {
	e.eng.Go("test", func() {
		fn()
		if e.abm != nil {
			e.abm.Stop()
		}
	})
	e.eng.Run()
}

func TestScanReadsAllColumns(t *testing.T) {
	e := newEnv(t, 5000, false)
	e.run(func() {
		s := &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 1, 2}, Ranges: []RIDRange{{0, 5000}}}
		res := Collect(s)
		if res.N != 5000 {
			t.Fatalf("N = %d", res.N)
		}
		if res.Vecs[0].I64[4999] != 4999 || res.Vecs[1].F64[10] != 5 || res.Vecs[2].Str[1] != "B" {
			t.Fatal("scan values wrong")
		}
	})
}

func TestScanRange(t *testing.T) {
	e := newEnv(t, 5000, false)
	e.run(func() {
		s := &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{100, 200}, {4000, 4010}}}
		res := Collect(s)
		if res.N != 110 {
			t.Fatalf("N = %d", res.N)
		}
		if res.Vecs[0].I64[0] != 100 || res.Vecs[0].I64[100] != 4000 {
			t.Fatal("range boundaries wrong")
		}
	})
}

func TestScanWithPDTMerge(t *testing.T) {
	e := newEnv(t, 3000, false)
	p := pdt.New(e.snap.Table().Schema, 3000)
	p.DeleteAt(0)
	p.InsertAt(5, pdt.Row{pdt.IntVal(-1), pdt.FloatVal(0), pdt.StrVal("Z")})
	p.ModifyAt(10, 0, pdt.IntVal(999))
	e.run(func() {
		s := &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 2}, Ranges: []RIDRange{{0, p.NumTuples()}}, PDT: p}
		res := Collect(s)
		if int64(res.N) != p.NumTuples() {
			t.Fatalf("N = %d, want %d", res.N, p.NumTuples())
		}
		// Image: 1,2,3,4,5,-1,6,...; position 10 was stable SID 10 before
		// shifts: delete(-1) and insert(+1) cancel, so RID 10 = SID 10.
		if res.Vecs[0].I64[0] != 1 {
			t.Fatalf("delete not applied: %d", res.Vecs[0].I64[0])
		}
		if res.Vecs[0].I64[5] != -1 || res.Vecs[1].Str[5] != "Z" {
			t.Fatalf("insert not applied: %d %q", res.Vecs[0].I64[5], res.Vecs[1].Str[5])
		}
		if res.Vecs[0].I64[10] != 999 {
			t.Fatalf("modify not applied: %d", res.Vecs[0].I64[10])
		}
	})
}

func TestCScanMatchesScan(t *testing.T) {
	e := newEnv(t, 10000, true)
	e.run(func() {
		want := Collect(&Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 10000}}})
		got := Collect(&CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 10000}}})
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		// CScan output is out-of-order: compare as multisets.
		a := append([]int64{}, got.Vecs[0].I64...)
		b := append([]int64{}, want.Vecs[0].I64...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("multiset mismatch at %d", i)
			}
		}
	})
}

func TestCScanInOrderIsOrdered(t *testing.T) {
	e := newEnv(t, 10000, true)
	e.run(func() {
		got := Collect(&CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{100, 9000}}, InOrder: true})
		if got.N != 8900 {
			t.Fatalf("N = %d", got.N)
		}
		for i := 0; i < got.N; i++ {
			if got.Vecs[0].I64[i] != int64(100+i) {
				t.Fatalf("order violated at %d: %d", i, got.Vecs[0].I64[i])
			}
		}
	})
}

func TestCScanWithPDT(t *testing.T) {
	e := newEnv(t, 6000, true)
	p := pdt.New(e.snap.Table().Schema, 6000)
	p.DeleteAt(2500)
	p.InsertAt(100, pdt.Row{pdt.IntVal(-7), pdt.FloatVal(1), pdt.StrVal("Q")})
	p.ModifyAt(4000, 0, pdt.IntVal(-8))
	e.run(func() {
		want := Collect(&Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, p.NumTuples()}}, PDT: p})
		got := Collect(&CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, p.NumTuples()}}, PDT: p})
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		a := append([]int64{}, got.Vecs[0].I64...)
		b := append([]int64{}, want.Vecs[0].I64...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("multiset mismatch at %d: %d vs %d", i, a[i], b[i])
			}
		}
	})
}

func TestSelectFilter(t *testing.T) {
	e := newEnv(t, 4000, false)
	e.run(func() {
		plan := &Select{
			Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 2}, Ranges: []RIDRange{{0, 4000}}},
			Pred:  StrEq{Col: 1, Val: "A"},
		}
		res := Collect(plan)
		if res.N != 2000 {
			t.Fatalf("N = %d, want 2000", res.N)
		}
		for _, v := range res.Vecs[0].I64 {
			if v%2 != 0 {
				t.Fatalf("odd id %d passed filter", v)
			}
		}
	})
}

func TestProjectArithmetic(t *testing.T) {
	e := newEnv(t, 100, false)
	e.run(func() {
		plan := &Project{
			Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{1}, Ranges: []RIDRange{{0, 100}}},
			Exprs: []Expr{NewArith("*", Col{0, storage.Float64}, ConstF(2))},
		}
		res := Collect(plan)
		for i := 0; i < res.N; i++ {
			if res.Vecs[0].F64[i] != float64(i) {
				t.Fatalf("project[%d] = %v", i, res.Vecs[0].F64[i])
			}
		}
	})
}

func TestHashAggrGrouped(t *testing.T) {
	e := newEnv(t, 4000, false)
	e.run(func() {
		plan := &HashAggr{
			Child:  &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{2, 0}, Ranges: []RIDRange{{0, 4000}}},
			Groups: []int{0},
			Aggs:   []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}},
		}
		res := Collect(plan)
		if res.N != 2 {
			t.Fatalf("groups = %d", res.N)
		}
		// Deterministic order: "A" then "B".
		if res.Vecs[0].Str[0] != "A" || res.Vecs[0].Str[1] != "B" {
			t.Fatalf("group order: %v", res.Vecs[0].Str)
		}
		if res.Vecs[1].I64[0] != 2000 || res.Vecs[1].I64[1] != 2000 {
			t.Fatalf("counts: %v", res.Vecs[1].I64)
		}
		// Sum of even ids 0..3998 = 2000*1999*2/2... compute directly.
		var wantA, wantB int64
		for i := int64(0); i < 4000; i++ {
			if i%2 == 0 {
				wantA += i
			} else {
				wantB += i
			}
		}
		if res.Vecs[2].I64[0] != wantA || res.Vecs[2].I64[1] != wantB {
			t.Fatalf("sums: %v, want %d %d", res.Vecs[2].I64, wantA, wantB)
		}
		if res.Vecs[3].I64[0] != 0 || res.Vecs[4].I64[1] != 3999 {
			t.Fatalf("min/max wrong: %v %v", res.Vecs[3].I64, res.Vecs[4].I64)
		}
	})
}

func TestHashAggrGlobal(t *testing.T) {
	e := newEnv(t, 1000, false)
	e.run(func() {
		plan := &HashAggr{
			Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 1000}}},
			Aggs:  []AggSpec{{Kind: AggCount}, {Kind: AggAvg, Col: 0}},
		}
		res := Collect(plan)
		if res.N != 1 || res.Vecs[0].I64[0] != 1000 {
			t.Fatalf("global agg: %+v", res)
		}
		if res.Vecs[1].F64[0] != 499.5 {
			t.Fatalf("avg = %v", res.Vecs[1].F64[0])
		}
	})
}

func TestHashJoin(t *testing.T) {
	e := newEnv(t, 1000, false)
	e.run(func() {
		// Join table with itself on id: every row matches exactly once.
		j := &HashJoin{
			Build:    &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 2}, Ranges: []RIDRange{{0, 500}}},
			Probe:    &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 1}, Ranges: []RIDRange{{0, 1000}}},
			BuildKey: 0,
			ProbeKey: 0,
		}
		res := Collect(j)
		if res.N != 500 {
			t.Fatalf("join N = %d, want 500", res.N)
		}
		if len(res.Vecs) != 4 {
			t.Fatalf("join width = %d", len(res.Vecs))
		}
	})
}

func TestSortAndLimit(t *testing.T) {
	e := newEnv(t, 500, false)
	e.run(func() {
		plan := &Sort{
			Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 500}}},
			By:    []SortSpec{{Col: 0, Desc: true}},
			Limit: 10,
		}
		res := Collect(plan)
		if res.N != 10 {
			t.Fatalf("N = %d", res.N)
		}
		for i := 0; i < 10; i++ {
			if res.Vecs[0].I64[i] != int64(499-i) {
				t.Fatalf("sort[%d] = %d", i, res.Vecs[0].I64[i])
			}
		}
	})
}

func TestXChgParallelAggregation(t *testing.T) {
	e := newEnv(t, 8000, false)
	e.ctx.CPU = NewCPU(rt.Sim(e.eng), 4)
	e.ctx.PerTupleCPU = 10 * time.Nanosecond
	e.run(func() {
		parts := make([]func() Op, 0, 4)
		for _, r := range PartitionRange(0, 8000, 4) {
			r := r
			parts = append(parts, func() Op {
				return &HashAggr{
					Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}},
					Aggs:  []AggSpec{{Kind: AggSum, Col: 0}, {Kind: AggCount}},
				}
			})
		}
		plan := &HashAggr{
			Child: &XChg{Ctx: e.ctx, Parts: parts},
			Aggs:  []AggSpec{{Kind: AggSum, Col: 0}, {Kind: AggSum, Col: 1}},
		}
		res := Collect(plan)
		if res.N != 1 {
			t.Fatalf("N = %d", res.N)
		}
		var want int64
		for i := int64(0); i < 8000; i++ {
			want += i
		}
		if res.Vecs[0].I64[0] != want || res.Vecs[1].I64[0] != 8000 {
			t.Fatalf("parallel sum = %d count = %d", res.Vecs[0].I64[0], res.Vecs[1].I64[0])
		}
	})
}

func TestPartitionRangeEq1(t *testing.T) {
	// Equation 1: [a..b) split into n contiguous, disjoint, covering parts.
	f := func(aRaw, span uint16, nRaw uint8) bool {
		a := int64(aRaw)
		b := a + int64(span)
		n := int(nRaw)%8 + 1
		parts := PartitionRange(a, b, n)
		if len(parts) != n {
			return false
		}
		if parts[0].Lo != a || parts[n-1].Hi != b {
			return false
		}
		for i := 1; i < n; i++ {
			if parts[i].Lo != parts[i-1].Hi {
				return false
			}
		}
		// Near-equal: sizes differ by at most 1.
		minSz, maxSz := int64(1<<62), int64(0)
		for _, p := range parts {
			sz := p.Hi - p.Lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return span == 0 || maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScanChargesCPUTime(t *testing.T) {
	e := newEnv(t, 5000, false)
	e.ctx.CPU = NewCPU(rt.Sim(e.eng), 1)
	e.ctx.PerTupleCPU = 1000 * time.Nanosecond
	var elapsed sim.Time
	e.run(func() {
		Drain(&Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 5000}}})
		elapsed = e.eng.Now()
	})
	// 5000 tuples * 1 us = 5 ms of CPU, plus I/O.
	if elapsed < sim.Time(5*time.Millisecond) {
		t.Fatalf("elapsed %v, want >= 5ms of CPU time", elapsed)
	}
}

func TestCPUContention(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(rt.Sim(eng), 2)
	var end sim.Time
	wg := eng.NewWaitGroup()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		eng.Go("w", func() {
			defer wg.Done()
			cpu.Work(10 * time.Millisecond)
		})
	}
	eng.Go("driver", func() {
		wg.Wait()
		end = eng.Now()
	})
	eng.Run()
	// 4 bursts of 10ms on 2 cores = 20ms wall-clock.
	if end != sim.Time(20*time.Millisecond) {
		t.Fatalf("end = %v, want 20ms", end)
	}
}

func TestExprBetweenAndIn(t *testing.T) {
	e := newEnv(t, 100, false)
	e.run(func() {
		plan := &Select{
			Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 100}}},
			Pred: NewAnd(
				Between(Col{0, storage.Int64}, 10, 20),
				&InI64{Expr: Col{0, storage.Int64}, Set: map[int64]bool{10: true, 15: true, 99: true}},
			),
		}
		res := Collect(plan)
		if res.N != 2 {
			t.Fatalf("N = %d, want 2 (10 and 15)", res.N)
		}
	})
}
