package exec

import (
	"sort"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/pbm"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestOScanProducesExactMultiset(t *testing.T) {
	e := newEnv(t, 20000, false)
	e.run(func() {
		want := Collect(&Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{100, 18000}}})
		got := Collect(&OScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{100, 18000}}, SectionTuples: 3000})
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		a := append([]int64{}, got.Vecs[0].I64...)
		b := append([]int64{}, want.Vecs[0].I64...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("multiset mismatch at %d", i)
			}
		}
	})
}

func TestOScanWithPDT(t *testing.T) {
	e := newEnv(t, 9000, false)
	p := pdt.New(e.snap.Table().Schema, 9000)
	p.DeleteAt(10)
	p.InsertAt(500, pdt.Row{pdt.IntVal(-3), pdt.FloatVal(0), pdt.StrVal("X")})
	p.ModifyAt(7000, 0, pdt.IntVal(-9))
	e.run(func() {
		want := Collect(&Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, p.NumTuples()}}, PDT: p})
		got := Collect(&OScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, p.NumTuples()}}, PDT: p, SectionTuples: 2048})
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		a := append([]int64{}, got.Vecs[0].I64...)
		b := append([]int64{}, want.Vecs[0].I64...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("multiset mismatch at %d: %d vs %d", i, a[i], b[i])
			}
		}
	})
}

// TestOScanAttachesToCachedRegion: with a half-table pool, a second
// opportunistic scan starting later processes the cached region first
// and the pair does less I/O than two in-order LRU scans.
func TestOScanAttachesToCachedRegion(t *testing.T) {
	run := func(opportunistic bool) int64 {
		eng := sim.NewEngine()
		disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 150e6, SeekLatency: 20 * time.Microsecond})
		pol := pbm.New(eng, pbm.DefaultConfig())
		nTuples := 200_000
		cat := storage.NewCatalog()
		tb, _ := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
		d := storage.NewColumnData()
		d.I64[0] = make([]int64, nTuples)
		snap, _ := tb.Master().Append(d)
		pool := buffer.NewPool(rt.Sim(eng), disk, pol, snap.TotalBytes(nil)/2)
		ctx := &Ctx{RT: rt.Sim(eng), Pool: pool, PBM: pol, ReadAheadTuples: 8192}
		wg := eng.NewWaitGroup()
		scan := func(delay sim.Duration) {
			defer wg.Done()
			eng.Sleep(delay)
			var op Operator
			if opportunistic {
				op = &OScan{Ctx: ctx, Snap: snap, Cols: []int{0}, Ranges: []RIDRange{{0, int64(nTuples)}}, SectionTuples: 8192}
			} else {
				op = &Scan{Ctx: ctx, Snap: snap, Cols: []int{0}, Ranges: []RIDRange{{0, int64(nTuples)}}}
			}
			op.Open()
			for b := op.Next(); b != nil; b = op.Next() {
				eng.Sleep(200 * time.Microsecond) // processing cost per batch
			}
			op.Close()
		}
		wg.Add(2)
		eng.Go("s1", func() { scan(0) })
		eng.Go("s2", func() { scan(40 * time.Millisecond) })
		eng.Go("driver", func() { wg.Wait() })
		eng.Run()
		return pool.Stats().BytesLoaded
	}
	inOrder := run(false)
	opp := run(true)
	if opp > inOrder {
		t.Fatalf("opportunistic I/O %d > in-order I/O %d", opp, inOrder)
	}
}

func TestOScanRequiresPool(t *testing.T) {
	e := newEnv(t, 1000, true)
	e.ctx.Pool = nil
	panicked := false
	e.run(func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		o := &OScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 1000}}}
		o.Open()
	})
	if !panicked {
		t.Fatal("expected panic")
	}
}
