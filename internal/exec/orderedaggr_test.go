package exec

import (
	"testing"

	"repro/internal/storage"
)

// orderedEnv builds a table clustered on column 0 (runs of equal keys).
func orderedEnv(t testing.TB, groups, perGroup int, withABM bool) *env {
	t.Helper()
	e := newEnv(t, groups*perGroup, withABM)
	return e
}

func TestOrderedAggrOverScan(t *testing.T) {
	// The test table's id column is unique, so use id/1000 as a clustered
	// group key via Project.
	e := newEnv(t, 8000, false)
	e.run(func() {
		plan := &OrderedAggr{
			Child: &Project{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 1}, Ranges: []RIDRange{{0, 8000}}},
				Exprs: []Expr{
					NewArith("/", Col{0, storage.Int64}, ConstI(1000)),
					Col{1, storage.Float64},
				},
			},
			Groups: []int{0},
			Aggs:   []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}},
		}
		res := Collect(plan)
		if res.N != 8 {
			t.Fatalf("groups = %d, want 8", res.N)
		}
		for i := 0; i < res.N; i++ {
			if res.Vecs[0].I64[i] != int64(i) {
				t.Fatalf("group key order: %v", res.Vecs[0].I64[:res.N])
			}
			if res.Vecs[1].I64[i] != 1000 {
				t.Fatalf("group %d count = %d", i, res.Vecs[1].I64[i])
			}
		}
	})
}

// TestOrderedAggrMatchesHashAggr cross-checks the two aggregators.
func TestOrderedAggrMatchesHashAggr(t *testing.T) {
	e := newEnv(t, 5000, false)
	e.run(func() {
		mk := func() Op {
			return &Project{
				Child: &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 1}, Ranges: []RIDRange{{0, 5000}}},
				Exprs: []Expr{
					NewArith("/", Col{0, storage.Int64}, ConstI(777)),
					Col{1, storage.Float64},
				},
			}
		}
		ord := Collect(&OrderedAggr{Child: mk(), Groups: []int{0},
			Aggs: []AggSpec{{Kind: AggSum, Col: 1}, {Kind: AggCount}}})
		hsh := Collect(&HashAggr{Child: mk(), Groups: []int{0},
			Aggs: []AggSpec{{Kind: AggSum, Col: 1}, {Kind: AggCount}}})
		if ord.N != hsh.N {
			t.Fatalf("group counts differ: %d vs %d", ord.N, hsh.N)
		}
		// HashAggr emits sorted by rendered key; map for comparison.
		sums := map[int64]float64{}
		counts := map[int64]int64{}
		for i := 0; i < hsh.N; i++ {
			sums[hsh.Vecs[0].I64[i]] = hsh.Vecs[1].F64[i]
			counts[hsh.Vecs[0].I64[i]] = hsh.Vecs[2].I64[i]
		}
		for i := 0; i < ord.N; i++ {
			k := ord.Vecs[0].I64[i]
			if ord.Vecs[1].F64[i] != sums[k] || ord.Vecs[2].I64[i] != counts[k] {
				t.Fatalf("group %d mismatch", k)
			}
		}
	})
}

// TestOrderedAggrNeedsInOrderDelivery demonstrates §2.3: over an
// in-order CScan the ordered aggregation is correct; over out-of-order
// chunk delivery the same plan fragments groups (more output rows), the
// failure mode that forces order-requiring plans onto Scan or in-order
// CScan.
func TestOrderedAggrNeedsInOrderDelivery(t *testing.T) {
	count := func(inOrder bool) int {
		e := newEnv(t, 20000, true)
		var n int
		e.run(func() {
			// Stagger a second scan so ABM delivers cached chunks first to
			// the late-arriving one (out-of-order).
			wg := e.eng.NewWaitGroup()
			wg.Add(1)
			e.eng.Go("warm", func() {
				defer wg.Done()
				Drain(&CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{10000, 20000}}})
			})
			plan := &OrderedAggr{
				Child: &Project{
					Child: &CScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{{0, 20000}}, InOrder: inOrder},
					Exprs: []Expr{NewArith("/", Col{0, storage.Int64}, ConstI(4000))},
				},
				Groups: []int{0},
				Aggs:   []AggSpec{{Kind: AggCount}},
			}
			res := Collect(plan)
			n = res.N
			wg.Wait()
		})
		return n
	}
	if got := count(true); got != 5 {
		t.Fatalf("in-order CScan groups = %d, want 5", got)
	}
	// Out-of-order delivery may fragment groups; we only require that the
	// in-order mode is what makes the plan safe (fragmentation is
	// workload-dependent, so >= is the honest assertion).
	if got := count(false); got < 5 {
		t.Fatalf("out-of-order groups = %d < 5 (lost rows?)", got)
	}
}
