package exec

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// Expr is a vectorized expression over an input batch. Boolean results
// are Int64 vectors of 0/1.
type Expr interface {
	Type() storage.ColumnType
	// Eval computes the expression over b into out (reset by the callee).
	Eval(b *Batch, out *Vec)
}

// Col references input column i.
type Col struct {
	Idx int
	T   storage.ColumnType
}

// Type implements Expr.
func (c Col) Type() storage.ColumnType { return c.T }

// Eval implements Expr.
func (c Col) Eval(b *Batch, out *Vec) {
	src := b.Vecs[c.Idx]
	typeCheck(c.T, src.T, "column ref")
	out.Reset()
	out.T = c.T
	switch c.T {
	case storage.Int64:
		out.I64 = append(out.I64, src.I64...)
	case storage.Float64:
		out.F64 = append(out.F64, src.F64...)
	case storage.String:
		out.Str = append(out.Str, src.Str...)
	}
}

// ConstI is an int64 literal.
type ConstI int64

// Type implements Expr.
func (ConstI) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (c ConstI) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for i := 0; i < b.N; i++ {
		out.I64 = append(out.I64, int64(c))
	}
}

// ConstF is a float64 literal.
type ConstF float64

// Type implements Expr.
func (ConstF) Type() storage.ColumnType { return storage.Float64 }

// Eval implements Expr.
func (c ConstF) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Float64
	for i := 0; i < b.N; i++ {
		out.F64 = append(out.F64, float64(c))
	}
}

// Arith is one of "+", "-", "*", "/" over numeric operands of equal type.
type Arith struct {
	Op   string
	L, R Expr
	l, r Vec
}

// NewArith builds an arithmetic node.
func NewArith(op string, l, r Expr) *Arith {
	if l.Type() != r.Type() || l.Type() == storage.String {
		panic(fmt.Sprintf("exec: arith %q over %v/%v", op, l.Type(), r.Type()))
	}
	return &Arith{Op: op, L: l, R: r}
}

// Type implements Expr.
func (a *Arith) Type() storage.ColumnType { return a.L.Type() }

// Eval implements Expr.
func (a *Arith) Eval(b *Batch, out *Vec) {
	a.L.Eval(b, &a.l)
	a.R.Eval(b, &a.r)
	out.Reset()
	out.T = a.Type()
	switch a.Type() {
	case storage.Int64:
		for i := range a.l.I64 {
			var v int64
			switch a.Op {
			case "+":
				v = a.l.I64[i] + a.r.I64[i]
			case "-":
				v = a.l.I64[i] - a.r.I64[i]
			case "*":
				v = a.l.I64[i] * a.r.I64[i]
			case "/":
				v = a.l.I64[i] / a.r.I64[i]
			default:
				panic("exec: bad arith op " + a.Op)
			}
			out.I64 = append(out.I64, v)
		}
	case storage.Float64:
		for i := range a.l.F64 {
			var v float64
			switch a.Op {
			case "+":
				v = a.l.F64[i] + a.r.F64[i]
			case "-":
				v = a.l.F64[i] - a.r.F64[i]
			case "*":
				v = a.l.F64[i] * a.r.F64[i]
			case "/":
				v = a.l.F64[i] / a.r.F64[i]
			default:
				panic("exec: bad arith op " + a.Op)
			}
			out.F64 = append(out.F64, v)
		}
	}
}

// Cmp compares two operands with one of "<", "<=", "==", "!=", ">=", ">",
// yielding 0/1 int64.
type Cmp struct {
	Op   string
	L, R Expr
	l, r Vec
}

// NewCmp builds a comparison node.
func NewCmp(op string, l, r Expr) *Cmp {
	if l.Type() != r.Type() {
		panic(fmt.Sprintf("exec: cmp %q over %v/%v", op, l.Type(), r.Type()))
	}
	return &Cmp{Op: op, L: l, R: r}
}

// Type implements Expr.
func (*Cmp) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (c *Cmp) Eval(b *Batch, out *Vec) {
	c.L.Eval(b, &c.l)
	c.R.Eval(b, &c.r)
	out.Reset()
	out.T = storage.Int64
	n := c.l.Len()
	for i := 0; i < n; i++ {
		var cm int
		switch c.l.T {
		case storage.Int64:
			cm = cmpOrdered(c.l.I64[i], c.r.I64[i])
		case storage.Float64:
			cm = cmpOrdered(c.l.F64[i], c.r.F64[i])
		case storage.String:
			cm = strings.Compare(c.l.Str[i], c.r.Str[i])
		}
		ok := false
		switch c.Op {
		case "<":
			ok = cm < 0
		case "<=":
			ok = cm <= 0
		case "==":
			ok = cm == 0
		case "!=":
			ok = cm != 0
		case ">=":
			ok = cm >= 0
		case ">":
			ok = cm > 0
		default:
			panic("exec: bad cmp op " + c.Op)
		}
		if ok {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// And is a boolean conjunction of any number of 0/1 int64 operands.
type And struct {
	Kids []Expr
	tmp  Vec
}

// NewAnd builds a conjunction.
func NewAnd(kids ...Expr) *And {
	for _, k := range kids {
		typeCheck(storage.Int64, k.Type(), "and operand")
	}
	return &And{Kids: kids}
}

// Type implements Expr.
func (*And) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (a *And) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for i := 0; i < b.N; i++ {
		out.I64 = append(out.I64, 1)
	}
	for _, k := range a.Kids {
		k.Eval(b, &a.tmp)
		for i := range out.I64 {
			if a.tmp.I64[i] == 0 {
				out.I64[i] = 0
			}
		}
	}
}

// Or is a boolean disjunction.
type Or struct {
	Kids []Expr
	tmp  Vec
}

// NewOr builds a disjunction.
func NewOr(kids ...Expr) *Or {
	for _, k := range kids {
		typeCheck(storage.Int64, k.Type(), "or operand")
	}
	return &Or{Kids: kids}
}

// Type implements Expr.
func (*Or) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (o *Or) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for i := 0; i < b.N; i++ {
		out.I64 = append(out.I64, 0)
	}
	for _, k := range o.Kids {
		k.Eval(b, &o.tmp)
		for i := range out.I64 {
			if o.tmp.I64[i] != 0 {
				out.I64[i] = 1
			}
		}
	}
}

// StrEq tests string column equality against a constant.
type StrEq struct {
	Col int
	Val string
}

// Type implements Expr.
func (StrEq) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (s StrEq) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for _, v := range b.Vecs[s.Col].Str {
		if v == s.Val {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

// StrPrefix tests whether a string column starts with a constant prefix
// (stand-in for TPC-H LIKE 'x%' predicates).
type StrPrefix struct {
	Col    int
	Prefix string
}

// Type implements Expr.
func (StrPrefix) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (s StrPrefix) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for _, v := range b.Vecs[s.Col].Str {
		if strings.HasPrefix(v, s.Prefix) {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

// StrContains tests substring containment (stand-in for LIKE '%x%').
type StrContains struct {
	Col int
	Sub string
}

// Type implements Expr.
func (StrContains) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (s StrContains) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for _, v := range b.Vecs[s.Col].Str {
		if strings.Contains(v, s.Sub) {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

// InI64 tests membership of an int64 column in a constant set.
type InI64 struct {
	Expr Expr
	Set  map[int64]bool
	tmp  Vec
}

// Type implements Expr.
func (*InI64) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (s *InI64) Eval(b *Batch, out *Vec) {
	s.Expr.Eval(b, &s.tmp)
	out.Reset()
	out.T = storage.Int64
	for _, v := range s.tmp.I64 {
		if s.Set[v] {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

// InStr tests membership of a string column in a constant set.
type InStr struct {
	Col int
	Set map[string]bool
}

// Type implements Expr.
func (InStr) Type() storage.ColumnType { return storage.Int64 }

// Eval implements Expr.
func (s InStr) Eval(b *Batch, out *Vec) {
	out.Reset()
	out.T = storage.Int64
	for _, v := range b.Vecs[s.Col].Str {
		if s.Set[v] {
			out.I64 = append(out.I64, 1)
		} else {
			out.I64 = append(out.I64, 0)
		}
	}
}

// Between is lo <= e <= hi for int64 expressions (dates, keys).
func Between(e Expr, lo, hi int64) Expr {
	return NewAnd(NewCmp(">=", e, ConstI(lo)), NewCmp("<=", e, ConstI(hi)))
}
