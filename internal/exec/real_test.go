package exec

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/rt"
	"repro/internal/storage"
)

// Real-runtime executor tests (run with -race): XChg's worker-pool fan
// -out path, which replaces the cooperative slice queue with a bounded
// channel and pooled producer goroutines.

// newRealEnv mirrors newEnv on the real runtime with a worker pool of the
// given size.
func newRealEnv(t testing.TB, n, workers int) (*env, rt.Runtime) {
	t.Helper()
	r := rt.NewReal()
	disk := iosim.New(r, iosim.Config{Bandwidth: 10e9, SeekLatency: time.Microsecond})
	pool := buffer.NewPool(r, disk, buffer.NewLRU(), 1<<30)

	cat := storage.NewCatalog()
	tb, err := cat.CreateTable("t", storage.Schema{
		{Name: "id", Type: storage.Int64, Width: 8},
		{Name: "val", Type: storage.Float64, Width: 8},
		{Name: "tag", Type: storage.String, Width: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewColumnData()
	ids := make([]int64, n)
	vals := make([]float64, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i) / 2
		tags[i] = "A"
	}
	d.I64[0] = ids
	d.F64[1] = vals
	d.Str[2] = tags
	snap, err := tb.Master().Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	e := &env{
		snap: snap,
		ctx: &Ctx{
			RT:              r,
			Pool:            pool,
			ReadAheadTuples: 8192,
			Workers:         rt.NewWorkerPool(r, workers),
		},
	}
	return e, r
}

func TestRealXChgMergesAllPartitions(t *testing.T) {
	e, r := newRealEnv(t, 6000, 2)
	var got atomic.Int64
	// Several XChg queries share the 2-worker pool concurrently: more
	// subplans than workers, so producers queue on the pool semaphore.
	for q := 0; q < 4; q++ {
		r.Go("query", func() {
			parts := make([]func() Op, 0, 3)
			for _, pr := range PartitionRange(0, 6000, 3) {
				pr := pr
				parts = append(parts, func() Op {
					return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{pr}}
				})
			}
			got.Add(int64(Drain(&XChg{Ctx: e.ctx, Parts: parts})))
		})
	}
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("real XChg deadlocked")
	}
	if got.Load() != 4*6000 {
		t.Fatalf("merged %d tuples, want %d", got.Load(), 4*6000)
	}
}

func TestRealXChgEarlyCloseStopsProducers(t *testing.T) {
	e, r := newRealEnv(t, 8000, 2)
	r.Go("query", func() {
		parts := make([]func() Op, 0, 2)
		for _, pr := range PartitionRange(0, 8000, 2) {
			pr := pr
			parts = append(parts, func() Op {
				return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{pr}}
			})
		}
		x := &XChg{Ctx: e.ctx, Parts: parts, QueueCap: 1}
		x.Open()
		if b := x.Next(); b == nil {
			t.Error("no batch")
		}
		// Abandon the rest; Close must cancel the producers or Run hangs
		// on goroutines blocked sending into the merge channel.
		x.Close()
	})
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("early Close leaked blocked producers")
	}
}
