package exec

import (
	"repro/internal/pdt"
	"repro/internal/storage"
)

// OScan implements the "Opportunistic CScans" idea sketched in §5 of the
// paper: out-of-order delivery without an Active Buffer Manager. The
// scan itself splits its range into sections and, each time it needs the
// next section, picks the not-yet-processed section with the most cached
// pages in the (passive) buffer pool. Scans thereby "attach" to each
// other automatically: a trailing scan gravitates toward the region a
// leading scan just paid the I/O for, with no centralized planning and
// no global state beyond the ordinary pool.
type OScan struct {
	Ctx    *Ctx
	Snap   *storage.Snapshot
	Cols   []int
	Ranges []RIDRange
	// PDT is the flattened delta layer; nil means RID == SID.
	PDT *pdt.PDT
	// SectionTuples is the reordering granularity (default 8192).
	SectionTuples int64

	types    []storage.ColumnType
	out      *Batch
	sections []section
	inner    *Scan // executes one section at a time, in-order within it
	opened   bool
}

type section struct {
	lo, hi int64 // SID range
	done   bool
}

// Schema implements Operator.
func (s *OScan) Schema() []storage.ColumnType {
	if s.types == nil {
		s.types = make([]storage.ColumnType, len(s.Cols))
		for i, c := range s.Cols {
			s.types[i] = s.Snap.Table().Schema[c].Type
		}
	}
	return s.types
}

// Open implements Operator.
func (s *OScan) Open() {
	if s.opened {
		panic("exec: OScan reopened")
	}
	s.opened = true
	if s.Ctx.Pool == nil {
		panic("exec: OScan requires a buffer pool")
	}
	if s.SectionTuples <= 0 {
		s.SectionTuples = 8192
	}
	// Sections are defined in SID space so cached-page probing is direct.
	for _, r := range s.Ranges {
		lo, hi := r.Lo, r.Hi
		if s.PDT != nil && r.Lo < r.Hi {
			lo = s.PDT.RIDtoSID(r.Lo)
			hi = s.PDT.RIDtoSID(r.Hi-1) + 1
		}
		if hi > s.Snap.NumTuples() {
			hi = s.Snap.NumTuples()
		}
		// Sections end on the SectionTuples grid so concurrent OScans
		// probe the same units and can converge on them.
		for a := lo; a < hi; {
			b := (a/s.SectionTuples + 1) * s.SectionTuples
			if b > hi {
				b = hi
			}
			s.sections = append(s.sections, section{lo: a, hi: b})
			a = b
		}
	}
}

// Next implements Operator.
func (s *OScan) Next() *Batch {
	for {
		if s.Ctx.Query.Cancelled() {
			return nil // Close releases the inner section scan
		}
		if s.inner != nil {
			if b := s.inner.Next(); b != nil {
				return b
			}
			s.inner.Close()
			s.inner = nil
		}
		idx := s.pickSection()
		if idx < 0 {
			return nil
		}
		s.sections[idx].done = true
		s.inner = s.sectionScan(&s.sections[idx])
		s.inner.Open()
	}
}

// pickSection returns the undone section with the highest cached-byte
// fraction, breaking ties toward the lowest SID (sequential locality).
func (s *OScan) pickSection() int {
	best := -1
	bestScore := -1.0
	for i := range s.sections {
		sec := &s.sections[i]
		if sec.done {
			continue
		}
		score := s.cachedFraction(sec)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// cachedFraction probes the pool for the section's pages across the
// scan's columns.
func (s *OScan) cachedFraction(sec *section) float64 {
	var total, cached int64
	for _, c := range s.Cols {
		for _, pg := range s.Snap.PagesInRange(c, sec.lo, sec.hi) {
			total += pg.Bytes
			if s.Ctx.Pool.Contains(pg) {
				cached += pg.Bytes
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cached) / float64(total)
}

// sectionScan builds the in-order scan of one section, translating the
// section's SID window back to RID ranges exactly as CScan does (the
// SIDtoRIDlow tiling guarantees no tuple is produced twice).
func (s *OScan) sectionScan(sec *section) *Scan {
	var ranges []RIDRange
	if s.PDT == nil {
		for _, r := range s.Ranges {
			lo, hi := maxI64(r.Lo, sec.lo), minI64(r.Hi, sec.hi)
			if lo < hi {
				ranges = append(ranges, RIDRange{Lo: lo, Hi: hi})
			}
		}
	} else {
		wLo := s.PDT.SIDtoRIDlow(sec.lo)
		wHi := s.PDT.SIDtoRIDlow(sec.hi)
		for _, r := range s.Ranges {
			lo, hi := maxI64(r.Lo, wLo), minI64(r.Hi, wHi)
			if lo < hi {
				ranges = append(ranges, RIDRange{Lo: lo, Hi: hi})
			}
		}
	}
	return &Scan{Ctx: s.Ctx, Snap: s.Snap, Cols: s.Cols, Ranges: ranges, PDT: s.PDT}
}

// Close implements Operator.
func (s *OScan) Close() {
	if s.inner != nil {
		s.inner.Close()
		s.inner = nil
	}
}

var _ Operator = (*OScan)(nil)
