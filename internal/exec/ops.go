package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/storage"
)

// Select filters its child by a boolean (0/1 int64) predicate.
type Select struct {
	Child Op
	Pred  Expr
	Ctx   *Ctx
	// PerTupleCPU, if nonzero, is charged per input tuple.
	PerTupleCPU sim.Duration

	out    *Batch
	pred   Vec
	closed bool
}

// Op is an alias to keep plan literals compact.
type Op = Operator

// Schema implements Operator.
func (s *Select) Schema() []storage.ColumnType { return s.Child.Schema() }

// Open implements Operator.
func (s *Select) Open() {
	s.Child.Open()
	s.out = NewBatch(s.Child.Schema())
}

// Next implements Operator.
func (s *Select) Next() *Batch {
	for {
		in := s.Child.Next()
		if in == nil {
			return nil
		}
		if s.Ctx != nil && s.PerTupleCPU > 0 {
			s.Ctx.work(s.PerTupleCPU * sim.Duration(in.N))
		}
		s.Pred.Eval(in, &s.pred)
		s.out.Reset()
		for i := 0; i < in.N; i++ {
			if s.pred.I64[i] == 0 {
				continue
			}
			for c := range s.out.Vecs {
				s.out.Vecs[c].AppendFrom(in.Vecs[c], i)
			}
			s.out.N++
		}
		if s.out.N > 0 {
			return s.out
		}
	}
}

// Close implements Operator. Idempotent: a second Close does not reach
// the child.
func (s *Select) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.Child.Close()
}

// Project computes expressions over its child.
type Project struct {
	Child Op
	Exprs []Expr

	out    *Batch
	closed bool
}

// Schema implements Operator.
func (p *Project) Schema() []storage.ColumnType {
	out := make([]storage.ColumnType, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Type()
	}
	return out
}

// Open implements Operator.
func (p *Project) Open() {
	p.Child.Open()
	p.out = NewBatch(p.Schema())
}

// Next implements Operator.
func (p *Project) Next() *Batch {
	in := p.Child.Next()
	if in == nil {
		return nil
	}
	for i, e := range p.Exprs {
		e.Eval(in, p.out.Vecs[i])
	}
	p.out.N = in.N
	return p.out
}

// Close implements Operator. Idempotent: a second Close does not reach
// the child.
func (p *Project) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.Child.Close()
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate over an input column (ignored for AggCount).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// aggState accumulates one group.
type aggState struct {
	sums   []float64
	isums  []int64
	mins   []float64
	imins  []int64
	maxs   []float64
	imaxs  []int64
	counts []int64
	n      int64
	key    []string // rendered group key values for deterministic order
	keyI   []int64
	keyF   []float64
	keyS   []string
}

// HashAggr is a blocking hash aggregation with optional group-by columns.
type HashAggr struct {
	Child  Op
	Groups []int
	Aggs   []AggSpec
	Ctx    *Ctx
	// PerTupleCPU, if nonzero, is charged per input tuple.
	PerTupleCPU sim.Duration

	groups  map[string]*aggState
	order   []*aggState
	emitted bool
	out     *Batch
	closed  bool
}

// Schema implements Operator: group columns followed by aggregates
// (AggCount yields Int64; others Float64 except Min/Max/Sum over Int64).
func (a *HashAggr) Schema() []storage.ColumnType {
	child := a.Child.Schema()
	var out []storage.ColumnType
	for _, g := range a.Groups {
		out = append(out, child[g])
	}
	for _, spec := range a.Aggs {
		switch spec.Kind {
		case AggCount:
			out = append(out, storage.Int64)
		case AggAvg:
			out = append(out, storage.Float64)
		default:
			out = append(out, child[spec.Col])
		}
	}
	return out
}

// Open implements Operator.
func (a *HashAggr) Open() {
	a.Child.Open()
	a.groups = make(map[string]*aggState)
	a.out = NewBatch(a.Schema())
}

// Next implements Operator: consumes the whole child on first call, then
// emits result batches in deterministic (sorted group key) order.
func (a *HashAggr) Next() *Batch {
	if !a.emitted {
		a.consume()
		a.emitted = true
	}
	if len(a.order) == 0 {
		return nil
	}
	a.out.Reset()
	child := a.Child.Schema()
	n := len(a.order)
	if n > VectorSize {
		n = VectorSize
	}
	for _, st := range a.order[:n] {
		col := 0
		for gi, g := range a.Groups {
			switch child[g] {
			case storage.Int64:
				a.out.Vecs[col].I64 = append(a.out.Vecs[col].I64, st.keyI[gi])
			case storage.Float64:
				a.out.Vecs[col].F64 = append(a.out.Vecs[col].F64, st.keyF[gi])
			case storage.String:
				a.out.Vecs[col].Str = append(a.out.Vecs[col].Str, st.keyS[gi])
			}
			col++
		}
		for si, spec := range a.Aggs {
			v := a.out.Vecs[col]
			switch spec.Kind {
			case AggCount:
				v.I64 = append(v.I64, st.n)
			case AggAvg:
				v.F64 = append(v.F64, st.sums[si]/float64(st.n))
			case AggSum:
				if v.T == storage.Int64 {
					v.I64 = append(v.I64, st.isums[si])
				} else {
					v.F64 = append(v.F64, st.sums[si])
				}
			case AggMin:
				if v.T == storage.Int64 {
					v.I64 = append(v.I64, st.imins[si])
				} else {
					v.F64 = append(v.F64, st.mins[si])
				}
			case AggMax:
				if v.T == storage.Int64 {
					v.I64 = append(v.I64, st.imaxs[si])
				} else {
					v.F64 = append(v.F64, st.maxs[si])
				}
			}
			col++
		}
		a.out.N++
	}
	a.order = a.order[n:]
	return a.out
}

func (a *HashAggr) consume() {
	child := a.Child.Schema()
	var keyBuf strings.Builder
	for in := a.Child.Next(); in != nil; in = a.Child.Next() {
		if a.Ctx != nil && a.PerTupleCPU > 0 {
			a.Ctx.work(a.PerTupleCPU * sim.Duration(in.N))
		}
		for i := 0; i < in.N; i++ {
			keyBuf.Reset()
			for _, g := range a.Groups {
				switch child[g] {
				case storage.Int64:
					fmt.Fprintf(&keyBuf, "%d|", in.Vecs[g].I64[i])
				case storage.Float64:
					fmt.Fprintf(&keyBuf, "%g|", in.Vecs[g].F64[i])
				case storage.String:
					keyBuf.WriteString(in.Vecs[g].Str[i])
					keyBuf.WriteByte('|')
				}
			}
			key := keyBuf.String()
			st, ok := a.groups[key]
			if !ok {
				st = &aggState{
					sums:   make([]float64, len(a.Aggs)),
					isums:  make([]int64, len(a.Aggs)),
					mins:   make([]float64, len(a.Aggs)),
					imins:  make([]int64, len(a.Aggs)),
					maxs:   make([]float64, len(a.Aggs)),
					imaxs:  make([]int64, len(a.Aggs)),
					counts: make([]int64, len(a.Aggs)),
				}
				for _, g := range a.Groups {
					switch child[g] {
					case storage.Int64:
						st.keyI = append(st.keyI, in.Vecs[g].I64[i])
						st.keyF = append(st.keyF, 0)
						st.keyS = append(st.keyS, "")
					case storage.Float64:
						st.keyI = append(st.keyI, 0)
						st.keyF = append(st.keyF, in.Vecs[g].F64[i])
						st.keyS = append(st.keyS, "")
					case storage.String:
						st.keyI = append(st.keyI, 0)
						st.keyF = append(st.keyF, 0)
						st.keyS = append(st.keyS, in.Vecs[g].Str[i])
					}
				}
				st.key = []string{key}
				a.groups[key] = st
				a.order = append(a.order, st)
			}
			st.n++
			for si, spec := range a.Aggs {
				if spec.Kind == AggCount {
					continue
				}
				switch child[spec.Col] {
				case storage.Int64:
					v := in.Vecs[spec.Col].I64[i]
					st.isums[si] += v
					st.sums[si] += float64(v)
					if st.counts[si] == 0 || v < st.imins[si] {
						st.imins[si] = v
					}
					if st.counts[si] == 0 || v > st.imaxs[si] {
						st.imaxs[si] = v
					}
				case storage.Float64:
					v := in.Vecs[spec.Col].F64[i]
					st.sums[si] += v
					if st.counts[si] == 0 || v < st.mins[si] {
						st.mins[si] = v
					}
					if st.counts[si] == 0 || v > st.maxs[si] {
						st.maxs[si] = v
					}
				}
				st.counts[si]++
			}
		}
	}
	sort.Slice(a.order, func(i, j int) bool { return a.order[i].key[0] < a.order[j].key[0] })
}

// Close implements Operator. Idempotent: a second Close does not reach
// the child.
func (a *HashAggr) Close() {
	if a.closed {
		return
	}
	a.closed = true
	a.Child.Close()
}

// HashJoin is an equi-join: it builds a hash table from the Build child
// on BuildKey and probes with the Probe child on ProbeKey (int64 keys,
// the common case for TPC-H foreign keys). Output is probe columns
// followed by build columns.
type HashJoin struct {
	Build    Op
	Probe    Op
	BuildKey int
	ProbeKey int
	Ctx      *Ctx
	// PerTupleCPU, if nonzero, is charged per probe tuple.
	PerTupleCPU sim.Duration

	table  map[int64][]int // key -> row indexes in built
	built  *Batch
	out    *Batch
	closed bool
}

// Schema implements Operator.
func (j *HashJoin) Schema() []storage.ColumnType {
	return append(append([]storage.ColumnType{}, j.Probe.Schema()...), j.Build.Schema()...)
}

// Open implements Operator: materializes and hashes the build side.
func (j *HashJoin) Open() {
	j.Probe.Open()
	j.built = Collect(j.Build)
	j.table = make(map[int64][]int)
	keys := j.built.Vecs[j.BuildKey]
	typeCheck(storage.Int64, keys.T, "join build key")
	for i := 0; i < j.built.N; i++ {
		k := keys.I64[i]
		j.table[k] = append(j.table[k], i)
	}
	j.out = NewBatch(j.Schema())
}

// Next implements Operator.
func (j *HashJoin) Next() *Batch {
	for {
		in := j.Probe.Next()
		if in == nil {
			return nil
		}
		if j.Ctx != nil && j.PerTupleCPU > 0 {
			j.Ctx.work(j.PerTupleCPU * sim.Duration(in.N))
		}
		keys := in.Vecs[j.ProbeKey]
		typeCheck(storage.Int64, keys.T, "join probe key")
		j.out.Reset()
		np := len(in.Vecs)
		for i := 0; i < in.N; i++ {
			for _, bi := range j.table[keys.I64[i]] {
				for c := range in.Vecs {
					j.out.Vecs[c].AppendFrom(in.Vecs[c], i)
				}
				for c := range j.built.Vecs {
					j.out.Vecs[np+c].AppendFrom(j.built.Vecs[c], bi)
				}
				j.out.N++
			}
		}
		if j.out.N > 0 {
			return j.out
		}
	}
}

// Close implements Operator (the build side was already closed by
// Collect in Open). Idempotent: a second Close does not reach the probe
// child.
func (j *HashJoin) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.Probe.Close()
}

// SortSpec orders by column Col, descending when Desc.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort is a blocking full sort (used on small final results, as TPC-H
// ORDER BY clauses are).
type Sort struct {
	Child Op
	By    []SortSpec
	// Limit truncates the output when positive (ORDER BY ... LIMIT n).
	Limit int

	all    *Batch
	perm   []int
	pos    int
	opened bool
	sorted bool
	closed bool
	out    *Batch
}

// Schema implements Operator.
func (s *Sort) Schema() []storage.ColumnType { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open() {
	s.Child.Open()
	s.opened = true
	s.out = NewBatch(s.Child.Schema())
}

// Next implements Operator.
func (s *Sort) Next() *Batch {
	if !s.sorted {
		s.all = Collect(&nopClose{s.Child})
		s.perm = make([]int, s.all.N)
		for i := range s.perm {
			s.perm[i] = i
		}
		sort.SliceStable(s.perm, func(a, b int) bool {
			ra, rb := s.perm[a], s.perm[b]
			for _, spec := range s.By {
				v := s.all.Vecs[spec.Col]
				var cm int
				switch v.T {
				case storage.Int64:
					cm = cmpOrdered(v.I64[ra], v.I64[rb])
				case storage.Float64:
					cm = cmpOrdered(v.F64[ra], v.F64[rb])
				case storage.String:
					cm = strings.Compare(v.Str[ra], v.Str[rb])
				}
				if cm != 0 {
					if spec.Desc {
						return cm > 0
					}
					return cm < 0
				}
			}
			return false
		})
		if s.Limit > 0 && len(s.perm) > s.Limit {
			s.perm = s.perm[:s.Limit]
		}
		s.sorted = true
	}
	if s.pos >= len(s.perm) {
		return nil
	}
	s.out.Reset()
	for s.pos < len(s.perm) && s.out.N < VectorSize {
		ri := s.perm[s.pos]
		for c := range s.out.Vecs {
			s.out.Vecs[c].AppendFrom(s.all.Vecs[c], ri)
		}
		s.out.N++
		s.pos++
	}
	return s.out
}

// Close implements Operator. Idempotent: a second Close does not reach
// the child.
func (s *Sort) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.Child.Close()
}

// nopClose adapts an already-open child for Collect (which opens/closes).
type nopClose struct{ Op }

func (n *nopClose) Open()  {}
func (n *nopClose) Close() {}
