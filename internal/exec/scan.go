package exec

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/pbm"
	"repro/internal/pdt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// RIDRange is a half-open range of row positions in a table image.
type RIDRange struct{ Lo, Hi int64 }

// PartitionRange splits [lo,hi) into n near-equal subranges per Equation 1
// of the paper (static partitioning for intra-query parallelism).
func PartitionRange(lo, hi int64, n int) []RIDRange {
	out := make([]RIDRange, 0, n)
	span := hi - lo
	for i := 0; i < n; i++ {
		a := lo + span*int64(i)/int64(n)
		b := lo + span*int64(i+1)/int64(n)
		out = append(out, RIDRange{a, b})
	}
	return out
}

// Scan is the traditional in-order scan operator of Figure 1: it issues
// its own page requests through the buffer pool (with per-column
// read-ahead), merges PDT updates on the fly, and — when the pool's
// policy is PBM — registers its future accesses and reports its position
// as it progresses (Figure 3).
type Scan struct {
	Ctx    *Ctx
	Snap   *storage.Snapshot
	Cols   []int
	Ranges []RIDRange
	// PDT is the flattened delta layer for this scan's snapshot; nil
	// means RID == SID (no pending updates).
	PDT *pdt.PDT
	// Pred, when non-nil, is the sargable value restriction the scan
	// prunes its ranges by at Open (zone-map data skipping). Advisory:
	// the exact filter still runs above the scan.
	Pred *ScanPredicate

	types    []storage.ColumnType
	out      *Batch
	plans    []rangePlan
	curPlan  int
	curSeg   int
	segOff   int64 // tuples of the current segment already produced
	readers  []*colReader
	pbmID    pbm.ScanID
	pbmOn    bool
	consumed int64 // stable tuples consumed (PBM progress unit)
	opened   bool
	closed   bool
}

// rangePlan is the merge plan of one RID range.
type rangePlan struct {
	segs   []pdt.Segment
	sidEnd int64 // upper SID bound of the range (read-ahead clip)
}

// Schema implements Operator.
func (s *Scan) Schema() []storage.ColumnType {
	if s.types == nil {
		s.types = make([]storage.ColumnType, len(s.Cols))
		for i, c := range s.Cols {
			s.types[i] = s.Snap.Table().Schema[c].Type
		}
	}
	return s.types
}

// Open implements Operator.
func (s *Scan) Open() {
	if s.opened {
		panic("exec: Scan reopened")
	}
	s.opened = true
	s.out = NewBatch(s.Schema())
	s.Ranges = s.Ctx.pruneScanRanges(s.Snap, s.Ranges, s.Pred, s.PDT)
	total := s.Snap.NumTuples()
	if s.PDT != nil {
		total = s.PDT.NumTuples()
	}
	for _, r := range s.Ranges {
		if r.Lo < 0 || r.Hi > total || r.Lo > r.Hi {
			panic(fmt.Sprintf("exec: scan range [%d,%d) out of [0,%d]", r.Lo, r.Hi, total))
		}
		var plan rangePlan
		if s.PDT == nil {
			if r.Lo < r.Hi {
				plan.segs = []pdt.Segment{{Kind: pdt.SegStable, Lo: r.Lo, Hi: r.Hi}}
			}
		} else {
			plan.segs = s.PDT.SegmentsRID(r.Lo, r.Hi)
		}
		for _, seg := range plan.segs {
			if seg.Kind == pdt.SegStable && seg.Hi > plan.sidEnd {
				plan.sidEnd = seg.Hi
			}
		}
		s.plans = append(s.plans, plan)
	}
	s.readers = make([]*colReader, len(s.Cols))
	for i, c := range s.Cols {
		s.readers[i] = &colReader{scan: s, col: c}
	}
	if s.Ctx.PBM != nil {
		pagesPerCol := make([][]*storage.Page, 0, len(s.Cols))
		for _, c := range s.Cols {
			var pages []*storage.Page
			for _, plan := range s.plans {
				for _, seg := range plan.segs {
					if seg.Kind != pdt.SegStable {
						continue
					}
					pages = append(pages, s.Snap.PagesInRange(c, seg.Lo, seg.Hi)...)
				}
			}
			pagesPerCol = append(pagesPerCol, pages)
		}
		s.pbmID = s.Ctx.PBM.RegisterScan(pagesPerCol)
		s.pbmOn = true
	}
}

// Next implements Operator.
func (s *Scan) Next() *Batch {
	if s.Ctx.Query.Cancelled() {
		return nil
	}
	s.out.Reset()
	for s.out.N < VectorSize {
		if s.curPlan >= len(s.plans) {
			break
		}
		plan := &s.plans[s.curPlan]
		if s.curSeg >= len(plan.segs) {
			s.curPlan++
			s.curSeg, s.segOff = 0, 0
			continue
		}
		seg := &plan.segs[s.curSeg]
		want := int64(VectorSize - s.out.N)
		switch seg.Kind {
		case pdt.SegStable:
			lo := seg.Lo + s.segOff
			hi := lo + want
			if hi > seg.Hi {
				hi = seg.Hi
			}
			base := s.out.N
			for i, rd := range s.readers {
				if err := rd.read(lo, hi, plan.sidEnd, s.out.Vecs[i]); err != nil {
					// Cancelled at a blocking pool wait: the partial batch
					// is discarded — nobody will consume it.
					return nil
				}
			}
			// Apply per-SID modifications.
			if len(seg.Mods) > 0 {
				for sid := lo; sid < hi; sid++ {
					mods, ok := seg.Mods[sid]
					if !ok {
						continue
					}
					row := base + int(sid-lo)
					for i, c := range s.Cols {
						if v, ok := mods[c]; ok {
							setVec(s.out.Vecs[i], row, v)
						}
					}
				}
			}
			n := hi - lo
			s.out.N += int(n)
			s.segOff += n
			s.consumed += n
			if s.segOff >= seg.Hi-seg.Lo {
				s.curSeg++
				s.segOff = 0
			}
		case pdt.SegInsert:
			rows := seg.Rows[s.segOff:]
			if int64(len(rows)) > want {
				rows = rows[:want]
			}
			for _, row := range rows {
				for i, c := range s.Cols {
					appendVal(s.out.Vecs[i], row[c])
				}
			}
			s.out.N += len(rows)
			s.segOff += int64(len(rows))
			if s.segOff >= int64(len(seg.Rows)) {
				s.curSeg++
				s.segOff = 0
			}
		}
	}
	if s.out.N == 0 {
		return nil
	}
	s.Ctx.work(s.Ctx.PerTupleCPU * sim.Duration(s.out.N))
	if s.pbmOn {
		s.Ctx.PBM.ReportScanPosition(s.pbmID, s.consumed)
		// §5 attach&throttle: pause briefly when PBM advises that slowing
		// down lets trailing scans reuse our pages before eviction.
		if s.Ctx.PBM.ThrottleEnabled() && s.Ctx.PBM.ShouldThrottle(s.pbmID) {
			s.Ctx.RT.Sleep(s.Ctx.PBM.ThrottlePause())
		}
	}
	return s.out
}

// Close implements Operator. Idempotent: the cancel path may close a
// plan that its driver also closes.
func (s *Scan) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, rd := range s.readers {
		rd.release()
	}
	if s.pbmOn {
		s.Ctx.PBM.UnregisterScan(s.pbmID)
		s.pbmOn = false
	}
}

func setVec(v *Vec, i int, val pdt.Value) {
	switch v.T {
	case storage.Int64:
		v.I64[i] = val.I64
	case storage.Float64:
		v.F64[i] = val.F64
	case storage.String:
		v.Str[i] = val.Str
	}
}

func appendVal(v *Vec, val pdt.Value) {
	switch v.T {
	case storage.Int64:
		v.I64 = append(v.I64, val.I64)
	case storage.Float64:
		v.F64 = append(v.F64, val.F64)
	case storage.String:
		v.Str = append(v.Str, val.Str)
	}
}

// colReader reads one column through the buffer pool. Pages are pinned
// only for the duration of the copy, so a scan's pinned working set stays
// minimal and tiny pools (the paper's 10% configurations) never
// overcommit; under memory pressure a page evicted between batches is
// simply faulted again — which is precisely the thrashing the evaluated
// policies differ on.
type colReader struct {
	scan *Scan
	col  int
}

func (r *colReader) release() {}

// read appends column values for SIDs [lo,hi) to out, faulting pages via
// the pool with read-ahead up to sidEnd. It returns buffer.ErrCancelled
// when the owning query died at a blocking reservation.
func (r *colReader) read(lo, hi, sidEnd int64, out *Vec) error {
	snap := r.scan.Snap
	pool := r.scan.Ctx.Pool
	owner := r.scan.Ctx.Query
	for _, pg := range snap.PagesInRange(r.col, lo, hi) {
		var f *buffer.Frame
		var err error
		if pool.Contains(pg) {
			f, err = pool.GetOwner(owner, pg)
		} else {
			ra := r.scan.Ctx.ReadAheadTuples
			if ra <= 0 {
				ra = int64(pg.Tuples)
			}
			// Device-aware sizing: a striped array wants the batch to cover
			// a full stripe row so every spindle gets a piece.
			if n := r.scan.Ctx.StripeRowBlocks; n > 0 {
				if minRA := int64(n) * int64(pg.Tuples); ra < minRA {
					ra = minRA
				}
			}
			raHi := pg.FirstSID + ra
			if raHi > sidEnd {
				raHi = sidEnd
			}
			run := snap.PagesInRange(r.col, pg.FirstSID, raHi)
			if len(run) == 0 {
				run = []*storage.Page{pg}
			}
			f, err = pool.GetRunOwner(owner, run)
		}
		if err != nil {
			return err
		}
		a := int64(0)
		if lo > pg.FirstSID {
			a = lo - pg.FirstSID
		}
		b := int64(pg.Tuples)
		if hi < pg.LastSID() {
			b = hi - pg.FirstSID
		}
		switch out.T {
		case storage.Int64:
			out.I64 = append(out.I64, pg.I64[a:b]...)
		case storage.Float64:
			out.F64 = append(out.F64, pg.F64[a:b]...)
		case storage.String:
			out.Str = append(out.Str, pg.Str[a:b]...)
		}
		pool.Unpin(f)
	}
	return nil
}
