package exec

import (
	"repro/internal/pbm"
	"repro/internal/sim"
)

// The PBM policy layer provides the live implementations of the cost
// hook (a single instance and the sharded group).
var (
	_ ScanCostModel = (*pbm.PBM)(nil)
	_ ScanCostModel = (*pbm.Group)(nil)
)

// ScanCostModel estimates the expected execution time of a scan over n
// tuples — the per-query expected-work signal a cost-aware admission
// policy (sched's shortest-expected-scan-first) orders by. The PBM
// policy group implements it from its live scan-speed estimates;
// FixedSpeedCost is the fallback for buffer policies with no prediction
// machinery.
type ScanCostModel interface {
	// EstimateScanTime predicts how long a fresh scan over tuples tuples
	// will take. Non-positive tuple counts yield zero.
	EstimateScanTime(tuples int64) sim.Duration
}

// FixedSpeedCost prices scans at a constant speed in tuples per second:
// expected work stays proportional to scan length, which is all a
// relative-ordering policy needs when no observed speeds exist.
type FixedSpeedCost float64

// EstimateScanTime implements ScanCostModel.
func (s FixedSpeedCost) EstimateScanTime(tuples int64) sim.Duration {
	if s <= 0 || tuples <= 0 {
		return 0
	}
	return sim.Duration(float64(tuples) / float64(s) * 1e9)
}
