package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/minmax"
	"repro/internal/storage"
)

// ScanPredicate is a sargable value restriction on one stored column:
// the scan only needs tuples whose column value lies in [Lo, Hi]. Scans
// carrying one consult the context's zone maps at Open to prune
// provably-excluded tuple ranges before any I/O is scheduled — the ABM
// gains no interest in pruned chunks, the PBM never registers their
// pages, and read-ahead batches split around the pruned runs. Pruning is
// conservative (block granularity), so plans still apply the exact
// filter on top of the scan.
type ScanPredicate struct {
	// Col is the storage column index in the table schema (not the
	// position within Scan.Cols).
	Col int
	// Lo and Hi are the inclusive value bounds.
	Lo, Hi int64
}

// zoneKey identifies one summarized column of one snapshot.
type zoneKey struct {
	snap *storage.Snapshot
	col  int
}

// ZoneMaps is the registry of per-(snapshot, column) MinMax indexes a
// context's scans prune through. Indexes are built once at load
// (storage-level reads, no modeled I/O) and are immutable afterwards;
// the mutex only guards registry mutation so concurrent real-mode scans
// can look up safely.
type ZoneMaps struct {
	mu  sync.RWMutex
	idx map[zoneKey]*minmax.Index
}

// NewZoneMaps creates an empty registry.
func NewZoneMaps() *ZoneMaps {
	return &ZoneMaps{idx: make(map[zoneKey]*minmax.Index)}
}

// Build summarizes snap's int64 column col at blockTuples granularity
// (0 = minmax.BlockTuples) and registers the index, returning it.
// Rebuilding an already-registered key replaces the index.
func (z *ZoneMaps) Build(snap *storage.Snapshot, col int, blockTuples int64) *minmax.Index {
	ix := minmax.Build(snap, col, blockTuples)
	z.mu.Lock()
	z.idx[zoneKey{snap, col}] = ix
	z.mu.Unlock()
	return ix
}

// Lookup returns the registered index for (snap, col), or nil.
func (z *ZoneMaps) Lookup(snap *storage.Snapshot, col int) *minmax.Index {
	z.mu.RLock()
	ix := z.idx[zoneKey{snap, col}]
	z.mu.RUnlock()
	return ix
}

// SkipStats accumulates zone-map pruning counters across a run's scans
// (atomics: real-mode scans run on concurrent goroutines).
type SkipStats struct {
	requested atomic.Int64
	skipped   atomic.Int64
}

func (s *SkipStats) add(requested, skipped int64) {
	s.requested.Add(requested)
	s.skipped.Add(skipped)
}

// Counts returns the tuples requested by predicate-carrying scans and
// the tuples pruned before any I/O was scheduled.
func (s *SkipStats) Counts() (requested, skipped int64) {
	return s.requested.Load(), s.skipped.Load()
}

// pruneScanRanges applies the context's zone maps to a predicate scan's
// requested ranges, returning the surviving subranges (clipped and
// coalesced per zone block). It is the single pruning site both scan
// operators call at Open: everything downstream — ABM chunk interest,
// PBM page registration, read-ahead runs, admission-cost accounting —
// sees only the survivors. Scans over pending updates (non-nil PDT) are
// never pruned: the zone maps summarize stable storage only.
func (c *Ctx) pruneScanRanges(snap *storage.Snapshot, ranges []RIDRange, pred *ScanPredicate, hasPDT bool) []RIDRange {
	if pred == nil || hasPDT || c.Zones == nil {
		return ranges
	}
	ix := c.Zones.Lookup(snap, pred.Col)
	if ix == nil {
		return ranges
	}
	var out []RIDRange
	var requested, surviving int64
	for _, r := range ranges {
		requested += r.Hi - r.Lo
		for _, kr := range ix.PruneRange(r.Lo, r.Hi, pred.Lo, pred.Hi) {
			out = append(out, RIDRange{Lo: kr.Lo, Hi: kr.Hi})
			surviving += kr.Hi - kr.Lo
		}
	}
	if c.Skip != nil {
		c.Skip.add(requested, requested-surviving)
	}
	return out
}
