package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/minmax"
	"repro/internal/pdt"
	"repro/internal/storage"
)

// ScanPredicate is a sargable value restriction on one stored column:
// the scan only needs tuples whose column value lies in [Lo, Hi]. Scans
// carrying one consult the context's zone maps at Open to prune
// provably-excluded tuple ranges before any I/O is scheduled — the ABM
// gains no interest in pruned chunks, the PBM never registers their
// pages, and read-ahead batches split around the pruned runs. Pruning is
// conservative (block granularity), so plans still apply the exact
// filter on top of the scan.
type ScanPredicate struct {
	// Col is the storage column index in the table schema (not the
	// position within Scan.Cols).
	Col int
	// Lo and Hi are the inclusive value bounds.
	Lo, Hi int64
}

// zoneKey identifies one summarized column of one snapshot.
type zoneKey struct {
	snap *storage.Snapshot
	col  int
}

// ZoneMaps is the registry of per-(snapshot, column) MinMax indexes a
// context's scans prune through. Indexes are built once at load
// (storage-level reads, no modeled I/O) and are immutable afterwards;
// the mutex only guards registry mutation so concurrent real-mode scans
// can look up safely.
type ZoneMaps struct {
	mu  sync.RWMutex
	idx map[zoneKey]*minmax.Index
}

// NewZoneMaps creates an empty registry.
func NewZoneMaps() *ZoneMaps {
	return &ZoneMaps{idx: make(map[zoneKey]*minmax.Index)}
}

// Build summarizes snap's int64 column col at blockTuples granularity
// (0 = minmax.BlockTuples) and registers the index, returning it.
// Rebuilding an already-registered key replaces the index.
func (z *ZoneMaps) Build(snap *storage.Snapshot, col int, blockTuples int64) *minmax.Index {
	ix := minmax.Build(snap, col, blockTuples)
	z.mu.Lock()
	z.idx[zoneKey{snap, col}] = ix
	z.mu.Unlock()
	return ix
}

// Lookup returns the registered index for (snap, col), or nil.
func (z *ZoneMaps) Lookup(snap *storage.Snapshot, col int) *minmax.Index {
	z.mu.RLock()
	ix := z.idx[zoneKey{snap, col}]
	z.mu.RUnlock()
	return ix
}

// Drop evicts every index summarizing snap. Checkpoints call it as the
// snapshot retires — the registry is keyed by snapshot pointer, so a
// long-lived server would otherwise leak one index set per checkpoint.
// It returns the column indexes that were registered so the caller can
// rebuild them over the replacement snapshot.
func (z *ZoneMaps) Drop(snap *storage.Snapshot) []int {
	z.mu.Lock()
	defer z.mu.Unlock()
	var cols []int
	for k := range z.idx {
		if k.snap == snap {
			cols = append(cols, k.col)
			delete(z.idx, k)
		}
	}
	sort.Ints(cols)
	return cols
}

// Len returns the number of registered indexes (tests and leak checks).
func (z *ZoneMaps) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.idx)
}

// SkipStats accumulates zone-map pruning counters across a run's scans
// (atomics: real-mode scans run on concurrent goroutines).
type SkipStats struct {
	requested atomic.Int64
	skipped   atomic.Int64
}

func (s *SkipStats) add(requested, skipped int64) {
	s.requested.Add(requested)
	s.skipped.Add(skipped)
}

// Counts returns the tuples requested by predicate-carrying scans and
// the tuples pruned before any I/O was scheduled.
func (s *SkipStats) Counts() (requested, skipped int64) {
	return s.requested.Load(), s.skipped.Load()
}

// pruneScanRanges applies the context's zone maps to a predicate scan's
// requested ranges, returning the surviving subranges (clipped and
// coalesced per zone block). It is the single pruning site both scan
// operators call at Open: everything downstream — ABM chunk interest,
// PBM page registration, read-ahead runs, admission-cost accounting —
// sees only the survivors.
//
// A scan over pending updates (non-nil deltas) prunes through
// delta-widened bounds: the zone maps summarize stable storage only, so
// each requested RID range is decomposed into the delta's merge
// segments. Stable runs prune in SID space through the index, except
// that a modification on the predicate column carrying an in-range
// value forces its tuple back in (the block's recorded bounds no longer
// cover it); inserted runs survive iff any inserted row matches.
// Deleted tuples are already absent from the segments. Skipping thus
// stays sound — no pruned tuple could have matched — and stays active
// under writes instead of degrading to a full scan.
func (c *Ctx) pruneScanRanges(snap *storage.Snapshot, ranges []RIDRange, pred *ScanPredicate, deltas *pdt.PDT) []RIDRange {
	if pred == nil || c.Zones == nil {
		return ranges
	}
	ix := c.Zones.Lookup(snap, pred.Col)
	if ix == nil {
		return ranges
	}
	var out []RIDRange
	var requested, surviving int64
	for _, r := range ranges {
		requested += r.Hi - r.Lo
		var kept []RIDRange
		if deltas == nil {
			for _, kr := range ix.PruneRange(r.Lo, r.Hi, pred.Lo, pred.Hi) {
				kept = append(kept, RIDRange{Lo: kr.Lo, Hi: kr.Hi})
			}
		} else {
			kept = pruneDeltaRange(ix, r, pred, deltas)
		}
		for _, kr := range kept {
			surviving += kr.Hi - kr.Lo
		}
		out = appendCoalesced(out, kept)
	}
	if c.Skip != nil {
		c.Skip.add(requested, requested-surviving)
	}
	return out
}

// pruneDeltaRange prunes one requested RID range of a merged
// (stable+PDT) image, returning surviving RID subranges in order.
func pruneDeltaRange(ix *minmax.Index, r RIDRange, pred *ScanPredicate, deltas *pdt.PDT) []RIDRange {
	var kept []RIDRange
	rid := r.Lo
	for _, seg := range deltas.SegmentsRID(r.Lo, r.Hi) {
		switch seg.Kind {
		case pdt.SegStable:
			// Prune the stable SID run through the index, then force back
			// any tuple whose predicate-column modification moved it into
			// range: the block bounds were recorded before the mod.
			sids := ix.PruneRange(seg.Lo, seg.Hi, pred.Lo, pred.Hi)
			for sid, mods := range seg.Mods {
				v, ok := mods[pred.Col]
				if !ok || v.T != storage.Int64 || v.I64 < pred.Lo || v.I64 > pred.Hi {
					continue
				}
				sids = append(sids, minmax.Range{Lo: sid, Hi: sid + 1})
			}
			sort.Slice(sids, func(i, j int) bool { return sids[i].Lo < sids[j].Lo })
			base := rid - seg.Lo // SID -> RID offset within this run
			for _, sr := range sids {
				kr := RIDRange{Lo: base + sr.Lo, Hi: base + sr.Hi}
				if n := len(kept); n > 0 && kept[n-1].Hi >= kr.Lo {
					if kr.Hi > kept[n-1].Hi {
						kept[n-1].Hi = kr.Hi
					}
					continue
				}
				kept = append(kept, kr)
			}
			rid += seg.Hi - seg.Lo
		case pdt.SegInsert:
			// Inserted rows live in the PDT, not under the zone map: keep
			// the run iff any row can match the predicate.
			match := false
			for _, row := range seg.Rows {
				if v := row[pred.Col]; v.T == storage.Int64 && v.I64 >= pred.Lo && v.I64 <= pred.Hi {
					match = true
					break
				}
			}
			if match {
				kr := RIDRange{Lo: rid, Hi: rid + int64(len(seg.Rows))}
				if n := len(kept); n > 0 && kept[n-1].Hi == kr.Lo {
					kept[n-1].Hi = kr.Hi
				} else {
					kept = append(kept, kr)
				}
			}
			rid += int64(len(seg.Rows))
		}
	}
	return kept
}

// appendCoalesced appends ranges to out, merging a run that abuts or
// overlaps out's tail.
func appendCoalesced(out, add []RIDRange) []RIDRange {
	for _, kr := range add {
		if n := len(out); n > 0 && out[n-1].Hi >= kr.Lo {
			if kr.Hi > out[n-1].Hi {
				out[n-1].Hi = kr.Hi
			}
			continue
		}
		out = append(out, kr)
	}
	return out
}
