package exec

import (
	"fmt"

	"repro/internal/abm"
	"repro/internal/pdt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// CScan is the cooperative scan operator of Figure 2: it registers its
// data interest with the Active Buffer Manager up front and repeatedly
// asks for chunks, which arrive out of order. Out-of-order delivery
// interacts with PDT merging exactly as §2.1 describes: each chunk's SID
// range is translated to the widest RID window (SIDtoRIDlow at both
// boundaries tiles the RID space so no tuple is produced twice — the
// trimming requirement), intersected with the requested RID ranges, and
// the merge is re-initialized per chunk.
//
// With InOrder set the CScan demands ascending chunk delivery and becomes
// a drop-in replacement for Scan at chunk granularity (§2.3).
type CScan struct {
	Ctx    *Ctx
	Snap   *storage.Snapshot
	Cols   []int
	Ranges []RIDRange
	// PDT is the flattened delta layer for this scan's snapshot; nil
	// means RID == SID.
	PDT     *pdt.PDT
	InOrder bool
	// Pred, when non-nil, is the sargable value restriction the scan
	// prunes its ranges by at Open: the ABM is only told about the
	// surviving SID ranges, so pruned chunks gain no interest, are never
	// loaded, and never enter relevance counts.
	Pred *ScanPredicate

	types    []storage.ColumnType
	out      *Batch
	cs       *abm.CScan
	cur      *abm.Delivery
	segs     []pdt.Segment
	curSeg   int
	segOff   int64
	consumed int64
	opened   bool
	// pureInserts is set when the requested ranges touch no stable
	// tuples (everything comes from PDT-resident inserts): there is
	// nothing to load, so segments are emitted without ABM deliveries.
	pureInserts bool
	pureDone    bool
}

// Schema implements Operator.
func (s *CScan) Schema() []storage.ColumnType {
	if s.types == nil {
		s.types = make([]storage.ColumnType, len(s.Cols))
		for i, c := range s.Cols {
			s.types[i] = s.Snap.Table().Schema[c].Type
		}
	}
	return s.types
}

// Open implements Operator: registers the scan's SID ranges with the ABM.
func (s *CScan) Open() {
	if s.opened {
		panic("exec: CScan reopened")
	}
	s.opened = true
	if s.Ctx.ABM == nil {
		panic("exec: CScan requires an ABM in the context")
	}
	s.out = NewBatch(s.Schema())
	s.Ranges = s.Ctx.pruneScanRanges(s.Snap, s.Ranges, s.Pred, s.PDT)
	total := s.Snap.NumTuples()
	if s.PDT != nil {
		total = s.PDT.NumTuples()
	}
	var sids []abm.SIDRange
	for _, r := range s.Ranges {
		if r.Lo < 0 || r.Hi > total || r.Lo > r.Hi {
			panic(fmt.Sprintf("exec: cscan range [%d,%d) out of [0,%d]", r.Lo, r.Hi, total))
		}
		if r.Lo == r.Hi {
			continue
		}
		lo, hi := r.Lo, r.Hi
		if s.PDT != nil {
			// RID range -> SID range of stable tuples the ABM must load.
			lo = s.PDT.RIDtoSID(r.Lo)
			hi = s.PDT.RIDtoSID(r.Hi-1) + 1
		}
		if hi > s.Snap.NumTuples() {
			hi = s.Snap.NumTuples()
		}
		if lo < hi {
			sids = append(sids, abm.SIDRange{Lo: lo, Hi: hi})
		}
	}
	if len(sids) == 0 {
		s.pureInserts = true
		return
	}
	s.cs = s.Ctx.ABM.RegisterCScan(s.Snap, s.Cols, sids, s.InOrder)
	// Bind the owning query before the first GetChunk: once the query is
	// cancelled the ABM scheduler stops loading chunks for this scan and
	// GetChunk returns immediately.
	s.cs.Bind(s.Ctx.Query)
}

// Next implements Operator.
func (s *CScan) Next() *Batch {
	if s.Ctx.Query.Cancelled() {
		return nil
	}
	s.out.Reset()
	for s.out.N < VectorSize {
		if s.pureInserts {
			if s.pureDone {
				break
			}
			if s.segs == nil {
				for _, r := range s.Ranges {
					if r.Lo < r.Hi && s.PDT != nil {
						s.segs = append(s.segs, s.PDT.SegmentsRID(r.Lo, r.Hi)...)
					}
				}
				s.curSeg, s.segOff = 0, 0
			}
			if s.curSeg >= len(s.segs) {
				s.pureDone = true
				break
			}
		} else if s.cur == nil {
			d, ok := s.cs.GetChunk()
			if !ok {
				break
			}
			s.cur = d
			s.segs = s.chunkSegments(d)
			s.curSeg, s.segOff = 0, 0
		}
		if s.curSeg >= len(s.segs) {
			s.cur.Release()
			s.cur = nil
			continue
		}
		seg := &s.segs[s.curSeg]
		want := int64(VectorSize - s.out.N)
		switch seg.Kind {
		case pdt.SegStable:
			lo := seg.Lo + s.segOff
			hi := lo + want
			if hi > seg.Hi {
				hi = seg.Hi
			}
			base := s.out.N
			for i, c := range s.Cols {
				readColumnDirect(s.Snap, c, lo, hi, s.out.Vecs[i])
			}
			if len(seg.Mods) > 0 {
				for sid := lo; sid < hi; sid++ {
					mods, ok := seg.Mods[sid]
					if !ok {
						continue
					}
					row := base + int(sid-lo)
					for i, c := range s.Cols {
						if v, ok := mods[c]; ok {
							setVec(s.out.Vecs[i], row, v)
						}
					}
				}
			}
			n := hi - lo
			s.out.N += int(n)
			s.segOff += n
			s.consumed += n
			if s.segOff >= seg.Hi-seg.Lo {
				s.curSeg++
				s.segOff = 0
			}
		case pdt.SegInsert:
			rows := seg.Rows[s.segOff:]
			if int64(len(rows)) > want {
				rows = rows[:want]
			}
			for _, row := range rows {
				for i, c := range s.Cols {
					appendVal(s.out.Vecs[i], row[c])
				}
			}
			s.out.N += len(rows)
			s.segOff += int64(len(rows))
			if s.segOff >= int64(len(seg.Rows)) {
				s.curSeg++
				s.segOff = 0
			}
		}
	}
	if s.out.N == 0 {
		return nil
	}
	s.Ctx.work(s.Ctx.PerTupleCPU * sim.Duration(s.out.N))
	return s.out
}

// chunkSegments re-initializes the PDT merge for one delivered chunk: the
// chunk's SID range becomes a RID window, which is intersected with the
// requested RID ranges and planned into merge segments.
func (s *CScan) chunkSegments(d *abm.Delivery) []pdt.Segment {
	if s.PDT == nil {
		var out []pdt.Segment
		for _, r := range s.Ranges {
			lo, hi := maxI64(r.Lo, d.Lo), minI64(r.Hi, d.Hi)
			if lo < hi {
				out = append(out, pdt.Segment{Kind: pdt.SegStable, Lo: lo, Hi: hi})
			}
		}
		return out
	}
	// SIDtoRIDlow at both boundaries tiles RID space across chunks: no
	// tuple is generated twice (§2.1's trimming, by construction).
	wLo := s.PDT.SIDtoRIDlow(d.Lo)
	wHi := s.PDT.SIDtoRIDlow(d.Hi)
	var out []pdt.Segment
	for _, r := range s.Ranges {
		lo, hi := maxI64(r.Lo, wLo), minI64(r.Hi, wHi)
		if lo < hi {
			out = append(out, s.PDT.SegmentsRID(lo, hi)...)
		}
	}
	return out
}

// Close implements Operator. Idempotent: the pinned delivery and the
// ABM registration are released exactly once, so a cancelled query's
// chunks become evictable as soon as the first Close runs.
func (s *CScan) Close() {
	if s.cur != nil {
		s.cur.Release()
		s.cur = nil
	}
	if s.cs != nil {
		s.cs.Unregister()
		s.cs = nil
	}
}

// readColumnDirect copies values from (ABM-resident, pinned) pages.
func readColumnDirect(snap *storage.Snapshot, col int, lo, hi int64, out *Vec) {
	for _, pg := range snap.PagesInRange(col, lo, hi) {
		a := int64(0)
		if lo > pg.FirstSID {
			a = lo - pg.FirstSID
		}
		b := int64(pg.Tuples)
		if hi < pg.LastSID() {
			b = hi - pg.FirstSID
		}
		switch out.T {
		case storage.Int64:
			out.I64 = append(out.I64, pg.I64[a:b]...)
		case storage.Float64:
			out.F64 = append(out.F64, pg.F64[a:b]...)
		case storage.String:
			out.Str = append(out.Str, pg.Str[a:b]...)
		}
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
