package exec

import (
	"sort"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/iosim"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestAttachScanAloneCoversTable(t *testing.T) {
	e := newEnv(t, 9000, false)
	reg := NewAttachRegistry()
	e.run(func() {
		res := Collect(&AttachScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Registry: reg})
		if res.N != 9000 {
			t.Errorf("N = %d", res.N)
		}
		// A lone scan starts at 0: output is in order.
		for i := 0; i < res.N; i++ {
			if res.Vecs[0].I64[i] != int64(i) {
				t.Errorf("order broken at %d", i)
				break
			}
		}
	})
}

func TestAttachScanWrapsAround(t *testing.T) {
	e := newEnv(t, 10000, false)
	reg := NewAttachRegistry()
	e.run(func() {
		wg := e.eng.NewWaitGroup()
		wg.Add(2)
		var second []int64
		e.eng.Go("first", func() {
			defer wg.Done()
			op := &AttachScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Registry: reg}
			op.Open()
			for b := op.Next(); b != nil; b = op.Next() {
				e.eng.Sleep(time.Millisecond)
			}
			op.Close()
		})
		e.eng.Go("second", func() {
			defer wg.Done()
			e.eng.Sleep(3 * time.Millisecond) // arrive mid-scan
			op := &AttachScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Registry: reg}
			op.Open()
			for b := op.Next(); b != nil; b = op.Next() {
				second = append(second, b.Vecs[0].I64...)
			}
			op.Close()
		})
		wg.Wait()
		if len(second) != 10000 {
			t.Fatalf("second scan rows = %d", len(second))
		}
		// The second scan attached mid-table: it does not start at 0 but
		// still covers every tuple exactly once.
		if second[0] == 0 {
			t.Error("second scan did not attach (started at 0)")
		}
		sorted := append([]int64{}, second...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, v := range sorted {
			if v != int64(i) {
				t.Fatalf("coverage broken at %d: %d", i, v)
			}
		}
	})
}

// TestAttachScanSharesIO: two attached scans over a pool smaller than
// the table do much less I/O than two independent LRU scans.
func TestAttachScanSharesIO(t *testing.T) {
	run := func(attach bool) int64 {
		eng := sim.NewEngine()
		disk := iosim.New(rt.Sim(eng), iosim.Config{Bandwidth: 150e6, SeekLatency: 20 * time.Microsecond})
		cat := storage.NewCatalog()
		tb, _ := cat.CreateTable("t", storage.Schema{{Name: "a", Type: storage.Int64, Width: 8}})
		d := storage.NewColumnData()
		d.I64[0] = make([]int64, 200_000)
		snap, _ := tb.Master().Append(d)
		pool := buffer.NewPool(rt.Sim(eng), disk, buffer.NewLRU(), snap.TotalBytes(nil)/4)
		ctx := &Ctx{RT: rt.Sim(eng), Pool: pool, ReadAheadTuples: 8192}
		reg := NewAttachRegistry()
		wg := eng.NewWaitGroup()
		scan := func(delay sim.Duration) {
			defer wg.Done()
			eng.Sleep(delay)
			var op Operator
			if attach {
				op = &AttachScan{Ctx: ctx, Snap: snap, Cols: []int{0}, Registry: reg}
			} else {
				op = &Scan{Ctx: ctx, Snap: snap, Cols: []int{0}, Ranges: []RIDRange{{Lo: 0, Hi: 200_000}}}
			}
			op.Open()
			for b := op.Next(); b != nil; b = op.Next() {
				eng.Sleep(100 * time.Microsecond)
			}
			op.Close()
		}
		wg.Add(2)
		eng.Go("s1", func() { scan(0) })
		// The second scan trails beyond the LRU window (pool = 1/4 of the
		// table), so independent scans re-read everything while attaching
		// shares the leader's I/O for the rest of the table.
		eng.Go("s2", func() { scan(12 * time.Millisecond) })
		eng.Go("driver", func() { wg.Wait() })
		eng.Run()
		return pool.Stats().BytesLoaded
	}
	independent := run(false)
	attached := run(true)
	if attached >= independent {
		t.Fatalf("attach I/O %d >= independent I/O %d", attached, independent)
	}
}

func TestAttachScanWithPDT(t *testing.T) {
	e := newEnv(t, 6000, false)
	reg := NewAttachRegistry()
	p := pdt.New(e.snap.Table().Schema, 6000)
	p.DeleteAt(17)
	p.InsertAt(40, pdt.Row{pdt.IntVal(-2), pdt.FloatVal(0), pdt.StrVal("Y")})
	e.run(func() {
		res := Collect(&AttachScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Registry: reg, PDT: p})
		if int64(res.N) != p.NumTuples() {
			t.Fatalf("N = %d, want %d", res.N, p.NumTuples())
		}
		got := append([]int64{}, res.Vecs[0].I64...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if got[0] != -2 {
			t.Error("insert missing")
		}
	})
}

func TestAttachScanRequiresRegistry(t *testing.T) {
	e := newEnv(t, 100, false)
	panicked := false
	e.run(func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		op := &AttachScan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}}
		op.Open()
	})
	if !panicked {
		t.Fatal("expected panic")
	}
}
