package exec

import "repro/internal/rt"

// QueryCtx is the per-query lifecycle handle (see rt.QueryCtx): a
// runtime-agnostic cancel signal with an optional deadline and a
// cancellation cause, threaded from admission down to the device queue.
// Operators check it at vector boundaries and at every blocking wait, so
// a cancelled query stops consuming CPU, buffer memory and disk turns
// promptly instead of running to completion.
type QueryCtx = rt.QueryCtx

// Cancellation causes, re-exported for plan-building callers.
const (
	CauseNone             = rt.CauseNone
	CauseClientCancel     = rt.CauseClientCancel
	CauseDeadlineExceeded = rt.CauseDeadlineExceeded
	CauseAdmissionTimeout = rt.CauseAdmissionTimeout
)

// NewQueryCtx returns a live lifecycle handle on the runtime's clock.
func NewQueryCtx(r rt.Runtime) *QueryCtx { return rt.NewQueryCtx(r) }

// WithQuery returns a shallow copy of the context bound to the given
// query lifecycle. The engine wiring (pool, ABM, CPU, workers) is
// shared; only the lifecycle differs, so one environment serves many
// concurrent queries each with its own cancel scope.
func (c *Ctx) WithQuery(q *QueryCtx) *Ctx {
	cp := *c
	cp.Query = q
	return &cp
}
