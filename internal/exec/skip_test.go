package exec

import (
	"math/rand"
	"testing"

	"repro/internal/pdt"
)

// coveredBy reports whether rid falls inside one of the ranges.
func coveredBy(ranges []RIDRange, rid int64) bool {
	for _, r := range ranges {
		if rid >= r.Lo && rid < r.Hi {
			return true
		}
	}
	return false
}

// TestPruneDeltaWidenedSoundAndActive: pruning over uncheckpointed
// deltas must keep every RID whose merged value matches the predicate
// (soundness) while still discarding provably-excluded stable blocks
// (the pre-refactor behavior was a full-scan fallback).
func TestPruneDeltaWidenedSoundAndActive(t *testing.T) {
	const n = 1000
	e := newEnv(t, n, false)
	e.ctx.Zones = NewZoneMaps()
	e.ctx.Zones.Build(e.snap, 0, 100)
	e.ctx.Skip = &SkipStats{}
	pred := &ScanPredicate{Col: 0, Lo: 200, Hi: 299}

	p := pdt.New(e.snap.Table().Schema, n)
	// A mod far outside the predicate's blocks moves a tuple INTO range:
	// its block must come back in.
	p.ModifyAt(950, 0, pdt.IntVal(250))
	// A mod taking a tuple OUT of range: keeping its block stays sound.
	p.ModifyAt(210, 0, pdt.IntVal(-1))
	// An in-range insert in an otherwise prunable region, and an
	// out-of-range insert that must not resurrect its region.
	p.InsertAt(600, pdt.Row{pdt.IntVal(222), pdt.FloatVal(0), pdt.StrVal("Z")})
	p.InsertAt(0, pdt.Row{pdt.IntVal(5000), pdt.FloatVal(0), pdt.StrVal("Z")})
	// Deletes shift every later RID by one.
	p.DeleteAt(3)

	total := p.NumTuples()
	got := e.ctx.pruneScanRanges(e.snap, []RIDRange{{0, total}}, pred, p)

	img := p.Image(e.snap).I64[0]
	var matches, kept int64
	for rid, v := range img {
		if v >= pred.Lo && v <= pred.Hi {
			matches++
			if !coveredBy(got, int64(rid)) {
				t.Fatalf("matching rid %d (value %d) pruned away; ranges %v", rid, v, got)
			}
		}
	}
	for _, r := range got {
		kept += r.Hi - r.Lo
	}
	if matches == 0 {
		t.Fatal("fixture has no matches")
	}
	if kept >= total {
		t.Fatalf("pruning inactive under deltas: kept %d of %d", kept, total)
	}
	req, skipped := e.ctx.Skip.Counts()
	if req != total || skipped != total-kept {
		t.Fatalf("skip counters %d/%d, want %d/%d", skipped, req, total-kept, total)
	}
}

// TestPruneDeltaRandomized cross-checks delta-widened pruning against
// the materialized image over random update batches and predicate
// windows: no matching tuple may ever be pruned.
func TestPruneDeltaRandomized(t *testing.T) {
	const n = 2000
	e := newEnv(t, n, false)
	e.ctx.Zones = NewZoneMaps()
	e.ctx.Zones.Build(e.snap, 0, 128)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		p := pdt.New(e.snap.Table().Schema, n)
		for i := 0; i < 30; i++ {
			rid := rng.Int63n(p.NumTuples())
			switch rng.Intn(3) {
			case 0:
				p.InsertAt(rid, pdt.Row{pdt.IntVal(rng.Int63n(2 * n)), pdt.FloatVal(0), pdt.StrVal("x")})
			case 1:
				p.DeleteAt(rid)
			case 2:
				p.ModifyAt(rid, 0, pdt.IntVal(rng.Int63n(2*n)))
			}
		}
		lo := rng.Int63n(n)
		pred := &ScanPredicate{Col: 0, Lo: lo, Hi: lo + rng.Int63n(300)}
		total := p.NumTuples()
		got := e.ctx.pruneScanRanges(e.snap, []RIDRange{{0, total}}, pred, p)
		for rid, v := range p.Image(e.snap).I64[0] {
			if v >= pred.Lo && v <= pred.Hi && !coveredBy(got, int64(rid)) {
				t.Fatalf("iter %d: matching rid %d (value %d) pruned; pred [%d,%d]",
					iter, rid, v, pred.Lo, pred.Hi)
			}
		}
		// Ranges must be sorted, non-overlapping, in bounds.
		for i, r := range got {
			if r.Lo >= r.Hi || r.Lo < 0 || r.Hi > total {
				t.Fatalf("iter %d: bad range %v", iter, r)
			}
			if i > 0 && got[i-1].Hi > r.Lo {
				t.Fatalf("iter %d: overlapping ranges %v", iter, got)
			}
		}
	}
}

// TestZoneMapsDropEvictsRetiredSnapshot: dropping a snapshot removes
// every column index registered for it — and only those — reporting
// which columns to rebuild.
func TestZoneMapsDropEvictsRetiredSnapshot(t *testing.T) {
	a := newEnv(t, 100, false)
	b := newEnv(t, 100, false)
	z := NewZoneMaps()
	z.Build(a.snap, 0, 50)
	z.Build(a.snap, 1, 50)
	z.Build(b.snap, 0, 50)
	if z.Len() != 3 {
		t.Fatalf("len = %d", z.Len())
	}
	cols := z.Drop(a.snap)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Fatalf("dropped cols %v, want [0 1]", cols)
	}
	if z.Lookup(a.snap, 0) != nil || z.Lookup(a.snap, 1) != nil {
		t.Fatal("retired snapshot still resolves")
	}
	if z.Lookup(b.snap, 0) == nil || z.Len() != 1 {
		t.Fatal("live snapshot was evicted")
	}
	if got := z.Drop(a.snap); got != nil {
		t.Fatalf("double drop returned %v", got)
	}
}
