package exec

import (
	"repro/internal/storage"
)

// OrderedAggr aggregates an input that is already sorted (clustered) on
// the group columns, emitting each group as soon as its run ends. This
// is the kind of plan §2.3 describes as requiring in-order data
// delivery: it works above a Scan or an in-order CScan, but silently
// produces wrong results over out-of-order chunk delivery — which is
// exactly why the CScan operator grew an in-order mode. The test suite
// demonstrates both directions.
type OrderedAggr struct {
	Child  Op
	Groups []int
	Aggs   []AggSpec

	out      *Batch
	curKeyI  []int64
	curKeyS  []string
	haveCur  bool
	sums     []float64
	isums    []int64
	n        int64
	childEOF bool
	closed   bool
}

// Schema implements Operator: group columns then aggregates (AggSum and
// AggCount only; ordered aggregation is used for distributive plans).
func (a *OrderedAggr) Schema() []storage.ColumnType {
	child := a.Child.Schema()
	var out []storage.ColumnType
	for _, g := range a.Groups {
		out = append(out, child[g])
	}
	for _, spec := range a.Aggs {
		if spec.Kind == AggCount {
			out = append(out, storage.Int64)
		} else {
			out = append(out, child[spec.Col])
		}
	}
	return out
}

// Open implements Operator.
func (a *OrderedAggr) Open() {
	a.Child.Open()
	a.out = NewBatch(a.Schema())
	a.sums = make([]float64, len(a.Aggs))
	a.isums = make([]int64, len(a.Aggs))
}

// Next implements Operator.
func (a *OrderedAggr) Next() *Batch {
	a.out.Reset()
	child := a.Child.Schema()
	for a.out.N < VectorSize {
		if a.childEOF {
			if a.haveCur {
				a.emit(child)
				a.haveCur = false
			}
			break
		}
		in := a.Child.Next()
		if in == nil {
			a.childEOF = true
			continue
		}
		for i := 0; i < in.N; i++ {
			if !a.haveCur || !a.sameGroup(in, i, child) {
				if a.haveCur {
					a.emit(child)
				}
				a.startGroup(in, i, child)
			}
			a.accumulate(in, i, child)
		}
	}
	if a.out.N == 0 {
		return nil
	}
	return a.out
}

// sameGroup reports whether row i of in belongs to the current group.
func (a *OrderedAggr) sameGroup(in *Batch, i int, child []storage.ColumnType) bool {
	for gi, g := range a.Groups {
		switch child[g] {
		case storage.Int64:
			if in.Vecs[g].I64[i] != a.curKeyI[gi] {
				return false
			}
		case storage.String:
			if in.Vecs[g].Str[i] != a.curKeyS[gi] {
				return false
			}
		default:
			panic("exec: OrderedAggr float group keys unsupported")
		}
	}
	return true
}

func (a *OrderedAggr) startGroup(in *Batch, i int, child []storage.ColumnType) {
	a.haveCur = true
	a.curKeyI = a.curKeyI[:0]
	a.curKeyS = a.curKeyS[:0]
	for _, g := range a.Groups {
		switch child[g] {
		case storage.Int64:
			a.curKeyI = append(a.curKeyI, in.Vecs[g].I64[i])
			a.curKeyS = append(a.curKeyS, "")
		case storage.String:
			a.curKeyI = append(a.curKeyI, 0)
			a.curKeyS = append(a.curKeyS, in.Vecs[g].Str[i])
		}
	}
	for si := range a.Aggs {
		a.sums[si] = 0
		a.isums[si] = 0
	}
	a.n = 0
}

func (a *OrderedAggr) accumulate(in *Batch, i int, child []storage.ColumnType) {
	a.n++
	for si, spec := range a.Aggs {
		if spec.Kind == AggCount {
			continue
		}
		switch child[spec.Col] {
		case storage.Int64:
			a.isums[si] += in.Vecs[spec.Col].I64[i]
		case storage.Float64:
			a.sums[si] += in.Vecs[spec.Col].F64[i]
		}
	}
}

func (a *OrderedAggr) emit(child []storage.ColumnType) {
	col := 0
	for gi, g := range a.Groups {
		switch child[g] {
		case storage.Int64:
			a.out.Vecs[col].I64 = append(a.out.Vecs[col].I64, a.curKeyI[gi])
		case storage.String:
			a.out.Vecs[col].Str = append(a.out.Vecs[col].Str, a.curKeyS[gi])
		}
		col++
	}
	for si, spec := range a.Aggs {
		v := a.out.Vecs[col]
		switch {
		case spec.Kind == AggCount:
			v.I64 = append(v.I64, a.n)
		case v.T == storage.Int64:
			v.I64 = append(v.I64, a.isums[si])
		default:
			v.F64 = append(v.F64, a.sums[si])
		}
		col++
	}
	a.out.N++
}

// Close implements Operator. Idempotent: a second Close does not reach
// the child.
func (a *OrderedAggr) Close() {
	if a.closed {
		return
	}
	a.closed = true
	a.Child.Close()
}
