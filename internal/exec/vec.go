// Package exec implements a vectorized query execution engine in the
// style of X100/Vectorwise: operators pull fixed-size batches of column
// vectors, scans read columnar pages through the buffer manager (Scan) or
// receive chunks from the Active Buffer Manager (CScan), and intra-query
// parallelism uses Exchange operators with static range partitioning
// (§2.2, Equation 1).
//
// Execution happens inside the virtual-time simulation: operators charge
// per-tuple CPU cost against a shared CPU resource, and page misses block
// on the simulated disk, so query latency reflects both I/O and CPU as in
// the paper's experiments.
package exec

import (
	"fmt"

	"repro/internal/storage"
)

// VectorSize is the number of tuples per batch.
const VectorSize = 1024

// Vec is a typed column vector.
type Vec struct {
	T   storage.ColumnType
	I64 []int64
	F64 []float64
	Str []string
}

// NewVec allocates a vector of the given type with capacity VectorSize.
func NewVec(t storage.ColumnType) *Vec {
	v := &Vec{T: t}
	switch t {
	case storage.Int64:
		v.I64 = make([]int64, 0, VectorSize)
	case storage.Float64:
		v.F64 = make([]float64, 0, VectorSize)
	case storage.String:
		v.Str = make([]string, 0, VectorSize)
	}
	return v
}

// Len returns the number of values.
func (v *Vec) Len() int {
	switch v.T {
	case storage.Int64:
		return len(v.I64)
	case storage.Float64:
		return len(v.F64)
	default:
		return len(v.Str)
	}
}

// Reset truncates the vector to zero length.
func (v *Vec) Reset() {
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// AppendFrom copies value i of src onto the end of v.
func (v *Vec) AppendFrom(src *Vec, i int) {
	switch v.T {
	case storage.Int64:
		v.I64 = append(v.I64, src.I64[i])
	case storage.Float64:
		v.F64 = append(v.F64, src.F64[i])
	case storage.String:
		v.Str = append(v.Str, src.Str[i])
	}
}

// Batch is a set of equal-length vectors.
type Batch struct {
	N    int
	Vecs []*Vec
}

// NewBatch allocates a batch with the given column types.
func NewBatch(types []storage.ColumnType) *Batch {
	b := &Batch{Vecs: make([]*Vec, len(types))}
	for i, t := range types {
		b.Vecs[i] = NewVec(t)
	}
	return b
}

// Reset truncates all vectors.
func (b *Batch) Reset() {
	b.N = 0
	for _, v := range b.Vecs {
		v.Reset()
	}
}

// Types returns the column types of the batch.
func (b *Batch) Types() []storage.ColumnType {
	out := make([]storage.ColumnType, len(b.Vecs))
	for i, v := range b.Vecs {
		out[i] = v.T
	}
	return out
}

// Operator is the pull-based iterator every physical operator implements.
// Next returns nil at end of stream. The returned batch is owned by the
// operator and valid until the following Next call.
type Operator interface {
	// Open prepares the operator (registers scans, spawns workers).
	Open()
	// Next returns the next batch or nil.
	Next() *Batch
	// Close releases resources; must be called exactly once after Open.
	Close()
	// Schema returns the output column types.
	Schema() []storage.ColumnType
}

// Drain runs op to completion and returns the total tuple count (utility
// for tests and benchmarks).
func Drain(op Operator) int64 {
	op.Open()
	defer op.Close()
	var n int64
	for b := op.Next(); b != nil; b = op.Next() {
		n += int64(b.N)
	}
	return n
}

// Collect materializes the full result (for small results in tests).
func Collect(op Operator) *Batch {
	op.Open()
	defer op.Close()
	out := NewBatch(op.Schema())
	for b := op.Next(); b != nil; b = op.Next() {
		for i := 0; i < b.N; i++ {
			for c := range out.Vecs {
				out.Vecs[c].AppendFrom(b.Vecs[c], i)
			}
		}
		out.N += b.N
	}
	return out
}

func typeCheck(want, got storage.ColumnType, what string) {
	if want != got {
		panic(fmt.Sprintf("exec: %s: type %v, want %v", what, got, want))
	}
}
