package exec

import (
	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/pbm"
	"repro/internal/rt"
	"repro/internal/sim"
)

// CPU models a fixed number of cores: operators charge work bursts that
// occupy one core for their duration, so more threads than cores contend,
// producing the CPU-bound plateaus of the paper's high-bandwidth
// configurations. On the real runtime the semaphore is a real one and the
// burst is a wall-clock sleep, so the model prices CPU work identically
// in both modes.
type CPU struct {
	r   rt.Runtime
	res rt.Resource
}

// NewCPU creates a CPU with the given core count.
func NewCPU(r rt.Runtime, cores int) *CPU {
	return &CPU{r: r, res: r.NewResource(cores)}
}

// Work occupies one core for d.
func (c *CPU) Work(d sim.Duration) {
	if d <= 0 {
		return
	}
	c.res.Acquire()
	c.r.Sleep(d)
	c.res.Release()
}

// Ctx carries the execution environment shared by a plan's operators.
type Ctx struct {
	// RT is the execution runtime: the deterministic simulator or the
	// real-threaded wall-clock runtime.
	RT rt.Runtime
	// CPU is the core model; nil disables CPU cost.
	CPU *CPU
	// PerTupleCPU is the virtual CPU cost charged per tuple produced by a
	// scan (the dominant cost in the modeled workloads).
	PerTupleCPU sim.Duration
	// Pool is the traditional buffer pool used by Scan operators.
	Pool *buffer.Pool
	// PBM, when non-nil, is the Pool's policy surface and scans register
	// with it: a single *pbm.PBM for an unsharded pool, a *pbm.Group
	// fanning out to one instance per shard otherwise. Leave nil (not a
	// typed-nil pointer) when the pool runs a non-PBM policy.
	PBM pbm.Registry
	// ABM, when non-nil, serves CScan operators.
	ABM *abm.ABM
	// ReadAheadTuples is the per-column read-ahead window of the Scan
	// operator, in tuples.
	ReadAheadTuples int64
	// StripeRowBlocks, when > 0, deepens the effective read-ahead window
	// to at least this many blocks' worth of tuples — device-aware sizing
	// set to one full stripe row (Devices × StripeChunk) of the backing
	// array, so a single scan's read batch can land a piece on every
	// spindle instead of draining one. Zero keeps the historical window.
	StripeRowBlocks int
	// Zones, when non-nil, holds the per-(snapshot, column) MinMax
	// indexes predicate scans prune their ranges through.
	Zones *ZoneMaps
	// Skip, when non-nil, accumulates the run's zone-map pruning
	// counters (tuples requested by predicate scans vs tuples skipped).
	Skip *SkipStats
	// Workers, when non-nil, is the bounded worker pool XChg submits its
	// subplan producers to (real runtime; sized by the core count). Nil
	// means one cooperative process per subplan (sim runtime).
	Workers *rt.WorkerPool
	// Query is the lifecycle handle of the query this plan executes (see
	// WithQuery); nil means the query can never be cancelled and every
	// operator runs its historical, check-free path.
	Query *QueryCtx
}

// work charges d against the context's CPU model, if any.
func (c *Ctx) work(d sim.Duration) {
	if c.CPU != nil {
		c.CPU.Work(d)
	}
}
