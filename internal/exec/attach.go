package exec

import (
	"repro/internal/pdt"
	"repro/internal/storage"
)

// AttachScan implements the classic "circular scan"/attach policy that
// §1 and §6 of the paper describe as the industry's first response to
// concurrent scans (Microsoft SQLServer's circular scans, RedBrick):
// an incoming full scan attaches to the position of an already ongoing
// scan over the same table, consumes to the end, and wraps around to
// cover the part it skipped. That maximizes shared locality without any
// buffer-manager changes, but — unlike Cooperative Scans — it cannot
// reorder around cached regions, cannot serve range scans, and produces
// out-of-order output.
//
// A small per-table registry (AttachRegistry) tracks active scan
// positions; it is deliberately dumb, matching the lineage.
type AttachScan struct {
	Ctx  *Ctx
	Snap *storage.Snapshot
	Cols []int
	// PDT is the flattened delta layer; nil means RID == SID.
	PDT *pdt.PDT
	// Registry coordinates attachment across concurrent scans of the
	// same table.
	Registry *AttachRegistry

	start  int64 // SID the scan attached at
	inner  *Scan
	phase  int // 0 = [start,end), 1 = [0,start), 2 = done
	opened bool
	handle *attachHandle
}

// AttachRegistry tracks the positions of active attach scans per table
// version so newcomers can attach to the furthest-along scan.
type AttachRegistry struct {
	active map[*storage.Snapshot][]*attachHandle
}

type attachHandle struct {
	pos int64
}

// NewAttachRegistry creates an empty registry.
func NewAttachRegistry() *AttachRegistry {
	return &AttachRegistry{active: make(map[*storage.Snapshot][]*attachHandle)}
}

// attach picks the most advanced active scan's position (or 0) and
// registers a new handle there.
func (r *AttachRegistry) attach(snap *storage.Snapshot) *attachHandle {
	best := int64(0)
	for _, h := range r.active[snap] {
		if h.pos > best {
			best = h.pos
		}
	}
	h := &attachHandle{pos: best}
	r.active[snap] = append(r.active[snap], h)
	return h
}

func (r *AttachRegistry) detach(snap *storage.Snapshot, h *attachHandle) {
	hs := r.active[snap]
	for i, x := range hs {
		if x == h {
			r.active[snap] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}

// Schema implements Operator.
func (s *AttachScan) Schema() []storage.ColumnType {
	out := make([]storage.ColumnType, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = s.Snap.Table().Schema[c].Type
	}
	return out
}

// Open implements Operator: attach at the furthest active position.
func (s *AttachScan) Open() {
	if s.opened {
		panic("exec: AttachScan reopened")
	}
	s.opened = true
	if s.Registry == nil {
		panic("exec: AttachScan requires a registry")
	}
	s.handle = s.Registry.attach(s.Snap)
	s.start = s.handle.pos
	s.inner = s.segmentScan(s.start, s.Snap.NumTuples())
	if s.inner != nil {
		s.inner.Open()
	} else {
		s.phase = 1
		s.openWrap()
	}
}

func (s *AttachScan) openWrap() {
	s.inner = s.segmentScan(0, s.start)
	if s.inner != nil {
		s.inner.Open()
	} else {
		s.phase = 2
	}
}

// segmentScan builds an in-order scan of SIDs [lo,hi), translated
// through the PDT like CScan chunks (SIDtoRIDlow tiling).
func (s *AttachScan) segmentScan(lo, hi int64) *Scan {
	if lo >= hi {
		return nil
	}
	rLo, rHi := lo, hi
	if s.PDT != nil {
		rLo = s.PDT.SIDtoRIDlow(lo)
		rHi = s.PDT.SIDtoRIDlow(hi)
	}
	if rLo >= rHi {
		return nil
	}
	return &Scan{Ctx: s.Ctx, Snap: s.Snap, Cols: s.Cols, Ranges: []RIDRange{{Lo: rLo, Hi: rHi}}, PDT: s.PDT}
}

// Next implements Operator.
func (s *AttachScan) Next() *Batch {
	for {
		if s.Ctx.Query.Cancelled() {
			return nil // Close releases the inner scan and the registry handle
		}
		if s.phase == 2 || s.inner == nil {
			return nil
		}
		b := s.inner.Next()
		if b != nil {
			// Track position for newcomers: consumed stable tuples map
			// to a SID cursor (approximate under deltas, exact without).
			if s.phase == 0 {
				s.handle.pos = s.start + s.inner.consumed
			}
			return b
		}
		s.inner.Close()
		s.inner = nil
		if s.phase == 0 {
			s.phase = 1
			s.openWrap()
			continue
		}
		s.phase = 2
	}
}

// Close implements Operator.
func (s *AttachScan) Close() {
	if s.inner != nil {
		s.inner.Close()
		s.inner = nil
	}
	if s.handle != nil {
		s.Registry.detach(s.Snap, s.handle)
		s.handle = nil
	}
}

var _ Operator = (*AttachScan)(nil)
