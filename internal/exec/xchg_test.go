package exec

import (
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestXChgMergesAllPartitions(t *testing.T) {
	e := newEnv(t, 6000, false)
	e.run(func() {
		parts := make([]func() Op, 0, 3)
		for _, r := range PartitionRange(0, 6000, 3) {
			r := r
			parts = append(parts, func() Op {
				return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}}
			})
		}
		n := Drain(&XChg{Ctx: e.ctx, Parts: parts})
		if n != 6000 {
			t.Fatalf("merged %d tuples, want 6000", n)
		}
	})
}

func TestXChgBackpressure(t *testing.T) {
	// A slow consumer must not let producers run unboundedly ahead: the
	// queue stays within QueueCap*len(parts).
	e := newEnv(t, 8000, false)
	e.run(func() {
		parts := make([]func() Op, 0, 2)
		for _, r := range PartitionRange(0, 8000, 2) {
			r := r
			parts = append(parts, func() Op {
				return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}}
			})
		}
		x := &XChg{Ctx: e.ctx, Parts: parts, QueueCap: 2}
		x.Open()
		maxQueue := 0
		for b := x.Next(); b != nil; b = x.Next() {
			e.eng.Sleep(time.Millisecond) // slow consumer
			if len(x.queue) > maxQueue {
				maxQueue = len(x.queue)
			}
		}
		x.Close()
		if maxQueue > 2*len(parts) {
			t.Fatalf("queue grew to %d batches (cap %d)", maxQueue, 2*len(parts))
		}
	})
}

func TestXChgEarlyCloseDrainsWorkers(t *testing.T) {
	e := newEnv(t, 8000, false)
	e.run(func() {
		parts := make([]func() Op, 0, 2)
		for _, r := range PartitionRange(0, 8000, 2) {
			r := r
			parts = append(parts, func() Op {
				return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0}, Ranges: []RIDRange{r}}
			})
		}
		x := &XChg{Ctx: e.ctx, Parts: parts, QueueCap: 1}
		x.Open()
		if b := x.Next(); b == nil {
			t.Fatal("no batch")
		}
		// Abandon the rest; Close must let both workers terminate or the
		// engine would panic with a deadlock at Run's end.
		x.Close()
	})
}

func TestXChgSchemaFromParts(t *testing.T) {
	e := newEnv(t, 100, false)
	x := &XChg{Ctx: e.ctx, Parts: []func() Op{func() Op {
		return &Scan{Ctx: e.ctx, Snap: e.snap, Cols: []int{0, 2}, Ranges: []RIDRange{{0, 100}}}
	}}}
	got := x.Schema()
	if len(got) != 2 || got[0] != storage.Int64 || got[1] != storage.String {
		t.Fatalf("schema = %v", got)
	}
	// Consume the probe plan's resources by running the XChg to
	// completion (Schema() pre-built one part).
	e.run(func() { _ = Drain(x) })
}

func TestCPUWorkZeroIsFree(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(rt.Sim(eng), 1)
	eng.Go("w", func() {
		cpu.Work(0)
		if eng.Now() != 0 {
			t.Error("zero work advanced the clock")
		}
	})
	eng.Run()
}
