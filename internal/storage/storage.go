// Package storage implements the columnar stable-storage layer of the
// simulated analytical engine: typed columns split into fixed-size pages,
// immutable snapshots built from page-reference arrays, bulk appends with
// snapshot isolation, commit/conflict rules and checkpointing — the
// substrate §2.1 of the paper integrates Cooperative Scans with.
//
// Tuples in stable storage are addressed by SID (Stable ID), a dense
// 0-based sequence per table snapshot. Pages are immutable once created;
// an Append creates new pages and a new snapshot sharing all previous
// pages, so concurrently-running transactions see snapshots with a common
// page prefix (Figures 5 and 6 of the paper). A checkpoint rewrites the
// table into entirely fresh pages and bumps the table version (Figure 7).
package storage

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/iosim"
)

// PageSize is the fixed logical page size in bytes. Columns with a small
// compressed width pack many more tuples per page than wide columns, which
// is the columnar complication the paper highlights: one chunk of tuples
// maps to many pages for wide columns and a fraction of a page for narrow
// ones.
const PageSize = 16 * 1024

// ColumnType enumerates the supported column value types.
type ColumnType int

const (
	Int64 ColumnType = iota
	Float64
	String
)

func (t ColumnType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	}
	return fmt.Sprintf("ColumnType(%d)", int(t))
}

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Type ColumnType
	// Width is the simulated on-disk byte width per tuple after
	// compression. It determines tuples-per-page and hence the I/O volume
	// a scan of this column generates.
	Width int
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PageID uniquely identifies a page within a Catalog.
type PageID int64

// Page is an immutable unit of columnar storage. Exactly one of the typed
// slices is non-nil, holding Tuples values for SIDs
// [FirstSID, FirstSID+Tuples).
type Page struct {
	ID       PageID
	Block    iosim.BlockID // physical home; consecutive for pages created together
	Col      int           // column index within the table schema
	FirstSID int64
	Tuples   int
	Bytes    int64 // simulated on-disk size

	I64 []int64
	F64 []float64
	Str []string
}

// LastSID returns the SID one past the final tuple on the page.
func (p *Page) LastSID() int64 { return p.FirstSID + int64(p.Tuples) }

// Catalog owns tables and allocates page and snapshot identifiers. It is
// the unit of a simulated database instance; all identifier allocation is
// deterministic in creation order.
type Catalog struct {
	nextPage  PageID
	nextBlock iosim.BlockID
	nextSnap  int64
	tables    map[string]*Table
	order     []string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns all tables in creation order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// Table is a named relation. Its committed state is the master snapshot.
type Table struct {
	cat    *Catalog
	Name   string
	Schema Schema

	// mu guards master. Snapshots are immutable, but the pointer to the
	// committed one moves: a long-lived HTAP server checkpoints online
	// while concurrent scans resolve the current master, and publishing
	// the fresh snapshot under the lock is what makes its (plainly
	// written) fields visible to them.
	mu     sync.RWMutex
	master *Snapshot
}

// CreateTable registers an empty table with the given schema. The initial
// master snapshot has zero tuples.
func (c *Catalog) CreateTable(name string, schema Schema) (*Table, error) {
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	if len(schema) == 0 {
		return nil, errors.New("storage: empty schema")
	}
	for _, col := range schema {
		if col.Width <= 0 || col.Width > PageSize {
			return nil, fmt.Errorf("storage: column %q has invalid width %d", col.Name, col.Width)
		}
	}
	t := &Table{cat: c, Name: name, Schema: schema}
	t.master = &Snapshot{
		table:   t,
		id:      c.allocSnap(),
		version: 1,
		cols:    make([][]*Page, len(schema)),
	}
	c.tables[name] = t
	c.order = append(c.order, name)
	return t, nil
}

func (c *Catalog) allocSnap() int64 {
	c.nextSnap++
	return c.nextSnap
}

// Master returns the current committed snapshot.
func (t *Table) Master() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.master
}

// Snapshot is an immutable view of a table: one page-reference array per
// column (the paper's storage-level snapshot for bulk appends). Snapshots
// derived by Append share a prefix of pages with their base.
type Snapshot struct {
	table   *Table
	id      int64
	version int // bumped by checkpoints; snapshots of different versions share no pages
	base    *Snapshot
	cols    [][]*Page
	tuples  int64
}

// Table returns the snapshot's table.
func (s *Snapshot) Table() *Table { return s.table }

// ID returns the catalog-unique snapshot identifier.
func (s *Snapshot) ID() int64 { return s.id }

// Version returns the table version (checkpoint generation).
func (s *Snapshot) Version() int { return s.version }

// NumTuples returns the stable tuple count.
func (s *Snapshot) NumTuples() int64 { return s.tuples }

// Pages returns the page-reference array of column col. The caller must
// not modify it.
func (s *Snapshot) Pages(col int) []*Page { return s.cols[col] }

// ColumnData carries append input: one typed slice per column of the
// table schema, all the same length.
type ColumnData struct {
	I64 map[int][]int64
	F64 map[int][]float64
	Str map[int][]string
}

// NewColumnData returns an empty ColumnData.
func NewColumnData() *ColumnData {
	return &ColumnData{
		I64: make(map[int][]int64),
		F64: make(map[int][]float64),
		Str: make(map[int][]string),
	}
}

func (d *ColumnData) lenFor(schema Schema) (int, error) {
	n := -1
	check := func(col int, l int) error {
		if n == -1 {
			n = l
		}
		if l != n {
			return fmt.Errorf("storage: column %d has %d values, want %d", col, l, n)
		}
		return nil
	}
	for i, def := range schema {
		var l int
		var ok bool
		switch def.Type {
		case Int64:
			_, ok = d.I64[i]
			l = len(d.I64[i])
		case Float64:
			_, ok = d.F64[i]
			l = len(d.F64[i])
		case String:
			_, ok = d.Str[i]
			l = len(d.Str[i])
		}
		if !ok {
			return 0, fmt.Errorf("storage: missing data for column %d (%s)", i, def.Name)
		}
		if err := check(i, l); err != nil {
			return 0, err
		}
	}
	if n < 0 {
		n = 0
	}
	return n, nil
}

// Append builds a new snapshot that extends s with the given rows. Shared
// prefix pages are reused by reference; only the appended tail allocates
// new pages. The returned snapshot is uncommitted (transaction-local)
// until Commit.
func (s *Snapshot) Append(data *ColumnData) (*Snapshot, error) {
	schema := s.table.Schema
	n, err := data.lenFor(schema)
	if err != nil {
		return nil, err
	}
	ns := &Snapshot{
		table:   s.table,
		id:      s.table.cat.allocSnap(),
		version: s.version,
		base:    s.forkBase(),
		cols:    make([][]*Page, len(schema)),
		tuples:  s.tuples + int64(n),
	}
	for i, def := range schema {
		ns.cols[i] = append(ns.cols[i], s.cols[i]...)
		start := s.tuples
		perPage := PageSize / def.Width
		for off := 0; off < n; off += perPage {
			cnt := n - off
			if cnt > perPage {
				cnt = perPage
			}
			p := &Page{
				ID:       s.table.cat.allocPage(),
				Block:    s.table.cat.allocBlock(),
				Col:      i,
				FirstSID: start + int64(off),
				Tuples:   cnt,
				Bytes:    int64(cnt * def.Width),
			}
			switch def.Type {
			case Int64:
				p.I64 = data.I64[i][off : off+cnt : off+cnt]
			case Float64:
				p.F64 = data.F64[i][off : off+cnt : off+cnt]
			case String:
				p.Str = data.Str[i][off : off+cnt : off+cnt]
			}
			ns.cols[i] = append(ns.cols[i], p)
		}
	}
	return ns, nil
}

// forkBase returns the conflict-check anchor for a snapshot derived from
// s: forking from the committed master anchors at the master itself,
// while appending to an uncommitted snapshot stays anchored at the
// transaction's original fork point.
func (s *Snapshot) forkBase() *Snapshot {
	if s.table.Master() == s {
		return s
	}
	if s.base != nil {
		return s.base
	}
	return s
}

// ErrConflict is returned by Commit when another transaction committed an
// append to the same table first (§2.1: only one of the concurrent
// appending transactions may commit; the others abort).
var ErrConflict = errors.New("storage: write-write conflict: base snapshot is no longer master")

// Commit installs s as the table's master snapshot. It fails with
// ErrConflict if the master moved since the snapshot chain was forked.
func (s *Snapshot) Commit() error {
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.master == s {
		return nil
	}
	if s.base != t.master {
		return ErrConflict
	}
	t.master = s
	return nil
}

func (c *Catalog) allocPage() PageID {
	c.nextPage++
	return c.nextPage
}

func (c *Catalog) allocBlock() iosim.BlockID {
	c.nextBlock++
	return c.nextBlock
}

// Checkpoint replaces the table contents with data in entirely new pages
// and a bumped version, committing immediately as the new master (the
// paper's PDT checkpoint, Figure 7: old and new versions share no pages).
func (t *Table) Checkpoint(data *ColumnData) (*Snapshot, error) {
	n, err := data.lenFor(t.Schema)
	if err != nil {
		return nil, err
	}
	empty := &Snapshot{
		table:   t,
		id:      t.cat.allocSnap(),
		version: t.Master().version + 1,
		cols:    make([][]*Page, len(t.Schema)),
	}
	ns, err := empty.Append(data)
	if err != nil {
		return nil, err
	}
	ns.base = nil
	_ = n
	t.mu.Lock()
	t.master = ns
	t.mu.Unlock()
	return ns, nil
}

// PagesInRange returns the pages of column col overlapping SID range
// [lo, hi). Pages are returned in SID order.
func (s *Snapshot) PagesInRange(col int, lo, hi int64) []*Page {
	pages := s.cols[col]
	if lo >= hi || len(pages) == 0 {
		return nil
	}
	// Binary search for the first page whose LastSID > lo.
	i, j := 0, len(pages)
	for i < j {
		m := (i + j) / 2
		if pages[m].LastSID() <= lo {
			i = m + 1
		} else {
			j = m
		}
	}
	var out []*Page
	for ; i < len(pages) && pages[i].FirstSID < hi; i++ {
		out = append(out, pages[i])
	}
	return out
}

// SharedPrefixPages returns, per column, the number of leading pages s and
// o have in common. Snapshots of different table versions share nothing.
func (s *Snapshot) SharedPrefixPages(o *Snapshot) []int {
	out := make([]int, len(s.cols))
	if s.table != o.table || s.version != o.version {
		return out
	}
	for c := range s.cols {
		n := len(s.cols[c])
		if len(o.cols[c]) < n {
			n = len(o.cols[c])
		}
		k := 0
		for k < n && s.cols[c][k] == o.cols[c][k] {
			k++
		}
		out[c] = k
	}
	return out
}

// SharedPrefixTuples returns the largest SID bound t such that all pages
// covering SIDs [0, t) in every column are shared between s and o.
func (s *Snapshot) SharedPrefixTuples(o *Snapshot) int64 {
	if s.table != o.table || s.version != o.version {
		return 0
	}
	prefix := s.SharedPrefixPages(o)
	bound := s.tuples
	if o.tuples < bound {
		bound = o.tuples
	}
	for c, k := range prefix {
		var covered int64
		if k > 0 {
			covered = s.cols[c][k-1].LastSID()
		}
		if covered < bound {
			bound = covered
		}
	}
	if bound < 0 {
		bound = 0
	}
	return bound
}

// ReadInt64 copies column col values for SIDs [lo, hi) into dst, which
// must have capacity hi-lo. It reads directly from page memory and is
// intended for tests and data-generation paths that bypass the buffer
// pool.
func (s *Snapshot) ReadInt64(col int, lo, hi int64, dst []int64) []int64 {
	dst = dst[:0]
	for _, p := range s.PagesInRange(col, lo, hi) {
		a, b := clip(p, lo, hi)
		dst = append(dst, p.I64[a:b]...)
	}
	return dst
}

// ReadFloat64 is ReadInt64 for float64 columns.
func (s *Snapshot) ReadFloat64(col int, lo, hi int64, dst []float64) []float64 {
	dst = dst[:0]
	for _, p := range s.PagesInRange(col, lo, hi) {
		a, b := clip(p, lo, hi)
		dst = append(dst, p.F64[a:b]...)
	}
	return dst
}

// ReadString is ReadInt64 for string columns.
func (s *Snapshot) ReadString(col int, lo, hi int64, dst []string) []string {
	dst = dst[:0]
	for _, p := range s.PagesInRange(col, lo, hi) {
		a, b := clip(p, lo, hi)
		dst = append(dst, p.Str[a:b]...)
	}
	return dst
}

// BlockMinMax summarizes an int64 column into per-block minimum/maximum
// pairs, blockTuples tuples per block (the last block may be short). It
// reads page memory directly — no buffer pool, no modeled I/O — the way
// Vectorwise maintains MinMax indexes during load; minmax.Build is the
// intended caller.
func (s *Snapshot) BlockMinMax(col int, blockTuples int64) (mins, maxs []int64) {
	if blockTuples <= 0 || s.tuples == 0 {
		return nil, nil
	}
	nBlocks := (s.tuples + blockTuples - 1) / blockTuples
	mins = make([]int64, 0, nBlocks)
	maxs = make([]int64, 0, nBlocks)
	for _, p := range s.cols[col] {
		for i, v := range p.I64 {
			if (p.FirstSID+int64(i))%blockTuples == 0 {
				mins = append(mins, v)
				maxs = append(maxs, v)
				continue
			}
			b := len(mins) - 1
			if v < mins[b] {
				mins[b] = v
			}
			if v > maxs[b] {
				maxs[b] = v
			}
		}
	}
	return mins, maxs
}

func clip(p *Page, lo, hi int64) (int, int) {
	a, b := int64(0), int64(p.Tuples)
	if lo > p.FirstSID {
		a = lo - p.FirstSID
	}
	if hi < p.LastSID() {
		b = hi - p.FirstSID
	}
	return int(a), int(b)
}

// TotalBytes returns the simulated on-disk size of the given columns
// (all columns when cols is nil).
func (s *Snapshot) TotalBytes(cols []int) int64 {
	if cols == nil {
		cols = make([]int, len(s.cols))
		for i := range cols {
			cols[i] = i
		}
	}
	var total int64
	for _, c := range cols {
		for _, p := range s.cols[c] {
			total += p.Bytes
		}
	}
	return total
}
