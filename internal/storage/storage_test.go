package storage

import (
	"testing"
	"testing/quick"
)

func twoColSchema() Schema {
	return Schema{
		{Name: "a", Type: Int64, Width: 8},
		{Name: "b", Type: String, Width: 1},
	}
}

func dataN(n int, base int64) *ColumnData {
	d := NewColumnData()
	a := make([]int64, n)
	b := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = base + int64(i)
		b[i] = "x"
	}
	d.I64[0] = a
	d.Str[1] = b
	return d
}

func TestCreateTable(t *testing.T) {
	c := NewCatalog()
	tb, err := c.CreateTable("t", twoColSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Master().NumTuples() != 0 {
		t.Fatal("new table not empty")
	}
	if _, err := c.CreateTable("t", twoColSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := c.CreateTable("u", Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := c.CreateTable("v", Schema{{Name: "a", Type: Int64, Width: 0}}); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestAppendAndRead(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s1, err := tb.Master().Append(dataN(5000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumTuples() != 5000 {
		t.Fatalf("tuples = %d", s1.NumTuples())
	}
	got := s1.ReadInt64(0, 100, 110, nil)
	for i, v := range got {
		if v != int64(100+i) {
			t.Fatalf("ReadInt64[%d] = %d", i, v)
		}
	}
	strs := s1.ReadString(1, 0, 3, nil)
	if len(strs) != 3 || strs[0] != "x" {
		t.Fatalf("ReadString = %v", strs)
	}
}

func TestPageGeometryPerWidth(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s1, _ := tb.Master().Append(dataN(5000, 0))
	// Width 8: 2048 tuples/page => 3 pages for 5000 tuples.
	if got := len(s1.Pages(0)); got != 3 {
		t.Fatalf("wide column pages = %d, want 3", got)
	}
	// Width 1: 16384 tuples/page => 1 page.
	if got := len(s1.Pages(1)); got != 1 {
		t.Fatalf("narrow column pages = %d, want 1", got)
	}
	if s1.Pages(0)[0].Tuples != 2048 || s1.Pages(0)[2].Tuples != 5000-2*2048 {
		t.Fatalf("page tuple counts wrong: %d %d", s1.Pages(0)[0].Tuples, s1.Pages(0)[2].Tuples)
	}
}

func TestAppendSharesPrefixPages(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s1, _ := tb.Master().Append(dataN(5000, 0))
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	s2, _ := s1.Append(dataN(1000, 5000))
	prefix := s2.SharedPrefixPages(s1)
	if prefix[0] != 3 || prefix[1] != 1 {
		t.Fatalf("prefix = %v, want [3 1]", prefix)
	}
	// The appended values read back correctly across the page boundary.
	got := s2.ReadInt64(0, 4995, 5005, nil)
	for i, v := range got {
		if v != int64(4995+i) {
			t.Fatalf("boundary read[%d] = %d", i, v)
		}
	}
}

// TestCommitConflict reproduces the paper's §2.1 rule (Figures 5/6): of two
// transactions appending from the same master, only the first commit
// succeeds; the second conflicts.
func TestCommitConflict(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	base, _ := tb.Master().Append(dataN(4000, 0))
	if err := base.Commit(); err != nil {
		t.Fatal(err)
	}
	t1, _ := tb.Master().Append(dataN(100, 4000)) // T1's local snapshot
	t2, _ := tb.Master().Append(dataN(200, 4000)) // T2's local snapshot
	if err := t2.Commit(); err != nil {
		t.Fatalf("T2 commit: %v", err)
	}
	if err := t1.Commit(); err != ErrConflict {
		t.Fatalf("T1 commit err = %v, want ErrConflict", err)
	}
	if tb.Master() != t2 {
		t.Fatal("master is not T2's snapshot")
	}
}

// TestSharedPrefixAcrossCommit models Figure 6: T3/T4 fork from the new
// master after T2 commits; their snapshots share the full committed prefix.
func TestSharedPrefixAcrossCommit(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s, _ := tb.Master().Append(dataN(4000, 0))
	_ = s.Commit()
	t2, _ := tb.Master().Append(dataN(3000, 4000))
	_ = t2.Commit()
	t3, _ := tb.Master().Append(dataN(10, 7000))
	t4, _ := tb.Master().Append(dataN(20, 7000))
	shared := t3.SharedPrefixTuples(t4)
	if shared != 7000 {
		t.Fatalf("shared prefix tuples = %d, want 7000", shared)
	}
}

func TestCheckpointNewVersionSharesNothing(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s1, _ := tb.Master().Append(dataN(3000, 0))
	_ = s1.Commit()
	s2, err := tb.Checkpoint(dataN(3100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version() != s1.Version()+1 {
		t.Fatalf("version = %d, want %d", s2.Version(), s1.Version()+1)
	}
	prefix := s2.SharedPrefixPages(s1)
	for _, k := range prefix {
		if k != 0 {
			t.Fatalf("checkpointed snapshot shares pages: %v", prefix)
		}
	}
	if tb.Master() != s2 {
		t.Fatal("checkpoint did not install master")
	}
	// Old snapshot still readable (readers on the old version keep working).
	if got := s1.ReadInt64(0, 0, 1, nil); got[0] != 0 {
		t.Fatal("old snapshot unreadable after checkpoint")
	}
}

func TestPagesInRange(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s, _ := tb.Master().Append(dataN(5000, 0))
	ps := s.PagesInRange(0, 2048, 2049) // exactly the second page
	if len(ps) != 1 || ps[0].FirstSID != 2048 {
		t.Fatalf("PagesInRange = %v", ps)
	}
	if got := s.PagesInRange(0, 0, 5000); len(got) != 3 {
		t.Fatalf("full range pages = %d", len(got))
	}
	if got := s.PagesInRange(0, 5000, 6000); got != nil {
		t.Fatalf("out of range pages = %v", got)
	}
	if got := s.PagesInRange(0, 10, 10); got != nil {
		t.Fatal("empty range returned pages")
	}
}

func TestTotalBytes(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s, _ := tb.Master().Append(dataN(1000, 0))
	if got := s.TotalBytes([]int{0}); got != 8000 {
		t.Fatalf("col0 bytes = %d, want 8000", got)
	}
	if got := s.TotalBytes(nil); got != 8000+1000 {
		t.Fatalf("all bytes = %d, want 9000", got)
	}
}

func TestBlocksSequentialWithinAppend(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s, _ := tb.Master().Append(dataN(10000, 0))
	ps := s.Pages(0)
	for i := 1; i < len(ps); i++ {
		if ps[i].Block != ps[i-1].Block+1 {
			t.Fatalf("blocks not consecutive: %d then %d", ps[i-1].Block, ps[i].Block)
		}
	}
}

func TestMissingColumnData(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	d := NewColumnData()
	d.I64[0] = []int64{1}
	if _, err := tb.Master().Append(d); err == nil {
		t.Fatal("missing column accepted")
	}
	d.Str[1] = []string{"a", "b"}
	if _, err := tb.Master().Append(d); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

// Property: for any sequence of appends, reading the full table returns
// exactly the concatenation of the appended values.
func TestPropertyAppendConcatenation(t *testing.T) {
	f := func(sizes []uint8) bool {
		c := NewCatalog()
		tb, _ := c.CreateTable("t", twoColSchema())
		var want []int64
		s := tb.Master()
		for _, raw := range sizes {
			n := int(raw)%700 + 1
			base := int64(len(want))
			var err error
			s, err = s.Append(dataN(n, base))
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				want = append(want, base+int64(i))
			}
		}
		got := s.ReadInt64(0, 0, int64(len(want)), nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return s.NumTuples() == int64(len(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: PagesInRange covers exactly the requested SIDs with no gaps or
// overlaps beyond page boundaries.
func TestPropertyPagesCoverRange(t *testing.T) {
	c := NewCatalog()
	tb, _ := c.CreateTable("t", twoColSchema())
	s, _ := tb.Master().Append(dataN(9000, 0))
	f := func(a, b uint16) bool {
		lo, hi := int64(a)%9000, int64(b)%9000
		if lo > hi {
			lo, hi = hi, lo
		}
		ps := s.PagesInRange(0, lo, hi)
		if lo == hi {
			return ps == nil
		}
		if len(ps) == 0 {
			return false
		}
		if ps[0].FirstSID > lo || ps[len(ps)-1].LastSID() < hi {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].FirstSID != ps[i-1].LastSID() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
