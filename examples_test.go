package scanshare

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndVet compiles and vets every examples/* main as a
// table-driven smoke check, so a refactor of the public surface cannot
// silently break the documented entry points. The examples run full
// simulations, so they are built, not executed, here; -short skips even
// the builds.
func TestExamplesBuildAndVet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			pkg := "./" + filepath.ToSlash(filepath.Join("examples", dir))
			build := exec.Command("go", "build", "-o", os.DevNull, pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", pkg, err, out)
			}
			vet := exec.Command("go", "vet", pkg)
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", pkg, err, out)
			}
		})
	}
}
