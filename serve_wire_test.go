package scanshare_test

import (
	"bytes"
	"encoding/json"
	"testing"

	scanshare "repro"
	"repro/wire"
)

// TestServeRowWireCompat: the wire schema must marshal byte-for-byte as
// the historical ServeRow JSON — consumers of old `scanbench -json`
// files parse new ones and vice versa.
func TestServeRowWireCompat(t *testing.T) {
	row := scanshare.ServeRow{
		Rate: 5, MPL: 8, Policy: "PBM", Shards: 8, Devices: 4,
		IOSched: "elevator", Tier: "tiered-rr", Admission: "wfq",
		Completed: 100, Rejected: 3, TimedOut: 2, Cancelled: 1,
		ToPct: 1.9, CanPct: 0.9, Throughput: 42.5,
		P50ms: 10, P95ms: 50, P99ms: 90, QWaitP95ms: 12.5, SLOPct: 97.5,
		IOMB: 123.4, Selectivity: 0.1, SkipPct: 88.8, ReadMBps: 456.7,
		Seeks: 9, Skew: 1.25,
		TenantP95ms: []float64{40, 60}, TenantSLOPct: []float64{99, 95},
	}
	a, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(row.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("wire.ServeStats JSON drifted from ServeRow:\n row: %s\nwire: %s", a, b)
	}

	// And the wire form round-trips into itself.
	var back wire.ServeStats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	c, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, c) {
		t.Errorf("wire.ServeStats does not round-trip:\n in: %s\nout: %s", b, c)
	}
}
