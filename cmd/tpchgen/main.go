// Command tpchgen generates the TPC-H-shaped database at a given scale
// factor and prints per-table statistics: rows, columns, simulated
// on-disk bytes and pages. Useful for sizing experiments (the buffer
// pool fractions in the paper are relative to the *accessed* volume,
// which tpchgen also reports for both §4 workloads).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.05, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	db := tpch.Generate(*sf, *seed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "table\trows\tcols\tbytes\tpages\n")
	var totalBytes int64
	for _, t := range db.Catalog.Tables() {
		snap := t.Master()
		bytes := snap.TotalBytes(nil)
		pages := 0
		for c := range t.Schema {
			pages += len(snap.Pages(c))
		}
		totalBytes += bytes
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", t.Name, snap.NumTuples(), len(t.Schema), bytes, pages)
	}
	fmt.Fprintf(w, "TOTAL\t\t\t%d\t\n", totalBytes)
	w.Flush()

	fmt.Printf("\nmicrobenchmark accessed volume (Q1/Q6 lineitem columns): %d bytes\n",
		workload.MicroAccessedBytes(db))
	fmt.Printf("TPC-H throughput accessed volume (22-query union):       %d bytes\n",
		workload.TPCHAccessedBytes(db))
}
