// Command scanserved serves the scan-sharing engine over HTTP: the
// admission scheduler is the front door, query lifecycles are wired to
// their connections (disconnect cancels, request deadlines kill), and
// results stream back as NDJSON through bounded send buffers so slow
// clients backpressure into the engine instead of ballooning memory.
//
// Usage:
//
//	scanserved [-addr :8080] [-policy pbm] [engine flags]
//
// Endpoints (see the wire package for the schema):
//
//	POST /v1/query   wire.QueryRequest -> NDJSON rows + wire.QueryResult
//	POST /v1/update  wire.UpdateRequest -> wire.UpdateResult (PDT write path)
//	GET  /v1/statz   wire.Statz (the live serve-table row)
//	GET  /healthz    "ok", or 503 "draining" during shutdown
//
// Engine knobs reuse scanbench's serving axes (-mpls, -shards,
// -devices, -iosched, -policies, ...; multi-valued axes contribute
// their first element). Client-mix axes (-rates, -selectivities,
// -deadline, -cancel, ...) belong to the load generator (cmd/scanload)
// and are rejected.
//
// On SIGTERM/SIGINT the server drains: admission refuses new queries
// with outcome "draining", running queries finish, the final stats
// snapshot is flushed to stdout as wire.Statz JSON, and the process
// exits 0 on a clean drain (1 if the drain timed out).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	scanshare "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		sf       = flag.Float64("sf", 0.05, "TPC-H scale factor of the generated data")
		seed     = flag.Int64("seed", 42, "generator seed")
		threads  = flag.Int("threads", 0, "override threads per query")
		cores    = flag.Int("cores", 0, "override worker-pool cores")
		cpu      = flag.Duration("cpu", 0, "override per-tuple CPU cost")
		policy   = flag.String("policy", "pbm", "buffer-management policy (lru, mru, clock, pbm, pbm-lru, cscans)")
		sendbuf  = flag.Int("sendbuf", 8, "per-query send buffer in batches; a full buffer backpressures the plan")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	)
	var axes scanshare.ServeAxes
	axes.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := axes.Parse(); err != nil {
		fmt.Fprintf(os.Stderr, "scanserved: %v\n", err)
		os.Exit(2)
	}
	// Client-mix axes shape the traffic, not the server.
	var clientSide []string
	for _, ax := range []struct {
		name string
		set  bool
	}{
		{"rates", len(axes.Rates) > 0},
		{"selectivities", len(axes.Selectivities) > 0},
		{"hotfrac", axes.HotFrac != 0},
		{"hotprob", axes.HotProb != 0},
		{"deadline", axes.Deadline != 0},
		{"cancel", axes.CancelRate != 0},
		{"writefrac", axes.WriteFrac != 0},
		{"json", axes.JSONOut != ""},
	} {
		if ax.set {
			clientSide = append(clientSide, ax.name)
		}
	}
	if len(clientSide) > 0 {
		fmt.Fprintf(os.Stderr, "scanserved: -%s are client-mix knobs; pass them to scanload\n", strings.Join(clientSide, "/-"))
		os.Exit(2)
	}
	pol, ok := scanshare.ParsePolicy(*policy)
	if !ok {
		names := make([]string, 0, 6)
		for _, p := range scanshare.BufferPolicies() {
			names = append(names, p.String())
		}
		fmt.Fprintf(os.Stderr, "scanserved: unknown policy %q (valid: %s)\n", *policy, strings.Join(names, ", "))
		os.Exit(2)
	}

	base := scanshare.Options{
		SF: *sf, Seed: *seed, ThreadsPerQuery: *threads, Cores: *cores,
		PerTupleCPU: *cpu, StripeChunk: axes.StripeChunk,
	}
	cfg := scanshare.NewServeEngineConfig(base, axes)
	cfg.Policy = pol

	fmt.Printf("scanserved: generating TPC-H sf=%g (clustered=%v)\n", *sf, axes.Clustered)
	db := scanshare.GenerateTPCHOpt(*sf, *seed, scanshare.TPCHGenOptions{ClusteredShipdate: axes.Clustered})
	srv := server.New(db, server.Config{Serve: cfg, SendBuf: *sendbuf, DrainTimeout: *drainFor})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanserved: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(), ConnContext: srv.ConnContext}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("scanserved: serving %d tuples on %s (policy=%s admission=%s mpl=%d tenants=%d)\n",
		srv.Engine().NumTuples(), ln.Addr(), pol, srv.Statz().Stats.Admission,
		srv.Engine().Config().MPL, srv.Engine().TenantCount())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "scanserved: %v\n", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Printf("scanserved: %v: draining\n", sig)
	}

	// Drain first — admission refuses ("draining") while running and
	// queued queries finish — then close the listener and flush stats.
	drainErr := srv.Drain(context.Background())
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shCtx)

	st := srv.Statz()
	b, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(b))
	srv.Close()
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "scanserved: drain: %v\n", drainErr)
		os.Exit(1)
	}
	if n := st.Stats.Completed + st.Stats.Rejected + st.Stats.TimedOut + st.Stats.Cancelled; n != st.Arrived {
		fmt.Fprintf(os.Stderr, "scanserved: stats do not reconcile: %d resolved != %d arrived\n", n, st.Arrived)
		os.Exit(1)
	}
	fmt.Printf("scanserved: drained clean (%d completed, %d drain-refused)\n", st.Stats.Completed, st.DrainRejected)
}
