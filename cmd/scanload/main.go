// Command scanload drives a running scanserved over HTTP with the same
// open-loop workload the in-process serving sweep generates: per-stream
// Poisson arrivals (sched.ExpInterarrival), the same skewed range draw
// (workload.RandRange), the same q1/q6 coin flip and selectivity-mix
// draw, and the same client-abandon discipline — draw for draw from the
// same per-stream seeds (seed + stream*6271) — so socket-path numbers
// line up with `scanbench -serve -real` rows.
//
// The generator learns the table size and tenant count from the
// server's /v1/statz, pins each stream to tenant = stream % tenants
// (connection pooling would otherwise scramble the fairness domains),
// fires each query in its own goroutine (open loop: a slow query does
// not hold back its stream's arrivals), and classifies outcomes from
// the wire protocol: the NDJSON trailer for admitted queries, the
// ErrorReply outcome for refused ones, transport errors as client
// cancels.
//
// With -writefrac, that fraction of each stream's queries become
// updates POSTed to /v1/update (insert/delete/modify in the sweep's
// default 1:1:2 mix, batch 1-4), admitted by the server through the
// same scheduler as reads.
//
// One knowing divergence from the in-process sweep: the client draws
// which selectivity a query wants from the mix, but the predicate
// window's position is drawn server-side (the zone-map domain lives
// there), so runs with -selectivities consume one fewer rng draw per
// query than RunServe does; update positions and dates are server-side
// draws the same way. Default runs match exactly.
//
// Server-shaping axes (-mpls, -shards, -policies, ...) belong to
// scanserved and are rejected here.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	scanshare "repro"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "scanserved base URL")
		streams = flag.Int("streams", 64, "concurrent client streams")
		queries = flag.Int("queries", 4, "queries per stream")
		seed    = flag.Int64("seed", 42, "per-stream rng seed base (matches scanbench)")
	)
	var axes scanshare.ServeAxes
	axes.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := axes.Parse(); err != nil {
		fmt.Fprintf(os.Stderr, "scanload: %v\n", err)
		os.Exit(2)
	}
	// Server-shaping axes configure scanserved, not the traffic.
	var serverSide []string
	for _, ax := range []struct {
		name string
		set  bool
	}{
		{"mpls", len(axes.MPLs) > 0},
		{"shards", len(axes.Shards) > 0},
		{"devices", len(axes.Devices) > 0},
		{"stripe", axes.StripeChunk > 0},
		{"iosched", len(axes.IOSchedulers) > 0},
		{"tiers", len(axes.Tiers) > 0},
		{"rowra", axes.StripeRowRA},
		{"ioprio", axes.IOPriority},
		{"policies", len(axes.AdmissionPolicies) > 0},
		{"tenants", axes.Tenants > 0},
		{"weights", len(axes.TenantWeights) > 0},
		{"queue", axes.QueueDepth != 0},
		{"clustered", axes.Clustered},
		{"ckptops", axes.CheckpointOps != 0},
	} {
		if ax.set {
			serverSide = append(serverSide, ax.name)
		}
	}
	if len(serverSide) > 0 {
		fmt.Fprintf(os.Stderr, "scanload: -%s shape the server; pass them to scanserved\n", strings.Join(serverSide, "/-"))
		os.Exit(2)
	}

	rate := workload.DefaultServeConfig().ArrivalRate
	if len(axes.Rates) > 0 {
		rate = axes.Rates[0]
	}
	slo := time.Duration(workload.DefaultServeConfig().SLO)
	if axes.SLO != 0 {
		slo = axes.SLO
	}
	percents := workload.DefaultMicroConfig().RangePercents
	mix := axes.Selectivities

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *streams}}
	st, err := fetchStatz(client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanload: %s: %v\n", *addr, err)
		os.Exit(1)
	}
	n := st.NumTuples
	tenants := st.Tenants
	if tenants < 1 {
		tenants = 1
	}
	fmt.Printf("scanload: %s serving %d tuples, %d tenants; %d streams x %d queries at %g q/s/stream\n",
		*addr, n, tenants, *streams, *queries, rate)

	agg := &aggregate{}
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < *streams; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The generator-side draw order is RunServe's stream loop,
			// draw for draw: gap, range percent, range, q1 coin,
			// selectivity mix, then lifecycle draws last.
			rng := rand.New(rand.NewSource(*seed + int64(s)*6271))
			tenant := s % tenants
			var qwg sync.WaitGroup
			for q := 0; q < *queries; q++ {
				time.Sleep(time.Duration(scanshare.ExpInterarrival(rng, rate)))
				pct := percents[rng.Intn(len(percents))]
				r := workload.RandRange(rng, n, pct, axes.HotFrac, axes.HotProb)
				useQ1 := rng.Intn(2) == 0
				sel := 0.0
				if len(mix) > 0 {
					sel = mix[0]
					if len(mix) > 1 {
						sel = mix[rng.Intn(len(mix))]
					}
				}
				doCancel := false
				var cancelAfter time.Duration
				if axes.CancelRate > 0 {
					doCancel = rng.Float64() < axes.CancelRate
					if doCancel {
						cancelAfter = time.Duration(rng.Float64() * float64(slo))
					}
				}
				// Write coin last, matching RunServe's draw order. The
				// kind/batch draws mirror the sweep's default update mix
				// (1:1:2 insert:delete:modify); positions and dates are
				// drawn server-side, like predicate windows.
				if axes.WriteFrac > 0 && rng.Float64() < axes.WriteFrac {
					kind := wire.KindModify
					switch c := rng.Float64(); {
					case c < 0.25:
						kind = wire.KindInsert
					case c < 0.5:
						kind = wire.KindDelete
					}
					ur := wire.UpdateRequest{
						Tenant: &tenant,
						Kind:   kind,
						Batch:  1 + rng.Intn(4),
					}
					if axes.Deadline > 0 {
						ur.Deadline = wire.Duration(axes.Deadline)
					}
					qwg.Add(1)
					go func() {
						defer qwg.Done()
						agg.recordWrite(issueUpdate(client, *addr, ur, doCancel, cancelAfter))
					}()
					continue
				}
				req := wire.QueryRequest{
					Tenant: &tenant,
					Kind:   wire.KindQ6,
					Lo:     r.Lo,
					Hi:     r.Hi,
				}
				if useQ1 {
					req.Kind = wire.KindQ1
				}
				if sel > 0 && sel < 1 {
					req.Selectivity = sel
				}
				if axes.Deadline > 0 {
					req.Deadline = wire.Duration(axes.Deadline)
				}
				qwg.Add(1)
				go func() {
					defer qwg.Done()
					agg.record(issue(client, *addr, req, doCancel, cancelAfter))
				}()
			}
			qwg.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg.mu.Lock()
	total := agg.completed + agg.rejected + agg.timedOut + agg.cancelled
	fmt.Printf("scanload: client   %d queries in %.2fs: completed=%d rejected=%d timedout=%d cancelled=%d rows=%d writes=%d applied=%d\n",
		total, elapsed.Seconds(), agg.completed, agg.rejected, agg.timedOut, agg.cancelled, agg.rows, agg.writes, agg.applied)
	fmt.Printf("scanload: client   thr=%.2f q/s  p50=%s p95=%s p99=%s\n",
		float64(agg.completed)/elapsed.Seconds(),
		time.Duration(scanshare.Percentile(agg.lats, 50)).Round(time.Millisecond),
		time.Duration(scanshare.Percentile(agg.lats, 95)).Round(time.Millisecond),
		time.Duration(scanshare.Percentile(agg.lats, 99)).Round(time.Millisecond))
	agg.mu.Unlock()

	final, err := fetchStatz(client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanload: final statz: %v\n", err)
		os.Exit(1)
	}
	row := final.Stats
	row.Rate = rate
	fmt.Printf("scanload: server   completed=%d rejected=%d timedout=%d cancelled=%d thr=%.2f q/s  wr=%d wrthr=%.2f q/s ckpts=%d mrg95=%.1fms  p50=%.1fms p95=%.1fms p99=%.1fms qwait95=%.1fms slo%%=%.1f\n",
		row.Completed, row.Rejected, row.TimedOut, row.Cancelled,
		row.Throughput, row.Writes, row.WrQps, row.Checkpoints, row.MergeP95ms,
		row.P50ms, row.P95ms, row.P99ms, row.QWaitP95ms, row.SLOPct)
	if axes.JSONOut != "" {
		b, err := json.MarshalIndent([]wire.ServeStats{row}, "", "  ")
		if err == nil {
			err = os.WriteFile(axes.JSONOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanload: -json: %v\n", err)
			os.Exit(1)
		}
	}
}

// aggregate accumulates per-query results across all streams.
type aggregate struct {
	mu        sync.Mutex
	completed int64
	rejected  int64
	timedOut  int64
	cancelled int64
	rows      int64
	writes    int64 // update queries completed (a subset of completed)
	applied   int64 // delta operations those updates committed
	lats      []sim.Duration
}

// record buckets one outcome the way the scheduler's stats do:
// refusals (rejected, draining) are Rejected, admission timeouts are
// TimedOut, and both abandon causes (client-cancel, deadline-exceeded)
// are Cancelled — so the client table reconciles against /v1/statz.
func (a *aggregate) record(r result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows += r.rows
	switch r.outcome {
	case wire.OutcomeOK:
		a.completed++
		a.lats = append(a.lats, sim.Duration(r.latency))
	case wire.OutcomeRejected, wire.OutcomeDraining:
		a.rejected++
	case wire.OutcomeAdmissionTimeout:
		a.timedOut++
	default:
		a.cancelled++
	}
}

// recordWrite buckets one update outcome into the same ledger as reads
// (the server's scheduler counts writes in Completed too), tracking the
// write-specific tallies alongside.
func (a *aggregate) recordWrite(r result) {
	a.record(r)
	if r.outcome == wire.OutcomeOK {
		a.mu.Lock()
		a.writes++
		a.applied += r.applied
		a.mu.Unlock()
	}
}

type result struct {
	outcome string
	latency time.Duration
	rows    int64
	applied int64
}

// issue posts one query and consumes its NDJSON stream: rows are
// counted, the object trailer carries the authoritative outcome. A
// doCancel query abandons its request cancelAfter after issue —
// mid-stream if already flowing — exactly like the sweep's canceller.
func issue(c *http.Client, base string, qr wire.QueryRequest, doCancel bool, cancelAfter time.Duration) result {
	start := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if doCancel {
		t := time.AfterFunc(cancelAfter, cancel)
		defer t.Stop()
	}
	body, err := json.Marshal(qr)
	if err != nil {
		return result{outcome: "encode-error"}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+wire.PathQuery, bytes.NewReader(body))
	if err != nil {
		return result{outcome: "request-error"}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return result{outcome: wire.OutcomeClientCancel, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er wire.ErrorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		out := er.Outcome
		if out == "" {
			out = fmt.Sprintf("http-%d", resp.StatusCode)
		}
		return result{outcome: out, latency: time.Since(start)}
	}
	br := bufio.NewReader(resp.Body)
	var rows int64
	var trailer wire.QueryResult
	sawTrailer := false
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			switch line[0] {
			case '[':
				rows++
			case '{':
				if json.Unmarshal(line, &trailer) == nil {
					sawTrailer = true
				}
			}
		}
		if err != nil {
			break
		}
	}
	lat := time.Since(start)
	if !sawTrailer {
		// Stream cut before the trailer: the abandon (ours or the
		// network's) is the outcome.
		return result{outcome: wire.OutcomeClientCancel, latency: lat, rows: rows}
	}
	return result{outcome: trailer.Outcome, latency: lat, rows: rows}
}

// issueUpdate posts one update query and decodes its UpdateResult. A
// doCancel update abandons its request cancelAfter after issue — if it
// is still queued at the server, the disconnect cancels it there.
func issueUpdate(c *http.Client, base string, ur wire.UpdateRequest, doCancel bool, cancelAfter time.Duration) result {
	start := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if doCancel {
		t := time.AfterFunc(cancelAfter, cancel)
		defer t.Stop()
	}
	body, err := json.Marshal(ur)
	if err != nil {
		return result{outcome: "encode-error"}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+wire.PathUpdate, bytes.NewReader(body))
	if err != nil {
		return result{outcome: "request-error"}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return result{outcome: wire.OutcomeClientCancel, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er wire.ErrorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		out := er.Outcome
		if out == "" {
			out = fmt.Sprintf("http-%d", resp.StatusCode)
		}
		return result{outcome: out, latency: time.Since(start)}
	}
	var res wire.UpdateResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		// Connection cut before the body: the abandon is the outcome.
		return result{outcome: wire.OutcomeClientCancel, latency: time.Since(start)}
	}
	out := res.Outcome
	if out == "" {
		out = wire.OutcomeOK
	}
	return result{outcome: out, latency: time.Since(start), applied: int64(res.Applied)}
}

// fetchStatz reads and decodes the server's /v1/statz snapshot.
func fetchStatz(c *http.Client, base string) (wire.Statz, error) {
	var st wire.Statz
	resp, err := c.Get(base + wire.PathStatz)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statz: http %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("statz: %v", err)
	}
	return st, nil
}
