// Command scanbench regenerates the tables and figures of the paper's
// evaluation (§4): Figures 11–16 (average stream time and total I/O
// volume under LRU, Cooperative Scans, PBM and OPT, sweeping buffer pool
// size, I/O bandwidth and stream count) and Figures 17–18 (sharing
// potential over time).
//
// Usage:
//
//	scanbench [flags] fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|all
//	scanbench [-real] -serve [flags]
//	scanbench [-real] -compare [flags]
//
// Output is an aligned text table per figure; pass -tsv for
// tab-separated output suitable for plotting.
//
// The -serve mode goes beyond the paper: it drives an open-loop,
// many-client serving scenario — Poisson arrivals on N concurrent
// streams mapped onto tenants, a bounded admission queue with a
// concurrency limit (MPL) and a pluggable admission policy (-policies
// fifo,sesf,wfq) — and sweeps arrival rate x MPL x buffer policy x pool
// shards x admission policy, reporting throughput, latency percentiles
// (p50/p95/p99, queue-wait split), and SLO attainment, overall and per
// tenant.
//
// The -compare mode runs one serving configuration twice — open loop and
// closed loop — over the identical query mix and prints the latency gap:
// the queueing delay that closed-loop benchmarks omit (coordinated
// omission).
//
// -real switches -serve and -compare from the deterministic simulator to
// the real-threaded runtime: streams are goroutines, latencies are wall
// -clock, and XChg subplans fan out on a worker pool sized by -cores.
// Figure targets always run on the simulator (reproducibility is the
// point of the figures), so -real rejects them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	scanshare "repro"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.05, "TPC-H scale factor of the generated data")
		seed    = flag.Int64("seed", 42, "workload and generator seed")
		streams = flag.Int("streams", 0, "override concurrent streams")
		queries = flag.Int("queries", 0, "override queries per stream")
		threads = flag.Int("threads", 0, "override threads per query")
		cores   = flag.Int("cores", 0, "override simulated cores")
		cpu     = flag.Duration("cpu", 0, "override per-tuple CPU cost")
		tsv     = flag.Bool("tsv", false, "emit tab-separated values")

		serve    = flag.Bool("serve", false, "run the open-loop serving sweep (arrival rate x MPL x policy x pool shards x devices x admission policy)")
		compare  = flag.Bool("compare", false, "run the closed-vs-open-loop comparison at one serving configuration")
		real     = flag.Bool("real", false, "run -serve/-compare on the real-threaded runtime (goroutines, wall-clock time) instead of the simulator")
		rates    = flag.String("rates", "", "serve: comma-separated per-stream arrival rates in queries/s (default 1,5,20); -compare uses the first")
		mpls     = flag.String("mpls", "", "serve: comma-separated MPL concurrency limits (default 8,32); -compare uses the first")
		shards   = flag.String("shards", "", "buffer-pool shard counts: a comma-separated axis for -serve (default 1,8); the first value overrides the figure experiments' single pool")
		devices  = flag.String("devices", "", "disk-array spindle counts: a comma-separated axis for -serve (default 1); the first value overrides the figure experiments' and -compare's single device")
		stripe   = flag.Int("stripe", 0, "disk-array stripe chunk in blocks (0 = default 16); meaningful with -devices > 1")
		iosched  = flag.String("iosched", "", "serve: comma-separated device queue disciplines (fifo, elevator; default fifo); elevator services each spindle's queue as a C-SCAN sweep")
		tiers    = flag.String("tiers", "", "serve: comma-separated array tierings (flat, tiered-rr, tiered-temp; default flat); tiered cells make the first half of the devices an SSD-like fast tier, tiered-temp places the hottest chunks there from a profiling pass")
		rowra    = flag.Bool("rowra", false, "serve: deepen scan read-ahead to one full stripe row on multi-device arrays (device-aware batch sizing)")
		ioprio   = flag.Bool("ioprio", false, "serve: thread the admission policy's signal (wfq weight / sesf cost) to the device queue as per-query I/O priority")
		hotfrac  = flag.Float64("hotfrac", 0, "serve: fraction of the table forming the hot region of a skewed query mix (0 = uniform)")
		hotprob  = flag.Float64("hotprob", 0, "serve: probability a query's range is drawn from the hot region (0 = uniform)")
		jsonOut  = flag.String("json", "", "serve: also write the sweep rows as JSON to this file (machine-readable benchmark output)")
		policies = flag.String("policies", "", "serve: comma-separated admission policies (fifo, sesf, wfq; default fifo); -compare uses the first")
		tenants  = flag.Int("tenants", 0, "serve/compare: number of tenants streams are mapped onto (default 4)")
		weights  = flag.String("weights", "", "serve/compare: comma-separated per-tenant wfq weights, index = tenant id (default all 1)")
		queue    = flag.Int("queue", 0, "serve/compare: admission queue depth (0 = default 64, negative = unbounded)")
		slo      = flag.Duration("slo", 0, "serve/compare: end-to-end latency SLO (default 250ms)")
		sels     = flag.String("selectivities", "", "serve: comma-separated predicate selectivities in (0,1] (default 1 = unrestricted scans); below 1 every query carries an l_shipdate window of that fraction of the date domain, pruned by the zone maps")
		cluster  = flag.Bool("clustered", false, "serve: generate lineitem sorted by l_shipdate so the zone maps have physical structure to prune against")
		deadline = flag.Duration("deadline", 0, "serve: per-query end-to-end deadline; queued queries past it are dropped (to%), executing ones killed at the next lifecycle check (0 = no deadlines)")
		cancel   = flag.Float64("cancel", 0, "serve: fraction of queries whose client cancels them mid-flight, 0..1 (can%); each cancel lands a uniform [0,SLO) delay after issue")
	)
	flag.Parse()
	rateAxis := parseAxis("rates", *rates, parseFloat64)
	mplAxis := parseAxis("mpls", *mpls, strconv.Atoi)
	shardAxis := parseAxis("shards", *shards, strconv.Atoi)
	deviceAxis := parseAxis("devices", *devices, strconv.Atoi)
	weightAxis := parseAxis("weights", *weights, parseFloat64)
	selAxis := parseAxis("selectivities", *sels, parseFloat64)
	for _, s := range selAxis {
		if s > 1 {
			fmt.Fprintf(os.Stderr, "scanbench: -selectivities: bad element %g: must be in (0,1]\n", s)
			os.Exit(2)
		}
	}
	policyAxis := parseAdmissionPolicies(*policies)
	if *cancel < 0 || *cancel > 1 {
		fmt.Fprintf(os.Stderr, "scanbench: -cancel: bad value %g: must be in [0,1]\n", *cancel)
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintf(os.Stderr, "scanbench: -deadline: bad value %v: must be positive (0 = disabled)\n", *deadline)
		os.Exit(2)
	}
	if *tenants < 0 {
		fmt.Fprintf(os.Stderr, "scanbench: -tenants: bad value %d: must be positive (0 = default)\n", *tenants)
		os.Exit(2)
	}
	if *stripe < 0 {
		fmt.Fprintf(os.Stderr, "scanbench: -stripe: bad value %d: must be positive (0 = default)\n", *stripe)
		os.Exit(2)
	}
	ioschedAxis := parseNameAxis("iosched", *iosched, "fifo", "elevator")
	tierAxis := parseNameAxis("tiers", *tiers, "flat", "tiered-rr", "tiered-temp")
	if *hotfrac < 0 || *hotfrac > 1 {
		fmt.Fprintf(os.Stderr, "scanbench: -hotfrac: bad value %g: must be in [0,1]\n", *hotfrac)
		os.Exit(2)
	}
	if *hotprob < 0 || *hotprob > 1 {
		fmt.Fprintf(os.Stderr, "scanbench: -hotprob: bad value %g: must be in [0,1]\n", *hotprob)
		os.Exit(2)
	}
	opts := scanshare.Options{
		SF: *sf, Seed: *seed, Streams: *streams, QueriesPerStream: *queries,
		ThreadsPerQuery: *threads, Cores: *cores, PerTupleCPU: *cpu,
		StripeChunk: *stripe,
	}
	if len(shardAxis) > 0 {
		opts.PoolShards = shardAxis[0]
	}
	if len(deviceAxis) > 0 {
		opts.Devices = deviceAxis[0]
	}
	if *serve && *compare {
		fmt.Fprintln(os.Stderr, "scanbench: -serve and -compare are mutually exclusive")
		os.Exit(2)
	}
	if *serve || *compare {
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "scanbench: -serve/-compare take no targets (got %q)\n", flag.Args())
			os.Exit(2)
		}
	}
	if *compare {
		if len(selAxis) > 0 || *cluster {
			fmt.Fprintln(os.Stderr, "scanbench: -selectivities/-clustered apply only to -serve")
			os.Exit(2)
		}
		if *deadline != 0 || *cancel != 0 {
			fmt.Fprintln(os.Stderr, "scanbench: -deadline/-cancel apply only to -serve")
			os.Exit(2)
		}
		if len(ioschedAxis) > 0 || len(tierAxis) > 0 || *rowra || *ioprio || *hotfrac != 0 || *hotprob != 0 || *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "scanbench: -iosched/-tiers/-rowra/-ioprio/-hotfrac/-hotprob/-json apply only to -serve")
			os.Exit(2)
		}
		co := scanshare.DefaultCompareOptions()
		co.Options = opts
		co.Options.PoolShards = 0
		co.Real = *real
		if len(rateAxis) > 0 {
			co.Rate = rateAxis[0]
		}
		if len(mplAxis) > 0 {
			co.MPL = mplAxis[0]
		}
		if len(shardAxis) > 0 {
			co.Shards = shardAxis[0]
		}
		if len(deviceAxis) > 0 {
			co.Devices = deviceAxis[0]
		}
		co.StripeChunk = *stripe
		if len(policyAxis) > 0 {
			co.Admission = policyAxis[0]
		}
		co.Tenants = *tenants
		co.TenantWeights = weightAxis
		co.QueueDepth = *queue
		co.SLO = *slo
		start := time.Now()
		printCompare(scanshare.Compare(co), *real, *tsv)
		fmt.Printf("# compare done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *serve {
		so := scanshare.ServeOptions{
			Options:           opts,
			Rates:             rateAxis,
			MPLs:              mplAxis,
			Shards:            shardAxis,
			Devices:           deviceAxis,
			StripeChunk:       *stripe,
			IOSchedulers:      ioschedAxis,
			Tiers:             tierAxis,
			StripeRowRA:       *rowra,
			IOPriority:        *ioprio,
			HotFrac:           *hotfrac,
			HotProb:           *hotprob,
			AdmissionPolicies: policyAxis,
			Tenants:           *tenants,
			TenantWeights:     weightAxis,
			Selectivities:     selAxis,
			Clustered:         *cluster,
			QueueDepth:        *queue,
			SLO:               *slo,
			Deadline:          *deadline,
			CancelRate:        *cancel,
			Real:              *real,
		}
		// The per-run overrides must not fight the sweep's own axes.
		so.Options.PoolShards = 0
		so.Options.Devices = 0
		start := time.Now()
		rows := scanshare.ServeSweep(so)
		printServe(rows, *real, *tsv)
		if *jsonOut != "" {
			writeServeJSON(*jsonOut, rows)
		}
		fmt.Printf("# serve done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *real {
		fmt.Fprintln(os.Stderr, "scanbench: -real applies only to -serve/-compare; the figure targets are defined by the deterministic simulation")
		os.Exit(2)
	}
	if len(rateAxis) > 0 || len(mplAxis) > 0 || len(policyAxis) > 0 || len(weightAxis) > 0 || *tenants != 0 {
		fmt.Fprintln(os.Stderr, "scanbench: -rates/-mpls/-policies/-weights/-tenants apply only to -serve/-compare")
		os.Exit(2)
	}
	if len(selAxis) > 0 || *cluster {
		fmt.Fprintln(os.Stderr, "scanbench: -selectivities/-clustered apply only to -serve")
		os.Exit(2)
	}
	if *deadline != 0 || *cancel != 0 {
		fmt.Fprintln(os.Stderr, "scanbench: -deadline/-cancel apply only to -serve")
		os.Exit(2)
	}
	if len(ioschedAxis) > 0 || len(tierAxis) > 0 || *rowra || *ioprio || *hotfrac != 0 || *hotprob != 0 || *jsonOut != "" {
		fmt.Fprintln(os.Stderr, "scanbench: -iosched/-tiers/-rowra/-ioprio/-hotfrac/-hotprob/-json apply only to -serve")
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: scanbench [flags] fig11..fig18|all  or  scanbench [-real] -serve|-compare [flags]")
		flag.Usage()
		os.Exit(2)
	}
	targets := flag.Args()
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation"}
	}
	// Non-default device configurations annotate the figure titles; the
	// default single-device output stays byte-identical to the historical
	// tables.
	figTitle := func(t string) string {
		if opts.Devices > 1 {
			if opts.StripeChunk > 0 {
				t += fmt.Sprintf(" [devices=%d stripe=%d]", opts.Devices, opts.StripeChunk)
			} else {
				t += fmt.Sprintf(" [devices=%d]", opts.Devices)
			}
		}
		return t
	}
	for _, target := range targets {
		start := time.Now()
		switch target {
		case "fig11":
			printSweep(figTitle("Figure 11: microbenchmark, varying buffer pool size"), "pool %%", scanshare.Fig11(opts), *tsv)
		case "fig12":
			printSweep(figTitle("Figure 12: microbenchmark, varying I/O bandwidth"), "MB/s", scanshare.Fig12(opts), *tsv)
		case "fig13":
			printSweep(figTitle("Figure 13: microbenchmark, varying number of streams"), "streams", scanshare.Fig13(opts), *tsv)
		case "fig14":
			printSweep(figTitle("Figure 14: TPC-H throughput, varying buffer pool size"), "pool %%", scanshare.Fig14(opts), *tsv)
		case "fig15":
			printSweep(figTitle("Figure 15: TPC-H throughput, varying I/O bandwidth"), "MB/s", scanshare.Fig15(opts), *tsv)
		case "fig16":
			printSweep(figTitle("Figure 16: TPC-H throughput, varying number of streams"), "streams", scanshare.Fig16(opts), *tsv)
		case "fig17":
			printSharing(figTitle("Figure 17: sharing potential, microbenchmark"), scanshare.Fig17(opts), *tsv)
		case "fig18":
			printSharing(figTitle("Figure 18: sharing potential, TPC-H throughput"), scanshare.Fig18(opts), *tsv)
		case "ablation":
			printAblation(scanshare.Ablation(opts), *tsv)
		default:
			fmt.Fprintf(os.Stderr, "unknown target %q\n", target)
			os.Exit(2)
		}
		fmt.Printf("# %s done in %v\n\n", target, time.Since(start).Round(time.Millisecond))
	}
}

// printSweep renders the two panels of a Figures-11..16-style plot: one
// series per policy for average stream time, one for total I/O.
func printSweep(title, xlabel string, rows []scanshare.SweepRow, tsv bool) {
	fmt.Printf("== %s ==\n", title)
	if tsv {
		fmt.Printf("x\tpolicy\tavg_stream_sec\tio_mb\n")
		for _, r := range rows {
			fmt.Printf("%g\t%s\t%.4f\t%.1f\n", r.X, r.Policy, r.AvgStreamSec, r.IOMB)
		}
		return
	}
	// Pivot: rows grouped by x, one column per policy.
	policies := []string{"LRU", "CScans", "PBM", "OPT"}
	xs := make([]float64, 0)
	seen := map[float64]bool{}
	cell := map[float64]map[string]scanshare.SweepRow{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
			cell[r.X] = map[string]scanshare.SweepRow{}
		}
		cell[r.X][r.Policy] = r
	}
	sort.Float64s(xs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "-- average stream time (s) --\n")
	fmt.Fprintf(w, "%s", xlabel)
	for _, p := range policies {
		if p == "OPT" {
			continue // OPT has no time series (I/O-only simulation, §4)
		}
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, p := range policies {
			if p == "OPT" {
				continue
			}
			fmt.Fprintf(w, "\t%.3f", cell[x][p].AvgStreamSec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "-- total I/O volume (MB) --\n")
	fmt.Fprintf(w, "%s", xlabel)
	for _, p := range policies {
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, p := range policies {
			fmt.Fprintf(w, "\t%.1f", cell[x][p].IOMB)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func printSharing(title string, rows []scanshare.SharingRow, tsv bool) {
	fmt.Printf("== %s ==\n", title)
	if tsv {
		fmt.Printf("time_sec\tmb_1scan\tmb_2scans\tmb_3scans\tmb_4plus\n")
		for _, r := range rows {
			fmt.Printf("%.4f\t%.1f\t%.1f\t%.1f\t%.1f\n", r.TimeSec, r.MB[0], r.MB[1], r.MB[2], r.MB[3])
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "time (s)\t1 scan\t2 scans\t3 scans\t>=4 scans\t(MB wanted by exactly k scans)")
	step := len(rows)/40 + 1 // cap terminal output at ~40 samples
	for i := 0; i < len(rows); i += step {
		r := rows[i]
		fmt.Fprintf(w, "%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n",
			r.TimeSec, r.MB[0], r.MB[1], r.MB[2], r.MB[3], bar(r.MB))
	}
	w.Flush()
}

func printAblation(rows []scanshare.AblationRow, tsv bool) {
	fmt.Println("== Ablation: every policy variant at the default microbenchmark point ==")
	if tsv {
		fmt.Printf("variant\tavg_stream_sec\tio_mb\n")
		for _, r := range rows {
			fmt.Printf("%s\t%.4f\t%.1f\n", r.Variant, r.AvgStreamSec, r.IOMB)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tavg stream (s)\ttotal I/O (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\n", r.Variant, r.AvgStreamSec, r.IOMB)
	}
	w.Flush()
}

// printServe renders the serving sweep: one row per (rate, MPL, policy,
// pool shards, devices, I/O scheduler, tiering, admission policy,
// selectivity) cell with
// throughput, latency percentiles, the lifecycle outcome shares (to% =
// deadline kills, can% = client cancels, as fractions of arrivals), SLO
// attainment, the per-tenant p95/SLO breakdown, the zone-map skip rate,
// and the achieved aggregate read bandwidth; shard counts, device counts, admission policies and
// selectivities of the same cell print adjacent so all four effects read
// off directly. CScan rows print "-" for shards (the ABM replaces the
// page pool).
func printServe(rows []scanshare.ServeRow, real, tsv bool) {
	fmt.Printf("== Serving sweep: open-loop arrivals, admission control, sharded pool, striped disk array (latencies in %s ms) ==\n", clockName(real))
	shardCol := func(r scanshare.ServeRow) string {
		if r.Shards <= 0 {
			return "-"
		}
		return strconv.Itoa(r.Shards)
	}
	if tsv {
		fmt.Printf("rate_qps\tmpl\tpolicy\tadmission\tpool_shards\tdevices\tiosched\ttier\tselectivity\tcompleted\trejected\ttimedout_pct\tcancelled_pct\tthroughput_qps\tp50_ms\tp95_ms\tp99_ms\tqwait_p95_ms\tslo_pct\ttenant_p95_ms\ttenant_slo_pct\tskip_pct\tio_mb\tread_mbps\tseeks\tskew\n")
		for _, r := range rows {
			fmt.Printf("%g\t%d\t%s\t%s\t%s\t%d\t%s\t%s\t%g\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\t%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\n",
				r.Rate, r.MPL, r.Policy, r.Admission, shardCol(r), r.Devices, r.IOSched, r.Tier, r.Selectivity, r.Completed, r.Rejected, r.ToPct, r.CanPct, r.Throughput,
				r.P50ms, r.P95ms, r.P99ms, r.QWaitP95ms, r.SLOPct,
				joinFloats(r.TenantP95ms, "%.3f"), joinFloats(r.TenantSLOPct, "%.1f"), r.SkipPct, r.IOMB, r.ReadMBps, r.Seeks, r.Skew)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate/stream\tMPL\tpolicy\tadmit\tshards\tdevs\tiosched\ttier\tsel\tdone\trej\tto%\tcan%\tthru (q/s)\tp50\tp95\tp99\tqwait p95\tSLO %\tp95/tenant\tSLO %/tenant\tskip%\tI/O MB\trd MB/s\tseeks\tskew")
	for _, r := range rows {
		fmt.Fprintf(w, "%g\t%d\t%s\t%s\t%s\t%d\t%s\t%s\t%g\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\n",
			r.Rate, r.MPL, r.Policy, r.Admission, shardCol(r), r.Devices, r.IOSched, r.Tier, r.Selectivity, r.Completed, r.Rejected, r.ToPct, r.CanPct, r.Throughput,
			r.P50ms, r.P95ms, r.P99ms, r.QWaitP95ms, r.SLOPct,
			joinFloats(r.TenantP95ms, "%.2f"), joinFloats(r.TenantSLOPct, "%.0f"), r.SkipPct, r.IOMB, r.ReadMBps, r.Seeks, r.Skew)
	}
	w.Flush()
}

// writeServeJSON writes the sweep rows to path as a JSON array, the
// machine-readable counterpart of the -tsv table (field names are the
// ServeRow Go names). CI archives it as a benchmark artifact.
func writeServeJSON(path string, rows []scanshare.ServeRow) {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanbench: -json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# wrote %d rows to %s\n", len(rows), path)
}

// joinFloats renders one compact comma-joined cell (index = tenant id)
// for the per-tenant table columns.
func joinFloats(vs []float64, format string) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf(format, v)
	}
	return strings.Join(parts, ",")
}

func clockName(real bool) string {
	if real {
		return "wall-clock"
	}
	return "virtual"
}

// printCompare renders the closed-vs-open-loop comparison: the same
// latency table for both disciplines plus the per-percentile gap — the
// queueing delay a closed-loop benchmark's latency report omits.
func printCompare(rep scanshare.CompareReport, real, tsv bool) {
	fmt.Printf("== Closed vs open loop: same query mix, same engine, two arrival disciplines (latencies in %s ms) ==\n", clockName(real))
	if tsv {
		fmt.Printf("loop\trate_qps\tmpl\tpolicy\tadmission\tpool_shards\tdevices\tcompleted\trejected\tthroughput_qps\tp50_ms\tp95_ms\tp99_ms\tqwait_p95_ms\tslo_pct\tio_mb\n")
		for _, e := range []struct {
			name string
			r    scanshare.ServeRow
		}{{"open", rep.Open}, {"closed", rep.Closed}} {
			fmt.Printf("%s\t%g\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\n",
				e.name, e.r.Rate, e.r.MPL, e.r.Policy, e.r.Admission, e.r.Shards, e.r.Devices, e.r.Completed, e.r.Rejected,
				e.r.Throughput, e.r.P50ms, e.r.P95ms, e.r.P99ms, e.r.QWaitP95ms, e.r.SLOPct, e.r.IOMB)
		}
		fmt.Printf("gap\t%g\t%d\t%s\t%s\t%d\t%d\t-\t-\t-\t%.3f\t%.3f\t%.3f\t-\t-\t-\n",
			rep.Open.Rate, rep.Open.MPL, rep.Open.Policy, rep.Open.Admission, rep.Open.Shards, rep.Open.Devices,
			rep.GapP50ms, rep.GapP95ms, rep.GapP99ms)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "loop\tdone\trej\tthru (q/s)\tp50\tp95\tp99\tqwait p95\tSLO %\tI/O MB")
	for _, e := range []struct {
		name string
		r    scanshare.ServeRow
	}{{"open", rep.Open}, {"closed", rep.Closed}} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\n",
			e.name, e.r.Completed, e.r.Rejected, e.r.Throughput,
			e.r.P50ms, e.r.P95ms, e.r.P99ms, e.r.QWaitP95ms, e.r.SLOPct, e.r.IOMB)
	}
	fmt.Fprintf(w, "gap\t\t\t\t%.2f\t%.2f\t%.2f\t\t\t\n", rep.GapP50ms, rep.GapP95ms, rep.GapP99ms)
	w.Flush()
	fmt.Println("# gap = open - closed latency: the queueing delay closed-loop measurement omits (coordinated omission)")
}

// parseAxis parses the comma-separated value of axis flag -name into
// positive values. Malformed or non-positive entries exit with an error
// naming the flag and the offending element; empty input yields nil.
// -rates, -mpls and -shards all go through here, so every axis flag
// reports mistakes the same way instead of each hand-rolling its own
// (historically inconsistent) validation.
func parseAxis[T int | float64](name, s string, parse func(string) (T, error)) []T {
	if s == "" {
		return nil
	}
	var out []T
	for _, f := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanbench: -%s: bad element %q: not a number\n", name, f)
			os.Exit(2)
		}
		if v <= 0 {
			fmt.Fprintf(os.Stderr, "scanbench: -%s: bad element %q: must be positive\n", name, f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseFloat64 adapts strconv.ParseFloat to parseAxis's single-argument
// shape.
func parseFloat64(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// parseNameAxis parses the comma-separated value of the enumerated axis
// flag -name, validating every element against the valid set so a typo
// fails with the menu instead of panicking mid-sweep. Empty input yields
// nil (the sweep's default). -iosched and -tiers go through here,
// matching parseAxis's error style.
func parseNameAxis(name, s string, valid ...string) []string {
	if s == "" {
		return nil
	}
	known := map[string]bool{}
	for _, v := range valid {
		known[v] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		v := strings.TrimSpace(f)
		if !known[v] {
			fmt.Fprintf(os.Stderr, "scanbench: -%s: bad element %q (valid: %s)\n",
				name, v, strings.Join(valid, ", "))
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseAdmissionPolicies parses the -policies axis, validating every
// name against the registered admission policies so a typo fails with
// the valid menu instead of panicking mid-sweep. Empty input yields nil
// (the sweep defaults to fifo).
func parseAdmissionPolicies(s string) []string {
	if s == "" {
		return nil
	}
	valid := scanshare.AdmissionPolicyNames()
	known := map[string]bool{}
	for _, name := range valid {
		known[name] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if !known[name] {
			fmt.Fprintf(os.Stderr, "scanbench: -policies: unknown admission policy %q (registered: %s)\n",
				name, strings.Join(valid, ", "))
			os.Exit(2)
		}
		out = append(out, name)
	}
	return out
}

// bar renders a tiny stacked area impression: one char per ~sixteenth of
// the max volume, '.'=1 scan, '+'=2-3 scans, '#'=4+.
func bar(mb [4]float64) string {
	total := mb[0] + mb[1] + mb[2] + mb[3]
	if total <= 0 {
		return ""
	}
	const width = 24
	n := func(v float64) int { return int(v / total * width) }
	return strings.Repeat("#", n(mb[3])) + strings.Repeat("+", n(mb[1]+mb[2])) + strings.Repeat(".", n(mb[0]))
}
