// Command scanbench regenerates the tables and figures of the paper's
// evaluation (§4): Figures 11–16 (average stream time and total I/O
// volume under LRU, Cooperative Scans, PBM and OPT, sweeping buffer pool
// size, I/O bandwidth and stream count) and Figures 17–18 (sharing
// potential over time).
//
// Usage:
//
//	scanbench [flags] fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|all
//	scanbench [-real] -serve [flags]
//	scanbench [-real] -compare [flags]
//
// Output is an aligned text table per figure; pass -tsv for
// tab-separated output suitable for plotting.
//
// The -serve mode goes beyond the paper: it drives an open-loop,
// many-client serving scenario — Poisson arrivals on N concurrent
// streams mapped onto tenants, a bounded admission queue with a
// concurrency limit (MPL) and a pluggable admission policy (-policies
// fifo,sesf,wfq) — and sweeps arrival rate x MPL x buffer policy x pool
// shards x admission policy, reporting throughput, latency percentiles
// (p50/p95/p99, queue-wait split), and SLO attainment, overall and per
// tenant.
//
// The -compare mode runs one serving configuration twice — open loop and
// closed loop — over the identical query mix and prints the latency gap:
// the queueing delay that closed-loop benchmarks omit (coordinated
// omission).
//
// -real switches -serve and -compare from the deterministic simulator to
// the real-threaded runtime: streams are goroutines, latencies are wall
// -clock, and XChg subplans fan out on a worker pool sized by -cores.
// Figure targets always run on the simulator (reproducibility is the
// point of the figures), so -real rejects them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	scanshare "repro"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.05, "TPC-H scale factor of the generated data")
		seed    = flag.Int64("seed", 42, "workload and generator seed")
		streams = flag.Int("streams", 0, "override concurrent streams")
		queries = flag.Int("queries", 0, "override queries per stream")
		threads = flag.Int("threads", 0, "override threads per query")
		cores   = flag.Int("cores", 0, "override simulated cores")
		cpu     = flag.Duration("cpu", 0, "override per-tuple CPU cost")
		tsv     = flag.Bool("tsv", false, "emit tab-separated values")

		serve   = flag.Bool("serve", false, "run the open-loop serving sweep (arrival rate x MPL x policy x pool shards x devices x admission policy)")
		compare = flag.Bool("compare", false, "run the closed-vs-open-loop comparison at one serving configuration")
		real    = flag.Bool("real", false, "run -serve/-compare on the real-threaded runtime (goroutines, wall-clock time) instead of the simulator")
	)
	// Every serving axis and knob (-rates, -mpls, -iosched, -deadline, ...)
	// is declared once in scanshare.ServeAxes — shared with cmd/scanserved
	// and cmd/scanload — instead of per-binary flag lists.
	var axes scanshare.ServeAxes
	axes.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := axes.Parse(); err != nil {
		fmt.Fprintf(os.Stderr, "scanbench: %v\n", err)
		os.Exit(2)
	}
	opts := scanshare.Options{
		SF: *sf, Seed: *seed, Streams: *streams, QueriesPerStream: *queries,
		ThreadsPerQuery: *threads, Cores: *cores, PerTupleCPU: *cpu,
		StripeChunk: axes.StripeChunk,
	}
	if len(axes.Shards) > 0 {
		opts.PoolShards = axes.Shards[0]
	}
	if len(axes.Devices) > 0 {
		opts.Devices = axes.Devices[0]
	}
	if *serve && *compare {
		fmt.Fprintln(os.Stderr, "scanbench: -serve and -compare are mutually exclusive")
		os.Exit(2)
	}
	if *serve || *compare {
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "scanbench: -serve/-compare take no targets (got %q)\n", flag.Args())
			os.Exit(2)
		}
	}
	if *compare {
		rejectAxes(axes.ServeOnly(), "-serve")
		co := scanshare.NewCompareOptions(opts, axes, *real)
		start := time.Now()
		printCompare(scanshare.Compare(co), *real, *tsv)
		fmt.Printf("# compare done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *serve {
		so := scanshare.NewServeOptions(opts, axes, *real)
		start := time.Now()
		rows := scanshare.ServeSweep(so)
		printServe(rows, *real, *tsv)
		if axes.JSONOut != "" {
			writeServeJSON(axes.JSONOut, rows)
		}
		fmt.Printf("# serve done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *real {
		fmt.Fprintln(os.Stderr, "scanbench: -real applies only to -serve/-compare; the figure targets are defined by the deterministic simulation")
		os.Exit(2)
	}
	rejectAxes(axes.ServeOnly(), "-serve")
	rejectAxes(axes.ServeOrCompareOnly(), "-serve/-compare")
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: scanbench [flags] fig11..fig18|all  or  scanbench [-real] -serve|-compare [flags]")
		flag.Usage()
		os.Exit(2)
	}
	targets := flag.Args()
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation"}
	}
	// Non-default device configurations annotate the figure titles; the
	// default single-device output stays byte-identical to the historical
	// tables.
	figTitle := func(t string) string {
		if opts.Devices > 1 {
			if opts.StripeChunk > 0 {
				t += fmt.Sprintf(" [devices=%d stripe=%d]", opts.Devices, opts.StripeChunk)
			} else {
				t += fmt.Sprintf(" [devices=%d]", opts.Devices)
			}
		}
		return t
	}
	for _, target := range targets {
		start := time.Now()
		switch target {
		case "fig11":
			printSweep(figTitle("Figure 11: microbenchmark, varying buffer pool size"), "pool %%", scanshare.Fig11(opts), *tsv)
		case "fig12":
			printSweep(figTitle("Figure 12: microbenchmark, varying I/O bandwidth"), "MB/s", scanshare.Fig12(opts), *tsv)
		case "fig13":
			printSweep(figTitle("Figure 13: microbenchmark, varying number of streams"), "streams", scanshare.Fig13(opts), *tsv)
		case "fig14":
			printSweep(figTitle("Figure 14: TPC-H throughput, varying buffer pool size"), "pool %%", scanshare.Fig14(opts), *tsv)
		case "fig15":
			printSweep(figTitle("Figure 15: TPC-H throughput, varying I/O bandwidth"), "MB/s", scanshare.Fig15(opts), *tsv)
		case "fig16":
			printSweep(figTitle("Figure 16: TPC-H throughput, varying number of streams"), "streams", scanshare.Fig16(opts), *tsv)
		case "fig17":
			printSharing(figTitle("Figure 17: sharing potential, microbenchmark"), scanshare.Fig17(opts), *tsv)
		case "fig18":
			printSharing(figTitle("Figure 18: sharing potential, TPC-H throughput"), scanshare.Fig18(opts), *tsv)
		case "ablation":
			printAblation(scanshare.Ablation(opts), *tsv)
		default:
			fmt.Fprintf(os.Stderr, "unknown target %q\n", target)
			os.Exit(2)
		}
		fmt.Printf("# %s done in %v\n\n", target, time.Since(start).Round(time.Millisecond))
	}
}

// printSweep renders the two panels of a Figures-11..16-style plot: one
// series per policy for average stream time, one for total I/O.
func printSweep(title, xlabel string, rows []scanshare.SweepRow, tsv bool) {
	fmt.Printf("== %s ==\n", title)
	if tsv {
		fmt.Printf("x\tpolicy\tavg_stream_sec\tio_mb\n")
		for _, r := range rows {
			fmt.Printf("%g\t%s\t%.4f\t%.1f\n", r.X, r.Policy, r.AvgStreamSec, r.IOMB)
		}
		return
	}
	// Pivot: rows grouped by x, one column per policy.
	policies := []string{"LRU", "CScans", "PBM", "OPT"}
	xs := make([]float64, 0)
	seen := map[float64]bool{}
	cell := map[float64]map[string]scanshare.SweepRow{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
			cell[r.X] = map[string]scanshare.SweepRow{}
		}
		cell[r.X][r.Policy] = r
	}
	sort.Float64s(xs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "-- average stream time (s) --\n")
	fmt.Fprintf(w, "%s", xlabel)
	for _, p := range policies {
		if p == "OPT" {
			continue // OPT has no time series (I/O-only simulation, §4)
		}
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, p := range policies {
			if p == "OPT" {
				continue
			}
			fmt.Fprintf(w, "\t%.3f", cell[x][p].AvgStreamSec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "-- total I/O volume (MB) --\n")
	fmt.Fprintf(w, "%s", xlabel)
	for _, p := range policies {
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, p := range policies {
			fmt.Fprintf(w, "\t%.1f", cell[x][p].IOMB)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func printSharing(title string, rows []scanshare.SharingRow, tsv bool) {
	fmt.Printf("== %s ==\n", title)
	if tsv {
		fmt.Printf("time_sec\tmb_1scan\tmb_2scans\tmb_3scans\tmb_4plus\n")
		for _, r := range rows {
			fmt.Printf("%.4f\t%.1f\t%.1f\t%.1f\t%.1f\n", r.TimeSec, r.MB[0], r.MB[1], r.MB[2], r.MB[3])
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "time (s)\t1 scan\t2 scans\t3 scans\t>=4 scans\t(MB wanted by exactly k scans)")
	step := len(rows)/40 + 1 // cap terminal output at ~40 samples
	for i := 0; i < len(rows); i += step {
		r := rows[i]
		fmt.Fprintf(w, "%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n",
			r.TimeSec, r.MB[0], r.MB[1], r.MB[2], r.MB[3], bar(r.MB))
	}
	w.Flush()
}

func printAblation(rows []scanshare.AblationRow, tsv bool) {
	fmt.Println("== Ablation: every policy variant at the default microbenchmark point ==")
	if tsv {
		fmt.Printf("variant\tavg_stream_sec\tio_mb\n")
		for _, r := range rows {
			fmt.Printf("%s\t%.4f\t%.1f\n", r.Variant, r.AvgStreamSec, r.IOMB)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tavg stream (s)\ttotal I/O (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\n", r.Variant, r.AvgStreamSec, r.IOMB)
	}
	w.Flush()
}

// printServe renders the serving sweep: one row per (rate, MPL, policy,
// pool shards, devices, I/O scheduler, tiering, admission policy,
// selectivity) cell with
// throughput, latency percentiles, the lifecycle outcome shares (to% =
// deadline kills, can% = client cancels, as fractions of arrivals), SLO
// attainment, the per-tenant p95/SLO breakdown, the zone-map skip rate,
// the achieved aggregate read bandwidth, and — on mixed read/write cells
// (-writefrac) — the write throughput, completed checkpoint/merge count
// and the p95 of reads overlapping a merge window; shard counts, device counts, admission policies and
// selectivities of the same cell print adjacent so all four effects read
// off directly. CScan rows print "-" for shards (the ABM replaces the
// page pool).
func printServe(rows []scanshare.ServeRow, real, tsv bool) {
	fmt.Printf("== Serving sweep: open-loop arrivals, admission control, sharded pool, striped disk array (latencies in %s ms) ==\n", clockName(real))
	shardCol := func(r scanshare.ServeRow) string {
		if r.Shards <= 0 {
			return "-"
		}
		return strconv.Itoa(r.Shards)
	}
	if tsv {
		fmt.Printf("rate_qps\tmpl\tpolicy\tadmission\tpool_shards\tdevices\tiosched\ttier\tselectivity\tcompleted\trejected\ttimedout_pct\tcancelled_pct\tthroughput_qps\twrites\twr_qps\tcheckpoints\tmerge_p95_ms\tp50_ms\tp95_ms\tp99_ms\tqwait_p95_ms\tslo_pct\ttenant_p95_ms\ttenant_slo_pct\tskip_pct\tio_mb\tread_mbps\tseeks\tskew\n")
		for _, r := range rows {
			fmt.Printf("%g\t%d\t%s\t%s\t%s\t%d\t%s\t%s\t%g\t%d\t%d\t%.1f\t%.1f\t%.1f\t%d\t%.1f\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\t%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\n",
				r.Rate, r.MPL, r.Policy, r.Admission, shardCol(r), r.Devices, r.IOSched, r.Tier, r.Selectivity, r.Completed, r.Rejected, r.ToPct, r.CanPct, r.Throughput,
				r.Writes, r.WrQps, r.Checkpoints, r.MergeP95ms,
				r.P50ms, r.P95ms, r.P99ms, r.QWaitP95ms, r.SLOPct,
				joinFloats(r.TenantP95ms, "%.3f"), joinFloats(r.TenantSLOPct, "%.1f"), r.SkipPct, r.IOMB, r.ReadMBps, r.Seeks, r.Skew)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate/stream\tMPL\tpolicy\tadmit\tshards\tdevs\tiosched\ttier\tsel\tdone\trej\tto%\tcan%\tthru (q/s)\twr q/s\tckpts\tmrg p95\tp50\tp95\tp99\tqwait p95\tSLO %\tp95/tenant\tSLO %/tenant\tskip%\tI/O MB\trd MB/s\tseeks\tskew")
	for _, r := range rows {
		fmt.Fprintf(w, "%g\t%d\t%s\t%s\t%s\t%d\t%s\t%s\t%g\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\n",
			r.Rate, r.MPL, r.Policy, r.Admission, shardCol(r), r.Devices, r.IOSched, r.Tier, r.Selectivity, r.Completed, r.Rejected, r.ToPct, r.CanPct, r.Throughput,
			r.WrQps, r.Checkpoints, r.MergeP95ms,
			r.P50ms, r.P95ms, r.P99ms, r.QWaitP95ms, r.SLOPct,
			joinFloats(r.TenantP95ms, "%.2f"), joinFloats(r.TenantSLOPct, "%.0f"), r.SkipPct, r.IOMB, r.ReadMBps, r.Seeks, r.Skew)
	}
	w.Flush()
}

// writeServeJSON writes the sweep rows to path as a JSON array in the
// wire schema (wire.ServeStats — field-for-field the historical ServeRow
// names), the machine-readable counterpart of the -tsv table and the
// same shape scanserved's /statz and scanload's -json emit. CI archives
// it as a benchmark artifact.
func writeServeJSON(path string, rows []scanshare.ServeRow) {
	b, err := json.MarshalIndent(scanshare.WireRows(rows), "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanbench: -json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# wrote %d rows to %s\n", len(rows), path)
}

// joinFloats renders one compact comma-joined cell (index = tenant id)
// for the per-tenant table columns.
func joinFloats(vs []float64, format string) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf(format, v)
	}
	return strings.Join(parts, ",")
}

func clockName(real bool) string {
	if real {
		return "wall-clock"
	}
	return "virtual"
}

// printCompare renders the closed-vs-open-loop comparison: the same
// latency table for both disciplines plus the per-percentile gap — the
// queueing delay a closed-loop benchmark's latency report omits.
func printCompare(rep scanshare.CompareReport, real, tsv bool) {
	fmt.Printf("== Closed vs open loop: same query mix, same engine, two arrival disciplines (latencies in %s ms) ==\n", clockName(real))
	if tsv {
		fmt.Printf("loop\trate_qps\tmpl\tpolicy\tadmission\tpool_shards\tdevices\tcompleted\trejected\tthroughput_qps\tp50_ms\tp95_ms\tp99_ms\tqwait_p95_ms\tslo_pct\tio_mb\n")
		for _, e := range []struct {
			name string
			r    scanshare.ServeRow
		}{{"open", rep.Open}, {"closed", rep.Closed}} {
			fmt.Printf("%s\t%g\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\n",
				e.name, e.r.Rate, e.r.MPL, e.r.Policy, e.r.Admission, e.r.Shards, e.r.Devices, e.r.Completed, e.r.Rejected,
				e.r.Throughput, e.r.P50ms, e.r.P95ms, e.r.P99ms, e.r.QWaitP95ms, e.r.SLOPct, e.r.IOMB)
		}
		fmt.Printf("gap\t%g\t%d\t%s\t%s\t%d\t%d\t-\t-\t-\t%.3f\t%.3f\t%.3f\t-\t-\t-\n",
			rep.Open.Rate, rep.Open.MPL, rep.Open.Policy, rep.Open.Admission, rep.Open.Shards, rep.Open.Devices,
			rep.GapP50ms, rep.GapP95ms, rep.GapP99ms)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "loop\tdone\trej\tthru (q/s)\tp50\tp95\tp99\tqwait p95\tSLO %\tI/O MB")
	for _, e := range []struct {
		name string
		r    scanshare.ServeRow
	}{{"open", rep.Open}, {"closed", rep.Closed}} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\n",
			e.name, e.r.Completed, e.r.Rejected, e.r.Throughput,
			e.r.P50ms, e.r.P95ms, e.r.P99ms, e.r.QWaitP95ms, e.r.SLOPct, e.r.IOMB)
	}
	fmt.Fprintf(w, "gap\t\t\t\t%.2f\t%.2f\t%.2f\t\t\t\n", rep.GapP50ms, rep.GapP95ms, rep.GapP99ms)
	w.Flush()
	fmt.Println("# gap = open - closed latency: the queueing delay closed-loop measurement omits (coordinated omission)")
}

// rejectAxes exits when a mode was given flags outside its scope: bad
// is the offending flag-name list a ServeAxes scope helper returned,
// modes the flags' legal home. Central scoping means a new serve flag
// is rejected (not silently ignored) everywhere else by default.
func rejectAxes(bad []string, modes string) {
	if len(bad) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "scanbench: -%s apply only to %s\n", strings.Join(bad, "/-"), modes)
	os.Exit(2)
}

// bar renders a tiny stacked area impression: one char per ~sixteenth of
// the max volume, '.'=1 scan, '+'=2-3 scans, '#'=4+.
func bar(mb [4]float64) string {
	total := mb[0] + mb[1] + mb[2] + mb[3]
	if total <= 0 {
		return ""
	}
	const width = 24
	n := func(v float64) int { return int(v / total * width) }
	return strings.Repeat("#", n(mb[3])) + strings.Repeat("+", n(mb[1]+mb[2])) + strings.Repeat(".", n(mb[0]))
}
