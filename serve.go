package scanshare

import (
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Serving surface: the open-loop, many-client scenario on top of the
// paper's engine. Unlike the closed-loop figure experiments, clients
// here generate queries on a Poisson arrival process and a multi-tenant
// scheduler admits them under an MPL limit through a bounded queue —
// the regime where overload, queue wait, and latency SLOs appear.
type (
	// ServeConfig parameterizes one open-loop serving run.
	ServeConfig = workload.ServeConfig
	// ServeResult reports one serving run (engine result + scheduler stats).
	ServeResult = workload.ServeResult
	// SchedConfig parameterizes the admission scheduler directly.
	SchedConfig = sched.Config
	// SchedStats is the scheduler's aggregate serving report.
	SchedStats = sched.Stats
	// LatencyDist summarizes a latency distribution (p50/p95/p99/max/mean).
	LatencyDist = sched.LatencyDist
	// QueryStat is one completed query's recorded life cycle.
	QueryStat = sched.QueryStat
	// Scheduler is the multi-tenant admission scheduler; embed one in a
	// custom System-based simulation via NewScheduler.
	Scheduler = sched.Scheduler
)

// NewScheduler creates an admission scheduler bound to the system's
// virtual clock, for custom serving simulations built on System.
func (s *System) NewScheduler(cfg SchedConfig) *Scheduler {
	return sched.New(s.Eng, cfg)
}

// DefaultServeConfig re-exports the serving defaults: 64 streams,
// 8 qps/stream, MPL 8, 64-deep admission queue, 250 ms SLO.
func DefaultServeConfig() ServeConfig { return workload.DefaultServeConfig() }

// RunServe exposes the open-loop serving driver directly.
func RunServe(db *TPCHDB, cfg ServeConfig) *ServeResult { return workload.RunServe(db, cfg) }

// ServeOptions parameterizes the serving sweep (cmd/scanbench -serve):
// the cross product of arrival rates, MPL limits, and policies, each run
// over Options.Streams open-loop client streams.
type ServeOptions struct {
	Options
	// Rates is the per-stream arrival-rate axis in queries per virtual
	// second (default {1, 5, 20}: light load, near saturation, overload
	// at the default scale).
	Rates []float64
	// MPLs is the concurrency-limit axis (default {8, 32}).
	MPLs []int
	// Policies is the buffer-management axis (default LRU, Clock, PBM,
	// CScan).
	Policies []Policy
	// Shards is the buffer-pool shard-count axis (default {1, 8}), so a
	// sweep measures the sharding effect instead of asserting it. CScan
	// rows ignore it (the ABM replaces the pool) and run once.
	Shards []int
	// QueueDepth bounds the admission queue (0 => default 64).
	QueueDepth int
	// SLO is the latency objective (0 => 250 ms).
	SLO time.Duration
}

// DefaultServeOptions returns the serving-sweep defaults.
func DefaultServeOptions() ServeOptions {
	return ServeOptions{
		Options:  DefaultOptions(),
		Rates:    []float64{1, 5, 20},
		MPLs:     []int{8, 32},
		Policies: []Policy{LRU, Clock, PBM, CScan},
		Shards:   []int{1, DefaultPoolShards},
		SLO:      250 * time.Millisecond,
	}
}

func (o ServeOptions) fill() ServeOptions {
	d := DefaultServeOptions()
	o.Options = o.Options.fill()
	if len(o.Rates) == 0 {
		o.Rates = d.Rates
	}
	if len(o.MPLs) == 0 {
		o.MPLs = d.MPLs
	}
	if len(o.Policies) == 0 {
		o.Policies = d.Policies
	}
	// Drop non-positive shard counts: 0 is the CScan-only row marker in
	// the output and must not label a defaulted sharded run.
	shards := o.Shards[:0:0]
	for _, s := range o.Shards {
		if s > 0 {
			shards = append(shards, s)
		}
	}
	o.Shards = shards
	if len(o.Shards) == 0 {
		o.Shards = d.Shards
	}
	if o.SLO == 0 {
		o.SLO = d.SLO
	}
	return o
}

// ServeRow is one cell of the serving sweep: a (rate, MPL, policy)
// configuration and its throughput/latency report.
type ServeRow struct {
	Rate       float64 // per-stream arrival rate (queries/s)
	MPL        int
	Policy     string
	Shards     int // buffer-pool shard count (0 for CScan rows: no pool)
	Completed  int64
	Rejected   int64
	Throughput float64 // completed queries per virtual second
	P50ms      float64 // end-to-end latency percentiles (virtual ms)
	P95ms      float64
	P99ms      float64
	QWaitP95ms float64 // queue-wait p95 (virtual ms)
	SLOPct     float64 // fraction of completed queries meeting the SLO, 0..100
	IOMB       float64
}

// ServeSweep runs the arrival-rate x MPL x policy x shard-count cross
// product and returns one row per cell, shards=1 and sharded rows
// adjacent so the sharding effect reads off one table.
func ServeSweep(o ServeOptions) []ServeRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []ServeRow
	for _, rate := range o.Rates {
		for _, mpl := range o.MPLs {
			for _, pol := range o.Policies {
				shardAxis := o.Shards
				if pol == CScan {
					// The ABM replaces the page pool; one row suffices.
					shardAxis = []int{0}
				}
				for _, shards := range shardAxis {
					cfg := DefaultServeConfig()
					cfg.Config = o.apply(cfg.Config)
					cfg.Policy = pol
					cfg.ArrivalRate = rate
					cfg.MPL = mpl
					cfg.QueueDepth = o.QueueDepth
					cfg.SLO = o.SLO
					if shards > 0 {
						cfg.PoolShards = shards
					}
					res := workload.RunServe(db, cfg)
					out = append(out, ServeRow{
						Rate:       rate,
						MPL:        mpl,
						Policy:     pol.String(),
						Shards:     shards,
						Completed:  res.Sched.Completed,
						Rejected:   res.Sched.Rejected,
						Throughput: res.Sched.Throughput,
						P50ms:      ms(res.Sched.Latency.P50),
						P95ms:      ms(res.Sched.Latency.P95),
						P99ms:      ms(res.Sched.Latency.P99),
						QWaitP95ms: ms(res.Sched.QueueWait.P95),
						SLOPct:     res.Sched.SLOAttainment * 100,
						IOMB:       mb(res.TotalIOBytes),
					})
				}
			}
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
