package scanshare

import (
	"fmt"
	"time"

	"repro/internal/iosim"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Serving surface: the open-loop, many-client scenario on top of the
// paper's engine. Unlike the closed-loop figure experiments, clients
// here generate queries on a Poisson arrival process and a multi-tenant
// scheduler admits them under an MPL limit through a bounded queue —
// the regime where overload, queue wait, and latency SLOs appear.
type (
	// ServeConfig parameterizes one open-loop serving run.
	ServeConfig = workload.ServeConfig
	// ServeResult reports one serving run (engine result + scheduler stats).
	ServeResult = workload.ServeResult
	// SchedConfig parameterizes the admission scheduler directly.
	SchedConfig = sched.Config
	// SchedStats is the scheduler's aggregate serving report.
	SchedStats = sched.Stats
	// TenantStat is one tenant's slice of the serving report.
	TenantStat = sched.TenantStat
	// AdmissionPolicy orders the scheduler's admission queue; register
	// custom implementations with RegisterAdmissionPolicy.
	AdmissionPolicy = sched.AdmissionPolicy
	// AdmissionPolicyConfig parameterizes admission-policy construction.
	AdmissionPolicyConfig = sched.PolicyConfig
	// PendingQuery is one query waiting in the admission queue, as an
	// AdmissionPolicy sees it.
	PendingQuery = sched.Pending
	// LatencyDist summarizes a latency distribution (p50/p95/p99/max/mean).
	LatencyDist = sched.LatencyDist
	// QueryStat is one completed query's recorded life cycle.
	QueryStat = sched.QueryStat
	// Scheduler is the multi-tenant admission scheduler; embed one in a
	// custom System-based simulation via NewScheduler.
	Scheduler = sched.Scheduler
)

// NewScheduler creates an admission scheduler bound to the system's
// runtime, for custom serving scenarios built on System.
func (s *System) NewScheduler(cfg SchedConfig) *Scheduler {
	return sched.New(s.RT, cfg)
}

// RegisterAdmissionPolicy registers a custom admission-policy
// constructor; the built-in policies are "fifo", "sesf" and "wfq".
var RegisterAdmissionPolicy = sched.RegisterPolicy

// AdmissionPolicyNames lists the registered admission policies, sorted.
var AdmissionPolicyNames = sched.PolicyNames

// DefaultServeConfig re-exports the serving defaults: 64 streams,
// 8 qps/stream, MPL 8, 64-deep admission queue, 250 ms SLO.
func DefaultServeConfig() ServeConfig { return workload.DefaultServeConfig() }

// RunServe exposes the open-loop serving driver directly.
func RunServe(db *TPCHDB, cfg ServeConfig) *ServeResult { return workload.RunServe(db, cfg) }

// ServeOptions parameterizes the serving sweep (cmd/scanbench -serve):
// the cross product of arrival rates, MPL limits, and policies, each run
// over Options.Streams open-loop client streams.
type ServeOptions struct {
	Options
	// Rates is the per-stream arrival-rate axis in queries per virtual
	// second (default {1, 5, 20}: light load, near saturation, overload
	// at the default scale).
	Rates []float64
	// MPLs is the concurrency-limit axis (default {8, 32}).
	MPLs []int
	// Policies is the buffer-management axis (default LRU, Clock, PBM,
	// CScan).
	Policies []Policy
	// Shards is the buffer-pool shard-count axis (default {1, 8}), so a
	// sweep measures the sharding effect instead of asserting it. CScan
	// rows ignore it (the ABM replaces the pool) and run once.
	Shards []int
	// Devices is the disk-array spindle-count axis (default {1}): each
	// cell runs once per device count, rows adjacent, so the I/O-scaling
	// effect of striping reads off one table (`scanbench -devices 1,4`).
	// Unlike Shards it applies to CScan rows too — the ABM reads through
	// the same array.
	Devices []int
	// StripeChunk overrides the array striping granularity in blocks for
	// every multi-device cell (0 = iosim.DefaultStripeChunk).
	StripeChunk int
	// IOSchedulers is the device queue-discipline axis (default {"fifo"}):
	// each cell runs once per discipline, rows adjacent, so the
	// fifo/elevator seek effect reads off one table
	// (`scanbench -iosched fifo,elevator`). "fifo" is bit-identical to the
	// pre-scheduler engine; "elevator" runs a C-SCAN sweep per spindle.
	IOSchedulers []string
	// Tiers is the heterogeneous-array axis (default {"flat"}): "flat"
	// keeps every spindle identical (bit-identical to the homogeneous
	// engine); "tiered-rr" makes the first half of the devices an SSD-like
	// fast tier (zero seek, 4x bandwidth) with round-robin chunk
	// placement; "tiered-temp" additionally runs a profiling pass first
	// and places the hottest chunks on the fast tier via
	// iosim.TemperaturePlacement.
	Tiers []string
	// StripeRowRA deepens every cell's scan read-ahead to one full stripe
	// row on multi-device arrays (see workload.Config.StripeRowRA).
	StripeRowRA bool
	// IOPriority threads each query's admission-policy signal (wfq tenant
	// weight / sesf cost) down to the device queue as its I/O priority
	// hint (see workload.ServeConfig.IOPriority).
	IOPriority bool
	// HotFrac and HotProb skew the query mix's range starts: with
	// probability HotProb a query's scan range is drawn inside the first
	// HotFrac of the table (the access skew temperature placement
	// exploits). Zero keeps the historical uniform draws.
	HotFrac float64
	HotProb float64
	// AdmissionPolicies is the admission-policy axis (default {"fifo"}):
	// each cell of the sweep runs once per named policy, rows adjacent,
	// so the fifo/sesf/wfq SLO comparison reads off one table. Names must
	// be registered (see AdmissionPolicyNames).
	AdmissionPolicies []string
	// Tenants is the number of fairness domains streams map onto (stream
	// s belongs to tenant s % Tenants; 0 => default 4). The serve table
	// reports p95 and SLO attainment per tenant.
	Tenants int
	// TenantWeights assigns wfq fair-share weights by tenant id (index =
	// tenant); missing or non-positive entries weigh 1.
	TenantWeights []float64
	// Selectivities is the predicate-selectivity axis (default {1}):
	// each cell of the sweep runs once per selectivity, rows adjacent,
	// so the zone-map data-skipping effect reads off one table
	// (`scanbench -selectivities 1,0.1,0.01`). A selectivity of 1 means
	// unrestricted scans (bit-identical to the pre-skipping engine);
	// below 1, every query carries an l_shipdate window spanning that
	// fraction of the date domain, pushed down to the scans.
	Selectivities []float64
	// Clustered generates lineitem sorted by l_shipdate, giving the zone
	// maps physical structure to exploit; without it TPC-H shipdates are
	// near-uniform per block and nothing prunes.
	Clustered bool
	// QueueDepth bounds the admission queue (0 => default 64).
	QueueDepth int
	// SLO is the latency objective (0 => 250 ms).
	SLO time.Duration
	// Deadline, when positive, arms every query with an end-to-end
	// deadline relative to its arrival: queued queries past it are
	// dropped with a TimedOut outcome, executing ones are killed at
	// their next lifecycle check. Zero keeps every cell bit-identical to
	// the deadline-free sweep.
	Deadline time.Duration
	// CancelRate is the fraction of queries whose client abandons them
	// mid-flight (0..1); each such query is cancelled a uniform [0, SLO)
	// delay after it was issued. Zero draws nothing.
	CancelRate float64
	// WriteFrac makes that fraction of every stream's queries updates
	// (insert/delete/modify through the PDT write path, admitted by the
	// same scheduler, delta-size-priced). Zero keeps the read-only stream
	// bit-identical to the pre-HTAP sweep.
	WriteFrac float64
	// CheckpointOps triggers a background checkpoint/merge once that many
	// committed update operations are pending; reads keep serving from
	// their pinned snapshot views while the merge runs. Zero never
	// checkpoints.
	CheckpointOps int
	// Real runs every cell on the real-threaded runtime (goroutines and
	// wall-clock time) instead of the deterministic simulator. Latencies
	// are then real milliseconds and runs are not reproducible.
	Real bool
}

// DefaultServeOptions returns the serving-sweep defaults.
func DefaultServeOptions() ServeOptions {
	return ServeOptions{
		Options:           DefaultOptions(),
		Rates:             []float64{1, 5, 20},
		MPLs:              []int{8, 32},
		Policies:          []Policy{LRU, Clock, PBM, CScan},
		Shards:            []int{1, DefaultPoolShards},
		Devices:           []int{1},
		IOSchedulers:      []string{"fifo"},
		Tiers:             []string{"flat"},
		AdmissionPolicies: []string{"fifo"},
		Selectivities:     []float64{1},
		SLO:               250 * time.Millisecond,
	}
}

func (o ServeOptions) fill() ServeOptions {
	d := DefaultServeOptions()
	o.Options = o.Options.fill()
	if len(o.Rates) == 0 {
		o.Rates = d.Rates
	}
	if len(o.MPLs) == 0 {
		o.MPLs = d.MPLs
	}
	if len(o.Policies) == 0 {
		o.Policies = d.Policies
	}
	// Drop non-positive shard counts: 0 is the CScan-only row marker in
	// the output and must not label a defaulted sharded run.
	shards := o.Shards[:0:0]
	for _, s := range o.Shards {
		if s > 0 {
			shards = append(shards, s)
		}
	}
	o.Shards = shards
	if len(o.Shards) == 0 {
		o.Shards = d.Shards
	}
	// Drop non-positive device counts the same way.
	devices := o.Devices[:0:0]
	for _, n := range o.Devices {
		if n > 0 {
			devices = append(devices, n)
		}
	}
	o.Devices = devices
	if len(o.Devices) == 0 {
		o.Devices = d.Devices
	}
	if len(o.IOSchedulers) == 0 {
		o.IOSchedulers = d.IOSchedulers
	}
	if len(o.Tiers) == 0 {
		o.Tiers = d.Tiers
	}
	if len(o.AdmissionPolicies) == 0 {
		o.AdmissionPolicies = d.AdmissionPolicies
	}
	// Keep only meaningful selectivities (0 < sel <= 1); an empty axis
	// defaults to {1}, the unrestricted-scan baseline.
	sels := o.Selectivities[:0:0]
	for _, s := range o.Selectivities {
		if s > 0 && s <= 1 {
			sels = append(sels, s)
		}
	}
	o.Selectivities = sels
	if len(o.Selectivities) == 0 {
		o.Selectivities = d.Selectivities
	}
	if o.SLO == 0 {
		o.SLO = d.SLO
	}
	return o
}

// ServeRow is one cell of the serving sweep: a (rate, MPL, buffer
// policy, shards, admission policy) configuration and its
// throughput/latency report, overall and per tenant.
type ServeRow struct {
	Rate      float64 // per-stream arrival rate (queries/s)
	MPL       int
	Policy    string // buffer-management policy
	Shards    int    // buffer-pool shard count (0 for CScan rows: no pool)
	Devices   int    // disk-array spindle count
	IOSched   string // device queue discipline (fifo/elevator)
	Tier      string // array tiering (flat/tiered-rr/tiered-temp)
	Admission string // admission policy (fifo/sesf/wfq)
	Completed int64
	Rejected  int64
	// TimedOut and Cancelled count the queries resolved by the lifecycle
	// machinery: deadline kills (queued or executing) and client
	// cancels. Completed+Rejected+TimedOut+Cancelled covers every
	// arrival; ToPct and CanPct are their shares of arrivals, 0..100.
	TimedOut   int64
	Cancelled  int64
	ToPct      float64
	CanPct     float64
	Throughput float64 // completed queries per virtual second
	P50ms      float64 // end-to-end latency percentiles (virtual ms)
	P95ms      float64
	P99ms      float64
	QWaitP95ms float64 // queue-wait p95 (virtual ms)
	SLOPct     float64 // fraction of completed queries meeting the SLO, 0..100
	IOMB       float64
	// Selectivity is the cell's predicate selectivity (1 = unrestricted
	// scans); SkipPct is the fraction of requested tuples the zone maps
	// pruned before any I/O was scheduled, 0..100.
	Selectivity float64
	SkipPct     float64
	// ReadMBps is the achieved aggregate read bandwidth over the run's
	// makespan (device bytes / elapsed), the column that makes the
	// multi-device scaling effect measurable.
	ReadMBps float64
	// Seeks counts device requests that paid the seek penalty, summed
	// over spindles — the column the elevator scheduler moves.
	Seeks int64
	// Skew is the busiest spindle's byte share relative to a perfect
	// stripe balance: MaxDeviceBytes / (BytesRead / Devices). 1.00 means
	// balanced, Devices means one spindle did all the work; 1.00 when the
	// run transferred nothing.
	Skew float64
	// Writes and WrQps report the write side of a mixed cell: update
	// queries completed and their throughput. Checkpoints counts the
	// checkpoint/merge cycles that completed mid-run; MergeP95ms is the
	// p95 end-to-end latency of read queries whose lifetime overlapped a
	// merge window — the "does a merge stall scans" column.
	Writes      int64
	WrQps       float64
	Checkpoints int
	MergeP95ms  float64
	// TenantP95ms and TenantSLOPct break p95 latency and SLO attainment
	// down by tenant id (index = tenant), exposing what the aggregate
	// hides: which tenant pays the overload tail under each admission
	// policy.
	TenantP95ms  []float64
	TenantSLOPct []float64
}

// ServeRowOf flattens one serving result into the sweep's row shape,
// labelled with the configuration axes of the run that produced it. The
// sweep itself uses it; so does scanserved's /statz endpoint, which
// exports its live ServeEngine stats in the identical row schema.
func ServeRowOf(res *ServeResult, rate float64, mpl int, policy string, shards, devices int, iosched, tier, admission string, sel float64) ServeRow {
	row := ServeRow{
		Rate:        rate,
		MPL:         mpl,
		Policy:      policy,
		Shards:      shards,
		Devices:     devices,
		IOSched:     iosched,
		Tier:        tier,
		Admission:   admission,
		Completed:   res.Sched.Completed,
		Rejected:    res.Sched.Rejected,
		TimedOut:    res.Sched.TimedOut,
		Cancelled:   res.Sched.Cancelled,
		Throughput:  res.Sched.Throughput,
		P50ms:       ms(res.Sched.Latency.P50),
		P95ms:       ms(res.Sched.Latency.P95),
		P99ms:       ms(res.Sched.Latency.P99),
		QWaitP95ms:  ms(res.Sched.QueueWait.P95),
		SLOPct:      res.Sched.SLOAttainment * 100,
		IOMB:        mb(res.TotalIOBytes),
		Selectivity: sel,
	}
	if res.Sched.Arrived > 0 {
		row.ToPct = 100 * float64(res.Sched.TimedOut) / float64(res.Sched.Arrived)
		row.CanPct = 100 * float64(res.Sched.Cancelled) / float64(res.Sched.Arrived)
	}
	if res.RequestedTuples > 0 {
		row.SkipPct = 100 * float64(res.SkippedTuples) / float64(res.RequestedTuples)
	}
	if res.ElapsedSec > 0 {
		row.ReadMBps = mb(res.DiskStats.BytesRead) / res.ElapsedSec
	}
	row.Seeks = res.DiskStats.Seeks
	row.Writes = res.Sched.WriteCompleted
	row.WrQps = res.Sched.WriteThroughput
	row.Checkpoints = res.Checkpoints
	row.MergeP95ms = ms(res.MergeP95)
	row.Skew = 1
	if n := len(res.DiskStats.PerDevice); n > 0 && res.DiskStats.BytesRead > 0 {
		row.Skew = float64(res.DiskStats.MaxDeviceBytes) * float64(n) / float64(res.DiskStats.BytesRead)
	}
	for _, ts := range res.Tenants {
		row.TenantP95ms = append(row.TenantP95ms, ms(ts.P95))
		row.TenantSLOPct = append(row.TenantSLOPct, ts.SLOAttainment*100)
	}
	return row
}

// validateAdmission panics on an unregistered admission-policy name,
// naming the registered menu. Sweeps call it before the expensive data
// generation so a typo from a library caller fails fast instead of
// panicking mid-sweep inside sched.New.
func validateAdmission(names ...string) {
	for _, name := range names {
		if _, ok := sched.NewPolicy(name, sched.PolicyConfig{}); !ok {
			panic(fmt.Sprintf("scanshare: unknown admission policy %q (registered: %v)",
				name, sched.PolicyNames()))
		}
	}
}

// validateTiers panics on an unknown tier name, naming the menu.
func validateTiers(names ...string) {
	for _, name := range names {
		switch name {
		case "flat", "tiered-rr", "tiered-temp":
		default:
			panic(fmt.Sprintf("scanshare: unknown tier %q (want flat, tiered-rr or tiered-temp)", name))
		}
	}
}

// ServeSweep runs the arrival-rate x MPL x buffer-policy x shard-count x
// device-count x I/O-scheduler x tier x admission-policy cross product and
// returns one row per cell: shards=1 and sharded rows adjacent so the
// sharding effect reads off one table, device counts of one cell adjacent
// so the striping effect does too, I/O-scheduler and tier rows likewise
// for the fifo/elevator seek comparison and the flat/tiered placement
// comparison, and admission-policy rows for the fifo/sesf/wfq SLO
// comparison. A "tiered-temp" cell runs twice: a profiling pass collects
// the per-chunk access heat under round-robin placement, then the
// measured pass re-runs with the hottest chunks placed on the fast tier.
// Unregistered admission-policy or tier names panic before any data is
// generated.
func ServeSweep(o ServeOptions) []ServeRow {
	o = o.fill()
	validateAdmission(o.AdmissionPolicies...)
	validateTiers(o.Tiers...)
	db := GenerateTPCHOpt(o.SF, o.Seed, TPCHGenOptions{ClusteredShipdate: o.Clustered})
	var out []ServeRow
	for _, rate := range o.Rates {
		for _, mpl := range o.MPLs {
			for _, pol := range o.Policies {
				shardAxis := o.Shards
				if pol == CScan {
					// The ABM replaces the page pool; one row suffices.
					shardAxis = []int{0}
				}
				for _, shards := range shardAxis {
					for _, devices := range o.Devices {
						for _, iosched := range o.IOSchedulers {
							for _, tier := range o.Tiers {
								for _, adm := range o.AdmissionPolicies {
									for _, sel := range o.Selectivities {
										cfg := DefaultServeConfig()
										cfg.Config = o.apply(cfg.Config)
										cfg.Config.Real = o.Real
										cfg.Policy = pol
										cfg.ArrivalRate = rate
										cfg.MPL = mpl
										cfg.QueueDepth = o.QueueDepth
										cfg.SLO = o.SLO
										cfg.AdmissionPolicy = adm
										cfg.Tenants = o.Tenants
										cfg.TenantWeights = o.TenantWeights
										if shards > 0 {
											cfg.PoolShards = shards
										}
										cfg.Config.Devices = devices
										if o.StripeChunk > 0 {
											cfg.Config.StripeChunk = o.StripeChunk
										}
										if sel < 1 {
											// sel = 1 leaves Selectivities nil so the run is
											// bit-identical to the pre-skipping sweep.
											cfg.Selectivities = []float64{sel}
										}
										cfg.Deadline = o.Deadline
										cfg.CancelRate = o.CancelRate
										cfg.WriteFrac = o.WriteFrac
										cfg.CheckpointOps = o.CheckpointOps
										if iosched != "fifo" {
											// "fifo" stays "" so the cell is bit-identical
											// to the pre-scheduler engine.
											cfg.Config.IOScheduler = iosched
										}
										cfg.Config.StripeRowRA = o.StripeRowRA
										cfg.IOPriority = o.IOPriority
										cfg.Config.HotFrac = o.HotFrac
										cfg.Config.HotProb = o.HotProb
										if tier != "flat" {
											fd := devices / 2
											if fd < 1 {
												fd = 1
											}
											cfg.Config.FastDevices = fd
											if tier == "tiered-temp" {
												// Profiling pass: same cell, round-robin
												// placement, heat collection on.
												prof := cfg
												prof.CollectBlockHeat = true
												pres := workload.RunServe(db, prof)
												heat := workload.ChunkHeat(pres.BlockHeat, cfg.Config.StripeChunk)
												fast := make([]int, fd)
												for i := range fast {
													fast[i] = i
												}
												cfg.Config.ChunkPlacement = iosim.TemperaturePlacement(heat, devices, fast)
											}
										}
										res := workload.RunServe(db, cfg)
										out = append(out, ServeRowOf(res, rate, mpl, pol.String(), shards, devices, iosched, tier, adm, sel))
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// CompareOptions parameterizes the closed-vs-open-loop comparison
// (cmd/scanbench -compare): one (rate, MPL, policy) point run twice over
// the identical query mix, once with open-loop Poisson arrivals and once
// closed-loop (each stream waits for completion before its next query).
type CompareOptions struct {
	Options
	// Rate is the per-stream arrival (open) / think (closed) rate in
	// queries per virtual second. The default of 20 overloads the default
	// scale, where the disciplines diverge most visibly.
	Rate float64
	// MPL is the scheduler concurrency limit (default 8).
	MPL int
	// Policy is the buffer-management policy (default PBM).
	Policy Policy
	// Shards is the buffer-pool shard count (default 8).
	Shards int
	// Devices is the disk-array spindle count (default 1).
	Devices int
	// StripeChunk is the striping granularity in blocks (0 = default).
	StripeChunk int
	// Admission names the admission policy for both loops (default
	// "fifo").
	Admission string
	// Tenants is the number of fairness domains streams map onto (0 =>
	// default 4).
	Tenants int
	// TenantWeights assigns wfq weights by tenant id.
	TenantWeights []float64
	// QueueDepth bounds the admission queue (0 => default 64, negative
	// => unbounded).
	QueueDepth int
	// SLO is the latency objective (0 => 250 ms).
	SLO time.Duration
	// Real runs both loops on the real-threaded runtime.
	Real bool
}

// DefaultCompareOptions returns the comparison defaults.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Options: DefaultOptions(), Rate: 20, MPL: 8, Policy: PBM, Shards: DefaultPoolShards}
}

// CompareReport is the result of one closed-vs-open-loop comparison: the
// same sweep row shape for both disciplines, plus the latency gap the
// closed-loop measurement omits (coordinated omission).
type CompareReport struct {
	Open, Closed ServeRow
	// GapP50ms/GapP95ms/GapP99ms are open minus closed latency at each
	// percentile, in virtual ms: the queueing delay a closed-loop
	// benchmark hides from its latency report.
	GapP50ms, GapP95ms, GapP99ms float64
}

// Compare runs the closed-vs-open-loop comparison at one configuration.
func Compare(o CompareOptions) CompareReport {
	d := DefaultCompareOptions()
	o.Options = o.Options.fill()
	if o.Rate <= 0 {
		o.Rate = d.Rate
	}
	if o.MPL <= 0 {
		o.MPL = d.MPL
	}
	if o.Shards <= 0 {
		o.Shards = d.Shards
	}
	if o.Devices <= 0 {
		o.Devices = 1
	}
	if o.Admission == "" {
		o.Admission = "fifo"
	}
	validateAdmission(o.Admission)
	db := GenerateTPCH(o.SF, o.Seed)
	cfg := DefaultServeConfig()
	cfg.Config = o.apply(cfg.Config)
	cfg.Config.Real = o.Real
	cfg.Policy = o.Policy
	cfg.PoolShards = o.Shards
	cfg.Config.Devices = o.Devices
	cfg.Config.StripeChunk = o.StripeChunk
	cfg.ArrivalRate = o.Rate
	cfg.MPL = o.MPL
	cfg.QueueDepth = o.QueueDepth
	cfg.AdmissionPolicy = o.Admission
	cfg.Tenants = o.Tenants
	cfg.TenantWeights = o.TenantWeights
	if o.SLO != 0 {
		cfg.SLO = o.SLO
	}
	res := workload.RunCompare(db, cfg)
	row := func(r *workload.ServeResult) ServeRow {
		return ServeRowOf(r, o.Rate, o.MPL, o.Policy.String(), o.Shards, o.Devices, "fifo", "flat", o.Admission, 1)
	}
	rep := CompareReport{Open: row(res.Open), Closed: row(res.Closed)}
	rep.GapP50ms = rep.Open.P50ms - rep.Closed.P50ms
	rep.GapP95ms = rep.Open.P95ms - rep.Closed.P95ms
	rep.GapP99ms = rep.Open.P99ms - rep.Closed.P99ms
	return rep
}
